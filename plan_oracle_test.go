// The plan-equivalence oracle: every plan the planner or WithFixedPlan can
// emit — any source, any chain subset/order, any prefix multiplier, auto —
// must produce bit-identical join results to the method's static default
// plan. Plans move work around; they never change the answer. This is the
// soundness harness for the adaptive planner, run for every method at every
// threshold, self and cross, before and after mutations age the model.
package treejoin_test

import (
	"context"
	"fmt"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

type planVariant struct {
	name string
	opts []treejoin.Option
}

// planVariantsFor enumerates the fixed-plan space a method can execute,
// plus the adaptive default.
func planVariantsFor(m treejoin.Method) []planVariant {
	auto := planVariant{"auto", nil}
	switch m {
	case treejoin.MethodPartSJ:
		return []planVariant{
			auto,
			{"no-filters", []treejoin.Option{treejoin.WithFixedPlan(treejoin.PlanSpec{Chain: []treejoin.Prefilter{}})}},
			{"chain-hist-pqg", []treejoin.Option{treejoin.WithFixedPlan(treejoin.PlanSpec{
				Chain: []treejoin.Prefilter{treejoin.PrefilterHistogram, treejoin.PrefilterPQGram}})}},
		}
	case treejoin.MethodBruteForce:
		return []planVariant{
			auto,
			{"chain-hist", []treejoin.Option{treejoin.WithFixedPlan(treejoin.PlanSpec{
				Chain: []treejoin.Prefilter{treejoin.PrefilterHistogram}})}},
		}
	default: // the signature methods: index or loop, free chain, prefix budget
		return []planVariant{
			auto,
			{"pin-index", []treejoin.Option{treejoin.WithFixedPlan(treejoin.PlanSpec{Source: treejoin.PlanSourceTokenIndex})}},
			{"pin-loop", []treejoin.Option{treejoin.WithFixedPlan(treejoin.PlanSpec{Source: treejoin.PlanSourceSortedLoop})}},
			{"no-filters", []treejoin.Option{treejoin.WithFixedPlan(treejoin.PlanSpec{Chain: []treejoin.Prefilter{}})}},
			{"chain-rev", []treejoin.Option{treejoin.WithFixedPlan(treejoin.PlanSpec{
				Chain: []treejoin.Prefilter{treejoin.PrefilterPQGram, treejoin.PrefilterSTR, treejoin.PrefilterHistogram}})}},
			{"prefix-c24", []treejoin.Option{treejoin.WithFixedPlan(treejoin.PlanSpec{
				Source: treejoin.PlanSourceTokenIndex, PrefixC: 24})}},
		}
	}
}

// checkPlanEquivalence asserts that on cp every plan variant of every
// method × τ matches that method's fixed default plan, bit for bit.
func checkPlanEquivalence(t *testing.T, step string, cp, other *treejoin.Corpus) {
	t.Helper()
	ctx := context.Background()
	for _, m := range oracleMethods {
		for _, tau := range oracleTaus {
			want, _, err := cp.SelfJoin(ctx, tau, treejoin.WithMethod(m), treejoin.WithFixedPlan())
			if err != nil {
				t.Fatalf("%s: %v τ=%d fixed default: %v", step, m, tau, err)
			}
			wantX, _, err := cp.Join(ctx, other, tau, treejoin.WithMethod(m), treejoin.WithFixedPlan())
			if err != nil {
				t.Fatalf("%s: %v τ=%d fixed default cross: %v", step, m, tau, err)
			}
			for _, v := range planVariantsFor(m) {
				label := fmt.Sprintf("%s: %v τ=%d plan=%s", step, m, tau, v.name)
				opts := append([]treejoin.Option{treejoin.WithMethod(m)}, v.opts...)
				got, _, err := cp.SelfJoin(ctx, tau, opts...)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				samePairs(t, label+" self", got, want)
				gotX, _, err := cp.Join(ctx, other, tau, opts...)
				if err != nil {
					t.Fatalf("%s cross: %v", label, err)
				}
				samePairs(t, label+" cross", gotX, wantX)
			}
		}
	}
}

// TestPlanEquivalenceOracle runs the oracle on a fresh corpus, then mutates
// it (ageing the cost model's observations and bumping the epoch) and runs
// it again — the plans a mutated corpus emits (including the dynamic token
// snapshot source) must be just as sound.
func TestPlanEquivalenceOracle(t *testing.T) {
	// One generator call: every tree shares a label table. 60 seed the
	// corpus, 12 feed the Add stream, 40 build the cross-join peer.
	pool := synth.Generate(synth.SyntheticParams(112, 3, 5, 20, 60, 3))
	cp := mustCorpus(t, pool[:60])
	other := mustCorpus(t, pool[72:])

	checkPlanEquivalence(t, "fresh", cp, other)

	ids, err := cp.Add(pool[60:72]...)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if n := cp.Remove(ids[:6]...); n != 6 {
		t.Fatalf("Remove: removed %d trees, want 6", n)
	}
	if cp.Epoch() == 0 {
		t.Fatal("mutations did not advance the epoch")
	}
	checkPlanEquivalence(t, "mutated", cp, other)
}
