package treejoin

import (
	"fmt"

	"treejoin/internal/core"
	"treejoin/internal/subtree"
	"treejoin/internal/tree"
)

// Match is one similarity-search hit: the collection position of the
// matching tree and its exact distance to the query.
type Match = core.Match

// Index is a static similarity-search index: it partitions and indexes a
// fixed collection once, after which Search reports every collection tree
// within TED tau of a query tree. Queries of any size are supported and
// Search is safe for concurrent use.
type Index struct {
	inner *core.Index
}

// NewIndex builds a search index over ts for threshold tau. All trees (and
// later queries) must share one LabelTable.
//
// Deprecated: use Corpus.Search, which builds and caches per-threshold
// indexes behind an LRU and returns errors instead of panicking. This
// wrapper remains for compatibility and keeps the legacy panicking contract.
func NewIndex(ts []*Tree, tau int, opts ...Option) *Index {
	if tau < 0 {
		panic(fmt.Sprintf("treejoin: negative threshold %d", tau))
	}
	c := buildConfig(opts)
	return &Index{inner: core.NewIndex(ts, c.coreOptions(tau))}
}

// Search returns the indexed trees within the index threshold of q, in
// ascending collection order.
func (x *Index) Search(q *Tree) []Match { return x.inner.Search(q) }

// Len returns the collection size.
func (x *Index) Len() int { return x.inner.Len() }

// Tree returns the i-th collection tree.
func (x *Index) Tree(i int) *Tree { return x.inner.Tree(i) }

// TopK returns the k closest pairs of the collection by TED, ordered by
// (Dist, I, J) — the threshold-free variant of SelfJoin for workloads that
// want "the k most similar pairs" rather than "all pairs within τ". It runs
// PartSJ at geometrically increasing thresholds until k pairs are in reach;
// fewer than k pairs come back only when the collection has fewer than k
// pairs in total. All trees must share one LabelTable.
//
// Deprecated: use Corpus.TopK, which is cancellable and reuses cached
// signatures across the expanding rounds and with every other corpus query.
func TopK(ts []*Tree, k int, opts ...Option) []Pair {
	c := buildConfig(opts)
	return core.TopK(ts, k, c.coreOptions(0))
}

// KNN answers k-nearest-neighbour queries over a fixed collection: Nearest
// returns the k collection trees closest to a query by TED, with no distance
// threshold required. Internally it searches PartSJ indexes at expanding
// thresholds, keeping the most recently used of them in a small LRU
// (WithIndexCacheCap), so a query workload settles into reusing a handful.
// Nearest is safe for concurrent use.
type KNN struct {
	inner *core.KNN
}

// NewKNN prepares a k-NN searcher over ts. All trees (and later queries)
// must share one LabelTable.
//
// Deprecated: use Corpus.KNN, which shares the corpus's signature cache and
// per-threshold index LRU with every other query.
func NewKNN(ts []*Tree, opts ...Option) *KNN {
	c := buildConfig(opts)
	capacity := c.indexCap
	if capacity < 1 {
		capacity = core.DefaultIndexCacheCap
	}
	return &KNN{inner: core.NewKNNCached(ts, c.coreOptions(0), nil, capacity)}
}

// Nearest returns the k collection trees closest to q, ordered by
// (Dist, Pos). Fewer than k matches are returned only when the collection
// holds fewer than k trees.
func (x *KNN) Nearest(q *Tree, k int) []Match { return x.inner.Nearest(q, k) }

// Len returns the collection size.
func (x *KNN) Len() int { return x.inner.Len() }

// Tree returns the i-th collection tree.
func (x *KNN) Tree(i int) *Tree { return x.inner.Tree(i) }

// SubtreeMatch is one subtree-search hit: the data-tree node rooting the
// matching subtree and its exact TED to the query.
type SubtreeMatch = subtree.Match

// SubtreeSearch finds the subtrees of one large data tree within TED tau of
// query, in ascending root node order — similarity search *inside* a tree
// (the setting of the paper's related work on subtree similarity search),
// complementing the collection-level joins. data and query must share one
// LabelTable.
func SubtreeSearch(data, query *Tree, tau int) []SubtreeMatch {
	return subtree.Search(data, query, tau)
}

// SubtreeSearchBest returns the k subtrees of data closest to query by TED,
// ordered by (Dist, Root) — top-k approximate subtree matching, no
// threshold required.
func SubtreeSearchBest(data, query *Tree, k int) []SubtreeMatch {
	return subtree.SearchBest(data, query, k)
}

// SubtreeAt extracts the subtree of t rooted at node n as a standalone tree
// sharing t's label table.
func SubtreeAt(t *Tree, n int32) *Tree { return tree.SubtreeAt(t, n) }
