package treejoin

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"treejoin/internal/dataset"
	"treejoin/internal/tree"
)

// ReadBracketLines reads one bracket-notation tree per non-empty line from r.
// Lines starting with '#' are comments. All trees intern into lt (a fresh
// table if nil).
func ReadBracketLines(r io.Reader, lt *LabelTable) ([]*Tree, error) {
	if lt == nil {
		lt = NewLabelTable()
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26) // trees can be long single lines
	var out []*Tree
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if isBlankOrComment(line) {
			continue
		}
		t, err := ParseBracket(line, lt)
		if err != nil {
			return nil, fmt.Errorf("treejoin: line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("treejoin: reading trees: %w", err)
	}
	return out, nil
}

func isBlankOrComment(line string) bool {
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case ' ', '\t', '\r':
			continue
		case '#':
			return true
		default:
			return false
		}
	}
	return true
}

// ReadBracketFile reads a bracket-notation dataset (one tree per line) from
// path.
func ReadBracketFile(path string, lt *LabelTable) ([]*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("treejoin: %w", err)
	}
	defer f.Close()
	return ReadBracketLines(f, lt)
}

// ParseNewick parses a tree in Newick notation, e.g. "(A,B,(C,D)E)F;".
// Quoted names, comments, and branch lengths are accepted; branch lengths
// are discarded (TED is defined on labels and shape). Child order is
// preserved.
func ParseNewick(s string, lt *LabelTable) (*Tree, error) { return tree.ParseNewick(s, lt) }

// MustParseNewick is ParseNewick but panics on error.
func MustParseNewick(s string, lt *LabelTable) *Tree { return tree.MustParseNewick(s, lt) }

// FormatNewick renders t in Newick notation; the output round-trips through
// ParseNewick.
func FormatNewick(t *Tree) string { return tree.FormatNewick(t) }

// ParseDotBracket converts an RNA secondary structure in Vienna dot-bracket
// notation into its standard tree encoding: base pairs become "P" nodes,
// unpaired positions become leaves labeled by their base in seq ("N" when
// seq is empty), all under a virtual "root". seq, when non-empty, must have
// the structure's length.
func ParseDotBracket(structure, seq string, lt *LabelTable) (*Tree, error) {
	return tree.ParseDotBracket(structure, seq, lt)
}

// WriteBracketLines writes ts to w, one bracket-notation tree per line.
func WriteBracketLines(w io.Writer, ts []*Tree) error {
	bw := bufio.NewWriter(w)
	for _, t := range ts {
		if _, err := bw.WriteString(FormatBracket(t)); err != nil {
			return fmt.Errorf("treejoin: writing trees: %w", err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("treejoin: writing trees: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("treejoin: writing trees: %w", err)
	}
	return nil
}

// ReadNewickLines reads one Newick tree per non-empty line from r. Lines
// starting with '#' are comments. All trees intern into lt (a fresh table if
// nil).
func ReadNewickLines(r io.Reader, lt *LabelTable) ([]*Tree, error) {
	if lt == nil {
		lt = NewLabelTable()
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var out []*Tree
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if isBlankOrComment(line) {
			continue
		}
		t, err := ParseNewick(line, lt)
		if err != nil {
			return nil, fmt.Errorf("treejoin: line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("treejoin: reading trees: %w", err)
	}
	return out, nil
}

// WriteDataset encodes lt and ts in the compact binary dataset format
// (varint-encoded structure plus a CRC trailer) — the fast way to store and
// reload large collections. Every tree must use lt as its label table.
func WriteDataset(w io.Writer, lt *LabelTable, ts []*Tree) error {
	return dataset.Write(w, lt, ts)
}

// ReadDataset decodes a binary dataset written by WriteDataset. Decoding
// verifies the checksum; corrupt or truncated input is reported as an
// error, never as wrong trees.
func ReadDataset(r io.Reader) (*LabelTable, []*Tree, error) { return dataset.Read(r) }

// WriteDatasetFile is WriteDataset to a file path.
func WriteDatasetFile(path string, lt *LabelTable, ts []*Tree) error {
	return dataset.WriteFile(path, lt, ts)
}

// ReadDatasetFile is ReadDataset from a file path.
func ReadDatasetFile(path string) (*LabelTable, []*Tree, error) { return dataset.ReadFile(path) }
