// Package treejoin implements scalable similarity joins over tree-structured
// data under the tree edit distance (TED), reproducing Tang, Cai and
// Mamoulis, "Scaling Similarity Joins over Tree-Structured Data", PVLDB
// 8(11), 2015.
//
// Given a collection of rooted ordered labeled trees (XML documents, parse
// trees, RNA secondary structures, ...) and a distance threshold τ, the join
// reports every pair of trees within TED τ. The default method is the
// paper's PartSJ: each tree's left-child/right-sibling binary representation
// is decomposed into 2τ+1 balanced subgraphs, and a pair can be similar only
// if one tree contains a subgraph of the other — a filter served by an
// in-memory two-layer index built on the fly, with exact TED verification
// (an RTED-style hybrid of Zhang–Shasha strategies) only for surviving
// candidates. The baselines the paper compares against (STR traversal-string
// lower bounds and SET binary-branch distance) are included for comparison,
// as are the survey's other filters (HIST statistics histograms, EUL Euler
// strings) and a brute-force oracle.
//
// The primary entry point is the Corpus: construct it over a collection,
// then run the whole query family off it — thresholded self and cross joins
// (SelfJoin, Join), similarity search (Search), top-k closest pairs (TopK),
// k-nearest neighbours (KNN), and a streaming join with inserts, deletes and
// updates (Incremental). The corpus is fully dynamic: Add and Remove mutate
// it in place under epoch-versioned copy-on-write snapshots, keeping cached
// signatures, search indexes, and token inverted indexes live (removals
// tombstone and compact) while in-flight queries stay consistent. The corpus
// caches every per-tree filter signature the first query computes, so later
// queries — at any threshold, with any method — skip that work; every query
// takes a context for cancellation, and the Seq variants stream verified
// pairs with constant result memory. The original free functions (SelfJoin, Join,
// NewIndex, TopK, NewKNN) remain as deprecated one-shot wrappers.
//
// Also here: subtree search inside one large tree (SubtreeSearch), exact
// (Distance), bounded (DistanceWithin), weighted (DistanceWithCosts), and
// constrained (ConstrainedDistance) distances, and structural diffs
// (EditScript, Mapping, Transform) on top. Trees parse from bracket, XML,
// Newick, and RNA dot-bracket notation and persist in a compact binary
// dataset format.
//
// # Quick start
//
//	lt := treejoin.NewLabelTable()
//	docs := []*treejoin.Tree{
//		treejoin.MustParseBracket("{album{title{Blue}}{year{1971}}}", lt),
//		treejoin.MustParseBracket("{album{title{Blue!}}{year{1971}}}", lt),
//	}
//	corpus, err := treejoin.NewCorpus(docs)
//	if err != nil { ... }
//	pairs, _, err := corpus.SelfJoin(ctx, 1)
//	// pairs == [{I:0 J:1 Dist:1}]
//
// All trees joined together must share one LabelTable; NewCorpus checks.
package treejoin

import (
	"io"

	"treejoin/internal/sim"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// Tree is a rooted ordered labeled tree; the root is node 0. Trees are
// immutable after construction and safe to share across goroutines.
type Tree = tree.Tree

// LabelTable interns node labels. Every collection of trees to be joined
// shares one table.
type LabelTable = tree.LabelTable

// Builder constructs trees node by node.
type Builder = tree.Builder

// Node is a single tree node (label and structure links).
type Node = tree.Node

// Pair is one join result: tree indices I < J with TED Dist ≤ τ.
type Pair = sim.Pair

// Stats reports where a join spent its time (candidate generation versus TED
// verification), the PartSJ filter counters, and — when the join ran a
// filter pipeline — per-stage attribution in Stages.
type Stats = sim.Stats

// StageStats attributes filtering work to one pipeline stage: how many pairs
// it was offered and how many it killed (see WithPrefilter).
type StageStats = sim.StageStats

// XMLOptions controls XML-to-tree conversion.
type XMLOptions = tree.XMLOptions

// CollectionStats summarises the shape of a tree collection.
type CollectionStats = tree.Stats

// None marks the absence of a node reference in Node link fields.
const None = tree.None

// NewLabelTable returns an empty label table.
func NewLabelTable() *LabelTable { return tree.NewLabelTable() }

// NewBuilder returns a tree builder interning labels into lt (a fresh table
// if lt is nil).
func NewBuilder(lt *LabelTable) *Builder { return tree.NewBuilder(lt) }

// ParseBracket parses the bracket notation of the TED literature, e.g.
// "{a{b}{c{d}}}".
func ParseBracket(s string, lt *LabelTable) (*Tree, error) { return tree.ParseBracket(s, lt) }

// MustParseBracket is ParseBracket but panics on error.
func MustParseBracket(s string, lt *LabelTable) *Tree { return tree.MustParseBracket(s, lt) }

// FormatBracket renders t in bracket notation; the output is canonical and
// round-trips through ParseBracket.
func FormatBracket(t *Tree) string { return tree.FormatBracket(t) }

// ParseXML reads one XML document and returns its tree representation.
func ParseXML(r io.Reader, lt *LabelTable, opts XMLOptions) (*Tree, error) {
	return tree.ParseXML(r, lt, opts)
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(s string, lt *LabelTable, opts XMLOptions) (*Tree, error) {
	return tree.ParseXMLString(s, lt, opts)
}

// Measure computes collection statistics (sizes, depths, labels, fanout).
func Measure(ts []*Tree) CollectionStats { return tree.Measure(ts) }

// Canonicalize returns a copy of t with every sibling group sorted into a
// canonical, permutation-invariant order (labels alphabetically, structure
// as tiebreak). Canonicalising a collection first makes the ordered-tree
// joins and searches treat sibling order as meaningless — the right setting
// for attribute lists, data-centric XML, and other unordered records. TED
// between canonical forms approximates the unordered edit distance (exact
// at 0; exact unordered TED is intractable).
func Canonicalize(t *Tree) *Tree { return tree.Canonicalize(t) }

// EqualUnordered reports whether a and b are equal as unordered trees: the
// same label and the same multiset of child subtrees, recursively, at every
// node.
func EqualUnordered(a, b *Tree) bool { return tree.EqualUnordered(a, b) }

// Distance returns the exact tree edit distance between a and b under the
// unit cost model, choosing the cheaper Zhang–Shasha decomposition from the
// tree shapes (the RTED idea). Both trees must share a label table.
func Distance(a, b *Tree) int { return ted.Distance(a, b) }

// DistanceWithin reports whether TED(a, b) ≤ tau; when it is, the returned
// distance is exact, otherwise it is some value greater than tau. The
// computation is threshold-aware throughout: size and label lower bounds
// short-circuit it entirely, and the DP itself is τ-banded with early
// termination (see DESIGN.md, "Threshold-aware verification").
func DistanceWithin(a, b *Tree, tau int) (int, bool) { return ted.DistanceBounded(a, b, tau) }
