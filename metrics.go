package treejoin

import (
	"treejoin/internal/pqgram"
	"treejoin/internal/ted"
)

// Costs defines a weighted edit-operation model for DistanceWithCosts.
type Costs = ted.Costs

// UnitCosts is the standard model (every operation costs 1);
// DistanceWithCosts with UnitCosts equals Distance.
type UnitCosts = ted.UnitCosts

// WeightedCosts assigns constant weights per operation kind.
type WeightedCosts = ted.WeightedCosts

// DistanceWithCosts returns the minimum-cost edit script total between a and
// b under an arbitrary cost model. The similarity join's guarantees are
// proved for unit costs, so weighted distances are available here but not as
// a join threshold.
func DistanceWithCosts(a, b *Tree, costs Costs) int64 { return ted.DistanceCosts(a, b, costs) }

// ConstrainedDistance returns the constrained (LCA-preserving) edit distance
// between a and b under unit costs — the O(|a|·|b|) restriction of TED where
// disjoint subtrees must map to disjoint subtrees (Zhang 1995; the paper's
// related work [15, 24]). It never underestimates: ConstrainedDistance ≥
// Distance, with equality whenever the optimal mapping happens to preserve
// least common ancestors, so it doubles as a fast conservative screen — a
// pair within τ under the constrained distance is certainly within τ under
// TED.
func ConstrainedDistance(a, b *Tree) int { return ted.ConstrainedDistance(a, b) }

// ConstrainedDistanceWithCosts is ConstrainedDistance under an arbitrary
// cost model.
func ConstrainedDistanceWithCosts(a, b *Tree, costs Costs) int64 {
	return ted.ConstrainedDistanceCosts(a, b, costs)
}

// PQGramProfile is the bag of a tree's pq-grams, the alternative tree
// similarity measure of Augsten et al. discussed in the paper's related
// work. Profiles are cheap to build (linear time) and compare, but the
// pq-gram distance is an approximation, not a TED bound.
type PQGramProfile = pqgram.Profile

// NewPQGramProfile computes the pq-gram profile of t with stem length p and
// base width q (2 and 3 are the customary defaults).
func NewPQGramProfile(t *Tree, p, q int) *PQGramProfile { return pqgram.New(t, p, q) }

// PQGramDistance returns the normalised pq-gram distance in [0, 1] between
// two profiles of the same shape.
func PQGramDistance(a, b *PQGramProfile) float64 { return pqgram.Distance(a, b) }

// PQGramJoin reports every pair of trees whose normalised pq-gram distance
// is at most eps, in ascending (I, J) order — an approximate similarity join
// (no TED guarantee) evaluated through an inverted index over gram
// fingerprints, useful for candidate mining when an exact threshold is not
// required. p and q set the gram shape (2 and 3 are customary).
func PQGramJoin(ts []*Tree, p, q int, eps float64) [][2]int {
	return pqgram.JoinIndexed(ts, p, q, eps)
}
