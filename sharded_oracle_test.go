// Oracle tests for the sharded corpus: a ShardedCorpus must be
// shard-transparent — bit-identical, query for query, to a single Corpus
// over the same trees in the same order — across shard counts, methods,
// thresholds, and mutation histories, and its pinned Views must stay
// consistent under a concurrent Add/Remove hammer.
package treejoin_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

var shardCounts = []int{1, 2, 4, 7}

func mustSharded(t *testing.T, n int, ts []*treejoin.Tree) *treejoin.ShardedCorpus {
	t.Helper()
	sc, err := treejoin.NewSharded(n, ts)
	if err != nil {
		t.Fatalf("NewSharded(%d): %v", n, err)
	}
	return sc
}

func pairsEqual(t *testing.T, label string, got, want []treejoin.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func matchesEqual(t *testing.T, label string, got, want []treejoin.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestShardedSelfJoinOracle sweeps shard counts × methods × thresholds and
// requires the sharded self join to reproduce the single-corpus result
// exactly.
func TestShardedSelfJoinOracle(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(48, 11)
	cp := mustCorpus(t, ts)
	methods := []struct {
		name string
		opts []treejoin.Option
	}{
		{"partsj", nil},
		{"str", []treejoin.Option{treejoin.WithMethod(treejoin.MethodSTR)}},
		{"hist", []treejoin.Option{treejoin.WithMethod(treejoin.MethodHistogram)}},
	}
	for _, n := range shardCounts {
		sc := mustSharded(t, n, ts)
		if sc.Len() != cp.Len() || sc.NumShards() != n {
			t.Fatalf("shards=%d: Len=%d NumShards=%d", n, sc.Len(), sc.NumShards())
		}
		for _, m := range methods {
			for _, tau := range []int{0, 1, 2, 4} {
				label := fmt.Sprintf("shards=%d method=%s tau=%d", n, m.name, tau)
				want, _, err := cp.SelfJoin(ctx, tau, m.opts...)
				if err != nil {
					t.Fatalf("%s: oracle: %v", label, err)
				}
				got, stats, err := sc.SelfJoin(ctx, tau, m.opts...)
				if err != nil {
					t.Fatalf("%s: sharded: %v", label, err)
				}
				pairsEqual(t, label, got, want)
				if stats.Trees != len(ts) {
					t.Fatalf("%s: stats.Trees = %d, want %d", label, stats.Trees, len(ts))
				}
				if stats.Results != int64(len(want)) {
					t.Fatalf("%s: stats.Results = %d, want %d", label, stats.Results, len(want))
				}
			}
		}
	}
}

// TestShardedJoinOracle: the cross join against another corpus, swept over
// shard counts and thresholds.
func TestShardedJoinOracle(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(60, 7)
	left, right := ts[:40], ts[40:]
	cp := mustCorpus(t, left)
	other := mustCorpus(t, right)
	for _, n := range shardCounts {
		sc := mustSharded(t, n, left)
		for _, tau := range []int{0, 1, 2, 4} {
			label := fmt.Sprintf("join shards=%d tau=%d", n, tau)
			want, _, err := cp.Join(ctx, other, tau)
			if err != nil {
				t.Fatalf("%s: oracle: %v", label, err)
			}
			got, stats, err := sc.Join(ctx, other, tau)
			if err != nil {
				t.Fatalf("%s: sharded: %v", label, err)
			}
			pairsEqual(t, label, got, want)
			if stats.Results != int64(len(want)) {
				t.Fatalf("%s: stats.Results = %d, want %d", label, stats.Results, len(want))
			}
		}
	}
}

// TestShardedSearchTopKKNNOracle: the index-backed and threshold-free
// queries, swept over shard counts.
func TestShardedSearchTopKKNNOracle(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(48, 3)
	cp := mustCorpus(t, ts)
	q := ts[5]
	for _, n := range shardCounts {
		sc := mustSharded(t, n, ts)
		for _, tau := range []int{0, 2, 5} {
			want, err := cp.Search(ctx, q, tau)
			if err != nil {
				t.Fatalf("search oracle tau=%d: %v", tau, err)
			}
			got, err := sc.Search(ctx, q, tau)
			if err != nil {
				t.Fatalf("search shards=%d tau=%d: %v", n, tau, err)
			}
			matchesEqual(t, fmt.Sprintf("search shards=%d tau=%d", n, tau), got, want)
		}
		for _, k := range []int{1, 5, 20} {
			wantP, err := cp.TopK(ctx, k)
			if err != nil {
				t.Fatalf("topk oracle k=%d: %v", k, err)
			}
			gotP, err := sc.TopK(ctx, k)
			if err != nil {
				t.Fatalf("topk shards=%d k=%d: %v", n, k, err)
			}
			pairsEqual(t, fmt.Sprintf("topk shards=%d k=%d", n, k), gotP, wantP)

			wantM, err := cp.KNN(ctx, q, k)
			if err != nil {
				t.Fatalf("knn oracle k=%d: %v", k, err)
			}
			gotM, err := sc.KNN(ctx, q, k)
			if err != nil {
				t.Fatalf("knn shards=%d k=%d: %v", n, k, err)
			}
			matchesEqual(t, fmt.Sprintf("knn shards=%d k=%d", n, k), gotM, wantM)
		}
	}
}

// TestShardedMutationOracle drives the same Add/Remove history through a
// sharded corpus and a single corpus and requires identical ids, positions,
// and join results at every step.
func TestShardedMutationOracle(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(40, 19)
	for _, n := range shardCounts {
		cp := mustCorpus(t, ts[:20])
		sc := mustSharded(t, n, ts[:20])
		check := func(step string) {
			t.Helper()
			if sc.Len() != cp.Len() {
				t.Fatalf("shards=%d %s: Len %d vs %d", n, step, sc.Len(), cp.Len())
			}
			for i := 0; i < cp.Len(); i++ {
				if sc.ID(i) != cp.ID(i) || sc.Tree(i) != cp.Tree(i) {
					t.Fatalf("shards=%d %s: position %d diverges", n, step, i)
				}
			}
			want, _, err := cp.SelfJoin(ctx, 2)
			if err != nil {
				t.Fatalf("shards=%d %s: oracle join: %v", n, step, err)
			}
			got, _, err := sc.SelfJoin(ctx, 2)
			if err != nil {
				t.Fatalf("shards=%d %s: sharded join: %v", n, step, err)
			}
			pairsEqual(t, fmt.Sprintf("shards=%d %s", n, step), got, want)
		}
		check("seed")

		wantIDs, err := cp.Add(ts[20:30]...)
		if err != nil {
			t.Fatal(err)
		}
		gotIDs, err := sc.Add(ts[20:30]...)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("Add returned %d ids, want %d", len(gotIDs), len(wantIDs))
		}
		for i := range wantIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("Add id %d = %d, want %d", i, gotIDs[i], wantIDs[i])
			}
		}
		check("after add")

		drop := []int{1, 7, 22, 25, 999} // 999: unknown ids are skipped
		if got, want := sc.Remove(drop...), cp.Remove(drop...); got != want {
			t.Fatalf("Remove = %d, want %d", got, want)
		}
		check("after remove")

		if _, err := cp.Add(ts[30:]...); err != nil {
			t.Fatal(err)
		}
		if _, err := sc.Add(ts[30:]...); err != nil {
			t.Fatal(err)
		}
		check("after regrow")

		if p, ok := sc.PosOf(7); ok {
			t.Fatalf("PosOf(removed) = %d, true", p)
		}
	}
}

// TestShardedValidation: construction and query validation surfaces the
// corpus sentinels instead of panicking — no network-reachable panic path.
func TestShardedValidation(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(8, 1)

	if _, err := treejoin.NewSharded(0, ts); !errors.Is(err, treejoin.ErrShardCount) {
		t.Fatalf("NewSharded(0): err = %v, want ErrShardCount", err)
	}
	if _, err := treejoin.NewSharded(2, []*treejoin.Tree{ts[0], nil}); !errors.Is(err, treejoin.ErrNilTree) {
		t.Fatalf("nil tree: err = %v, want ErrNilTree", err)
	}
	foreign := treejoin.MustParseBracket("{a}", treejoin.NewLabelTable())
	if _, err := treejoin.NewSharded(2, []*treejoin.Tree{ts[0], foreign}); !errors.Is(err, treejoin.ErrLabelTable) {
		t.Fatalf("mixed tables: err = %v, want ErrLabelTable", err)
	}

	sc := mustSharded(t, 3, ts)
	if _, _, err := sc.SelfJoin(ctx, -1); !errors.Is(err, treejoin.ErrNegativeThreshold) {
		t.Fatalf("negative tau: err = %v, want ErrNegativeThreshold", err)
	}
	if _, _, err := sc.SelfJoin(ctx, 1, treejoin.WithMethod(treejoin.Method(99))); !errors.Is(err, treejoin.ErrUnknownMethod) {
		t.Fatalf("bad method: err = %v, want ErrUnknownMethod", err)
	}
	if _, _, err := sc.Join(ctx, nil, 1); !errors.Is(err, treejoin.ErrNilCorpus) {
		t.Fatalf("nil other: err = %v, want ErrNilCorpus", err)
	}
	if _, err := sc.Search(ctx, nil, 1); !errors.Is(err, treejoin.ErrNilTree) {
		t.Fatalf("nil query: err = %v, want ErrNilTree", err)
	}
	if _, err := sc.Search(ctx, foreign, 1); !errors.Is(err, treejoin.ErrLabelTable) {
		t.Fatalf("foreign query: err = %v, want ErrLabelTable", err)
	}
	if _, err := sc.KNN(ctx, foreign, 2); !errors.Is(err, treejoin.ErrLabelTable) {
		t.Fatalf("knn foreign query: err = %v, want ErrLabelTable", err)
	}
	if _, err := sc.TopK(ctx, 3, treejoin.WithMethod(treejoin.MethodSTR)); !errors.Is(err, treejoin.ErrOptionConflict) {
		t.Fatalf("topk method: err = %v, want ErrOptionConflict", err)
	}
	if _, err := sc.Add(nil); !errors.Is(err, treejoin.ErrNilTree) {
		t.Fatalf("add nil: err = %v, want ErrNilTree", err)
	}
	if _, err := sc.Add(foreign); !errors.Is(err, treejoin.ErrLabelTable) {
		t.Fatalf("add foreign: err = %v, want ErrLabelTable", err)
	}
}

// TestShardedViewIsolation: a View pinned before a mutation keeps answering
// from the pre-mutation state while the corpus itself moves on.
func TestShardedViewIsolation(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(24, 5)
	sc := mustSharded(t, 3, ts[:16])
	v := sc.View()

	want, _, err := v.SelfJoin(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Add(ts[16:]...); err != nil {
		t.Fatal(err)
	}
	sc.Remove(0, 3)
	if v.Len() != 16 || v.Epoch() == sc.Epoch() {
		t.Fatalf("view moved: Len=%d Epoch=%d (corpus %d)", v.Len(), v.Epoch(), sc.Epoch())
	}
	got, _, err := v.SelfJoin(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	pairsEqual(t, "pinned view", got, want)
}

// TestShardedConcurrentHammer races pinned-view queries of every kind
// against a stream of Add/Remove batches; run with -race. Each query's
// results must be internally consistent with the view it pinned.
func TestShardedConcurrentHammer(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(60, 23)
	sc := mustSharded(t, 4, ts[:30])
	q := ts[2]

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan error, 16)

	// Writer: adds and removes in waves, reusing the tail trees.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 60; i++ {
			ids, err := sc.Add(ts[30+rng.Intn(30)])
			if err != nil {
				fail <- fmt.Errorf("hammer add: %w", err)
				return
			}
			if rng.Intn(2) == 0 {
				sc.Remove(ids...)
			}
			sc.Remove(rng.Intn(90))
		}
		close(stop)
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := sc.View()
				n := v.Len()
				switch r % 4 {
				case 0:
					pairs, _, err := v.SelfJoin(ctx, 1)
					if err != nil {
						fail <- fmt.Errorf("hammer selfjoin: %w", err)
						return
					}
					for _, p := range pairs {
						if p.I < 0 || p.J >= n || p.I >= p.J {
							fail <- fmt.Errorf("hammer selfjoin: pair %+v outside view of %d", p, n)
							return
						}
					}
				case 1:
					ms, err := v.Search(ctx, q, 2)
					if err != nil {
						fail <- fmt.Errorf("hammer search: %w", err)
						return
					}
					for _, m := range ms {
						if m.Pos < 0 || m.Pos >= n {
							fail <- fmt.Errorf("hammer search: pos %d outside view of %d", m.Pos, n)
							return
						}
					}
				case 2:
					if _, err := v.KNN(ctx, q, 3); err != nil {
						fail <- fmt.Errorf("hammer knn: %w", err)
						return
					}
				case 3:
					for i := 0; i < n; i++ {
						if p, ok := v.PosOf(v.ID(i)); !ok || p != i {
							fail <- fmt.Errorf("hammer ids: ID/PosOf disagree at %d", i)
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	// The settled corpus still matches a fresh single corpus over the same
	// survivors.
	final := mustCorpus(t, collectTrees(sc))
	want, _, err := final.SelfJoin(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sc.SelfJoin(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	pairsEqual(t, "post-hammer", got, want)
}

func collectTrees(sc *treejoin.ShardedCorpus) []*treejoin.Tree {
	out := make([]*treejoin.Tree, sc.Len())
	for i := range out {
		out[i] = sc.Tree(i)
	}
	return out
}

// TestShardedStreamingStop: breaking out of SelfJoinSeq stops the fan-out
// without error, and WithStats receives the rollup after the sequence ends.
func TestShardedStreamingStop(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(40, 29)
	sc := mustSharded(t, 3, ts)

	var stats treejoin.Stats
	seq, err := sc.SelfJoinSeq(ctx, 4, treejoin.WithStats(&stats))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []treejoin.Pair
	for p := range seq {
		streamed = append(streamed, p)
	}
	want, _, err := sc.SelfJoin(ctx, 4)
	if err != nil {
		t.Fatal(err)
	}
	sortPairs(streamed)
	pairsEqual(t, "streamed full", streamed, want)
	if stats.Results != int64(len(want)) || stats.Trees != len(ts) {
		t.Fatalf("stats rollup: Results=%d Trees=%d, want %d/%d", stats.Results, stats.Trees, len(want), len(ts))
	}

	if len(want) > 1 {
		seq, err := sc.SelfJoinSeq(ctx, 4)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for range seq {
			got++
			if got == 1 {
				break
			}
		}
		if got != 1 {
			t.Fatalf("early break: %d pairs", got)
		}
	}
}
