package treejoin_test

import (
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

func swissprotSoak() []*treejoin.Tree { return synth.Swissprot(600, 97) }
func treebankSoak() []*treejoin.Tree  { return synth.Treebank(600, 98) }

func TestDistanceWithCosts(t *testing.T) {
	lt := treejoin.NewLabelTable()
	a := treejoin.MustParseBracket("{a{b}{c}}", lt)
	b := treejoin.MustParseBracket("{a{b}{d}}", lt)
	if d := treejoin.DistanceWithCosts(a, b, treejoin.UnitCosts{}); d != 1 {
		t.Fatalf("unit = %d", d)
	}
	w := treejoin.WeightedCosts{DeleteCost: 2, InsertCost: 2, RenameCost: 5}
	// rename c->d costs 5; delete+insert costs 4.
	if d := treejoin.DistanceWithCosts(a, b, w); d != 4 {
		t.Fatalf("weighted = %d", d)
	}
}

func TestPQGramPublicAPI(t *testing.T) {
	lt := treejoin.NewLabelTable()
	a := treejoin.MustParseBracket("{a{b}{c}{d}}", lt)
	b := treejoin.MustParseBracket("{a{b}{c}{e}}", lt)
	pa := treejoin.NewPQGramProfile(a, 2, 3)
	pb := treejoin.NewPQGramProfile(b, 2, 3)
	if d := treejoin.PQGramDistance(pa, pa); d != 0 {
		t.Fatalf("self distance = %f", d)
	}
	d := treejoin.PQGramDistance(pa, pb)
	if d <= 0 || d >= 1 {
		t.Fatalf("near-duplicate distance = %f", d)
	}
	far := treejoin.MustParseBracket("{x{y}{z{w}}}", lt)
	if fd := treejoin.PQGramDistance(pa, treejoin.NewPQGramProfile(far, 2, 3)); fd != 1 {
		t.Fatalf("disjoint distance = %f", fd)
	}
}

// TestSoakAllProfiles is a larger end-to-end pass (skipped with -short):
// 600 trees per profile, PartSJ (plain, hybrid, parallel) versus the
// brute-force oracle at τ = 2.
func TestSoakAllProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	profiles := map[string][]*treejoin.Tree{
		"swissprot": swissprotSoak(),
		"treebank":  treebankSoak(),
	}
	for name, ts := range profiles {
		want, _ := treejoin.SelfJoin(ts, 2, treejoin.WithMethod(treejoin.MethodBruteForce), treejoin.WithWorkers(4))
		for _, opts := range [][]treejoin.Option{
			nil,
			{treejoin.WithHybridVerification()},
			{treejoin.WithWorkers(4)},
		} {
			got, _ := treejoin.SelfJoin(ts, 2, opts...)
			if len(got) != len(want) {
				t.Fatalf("%s %v: %d pairs, oracle %d", name, opts, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s %v: pair %d differs", name, opts, i)
				}
			}
		}
	}
}
