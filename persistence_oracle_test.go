// The persistence oracle: a persistent corpus subjected to a random
// Add/Remove sequence interleaved with close/reopen cycles (and a SaveTo
// round trip) must remain observationally identical to a corpus freshly built
// over the surviving trees — bit-identical SelfJoin results for every method
// at every threshold. This extends the mutation oracle across the storage
// boundary: WAL replay, segment flushes, tombstones, compaction, and artifact
// seeding all sit on the query path it checks.
package treejoin_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

func TestPersistenceOracle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	cp, err := treejoin.Open(dir,
		treejoin.WithMemtableBudget(16), treejoin.WithStoreNoSync())
	if err != nil {
		t.Fatal(err)
	}
	// One synthetic pool re-interned into the store's label table; the first
	// 60 seed the corpus (enough to engage the token-index machinery), the
	// rest feed the Add stream.
	pool := reintern(synth.Generate(synth.SyntheticParams(95, 3, 5, 20, 60, 71)), cp.Labels())
	ids, err := cp.Add(pool[:60]...)
	if err != nil {
		t.Fatal(err)
	}
	liveIDs := append([]int(nil), ids...)
	next := 60
	rng := rand.New(rand.NewSource(43))

	for step := 0; step < 4; step++ {
		if rng.Intn(2) == 0 && next < len(pool) {
			n := 1 + rng.Intn(3)
			if next+n > len(pool) {
				n = len(pool) - next
			}
			ids, err := cp.Add(pool[next : next+n]...)
			if err != nil {
				t.Fatalf("step %d Add: %v", step, err)
			}
			liveIDs = append(liveIDs, ids...)
			next += n
		} else {
			n := 1 + rng.Intn(4)
			for k := 0; k < n && len(liveIDs) > 50; k++ {
				i := rng.Intn(len(liveIDs))
				if cp.Remove(liveIDs[i]) != 1 {
					t.Fatalf("step %d: Remove(%d) failed", step, liveIDs[i])
				}
				liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
			}
		}
		// Every other step crosses the storage boundary before checking.
		if step%2 == 1 {
			if err := cp.Close(); err != nil {
				t.Fatalf("step %d Close: %v", step, err)
			}
			cp, err = treejoin.Open(dir,
				treejoin.WithMemtableBudget(16), treejoin.WithStoreNoSync())
			if err != nil {
				t.Fatalf("step %d reopen: %v", step, err)
			}
			// Reopening rebuilds the label table from the manifest; the Add
			// stream must target the live table.
			pool = reintern(pool, cp.Labels())
		}
		checkSelfOracle(t, "persist step "+string(rune('0'+step)), cp)
	}

	// Stable ids must address the same trees across every cycle.
	for _, id := range liveIDs {
		if _, ok := cp.PosOf(id); !ok {
			t.Fatalf("live id %d lost across reopen cycles", id)
		}
	}
	if cp.Len() != len(liveIDs) {
		t.Fatalf("corpus has %d trees, oracle %d", cp.Len(), len(liveIDs))
	}

	// SaveTo leg: persist the survivors as a second store; its reopened
	// corpus must satisfy the same oracle, and a cross join between the two
	// reopened corpora must match fresh corpora over the same memberships.
	dir2 := filepath.Join(t.TempDir(), "saved")
	mem := mustCorpus(t, cp.Trees())
	if err := mem.SaveTo(dir2); err != nil {
		t.Fatal(err)
	}
	re, err := treejoin.Open(dir2, treejoin.WithStoreNoSync())
	if err != nil {
		t.Fatal(err)
	}
	checkSelfOracle(t, "persist saveto", re)
	other := mustCorpus(t, reintern(pool[:20], re.Labels()))
	checkCrossOracle(t, "persist cross", re, other)
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
}
