package treejoin_test

import (
	"bytes"
	"strings"
	"testing"

	"treejoin"
)

func TestReadNewickLines(t *testing.T) {
	in := `# species trees
(A,B)C;
(A,(B,D)E)F;

# blank lines and comments are skipped
G;
`
	lt := treejoin.NewLabelTable()
	ts, err := treejoin.ReadNewickLines(strings.NewReader(in), lt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("got %d trees", len(ts))
	}
	if got := treejoin.FormatNewick(ts[1]); got != "(A,(B,D)E)F;" {
		t.Fatalf("tree 1 = %q", got)
	}
	if _, err := treejoin.ReadNewickLines(strings.NewReader("(A,B;\n"), lt); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestDatasetRoundTripPublic(t *testing.T) {
	lt := treejoin.NewLabelTable()
	ts := []*treejoin.Tree{
		treejoin.MustParseBracket("{a{b}{c}}", lt),
		treejoin.MustParseBracket("{d{e{f}}}", lt),
	}
	var buf bytes.Buffer
	if err := treejoin.WriteDataset(&buf, lt, ts); err != nil {
		t.Fatal(err)
	}
	_, ts2, err := treejoin.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts2) != 2 {
		t.Fatalf("got %d trees", len(ts2))
	}
	for i := range ts {
		if treejoin.FormatBracket(ts[i]) != treejoin.FormatBracket(ts2[i]) {
			t.Fatalf("tree %d changed", i)
		}
	}
	// Joining the decoded collection works (labels re-interned consistently).
	pairs, _ := treejoin.SelfJoin(ts2, 10)
	if len(pairs) != 1 {
		t.Fatalf("join on decoded trees: %d pairs", len(pairs))
	}
}

func TestNewickDotBracketPublic(t *testing.T) {
	lt := treejoin.NewLabelTable()
	nw := treejoin.MustParseNewick("(A,B)C;", lt)
	if nw.Size() != 3 {
		t.Fatalf("newick size %d", nw.Size())
	}
	db, err := treejoin.ParseDotBracket("((.))", "GGACC", lt)
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 4 { // root + 2 pairs + 1 base
		t.Fatalf("dotbracket size %d", db.Size())
	}
	if _, err := treejoin.ParseDotBracket("((", "", lt); err == nil {
		t.Fatal("unbalanced accepted")
	}
}
