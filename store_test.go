package treejoin_test

import (
	"context"
	"path/filepath"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

// reintern rebuilds ts against lt (tree collections only join when they share
// one label table; a persistent corpus owns its table, so test trees from
// other generators are re-interned into it).
func reintern(ts []*treejoin.Tree, lt *treejoin.LabelTable) []*treejoin.Tree {
	out := make([]*treejoin.Tree, len(ts))
	for i, t := range ts {
		out[i] = treejoin.MustParseBracket(treejoin.FormatBracket(t), lt)
	}
	return out
}

func TestStoreLifecycle(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "store")
	cp, err := treejoin.Open(dir, treejoin.WithStoreNoSync())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cp.StoreStats(); !ok {
		t.Fatal("persistent corpus reports no store stats")
	}
	pool := reintern(synth.Synthetic(30, 7), cp.Labels())
	ids, err := cp.Add(pool...)
	if err != nil {
		t.Fatal(err)
	}
	cp.Remove(ids[3], ids[17])
	want, _, err := cp.SelfJoin(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Add(pool[0]); err == nil {
		t.Fatal("Add after Close succeeded")
	}

	re, err := treejoin.Open(dir, treejoin.WithStoreNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(pool)-2 {
		t.Fatalf("reopened corpus has %d trees, want %d", re.Len(), len(pool)-2)
	}
	// Stable ids survive the round trip: the removed ids stay gone, the rest
	// resolve to trees equal to what was stored.
	if _, ok := re.PosOf(ids[3]); ok {
		t.Fatal("removed id resurrected by reopen")
	}
	p, ok := re.PosOf(ids[5])
	if !ok {
		t.Fatalf("id %d lost by reopen", ids[5])
	}
	if treejoin.FormatBracket(re.Tree(p)) != treejoin.FormatBracket(pool[5]) {
		t.Fatalf("id %d maps to a different tree after reopen", ids[5])
	}
	got, _, err := re.SelfJoin(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reopened SelfJoin: %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("reopened SelfJoin pair %d: %+v != %+v", i, got[i], want[i])
		}
	}
	st, _ := re.StoreStats()
	if st.SegmentsOpened == 0 {
		t.Fatalf("reopen decoded no segments: %+v", st)
	}
	if st.MemtableTrees != 0 {
		t.Fatalf("reopen after clean Close left memtable trees: %+v", st)
	}
}

// TestStoreBeyondMemtableBudget is the out-of-core acceptance check: a corpus
// whose membership exceeds the memtable budget many times over must stage
// through multiple segment flushes and still join identically to a fresh
// in-memory corpus over the same trees.
func TestStoreBeyondMemtableBudget(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	cp, err := treejoin.Open(dir, treejoin.WithMemtableBudget(8), treejoin.WithStoreNoSync())
	if err != nil {
		t.Fatal(err)
	}
	pool := reintern(synth.Synthetic(60, 11), cp.Labels())
	// Add in small batches so flushes interleave with visible state.
	for i := 0; i < len(pool); i += 5 {
		if _, err := cp.Add(pool[i : i+5]...); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := cp.StoreStats()
	if st.Segments < 2 || st.FlushRuns < 2 {
		t.Fatalf("budget 8 with 60 trees did not spill to segments: %+v", st)
	}
	if st.MemtableTrees >= 8 {
		t.Fatalf("memtable exceeds its budget: %+v", st)
	}
	checkSelfOracle(t, "beyond-budget", cp)
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := treejoin.Open(dir, treejoin.WithStoreNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	checkSelfOracle(t, "beyond-budget reopen", re)
}

func TestStoreCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	cp, err := treejoin.Open(dir, treejoin.WithMemtableBudget(8), treejoin.WithStoreNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	pool := reintern(synth.Synthetic(40, 13), cp.Labels())
	ids, err := cp.Add(pool...)
	if err != nil {
		t.Fatal(err)
	}
	cp.Remove(ids[:30]...)
	if err := cp.Compact(); err != nil {
		t.Fatal(err)
	}
	st, _ := cp.StoreStats()
	if st.TombstonedTrees != 0 {
		t.Fatalf("tombstones survived forced compaction: %+v", st)
	}
	if st.CompactionRuns == 0 {
		t.Fatalf("compaction did not run: %+v", st)
	}
	checkSelfOracle(t, "compacted", cp)

	mem, err := treejoin.NewCorpus(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Compact(); err != treejoin.ErrNotPersistent {
		t.Fatalf("Compact on in-memory corpus: %v", err)
	}
	if _, ok := mem.StoreStats(); ok {
		t.Fatal("in-memory corpus reports store stats")
	}
}

func TestSaveToAndReopen(t *testing.T) {
	ctx := context.Background()
	pool := synth.Synthetic(50, 17)
	cp := mustCorpus(t, pool)
	// Warm the cache so SaveTo persists computed artifacts, not rebuilt ones.
	if _, _, err := cp.SelfJoin(ctx, 2, treejoin.WithMethod(treejoin.MethodPQGram)); err != nil {
		t.Fatal(err)
	}
	want, _, err := cp.SelfJoin(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "saved")
	if err := cp.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	if err := cp.SaveTo(dir); err == nil {
		t.Fatal("SaveTo over an existing store succeeded")
	}

	re, err := treejoin.Open(dir, treejoin.WithStoreNoSync())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(pool) {
		t.Fatalf("reopened %d trees, want %d", re.Len(), len(pool))
	}
	// The reopened corpus starts warm: segment-resident views and token bags
	// seed the cache before the first query.
	if st := re.CacheStats(); st.Entries == 0 {
		t.Fatalf("reopen seeded no artifacts: %+v", st)
	}
	got, _, err := re.SelfJoin(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("SelfJoin after SaveTo/Open: %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d: %+v != %+v", i, got[i], want[i])
		}
	}
}
