package treejoin

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"

	"treejoin/internal/core"
	"treejoin/internal/engine"
	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// Errors returned by the Corpus API. The legacy free functions panic on the
// same conditions; the Corpus surfaces them as wrapped sentinels so callers
// can test with errors.Is.
var (
	// ErrNilTree reports a nil *Tree in a corpus or as a query.
	ErrNilTree = errors.New("treejoin: nil tree")
	// ErrLabelTable reports trees that do not share one LabelTable — within
	// a corpus, across the two sides of a cross join, or between a query and
	// the corpus it searches.
	ErrLabelTable = errors.New("treejoin: trees do not share one LabelTable")
	// ErrNegativeThreshold reports a TED threshold τ < 0.
	ErrNegativeThreshold = errors.New("treejoin: negative threshold")
	// ErrUnknownMethod reports a Method value that names no join algorithm.
	ErrUnknownMethod = errors.New("treejoin: unknown method")
	// ErrUnknownPrefilter reports a Prefilter value that names no stage.
	ErrUnknownPrefilter = errors.New("treejoin: unknown prefilter")
	// ErrNilCorpus reports a nil *Corpus argument.
	ErrNilCorpus = errors.New("treejoin: nil corpus")
	// ErrOptionConflict reports an option combination the operation cannot
	// honor (e.g. WithMethod(MethodSTR) on a Search, which always runs on
	// the PartSJ index).
	ErrOptionConflict = errors.New("treejoin: conflicting options")
)

// CacheStats reports the effectiveness of a corpus's signature cache: Hits
// and Misses count per-tree artifact lookups, Entries the artifacts
// currently retained. A warm corpus re-joined at a new threshold shows
// Misses frozen — zero per-tree signature recomputation.
type CacheStats = engine.CacheStats

// Corpus is the primary entry point for joining and querying a fixed
// collection of trees: construct it once, query it many times. All trees
// must share one LabelTable (validated — NewCorpus returns an error instead
// of producing silently wrong joins).
//
// The corpus owns a signature cache: every per-tree artifact any query
// computes — traversal strings, histograms, Euler strings and gram bags,
// binary views, δ-partitions, and the verifier's Zhang–Shasha preparations
// (postorder labels, leftmost-leaf indices, keyroots of both
// decompositions) — is cached by (artifact, tree) and reused by every later
// query, whatever its threshold or method. A second SelfJoin at a different
// τ recomputes no per-tree signature and re-runs no prepare; only the
// τ-dependent pair predicates and candidate enumeration run again. Search and KNN queries
// additionally share a small LRU of per-threshold PartSJ indexes (see
// WithIndexCacheCap). The cache never evicts: its memory is bounded by the
// filter kinds and PartSJ thresholds actually queried (see DESIGN.md,
// "The corpus artifact cache"); workloads sweeping unboundedly many
// distinct thresholds should recycle the corpus, whose only state is this
// cache.
//
// Every query takes a context.Context: cancellation or deadline expiry
// aborts the engine's candidate loops, worker pools, and verification stage
// promptly, returning ctx's error together with whatever partial results and
// statistics had accumulated. The Seq variants stream results as the
// pipeline verifies them, in no particular order, with constant result
// memory — ranging over a handful of pairs and breaking early cancels the
// rest of the join.
//
// A Corpus is immutable after construction and safe for concurrent use.
type Corpus struct {
	ts       []*Tree
	lt       *LabelTable
	cache    *engine.Cache
	members  map[*Tree]struct{} // for routing cross-join artifacts by owner
	indexCap int

	mu        sync.Mutex
	searchers map[searcherKey]*core.KNN
}

// searcherKey identifies one index configuration of the per-corpus search
// machinery: queries differing only in threshold share a searcher (and its
// per-threshold index LRU).
type searcherKey struct {
	pos    core.PositionFilter
	hybrid bool
}

// NewCorpus validates ts (no nil trees, one shared LabelTable) and returns a
// corpus over it. The slice is copied; the trees are shared, which is safe —
// trees are immutable. Corpus-level options are applied here (currently
// WithIndexCacheCap); per-query options go to the individual calls.
func NewCorpus(ts []*Tree, opts ...Option) (*Corpus, error) {
	c := buildConfig(opts)
	cp := &Corpus{
		ts:        make([]*Tree, len(ts)),
		cache:     engine.NewCache(),
		members:   make(map[*Tree]struct{}, len(ts)),
		indexCap:  c.indexCap,
		searchers: make(map[searcherKey]*core.KNN),
	}
	copy(cp.ts, ts)
	for i, t := range cp.ts {
		if t == nil {
			return nil, fmt.Errorf("%w at index %d", ErrNilTree, i)
		}
		if cp.lt == nil {
			cp.lt = t.Labels
		} else if t.Labels != cp.lt {
			return nil, fmt.Errorf("%w (tree %d)", ErrLabelTable, i)
		}
		cp.members[t] = struct{}{}
	}
	return cp, nil
}

// Len returns the number of trees in the corpus.
func (cp *Corpus) Len() int { return len(cp.ts) }

// Tree returns the i-th corpus tree.
func (cp *Corpus) Tree(i int) *Tree { return cp.ts[i] }

// CacheStats returns a snapshot of the corpus's signature-cache counters.
func (cp *Corpus) CacheStats() CacheStats { return cp.cache.Stats() }

// SelfJoin reports every unordered pair of corpus trees whose tree edit
// distance is at most tau, in ascending (I, J) order, with execution
// statistics. Per-tree signatures come from the corpus cache — a repeat join
// at any threshold recomputes none of them. On cancellation it returns the
// pairs found so far (still sorted), the partial statistics, and ctx's
// error.
func (cp *Corpus) SelfJoin(ctx context.Context, tau int, opts ...Option) ([]Pair, Stats, error) {
	c := buildConfig(opts)
	job, err := c.jobChecked(tau)
	if err != nil {
		return nil, Stats{}, err
	}
	job.Cache = cp.cache
	var pairs []Pair
	st, err := job.StreamSelf(ctx, cp.ts, func(p Pair) bool {
		pairs = append(pairs, p)
		return true
	})
	sim.SortPairs(pairs)
	c.publishStats(st)
	return pairs, *st, err
}

// SelfJoinSeq is the streaming SelfJoin: it returns a sequence that runs the
// join when ranged over, yielding each verified pair as the pipeline
// produces it — constant result memory, no ordering guarantee (sort the
// collected pairs, or use SelfJoin, for the canonical order). Breaking out
// of the range stops the join; ranging again re-runs it (cheaply, against
// the warm cache). Use WithStats to receive the run's statistics after the
// sequence ends. Option and threshold validation happens eagerly, before the
// sequence is returned; cancellation simply ends the sequence early — check
// ctx.Err() afterwards to distinguish completion from abort.
func (cp *Corpus) SelfJoinSeq(ctx context.Context, tau int, opts ...Option) (iter.Seq[Pair], error) {
	c := buildConfig(opts)
	job, err := c.jobChecked(tau)
	if err != nil {
		return nil, err
	}
	job.Cache = cp.cache
	return func(yield func(Pair) bool) {
		st, _ := job.StreamSelf(ctx, cp.ts, sim.EmitFunc(yield))
		c.publishStats(st)
	}, nil
}

// Join reports every cross pair (a ∈ this corpus, b ∈ other) within
// distance tau; Pair.I indexes into the receiver and Pair.J into other. The
// corpora must share one LabelTable (validated). Signatures for both sides
// are drawn from — and cached in — the receiver's cache, so repeated joins
// against the same partner warm up too.
func (cp *Corpus) Join(ctx context.Context, other *Corpus, tau int, opts ...Option) ([]Pair, Stats, error) {
	c := buildConfig(opts)
	job, err := cp.crossJob(c, other, tau)
	if err != nil {
		return nil, Stats{}, err
	}
	var pairs []Pair
	st, err := job.StreamJoin(ctx, cp.ts, other.ts, func(p Pair) bool {
		pairs = append(pairs, p)
		return true
	})
	sim.SortPairs(pairs)
	c.publishStats(st)
	return pairs, *st, err
}

// JoinSeq is the streaming Join, with SelfJoinSeq's contract.
func (cp *Corpus) JoinSeq(ctx context.Context, other *Corpus, tau int, opts ...Option) (iter.Seq[Pair], error) {
	c := buildConfig(opts)
	job, err := cp.crossJob(c, other, tau)
	if err != nil {
		return nil, err
	}
	return func(yield func(Pair) bool) {
		st, _ := job.StreamJoin(ctx, cp.ts, other.ts, sim.EmitFunc(yield))
		c.publishStats(st)
	}, nil
}

// crossJob validates a cross join against other and assembles its job. The
// run's cache routes each tree's artifacts to the corpus that owns it, so
// both sides warm their own caches and neither retains (and pins) the
// other's trees; trees belonging to neither side land in the receiver's.
func (cp *Corpus) crossJob(c config, other *Corpus, tau int) (engine.Job, error) {
	if other == nil {
		return engine.Job{}, ErrNilCorpus
	}
	if cp.lt != nil && other.lt != nil && cp.lt != other.lt {
		return engine.Job{}, fmt.Errorf("%w (cross join)", ErrLabelTable)
	}
	job, err := c.jobChecked(tau)
	if err != nil {
		return engine.Job{}, err
	}
	job.Cache = engine.RoutedCache(func(t *tree.Tree) *engine.Cache {
		if _, ok := cp.members[t]; ok {
			return cp.cache
		}
		if _, ok := other.members[t]; ok {
			return other.cache
		}
		return cp.cache
	})
	return job, nil
}

// Search reports every corpus tree within TED tau of q, in ascending corpus
// order. The per-threshold PartSJ index is built on first use and retained
// in the corpus's index LRU, so repeated searches at the same threshold pay
// only probing and verification. Search always runs on the PartSJ index;
// WithMethod, WithPrefilter, and WithShards conflict with it.
func (cp *Corpus) Search(ctx context.Context, q *Tree, tau int, opts ...Option) ([]Match, error) {
	if tau < 0 {
		return nil, fmt.Errorf("%w %d", ErrNegativeThreshold, tau)
	}
	c, err := cp.queryConfig(q, "Search", opts)
	if err != nil {
		return nil, err
	}
	return cp.searcher(c).IndexAt(tau).SearchCtx(ctx, q)
}

// TopK returns the k closest pairs of the corpus by TED, ordered by
// (Dist, I, J) — the threshold-free SelfJoin. It runs PartSJ at
// geometrically increasing thresholds until k pairs are in reach; fewer than
// k pairs come back only when the corpus has fewer than k pairs in total.
// All rounds draw on the corpus cache, and WithWorkers/WithShards
// parallelise them. On cancellation it returns the pairs the aborted round
// had found (best-effort, not necessarily the global top k) and ctx's
// error. TopK always runs PartSJ; WithMethod and WithPrefilter conflict
// with it.
func (cp *Corpus) TopK(ctx context.Context, k int, opts ...Option) ([]Pair, error) {
	c := buildConfig(opts)
	if err := c.requirePartSJ("TopK", true); err != nil {
		return nil, err
	}
	return core.TopKCtx(ctx, cp.ts, k, c.coreOptions(0), c.shards, cp.cache)
}

// KNN returns the k corpus trees closest to q by TED, ordered by
// (Dist, Pos), with no threshold required. It searches per-threshold indexes
// at expanding thresholds, sharing Search's index LRU, so a query workload
// settles into reusing a handful of them. Fewer than k matches are returned
// only when the corpus holds fewer than k trees. KNN always runs on the
// PartSJ index; WithMethod, WithPrefilter, and WithShards conflict with
// it.
func (cp *Corpus) KNN(ctx context.Context, q *Tree, k int, opts ...Option) ([]Match, error) {
	c, err := cp.queryConfig(q, "KNN", opts)
	if err != nil {
		return nil, err
	}
	return cp.searcher(c).NearestCtx(ctx, q, k)
}

// Incremental returns an empty streaming join with threshold tau that shares
// the corpus's signature cache: trees the corpus has already joined (or that
// were added before) enter the stream without recomputing their binary view
// or partition. The stream itself starts empty — it does not contain the
// corpus trees.
func (cp *Corpus) Incremental(tau int, opts ...Option) (*Incremental, error) {
	if tau < 0 {
		return nil, fmt.Errorf("%w %d", ErrNegativeThreshold, tau)
	}
	c := buildConfig(opts)
	if err := c.requirePartSJ("Incremental", false); err != nil {
		return nil, err
	}
	return &Incremental{inner: core.NewIncrementalCached(c.coreOptions(tau), cp.cache)}, nil
}

// queryConfig validates a query tree and the options of an index-backed
// query (Search, KNN).
func (cp *Corpus) queryConfig(q *Tree, op string, opts []Option) (config, error) {
	c := buildConfig(opts)
	if q == nil {
		return c, fmt.Errorf("%w (query)", ErrNilTree)
	}
	if cp.lt != nil && q.Labels != cp.lt {
		return c, fmt.Errorf("%w (query)", ErrLabelTable)
	}
	if err := c.requirePartSJ(op, false); err != nil {
		return c, err
	}
	return c, nil
}

// requirePartSJ rejects options an index-backed or expanding-threshold
// operation cannot honor. allowShards permits WithShards where the
// underlying runs are shardable engine joins (TopK).
func (c config) requirePartSJ(op string, allowShards bool) error {
	if c.method != MethodPartSJ {
		return fmt.Errorf("%w: %s supports MethodPartSJ only", ErrOptionConflict, op)
	}
	if len(c.prefilters) > 0 {
		return fmt.Errorf("%w: %s does not take prefilters", ErrOptionConflict, op)
	}
	if !allowShards && c.shards > 1 {
		return fmt.Errorf("%w: %s does not shard", ErrOptionConflict, op)
	}
	return nil
}

// searcher returns the index machinery for c's index configuration,
// creating it on first use.
func (cp *Corpus) searcher(c config) *core.KNN {
	key := searcherKey{pos: c.position, hybrid: c.hybrid}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	s := cp.searchers[key]
	if s == nil {
		capacity := cp.indexCap
		if capacity < 1 {
			capacity = core.DefaultIndexCacheCap
		}
		o := c.coreOptions(1) // Tau here only seeds KNN's expanding search
		s = core.NewKNNCached(cp.ts, o, cp.cache, capacity)
		cp.searchers[key] = s
	}
	return s
}
