package treejoin

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"maps"
	"slices"
	"sync"
	"sync/atomic"

	"treejoin/internal/core"
	"treejoin/internal/engine"
	"treejoin/internal/engine/plan"
	"treejoin/internal/segstore"
	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// Errors returned by the Corpus API. The legacy free functions panic on the
// same conditions; the Corpus surfaces them as wrapped sentinels so callers
// can test with errors.Is.
var (
	// ErrNilTree reports a nil *Tree in a corpus or as a query.
	ErrNilTree = errors.New("treejoin: nil tree")
	// ErrLabelTable reports trees that do not share one LabelTable — within
	// a corpus, across the two sides of a cross join, or between a query and
	// the corpus it searches.
	ErrLabelTable = errors.New("treejoin: trees do not share one LabelTable")
	// ErrNegativeThreshold reports a TED threshold τ < 0.
	ErrNegativeThreshold = errors.New("treejoin: negative threshold")
	// ErrUnknownMethod reports a Method value that names no join algorithm.
	ErrUnknownMethod = errors.New("treejoin: unknown method")
	// ErrUnknownPrefilter reports a Prefilter value that names no stage.
	ErrUnknownPrefilter = errors.New("treejoin: unknown prefilter")
	// ErrNilCorpus reports a nil *Corpus argument.
	ErrNilCorpus = errors.New("treejoin: nil corpus")
	// ErrOptionConflict reports an option combination the operation cannot
	// honor (e.g. WithMethod(MethodSTR) on a Search, which always runs on
	// the PartSJ index).
	ErrOptionConflict = errors.New("treejoin: conflicting options")
	// ErrImmutableSnapshot reports Add or Remove on a corpus view obtained
	// from Snapshot, which is frozen at its epoch by design.
	ErrImmutableSnapshot = errors.New("treejoin: corpus snapshot is immutable")
)

// CacheStats reports the effectiveness of a corpus's signature cache: Hits
// and Misses count per-tree artifact lookups, Entries the artifacts
// currently retained. A warm corpus re-joined at a new threshold shows
// Misses frozen — zero per-tree signature recomputation.
type CacheStats = engine.CacheStats

// corpusState is one immutable epoch of a corpus: the live trees in
// insertion order, their stable public ids, and every structure derived
// from the membership (the ownership set for cross-join cache routing, the
// persistent token-index snapshots). Mutations build a new state and swap
// the pointer — copy-on-write — so a query that loaded a state keeps a
// perfectly consistent view for its whole run while writers proceed.
type corpusState struct {
	epoch  int64
	ts     []*Tree
	ids    []int       // public id of the tree at each position
	pos    map[int]int // id -> current position
	nextID int
	lt     *LabelTable
	// members routes cross-join artifacts by owner (see crossJob).
	members map[*Tree]struct{}
	// tokidx holds the persistent token-index snapshots, by tokenizer name.
	// Materialised lazily by the first signature-method join after the
	// corpus has mutated; maintained by every later Add/Remove.
	tokidx map[string]dynEntry
}

type dynEntry struct {
	tz   engine.Tokenizer
	snap *engine.TokenSnap
}

// Corpus is the primary entry point for joining and querying a collection
// of trees: construct it once, query it many times, and — since the corpus
// is fully dynamic — mutate it in place with Add and Remove as documents
// arrive, change, and disappear. All trees must share one LabelTable
// (validated — NewCorpus and Add return errors instead of producing
// silently wrong joins).
//
// The corpus owns a signature cache: every per-tree artifact any query
// computes — traversal strings, histograms, Euler strings and gram bags,
// binary views, δ-partitions, and the verifier's Zhang–Shasha preparations
// (postorder labels, leftmost-leaf indices, keyroots of both
// decompositions) — is cached by (artifact, tree) and reused by every later
// query, whatever its threshold or method. A second SelfJoin at a different
// τ recomputes no per-tree signature and re-runs no prepare; only the
// τ-dependent pair predicates and candidate enumeration run again. Search
// and KNN queries additionally share a small LRU of per-threshold PartSJ
// indexes (see WithIndexCacheCap). Removing trees evicts their artifacts,
// so the cache's memory tracks the live collection; beyond that it never
// evicts — its size is bounded by the filter kinds and PartSJ thresholds
// actually queried (see DESIGN.md, "The corpus artifact cache").
//
// Mutations are epoch-versioned with copy-on-write snapshots: Add and
// Remove build a new immutable state and swap it in, so every query — and
// every in-flight SelfJoinSeq or Search iterator — runs against the exact
// membership it started with, while writers proceed concurrently. Queries
// index trees by dense position (0..Len()-1 in insertion order, exactly as
// a freshly built corpus over the same trees would); positions shift when
// earlier trees are removed, so mutations address trees by the stable ids
// Add returns (ID and PosOf translate). Snapshot pins the current epoch as
// a frozen corpus view. A mutated corpus also keeps its token inverted
// index live across joins — posting lists are appended on Add and
// tombstoned on Remove, compacting when tombstones exceed half the
// postings — instead of rebuilding it per join (see DESIGN.md, "Dynamic
// corpora").
//
// Every query takes a context.Context: cancellation or deadline expiry
// aborts the engine's candidate loops, worker pools, and verification stage
// promptly, returning ctx's error together with whatever partial results and
// statistics had accumulated. The Seq variants stream results as the
// pipeline verifies them, in no particular order, with constant result
// memory — ranging over a handful of pairs and breaking early cancels the
// rest of the join.
//
// A Corpus is safe for concurrent use, including concurrent readers with
// writers; Add/Remove serialise against each other.
type Corpus struct {
	state    atomic.Pointer[corpusState]
	cache    *engine.Cache
	indexCap int
	frozen   bool    // a Snapshot view: mutations are rejected
	parent   *Corpus // the live corpus behind a Snapshot view; nil otherwise

	// overflow catches artifacts of trees no longer live in the corpus: a
	// query pinned to a pre-Remove state (a Snapshot, an in-flight
	// iterator) that recomputes a dead tree's signature stores it here, not
	// in the shared cache — so Remove's eviction is never undone and the
	// shared cache's memory genuinely tracks the live collection. Set only
	// on Snapshot views (it dies with the view); a live corpus uses a
	// per-run overflow instead (see runCache), so racing writes never
	// accumulate.
	overflow *engine.Cache

	writeMu sync.Mutex // serialises mutations and token-index installs

	// store backs a persistent corpus (see Open): mutations write through to
	// it — WAL first, then the published state — so an acknowledged Add or
	// Remove survives a crash. Nil for in-memory corpora.
	store      *segstore.Store
	persistent bool

	// planner is the corpus's learned cost model behind WithAutoPlan (the
	// default): per-stage selectivity and cost observed from completed runs,
	// decayed per mutation epoch. Shared with Snapshot views — a snapshot's
	// runs teach the same model, down-weighted by the epochs they lag. See
	// internal/engine/plan and autoplan.go.
	planner *plan.Model

	mu            sync.Mutex
	searchers     map[searcherKey]*core.KNN
	searcherEpoch int64
}

// runCache returns the cache a query on cp should read and write through: a
// router sending each tree's artifacts to the shared cache while the tree is
// live in the (parent) corpus's current state, and to an overflow once it is
// not. A Snapshot view routes to its per-view overflow (queries on the view
// stay warm together; it dies with the view); a live corpus only hits the
// overflow when a query races a Remove, so it gets a per-run one that dies
// with the query — overflow memory never outlives whoever needed it.
func (cp *Corpus) runCache() *engine.Cache {
	live, over := cp, cp.overflow
	if cp.parent != nil {
		live = cp.parent
	}
	if over == nil {
		over = engine.NewCache()
	}
	return engine.RoutedCache(func(t *tree.Tree) *engine.Cache {
		if _, ok := live.state.Load().members[t]; ok {
			return live.cache
		}
		return over
	})
}

// searcherKey identifies one index configuration of the per-corpus search
// machinery: queries differing only in threshold share a searcher (and its
// per-threshold index LRU).
type searcherKey struct {
	pos    core.PositionFilter
	hybrid bool
}

// NewCorpus validates ts (no nil trees, one shared LabelTable) and returns a
// corpus over it. The slice is copied; the trees are shared, which is safe —
// trees are immutable. Corpus-level options are applied here (currently
// WithIndexCacheCap); per-query options go to the individual calls.
func NewCorpus(ts []*Tree, opts ...Option) (*Corpus, error) {
	c := buildConfig(opts)
	st := &corpusState{
		ts:      slices.Clone(ts),
		ids:     make([]int, len(ts)),
		pos:     make(map[int]int, len(ts)),
		nextID:  len(ts),
		members: make(map[*Tree]struct{}, len(ts)),
	}
	for i, t := range st.ts {
		if t == nil {
			return nil, fmt.Errorf("%w at index %d", ErrNilTree, i)
		}
		if st.lt == nil {
			st.lt = t.Labels
		} else if t.Labels != st.lt {
			return nil, fmt.Errorf("%w (tree %d)", ErrLabelTable, i)
		}
		st.ids[i] = i
		st.pos[i] = i
		st.members[t] = struct{}{}
	}
	cp := &Corpus{
		cache:     engine.NewCache(),
		indexCap:  c.indexCap,
		searchers: make(map[searcherKey]*core.KNN),
		planner:   plan.New(),
	}
	cp.state.Store(st)
	return cp, nil
}

// Len returns the number of live trees in the corpus. Each call reads the
// current state, so a Len-then-Tree loop racing a concurrent Remove can see
// positions disappear between calls — iterate over Trees() or a Snapshot()
// when writers may be active.
func (cp *Corpus) Len() int { return len(cp.state.Load().ts) }

// Tree returns the tree at position i (0 ≤ i < Len(), insertion order over
// the live trees) of the current state; see Len for the concurrent-mutation
// caveat.
func (cp *Corpus) Tree(i int) *Tree { return cp.state.Load().ts[i] }

// Trees returns a copy of the live trees in position order, read from one
// state — the race-free way to enumerate a corpus that concurrent writers
// may be mutating (each query method pins its state the same way).
func (cp *Corpus) Trees() []*Tree { return slices.Clone(cp.state.Load().ts) }

// ID returns the stable id of the tree at position i of the current state
// (see Len for the concurrent-mutation caveat). Ids are assigned by
// NewCorpus (0..n-1) and Add (continuing the sequence) and never reused;
// they survive removals of other trees, which shift positions but not ids.
func (cp *Corpus) ID(i int) int { return cp.state.Load().ids[i] }

// PosOf returns the current position of the tree with the given id, or
// false when the id was never assigned or its tree has been removed.
func (cp *Corpus) PosOf(id int) (int, bool) {
	p, ok := cp.state.Load().pos[id]
	return p, ok
}

// Epoch returns the corpus's mutation epoch: 0 at construction, bumped by
// every Add and Remove batch. Two reads at the same epoch observed the same
// membership.
func (cp *Corpus) Epoch() int64 { return cp.state.Load().epoch }

// CacheStats returns a snapshot of the corpus's signature-cache counters.
func (cp *Corpus) CacheStats() CacheStats { return cp.cache.Stats() }

// Snapshot returns a frozen view of the corpus at its current epoch: a
// corpus whose queries all run against this exact membership, unaffected by
// later Add/Remove on the parent (which proceed without blocking). The view
// shares the parent's signature cache, so its queries stay warm; artifacts
// of trees the parent has since removed land in a view-local overflow that
// is garbage-collected with the view, so a snapshot can never undo the
// parent's evictions. Add and Remove on the view return ErrImmutableSnapshot
// (respectively 0).
func (cp *Corpus) Snapshot() *Corpus {
	parent := cp
	if cp.parent != nil {
		parent = cp.parent
	}
	s := &Corpus{
		cache:     cp.cache,
		overflow:  engine.NewCache(),
		indexCap:  cp.indexCap,
		frozen:    true,
		parent:    parent,
		searchers: make(map[searcherKey]*core.KNN),
		planner:   cp.planner,
	}
	st := cp.state.Load()
	s.state.Store(st)
	s.searcherEpoch = st.epoch
	return s
}

// Add appends ts to the corpus (they become the highest positions, in
// order) and returns their stable ids. Validation matches NewCorpus: no nil
// trees, one shared LabelTable (an empty corpus adopts the first added
// tree's table). The mutation is atomic — queries see either none or all of
// the batch — and keeps every maintained artifact live: cached signatures
// of existing trees are untouched, and materialised token-index posting
// lists are appended to, not rebuilt. In-flight queries continue on their
// pre-Add snapshot.
func (cp *Corpus) Add(ts ...*Tree) ([]int, error) {
	if cp.frozen {
		return nil, ErrImmutableSnapshot
	}
	if len(ts) == 0 {
		return nil, nil
	}
	cp.writeMu.Lock()
	defer cp.writeMu.Unlock()
	st := cp.state.Load()
	lt := st.lt
	for i, t := range ts {
		if t == nil {
			return nil, fmt.Errorf("%w (added tree %d)", ErrNilTree, i)
		}
		if lt == nil {
			lt = t.Labels
		} else if t.Labels != lt {
			return nil, fmt.Errorf("%w (added tree %d)", ErrLabelTable, i)
		}
	}
	ns := &corpusState{
		epoch:   st.epoch + 1,
		ts:      append(slices.Clone(st.ts), ts...),
		ids:     slices.Clone(st.ids),
		pos:     maps.Clone(st.pos),
		nextID:  st.nextID + len(ts),
		lt:      lt,
		members: maps.Clone(st.members),
		tokidx:  make(map[string]dynEntry, len(st.tokidx)),
	}
	ids := make([]int, len(ts))
	for i, t := range ts {
		id := st.nextID + i
		ids[i] = id
		ns.ids = append(ns.ids, id)
		ns.pos[id] = len(st.ts) + i
		ns.members[t] = struct{}{}
	}
	// Write-through for a persistent corpus: every tree reaches the store's
	// WAL before the new state publishes, so an acknowledged Add survives a
	// crash. On error nothing publishes — though an I/O failure mid-batch can
	// leave a prefix of the batch durable, to reappear on reopen.
	if cp.store != nil {
		for i, t := range ts {
			if err := cp.store.Add(int64(ids[i]), t); err != nil {
				return nil, fmt.Errorf("treejoin: persist add: %w", err)
			}
		}
	}
	for name, e := range st.tokidx {
		ns.tokidx[name] = dynEntry{tz: e.tz, snap: e.snap.WithAdded(ts, cp.cache)}
	}
	// Keep the arena views live the way the token index is kept live: once a
	// join has paid to flatten the collection (the kind is populated), each
	// Add flattens just its batch, so the next join's verifier finds every
	// tree warm instead of rebuilding views for the whole membership. A
	// corpus that never joined (or only ever used custom verifiers) skips
	// this — the artifact would be pure speculation. Removal needs no
	// counterpart: Remove's Evict drops every kind, arenas included.
	if cp.cache.KindEntries(engine.ArenaKey) > 0 {
		engine.ArenaFor(cp.cache, ts)
	}
	cp.state.Store(ns)
	cp.dropSearchers(ns.epoch)
	return ids, nil
}

// dropSearchers eagerly releases the per-threshold search indexes built over
// the previous membership when a mutation lands at epoch. The searcher
// method would rotate them lazily on the next Search/KNN anyway; dropping
// them here means a mutation that is never followed by a search does not
// keep full PartSJ indexes (and the removed trees they reference) resident.
func (cp *Corpus) dropSearchers(epoch int64) {
	cp.mu.Lock()
	cp.searchers = make(map[searcherKey]*core.KNN)
	cp.searcherEpoch = epoch
	cp.mu.Unlock()
}

// Remove deletes the trees with the given ids from the corpus and returns
// how many were removed (unknown or already-removed ids are skipped).
// Later trees shift down to keep positions dense, so after the call the
// corpus is indistinguishable — query for query, pair for pair — from a
// corpus freshly built over the survivors; ids are stable throughout. The
// removed trees' cached signatures and preparations are evicted, their
// token-index postings tombstoned (probes skip them; the lists compact once
// tombstones exceed half the postings), and the per-threshold search-index
// LRU is invalidated, so no stale index can serve a post-Remove query.
// In-flight queries continue on their pre-Remove snapshot.
func (cp *Corpus) Remove(ids ...int) int {
	if cp.frozen || len(ids) == 0 {
		return 0
	}
	cp.writeMu.Lock()
	defer cp.writeMu.Unlock()
	st := cp.state.Load()
	gone := make(map[int]bool, len(ids)) // positions to drop
	for _, id := range ids {
		if p, ok := st.pos[id]; ok {
			gone[p] = true
		}
	}
	if len(gone) == 0 {
		return 0
	}
	positions := make([]int, 0, len(gone))
	for p := range gone {
		positions = append(positions, p)
	}
	slices.Sort(positions)
	// Write-through for a persistent corpus (see Add). Remove cannot return
	// an error, so a store failure aborts the whole mutation: nothing is
	// unpublished from the in-memory state and the call reports 0.
	if cp.store != nil {
		for _, p := range positions {
			if err := cp.store.Remove(int64(st.ids[p])); err != nil {
				return 0
			}
		}
	}
	ns := &corpusState{
		epoch:   st.epoch + 1,
		ts:      make([]*Tree, 0, len(st.ts)-len(gone)),
		ids:     make([]int, 0, len(st.ts)-len(gone)),
		pos:     make(map[int]int, len(st.ts)-len(gone)),
		nextID:  st.nextID,
		lt:      st.lt,
		members: make(map[*Tree]struct{}, len(st.ts)-len(gone)),
		tokidx:  make(map[string]dynEntry, len(st.tokidx)),
	}
	var removed []*tree.Tree
	for p, t := range st.ts {
		if gone[p] {
			removed = append(removed, t)
			continue
		}
		ns.pos[st.ids[p]] = len(ns.ts)
		ns.ts = append(ns.ts, t)
		ns.ids = append(ns.ids, st.ids[p])
		ns.members[t] = struct{}{}
	}
	// Below the token-index cutoff dynTokens stops serving the maintained
	// snapshots, so drop them rather than paying their write-path upkeep on
	// every further mutation; they re-materialise if the corpus grows back.
	if len(ns.ts) >= engine.TokenIndexMinTrees {
		for name, e := range st.tokidx {
			ns.tokidx[name] = dynEntry{tz: e.tz, snap: e.snap.WithRemoved(positions)}
		}
	}
	// Evict the removed trees' artifacts — unless the same tree object is
	// still live at another position (the corpus permits aliases), in which
	// case its artifacts stay warm for the survivor.
	evict := removed[:0]
	for _, t := range removed {
		if _, alive := ns.members[t]; !alive {
			evict = append(evict, t)
		}
	}
	// Publish the new state before evicting: once the swap is visible,
	// runCache routes the dead trees to overflow caches, so the window in
	// which a racing reader can re-store an evicted artifact into the
	// shared cache shrinks to stores whose route was resolved before the
	// swap — a handful of in-flight artifacts at worst, not the steady
	// leak the reverse order would allow.
	cp.state.Store(ns)
	cp.cache.Evict(evict...)
	cp.dropSearchers(ns.epoch)
	return len(positions)
}

// dynTokens returns the persistent token-index provider for a self join
// over st: the engine's token-index source calls it to probe a maintained
// snapshot instead of building a per-run index. A corpus that has never
// mutated keeps the per-run source (a one-shot join has nothing to
// amortise); the first signature-method join after a mutation materialises
// the snapshot — built from the same cached bags the per-run source would
// use — installs it for every later join, and Add/Remove keep it live.
func (cp *Corpus) dynTokens(st *corpusState) func(engine.Tokenizer) *engine.TokenSnap {
	return func(tz engine.Tokenizer) *engine.TokenSnap {
		if st.epoch == 0 || len(st.ts) < engine.TokenIndexMinTrees {
			return nil
		}
		if e, ok := st.tokidx[tz.Name()]; ok {
			return e.snap
		}
		// Materialise only for the corpus's current state: a stale view (an
		// in-flight iterator that outlived a mutation) keeps the per-run
		// prefix source rather than paying a full-bag build it could never
		// install or amortise. Reading the current state also picks up a
		// snapshot a concurrent join installed after st was pinned, keeping
		// the duplicate-build window minimal.
		if cur := cp.state.Load(); cur.epoch != st.epoch {
			return nil
		} else if e, ok := cur.tokidx[tz.Name()]; ok {
			return e.snap
		}
		snap := engine.NewTokenSnap(tz, st.ts, cp.runCache())
		// Install for later joins — unless the corpus moved on while the
		// snapshot was building; the one-off still serves this run (it was
		// built from st.ts, which is what the run joins).
		cp.writeMu.Lock()
		cur := cp.state.Load()
		if cur.epoch == st.epoch {
			if e, ok := cur.tokidx[tz.Name()]; ok {
				snap = e.snap
			} else {
				ns := *cur
				ns.tokidx = maps.Clone(cur.tokidx)
				if ns.tokidx == nil {
					ns.tokidx = make(map[string]dynEntry, 1)
				}
				ns.tokidx[tz.Name()] = dynEntry{tz: tz, snap: snap}
				cp.state.Store(&ns)
			}
		}
		cp.writeMu.Unlock()
		return snap
	}
}

// SelfJoin reports every unordered pair of corpus trees whose tree edit
// distance is at most tau, in ascending (I, J) order, with execution
// statistics. Per-tree signatures come from the corpus cache — a repeat join
// at any threshold recomputes none of them. On cancellation it returns the
// pairs found so far (still sorted), the partial statistics, and ctx's
// error.
func (cp *Corpus) SelfJoin(ctx context.Context, tau int, opts ...Option) ([]Pair, Stats, error) {
	c := buildConfig(opts)
	var pairs []Pair
	stats, err := cp.streamSelfWith(ctx, tau, c, func(p Pair) bool {
		pairs = append(pairs, p)
		return true
	})
	if stats == nil {
		return nil, Stats{}, err
	}
	sim.SortPairs(pairs)
	c.publishStats(stats)
	return pairs, *stats, err
}

// streamSelfWith is the configured core of SelfJoin: it pins the corpus
// state, plans, and streams every verified pair to sink. It returns a nil
// Stats exactly when validation rejected the query before anything ran.
// Besides SelfJoin it is the per-shard round the sharded fan-out runs — the
// sharded layer passes a config with statsDst stripped, so concurrent rounds
// never race on a caller's WithStats destination, and rolls the returned
// per-round Stats up itself.
func (cp *Corpus) streamSelfWith(ctx context.Context, tau int, c config, sink sim.EmitFunc) (*sim.Stats, error) {
	job, tz, err := c.pipelineChecked(tau)
	if err != nil {
		return nil, err
	}
	st := cp.state.Load()
	job.Cache = cp.runCache()
	job.DynTokens = cp.dynTokens(st)
	job, _ = cp.planJob(ctx, c, job, tz, st.ts, -1, st.epoch)
	stats, err := job.StreamSelf(ctx, st.ts, sink)
	if err == nil {
		cp.observeRun(stats, st.ts, -1, tau, st.epoch)
	}
	return stats, err
}

// SelfJoinSeq is the streaming SelfJoin: it returns a sequence that runs the
// join when ranged over, yielding each verified pair as the pipeline
// produces it — constant result memory, no ordering guarantee (sort the
// collected pairs, or use SelfJoin, for the canonical order). Breaking out
// of the range stops the join; ranging again re-runs it (cheaply, against
// the warm cache). Use WithStats to receive the run's statistics after the
// sequence ends. Option and threshold validation happens eagerly, before the
// sequence is returned; cancellation simply ends the sequence early — check
// ctx.Err() afterwards to distinguish completion from abort. The sequence is
// pinned to the corpus state at this call: later Add/Remove do not disturb a
// running (or re-run) iteration.
func (cp *Corpus) SelfJoinSeq(ctx context.Context, tau int, opts ...Option) (iter.Seq[Pair], error) {
	c := buildConfig(opts)
	job, tz, err := c.pipelineChecked(tau)
	if err != nil {
		return nil, err
	}
	st := cp.state.Load()
	job.Cache = cp.runCache()
	job.DynTokens = cp.dynTokens(st)
	job, _ = cp.planJob(ctx, c, job, tz, st.ts, -1, st.epoch)
	return func(yield func(Pair) bool) {
		stats, err := job.StreamSelf(ctx, st.ts, sim.EmitFunc(yield))
		if err == nil {
			cp.observeRun(stats, st.ts, -1, tau, st.epoch)
		}
		c.publishStats(stats)
	}, nil
}

// Join reports every cross pair (a ∈ this corpus, b ∈ other) within
// distance tau; Pair.I indexes into the receiver and Pair.J into other. The
// corpora must share one LabelTable (validated). Signatures for both sides
// are drawn from — and cached in — the receiver's cache, so repeated joins
// against the same partner warm up too.
func (cp *Corpus) Join(ctx context.Context, other *Corpus, tau int, opts ...Option) ([]Pair, Stats, error) {
	c := buildConfig(opts)
	var pairs []Pair
	st, err := cp.streamJoinWith(ctx, other, tau, c, func(p Pair) bool {
		pairs = append(pairs, p)
		return true
	})
	if st == nil {
		return nil, Stats{}, err
	}
	sim.SortPairs(pairs)
	c.publishStats(st)
	return pairs, *st, err
}

// streamJoinWith is the configured core of Join, with streamSelfWith's
// contract (nil Stats iff validation failed); the sharded fan-out's
// cross-shard rounds run on it.
func (cp *Corpus) streamJoinWith(ctx context.Context, other *Corpus, tau int, c config, sink sim.EmitFunc) (*sim.Stats, error) {
	run, err := cp.crossJob(ctx, c, other, tau)
	if err != nil {
		return nil, err
	}
	st, err := run.job.StreamJoin(ctx, run.a, run.b, sink)
	if err == nil {
		cp.observeRun(st, run.comb, len(run.a), tau, run.epoch)
	}
	return st, err
}

// JoinSeq is the streaming Join, with SelfJoinSeq's contract.
func (cp *Corpus) JoinSeq(ctx context.Context, other *Corpus, tau int, opts ...Option) (iter.Seq[Pair], error) {
	c := buildConfig(opts)
	run, err := cp.crossJob(ctx, c, other, tau)
	if err != nil {
		return nil, err
	}
	return func(yield func(Pair) bool) {
		st, err := run.job.StreamJoin(ctx, run.a, run.b, sim.EmitFunc(yield))
		if err == nil {
			cp.observeRun(st, run.comb, len(run.a), tau, run.epoch)
		}
		c.publishStats(st)
	}, nil
}

// crossRun is one assembled (and planned) cross join: the job, both sides'
// pinned memberships, their concatenation for the planner's bookkeeping,
// and the receiver's epoch the plan was made at.
type crossRun struct {
	job   engine.Job
	a, b  []*Tree
	comb  []*Tree
	epoch int64
}

// crossJob validates a cross join against other, snapshots both corpora's
// states (the join runs against exactly these memberships even when either
// side mutates mid-run), assembles its job, and lets the receiver's cost
// model plan it (the model never calibrates on cross joins — it plans from
// whatever self-join observations it holds, or emits the fixed plan). The
// run's cache routes each tree's artifacts to the corpus that owns it, so
// both sides warm their own caches and neither retains (and pins) the
// other's trees; trees belonging to neither side — including trees either
// side has since removed — land in a run-local overflow that dies with the
// query.
func (cp *Corpus) crossJob(ctx context.Context, c config, other *Corpus, tau int) (crossRun, error) {
	if other == nil {
		return crossRun{}, ErrNilCorpus
	}
	sa, sb := cp.state.Load(), other.state.Load()
	if sa.lt != nil && sb.lt != nil && sa.lt != sb.lt {
		return crossRun{}, fmt.Errorf("%w (cross join)", ErrLabelTable)
	}
	job, tz, err := c.pipelineChecked(tau)
	if err != nil {
		return crossRun{}, err
	}
	ra, rb := cp.runCache(), other.runCache()
	job.Cache = engine.RoutedCache(func(t *tree.Tree) *engine.Cache {
		if _, ok := sb.members[t]; ok {
			return rb
		}
		return ra
	})
	comb := make([]*Tree, 0, len(sa.ts)+len(sb.ts))
	comb = append(append(comb, sa.ts...), sb.ts...)
	job, _ = cp.planJob(ctx, c, job, tz, comb, len(sa.ts), sa.epoch)
	return crossRun{job: job, a: sa.ts, b: sb.ts, comb: comb, epoch: sa.epoch}, nil
}

// Search reports every corpus tree within TED tau of q, in ascending corpus
// order. The per-threshold PartSJ index is built on first use and retained
// in the corpus's index LRU, so repeated searches at the same threshold pay
// only probing and verification; mutations invalidate the LRU, so a stale
// index can never serve a post-Remove query. Search always runs on the
// PartSJ index; WithMethod, WithPrefilter, and WithShards conflict with it.
func (cp *Corpus) Search(ctx context.Context, q *Tree, tau int, opts ...Option) ([]Match, error) {
	if tau < 0 {
		return nil, fmt.Errorf("%w %d", ErrNegativeThreshold, tau)
	}
	st := cp.state.Load()
	c, err := cp.queryConfig(st, q, "Search", opts)
	if err != nil {
		return nil, err
	}
	return cp.searcher(st, c).IndexAt(tau).SearchCtx(ctx, q)
}

// TopK returns the k closest pairs of the corpus by TED, ordered by
// (Dist, I, J) — the threshold-free SelfJoin. It runs PartSJ at
// geometrically increasing thresholds until k pairs are in reach; fewer than
// k pairs come back only when the corpus has fewer than k pairs in total.
// All rounds draw on the corpus cache, and WithWorkers/WithShards
// parallelise them. On cancellation it returns the pairs the aborted round
// had found (best-effort, not necessarily the global top k) and ctx's
// error. TopK always runs PartSJ; WithMethod and WithPrefilter conflict
// with it.
func (cp *Corpus) TopK(ctx context.Context, k int, opts ...Option) ([]Pair, error) {
	c := buildConfig(opts)
	if err := c.requirePartSJ("TopK", true); err != nil {
		return nil, err
	}
	return core.TopKCtx(ctx, cp.state.Load().ts, k, c.coreOptions(0), c.shards, cp.runCache())
}

// KNN returns the k corpus trees closest to q by TED, ordered by
// (Dist, Pos), with no threshold required. It searches per-threshold indexes
// at expanding thresholds, sharing Search's index LRU, so a query workload
// settles into reusing a handful of them. Fewer than k matches are returned
// only when the corpus holds fewer than k trees. KNN always runs on the
// PartSJ index; WithMethod, WithPrefilter, and WithShards conflict with
// it.
func (cp *Corpus) KNN(ctx context.Context, q *Tree, k int, opts ...Option) ([]Match, error) {
	st := cp.state.Load()
	c, err := cp.queryConfig(st, q, "KNN", opts)
	if err != nil {
		return nil, err
	}
	return cp.searcher(st, c).NearestCtx(ctx, q, k)
}

// Incremental returns an empty streaming join with threshold tau that shares
// the corpus's signature cache: trees the corpus has already joined (or that
// were added before) enter the stream without recomputing their binary view
// or partition. The stream itself starts empty — it does not contain the
// corpus trees — and evolves independently of later corpus mutations; its
// Pairs and Retracted views maintain a standing result set across the
// stream's own Add/Remove sequence.
func (cp *Corpus) Incremental(tau int, opts ...Option) (*Incremental, error) {
	if tau < 0 {
		return nil, fmt.Errorf("%w %d", ErrNegativeThreshold, tau)
	}
	c := buildConfig(opts)
	if err := c.requirePartSJ("Incremental", false); err != nil {
		return nil, err
	}
	return &Incremental{inner: core.NewIncrementalCached(c.coreOptions(tau), cp.runCache())}, nil
}

// queryConfig validates a query tree and the options of an index-backed
// query (Search, KNN).
func (cp *Corpus) queryConfig(st *corpusState, q *Tree, op string, opts []Option) (config, error) {
	c := buildConfig(opts)
	if q == nil {
		return c, fmt.Errorf("%w (query)", ErrNilTree)
	}
	if st.lt != nil && q.Labels != st.lt {
		return c, fmt.Errorf("%w (query)", ErrLabelTable)
	}
	if err := c.requirePartSJ(op, false); err != nil {
		return c, err
	}
	return c, nil
}

// requirePartSJ rejects options an index-backed or expanding-threshold
// operation cannot honor. allowShards permits WithShards where the
// underlying runs are shardable engine joins (TopK).
func (c config) requirePartSJ(op string, allowShards bool) error {
	if c.method != MethodPartSJ {
		return fmt.Errorf("%w: %s supports MethodPartSJ only", ErrOptionConflict, op)
	}
	if len(c.prefilters) > 0 {
		return fmt.Errorf("%w: %s does not take prefilters", ErrOptionConflict, op)
	}
	if !allowShards && c.shards > 1 {
		return fmt.Errorf("%w: %s does not shard", ErrOptionConflict, op)
	}
	if len(c.planSpecs) > 0 {
		return fmt.Errorf("%w: %s does not take a fixed plan spec", ErrOptionConflict, op)
	}
	return nil
}

// searcher returns the index machinery for c's index configuration over the
// st membership, creating it on first use. The searcher cache is pinned to
// one epoch: the first query after a mutation rotates it, dropping every
// per-threshold index built over the old membership (the eviction-on-epoch
// contract — a stale index can never serve a post-Remove query). A query
// still running against an older state builds a one-off searcher for its
// snapshot instead of polluting the cache.
func (cp *Corpus) searcher(st *corpusState, c config) *core.KNN {
	capacity := cp.indexCap
	if capacity < 1 {
		capacity = core.DefaultIndexCacheCap
	}
	o := c.coreOptions(1) // Tau here only seeds KNN's expanding search
	key := searcherKey{pos: c.position, hybrid: c.hybrid}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.searcherEpoch != st.epoch {
		if cur := cp.state.Load(); cur.epoch == st.epoch {
			// First query at the new epoch: invalidate everything built
			// over the previous membership.
			cp.searchers = make(map[searcherKey]*core.KNN)
			cp.searcherEpoch = st.epoch
		} else {
			// The query snapshotted an older epoch than the cache serves.
			return core.NewKNNCached(st.ts, o, cp.runCache(), capacity)
		}
	}
	s := cp.searchers[key]
	if s == nil {
		s = core.NewKNNCached(st.ts, o, cp.runCache(), capacity)
		cp.searchers[key] = s
	}
	return s
}
