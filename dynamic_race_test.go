// The dynamic-corpus race hammer: concurrent Add/Remove writers against
// Search/SelfJoinSeq/SelfJoin readers on one shared corpus. Run under
// -race (CI does), it exercises the copy-on-write state swap, the
// token-index snapshot handoff, the searcher-LRU epoch rotation, and the
// shared artifact cache under eviction. Readers assert snapshot isolation
// through pinned Snapshot views: every pair a view's join reports indexes
// that view's membership and is within threshold for that view's trees — a
// result can never reference a tree removed by a concurrent writer, because
// the view's epoch predates the removal and its state is immutable.
package treejoin_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

func TestDynamicCorpusRace(t *testing.T) {
	ctx := context.Background()
	pool := synth.Generate(synth.SyntheticParams(140, 3, 5, 20, 30, 61))
	cp := mustCorpus(t, pool[:60])

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}

	// Writer: random Add/Remove churn. Ids grow monotonically, so removing
	// a random id below the high-water mark hits live and dead ids alike.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		next := 60
		maxID := 60
		for i := 0; i < 150; i++ {
			if rng.Intn(2) == 0 {
				if _, err := cp.Add(pool[next%len(pool)]); err != nil {
					report("Add: %v", err)
					return
				}
				next++
				maxID++
			} else if cp.Len() > 45 {
				cp.Remove(rng.Intn(maxID))
			}
		}
	}()

	// Joining reader: pin a view, join it, and hold every pair to the
	// view's membership and threshold.
	for _, m := range []treejoin.Method{treejoin.MethodPartSJ, treejoin.MethodSTR} {
		wg.Add(1)
		go func(m treejoin.Method) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				v := cp.Snapshot()
				n := v.Len()
				pairs, _, err := v.SelfJoin(ctx, 2, treejoin.WithMethod(m))
				if err != nil {
					report("%v SelfJoin: %v", m, err)
					return
				}
				for _, p := range pairs {
					if p.I < 0 || p.J >= n || p.I >= p.J {
						report("%v: pair %+v outside snapshot of %d trees", m, p, n)
						return
					}
					if d := treejoin.Distance(v.Tree(p.I), v.Tree(p.J)); d != p.Dist || d > 2 {
						report("%v: pair %+v has distance %d in its own snapshot", m, p, d)
						return
					}
				}
			}
		}(m)
	}

	// Streaming reader on the corpus itself: the sequence pins its state at
	// creation; iterating while the writer churns must stay consistent.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			v := cp.Snapshot()
			n := v.Len()
			seq, err := v.SelfJoinSeq(ctx, 1)
			if err != nil {
				report("SelfJoinSeq: %v", err)
				return
			}
			for p := range seq {
				if p.I < 0 || p.J >= n {
					report("seq pair %+v outside snapshot of %d trees", p, n)
					return
				}
			}
		}
	}()

	// Searching reader: index-backed queries against pinned views; a match
	// must be a live member of the view within the threshold.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 40; i++ {
			q := pool[rng.Intn(len(pool))]
			v := cp.Snapshot()
			ms, err := v.Search(ctx, q, 1)
			if err != nil {
				report("Search: %v", err)
				return
			}
			for _, m := range ms {
				if m.Pos < 0 || m.Pos >= v.Len() {
					report("search match %+v outside snapshot of %d trees", m, v.Len())
					return
				}
				if d := treejoin.Distance(v.Tree(m.Pos), q); d != m.Dist || d > 1 {
					report("search match %+v has distance %d in its own snapshot", m, d)
					return
				}
			}
		}
	}()

	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}
