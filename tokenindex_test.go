package treejoin_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
	"treejoin/internal/tree"
)

var signatureMethods = []treejoin.Method{
	treejoin.MethodSTR, treejoin.MethodSET, treejoin.MethodHistogram,
	treejoin.MethodEulerString, treejoin.MethodPQGram,
}

// indexCorpus returns a synthetic profile corpus big enough to engage the
// token index, with tiny trees mixed in to exercise the light-tree path.
func indexCorpus(gen func(n int, seed int64) []*tree.Tree, n int, seed int64) []*tree.Tree {
	ts := gen(n, seed)
	lt := ts[0].Labels
	for _, s := range []string{"{a}", "{a{b}}", "{a{b}{c{d}}}"} {
		ts = append(ts, tree.MustParseBracket(s, lt))
	}
	return ts
}

// TestTokenIndexOracleSweep: for every signature method, the default
// token-index candidate generation returns exactly the sorted loop's result
// set — self and cross joins, τ from exact matching up through 8 — and its
// post-filter candidate count never exceeds the loop's, across two synthetic
// profiles (diverse sizes and narrow size bands).
func TestTokenIndexOracleSweep(t *testing.T) {
	profiles := []struct {
		name string
		gen  func(n int, seed int64) []*tree.Tree
	}{
		{"Synthetic", synth.Synthetic},
		{"Treebank", synth.Treebank},
	}
	for _, p := range profiles {
		ts := indexCorpus(p.gen, 60, 41)
		a, b := ts[:25], ts[25:]
		for _, m := range signatureMethods {
			for _, tau := range []int{0, 1, 2, 4, 8} {
				label := fmt.Sprintf("%s/%v/τ=%d", p.name, m, tau)
				var ist, lst treejoin.Stats
				got, ist := treejoin.SelfJoin(ts, tau, treejoin.WithMethod(m))
				want, lst := treejoin.SelfJoin(ts, tau, treejoin.WithMethod(m), treejoin.WithSortedLoop())
				samePairs(t, "self/"+label, got, want)
				if ist.Candidates > lst.Candidates {
					t.Fatalf("self/%s: index candidates %d > loop %d", label, ist.Candidates, lst.Candidates)
				}
				if lst.Source != "sorted-loop" {
					t.Fatalf("%s: WithSortedLoop ran source %q", label, lst.Source)
				}
				got, ist = treejoin.Join(a, b, tau, treejoin.WithMethod(m))
				want, lst = treejoin.Join(a, b, tau, treejoin.WithMethod(m), treejoin.WithSortedLoop())
				samePairs(t, "cross/"+label, got, want)
				if ist.Candidates > lst.Candidates {
					t.Fatalf("cross/%s: index candidates %d > loop %d", label, ist.Candidates, lst.Candidates)
				}
			}
		}
	}
}

// TestTokenIndexAutoFallback: corpora below the cutoff — and thresholds at
// the largest tree's size — must run the sorted loop automatically, and a
// regular workload the token index, all visible in Stats.Source.
func TestTokenIndexAutoFallback(t *testing.T) {
	small := synth.Synthetic(20, 9)
	_, st := treejoin.SelfJoin(small, 1, treejoin.WithMethod(treejoin.MethodSTR))
	if st.Source != "sorted-loop" {
		t.Fatalf("small corpus: source = %q, want sorted-loop", st.Source)
	}

	big := synth.Synthetic(80, 9)
	maxSize := 0
	for _, tr := range big {
		if tr.Size() > maxSize {
			maxSize = tr.Size()
		}
	}
	_, st = treejoin.SelfJoin(big, maxSize, treejoin.WithMethod(treejoin.MethodHistogram))
	if st.Source != "sorted-loop" {
		t.Fatalf("τ=max size: source = %q, want sorted-loop", st.Source)
	}

	// Bag-swallowing threshold: labels have C = 2 and bag = tree size, so at
	// τ = ⌈maxSize/2⌉ even the largest bag is light and the index would
	// degenerate to the light-list scan — must fall back.
	_, st = treejoin.SelfJoin(big, (maxSize+1)/2, treejoin.WithMethod(treejoin.MethodHistogram))
	if st.Source != "sorted-loop" {
		t.Fatalf("bag-swallowing τ: source = %q, want sorted-loop", st.Source)
	}

	_, st = treejoin.SelfJoin(big, 2, treejoin.WithMethod(treejoin.MethodPQGram))
	if !strings.HasPrefix(st.Source, "token-index(") {
		t.Fatalf("regular corpus: source = %q, want token-index(...)", st.Source)
	}

	// PartSJ and BruteForce never use the token index.
	_, st = treejoin.SelfJoin(big, 1)
	if st.Source != "partsj" {
		t.Fatalf("PartSJ source = %q", st.Source)
	}
	_, st = treejoin.SelfJoin(big, 1, treejoin.WithMethod(treejoin.MethodBruteForce))
	if st.Source != "sorted-loop" {
		t.Fatalf("BruteForce source = %q", st.Source)
	}
}

// TestTokenIndexWarmCorpus: a corpus-backed join tokenises each tree exactly
// once — a second join at a different threshold reuses every cached token
// bag (misses frozen, hits growing), the warm-reuse contract the index
// benchmarks rely on.
func TestTokenIndexWarmCorpus(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(64, 13)
	for _, m := range signatureMethods {
		cp := mustCorpus(t, ts)
		_, st, err := cp.SelfJoin(ctx, 1, treejoin.WithMethod(m))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(st.Source, "token-index(") {
			t.Fatalf("%v: cold join ran %q, not the token index", m, st.Source)
		}
		cold := cp.CacheStats()
		if cold.Misses == 0 {
			t.Fatalf("%v: cold join recorded no cache misses", m)
		}
		if _, _, err := cp.SelfJoin(ctx, 3, treejoin.WithMethod(m)); err != nil {
			t.Fatal(err)
		}
		warm := cp.CacheStats()
		if warm.Misses != cold.Misses {
			t.Errorf("%v: warm join at a new τ recomputed %d artifacts (token bags must be τ-independent)",
				m, warm.Misses-cold.Misses)
		}
		if warm.Hits <= cold.Hits {
			t.Errorf("%v: warm join did not hit the cache (hits %d -> %d)", m, cold.Hits, warm.Hits)
		}
	}
}

// TestCandWall: the candidate stage records a positive wall clock alongside
// the summed task clocks, for both loop and index sources.
func TestCandWall(t *testing.T) {
	ts := synth.Synthetic(64, 21)
	for _, opts := range [][]treejoin.Option{
		{treejoin.WithMethod(treejoin.MethodSTR)},
		{treejoin.WithMethod(treejoin.MethodSTR), treejoin.WithSortedLoop(), treejoin.WithWorkers(4)},
	} {
		_, st := treejoin.SelfJoin(ts, 2, opts...)
		if st.CandWall <= 0 {
			t.Fatalf("CandWall = %v (stats %+v)", st.CandWall, st)
		}
	}
}
