package treejoin_test

import (
	"fmt"
	"strings"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

func sampleTrees(lt *treejoin.LabelTable) []*treejoin.Tree {
	return []*treejoin.Tree{
		treejoin.MustParseBracket("{album{title{Blue}}{artist{JM}}{year{1971}}}", lt),
		treejoin.MustParseBracket("{album{title{Blue!}}{artist{JM}}{year{1971}}}", lt),
		treejoin.MustParseBracket("{album{title{Red}}{artist{TS}}{year{2012}}}", lt),
		treejoin.MustParseBracket("{book{title{Go}}{year{2015}}}", lt),
	}
}

func TestPublicSelfJoinMethodsAgree(t *testing.T) {
	ts := synth.Synthetic(80, 3)
	for tau := 0; tau <= 3; tau++ {
		ref, refStats := treejoin.SelfJoin(ts, tau, treejoin.WithMethod(treejoin.MethodBruteForce))
		if refStats.Results != int64(len(ref)) {
			t.Fatalf("stats mismatch")
		}
		for _, m := range []treejoin.Method{treejoin.MethodPartSJ, treejoin.MethodSTR, treejoin.MethodSET} {
			got, _ := treejoin.SelfJoin(ts, tau, treejoin.WithMethod(m))
			if len(got) != len(ref) {
				t.Fatalf("τ=%d %v: %d pairs, oracle %d", tau, m, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("τ=%d %v: pair %d = %v, want %v", tau, m, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestPublicJoinOptions(t *testing.T) {
	ts := synth.Synthetic(60, 4)
	ref, _ := treejoin.SelfJoin(ts, 2)
	for _, opts := range [][]treejoin.Option{
		{treejoin.WithWorkers(4)},
		{treejoin.WithoutPositionFilter()},
		{treejoin.WithRandomPartitions(7)},
	} {
		got, _ := treejoin.SelfJoin(ts, 2, opts...)
		if len(got) != len(ref) {
			t.Fatalf("options %v changed results: %d vs %d", opts, len(got), len(ref))
		}
	}
	// Paper ranges: subset of the truth.
	paper, _ := treejoin.SelfJoin(ts, 2, treejoin.WithPaperPositionRanges())
	if len(paper) > len(ref) {
		t.Fatalf("paper ranges added results")
	}
}

func TestPublicDistance(t *testing.T) {
	lt := treejoin.NewLabelTable()
	a := treejoin.MustParseBracket("{a{b}{c}}", lt)
	b := treejoin.MustParseBracket("{a{b}{d}}", lt)
	if d := treejoin.Distance(a, b); d != 1 {
		t.Fatalf("Distance = %d", d)
	}
	if d, ok := treejoin.DistanceWithin(a, b, 0); ok {
		t.Fatalf("DistanceWithin(0) = %d, ok", d)
	}
	if d, ok := treejoin.DistanceWithin(a, b, 1); !ok || d != 1 {
		t.Fatalf("DistanceWithin(1) = %d, %v", d, ok)
	}
}

func TestPublicCrossJoin(t *testing.T) {
	lt := treejoin.NewLabelTable()
	ts := sampleTrees(lt)
	pairs, _ := treejoin.Join(ts[:2], ts[2:], 1)
	if len(pairs) != 0 {
		t.Fatalf("cross pairs = %v", pairs)
	}
	pairs, _ = treejoin.Join(ts[:2], ts[1:2], 1)
	// A[0]~B[0] (dist 1), A[1]~B[0] (dist 0)
	if len(pairs) != 2 {
		t.Fatalf("cross pairs = %v", pairs)
	}
}

func TestPublicIncremental(t *testing.T) {
	lt := treejoin.NewLabelTable()
	inc := treejoin.NewIncremental(1)
	ts := sampleTrees(lt)
	var total int
	for _, tr := range ts {
		total += len(inc.Add(tr))
	}
	if total != 1 {
		t.Fatalf("incremental found %d pairs, want 1", total)
	}
	if inc.Len() != len(ts) {
		t.Fatalf("Len = %d", inc.Len())
	}
	if inc.Stats().Results != 1 {
		t.Fatalf("stats results = %d", inc.Stats().Results)
	}
}

func TestReadWriteBracketLines(t *testing.T) {
	input := "# a comment\n{a{b}}\n\n{c}\n  # another\n{d{e{f}}}\n"
	ts, err := treejoin.ReadBracketLines(strings.NewReader(input), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("read %d trees", len(ts))
	}
	var sb strings.Builder
	if err := treejoin.WriteBracketLines(&sb, ts); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "{a{b}}\n{c}\n{d{e{f}}}\n" {
		t.Fatalf("round trip = %q", sb.String())
	}
	if _, err := treejoin.ReadBracketLines(strings.NewReader("{a{b}}\nnot-a-tree\n"), nil); err == nil {
		t.Fatal("bad line not reported")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error lacks line number: %v", err)
	}
}

func TestMethodString(t *testing.T) {
	if treejoin.MethodPartSJ.String() != "PRT" || treejoin.MethodSTR.String() != "STR" ||
		treejoin.MethodSET.String() != "SET" || treejoin.MethodBruteForce.String() != "BF" {
		t.Fatal("method names wrong")
	}
}

func ExampleSelfJoin() {
	lt := treejoin.NewLabelTable()
	docs := []*treejoin.Tree{
		treejoin.MustParseBracket("{html{head{title{x}}}{body{p{hi}}}}", lt),
		treejoin.MustParseBracket("{html{head{title{x}}}{body{p{hello}}}}", lt),
		treejoin.MustParseBracket("{html{body{table{tr{td}}}}}", lt),
	}
	pairs, _ := treejoin.SelfJoin(docs, 2)
	for _, p := range pairs {
		fmt.Printf("documents %d and %d differ by %d edit(s)\n", p.I, p.J, p.Dist)
	}
	// Output:
	// documents 0 and 1 differ by 1 edit(s)
}

func ExampleIncremental() {
	lt := treejoin.NewLabelTable()
	stream := treejoin.NewIncremental(1)
	for _, s := range []string{"{a{b}{c}}", "{a{b}{d}}", "{x{y}}"} {
		matches := stream.Add(treejoin.MustParseBracket(s, lt))
		fmt.Printf("%s: %d match(es)\n", s, len(matches))
	}
	// Output:
	// {a{b}{c}}: 0 match(es)
	// {a{b}{d}}: 1 match(es)
	// {x{y}}: 0 match(es)
}
