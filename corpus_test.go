// Tests for the Corpus API: construction validation, error returns where
// the legacy wrappers panic, corpus-versus-legacy result equality across
// methods and prefilter chains, streaming-versus-slice equality, prompt
// cancellation without goroutine leaks, and warm-cache reuse (a second join
// at a different threshold recomputes no per-tree signature).
package treejoin_test

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"testing"
	"time"

	"treejoin"
	"treejoin/internal/synth"
)

func mustCorpus(t *testing.T, ts []*treejoin.Tree) *treejoin.Corpus {
	t.Helper()
	cp, err := treejoin.NewCorpus(ts)
	if err != nil {
		t.Fatalf("NewCorpus: %v", err)
	}
	return cp
}

func sortPairs(ps []treejoin.Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].I != ps[b].I {
			return ps[a].I < ps[b].I
		}
		return ps[a].J < ps[b].J
	})
}

func TestNewCorpusValidation(t *testing.T) {
	lt := treejoin.NewLabelTable()
	a := treejoin.MustParseBracket("{a{b}}", lt)
	b := treejoin.MustParseBracket("{a{c}}", lt)

	if _, err := treejoin.NewCorpus([]*treejoin.Tree{a, nil, b}); !errors.Is(err, treejoin.ErrNilTree) {
		t.Fatalf("nil tree: err = %v, want ErrNilTree", err)
	}
	other := treejoin.MustParseBracket("{a{b}}", treejoin.NewLabelTable())
	if _, err := treejoin.NewCorpus([]*treejoin.Tree{a, other}); !errors.Is(err, treejoin.ErrLabelTable) {
		t.Fatalf("mixed tables: err = %v, want ErrLabelTable", err)
	}
	empty, err := treejoin.NewCorpus(nil)
	if err != nil {
		t.Fatalf("empty corpus: %v", err)
	}
	pairs, _, err := empty.SelfJoin(context.Background(), 1)
	if err != nil || len(pairs) != 0 {
		t.Fatalf("empty corpus join: pairs=%v err=%v", pairs, err)
	}

	// The corpus copies the slice: mutating the argument afterwards must not
	// change the corpus.
	src := []*treejoin.Tree{a, b}
	cp := mustCorpus(t, src)
	src[0] = nil
	if cp.Len() != 2 || cp.Tree(0) == nil {
		t.Fatal("corpus aliases the caller's slice")
	}
}

func TestCorpusErrorsWhereLegacyPanics(t *testing.T) {
	ctx := context.Background()
	lt := treejoin.NewLabelTable()
	ts := []*treejoin.Tree{
		treejoin.MustParseBracket("{a{b}}", lt),
		treejoin.MustParseBracket("{a{c}}", lt),
	}
	cp := mustCorpus(t, ts)

	if _, _, err := cp.SelfJoin(ctx, -1); !errors.Is(err, treejoin.ErrNegativeThreshold) {
		t.Errorf("negative tau: err = %v, want ErrNegativeThreshold", err)
	}
	if _, err := cp.SelfJoinSeq(ctx, -3); !errors.Is(err, treejoin.ErrNegativeThreshold) {
		t.Errorf("negative tau (seq): err = %v, want ErrNegativeThreshold", err)
	}
	if _, _, err := cp.SelfJoin(ctx, 1, treejoin.WithMethod(treejoin.Method(99))); !errors.Is(err, treejoin.ErrUnknownMethod) {
		t.Errorf("unknown method: err = %v, want ErrUnknownMethod", err)
	}
	if _, _, err := cp.SelfJoin(ctx, 1, treejoin.WithPrefilter(treejoin.Prefilter(42))); !errors.Is(err, treejoin.ErrUnknownPrefilter) {
		t.Errorf("unknown prefilter: err = %v, want ErrUnknownPrefilter", err)
	}
	if _, _, err := cp.Join(ctx, nil, 1); !errors.Is(err, treejoin.ErrNilCorpus) {
		t.Errorf("nil other: err = %v, want ErrNilCorpus", err)
	}
	foreign := mustCorpus(t, []*treejoin.Tree{treejoin.MustParseBracket("{a}", treejoin.NewLabelTable())})
	if _, _, err := cp.Join(ctx, foreign, 1); !errors.Is(err, treejoin.ErrLabelTable) {
		t.Errorf("cross tables: err = %v, want ErrLabelTable", err)
	}
	if _, err := cp.Search(ctx, nil, 1); !errors.Is(err, treejoin.ErrNilTree) {
		t.Errorf("nil query: err = %v, want ErrNilTree", err)
	}
	q := treejoin.MustParseBracket("{a{b}}", treejoin.NewLabelTable())
	if _, err := cp.Search(ctx, q, 1); !errors.Is(err, treejoin.ErrLabelTable) {
		t.Errorf("foreign query: err = %v, want ErrLabelTable", err)
	}
	if _, err := cp.Search(ctx, ts[0], -1); !errors.Is(err, treejoin.ErrNegativeThreshold) {
		t.Errorf("negative search tau: err = %v, want ErrNegativeThreshold", err)
	}
	if _, err := cp.Search(ctx, ts[0], 1, treejoin.WithMethod(treejoin.MethodSTR)); !errors.Is(err, treejoin.ErrOptionConflict) {
		t.Errorf("search with method: err = %v, want ErrOptionConflict", err)
	}
	if _, err := cp.TopK(ctx, 1, treejoin.WithPrefilter(treejoin.PrefilterHistogram)); !errors.Is(err, treejoin.ErrOptionConflict) {
		t.Errorf("topk with prefilter: err = %v, want ErrOptionConflict", err)
	}
	if _, err := cp.KNN(ctx, ts[0], 1, treejoin.WithMethod(treejoin.MethodSET)); !errors.Is(err, treejoin.ErrOptionConflict) {
		t.Errorf("knn with method: err = %v, want ErrOptionConflict", err)
	}
	if _, err := cp.Incremental(-1); !errors.Is(err, treejoin.ErrNegativeThreshold) {
		t.Errorf("incremental negative tau: err = %v, want ErrNegativeThreshold", err)
	}

	// The legacy wrappers keep the documented panicking contract.
	for _, fn := range []func(){
		func() { treejoin.SelfJoin(ts, -1) },
		func() { treejoin.SelfJoin(ts, 1, treejoin.WithMethod(treejoin.Method(99))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("legacy wrapper did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestCorpusMatchesLegacy: the Corpus slice and streaming APIs return
// exactly the legacy free functions' pair sets, for every method and for
// prefilter chains, on self and cross joins.
func TestCorpusMatchesLegacy(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(60, 11)
	cp := mustCorpus(t, ts)
	const tau = 2
	for _, m := range allMethods {
		want, _ := treejoin.SelfJoin(ts, tau, treejoin.WithMethod(m))
		got, _, err := cp.SelfJoin(ctx, tau, treejoin.WithMethod(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		samePairs(t, "corpus self "+m.String(), got, want)

		seq, err := cp.SelfJoinSeq(ctx, tau, treejoin.WithMethod(m))
		if err != nil {
			t.Fatalf("%v seq: %v", m, err)
		}
		var streamed []treejoin.Pair
		for p := range seq {
			streamed = append(streamed, p)
		}
		sortPairs(streamed)
		samePairs(t, "corpus stream "+m.String(), streamed, want)
	}

	chains := [][]treejoin.Prefilter{
		{treejoin.PrefilterHistogram},
		{treejoin.PrefilterHistogram, treejoin.PrefilterSTR},
		{treejoin.PrefilterSET, treejoin.PrefilterEulerString, treejoin.PrefilterPQGram},
	}
	for _, m := range []treejoin.Method{treejoin.MethodPartSJ, treejoin.MethodSTR} {
		for ci, chain := range chains {
			want, _ := treejoin.SelfJoin(ts, tau, treejoin.WithMethod(m), treejoin.WithPrefilter(chain...))
			got, _, err := cp.SelfJoin(ctx, tau, treejoin.WithMethod(m), treejoin.WithPrefilter(chain...))
			if err != nil {
				t.Fatalf("%v chain %d: %v", m, ci, err)
			}
			samePairs(t, "corpus chain", got, want)
		}
	}

	// Cross joins, including the streaming form.
	a, b := ts[:25], ts[25:]
	ca, cb := mustCorpus(t, a), mustCorpus(t, b)
	for _, m := range []treejoin.Method{treejoin.MethodPartSJ, treejoin.MethodHistogram} {
		want, _ := treejoin.Join(a, b, tau, treejoin.WithMethod(m))
		got, _, err := ca.Join(ctx, cb, tau, treejoin.WithMethod(m))
		if err != nil {
			t.Fatalf("cross %v: %v", m, err)
		}
		samePairs(t, "corpus cross "+m.String(), got, want)

		seq, err := ca.JoinSeq(ctx, cb, tau, treejoin.WithMethod(m))
		if err != nil {
			t.Fatalf("cross %v seq: %v", m, err)
		}
		var streamed []treejoin.Pair
		for p := range seq {
			streamed = append(streamed, p)
		}
		sortPairs(streamed)
		samePairs(t, "corpus cross stream "+m.String(), streamed, want)
	}

	// Cross-join artifacts route to the corpus that owns each tree: the
	// other side's cache warms too, and a repeat cross join recomputes no
	// signatures on either side.
	if st := cb.CacheStats(); st.Entries == 0 {
		t.Error("cross join left the other corpus's cache cold")
	}
	missesA, missesB := ca.CacheStats().Misses, cb.CacheStats().Misses
	if _, _, err := ca.Join(ctx, cb, tau, treejoin.WithMethod(treejoin.MethodHistogram)); err != nil {
		t.Fatal(err)
	}
	if ca.CacheStats().Misses != missesA || cb.CacheStats().Misses != missesB {
		t.Error("repeat cross join recomputed signatures")
	}

	// Parallel and sharded execution through the corpus.
	want, _ := treejoin.SelfJoin(ts, tau)
	got, _, err := cp.SelfJoin(ctx, tau, treejoin.WithWorkers(4), treejoin.WithShards(3))
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	samePairs(t, "corpus sharded", got, want)
}

// TestCorpusWarmCache: after the first join, a second join at a *different*
// threshold performs zero per-tree signature recomputation for every
// signature-based method, and a repeated PartSJ join at the same threshold
// recomputes nothing at all.
func TestCorpusWarmCache(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(40, 7)

	sigMethods := []treejoin.Method{
		treejoin.MethodSTR, treejoin.MethodSET, treejoin.MethodHistogram,
		treejoin.MethodEulerString, treejoin.MethodPQGram,
	}
	for _, m := range sigMethods {
		cp := mustCorpus(t, ts)
		if _, _, err := cp.SelfJoin(ctx, 1, treejoin.WithMethod(m)); err != nil {
			t.Fatal(err)
		}
		cold := cp.CacheStats()
		if cold.Misses == 0 {
			t.Fatalf("%v: cold join recorded no cache misses", m)
		}
		if _, _, err := cp.SelfJoin(ctx, 3, treejoin.WithMethod(m)); err != nil {
			t.Fatal(err)
		}
		warm := cp.CacheStats()
		if warm.Misses != cold.Misses {
			t.Errorf("%v: second join at new tau recomputed %d signatures", m, warm.Misses-cold.Misses)
		}
		if warm.Hits <= cold.Hits {
			t.Errorf("%v: second join did not hit the cache (hits %d -> %d)", m, cold.Hits, warm.Hits)
		}
	}

	// PartSJ: same threshold → views and partitions both reused; different
	// threshold → only the τ-dependent partitions rebuild, never the views.
	cp := mustCorpus(t, ts)
	if _, _, err := cp.SelfJoin(ctx, 2); err != nil {
		t.Fatal(err)
	}
	cold := cp.CacheStats()
	if _, _, err := cp.SelfJoin(ctx, 2); err != nil {
		t.Fatal(err)
	}
	warm := cp.CacheStats()
	if warm.Misses != cold.Misses {
		t.Errorf("PartSJ repeat at same tau recomputed %d artifacts", warm.Misses-cold.Misses)
	}
	if _, _, err := cp.SelfJoin(ctx, 3); err != nil {
		t.Fatal(err)
	}
	other := cp.CacheStats()
	if recomputed := other.Misses - warm.Misses; recomputed > int64(len(ts)) {
		t.Errorf("PartSJ at new tau recomputed %d artifacts, want at most %d partitions", recomputed, len(ts))
	}
}

// TestCorpusStreamingEarlyStop: breaking out of a streaming join stops it —
// the sequence never yields more, goroutines drain, and a full re-range
// still produces the complete result set.
func TestCorpusStreamingEarlyStop(t *testing.T) {
	ctx := context.Background()
	ts := synth.Sentiment(60, 5)
	cp := mustCorpus(t, ts)
	const tau = 3

	full, _, err := cp.SelfJoin(ctx, tau)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 5 {
		t.Skipf("collection too sparse for the early-stop test: %d pairs", len(full))
	}

	seq, err := cp.SelfJoinSeq(ctx, tau, treejoin.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	var streamed int
	for range seq {
		streamed++
		if streamed == 2 {
			break
		}
	}
	if streamed != 2 {
		t.Fatalf("streamed %d pairs, want 2", streamed)
	}

	// Ranging again re-runs the join in full against the warm cache.
	var again []treejoin.Pair
	for p := range seq {
		again = append(again, p)
	}
	sortPairs(again)
	samePairs(t, "re-range", again, full)
}

// TestCorpusCancellation: a cancelled context aborts slice and streaming
// joins promptly with the context error and partial results, and leaves no
// goroutines behind.
func TestCorpusCancellation(t *testing.T) {
	ts := synth.Sentiment(80, 9)
	cp := mustCorpus(t, ts)
	const tau = 3

	before := runtime.NumGoroutine()

	// Cancelled before the join starts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pairs, st, err := cp.SelfJoin(ctx, tau, treejoin.WithWorkers(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}
	if st.Trees != len(ts) {
		t.Errorf("partial stats missing collection size: %+v", st)
	}
	_ = pairs // partial (likely empty) results are fine

	// Cancelled mid-stream: the sequence ends early.
	full, _, err := cp.SelfJoin(context.Background(), tau)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) >= 10 {
		ctx, cancel := context.WithCancel(context.Background())
		seq, err := cp.SelfJoinSeq(ctx, tau)
		if err != nil {
			t.Fatal(err)
		}
		var streamed int
		for range seq {
			streamed++
			if streamed == 1 {
				cancel()
			}
		}
		if streamed == len(full) {
			t.Errorf("cancellation mid-stream still yielded all %d pairs", streamed)
		}
		cancel()
	}

	// A deadline in the past behaves like cancellation.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, _, err := cp.SelfJoin(dctx, tau); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := cp.Search(dctx, ts[0], 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("search with expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := cp.KNN(dctx, ts[0], 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("knn with expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := cp.TopK(dctx, 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("topk with expired deadline: err = %v, want context.DeadlineExceeded", err)
	}

	// All worker goroutines must have drained.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutine leak: %d before, %d after", before, now)
	}
}

// TestCorpusQueriesMatchLegacy: Search, TopK and KNN through the corpus
// agree with the legacy Index/TopK/KNN entry points.
func TestCorpusQueriesMatchLegacy(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(40, 13)
	cp := mustCorpus(t, ts)
	const tau = 2

	legacyIx := treejoin.NewIndex(ts, tau)
	for _, q := range ts[:5] {
		want := legacyIx.Search(q)
		got, err := cp.Search(ctx, q, tau)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("search: %d matches, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("search match %d = %v, want %v", i, got[i], want[i])
			}
		}
	}

	wantTop := treejoin.TopK(ts, 5)
	gotTop, err := cp.TopK(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "corpus topk", gotTop, wantTop)

	legacyKNN := treejoin.NewKNN(ts)
	for _, q := range ts[:3] {
		want := legacyKNN.Nearest(q, 4)
		got, err := cp.KNN(ctx, q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("knn: %d matches, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("knn match %d = %v, want %v", i, got[i], want[i])
			}
		}
	}

	// Corpus.Incremental behaves like the legacy stream.
	inc, err := cp.Incremental(tau)
	if err != nil {
		t.Fatal(err)
	}
	legacyInc := treejoin.NewIncremental(tau)
	for _, tr := range ts[:20] {
		got := inc.Add(tr)
		want := legacyInc.Add(tr)
		if len(got) != len(want) {
			t.Fatalf("incremental: %d pairs, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("incremental pair %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

// TestCorpusWithStats: the WithStats option delivers statistics for
// streaming runs, matching the slice API's counters.
func TestCorpusWithStats(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(40, 3)
	cp := mustCorpus(t, ts)

	var st treejoin.Stats
	seq, err := cp.SelfJoinSeq(ctx, 2, treejoin.WithStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for range seq {
		n++
	}
	if st.Results != n {
		t.Errorf("WithStats Results = %d, want %d", st.Results, n)
	}
	if st.Trees != len(ts) {
		t.Errorf("WithStats Trees = %d, want %d", st.Trees, len(ts))
	}
	if st.Candidates < n {
		t.Errorf("WithStats Candidates = %d < results %d", st.Candidates, n)
	}
}
