package treejoin_test

import (
	"testing"

	"treejoin"
)

func TestPublicTopK(t *testing.T) {
	lt := treejoin.NewLabelTable()
	ts := []*treejoin.Tree{
		treejoin.MustParseBracket("{album{title{Blue}}{year{1971}}}", lt),
		treejoin.MustParseBracket("{album{title{Blue!}}{year{1971}}}", lt),
		treejoin.MustParseBracket("{album{title{Red}}{year{1980}}{label{X}}}", lt),
		treejoin.MustParseBracket("{book{title{Blue}}}", lt),
	}
	got := treejoin.TopK(ts, 2)
	if len(got) != 2 {
		t.Fatalf("got %d pairs", len(got))
	}
	if got[0].I != 0 || got[0].J != 1 || got[0].Dist != 1 {
		t.Fatalf("closest pair = %+v", got[0])
	}
	if got[1].Dist < got[0].Dist {
		t.Fatalf("pairs unsorted: %+v", got)
	}
	// TopK agrees with a SelfJoin at the distance of its worst pair.
	pairs, _ := treejoin.SelfJoin(ts, got[1].Dist)
	found := 0
	for _, p := range pairs {
		if p == got[0] || p == got[1] {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("TopK pairs missing from SelfJoin result: %v vs %v", got, pairs)
	}
}

func TestPublicKNN(t *testing.T) {
	lt := treejoin.NewLabelTable()
	ts := []*treejoin.Tree{
		treejoin.MustParseBracket("{a{b}{c}}", lt),
		treejoin.MustParseBracket("{a{b}{c}{d}}", lt),
		treejoin.MustParseBracket("{x{y{z}}}", lt),
	}
	knn := treejoin.NewKNN(ts)
	if knn.Len() != 3 {
		t.Fatalf("Len = %d", knn.Len())
	}
	q := treejoin.MustParseBracket("{a{b}{c}{e}}", lt)
	ms := knn.Nearest(q, 2)
	if len(ms) != 2 {
		t.Fatalf("got %d matches", len(ms))
	}
	// Both neighbours are at distance 1 (delete e, resp. rename e→d), so the
	// (Dist, Pos) order puts position 0 first.
	if ms[0].Pos != 0 || ms[0].Dist != 1 {
		t.Fatalf("nearest = %+v", ms[0])
	}
	if ms[1].Pos != 1 || ms[1].Dist != 1 {
		t.Fatalf("second = %+v", ms[1])
	}
	if treejoin.FormatBracket(knn.Tree(2)) != "{x{y{z}}}" {
		t.Fatalf("Tree(2) = %s", treejoin.FormatBracket(knn.Tree(2)))
	}
}

func TestPublicConstrainedDistance(t *testing.T) {
	lt := treejoin.NewLabelTable()
	a := treejoin.MustParseBracket("{a{b{c}}}", lt)
	b := treejoin.MustParseBracket("{a{c}}", lt)
	if d := treejoin.ConstrainedDistance(a, b); d != 1 {
		t.Fatalf("CTED = %d, want 1", d)
	}
	if d := treejoin.Distance(a, b); d != 1 {
		t.Fatalf("TED = %d, want 1", d)
	}
	costs := treejoin.WeightedCosts{DeleteCost: 2, InsertCost: 2, RenameCost: 1}
	if d := treejoin.ConstrainedDistanceWithCosts(a, b, costs); d != 2 {
		t.Fatalf("weighted CTED = %d, want 2", d)
	}
}

func TestPublicExtraMethods(t *testing.T) {
	lt := treejoin.NewLabelTable()
	ts := []*treejoin.Tree{
		treejoin.MustParseBracket("{a{b}{c}}", lt),
		treejoin.MustParseBracket("{a{b}{c}{d}}", lt),
		treejoin.MustParseBracket("{a{b}{x}}", lt),
		treejoin.MustParseBracket("{q{r{s{t{u}}}}}", lt),
	}
	want, _ := treejoin.SelfJoin(ts, 2)
	for _, m := range []treejoin.Method{treejoin.MethodHistogram, treejoin.MethodEulerString} {
		got, _ := treejoin.SelfJoin(ts, 2, treejoin.WithMethod(m))
		if len(got) != len(want) {
			t.Fatalf("%v: %d pairs, want %d", m, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: pair %d = %v, want %v", m, i, got[i], want[i])
			}
		}
	}
	if treejoin.MethodHistogram.String() != "HIST" || treejoin.MethodEulerString.String() != "EUL" {
		t.Fatal("method names")
	}
}

func TestPublicSubtreeSearch(t *testing.T) {
	lt := treejoin.NewLabelTable()
	data := treejoin.MustParseBracket("{html{body{div{p}{p}}{div{p}{ul{li}}}}}", lt)
	query := treejoin.MustParseBracket("{div{p}{p}}", lt)
	ms := treejoin.SubtreeSearch(data, query, 0)
	if len(ms) != 1 || ms[0].Dist != 0 {
		t.Fatalf("exact search: %v", ms)
	}
	if got := treejoin.FormatBracket(treejoin.SubtreeAt(data, ms[0].Root)); got != "{div{p}{p}}" {
		t.Fatalf("matched subtree %s", got)
	}
	best := treejoin.SubtreeSearchBest(data, query, 2)
	if len(best) != 2 || best[0].Dist != 0 || best[1].Dist > 2 {
		t.Fatalf("top-2: %v", best)
	}
}

func TestPublicIncrementalRemove(t *testing.T) {
	lt := treejoin.NewLabelTable()
	inc := treejoin.NewIncremental(1)
	inc.Add(treejoin.MustParseBracket("{a{b}}", lt))
	if !inc.Remove(0) || inc.Remove(0) {
		t.Fatal("remove semantics")
	}
	pos, pairs := inc.Update(0, treejoin.MustParseBracket("{a{c}}", lt))
	if pos != 1 || len(pairs) != 0 {
		t.Fatalf("update: pos=%d pairs=%v", pos, pairs)
	}
	if inc.Live() != 1 || inc.Len() != 2 {
		t.Fatalf("Live=%d Len=%d", inc.Live(), inc.Len())
	}
	got := inc.Add(treejoin.MustParseBracket("{a{c}}", lt))
	if len(got) != 1 || got[0].I != 1 {
		t.Fatalf("add after update: %v", got)
	}
}

func TestPublicTransform(t *testing.T) {
	lt := treejoin.NewLabelTable()
	a := treejoin.MustParseBracket("{a{b}{c}}", lt)
	b := treejoin.MustParseBracket("{a{b}{d}{e}}", lt)
	steps, err := treejoin.Transform(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != treejoin.Distance(a, b)+1 {
		t.Fatalf("%d steps", len(steps))
	}
	if got := treejoin.FormatBracket(steps[len(steps)-1]); got != treejoin.FormatBracket(b) {
		t.Fatalf("morph ends at %s", got)
	}
	for i := 1; i < len(steps); i++ {
		if d := treejoin.Distance(steps[i-1], steps[i]); d != 1 {
			t.Fatalf("step %d at distance %d", i, d)
		}
	}
}

func TestPublicCanonicalize(t *testing.T) {
	lt := treejoin.NewLabelTable()
	a := treejoin.MustParseBracket("{item{price{9}}{name{kettle}}}", lt)
	b := treejoin.MustParseBracket("{item{name{kettle}}{price{9}}}", lt)
	if treejoin.Distance(a, b) == 0 {
		t.Fatal("ordered distance should separate the reordered records")
	}
	if !treejoin.EqualUnordered(a, b) {
		t.Fatal("EqualUnordered rejected a field reorder")
	}
	ca, cb := treejoin.Canonicalize(a), treejoin.Canonicalize(b)
	if treejoin.Distance(ca, cb) != 0 {
		t.Fatalf("canonical forms differ: %s vs %s",
			treejoin.FormatBracket(ca), treejoin.FormatBracket(cb))
	}
	// Canonicalise-then-join finds the unordered duplicate pair.
	pairs, _ := treejoin.SelfJoin([]*treejoin.Tree{ca, cb}, 0)
	if len(pairs) != 1 {
		t.Fatalf("join on canonical forms: %v", pairs)
	}
}

func TestPublicShardedJoin(t *testing.T) {
	lt := treejoin.NewLabelTable()
	var ts []*treejoin.Tree
	for i := 0; i < 24; i++ {
		b := treejoin.NewBuilder(lt)
		r := b.Root("r")
		c := b.Child(r, string(rune('a'+i%4)))
		b.Child(c, string(rune('a'+i%3)))
		if i%2 == 0 {
			b.Child(r, "x")
		}
		ts = append(ts, b.MustBuild())
	}
	want, _ := treejoin.SelfJoin(ts, 2)
	got, _ := treejoin.SelfJoin(ts, 2, treejoin.WithShards(4), treejoin.WithWorkers(4))
	if len(got) != len(want) {
		t.Fatalf("sharded: %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sharded pair %d = %v, want %v", i, got[i], want[i])
		}
	}
}
