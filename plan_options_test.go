// Option-conflict and Explain coverage for the adaptive planner's public
// surface: combinations a method cannot execute must fail loudly with
// ErrOptionConflict (fixed plans are ablation knobs, not silent no-ops), and
// Explain must describe the plan a join would run without running it.
package treejoin_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

func TestFixedPlanConflicts(t *testing.T) {
	ctx := context.Background()
	cp := mustCorpus(t, synth.Synthetic(20, 1))

	wantConflict := func(label string, opts ...treejoin.Option) {
		t.Helper()
		if _, _, err := cp.SelfJoin(ctx, 1, opts...); !errors.Is(err, treejoin.ErrOptionConflict) {
			t.Fatalf("%s: err = %v, want ErrOptionConflict", label, err)
		}
	}

	wantConflict("index source on PartSJ",
		treejoin.WithFixedPlan(treejoin.PlanSpec{Source: treejoin.PlanSourceTokenIndex}))
	wantConflict("loop source on PartSJ",
		treejoin.WithFixedPlan(treejoin.PlanSpec{Source: treejoin.PlanSourceSortedLoop}))
	wantConflict("prefix multiplier on PartSJ",
		treejoin.WithFixedPlan(treejoin.PlanSpec{PrefixC: 8}))
	wantConflict("index source on brute force",
		treejoin.WithMethod(treejoin.MethodBruteForce),
		treejoin.WithFixedPlan(treejoin.PlanSpec{Source: treejoin.PlanSourceTokenIndex}))
	wantConflict("prefix multiplier without the index",
		treejoin.WithMethod(treejoin.MethodPQGram),
		treejoin.WithFixedPlan(treejoin.PlanSpec{Source: treejoin.PlanSourceSortedLoop, PrefixC: 8}))
	wantConflict("index plan against WithSortedLoop",
		treejoin.WithMethod(treejoin.MethodPQGram), treejoin.WithSortedLoop(),
		treejoin.WithFixedPlan(treejoin.PlanSpec{Source: treejoin.PlanSourceTokenIndex}))
	wantConflict("unknown source value",
		treejoin.WithMethod(treejoin.MethodPQGram),
		treejoin.WithFixedPlan(treejoin.PlanSpec{Source: treejoin.PlanSource(99)}))
	wantConflict("negative prefix multiplier",
		treejoin.WithMethod(treejoin.MethodPQGram),
		treejoin.WithFixedPlan(treejoin.PlanSpec{PrefixC: -1}))

	if _, _, err := cp.SelfJoin(ctx, 1, treejoin.WithMethod(treejoin.MethodPQGram),
		treejoin.WithFixedPlan(treejoin.PlanSpec{Chain: []treejoin.Prefilter{treejoin.Prefilter(42)}})); !errors.Is(err, treejoin.ErrUnknownPrefilter) {
		t.Fatalf("unknown chain prefilter: err = %v, want ErrUnknownPrefilter", err)
	}

	// PartSJ-only operations never take a plan spec.
	q := cp.Tree(0)
	if _, err := cp.Search(ctx, q, 1, treejoin.WithFixedPlan(treejoin.PlanSpec{})); !errors.Is(err, treejoin.ErrOptionConflict) {
		t.Fatal("Search must reject fixed plan specs")
	}
	if _, err := cp.TopK(ctx, 3, treejoin.WithFixedPlan(treejoin.PlanSpec{})); !errors.Is(err, treejoin.ErrOptionConflict) {
		t.Fatal("TopK must reject fixed plan specs")
	}
	if _, err := cp.Incremental(1, treejoin.WithFixedPlan(treejoin.PlanSpec{})); !errors.Is(err, treejoin.ErrOptionConflict) {
		t.Fatal("Incremental must reject fixed plan specs")
	}

	// WithAutoPlan undoes an earlier WithFixedPlan — no conflict survives.
	if _, _, err := cp.SelfJoin(ctx, 1, treejoin.WithMethod(treejoin.MethodPQGram),
		treejoin.WithFixedPlan(treejoin.PlanSpec{PrefixC: -1}), treejoin.WithAutoPlan()); err != nil {
		t.Fatalf("WithAutoPlan after WithFixedPlan: %v", err)
	}
}

func TestExplain(t *testing.T) {
	ctx := context.Background()
	cp := mustCorpus(t, synth.Synthetic(60, 4))

	// A fixed plan explains without estimates.
	ex, err := cp.Explain(ctx, 2, treejoin.WithMethod(treejoin.MethodPQGram), treejoin.WithFixedPlan())
	if err != nil {
		t.Fatal(err)
	}
	if ex.Source != "token-index" || ex.Origin != "fixed" || ex.PrefixC != 12 {
		t.Fatalf("fixed explanation = %+v", ex)
	}
	if len(ex.Chain) != 1 || ex.Chain[0] != "PQG" {
		t.Fatalf("fixed chain = %v", ex.Chain)
	}
	if ex.WindowPairs <= 0 {
		t.Fatalf("window pairs = %d, want > 0", ex.WindowPairs)
	}
	if ex.Survival != nil {
		t.Fatalf("fixed plan carries estimates: %+v", ex.Survival)
	}
	if s := ex.String(); !strings.Contains(s, "source=token-index") || !strings.Contains(s, "origin=fixed") {
		t.Fatalf("String() = %q", s)
	}

	// Under auto the small corpus stays on the fixed plan (the planner's
	// work-scale gate) but must still explain coherently.
	ex, err = cp.Explain(ctx, 2, treejoin.WithMethod(treejoin.MethodPQGram))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Origin != "fixed" || ex.Source != "token-index" {
		t.Fatalf("auto explanation on a small corpus = %+v", ex)
	}

	// Explain surfaces plan conflicts the same way a join would.
	if _, err := cp.Explain(ctx, 1,
		treejoin.WithFixedPlan(treejoin.PlanSpec{Source: treejoin.PlanSourceTokenIndex})); !errors.Is(err, treejoin.ErrOptionConflict) {
		t.Fatalf("Explain conflict: err = %v, want ErrOptionConflict", err)
	}
}
