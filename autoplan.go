package treejoin

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"time"

	"treejoin/internal/engine"
	"treejoin/internal/engine/plan"
	"treejoin/internal/sim"
)

// PlanSource names a candidate source a fixed plan can pin. The zero value
// keeps the method's default.
type PlanSource int

const (
	// PlanSourceDefault keeps the method's default source (the token
	// inverted index for the signature methods; PartSJ and brute force have
	// no choice).
	PlanSourceDefault PlanSource = iota
	// PlanSourceTokenIndex pins the token inverted-index source. Conflicts
	// with methods that have none (PartSJ, MethodBruteForce) and with
	// WithSortedLoop.
	PlanSourceTokenIndex
	// PlanSourceSortedLoop pins the O(n²) sorted nested loop.
	PlanSourceSortedLoop
)

func (s PlanSource) String() string {
	switch s {
	case PlanSourceDefault:
		return "default"
	case PlanSourceTokenIndex:
		return plan.SourceTokenIndex
	case PlanSourceSortedLoop:
		return plan.SourceSortedLoop
	default:
		return fmt.Sprintf("PlanSource(%d)", int(s))
	}
}

// PlanSpec fixes parts of a query's execution plan for WithFixedPlan. Every
// combination a spec can express is sound — it moves work around without
// changing the result set — so specs are ablation and experimentation
// knobs, not correctness knobs. Zero-valued fields keep the method default.
type PlanSpec struct {
	// Source pins the candidate source.
	Source PlanSource
	// Chain, when non-nil, replaces the whole filter chain (the WithPrefilter
	// stages and the method's own filter alike) with exactly these stages in
	// this order. A non-nil empty chain runs no pair filters at all — every
	// offered pair goes straight to verification.
	Chain []Prefilter
	// PrefixC, when positive, sets the token index's prefix-length
	// multiplier: the index stores each tree's first PrefixC·τ+1 tokens
	// instead of the tokenizer's default Slack·τ+1. Values at or below the
	// tokenizer's slack are the default behavior; larger values index a
	// longer (still sound) prefix whose sharper count threshold can skip
	// more screenings at the price of longer posting scans. Requires the
	// token-index source.
	PrefixC int
}

// WithAutoPlan lets the corpus's learned cost model choose the execution
// plan per query: the candidate source (token index vs. sorted loop), the
// prefilter subset and order, and the token index's prefix-length
// multiplier. This is the default for all Corpus joins — the option exists
// to undo an earlier WithFixedPlan in an option list. Every plan the model
// can emit is sound, so results are bit-identical to the fixed default
// plan's; Stats.Plan records what was chosen and why (origin "observed",
// "calibrated", or "fixed"). The model learns from completed runs on this
// corpus (and its snapshots) and runs a small sampled calibration probe on
// corpora it has never seen; mutations age its observations. The legacy
// free functions SelfJoin and Join never plan adaptively — only a Corpus
// has somewhere to keep the model.
func WithAutoPlan() Option {
	return func(c *config) { c.fixedPlan = false; c.planSpecs = nil }
}

// WithFixedPlan disables adaptive planning for this query. With no
// arguments the method's static default plan runs, exactly as releases
// before the planner behaved. With specs, the given plan is forced —
// sources, chains, and prefix multipliers that the planner could choose can
// be pinned individually (later specs override earlier ones field by
// field). Results are identical under every expressible plan; execution
// statistics (Stats.Stages, Stats.Source) show the difference. Combinations
// the method cannot execute (pinning the token index on MethodPartSJ or
// MethodBruteForce, a prefix multiplier without the index) return
// ErrOptionConflict.
func WithFixedPlan(specs ...PlanSpec) Option {
	return func(c *config) {
		c.fixedPlan = true
		c.planSpecs = append(c.planSpecs, specs...)
	}
}

// mergedPlanSpec folds the WithFixedPlan specs into one, later specs
// overriding earlier ones field by field.
func (c config) mergedPlanSpec() (PlanSpec, bool) {
	if len(c.planSpecs) == 0 {
		return PlanSpec{}, false
	}
	var out PlanSpec
	for _, s := range c.planSpecs {
		if s.Source != PlanSourceDefault {
			out.Source = s.Source
		}
		if s.Chain != nil {
			out.Chain = s.Chain
		}
		if s.PrefixC > 0 {
			out.PrefixC = s.PrefixC
		}
	}
	return out, true
}

// planJob lets the corpus's cost model revise an assembled job before it
// runs: reorder or thin the filter chain, switch the candidate source, and
// raise the index's prefix budget. The job's cache must already be set (the
// model's calibration probes route through it). Under WithFixedPlan, or on
// a corpus without a model, the job runs as assembled and the decision is
// nil.
func (cp *Corpus) planJob(ctx context.Context, c config, job engine.Job, tz engine.Tokenizer, ts []*Tree, split int, epoch int64) (engine.Job, *plan.Decision) {
	if c.fixedPlan || cp.planner == nil {
		return job, nil
	}
	pin := ""
	switch {
	case c.method == MethodPartSJ:
		pin = "partsj"
		tz = nil
	case tz == nil || c.sortedLoop || job.Source == nil:
		pin = plan.SourceSortedLoop
		tz = nil
	}
	stages := make([]plan.Stage, len(job.Filters))
	for i, f := range job.Filters {
		stages[i] = plan.Stage{Name: f.Name(), Filter: f}
	}
	dec := cp.planner.Plan(plan.Request{
		Ctx:       ctx,
		Trees:     ts,
		Split:     split,
		Tau:       job.Tau,
		Epoch:     epoch,
		Cache:     job.Cache,
		Stages:    stages,
		Tokenizer: tz,
		PinSource: pin,
		// The maintained dynamic token snapshot serves self joins on a
		// mutated corpus above the index cutoff; it probes full bags, so
		// prefix tuning does not apply, and its per-run build cost is zero.
		DynIndex: pin == "" && split < 0 && epoch > 0 && len(ts) >= engine.TokenIndexMinTrees,
		Workers:  c.workers,
	})
	job.Filters = dec.Filters()
	if pin == "" && tz != nil && !dec.UseIndex {
		job.Source = nil
	}
	if dec.PrefixC > job.PrefixC {
		job.PrefixC = dec.PrefixC
	}
	job.Plan = dec.Record
	return job, &dec
}

// observeRun feeds one completed run's statistics back into the corpus's
// cost model. Cancelled runs are not fed (their wall times are truncated);
// neither are PartSJ runs — their stage and verify numbers are conditional
// on the subgraph index's candidate distribution, which the planner never
// reasons about.
func (cp *Corpus) observeRun(st *sim.Stats, ts []*Tree, split, tau int, epoch int64) {
	if cp.planner == nil || st == nil {
		return
	}
	if plan.NormalizeSource(st.Source) == "partsj" {
		return
	}
	cp.planner.Observe(st, ts, split, tau, epoch)
}

// PlanExplanation is the plan a Corpus join would execute, with the cost
// model's estimates — Corpus.Explain's result and the data behind
// cmd/treejoin's -explain flag.
type PlanExplanation struct {
	// Method and Tau echo the query.
	Method Method
	Tau    int
	// Source is the planned candidate source ("token-index", "sorted-loop",
	// "partsj"). The run's effective source can still differ when the token
	// index's own fallback conditions trip (Stats.Source reports it).
	Source string
	// Chain is the planned filter chain, in execution order.
	Chain []string
	// PrefixC is the token index's prefix-length multiplier (0 when no
	// index).
	PrefixC int
	// Origin tells where the plan came from: "fixed" (the static default),
	// "calibrated" (chosen from a sampled probe), or "observed" (backed by
	// completed-run feedback).
	Origin string
	// WindowPairs is the exact number of tree pairs within the τ size
	// window — the sorted loop's offer count and an upper bound for every
	// source.
	WindowPairs int64
	// Survival estimates, per chain stage, the fraction of offered pairs
	// that survive it. Nil when the model has no estimates (fixed plans).
	Survival []float64
	// Candidates estimates how many pairs reach verification; CandTime and
	// VerifyTime estimate the two stages' costs. Zero when the model cannot
	// say.
	Candidates int64
	CandTime   time.Duration
	VerifyTime time.Duration
}

// String formats the explanation the way cmd/treejoin -explain prints it.
func (ex PlanExplanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan:        method=%v τ=%d source=%s chain=[%s] C=%d origin=%s\n",
		ex.Method, ex.Tau, ex.Source, strings.Join(ex.Chain, " "), ex.PrefixC, ex.Origin)
	fmt.Fprintf(&b, "window:      %d pairs within the τ size window\n", ex.WindowPairs)
	if ex.Survival != nil {
		parts := make([]string, len(ex.Survival))
		for i, s := range ex.Survival {
			name := "?"
			if i < len(ex.Chain) {
				name = ex.Chain[i]
			}
			parts[i] = fmt.Sprintf("%s %.3f", name, s)
		}
		fmt.Fprintf(&b, "survival:    %s\n", strings.Join(parts, ", "))
		fmt.Fprintf(&b, "estimate:    ~%d candidates, candgen ~%v, verify ~%v",
			ex.Candidates, ex.CandTime.Round(time.Microsecond), ex.VerifyTime.Round(time.Microsecond))
	} else {
		fmt.Fprintf(&b, "estimate:    none (fixed plan; run the join for Stats)")
	}
	return b.String()
}

// Explain returns the execution plan the corresponding SelfJoin call would
// run right now, without running the join. Under the default WithAutoPlan
// this consults the corpus's cost model — including, on a cold corpus, the
// same sampled calibration probe a real join would trigger (cheap, and its
// artifacts pre-warm the corpus cache) — so the explanation carries the
// model's estimates: expected candidates, per-stage survival, and stage
// costs. Under WithFixedPlan the static plan is described without
// estimates. The plan is advisory: a later join re-plans against the
// model's state at that moment, so its Stats.Plan can differ.
func (cp *Corpus) Explain(ctx context.Context, tau int, opts ...Option) (PlanExplanation, error) {
	c := buildConfig(opts)
	job, tz, err := c.pipelineChecked(tau)
	if err != nil {
		return PlanExplanation{}, err
	}
	st := cp.state.Load()
	job.Cache = cp.runCache()
	job.DynTokens = cp.dynTokens(st)
	job, dec := cp.planJob(ctx, c, job, tz, st.ts, -1, st.epoch)
	ex := PlanExplanation{
		Method:  c.method,
		Tau:     tau,
		Source:  job.Plan.Source,
		Chain:   slices.Clone(job.Plan.Chain),
		PrefixC: job.Plan.PrefixC,
		Origin:  job.Plan.Origin,
	}
	if dec != nil {
		ex.WindowPairs = dec.Est.WindowPairs
		ex.Survival = dec.Est.Survival
		ex.Candidates = dec.Est.Candidates
		ex.CandTime = time.Duration(dec.Est.CandNs)
		ex.VerifyTime = time.Duration(dec.Est.VerifyNs)
	} else if cp.planner != nil {
		ex.WindowPairs = cp.planner.WindowPairs(st.ts, -1, tau, st.epoch)
	}
	return ex, nil
}
