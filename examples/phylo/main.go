// phylo compares phylogenetic trees read from Newick files — the biology
// workload that motivates Newick support. Alternative published phylogenies
// of the same clade differ in where a few taxa attach; TED counts those
// rearrangements, the self-join groups compatible trees, and the constrained
// distance (which preserves clades, i.e. least common ancestors) shows when
// the optimal mapping is clade-respecting.
//
//	go run ./examples/phylo
package main

import (
	"fmt"
	"log"

	"treejoin"
)

// Published-style hypotheses for a primate clade: the reference topology,
// one with a species moved to a different genus, one with a renamed inner
// label, and an outgroup-heavy alternative.
var hypotheses = []struct {
	name   string
	newick string
}{
	{"reference", "((human,chimp)homininae,(gorilla)gorillini,((orangutan)ponginae,gibbon)hylobatidae)hominoidea;"},
	{"gorilla-in", "((human,chimp,gorilla)homininae,((orangutan)ponginae,gibbon)hylobatidae)hominoidea;"},
	{"renamed", "((human,chimp)hominini,(gorilla)gorillini,((orangutan)ponginae,gibbon)hylobatidae)hominoidea;"},
	{"outgroup", "(((human,chimp)homininae,(gorilla)gorillini)hominidae,(macaque,baboon)cercopithecidae)catarrhini;"},
}

func main() {
	lt := treejoin.NewLabelTable()
	trees := make([]*treejoin.Tree, len(hypotheses))
	for i, h := range hypotheses {
		t, err := treejoin.ParseNewick(h.newick, lt)
		if err != nil {
			log.Fatalf("%s: %v", h.name, err)
		}
		trees[i] = t
		fmt.Printf("%-11s %2d nodes  %s\n", h.name, t.Size(), treejoin.FormatNewick(t))
	}

	// Which pairs of hypotheses are within 3 rearrangement edits?
	pairs, _ := treejoin.SelfJoin(trees, 3)
	fmt.Println("\nhypotheses within TED 3:")
	for _, p := range pairs {
		fmt.Printf("  %-11s ~ %-11s distance %d\n",
			hypotheses[p.I].name, hypotheses[p.J].name, p.Dist)
	}

	// TED versus the clade-preserving (constrained) distance: when they
	// agree, the optimal edit mapping respects clades; a gap means the
	// cheapest explanation breaks one clade into several.
	fmt.Println("\nTED vs clade-preserving distance against the reference:")
	for i := 1; i < len(trees); i++ {
		d := treejoin.Distance(trees[0], trees[i])
		cd := treejoin.ConstrainedDistance(trees[0], trees[i])
		fmt.Printf("  %-11s TED=%d constrained=%d\n", hypotheses[i].name, d, cd)
	}
}
