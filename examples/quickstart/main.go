// Quickstart: build a few trees, compute tree edit distances, run a
// similarity self-join, and use the streaming (incremental) join.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"treejoin"
)

func main() {
	// Every collection shares one label table.
	lt := treejoin.NewLabelTable()

	// Trees can be parsed from the bracket notation of the TED literature...
	a := treejoin.MustParseBracket("{article{title{Similarity Joins}}{year{2015}}}", lt)

	// ...or built programmatically.
	b := treejoin.NewBuilder(lt)
	root := b.Root("article")
	title := b.Child(root, "title")
	b.Child(title, "Similarity Joins!")
	year := b.Child(root, "year")
	b.Child(year, "2015")
	doc := b.MustBuild()

	fmt.Println("TED(a, doc) =", treejoin.Distance(a, doc)) // one rename

	// A self-join over a small collection: find all pairs within distance 2.
	docs := []*treejoin.Tree{
		a,
		doc,
		treejoin.MustParseBracket("{article{title{Similarity Joins}}{year{2016}}}", lt),
		treejoin.MustParseBracket("{book{title{Databases}}{isbn{42}}{year{1999}}}", lt),
	}
	pairs, stats := treejoin.SelfJoin(docs, 2)
	fmt.Printf("join found %d pairs (verified %d candidates):\n", len(pairs), stats.Candidates)
	for _, p := range pairs {
		fmt.Printf("  %s ~ %s (distance %d)\n",
			treejoin.FormatBracket(docs[p.I]), treejoin.FormatBracket(docs[p.J]), p.Dist)
	}

	// Streaming: each Add reports the newcomer's matches among earlier trees.
	stream := treejoin.NewIncremental(1)
	for _, d := range docs {
		matches := stream.Add(d)
		fmt.Printf("streamed tree %d: %d match(es)\n", stream.Len()-1, len(matches))
	}
}
