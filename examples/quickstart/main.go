// Quickstart: build a few trees, compute tree edit distances, construct a
// Corpus, and run its query family — slice joins, streaming joins, search,
// and the incremental join.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"treejoin"
)

func main() {
	// Every collection shares one label table.
	lt := treejoin.NewLabelTable()

	// Trees can be parsed from the bracket notation of the TED literature...
	a := treejoin.MustParseBracket("{article{title{Similarity Joins}}{year{2015}}}", lt)

	// ...or built programmatically.
	b := treejoin.NewBuilder(lt)
	root := b.Root("article")
	title := b.Child(root, "title")
	b.Child(title, "Similarity Joins!")
	year := b.Child(root, "year")
	b.Child(year, "2015")
	doc := b.MustBuild()

	fmt.Println("TED(a, doc) =", treejoin.Distance(a, doc)) // one rename

	// A corpus is built once and queried many times; construction validates
	// the shared label table.
	docs := []*treejoin.Tree{
		a,
		doc,
		treejoin.MustParseBracket("{article{title{Similarity Joins}}{year{2016}}}", lt),
		treejoin.MustParseBracket("{book{title{Databases}}{isbn{42}}{year{1999}}}", lt),
	}
	corpus, err := treejoin.NewCorpus(docs)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// All pairs within distance 2, materialised and sorted.
	pairs, stats, err := corpus.SelfJoin(ctx, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join found %d pairs (verified %d candidates):\n", len(pairs), stats.Candidates)
	for _, p := range pairs {
		fmt.Printf("  %s ~ %s (distance %d)\n",
			treejoin.FormatBracket(docs[p.I]), treejoin.FormatBracket(docs[p.J]), p.Dist)
	}

	// A second query at a different threshold reuses every cached per-tree
	// signature — only the threshold-dependent filtering runs again.
	seq, err := corpus.SelfJoinSeq(ctx, 1)
	if err != nil {
		log.Fatal(err)
	}
	for p := range seq {
		fmt.Printf("streamed pair within 1: %d ~ %d\n", p.I, p.J)
		break // breaking out cancels the rest of the join
	}
	cs := corpus.CacheStats()
	fmt.Printf("signature cache: %d hits, %d misses\n", cs.Hits, cs.Misses)

	// Similarity search against the corpus.
	q := treejoin.MustParseBracket("{article{title{Similarity Join}}{year{2015}}}", lt)
	matches, err := corpus.Search(ctx, q, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search found %d tree(s) within 2 of the query\n", len(matches))

	// Streaming: each Add reports the newcomer's matches among earlier
	// trees; the stream shares the corpus's signature cache.
	stream, err := corpus.Incremental(1)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range docs {
		ms := stream.Add(d)
		fmt.Printf("streamed tree %d: %d match(es)\n", stream.Len()-1, len(ms))
	}
}
