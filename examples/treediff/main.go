// treediff prints an optimal edit script between two XML documents — a
// structural diff under the tree edit distance, built from the library's
// Mapping/EditScript API (the operational counterpart of the join's
// distance predicate).
//
//	go run ./examples/treediff
package main

import (
	"fmt"
	"log"

	"treejoin"
)

const before = `<config>
  <server><host>db1</host><port>5432</port></server>
  <pool><max>10</max></pool>
  <logging><level>info</level></logging>
</config>`

const after = `<config>
  <server><host>db2</host><port>5432</port><tls>on</tls></server>
  <pool><max>10</max></pool>
  <logging><level>debug</level></logging>
</config>`

func main() {
	lt := treejoin.NewLabelTable()
	opts := treejoin.XMLOptions{IncludeText: true}
	a, err := treejoin.ParseXMLString(before, lt, opts)
	if err != nil {
		log.Fatal(err)
	}
	b, err := treejoin.ParseXMLString(after, lt, opts)
	if err != nil {
		log.Fatal(err)
	}

	dist, script := treejoin.EditScript(a, b)
	fmt.Printf("structural distance: %d edit(s)\n\n", dist)
	fmt.Print(treejoin.FormatEditScript(a, b, script))

	// The mapping view: which nodes survived the change.
	_, mapping := treejoin.Mapping(a, b)
	kept := 0
	for _, p := range mapping {
		if a.Label(p.N1) == b.Label(p.N2) {
			kept++
		}
	}
	fmt.Printf("\n%d of %d nodes unchanged, %d renamed, %d deleted, %d inserted\n",
		kept, a.Size(), len(mapping)-kept, a.Size()-len(mapping), b.Size()-len(mapping))

	// The playback view: the same script as a morph, one edit per step.
	steps, err := treejoin.Transform(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmorph, one edit at a time:")
	for i, s := range steps {
		fmt.Printf("  %d: %s\n", i, treejoin.FormatBracket(s))
	}
}
