// xmldedup detects near-duplicate XML documents — the paper's motivating
// scenario of a shopping site whose item descriptions (music albums here) are
// XML documents, where vendors want to spot items that other stores sell
// under slightly different descriptions.
//
//	go run ./examples/xmldedup
package main

import (
	"fmt"
	"log"

	"treejoin"
)

// A small product catalog. Items 0/1/4 describe the same album with small
// editorial differences; 2 and 5 are the same single; 3 is unrelated.
var catalog = []string{
	`<album><title>Blue Train</title><artist>John Coltrane</artist>
	   <year>1957</year><tracks><t>Blue Train</t><t>Moment's Notice</t></tracks></album>`,
	`<album><title>Blue Train</title><artist>J. Coltrane</artist>
	   <year>1957</year><tracks><t>Blue Train</t><t>Moment's Notice</t></tracks></album>`,
	`<single><title>So What</title><artist>Miles Davis</artist><year>1959</year></single>`,
	`<book><title>Jazz Theory</title><author>Mark Levine</author><isbn>1883217040</isbn>
	   <year>1995</year></book>`,
	`<album><title>Blue Train</title><artist>John Coltrane</artist><label>Blue Note</label>
	   <year>1957</year><tracks><t>Blue Train</t><t>Moment's Notice</t></tracks></album>`,
	`<single><title>So What</title><artist>Miles Davis</artist><year>1959</year>
	   <remastered>true</remastered></single>`,
}

func main() {
	lt := treejoin.NewLabelTable()
	opts := treejoin.XMLOptions{IncludeText: true}
	docs := make([]*treejoin.Tree, len(catalog))
	for i, xml := range catalog {
		t, err := treejoin.ParseXMLString(xml, lt, opts)
		if err != nil {
			log.Fatalf("item %d: %v", i, err)
		}
		docs[i] = t
	}

	// Two documents within 3 node edits are considered near-duplicates:
	// enough to absorb a renamed artist, an extra element, or both.
	const tau = 3
	pairs, stats := treejoin.SelfJoin(docs, tau)

	fmt.Printf("%d items, τ=%d: %d near-duplicate pair(s)\n", len(docs), tau, len(pairs))
	fmt.Printf("(the PartSJ filter verified only %d of %d possible pairs)\n\n",
		stats.Candidates, len(docs)*(len(docs)-1)/2)
	for _, p := range pairs {
		fmt.Printf("items %d and %d differ by %d edit(s)\n", p.I, p.J, p.Dist)
	}

	// Group near-duplicates with a union-find over the join result — the
	// "diversify recommendations" use from the paper's introduction.
	parent := make([]int, len(docs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, p := range pairs {
		parent[find(p.I)] = find(p.J)
	}
	groups := map[int][]int{}
	for i := range docs {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	fmt.Printf("\ncatalog collapses to %d distinct item group(s):\n", len(groups))
	for _, members := range groups {
		fmt.Printf("  %v\n", members)
	}

	// Live catalog maintenance: documents are inserted and updated at a high
	// rate (the paper's closing motivation). Each update removes the stale
	// version and reports the revision's duplicates among the live items.
	stream := treejoin.NewIncremental(tau)
	for _, d := range docs {
		stream.Add(d)
	}
	revised := treejoin.MustParseBracket(
		treejoin.FormatBracket(docs[0]), docs[0].Labels)
	pos, dups := stream.Update(0, revised)
	fmt.Printf("\nafter revising item 0 (now position %d): %d duplicate(s) among %d live items\n",
		pos, len(dups), stream.Live())
}
