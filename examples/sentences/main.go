// sentences groups English sentences by the shape of their parse trees — the
// paper's computational-linguistics motivation: "finding sentences that have
// similar parsing structures would be useful ... for semantic
// categorization".
//
// Parse trees are given in Penn-Treebank-style bracket notation with
// part-of-speech tags as labels (lexical items dropped, as is usual when
// comparing constituent structure).
//
//	go run ./examples/sentences
package main

import (
	"fmt"
	"log"

	"treejoin"
)

var sentences = []struct {
	text  string
	parse string // POS structure in this module's bracket notation
}{
	{"The cat sat on the mat.",
		"{S{NP{DT}{NN}}{VP{VBD}{PP{IN}{NP{DT}{NN}}}}{.}}"},
	{"A dog slept under the table.",
		"{S{NP{DT}{NN}}{VP{VBD}{PP{IN}{NP{DT}{NN}}}}{.}}"},
	{"The old cat sat on the mat.",
		"{S{NP{DT}{JJ}{NN}}{VP{VBD}{PP{IN}{NP{DT}{NN}}}}{.}}"},
	{"Birds sing.",
		"{S{NP{NNS}}{VP{VBP}}{.}}"},
	{"Fish swim.",
		"{S{NP{NNS}}{VP{VBP}}{.}}"},
	{"Did the committee approve the proposal that the chairman submitted?",
		"{SQ{VBD}{NP{DT}{NN}}{VP{VB}{NP{NP{DT}{NN}}{SBAR{WHNP{WDT}}{S{NP{DT}{NN}}{VP{VBD}}}}}}{.}}"},
	{"Will the board accept the plan that the director proposed?",
		"{SQ{MD}{NP{DT}{NN}}{VP{VB}{NP{NP{DT}{NN}}{SBAR{WHNP{WDT}}{S{NP{DT}{NN}}{VP{VBD}}}}}}{.}}"},
}

func main() {
	lt := treejoin.NewLabelTable()
	trees := make([]*treejoin.Tree, len(sentences))
	for i, s := range sentences {
		t, err := treejoin.ParseBracket(s.parse, lt)
		if err != nil {
			log.Fatalf("sentence %d: %v", i, err)
		}
		trees[i] = t
	}

	// Two parses within one edit share essentially the same construction.
	const tau = 1
	pairs, _ := treejoin.SelfJoin(trees, tau)
	fmt.Printf("sentences with near-identical constituent structure (τ=%d):\n\n", tau)
	for _, p := range pairs {
		fmt.Printf("  %q\n~ %q\n  (structural distance %d)\n\n",
			sentences[p.I].text, sentences[p.J].text, p.Dist)
	}

	// The same join as a stream: categorize sentences as they arrive.
	fmt.Println("streaming categorization:")
	stream := treejoin.NewIncremental(tau)
	category := make([]int, 0, len(sentences))
	next := 0
	for i, t := range trees {
		matches := stream.Add(t)
		if len(matches) > 0 {
			category = append(category, category[matches[0].I])
		} else {
			category = append(category, next)
			next++
		}
		fmt.Printf("  category %d: %s\n", category[i], sentences[i].text)
	}

	// Constituent search inside one parse: find the noun phrases of the
	// last (most complex) sentence that look like "determiner + noun",
	// allowing one structural edit.
	pattern, err := treejoin.ParseBracket("{NP{DT}{NN}}", lt)
	if err != nil {
		log.Fatal(err)
	}
	last := trees[len(trees)-1]
	fmt.Printf("\nNP{DT,NN}-like constituents in %q (τ=1):\n", sentences[len(sentences)-1].text)
	for _, m := range treejoin.SubtreeSearch(last, pattern, 1) {
		fmt.Printf("  node %d: %s (distance %d)\n",
			m.Root, treejoin.FormatBracket(treejoin.SubtreeAt(last, m.Root)), m.Dist)
	}
}
