// recommend demonstrates the threshold-free queries: TopK (the k most
// similar pairs of a collection, here used to flag likely duplicate listings
// so a shop can diversify its recommendations) and KNN (the k listings most
// similar to a query item, here used as a "customers also viewed" shelf) —
// the paper's C2C-shopping motivation without having to guess a TED
// threshold up front.
//
//	go run ./examples/recommend
package main

import (
	"fmt"
	"log"

	"treejoin"
)

var listings = []string{
	"{album{title{Blue}}{artist{Joni Mitchell}}{year{1971}}{format{LP}}}",
	"{album{title{Blue}}{artist{Joni Mitchell}}{year{1971}}{format{CD}}}",
	"{album{title{Court and Spark}}{artist{Joni Mitchell}}{year{1974}}{format{LP}}}",
	"{album{title{Blue Train}}{artist{John Coltrane}}{year{1957}}{format{LP}}}",
	"{album{title{Blue Train}}{artist{John Coltrane}}{year{1957}}{format{LP}}{remaster{2003}}}",
	"{album{title{Giant Steps}}{artist{John Coltrane}}{year{1960}}{format{LP}}}",
	"{album{title{A Love Supreme}}{artist{John Coltrane}}{year{1965}}{format{LP}}}",
	"{album{title{Hejira}}{artist{Joni Mitchell}}{year{1976}}{format{LP}}}",
}

func main() {
	lt := treejoin.NewLabelTable()
	catalog := make([]*treejoin.Tree, len(listings))
	for i, s := range listings {
		t, err := treejoin.ParseBracket(s, lt)
		if err != nil {
			log.Fatal(err)
		}
		catalog[i] = t
	}
	describe := func(i int) string {
		// Concatenate the text leaves under title/artist/format: children of
		// the root are elements, each wrapping one text node.
		t := catalog[i]
		var out string
		for el := t.Nodes[0].FirstChild; el != treejoin.None; el = t.Nodes[el].NextSibling {
			switch t.Label(el) {
			case "title", "artist", "format":
				if out != "" {
					out += " · "
				}
				out += t.Label(t.Nodes[el].FirstChild)
			}
		}
		return out
	}

	// Near-duplicate detection: the 3 closest pairs of the catalog, no
	// threshold needed. The two "Blue" listings (format differs) and the two
	// "Blue Train" pressings rank first.
	fmt.Println("likely duplicate listings (TopK, k=3):")
	for _, p := range treejoin.TopK(catalog, 3) {
		fmt.Printf("  #%d ~ #%d  distance %d\n", p.I, p.J, p.Dist)
		fmt.Printf("     %s\n     %s\n", describe(p.I), describe(p.J))
	}

	// Recommendation: the 3 listings most similar to a new item the user is
	// viewing. The searcher is reusable and safe for concurrent queries.
	knn := treejoin.NewKNN(catalog)
	q, err := treejoin.ParseBracket(
		"{album{title{Blue Train}}{artist{John Coltrane}}{year{1957}}{format{SACD}}}", lt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncustomers also viewed (KNN, k=3):")
	for _, m := range knn.Nearest(q, 3) {
		fmt.Printf("  #%d  distance %d  %s\n", m.Pos, m.Dist, describe(m.Pos))
	}
}
