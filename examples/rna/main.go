// rna finds pairs of similar RNA secondary structures — the paper's biology
// motivation: "biologists are often interested in finding similar pairs of
// RNA secondary structures (which are modeled as trees) from various sources
// to better understand the relationships of different species".
//
// Secondary structures are given in dot-bracket notation: matching
// parentheses are base pairs, dots are unpaired bases. The standard tree
// encoding makes every base pair an internal node (labeled "P") whose
// children are the pairs and unpaired bases nested inside it, under a
// virtual root.
//
//	go run ./examples/rna
package main

import (
	"fmt"
	"log"

	"treejoin"
)

// structure is one (name, sequence, dot-bracket) record. The set contains
// two tRNA-like cloverleafs differing in one loop base, a hairpin family,
// and an unrelated pseudo-stem.
var structures = []struct {
	name string
	seq  string
	db   string
}{
	{"tRNA-A", "GCGGAUUUAGCUCAGUUGGGAGAGCGCCAGACUG", "((((.(((....))).(((....))).))))..."},
	{"tRNA-B", "GCGGAUUUAGCUCAGUUGGGAGAGCGCCAGACUGA", "((((.(((....))).(((.....))).))))..."},
	{"hairpin-1", "GGGAAACCC", "(((...)))"},
	{"hairpin-2", "GGGAAAACCC", "(((....)))"},
	{"hairpin-3", "GGGGAAACCCC", "((((...))))"},
	{"stem", "GGGGCCCCAAAA", "(((())))...."},
}

func main() {
	lt := treejoin.NewLabelTable()
	trees := make([]*treejoin.Tree, len(structures))
	for i, s := range structures {
		t, err := treejoin.ParseDotBracket(s.db, s.seq, lt)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		trees[i] = t
		fmt.Printf("%-10s %3d nodes  %s\n", s.name, t.Size(), s.db)
	}

	const tau = 4
	pairs, _ := treejoin.SelfJoin(trees, tau)
	fmt.Printf("\nstructures within %d edits of each other:\n", tau)
	for _, p := range pairs {
		fmt.Printf("  %-10s ~ %-10s distance %d\n",
			structures[p.I].name, structures[p.J].name, p.Dist)
	}

	// Pairwise distances of one family, for context.
	fmt.Println("\nhairpin family distance matrix:")
	for i := 2; i <= 4; i++ {
		for j := 2; j <= 4; j++ {
			fmt.Printf("%3d", treejoin.Distance(trees[i], trees[j]))
		}
		fmt.Println()
	}

	// Classification by nearest neighbour: which known structure is a newly
	// determined one most like? No threshold guess needed.
	knn := treejoin.NewKNN(trees)
	q, err := treejoin.ParseDotBracket("(((..)))", "GGGAACCC", lt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnearest neighbours of a new hairpin (((..))):")
	for _, m := range knn.Nearest(q, 2) {
		fmt.Printf("  %-10s distance %d\n", structures[m.Pos].name, m.Dist)
	}
}
