// catalogmatch joins two different product catalogs — the paper's data
// integration motivation: "vendors could be interested in knowing similar
// items that are sold at other stores in order to find potential
// competitors". Unlike the self-join examples, this uses the cross join
// Corpus.Join(other), which only reports cross pairs; each catalog is its
// own Corpus, and the join validates that they share a label table.
//
//	go run ./examples/catalogmatch
package main

import (
	"context"
	"fmt"
	"log"

	"treejoin"
)

var storeA = []string{
	"{item{name{espresso machine}}{brand{Gaggia}}{price{449}}}",
	"{item{name{burr grinder}}{brand{Baratza}}{price{169}}}",
	"{item{name{kettle}}{brand{Fellow}}{price{165}}{variant{black}}}",
	"{item{name{scale}}{brand{Acaia}}{price{120}}}",
}

var storeB = []string{
	"{item{name{espresso machine}}{brand{Gaggia}}{price{439}}}",        // same product, other price
	"{item{name{burr grinder}}{brand{Baratza}}{price{169}}{sku{B52}}}", // same product, extra field
	"{item{name{drip brewer}}{brand{Technivorm}}{price{349}}}",         // unrelated
	"{item{name{kettle}}{brand{Fellow}}{price{165}}{variant{white}}}",  // variant differs
	"{item{name{milk frother}}{brand{Subminimal}}{price{99}}}",         // unrelated
}

func main() {
	lt := treejoin.NewLabelTable()
	parse := func(src []string) []*treejoin.Tree {
		out := make([]*treejoin.Tree, len(src))
		for i, s := range src {
			t, err := treejoin.ParseBracket(s, lt)
			if err != nil {
				log.Fatal(err)
			}
			out[i] = t
		}
		return out
	}
	a := parse(storeA)
	b := parse(storeB)

	catalogA, err := treejoin.NewCorpus(a)
	if err != nil {
		log.Fatal(err)
	}
	catalogB, err := treejoin.NewCorpus(b)
	if err != nil {
		log.Fatal(err)
	}

	const tau = 2
	pairs, stats, err := catalogA.Join(context.Background(), catalogB, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matched %d cross-catalog pair(s) within %d edits (verified %d candidates):\n\n",
		len(pairs), tau, stats.Candidates)
	for _, p := range pairs {
		fmt.Printf("A[%d] %s\n", p.I, treejoin.FormatBracket(a[p.I]))
		fmt.Printf("B[%d] %s\n", p.J, treejoin.FormatBracket(b[p.J]))
		_, script := treejoin.EditScript(a[p.I], b[p.J])
		fmt.Print(treejoin.FormatEditScript(a[p.I], b[p.J], script))
		fmt.Println()
	}
}
