// Benchmarks regenerating the paper's evaluation, one benchmark family per
// figure (Figure 14 doubles as Table 1's parameter grid). Collections are
// scaled-down versions of the paper's (see internal/bench); the quantities to
// compare across methods are ns/op (runtime figures) and the reported
// cand/op and res/op metrics (candidate figures). For bigger, configurable
// runs use cmd/benchfig.
package treejoin_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"treejoin"
	"treejoin/internal/bench"
	"treejoin/internal/core"
	"treejoin/internal/dataset"
	"treejoin/internal/subtree"
	"treejoin/internal/synth"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// benchConfig keeps `go test -bench=.` affordable: ~0.2% of the paper's
// cardinalities (Swissprot 200, Treebank 100, Sentiment/Synthetic 20→clamped).
func benchConfig() bench.Config { return bench.Config{Scale: 0.002, Seed: 1} }

var benchMethods = []bench.Method{bench.STR, bench.SET, bench.PRT}

// runJoin is the common measurement loop: one full self-join per iteration,
// with candidate and result counts attached as custom metrics.
func runJoin(b *testing.B, m bench.Method, name string, ts []*tree.Tree, tau int) {
	b.Helper()
	var last bench.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = bench.Run(m, name, ts, tau, 0)
	}
	b.ReportMetric(float64(last.Candidates), "cand/op")
	b.ReportMetric(float64(last.Results), "res/op")
}

// BenchmarkFig10And11 — runtime (Fig 10) and candidates (Fig 11) versus the
// TED threshold τ, on all four dataset profiles, for STR/SET/PRT.
func BenchmarkFig10And11(b *testing.B) {
	for _, ds := range bench.Datasets(benchConfig()) {
		for _, tau := range []int{1, 3, 5} {
			for _, m := range benchMethods {
				b.Run(fmt.Sprintf("%s/tau=%d/%s", ds.Name, tau, m), func(b *testing.B) {
					runJoin(b, m, ds.Name, ds.Trees, tau)
				})
			}
		}
	}
}

// BenchmarkFig12And13 — runtime (Fig 12) and candidates (Fig 13) versus
// collection cardinality at τ = 3.
func BenchmarkFig12And13(b *testing.B) {
	const tau = 3
	for _, ds := range bench.Datasets(benchConfig()) {
		for _, pct := range []int{40, 100} {
			n := len(ds.Trees) * pct / 100
			sub := ds.Trees[:n]
			for _, m := range benchMethods {
				b.Run(fmt.Sprintf("%s/n=%d/%s", ds.Name, n, m), func(b *testing.B) {
					runJoin(b, m, ds.Name, sub, tau)
				})
			}
		}
	}
}

// BenchmarkFig14 — the sensitivity analysis / Table 1 grid: one synthetic
// parameter varies (maximum fanout f, maximum depth d, labels l, tree size
// t) while the others hold their defaults (3, 5, 20, 80); τ = 3.
func BenchmarkFig14(b *testing.B) {
	const tau = 3
	const n = 40 // the 10K-tree synthetic collection at bench scale
	sweeps := []struct {
		param  string
		values []int
		gen    func(v int) []*tree.Tree
	}{
		{"f", []int{2, 4, 6}, func(v int) []*tree.Tree {
			return synth.Generate(synth.SyntheticParams(n, v, 5, 20, 80, 1))
		}},
		{"d", []int{4, 6, 8}, func(v int) []*tree.Tree {
			return synth.Generate(synth.SyntheticParams(n, 3, v, 20, 80, 1))
		}},
		{"l", []int{3, 20, 50}, func(v int) []*tree.Tree {
			return synth.Generate(synth.SyntheticParams(n, 3, 5, v, 80, 1))
		}},
		{"t", []int{40, 120, 200}, func(v int) []*tree.Tree {
			return synth.Generate(synth.SyntheticParams(n, 3, 5, 20, v, 1))
		}},
	}
	for _, sw := range sweeps {
		for _, v := range sw.values {
			ts := sw.gen(v)
			for _, m := range benchMethods {
				b.Run(fmt.Sprintf("%s=%d/%s", sw.param, v, m), func(b *testing.B) {
					runJoin(b, m, sw.param, ts, tau)
				})
			}
		}
	}
}

// BenchmarkAblationPartitioning — §4.3's omitted experiment: the balanced
// MaxMinSize partitioning versus random bridging edges.
func BenchmarkAblationPartitioning(b *testing.B) {
	ts := synth.Synthetic(100, 1)
	for _, tau := range []int{1, 3, 5} {
		for _, m := range []bench.Method{bench.PRT, bench.PRTRandom} {
			b.Run(fmt.Sprintf("tau=%d/%s", tau, m), func(b *testing.B) {
				runJoin(b, m, "Synthetic", ts, tau)
			})
		}
	}
}

// BenchmarkAblationPosition — reproduction extension: the position layer's
// variants (sound ±τ default, the paper's tighter ranges, no position layer).
func BenchmarkAblationPosition(b *testing.B) {
	ts := synth.Synthetic(100, 1)
	for _, tau := range []int{1, 3, 5} {
		for _, m := range []bench.Method{bench.PRT, bench.PRTPaper, bench.PRTNoPos} {
			b.Run(fmt.Sprintf("tau=%d/%s", tau, m), func(b *testing.B) {
				runJoin(b, m, "Synthetic", ts, tau)
			})
		}
	}
}

// BenchmarkBaselinePanorama — reproduction extension: the full lower-bound
// filter landscape of the survey [18] (STR, SET, HIST of Kailing et al., EUL
// of Akutsu et al., PRT) on the synthetic profile.
func BenchmarkBaselinePanorama(b *testing.B) {
	ts := synth.Synthetic(100, 1)
	for _, tau := range []int{1, 3} {
		for _, m := range []bench.Method{bench.STR, bench.SET, bench.HIST, bench.EUL, bench.PRT} {
			b.Run(fmt.Sprintf("tau=%d/%s", tau, m), func(b *testing.B) {
				runJoin(b, m, "Synthetic", ts, tau)
			})
		}
	}
}

// BenchmarkParallelVerification — the paper's future-work direction
// (multi-core): PartSJ with a TED verification worker pool.
func BenchmarkParallelVerification(b *testing.B) {
	ts := synth.Synthetic(400, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.Run(bench.PRT, "Synthetic", ts, 3, workers)
			}
		})
	}
}

// BenchmarkShardedJoin — the paper's distributed direction: the same join
// decomposed into fragment-and-replicate shard tasks on a worker pool
// (candidate generation parallelises too, at the price of per-task indexes).
func BenchmarkShardedJoin(b *testing.B) {
	ts := synth.Synthetic(400, 1)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ShardedSelfJoin(ts, shards, core.Options{Tau: 3, Workers: shards}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTopK — threshold-free closest pairs via expanding-threshold
// PartSJ passes.
func BenchmarkTopK(b *testing.B) {
	ts := synth.Synthetic(200, 1)
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.TopK(ts, k, core.Options{})
			}
		})
	}
}

// BenchmarkKNN — nearest-neighbour queries against a warm searcher (indexes
// cached per visited threshold).
func BenchmarkKNN(b *testing.B) {
	ts := synth.Synthetic(200, 1)
	knn := core.NewKNN(ts, core.Options{})
	knn.Nearest(ts[0], 5) // warm the index cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knn.Nearest(ts[i%len(ts)], 5)
	}
}

// BenchmarkDatasetCodec — binary dataset encode/decode throughput versus
// bracket-text parse, the codec's reason to exist.
func BenchmarkDatasetCodec(b *testing.B) {
	ts := synth.Synthetic(500, 1)
	lt := ts[0].Labels
	var buf bytes.Buffer
	if err := dataset.Write(&buf, lt, ts); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	var text bytes.Buffer
	for _, t := range ts {
		text.WriteString(tree.FormatBracket(t))
		text.WriteByte('\n')
	}
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(encoded)))
		for i := 0; i < b.N; i++ {
			var out bytes.Buffer
			if err := dataset.Write(&out, lt, ts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(encoded)))
		for i := 0; i < b.N; i++ {
			if _, _, err := dataset.Read(bytes.NewReader(encoded)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse-bracket", func(b *testing.B) {
		b.SetBytes(int64(text.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := treejoin.ReadBracketLines(bytes.NewReader(text.Bytes()), treejoin.NewLabelTable()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTransform — edit-script playback cost (mapping extraction plus
// one induced tree per edit step).
func BenchmarkTransform(b *testing.B) {
	ts := synth.Synthetic(40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := ts[i%len(ts)]
		c := ts[(i+1)%len(ts)]
		if _, err := ted.Transform(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineParallelCandidates — the engine's parallel candidate
// generation: the sorted probe loop sharded across the WithWorkers pool, on
// a filter-heavy method (EUL's banded string comparisons) over a 1000-tree
// corpus at τ = 1, where candidate generation dominates end to end. The
// sequential/parallel ns/op ratio is the engine's candidate-generation
// speedup (verification is parallelised identically in both runs). Baseline
// numbers are recorded in BENCH_engine.json.
func BenchmarkEngineParallelCandidates(b *testing.B) {
	ts := synth.Synthetic(1000, 1)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var st treejoin.Stats
			for i := 0; i < b.N; i++ {
				_, st = treejoin.SelfJoin(ts, 1,
					treejoin.WithMethod(treejoin.MethodEulerString),
					treejoin.WithWorkers(workers))
			}
			b.ReportMetric(float64(st.Candidates), "cand/op")
		})
	}
}

// engineBenchCorpus is the standard synthetic corpus the engine candidate
// benchmarks (FilterChain, IndexSource) share, so their variants compare
// like-for-like: same trees, same thresholds, sorted loop versus token
// index.
func engineBenchCorpus() []*tree.Tree { return synth.Synthetic(2000, 1) }

var engineBenchTaus = []int{1, 2, 4}

// BenchmarkEngineFilterChain — the sorted-loop filter-chain baseline: each
// method alone versus the same method with the cheap HIST statistics screen
// chained in front of it via the engine pipeline (cf. the benchfig
// "pipeline" figure). All variants run the O(n²) sorted loop; the matching
// BenchmarkEngineIndexSource variants run the token inverted-index source
// over the same corpus and thresholds.
func BenchmarkEngineFilterChain(b *testing.B) {
	ts := engineBenchCorpus()
	for _, tau := range engineBenchTaus {
		for _, m := range []bench.Method{
			bench.PRT, bench.PRTHist, bench.STR, bench.STRHist, bench.PQG, bench.PQGHist,
		} {
			b.Run(fmt.Sprintf("%s/tau=%d", m, tau), func(b *testing.B) {
				runJoin(b, m, "Synthetic", ts, tau)
			})
		}
	}
}

// BenchmarkEngineIndexSource — the token inverted-index candidate source on
// the signature methods, over the same corpus and thresholds as
// BenchmarkEngineFilterChain. cold runs one-shot joins (every iteration
// tokenises from scratch, like the sorted-loop baseline recomputes its
// signatures); warm runs against a pre-warmed Corpus whose cache already
// holds every token bag and filter signature — the steady state of a served
// workload. Warm reuse is asserted by cache hit counters in
// TestTokenIndexWarmCorpus.
func BenchmarkEngineIndexSource(b *testing.B) {
	ts := engineBenchCorpus()
	methods := []struct {
		name string
		m    treejoin.Method
	}{
		{"STR", treejoin.MethodSTR},
		{"PQG", treejoin.MethodPQGram},
		{"HIST", treejoin.MethodHistogram},
	}
	for _, tau := range engineBenchTaus {
		for _, mm := range methods {
			b.Run(fmt.Sprintf("%s/tau=%d/cold", mm.name, tau), func(b *testing.B) {
				var st treejoin.Stats
				for i := 0; i < b.N; i++ {
					_, st = treejoin.SelfJoin(ts, tau, treejoin.WithMethod(mm.m))
				}
				b.ReportMetric(float64(st.Candidates), "cand/op")
				b.ReportMetric(float64(st.Results), "res/op")
			})
			b.Run(fmt.Sprintf("%s/tau=%d/warm", mm.name, tau), func(b *testing.B) {
				corpus, err := treejoin.NewCorpus(ts)
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				if _, _, err := corpus.SelfJoin(ctx, tau, treejoin.WithMethod(mm.m)); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var st treejoin.Stats
				for i := 0; i < b.N; i++ {
					var err error
					_, st, err = corpus.SelfJoin(ctx, tau, treejoin.WithMethod(mm.m))
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(st.Candidates), "cand/op")
				b.ReportMetric(float64(st.Results), "res/op")
			})
		}
	}
}

// BenchmarkEngineCrossJoin — cross joins through the one engine loop, per
// method (historically only PartSJ could run these at all).
func BenchmarkEngineCrossJoin(b *testing.B) {
	ts := synth.Synthetic(400, 1)
	a, c := ts[:200], ts[200:]
	for _, m := range []treejoin.Method{
		treejoin.MethodPartSJ, treejoin.MethodHistogram, treejoin.MethodPQGram,
	} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				treejoin.Join(a, c, 2, treejoin.WithMethod(m))
			}
		})
	}
}

// BenchmarkSubtreeSearch — similarity search inside one large tree, with
// and without the traversal-string screens engaged (τ sweep).
func BenchmarkSubtreeSearch(b *testing.B) {
	big := synth.Generate(synth.Params{
		N: 1, AvgSize: 2000, SizeJitter: 0, MaxFanout: 4, MaxDepth: 12,
		Labels: 10, Cluster: 1, Seed: 7})[0]
	query := tree.SubtreeAt(big, int32(big.Size()/2))
	for _, tau := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				subtree.Search(big, query, tau)
			}
		})
	}
}
