package treejoin_test

import (
	"context"
	"sync"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

// TestUnbandedVerificationMatches: the τ-banded default verifier and the
// WithUnbandedVerification full-DP baseline produce identical result sets
// across methods and thresholds, the banded run records its pruning
// counters, and the unbanded run keeps them zero.
func TestUnbandedVerificationMatches(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(50, 23)
	cp := mustCorpus(t, ts)
	for _, m := range []treejoin.Method{
		treejoin.MethodPartSJ, treejoin.MethodBruteForce, treejoin.MethodHistogram,
	} {
		for _, tau := range []int{0, 1, 3, 6} {
			banded, bst, err := cp.SelfJoin(ctx, tau, treejoin.WithMethod(m))
			if err != nil {
				t.Fatal(err)
			}
			full, fst, err := cp.SelfJoin(ctx, tau, treejoin.WithMethod(m), treejoin.WithUnbandedVerification())
			if err != nil {
				t.Fatal(err)
			}
			samePairs(t, "banded vs unbanded", banded, full)
			if fst.DPAvoided != 0 || fst.KeyrootsSkipped != 0 || fst.BandAborts != 0 {
				t.Fatalf("%v τ=%d: unbanded run recorded banded counters %+v", m, tau, fst)
			}
			if m == treejoin.MethodBruteForce && tau <= 1 &&
				bst.DPAvoided == 0 && bst.KeyrootsSkipped == 0 && bst.BandAborts == 0 {
				t.Fatalf("%v τ=%d: banded run recorded no verifier pruning (candidates=%d)",
					m, tau, bst.Candidates)
			}
		}
	}
	// Hybrid verification composes (the banded TED sits behind the string
	// screens) and unbanded overrides it; both still match.
	ref, _, err := cp.SelfJoin(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	hyb, _, err := cp.SelfJoin(ctx, 3, treejoin.WithHybridVerification())
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "hybrid", hyb, ref)
	both, _, err := cp.SelfJoin(ctx, 3, treejoin.WithHybridVerification(), treejoin.WithUnbandedVerification())
	if err != nil {
		t.Fatal(err)
	}
	samePairs(t, "hybrid+unbanded", both, ref)
}

// TestConcurrentVerifyAcrossTwoCorpora hammers the verifier's pooled scratch
// buffers and shared cached preparations from many concurrent verify workers
// across two corpora — parallel self joins on each side and cross joins
// between them, all racing — and asserts every result identical to the
// serial run. Under -race this is the detector test for the scratch pool,
// the lazy Prep materialisation, and the routed cross-join cache.
func TestConcurrentVerifyAcrossTwoCorpora(t *testing.T) {
	ctx := context.Background()
	ts := synth.Sentiment(85, 3) // one generation → one shared label table
	as, bs := ts[:45], ts[45:]
	cpA := mustCorpus(t, as)
	cpB := mustCorpus(t, bs)
	const tau = 2

	selfA, _, err := cpA.SelfJoin(ctx, tau)
	if err != nil {
		t.Fatal(err)
	}
	selfB, _, err := cpB.SelfJoin(ctx, tau)
	if err != nil {
		t.Fatal(err)
	}
	cross, _, err := cpA.Join(ctx, cpB, tau)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				switch (w + round) % 3 {
				case 0:
					got, _, err := cpA.SelfJoin(ctx, tau, treejoin.WithWorkers(4))
					if err != nil {
						fail(err)
						return
					}
					samePairs(t, "concurrent selfA", got, selfA)
				case 1:
					got, _, err := cpB.SelfJoin(ctx, tau, treejoin.WithWorkers(4), treejoin.WithMethod(treejoin.MethodHistogram))
					if err != nil {
						fail(err)
						return
					}
					samePairs(t, "concurrent selfB", got, selfB)
				case 2:
					got, _, err := cpA.Join(ctx, cpB, tau, treejoin.WithWorkers(4))
					if err != nil {
						fail(err)
						return
					}
					samePairs(t, "concurrent cross", got, cross)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
