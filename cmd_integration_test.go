package treejoin_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"treejoin"
)

// End-to-end integration tests: build the real CLI binaries once and drive
// them through the pipelines the README advertises, cross-checking their
// output against the library.

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "treejoin-bins")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"datagen", "treejoin", "treesearch", "tedcalc"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

func runTool(t *testing.T, name string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), name), args...)
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	return out.String(), errb.String(), err
}

func itoa(n int) string { return strconv.Itoa(n) }

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("bad int %q: %v", s, err)
	}
	return n
}

// runToolStdin is runTool with the given stdin (for -watch pipelines).
func runToolStdin(t *testing.T, stdin, name string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), name), args...)
	cmd.Stdin = strings.NewReader(stdin)
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	return out.String(), errb.String(), err
}

// TestCLIWatch: the -watch mode's delta stream matches the library's
// incremental join replaying the same mutation script — adds emit the new
// pairs, removals emit the retractions, comments and unknown ids are
// tolerated.
func TestCLIWatch(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	script := []string{
		"{a{b}{c}}",
		"{a{b}{d}}",
		"# a comment, then a blank line",
		"",
		"{a{b}{c}{d}}",
		"-0",
		"-99", // unknown id: warned on stderr, no delta
		"{z}",
		"{a{b}{d}}",
	}
	stdout, stderr, err := runToolStdin(t, strings.Join(script, "\n")+"\n", "treejoin", "-watch", "-tau", "1", "-stats")
	if err != nil {
		t.Fatalf("treejoin -watch: %v\nstderr: %s", err, stderr)
	}

	// Library mirror of the same script.
	lt := treejoin.NewLabelTable()
	inc := treejoin.NewIncremental(1)
	var want []string
	emit := func(sign byte, ps []treejoin.Pair) {
		for _, p := range ps {
			want = append(want, string(sign)+"\t"+itoa(p.I)+"\t"+itoa(p.J)+"\t"+itoa(p.Dist))
		}
	}
	for _, line := range script {
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "-"):
			if inc.Remove(atoi(t, line[1:])) {
				emit('-', inc.Retracted())
			}
		default:
			emit('+', inc.Add(treejoin.MustParseBracket(line, lt)))
		}
	}
	got := nonEmptyLines(stdout)
	if len(got) != len(want) {
		t.Fatalf("watch emitted %d deltas, want %d:\n%s\nwant:\n%s",
			len(got), len(want), stdout, strings.Join(want, "\n"))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("delta %d = %q, want %q", i, got[i], want[i])
		}
	}
	if !strings.Contains(stderr, "no live tree with id 99") {
		t.Fatalf("unknown-id removal not reported: %s", stderr)
	}
	if !strings.Contains(stderr, "standing:") {
		t.Fatalf("-stats summary missing: %s", stderr)
	}
}

// TestCLIPipeline: datagen → treejoin agrees with the library on the same
// dataset, across text and binary formats and all methods.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	txt := filepath.Join(dir, "trees.txt")
	bin := filepath.Join(dir, "trees.tjds")

	out, _, err := runTool(t, "datagen", "-profile", "synthetic", "-n", "60", "-seed", "5")
	if err != nil {
		t.Fatalf("datagen: %v", err)
	}
	if err := os.WriteFile(txt, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runTool(t, "datagen", "-profile", "synthetic", "-n", "60", "-seed", "5", "-o", bin); err != nil {
		t.Fatalf("datagen binary: %v", err)
	}

	// Library ground truth over the same file.
	ts, err := treejoin.ReadBracketFile(txt, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := treejoin.SelfJoin(ts, 2)

	for _, input := range []string{txt, bin} {
		for _, method := range []string{"PRT", "STR", "SET", "HIST", "EUL", "PQG"} {
			stdout, _, err := runTool(t, "treejoin", "-input", input, "-tau", "2", "-method", method)
			if err != nil {
				t.Fatalf("treejoin %s %s: %v", input, method, err)
			}
			lines := nonEmptyLines(stdout)
			if len(lines) != len(want) {
				t.Fatalf("%s %s: %d pairs, want %d", filepath.Base(input), method, len(lines), len(want))
			}
		}
	}

	// Sharded + workers agree too.
	stdout, _, err := runTool(t, "treejoin", "-input", bin, "-tau", "2", "-shards", "3", "-workers", "2")
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	if got := nonEmptyLines(stdout); len(got) != len(want) {
		t.Fatalf("sharded: %d pairs, want %d", len(got), len(want))
	}

	// A prefilter chain leaves the result set unchanged and reports its
	// stages in -stats output.
	stdout, stderrOut, err := runTool(t, "treejoin", "-input", txt, "-tau", "2",
		"-prefilter", "HIST,PQG", "-stats")
	if err != nil {
		t.Fatalf("prefilter: %v", err)
	}
	if got := nonEmptyLines(stdout); len(got) != len(want) {
		t.Fatalf("prefilter: %d pairs, want %d", len(got), len(want))
	}
	if !strings.Contains(stderrOut, "stage HIST") || !strings.Contains(stderrOut, "stage PQG") {
		t.Fatalf("prefilter stats missing stage lines:\n%s", stderrOut)
	}

	// Cross join of the file against itself: every self-join pair appears
	// (plus the diagonal and mirrored pairs).
	stdout, _, err = runTool(t, "treejoin", "-input", txt, "-other", txt, "-tau", "2", "-method", "EUL")
	if err != nil {
		t.Fatalf("cross: %v", err)
	}
	crossLines := nonEmptyLines(stdout)
	ts2, err := treejoin.ReadBracketFile(txt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wantCross := 2*len(want) + len(ts2); len(crossLines) != wantCross {
		t.Fatalf("cross self×self: %d pairs, want %d", len(crossLines), wantCross)
	}

	// TopK prints exactly K lines when enough pairs exist.
	if len(want) >= 3 {
		stdout, _, err = runTool(t, "treejoin", "-input", txt, "-topk", "3")
		if err != nil {
			t.Fatalf("topk: %v", err)
		}
		if got := nonEmptyLines(stdout); len(got) != 3 {
			t.Fatalf("topk: %d lines", len(got))
		}
	}
}

// TestCLISearch: treesearch threshold and kNN modes against the library.
func TestCLISearch(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	txt := filepath.Join(dir, "trees.txt")
	data := "{a{b}{c}}\n{a{b}{c}{d}}\n{x{y{z}}}\n"
	if err := os.WriteFile(txt, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, _, err := runTool(t, "treesearch", "-input", txt, "-tau", "1", "-query", "{a{b}{c}}")
	if err != nil {
		t.Fatalf("treesearch: %v", err)
	}
	lines := nonEmptyLines(stdout)
	if len(lines) != 2 { // itself and the 4-node variant
		t.Fatalf("threshold search: %v", lines)
	}
	stdout, _, err = runTool(t, "treesearch", "-input", txt, "-k", "2", "-query", "{a{b}{c}}")
	if err != nil {
		t.Fatalf("knn: %v", err)
	}
	lines = nonEmptyLines(stdout)
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "0\t0\t0") {
		t.Fatalf("knn search: %v", lines)
	}

	// Newick dataset with a Newick query.
	nwk := filepath.Join(dir, "trees.nwk")
	if err := os.WriteFile(nwk, []byte("(B,C)A;\n(B,C,D)A;\n(Y)X;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, _, err = runTool(t, "treesearch", "-input", nwk, "-tau", "1", "-query", "(B,C)A;")
	if err != nil {
		t.Fatalf("newick search: %v", err)
	}
	if lines := nonEmptyLines(stdout); len(lines) != 2 {
		t.Fatalf("newick search: %v", lines)
	}
}

// TestCLITedcalc: distance, bounded exit codes, script and morph views.
func TestCLITedcalc(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	stdout, _, err := runTool(t, "tedcalc", "{a{b}{c}}", "{a{b}{d}}")
	if err != nil || strings.TrimSpace(stdout) != "1" {
		t.Fatalf("tedcalc: %q, %v", stdout, err)
	}
	// Bounded mode exits 1 when the distance exceeds the bound.
	_, _, err = runTool(t, "tedcalc", "-tau", "0", "{a{b}{c}}", "{a{b}{d}}")
	if err == nil {
		t.Fatal("tedcalc -tau 0 on distance-1 pair exited 0")
	}
	stdout, _, err = runTool(t, "tedcalc", "-script", "{a{b}{c}}", "{a{b}{d}}")
	if err != nil || !strings.Contains(stdout, "rename") {
		t.Fatalf("script: %q, %v", stdout, err)
	}
	stdout, _, err = runTool(t, "tedcalc", "-morph", "{a{b}{c}}", "{a{b}{d}}")
	if err != nil {
		t.Fatalf("morph: %v", err)
	}
	if lines := nonEmptyLines(stdout); len(lines) != 2 {
		t.Fatalf("morph steps: %v", lines)
	}
	stdout, _, err = runTool(t, "tedcalc", "-constrained", "{a{b{c}}}", "{a{c}}")
	if err != nil || !strings.Contains(stdout, "constrained 1") {
		t.Fatalf("constrained: %q, %v", stdout, err)
	}
}

// TestCLIScrubSalvage: the integrity tooling end to end through the command —
// a clean store scrubs clean; a segment corrupted on disk fails -scrub by
// name; -salvage quarantines it, keeps the other segment's trees, and leaves
// a store that scrubs clean and joins again.
func TestCLIScrubSalvage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "corpus")
	writeTrees := func(name string, trees []string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(strings.Join(trees, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Two ingest runs → two segments (each run's Close flushes its memtable).
	in1 := writeTrees("a.txt", []string{"{a{b}{c}}", "{a{b}{d}}", "{a{b}}"})
	in2 := writeTrees("b.txt", []string{"{x{y}{z}}", "{x{y}}"})
	for _, in := range []string{in1, in2} {
		if _, stderr, err := runTool(t, "treejoin", "-store", storeDir, "-input", in, "-tau", "1", "-quiet"); err != nil {
			t.Fatalf("ingest: %v\nstderr: %s", err, stderr)
		}
	}
	_, stderr, err := runTool(t, "treejoin", "-store", storeDir, "-scrub")
	if err != nil {
		t.Fatalf("scrub of a healthy store: %v\nstderr: %s", err, stderr)
	}
	if !strings.Contains(stderr, "0 fault(s)") {
		t.Fatalf("clean scrub summary missing: %s", stderr)
	}
	// Bit rot hits the first segment.
	segs, err := filepath.Glob(filepath.Join(storeDir, "seg-*.tjsg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want ≥2 segments, got %v (%v)", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr, err = runTool(t, "treejoin", "-store", storeDir, "-scrub"); err == nil {
		t.Fatalf("scrub missed the corruption: %s", stderr)
	}
	if !strings.Contains(stderr, "FAULT") || !strings.Contains(stderr, filepath.Base(segs[0])) {
		t.Fatalf("faulty segment not named: %s", stderr)
	}
	if _, stderr, err = runTool(t, "treejoin", "-store", storeDir, "-salvage"); err != nil {
		t.Fatalf("salvage: %v\nstderr: %s", err, stderr)
	}
	if !strings.Contains(stderr, "quarantined "+filepath.Base(segs[0])) {
		t.Fatalf("salvage report missing: %s", stderr)
	}
	if _, err := os.Stat(segs[0] + ".quarantine"); err != nil {
		t.Fatalf("quarantine file not preserved: %v", err)
	}
	// The salvaged store is healthy: clean scrub, working join over the
	// surviving trees.
	if _, stderr, err = runTool(t, "treejoin", "-store", storeDir, "-scrub"); err != nil {
		t.Fatalf("scrub after salvage: %v\nstderr: %s", err, stderr)
	}
	stdout, stderr, err := runTool(t, "treejoin", "-store", storeDir, "-tau", "1")
	if err != nil {
		t.Fatalf("join after salvage: %v\nstderr: %s", err, stderr)
	}
	if len(nonEmptyLines(stdout)) == 0 {
		t.Fatalf("surviving segment's near-pair lost: %q", stdout)
	}
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}
