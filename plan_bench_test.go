// BenchmarkPlanSweep quantifies the adaptive planner: on corpora with very
// different shapes (flat/wide Swissprot, deep/narrow Sentiment, parse-like
// Treebank), the best execution plan for the same query differs — sometimes
// the token index wins, sometimes the sorted loop with a reordered chain.
// The sweep measures the PQG+HIST signature join per profile × τ under each
// fixed plan and under WithAutoPlan. Fixed runs go first: their statistics
// feed the corpus's cost model, so the auto rows measure a converged planner
// (origin "observed") — the steady state of a reused corpus. The numbers
// land in BENCH_plan.json; the acceptance bar is auto within 5% of the best
// fixed plan everywhere and ≥1.3× over the worst fixed plan somewhere.
package treejoin_test

import (
	"context"
	"fmt"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

func BenchmarkPlanSweep(b *testing.B) {
	ctx := context.Background()
	profiles := []struct {
		name string
		ts   []*treejoin.Tree
	}{
		// Swissprot at 2000 trees: wide windows, heavy chains — the token
		// index amortises its build and wins. The two 500-tree profiles are
		// loop territory: the per-run index build never pays for itself.
		{"swissprot2k", synth.Swissprot(2000, 21)},
		{"sentiment", synth.Sentiment(500, 22)},
		{"treebank", synth.Treebank(500, 23)},
	}
	plans := []struct {
		name string
		opts []treejoin.Option
	}{
		{"fixed-index", []treejoin.Option{treejoin.WithFixedPlan(treejoin.PlanSpec{Source: treejoin.PlanSourceTokenIndex})}},
		{"fixed-loop", []treejoin.Option{treejoin.WithFixedPlan(treejoin.PlanSpec{Source: treejoin.PlanSourceSortedLoop})}},
		{"auto", nil},
	}
	for _, p := range profiles {
		cp, err := treejoin.NewCorpus(p.ts)
		if err != nil {
			b.Fatal(err)
		}
		for _, tau := range []int{1, 2, 4} {
			for _, pl := range plans {
				b.Run(fmt.Sprintf("%s/tau=%d/%s", p.name, tau, pl.name), func(b *testing.B) {
					opts := append([]treejoin.Option{
						treejoin.WithMethod(treejoin.MethodPQGram),
						treejoin.WithPrefilter(treejoin.PrefilterHistogram),
					}, pl.opts...)
					var st treejoin.Stats
					opts = append(opts, treejoin.WithStats(&st))
					for i := 0; i < b.N; i++ {
						if _, _, err := cp.SelfJoin(ctx, tau, opts...); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(st.Candidates), "cands")
				})
			}
		}
	}
}
