module treejoin

go 1.24
