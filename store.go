package treejoin

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"

	"treejoin/internal/baseline"
	"treejoin/internal/core"
	"treejoin/internal/engine"
	"treejoin/internal/engine/plan"
	"treejoin/internal/pqgram"
	"treejoin/internal/segstore"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// ErrNotPersistent reports a store-only operation (Compact, StoreStats with
// strict semantics) on a purely in-memory corpus.
var ErrNotPersistent = errors.New("treejoin: corpus has no backing store")

// ErrDegraded is wrapped by Add and Remove on a persistent corpus whose
// backing store hit an I/O failure (a full or faulty disk) it could not
// commit through. The corpus stays fully readable — queries, joins, and
// already-acknowledged trees are unaffected — and the store keeps retrying
// the failed commit in the background with capped exponential backoff;
// mutations succeed again once a retry lands (e.g. after space frees).
// Detect it with errors.Is(err, ErrDegraded); inspect StoreStats().Degraded
// and DegradedReason for the cause.
var ErrDegraded = segstore.ErrDegraded

// ScrubReport summarises a Corpus.Scrub pass over the backing store.
type ScrubReport = segstore.ScrubReport

// QuarantinedSegment describes one corrupt segment file that opening with
// WithSalvage set aside, including bounds on the tree ids it held.
type QuarantinedSegment = segstore.QuarantinedSegment

// StoreStats reports the state of a persistent corpus's backing segment
// store: live membership, segment and memtable occupancy, tombstones awaiting
// compaction, and lifecycle counters.
type StoreStats = segstore.Stats

// Open opens the persistent corpus stored at dir, creating an empty one if
// the directory holds no store yet. The returned corpus is fully dynamic —
// every Add appends to the store's write-ahead log before it is visible, every
// Remove tombstones, and a background compactor folds segments once enough
// entries die — and everything the store persisted comes back warm: canonical
// trees (duplicates share one in-memory instance), arena verification views,
// and the τ-independent token bags of every signature method a previous
// session paid for. A cold Open followed by a join therefore skips signature
// computation entirely for segment-resident trees.
//
// Trees added to a persistent corpus must be built against the corpus's own
// label table (Labels()); the table is part of the store and survives
// reopening. Close the corpus when done — Close flushes the memtable into a
// segment and releases the store; a crash instead of a Close loses nothing
// (the WAL replays), it only leaves the memtable trees to be re-staged.
//
// Options are corpus-level: WithIndexCacheCap as for NewCorpus, plus
// WithMemtableBudget and WithStoreNoSync for the store itself.
func Open(dir string, opts ...Option) (*Corpus, error) {
	c := buildConfig(opts)
	sopt := c.storeOptions()
	var s *segstore.Store
	var err error
	if _, statErr := os.Stat(filepath.Join(dir, "MANIFEST")); statErr == nil {
		s, err = segstore.Open(dir, sopt)
	} else {
		s, err = segstore.Create(dir, nil, sopt)
	}
	if err != nil {
		return nil, fmt.Errorf("treejoin: open store: %w", err)
	}
	cp, err := corpusFromStore(s, c)
	if err != nil {
		s.Close()
		return nil, err
	}
	return cp, nil
}

// corpusFromStore builds a live Corpus over an opened store, seeding the
// signature cache with every artifact the segments carry.
func corpusFromStore(s *segstore.Store, c config) (*Corpus, error) {
	live := s.Live()
	st := &corpusState{
		ts:      make([]*Tree, 0, len(live)),
		ids:     make([]int, 0, len(live)),
		pos:     make(map[int]int, len(live)),
		nextID:  int(s.NextID()),
		lt:      s.Labels(),
		members: make(map[*Tree]struct{}, len(live)),
	}
	cache := engine.NewCache()
	for _, lv := range live {
		id := int(lv.ID)
		st.pos[id] = len(st.ts)
		st.ts = append(st.ts, lv.Tree)
		st.ids = append(st.ids, id)
		st.members[lv.Tree] = struct{}{}
		// Duplicate-content entries alias one block; seeding is idempotent
		// (the cache keys by tree pointer).
		if lv.View != nil {
			engine.SeedView(cache, lv.Tree, lv.View)
		}
		for kind, bag := range lv.Bags {
			engine.SeedBag(cache, kind, lv.Tree, bag)
		}
	}
	cp := &Corpus{
		cache:      cache,
		indexCap:   c.indexCap,
		searchers:  make(map[searcherKey]*core.KNN),
		store:      s,
		persistent: true,
		planner:    plan.New(),
	}
	cp.state.Store(st)
	s.SetArtifacts(corpusArtifacts{cache: cache})
	return cp, nil
}

// SaveTo writes the corpus's current live membership — trees, arena views,
// and every token bag already cached — as a fresh persistent store at dir
// (which must not already hold one). The corpus itself is untouched and stays
// in-memory; Open(dir) later restores an equivalent corpus. Stable ids are
// preserved, so a reopened corpus addresses the same trees by the same ids.
func (cp *Corpus) SaveTo(dir string) error {
	st := cp.state.Load()
	lt := st.lt
	if lt == nil {
		lt = tree.NewLabelTable() // an empty corpus persists as an empty store
	}
	s, err := segstore.Create(dir, lt, segstore.Options{NoBackground: true})
	if err != nil {
		return fmt.Errorf("treejoin: save store: %w", err)
	}
	s.SetArtifacts(corpusArtifacts{cache: cp.cache})
	ids := make([]int64, len(st.ids))
	for i, id := range st.ids {
		ids[i] = int64(id)
	}
	ts := slices.Clone(st.ts)
	if err := s.Bulk(ids, ts, int64(st.nextID)); err != nil {
		s.Close()
		return fmt.Errorf("treejoin: save store: %w", err)
	}
	if err := s.Close(); err != nil {
		return fmt.Errorf("treejoin: save store: %w", err)
	}
	return nil
}

// Labels returns the corpus's label table: the table every tree added to it
// must be built against. For a persistent corpus the table belongs to the
// store and survives reopening; for an in-memory corpus it is the shared
// table of the constructor's trees (nil until the first tree arrives).
func (cp *Corpus) Labels() *LabelTable { return cp.state.Load().lt }

// Close releases the corpus's backing store, flushing the memtable into a
// final segment first, and waits for any background compaction to finish.
// Further mutations fail; queries over the already-loaded state keep working.
// Closing an in-memory corpus (or a Snapshot view) is a no-op.
func (cp *Corpus) Close() error {
	if cp.store == nil || cp.frozen {
		return nil
	}
	cp.writeMu.Lock()
	defer cp.writeMu.Unlock()
	return cp.store.Close()
}

// Compact forces a full merge of the backing store's segments, dropping every
// tombstoned entry; the no-live-posting-dropped invariant means a compacted
// store answers every query exactly as before. Returns ErrNotPersistent for
// an in-memory corpus. Routine compaction is automatic (the background
// compactor runs once dead entries outnumber live ones); Compact is for
// reclaiming space on demand.
func (cp *Corpus) Compact() error {
	if cp.store == nil || cp.frozen {
		return ErrNotPersistent
	}
	return cp.store.Compact()
}

// StoreStats returns the backing store's statistics; ok is false (and the
// stats zero) for an in-memory corpus.
func (cp *Corpus) StoreStats() (stats StoreStats, ok bool) {
	if cp.store == nil {
		return StoreStats{}, false
	}
	return cp.store.Stats(), true
}

// WithMemtableBudget bounds how many trees a persistent corpus stages in its
// WAL-backed memtable before flushing them into an immutable segment; n < 1
// keeps the default (512). Smaller budgets bound recovery-replay time and
// memory at the cost of more, smaller segments. Open-time option; no effect
// on queries or on in-memory corpora.
func WithMemtableBudget(n int) Option { return func(c *config) { c.memBudget = n } }

// Scrub re-reads and re-verifies every committed file of the backing store:
// the manifest decodes, each segment passes its bulk CRC and structural
// checks, every block re-hashes to its stored content address, and entry
// counts match the manifest. It is the deep check for corruption that crept
// in after the open (bit rot, external truncation, a misbehaving disk) —
// the open path alone would only notice on the next restart. Mutations block
// for the duration; queries over the in-memory state do not. The error is
// non-nil iff any fault was found; the report carries the detail either way.
// Returns ErrNotPersistent for an in-memory corpus.
func (cp *Corpus) Scrub() (ScrubReport, error) {
	if cp.store == nil || cp.frozen {
		return ScrubReport{}, ErrNotPersistent
	}
	return cp.store.Scrub()
}

// SalvageReport returns what an Open with WithSalvage quarantined, empty for
// a clean open, a store opened without WithSalvage, or an in-memory corpus.
func (cp *Corpus) SalvageReport() []QuarantinedSegment {
	if cp.store == nil {
		return nil
	}
	return cp.store.SalvageReport()
}

// WithSalvage makes Open quarantine segment files that fail their integrity
// checks — renamed to *.quarantine and dropped from the manifest — and open
// the surviving corpus instead of refusing entirely. Quarantine never drops
// a readable live tree: only whole segments that failed verification are set
// aside, their bytes preserved under the new name for offline forensics.
// Inspect the loss with SalvageReport. Open-time option; without it a
// corrupt segment fails Open with the detailed decode error.
func WithSalvage() Option { return func(c *config) { c.salvage = true } }

// WithStoreNoSync disables per-operation fsync on the backing store's WAL and
// per-commit fsync on its manifests and segments. Throughput for bulk loads
// improves dramatically; the crash guarantee weakens from "every acknowledged
// mutation survives" to "the store recovers to some consistent recent state".
// Open-time option.
func WithStoreNoSync() Option { return func(c *config) { c.storeNoSync = true } }

// storeOptions maps the corpus-level config to store options.
func (c config) storeOptions() segstore.Options {
	return segstore.Options{
		MemtableBudget: c.memBudget,
		NoSync:         c.storeNoSync,
		Salvage:        c.salvage,
	}
}

// corpusArtifacts lets the store serialise artifacts out of the corpus cache
// at flush time (and build the missing ones) instead of recomputing from
// scratch: arena views via the shared arena builder, token bags via the
// persistence hooks keyed by tokenizer kind.
type corpusArtifacts struct {
	cache *engine.Cache
}

func (a corpusArtifacts) Views(ts []*tree.Tree) []*ted.TreeView {
	return engine.ArenaFor(a.cache, ts)
}

func (a corpusArtifacts) BagKinds() []string {
	kinds := engine.BagKinds(a.cache)
	// Always persist the two kinds the built-in methods draw on, so a corpus
	// saved before its first join still reopens warm for every method.
	for _, tz := range builtinTokenizers() {
		kind := "tokidx/" + tz.Name()
		if !slices.Contains(kinds, kind) {
			kinds = append(kinds, kind)
		}
	}
	slices.Sort(kinds)
	return kinds
}

func (a corpusArtifacts) Bags(kind string, ts []*tree.Tree) ([][]engine.BagEntry, bool) {
	return engine.ExportBags(a.cache, kind, tokenizerFor(kind), ts)
}

// builtinTokenizers lists the tokenisations the built-in join methods use:
// Euler q-grams (STR, EUL, PQG) and label histograms (SET, HIST).
func builtinTokenizers() []engine.Tokenizer {
	return []engine.Tokenizer{pqgram.Tokenizer(0), baseline.LabelTokenizer()}
}

// tokenizerFor resolves a persisted bag kind back to its tokenizer, or nil
// for kinds no built-in method produces (those export cache-only: whatever a
// custom integration cached persists, but nothing is built for it).
func tokenizerFor(kind string) engine.Tokenizer {
	for _, tz := range builtinTokenizers() {
		if kind == "tokidx/"+tz.Name() {
			return tz
		}
	}
	return nil
}
