// Arena-view maintenance under mutation: the struct-of-arrays verification
// views a corpus caches must stay bit-identical to a fresh flattening of the
// live trees through any Add/Remove sequence — the arena leg of the mutation
// oracle. This file is an internal test (package treejoin) because the
// invariant lives below the public API: it inspects the corpus's artifact
// cache directly.
package treejoin

import (
	"context"
	"slices"
	"testing"

	"treejoin/internal/engine"
	"treejoin/internal/synth"
	"treejoin/internal/ted"
)

// cachedView fetches the arena view the corpus holds for t, if any.
func cachedView(cp *Corpus, t *Tree) (*ted.TreeView, bool) {
	v, ok := cp.cache.Lookup(engine.ArenaKey, t)
	if !ok {
		return nil, false
	}
	return v.(*ted.TreeView), true
}

// requireViewEqual asserts a cached view is field-for-field identical to a
// freshly built one: same arrays of both decompositions, same keyroot
// orders, same structural columns, same strategy costs.
func requireViewEqual(t *testing.T, step string, got, want *ted.TreeView) {
	t.Helper()
	check := func(name string, g, w []int32) {
		t.Helper()
		if !slices.Equal(g, w) {
			t.Fatalf("%s: cached arena %s = %v, fresh rebuild %v", step, name, g, w)
		}
	}
	check("Labels", got.Labels, want.Labels)
	check("Lml", got.Lml, want.Lml)
	check("RLabels", got.RLabels, want.RLabels)
	check("Rml", got.Rml, want.Rml)
	check("Keyroots", got.Keyroots, want.Keyroots)
	check("KrByLml", got.KrByLml, want.KrByLml)
	check("RKeyroots", got.RKeyroots, want.RKeyroots)
	check("RKrByLml", got.RKrByLml, want.RKrByLml)
	check("Depth", got.Depth, want.Depth)
	check("Parent", got.Parent, want.Parent)
	check("RParent", got.RParent, want.RParent)
	check("SubtreeSize", got.SubtreeSize, want.SubtreeSize)
	check("SortedLabels", got.SortedLabels, want.SortedLabels)
	if got.CostL != want.CostL || got.CostR != want.CostR {
		t.Fatalf("%s: cached costs (%d,%d), fresh rebuild (%d,%d)",
			step, got.CostL, got.CostR, want.CostL, want.CostR)
	}
}

// checkArenaOracle asserts every live tree's cached arena view (when the
// corpus holds one) matches a fresh BuildViews of the live collection, and
// that no removed tree left a view behind.
func checkArenaOracle(t *testing.T, step string, cp *Corpus, removed []*Tree) {
	t.Helper()
	live := cp.Trees()
	fresh := ted.BuildViews(live)
	for i, tr := range live {
		v, ok := cachedView(cp, tr)
		if !ok {
			continue // never flattened: nothing to keep consistent
		}
		requireViewEqual(t, step, v, fresh[i])
	}
	for _, tr := range removed {
		if _, ok := cachedView(cp, tr); ok {
			t.Fatalf("%s: removed tree still has a cached arena view", step)
		}
	}
}

// distinctTrees counts distinct tree pointers: the synthetic cluster
// generator reuses the identical tree object for exact duplicates, and the
// pointer-keyed cache (pointer identity = value identity) stores one view per
// distinct tree, not per position.
func distinctTrees(ts []*Tree) int {
	m := make(map[*Tree]struct{}, len(ts))
	for _, t := range ts {
		m[t] = struct{}{}
	}
	return len(m)
}

// unaliasedPositions returns positions whose tree pointer occurs exactly once
// in the corpus — removal targets whose eviction cannot touch another live
// position's artifacts.
func unaliasedPositions(cp *Corpus) []int {
	live := cp.Trees()
	count := make(map[*Tree]int, len(live))
	for _, t := range live {
		count[t]++
	}
	var out []int
	for i, t := range live {
		if count[t] == 1 {
			out = append(out, i)
		}
	}
	return out
}

// TestArenaMutationOracle drives a corpus through joins and mutations,
// holding the arena invariant at every step: joins populate the views, Add
// pre-warms exactly the new batch, Remove evicts exactly the dead trees, and
// every surviving view equals a fresh rebuild.
func TestArenaMutationOracle(t *testing.T) {
	ctx := context.Background()
	pool := synth.Generate(synth.SyntheticParams(40, 3, 5, 20, 40, 61))
	cp, err := NewCorpus(pool[:24])
	if err != nil {
		t.Fatal(err)
	}

	// Before any join the arena kind is empty, so Add must not speculate.
	if _, err := cp.Add(pool[24]); err != nil {
		t.Fatal(err)
	}
	if got := cp.cache.KindEntries(engine.ArenaKey); got != 0 {
		t.Fatalf("cold corpus pre-warmed %d arena views", got)
	}

	// A join flattens the whole live collection.
	if _, _, err := cp.SelfJoin(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if got, want := cp.cache.KindEntries(engine.ArenaKey), distinctTrees(cp.Trees()); got != want {
		t.Fatalf("after join: %d arena views, %d distinct live trees", got, want)
	}
	checkArenaOracle(t, "after join", cp, nil)

	// Add on a warm corpus pre-warms the batch: the kind tracks membership
	// without another join.
	if _, err := cp.Add(pool[25:30]...); err != nil {
		t.Fatal(err)
	}
	if got, want := cp.cache.KindEntries(engine.ArenaKey), distinctTrees(cp.Trees()); got != want {
		t.Fatalf("after warm Add: %d arena views, %d distinct live trees", got, want)
	}
	checkArenaOracle(t, "after warm Add", cp, nil)

	// Remove evicts the dead trees' views and nothing else. The targets are
	// unaliased positions, so the eviction count is exact.
	solo := unaliasedPositions(cp)
	if len(solo) < 2 {
		t.Fatal("fixture has no unaliased trees to remove")
	}
	p1, p2 := solo[0], solo[1]
	dead := []*Tree{cp.Tree(p1), cp.Tree(p2)}
	if n := cp.Remove(cp.ID(p1), cp.ID(p2)); n != 2 {
		t.Fatalf("Remove removed %d trees, want 2", n)
	}
	if got, want := cp.cache.KindEntries(engine.ArenaKey), distinctTrees(cp.Trees()); got != want {
		t.Fatalf("after Remove: %d arena views, %d distinct live trees", got, want)
	}
	checkArenaOracle(t, "after Remove", cp, dead)

	// Churn: interleaved mutations and a join keep the invariant.
	if _, err := cp.Add(pool[30:34]...); err != nil {
		t.Fatal(err)
	}
	cp.Remove(cp.ID(0), cp.ID(5))
	if _, _, err := cp.SelfJoin(ctx, 1); err != nil {
		t.Fatal(err)
	}
	checkArenaOracle(t, "after churn", cp, nil)

	// The maintained views decide joins identically to a fresh corpus (the
	// result-level half; the field-level half is checkArenaOracle).
	fresh, err := NewCorpus(cp.Trees())
	if err != nil {
		t.Fatal(err)
	}
	for _, tau := range []int{0, 2, 4} {
		got, _, err := cp.SelfJoin(ctx, tau)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := fresh.SelfJoin(ctx, tau)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("τ=%d: mutated corpus join diverged from fresh corpus", tau)
		}
	}
}
