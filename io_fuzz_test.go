// Fuzzers for the public parsers, promoted from the internal packages'
// fuzz coverage (internal/tree fuzzes the raw parsers; these exercise the
// exported entry points, including the line-oriented reader with its
// comment/blank handling and error positions). Invariants: arbitrary input
// must never panic, and any input a parser accepts must round-trip — format
// then re-read yields an equal collection. Seeds mirror the examples/
// programs' inputs, so the corpus starts from realistic documents.
package treejoin_test

import (
	"bytes"
	"strings"
	"testing"

	"treejoin"
	"treejoin/internal/tree"
)

// FuzzReadBracketLines: the line reader must never panic, and every
// collection it accepts must survive WriteBracketLines → ReadBracketLines
// unchanged (tree for tree, shape for shape).
func FuzzReadBracketLines(f *testing.F) {
	f.Add("{a{b}{c{d}}}\n{b}\n")
	f.Add("# catalog, one record per line\n{album{title{Blue}}{artist{Joni Mitchell}}{year{1971}}{format{LP}}}\n\n{album{title{Blue Train}}{artist{John Coltrane}}{year{1957}}{format{LP}}}\n")
	f.Add("{S{NP{DT}{NN}}{VP{VBD}{PP{IN}{NP{DT}{NN}}}}{.}}\n")
	f.Add("  # only a comment\n")
	f.Add("{a")
	f.Add("}{")
	f.Add("{item{name{espresso machine}}{brand{Gaggia}}{price{449}}}")
	f.Fuzz(func(t *testing.T, data string) {
		ts, err := treejoin.ReadBracketLines(strings.NewReader(data), nil)
		if err != nil {
			return
		}
		for i, tr := range ts {
			if err := tr.Validate(); err != nil {
				t.Fatalf("accepted invalid tree %d: %v", i, err)
			}
		}
		var buf bytes.Buffer
		if err := treejoin.WriteBracketLines(&buf, ts); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := treejoin.ReadBracketLines(&buf, nil)
		if err != nil {
			t.Fatalf("written form does not re-read: %v", err)
		}
		if len(back) != len(ts) {
			t.Fatalf("round trip changed collection size: %d -> %d", len(ts), len(back))
		}
		for i := range ts {
			if treejoin.FormatBracket(ts[i]) != treejoin.FormatBracket(back[i]) {
				t.Fatalf("round trip changed tree %d", i)
			}
		}
	})
}

// FuzzParseNewick: the public Newick parser must never panic, and accepted
// input must round-trip through FormatNewick with identical structure.
func FuzzParseNewick(f *testing.F) {
	f.Add("(A,B,(C,D)E)F;")
	f.Add("((human,chimp)homininae,(gorilla)gorillini,((orangutan)ponginae,gibbon)hylobatidae)hominoidea;")
	f.Add("(((human,chimp)homininae,(gorilla)gorillini)hominidae,(macaque,baboon)cercopithecidae)catarrhini;")
	f.Add("('quoted name',B:1.5)root;")
	f.Add("(a[comment],b);")
	f.Add("();")
	f.Add(";")
	f.Add("(,);")
	f.Fuzz(func(t *testing.T, data string) {
		lt := treejoin.NewLabelTable()
		tr, err := treejoin.ParseNewick(data, lt)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid tree: %v", err)
		}
		out := treejoin.FormatNewick(tr)
		back, err := treejoin.ParseNewick(out, lt)
		if err != nil {
			t.Fatalf("formatted form %q does not re-parse: %v", out, err)
		}
		if !tree.Equal(tr, back) {
			t.Fatalf("round trip changed the tree: %q", out)
		}
	})
}

// FuzzParseDotBracket: the RNA dot-bracket parser must never panic, must
// reject structure/sequence length mismatches, and every accepted structure
// must encode to a tree whose size matches the number of positions plus
// pairs plus the virtual root.
func FuzzParseDotBracket(f *testing.F) {
	f.Add("((((.(((....))).(((....))).))))...", "")
	f.Add("(((..)))", "GGGAACCC")
	f.Add("(((....)))", "GCGCAAAAGCGC")
	f.Add("...", "AGU")
	f.Add("", "")
	f.Add("((.)", "")
	f.Add("))((", "AAAA")
	f.Fuzz(func(t *testing.T, structure, seq string) {
		lt := treejoin.NewLabelTable()
		tr, err := treejoin.ParseDotBracket(structure, seq, lt)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid tree: %v", err)
		}
		if seq != "" && len(seq) != len(structure) {
			t.Fatalf("accepted structure/sequence length mismatch: %d vs %d", len(structure), len(seq))
		}
		// One node per base pair, one per unpaired position, plus the root:
		// pairs + (len - 2*pairs) + 1.
		pairs := strings.Count(structure, "(")
		want := pairs + (len(structure) - 2*pairs) + 1
		if tr.Size() != want {
			t.Fatalf("structure %q: tree size %d, want %d", structure, tr.Size(), want)
		}
		// Accepted input re-parses identically without a sequence only when
		// one was absent; with a sequence, shape is unchanged.
		bare, err := treejoin.ParseDotBracket(structure, "", lt)
		if err != nil {
			t.Fatalf("accepted structure rejected without sequence: %v", err)
		}
		if bare.Size() != tr.Size() {
			t.Fatalf("sequence changed tree shape: %d vs %d", bare.Size(), tr.Size())
		}
	})
}
