package treejoin_test

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"treejoin"
)

// BenchmarkColdOpen — time to first results on a cold start, the segment
// store's reason to exist. Both variants start from bytes on disk and end
// with the same SelfJoin answer over the shared 2000-tree bench corpus:
//
//	store:   treejoin.Open on a saved store (mmap'd segments seed canonical
//	         trees, arena views, and every token bag), then the join.
//	rebuild: parse the same trees from their serialised text, NewCorpus,
//	         then the join — every signature recomputed from scratch.
//
// The ratio is the cold-start speedup segments buy; baseline numbers are
// recorded in BENCH_segstore.json.
func BenchmarkColdOpen(b *testing.B) {
	ctx := context.Background()
	ts := engineBenchCorpus()

	// Serialise both starting points once, outside the timer.
	texts := make([]string, len(ts))
	for i, t := range ts {
		texts[i] = treejoin.FormatBracket(t)
	}
	dir := filepath.Join(b.TempDir(), "store")
	seed := mustBenchCorpus(b, ts)
	// Warm the artifacts SaveTo persists (views and token bags are built at
	// save time regardless; a prior join also covers the filter profiles the
	// store does not persist — the rebuild variant recomputes those too, so
	// the comparison stays join-for-join fair).
	if _, _, err := seed.SelfJoin(ctx, 1, treejoin.WithMethod(treejoin.MethodPQGram)); err != nil {
		b.Fatal(err)
	}
	if err := seed.SaveTo(dir); err != nil {
		b.Fatal(err)
	}

	// Cold Open alone, for regression tracking: on return every persisted
	// artifact (canonical trees, arena views, token bags) is live, so this is
	// the full cost of reaching warm state from bytes on disk. (There is no
	// rebuild twin at this level — NewCorpus is lazy and computes nothing, so
	// a bare parse+NewCorpus timing would compare cold state against warm.)
	b.Run("Open", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cp, err := treejoin.Open(dir, treejoin.WithStoreNoSync())
			if err != nil {
				b.Fatal(err)
			}
			cp.Close()
		}
	})

	for _, cfg := range []struct {
		name string
		m    treejoin.Method
		tau  int
	}{
		{"PQG/tau=1", treejoin.MethodPQGram, 1},
		{"PRT/tau=2", treejoin.MethodPartSJ, 2},
	} {
		b.Run(fmt.Sprintf("%s/store", cfg.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cp, err := treejoin.Open(dir, treejoin.WithStoreNoSync())
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := cp.SelfJoin(ctx, cfg.tau, treejoin.WithMethod(cfg.m)); err != nil {
					b.Fatal(err)
				}
				cp.Close()
			}
		})
		b.Run(fmt.Sprintf("%s/rebuild", cfg.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lt := treejoin.NewLabelTable()
				parsed := make([]*treejoin.Tree, len(texts))
				for j, s := range texts {
					parsed[j] = treejoin.MustParseBracket(s, lt)
				}
				cp := mustBenchCorpus(b, parsed)
				if _, _, err := cp.SelfJoin(ctx, cfg.tau, treejoin.WithMethod(cfg.m)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func mustBenchCorpus(b *testing.B, ts []*treejoin.Tree) *treejoin.Corpus {
	b.Helper()
	cp, err := treejoin.NewCorpus(ts)
	if err != nil {
		b.Fatal(err)
	}
	return cp
}
