// Command tedcalc computes the exact tree edit distance between two trees
// given in bracket notation, with optional diff views.
//
// Usage:
//
//	tedcalc '{a{b}{c}}' '{a{b}{d}}'
//	tedcalc -tau 3 '{a{b}{c}}' '{a{b}{d}}'    # bounded check
//	tedcalc -constrained '{a{b}{c}}' '{a{b}{d}}'
//	tedcalc -script '{a{b}{c}}' '{a{b}{d}}'   # optimal edit script
//	tedcalc -morph '{a{b}{c}}' '{a{b}{d}}'    # one tree per edit step
//
// With -tau the program prints the exact distance when it is within the
// bound, or ">tau" otherwise, and exits 0/1 accordingly — handy in shell
// pipelines. -constrained prints the LCA-preserving distance next to the
// unrestricted TED.
package main

import (
	"flag"
	"fmt"
	"os"

	"treejoin"
)

func main() {
	var (
		tau         = flag.Int("tau", -1, "optional bound: report only whether TED ≤ tau")
		constrained = flag.Bool("constrained", false, "also print the constrained (LCA-preserving) distance")
		script      = flag.Bool("script", false, "print an optimal edit script")
		morph       = flag.Bool("morph", false, "print the morph: one tree per edit step")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tedcalc [-tau N] [-constrained] [-script] [-morph] '{tree1}' '{tree2}'")
		os.Exit(2)
	}
	lt := treejoin.NewLabelTable()
	t1, err := treejoin.ParseBracket(flag.Arg(0), lt)
	if err != nil {
		fail(err)
	}
	t2, err := treejoin.ParseBracket(flag.Arg(1), lt)
	if err != nil {
		fail(err)
	}
	switch {
	case *script:
		d, ops := treejoin.EditScript(t1, t2)
		fmt.Printf("distance %d\n", d)
		fmt.Print(treejoin.FormatEditScript(t1, t2, ops))
	case *morph:
		steps, err := treejoin.Transform(t1, t2)
		if err != nil {
			fail(err)
		}
		for i, s := range steps {
			fmt.Printf("%d: %s\n", i, treejoin.FormatBracket(s))
		}
	case *constrained:
		fmt.Printf("ted %d\nconstrained %d\n",
			treejoin.Distance(t1, t2), treejoin.ConstrainedDistance(t1, t2))
	case *tau >= 0:
		if d, ok := treejoin.DistanceWithin(t1, t2, *tau); ok {
			fmt.Println(d)
			return
		}
		fmt.Printf(">%d\n", *tau)
		os.Exit(1)
	default:
		fmt.Println(treejoin.Distance(t1, t2))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tedcalc: %v\n", err)
	os.Exit(1)
}
