// Command datagen writes a synthetic tree dataset (one bracket-notation tree
// per line) using the generators of internal/synth: the paper's Zaki-style
// synthetic workload, or a shape-matched stand-in for one of its three real
// collections.
//
// Usage:
//
//	datagen -profile synthetic -n 10000 -seed 1 > trees.txt
//	datagen -profile swissprot|treebank|sentiment -n 1000 > trees.txt
//	datagen -profile custom -n 1000 -fanout 3 -depth 5 -labels 20 -size 80
//	datagen -profile synthetic -n 100000 -o trees.tjds -format binary
//
// With -format binary (implied by an -o path ending in .tjds) the collection
// is written in the compact checksummed binary dataset format, which the
// other tools load without re-parsing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"treejoin"
	"treejoin/internal/synth"
)

// write emits ts to path (stdout when empty) in bracket text or binary form.
func write(ts []*treejoin.Tree, path string, binary bool) error {
	var w *os.File
	if path == "" {
		w = os.Stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if binary {
		var lt *treejoin.LabelTable
		if len(ts) > 0 {
			lt = ts[0].Labels
		} else {
			lt = treejoin.NewLabelTable()
		}
		return treejoin.WriteDataset(w, lt, ts)
	}
	return treejoin.WriteBracketLines(w, ts)
}

func main() {
	var (
		profile = flag.String("profile", "synthetic", "synthetic|swissprot|treebank|sentiment|custom")
		n       = flag.Int("n", 1000, "number of trees")
		seed    = flag.Int64("seed", 1, "generator seed")
		fanout  = flag.Int("fanout", 3, "custom: maximum fanout")
		depth   = flag.Int("depth", 5, "custom: maximum depth")
		labels  = flag.Int("labels", 20, "custom: label alphabet size")
		size    = flag.Int("size", 80, "custom: average tree size")
		cluster = flag.Int("cluster", 4, "custom: trees per near-duplicate cluster")
		decay   = flag.Float64("decay", 0.05, "custom: per-node edit probability Dz")
		stats   = flag.Bool("stats", false, "print collection statistics to stderr")
		out     = flag.String("o", "", "output file (default stdout)")
		format  = flag.String("format", "auto", "output format: bracket or binary (auto: by -o extension)")
	)
	flag.Parse()

	var ts []*treejoin.Tree
	switch *profile {
	case "synthetic":
		ts = synth.Synthetic(*n, *seed)
	case "swissprot":
		ts = synth.Swissprot(*n, *seed)
	case "treebank":
		ts = synth.Treebank(*n, *seed)
	case "sentiment":
		ts = synth.Sentiment(*n, *seed)
	case "custom":
		p := synth.SyntheticParams(*n, *fanout, *depth, *labels, *size, *seed)
		p.Cluster = *cluster
		p.Decay = *decay
		ts = synth.Generate(p)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown profile %q\n", *profile)
		flag.Usage()
		os.Exit(2)
	}

	binary := *format == "binary" || (*format == "auto" && strings.HasSuffix(*out, ".tjds"))
	if err := write(ts, *out, binary); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		s := treejoin.Measure(ts)
		fmt.Fprintf(os.Stderr, "trees=%d avgSize=%.2f labels=%d avgDepth=%.2f maxDepth=%d maxFanout=%d\n",
			s.Trees, s.AvgSize, s.Labels, s.AvgDepth, s.MaxDepth, s.MaxFanout)
	}
}
