// Command loadgen drives a running treejoind with concurrent mixed
// read/mutate traffic and reports latency percentiles and throughput. It is
// the serving benchmark behind BENCH_serve.json and the CI serve-smoke job:
// N clients issue a weighted mix of search, knn, selfjoin, topk, add, and
// remove requests for the configured duration, every 5xx or transport error
// counts as a failure, and the run exits non-zero if any occurred (or if
// -require-results saw no results at all, which would mean the benchmark
// exercised nothing).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"treejoin"
	"treejoin/internal/synth"
)

type sample struct {
	op string
	d  time.Duration
}

type result struct {
	samples  []sample
	statuses map[int]int64
	errors   []string
	results  int64 // result rows observed (matches, pairs)
	added    []int // ids this client added and may later remove
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8765", "treejoind base URL")
		clients  = flag.Int("clients", 8, "concurrent clients")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		tau      = flag.Int("tau", 2, "threshold for search/selfjoin traffic")
		out      = flag.String("out", "", "write the JSON report here (default stdout only)")
		require  = flag.Bool("require-results", false, "fail unless some query returned results")
		seed     = flag.Int64("seed", 1, "traffic seed; match the dataset's -seed so queries land near corpus trees")
	)
	flag.Parse()

	// Wait for the server to come up (CI races the boot).
	hc := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := hc.Get(*addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(deadline) {
			log.Fatalf("loadgen: server at %s never became healthy: %v", *addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The query/add pool shares the dataset generator and seed: queries are
	// then corpus members or their near-duplicate cluster mates, so KNN's
	// expanding search terminates at small τ instead of sweeping to the size
	// cap against an unrelated tree.
	pool := synth.Synthetic(128, *seed)
	results := make([]*result, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	stop := start.Add(*duration)
	for c := 0; c < *clients; c++ {
		results[c] = &result{statuses: make(map[int]int64)}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			runClient(hc, *addr, *tau, pool, rand.New(rand.NewSource(*seed+int64(c))), stop, results[c])
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report, failures := buildReport(results, elapsed, *clients, *tau)
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("loadgen: writing %s: %v", *out, err)
		}
	}
	if failures > 0 {
		log.Fatalf("loadgen: %d failed requests (5xx or transport errors)", failures)
	}
	if *require && report.Results == 0 {
		log.Fatalf("loadgen: -require-results set but no query returned any results")
	}
}

// runClient issues the weighted op mix until the stop time.
func runClient(hc *http.Client, addr string, tau int, pool []*treejoin.Tree, rng *rand.Rand, stop time.Time, res *result) {
	for time.Now().Before(stop) {
		t := pool[rng.Intn(len(pool))]
		spec := treejoin.FormatBracket(t)
		var op string
		var status int
		var rows int64
		var lat time.Duration
		var err error
		switch p := rng.Intn(100); {
		case p < 40:
			op = "search"
			status, rows, lat, err = postQuery(hc, addr+"/search", map[string]any{"query": spec, "tau": tau}, "matches")
		case p < 65:
			op = "knn"
			status, rows, lat, err = postQuery(hc, addr+"/knn", map[string]any{"query": spec, "k": 3}, "matches")
		case p < 75:
			op = "selfjoin"
			status, rows, lat, err = getNDJSON(hc, fmt.Sprintf("%s/selfjoin?tau=%d", addr, tau))
		case p < 80:
			op = "topk"
			status, rows, lat, err = postQuery(hc, addr+"/topk", map[string]any{"k": 5}, "pairs")
		case p < 95:
			op = "add"
			var ids []int
			status, ids, lat, err = postAdd(hc, addr+"/add", []string{spec})
			res.added = append(res.added, ids...)
			rows = int64(len(ids))
		default:
			op = "remove"
			if len(res.added) == 0 {
				continue
			}
			id := res.added[0]
			res.added = res.added[1:]
			status, _, lat, err = postQuery(hc, addr+"/remove", map[string]any{"ids": []int{id}}, "")
		}
		if err != nil {
			res.errors = append(res.errors, fmt.Sprintf("%s: %v", op, err))
			continue
		}
		res.statuses[status]++
		res.results += rows
		res.samples = append(res.samples, sample{op: op, d: lat})
	}
}

func postQuery(hc *http.Client, url string, body map[string]any, listKey string) (int, int64, time.Duration, error) {
	blob, err := json.Marshal(body)
	if err != nil {
		return 0, 0, 0, err
	}
	start := time.Now()
	resp, err := hc.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, 0, time.Since(start), err
	}
	defer resp.Body.Close()
	var rows int64
	if listKey != "" && resp.StatusCode == 200 {
		var parsed map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&parsed); err == nil {
			var list []json.RawMessage
			if json.Unmarshal(parsed[listKey], &list) == nil {
				rows = int64(len(list))
			}
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, rows, time.Since(start), nil
}

func postAdd(hc *http.Client, url string, trees []string) (int, []int, time.Duration, error) {
	blob, _ := json.Marshal(map[string]any{"trees": trees})
	start := time.Now()
	resp, err := hc.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, nil, time.Since(start), err
	}
	defer resp.Body.Close()
	var parsed struct {
		IDs []int `json:"ids"`
	}
	if resp.StatusCode == 200 {
		json.NewDecoder(resp.Body).Decode(&parsed)
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, parsed.IDs, time.Since(start), nil
}

func getNDJSON(hc *http.Client, url string) (int, int64, time.Duration, error) {
	start := time.Now()
	resp, err := hc.Get(url)
	if err != nil {
		return 0, 0, time.Since(start), err
	}
	defer resp.Body.Close()
	var rows int64
	if resp.StatusCode == 200 {
		buf := make([]byte, 64<<10)
		for {
			n, err := resp.Body.Read(buf)
			for _, b := range buf[:n] {
				if b == '\n' {
					rows++
				}
			}
			if err != nil {
				break
			}
		}
		if rows > 0 {
			rows-- // the summary line is not a result row
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, rows, time.Since(start), nil
}

// Report is the JSON shape written to BENCH_serve.json.
type Report struct {
	Clients   int                 `json:"clients"`
	Tau       int                 `json:"tau"`
	Duration  string              `json:"duration"`
	Requests  int64               `json:"requests"`
	QPS       float64             `json:"qps"`
	Results   int64               `json:"results"`
	P50Ms     float64             `json:"p50_ms"`
	P99Ms     float64             `json:"p99_ms"`
	Statuses  map[string]int64    `json:"statuses"`
	Failures  int64               `json:"failures"`
	Errors    []string            `json:"errors,omitempty"`
	PerOp     map[string]OpReport `json:"per_op"`
	Timestamp string              `json:"timestamp"`
}

type OpReport struct {
	Requests int64   `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

func buildReport(results []*result, elapsed time.Duration, clients, tau int) (Report, int64) {
	var all []sample
	statuses := make(map[string]int64)
	var failures, rows int64
	var errs []string
	for _, r := range results {
		all = append(all, r.samples...)
		for code, n := range r.statuses {
			statuses[fmt.Sprintf("%d", code)] += n
			if code >= 500 {
				failures += n
			}
		}
		rows += r.results
		errs = append(errs, r.errors...)
	}
	failures += int64(len(errs))
	if len(errs) > 8 {
		errs = errs[:8]
	}
	perOp := make(map[string]OpReport)
	byOp := make(map[string][]time.Duration)
	var lats []time.Duration
	for _, s := range all {
		byOp[s.op] = append(byOp[s.op], s.d)
		lats = append(lats, s.d)
	}
	for op, ds := range byOp {
		perOp[op] = OpReport{Requests: int64(len(ds)), P50Ms: pctMs(ds, 50), P99Ms: pctMs(ds, 99)}
	}
	return Report{
		Clients:   clients,
		Tau:       tau,
		Duration:  elapsed.Round(time.Millisecond).String(),
		Requests:  int64(len(all)),
		QPS:       float64(len(all)) / elapsed.Seconds(),
		Results:   rows,
		P50Ms:     pctMs(lats, 50),
		P99Ms:     pctMs(lats, 99),
		Statuses:  statuses,
		Failures:  failures,
		Errors:    errs,
		PerOp:     perOp,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}, failures
}

func pctMs(ds []time.Duration, p int) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted) - 1) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Microseconds()) / 1e3
}
