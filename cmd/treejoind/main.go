// Command treejoind serves a sharded treejoin corpus over HTTP/JSON: the
// paper's similarity join and the corpus's search/topk/knn queries behind a
// small endpoint set, with per-query deadlines, a bounded in-flight
// admission gate, snapshot-isolated reads (every request pins one
// multi-shard epoch), and streaming NDJSON for the join results. With -store
// the corpus is durable: mutations write through a segment store that
// survives restarts.
//
// Endpoints:
//
//	GET  /healthz                          liveness
//	GET  /stats                            corpus/cache/store statistics
//	GET  /selfjoin?tau=N                   NDJSON pair stream + summary line
//	POST /join     {"trees":[...],"tau":N} NDJSON pair stream + summary line
//	POST /search   {"query":s,"tau":N}     matches within τ of the query
//	POST /topk     {"k":N}                 k closest pairs
//	POST /knn      {"query":s,"k":N}       k nearest trees to the query
//	POST /add      {"trees":[...]}         append trees, returns stable ids
//	POST /remove   {"ids":[...]}           remove by id, returns count
//
// All tree positions on the wire are stable global ids (the ids /add
// returns), never positions — positions shift under removals, ids do not.
// Every request accepts ?deadline_ms= to tighten the server's default
// deadline. Overload answers 429, a degraded store 503, an expired deadline
// 504; malformed requests answer 400 and can never panic the server.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"treejoin"
	"treejoin/internal/cli"
)

func main() {
	var (
		addr      = flag.String("addr", ":8765", "listen address")
		shards    = flag.Int("shards", 4, "shard count for the corpus")
		input     = flag.String("input", "", "dataset to load at boot (bracket/newick/binary)")
		format    = flag.String("format", "auto", "input format: bracket, newick, binary, auto")
		store     = flag.String("store", "", "persistent store directory (durable corpus)")
		workers   = flag.Int("workers", 0, "worker goroutines per query (0: all cores)")
		inflight  = flag.Int("max-inflight", 32, "max concurrent queries before 429")
		deadline  = flag.Duration("deadline", 10*time.Second, "default per-query deadline")
		verbosity = flag.Bool("v", false, "log every request")
	)
	flag.Parse()

	sc, lt, err := bootCorpus(*store, *input, *format, *shards)
	if err != nil {
		log.Fatalf("treejoind: %v", err)
	}
	srv := newServer(sc, lt, *workers, *inflight, *deadline)
	srv.logRequests = *verbosity

	hs := &http.Server{Addr: *addr, Handler: srv.routes()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("treejoind: listen: %v", err)
	}
	log.Printf("treejoind: serving %d trees on %d shards at %s", sc.Len(), sc.NumShards(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		log.Printf("treejoind: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shCtx); err != nil {
			log.Printf("treejoind: shutdown: %v", err)
		}
	case err := <-errCh:
		log.Fatalf("treejoind: serve: %v", err)
	}
	if err := sc.Close(); err != nil {
		log.Fatalf("treejoind: closing store: %v", err)
	}
}

// bootCorpus assembles the sharded corpus the server fronts: persistent when
// storeDir is set (reloading whatever the store holds, then appending the
// input dataset if one is given and the store is empty), in-memory over the
// input dataset otherwise.
func bootCorpus(storeDir, input, format string, shards int) (*treejoin.ShardedCorpus, *treejoin.LabelTable, error) {
	if storeDir != "" {
		sc, err := treejoin.OpenSharded(storeDir, shards)
		if err != nil {
			return nil, nil, err
		}
		lt := sc.Labels()
		if lt == nil {
			lt = treejoin.NewLabelTable()
		}
		if input != "" && sc.Len() == 0 {
			ts, _, err := cli.Load(input, format, lt)
			if err != nil {
				sc.Close()
				return nil, nil, err
			}
			if _, err := sc.Add(ts...); err != nil {
				sc.Close()
				return nil, nil, err
			}
		}
		return sc, lt, nil
	}
	var ts []*treejoin.Tree
	lt := treejoin.NewLabelTable()
	if input != "" {
		var err error
		ts, lt, err = cli.Load(input, format, nil)
		if err != nil {
			return nil, nil, err
		}
	}
	sc, err := treejoin.NewSharded(shards, ts)
	if err != nil {
		return nil, nil, err
	}
	return sc, lt, nil
}

// server is the handler state: the corpus, the single label table every
// parse must intern into (LabelTable mutation is not thread-safe, so parses
// serialise on parseMu), the admission semaphore, and the query defaults.
type server struct {
	sc          *treejoin.ShardedCorpus
	lt          *treejoin.LabelTable
	parseMu     sync.Mutex
	sem         chan struct{}
	deadline    time.Duration
	workers     int
	logRequests bool
}

func newServer(sc *treejoin.ShardedCorpus, lt *treejoin.LabelTable, workers, inflight int, deadline time.Duration) *server {
	if inflight < 1 {
		inflight = 1
	}
	if deadline <= 0 {
		deadline = 10 * time.Second
	}
	return &server{
		sc:       sc,
		lt:       lt,
		sem:      make(chan struct{}, inflight),
		deadline: deadline,
		workers:  workers,
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("/selfjoin", s.gated(s.handleSelfJoin))
	mux.HandleFunc("POST /join", s.gated(s.handleJoin))
	mux.HandleFunc("POST /search", s.gated(s.handleSearch))
	mux.HandleFunc("POST /topk", s.gated(s.handleTopK))
	mux.HandleFunc("POST /knn", s.gated(s.handleKNN))
	mux.HandleFunc("POST /add", s.gated(s.handleAdd))
	mux.HandleFunc("POST /remove", s.gated(s.handleRemove))
	return mux
}

// gated wraps a handler with the admission gate and the per-query deadline:
// a full semaphore answers 429 immediately (the server sheds load instead of
// queueing unboundedly), and every admitted request runs under a context
// that expires at the default deadline or the request's ?deadline_ms,
// whichever the client chose.
func (s *server) gated(h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			http.Error(w, `{"error":"server at capacity"}`, http.StatusTooManyRequests)
			return
		}
		d := s.deadline
		if ms := r.URL.Query().Get("deadline_ms"); ms != "" {
			v, err := strconv.Atoi(ms)
			if err != nil || v <= 0 {
				http.Error(w, `{"error":"bad deadline_ms"}`, http.StatusBadRequest)
				return
			}
			if dv := time.Duration(v) * time.Millisecond; dv < d {
				d = dv
			}
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		if s.logRequests {
			start := time.Now()
			defer func() { log.Printf("%s %s %v", r.Method, r.URL.Path, time.Since(start)) }()
		}
		h(w, r.WithContext(ctx))
	}
}

// errBadRequest marks errors of the server's own making — unparsable
// bodies, bad parameters, malformed trees — as client mistakes.
var errBadRequest = errors.New("bad request")

// failStatus maps a query error to its HTTP status: client mistakes are
// 4xx, a degraded store 503, an expired deadline 504. Validation sentinels
// cover every error the corpus API returns for bad input, so nothing a
// client sends can surface as a 5xx (or a panic).
func failStatus(err error) int {
	switch {
	case errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client went away; nginx's conventional code
	case errors.Is(err, treejoin.ErrDegraded):
		return http.StatusServiceUnavailable
	case errors.Is(err, treejoin.ErrNegativeThreshold),
		errors.Is(err, treejoin.ErrUnknownMethod),
		errors.Is(err, treejoin.ErrUnknownPrefilter),
		errors.Is(err, treejoin.ErrOptionConflict),
		errors.Is(err, treejoin.ErrNilTree),
		errors.Is(err, treejoin.ErrLabelTable),
		errors.Is(err, treejoin.ErrNilCorpus):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeErr(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(failStatus(err))
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decode reads a JSON request body (capped at 8 MiB) into dst.
func decode(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: body: %v", errBadRequest, err)
	}
	return nil
}

// parseTrees parses bracket-notation trees into the server's label table.
// Interning mutates the table, so parses serialise; corpus queries only
// compare label ids and never touch the table, so they proceed concurrently.
func (s *server) parseTrees(specs []string) ([]*treejoin.Tree, error) {
	s.parseMu.Lock()
	defer s.parseMu.Unlock()
	ts := make([]*treejoin.Tree, len(specs))
	for i, spec := range specs {
		t, err := treejoin.ParseBracket(spec, s.lt)
		if err != nil {
			return nil, fmt.Errorf("%w: tree %d: %v", errBadRequest, i, err)
		}
		ts[i] = t
	}
	return ts, nil
}

func (s *server) queryOpts(dst *treejoin.Stats) []treejoin.Option {
	opts := []treejoin.Option{treejoin.WithStats(dst)}
	if s.workers > 0 {
		opts = append(opts, treejoin.WithWorkers(s.workers))
	}
	return opts
}

type wirePair struct {
	I    int `json:"i"`
	J    int `json:"j"`
	Dist int `json:"dist"`
}

type wireMatch struct {
	ID   int `json:"id"`
	Dist int `json:"dist"`
}

type wireSummary struct {
	Results    int64   `json:"results"`
	Candidates int64   `json:"candidates"`
	Trees      int     `json:"trees"`
	CandMs     float64 `json:"cand_ms"`
	VerifyMs   float64 `json:"verify_ms"`
	Source     string  `json:"source,omitempty"`
}

func summarize(st treejoin.Stats) wireSummary {
	return wireSummary{
		Results:    st.Results,
		Candidates: st.Candidates,
		Trees:      st.Trees,
		CandMs:     float64(st.CandWall.Microseconds()) / 1e3,
		VerifyMs:   float64(st.VerifyTime.Microseconds()) / 1e3,
		Source:     st.Source,
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"trees":  s.sc.Len(),
		"epoch":  s.sc.Epoch(),
		"shards": s.sc.NumShards(),
		"cache":  s.sc.CacheStats(),
	}
	if st, ok := s.sc.StoreStats(); ok {
		resp["store"] = st
	}
	writeJSON(w, resp)
}

// handleSelfJoin streams the join: one NDJSON line per result pair as the
// rounds verify them, then a summary line with the rolled-up statistics. The
// stream runs on a pinned view, so a concurrent /add or /remove never tears
// the result.
func (s *server) handleSelfJoin(w http.ResponseWriter, r *http.Request) {
	tau, err := strconv.Atoi(r.URL.Query().Get("tau"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: bad tau: %v", errBadRequest, err))
		return
	}
	v := s.sc.View()
	var stats treejoin.Stats
	seq, err := v.SelfJoinSeq(r.Context(), tau, s.queryOpts(&stats)...)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	n := 0
	for p := range seq {
		enc.Encode(wirePair{I: v.ID(p.I), J: v.ID(p.J), Dist: p.Dist})
		if n++; n%256 == 0 && flusher != nil {
			flusher.Flush()
		}
	}
	if err := r.Context().Err(); err != nil {
		enc.Encode(map[string]string{"error": err.Error()})
		return
	}
	enc.Encode(map[string]wireSummary{"summary": summarize(stats)})
}

// handleJoin joins the corpus against trees uploaded in the request body;
// pair i is a corpus id, pair j an index into the uploaded list.
func (s *server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Trees []string `json:"trees"`
		Tau   int      `json:"tau"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	ts, err := s.parseTrees(req.Trees)
	if err != nil {
		writeErr(w, err)
		return
	}
	other, err := treejoin.NewCorpus(ts)
	if err != nil {
		writeErr(w, err)
		return
	}
	v := s.sc.View()
	pairs, stats, err := v.Join(r.Context(), other, req.Tau, s.queryOpts(nil)...)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, p := range pairs {
		enc.Encode(wirePair{I: v.ID(p.I), J: p.J, Dist: p.Dist})
	}
	enc.Encode(map[string]wireSummary{"summary": summarize(stats)})
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Query string `json:"query"`
		Tau   int    `json:"tau"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	qs, err := s.parseTrees([]string{req.Query})
	if err != nil {
		writeErr(w, err)
		return
	}
	v := s.sc.View()
	ms, err := v.Search(r.Context(), qs[0], req.Tau)
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]wireMatch, len(ms))
	for i, m := range ms {
		out[i] = wireMatch{ID: v.ID(m.Pos), Dist: m.Dist}
	}
	writeJSON(w, map[string][]wireMatch{"matches": out})
}

func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req struct {
		K int `json:"k"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	v := s.sc.View()
	pairs, err := v.TopK(r.Context(), req.K)
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]wirePair, len(pairs))
	for i, p := range pairs {
		out[i] = wirePair{I: v.ID(p.I), J: v.ID(p.J), Dist: p.Dist}
	}
	writeJSON(w, map[string][]wirePair{"pairs": out})
}

func (s *server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Query string `json:"query"`
		K     int    `json:"k"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	qs, err := s.parseTrees([]string{req.Query})
	if err != nil {
		writeErr(w, err)
		return
	}
	v := s.sc.View()
	ms, err := v.KNN(r.Context(), qs[0], req.K)
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]wireMatch, len(ms))
	for i, m := range ms {
		out[i] = wireMatch{ID: v.ID(m.Pos), Dist: m.Dist}
	}
	writeJSON(w, map[string][]wireMatch{"matches": out})
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Trees []string `json:"trees"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if len(req.Trees) == 0 {
		writeJSON(w, map[string][]int{"ids": {}})
		return
	}
	ts, err := s.parseTrees(req.Trees)
	if err != nil {
		writeErr(w, err)
		return
	}
	ids, err := s.sc.Add(ts...)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, map[string][]int{"ids": ids})
}

func (s *server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req struct {
		IDs []int `json:"ids"`
	}
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, map[string]int{"removed": s.sc.Remove(req.IDs...)})
}
