// Handler tests for treejoind: correct results over HTTP, malformed
// requests answered with 4xx (never a panic or a 5xx), deadline and
// admission behaviour, and id-stable responses across mutations.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"treejoin"
	"treejoin/internal/synth"
)

func testServer(t *testing.T, n int, inflight int, deadline time.Duration) (*server, *httptest.Server) {
	t.Helper()
	ts := synth.Synthetic(30, 17)
	sc, err := treejoin.NewSharded(n, ts)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sc, sc.Labels(), 0, inflight, deadline)
	hs := httptest.NewServer(srv.routes())
	t.Cleanup(hs.Close)
	return srv, hs
}

func post(t *testing.T, hs *httptest.Server, path, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(hs.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp, sb.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func TestServeEndpoints(t *testing.T) {
	_, hs := testServer(t, 3, 8, 5*time.Second)

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Self join streams NDJSON ending in a summary whose count matches the
	// pair lines.
	resp, err = http.Get(hs.URL + "/selfjoin?tau=2")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("selfjoin: status %d", resp.StatusCode)
	}
	body := readAll(t, resp)
	lines := strings.Split(strings.TrimSpace(body), "\n")
	last := lines[len(lines)-1]
	var summary struct {
		Summary struct {
			Results int64 `json:"results"`
			Trees   int   `json:"trees"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(last), &summary); err != nil {
		t.Fatalf("summary line %q: %v", last, err)
	}
	if summary.Summary.Trees != 30 {
		t.Fatalf("summary trees = %d, want 30", summary.Summary.Trees)
	}
	if got := int64(len(lines) - 1); got != summary.Summary.Results {
		t.Fatalf("streamed %d pairs, summary says %d", got, summary.Summary.Results)
	}

	// Search for an existing corpus tree at tau=0 finds at least itself.
	resp2, body2 := post(t, hs, "/search", `{"query":"{0{1}{2}}","tau":20}`)
	if resp2.StatusCode != 200 {
		t.Fatalf("search: status %d: %s", resp2.StatusCode, body2)
	}

	// Add, then remove by the returned ids; ids are stable and reported back.
	resp3, body3 := post(t, hs, "/add", `{"trees":["{a{b}{c}}","{a{b}}"]}`)
	if resp3.StatusCode != 200 {
		t.Fatalf("add: status %d: %s", resp3.StatusCode, body3)
	}
	var added struct {
		IDs []int `json:"ids"`
	}
	if err := json.Unmarshal([]byte(body3), &added); err != nil || len(added.IDs) != 2 {
		t.Fatalf("add response %q: %v", body3, err)
	}
	if added.IDs[0] != 30 || added.IDs[1] != 31 {
		t.Fatalf("add ids = %v, want [30 31]", added.IDs)
	}
	resp4, body4 := post(t, hs, "/remove", fmt.Sprintf(`{"ids":[%d]}`, added.IDs[0]))
	if resp4.StatusCode != 200 || !strings.Contains(body4, `"removed":1`) {
		t.Fatalf("remove: status %d body %s", resp4.StatusCode, body4)
	}

	// TopK and KNN answer with the requested cardinality.
	resp5, body5 := post(t, hs, "/topk", `{"k":3}`)
	if resp5.StatusCode != 200 {
		t.Fatalf("topk: status %d: %s", resp5.StatusCode, body5)
	}
	var topk struct {
		Pairs []wirePair `json:"pairs"`
	}
	if err := json.Unmarshal([]byte(body5), &topk); err != nil || len(topk.Pairs) != 3 {
		t.Fatalf("topk response %q: %v", body5, err)
	}
	resp6, body6 := post(t, hs, "/knn", `{"query":"{0{1}}","k":4}`)
	if resp6.StatusCode != 200 {
		t.Fatalf("knn: status %d: %s", resp6.StatusCode, body6)
	}
	var knn struct {
		Matches []wireMatch `json:"matches"`
	}
	if err := json.Unmarshal([]byte(body6), &knn); err != nil || len(knn.Matches) != 4 {
		t.Fatalf("knn response %q: %v", body6, err)
	}

	// Stats reports the post-mutation corpus.
	resp7, err := http.Get(hs.URL + "/stats")
	if err != nil || resp7.StatusCode != 200 {
		t.Fatalf("stats: %v %v", resp7, err)
	}
	var stats struct {
		Trees  int `json:"trees"`
		Shards int `json:"shards"`
	}
	if err := json.NewDecoder(resp7.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp7.Body.Close()
	if stats.Trees != 31 || stats.Shards != 3 {
		t.Fatalf("stats = %+v, want 31 trees on 3 shards", stats)
	}
}

// TestServeMalformed: every malformed request the wire can carry answers
// 4xx — no panic, no 5xx. This is the no-network-reachable-panic contract.
func TestServeMalformed(t *testing.T) {
	_, hs := testServer(t, 2, 8, 5*time.Second)
	cases := []struct {
		name, path, body string
	}{
		{"bad json", "/search", `{"query":`},
		{"wrong type", "/search", `{"query":17,"tau":1}`},
		{"unknown field", "/search", `{"q":"{a}"}`},
		{"bad bracket", "/search", `{"query":"{a","tau":1}`},
		{"empty query", "/search", `{"query":"","tau":1}`},
		{"negative tau", "/search", `{"query":"{a}","tau":-4}`},
		{"bad tree in batch", "/add", `{"trees":["{a}","}{"]}`},
		{"bad join tree", "/join", `{"trees":["{{{"],"tau":1}`},
		{"negative join tau", "/join", `{"trees":["{a}"],"tau":-1}`},
		{"remove wrong type", "/remove", `{"ids":"all"}`},
		{"topk bad body", "/topk", `k=3`},
	}
	for _, tc := range cases {
		resp, body := post(t, hs, tc.path, tc.body)
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Errorf("%s: status %d (want 4xx), body %q", tc.name, resp.StatusCode, body)
		}
	}

	// Bad query parameters on the streaming endpoint.
	for _, url := range []string{"/selfjoin", "/selfjoin?tau=x", "/selfjoin?tau=-2", "/selfjoin?tau=1&deadline_ms=no"} {
		resp, err := http.Get(hs.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Errorf("GET %s: status %d, want 4xx", url, resp.StatusCode)
		}
	}

	// The server is still healthy after the abuse.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz after malformed barrage: %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestServeDeadline: a request whose deadline cannot be met answers 504.
func TestServeDeadline(t *testing.T) {
	_, hs := testServer(t, 2, 8, time.Nanosecond)
	resp, body := post(t, hs, "/topk", `{"k":5}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline: status %d body %q, want 504", resp.StatusCode, body)
	}
}

// TestServeAdmission: when every in-flight slot is held, the next request
// answers 429 instead of queueing.
func TestServeAdmission(t *testing.T) {
	srv, hs := testServer(t, 2, 1, 5*time.Second)
	srv.sem <- struct{}{} // occupy the only slot
	defer func() { <-srv.sem }()
	resp, body := post(t, hs, "/topk", `{"k":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("admission: status %d body %q, want 429", resp.StatusCode, body)
	}
	// healthz is not gated.
	r2, err := http.Get(hs.URL + "/healthz")
	if err != nil || r2.StatusCode != 200 {
		t.Fatalf("healthz while saturated: %v %v", r2, err)
	}
	r2.Body.Close()
}
