// Command treejoin runs a tree similarity join over a dataset file and
// prints the matching pairs.
//
// Usage:
//
//	treejoin -input trees.txt -tau 2 [-method PRT|STR|SET|BF|HIST|EUL|PQG]
//	         [-prefilter HIST,SET] [-workers 4] [-shards 4] [-timeout 30s]
//	         [-format bracket|newick|binary] [-stats] [-quiet] [-fixed-plan]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	treejoin -input a.txt -other b.txt -tau 2
//	treejoin -input trees.txt -topk 10
//	treejoin -input trees.txt -tau 2 -explain
//	treejoin -watch -tau 2 [-input seed.txt] < mutations.txt
//	treejoin -store corpus.dir -tau 2 [-input more.txt]
//	treejoin -store corpus.dir -compact [-stats]
//	treejoin -store corpus.dir -scrub
//	treejoin -store corpus.dir -salvage
//	treejoin -store corpus.dir -watch -tau 2 < mutations.txt
//
// The dataset holds one tree per line (bracket or Newick notation) or is a
// binary dataset written by datagen -format binary; -format auto-detects
// from the extension (.tjds → binary, .nwk/.newick/.tree → newick). Each
// output line is "i<TAB>j<TAB>dist" (0-based positions of the two trees).
// With -other B the join is the cross join of the two files (i indexes
// -input, j indexes -other; text formats only, so the files share a label
// table). With -prefilter, the named filter stages run in front of the
// method, and -stats attributes the pruning per stage. With -topk K the
// threshold is ignored and the K closest pairs are printed instead. With
// -stats, a summary of where the join spent its time follows on stderr,
// including a "plan:" line describing the execution plan the run carried:
// its candidate source, filter-chain order, prefix multiplier C, and origin
// — "fixed" (the static default), "calibrated" (chosen from a sampled
// probe), or "observed" (backed by completed-run feedback). Corpus joins
// plan adaptively by default; -fixed-plan forces the static default plan.
// With -explain the join does not run at all: the command prints the plan
// the corpus would choose for this query, with the cost model's estimates
// (window pairs, per-stage survival, expected candidates and stage times)
// when the model has any.
//
// With -watch the command becomes a standing join over a mutating stream:
// it reads one mutation per stdin line — a bracket-notation tree to add, or
// "-N" to remove the tree with id N — and emits the join's delta after each
// one. Ids are assigned in add order starting at 0 (-input, when given,
// seeds the stream first). Each delta line is "+<TAB>i<TAB>j<TAB>dist" for
// a pair entering the result (tree j is the newly added tree) or
// "-<TAB>i<TAB>j<TAB>dist" for a standing pair retracted by a removal;
// applying the + and − lines in order reproduces the self-join of the live
// trees at every point. Malformed lines (unparseable trees, bad or unknown
// removal ids) are reported on stderr and skipped — a long-running watch
// never loses its standing result to one bad input line, and skipped lines
// consume no id. Watch mode runs the incremental PartSJ stream, so -method
// PRT only, and -other/-topk/-shards/-prefilter do not combine with it.
//
// With -store the corpus is a persistent segment store at the given
// directory: Open-ed if it exists, created otherwise. Trees from -input (text
// formats only — the store owns the label table) are durably added before the
// join runs, so repeated invocations accumulate; without -input the join runs
// over whatever the store holds. -compact forces a compaction cycle (merging
// segments and dropping tombstones) instead of joining. -scrub re-verifies
// the store's integrity end to end — manifest decode, per-segment checksums,
// and every block re-hashed against its stored content address — and exits
// non-zero naming the faulty files if anything fails. -salvage opens a store
// that -scrub (or a refused open) showed to be corrupt, quarantining each
// unreadable segment as <name>.quarantine, printing what was set aside with
// bounds on the lost tree ids, and committing a manifest over the surviving
// corpus so later plain opens succeed. A -store -watch
// session journals every mutation through the store's write-ahead log before
// emitting its delta — kill the process at any point and reopen to find every
// acknowledged add and removal intact — and ids in deltas and removals are
// the store's stable tree ids, which survive across sessions. With -stats, a
// "store:" line reports segment, memtable, tombstone, and compaction
// counters.
//
// Joins are cancellable: -timeout bounds the run, and an interrupt (Ctrl-C)
// stops it early. Either way the pairs found so far are printed and the
// exit status is 1; threshold joins also print their partial per-stage
// statistics to stderr (-topk aggregates rounds and has none to report).
// An interrupted or timed-out watch stops emitting deltas the same way.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"treejoin"
	"treejoin/internal/cli"
)

func main() {
	var (
		input      = flag.String("input", "", "dataset file (required)")
		other      = flag.String("other", "", "second dataset file: cross join -input against -other")
		format     = flag.String("format", "auto", "input format: bracket, newick, binary, or auto")
		tau        = flag.Int("tau", 1, "TED threshold τ ≥ 0")
		topk       = flag.Int("topk", 0, "report the K closest pairs instead of a threshold join")
		method     = flag.String("method", "PRT", "join method: PRT, STR, SET, BF, HIST, EUL, or PQG")
		prefilter  = flag.String("prefilter", "", "comma-separated filter stages to chain in front of the method (HIST, STR, SET, EUL, PQG)")
		workers    = flag.Int("workers", 0, "parallel candidate-generation and TED-verification workers")
		shards     = flag.Int("shards", 0, "decompose the PRT join into fragment-and-replicate shards")
		timeout    = flag.Duration("timeout", 0, "abort the join after this duration (0: no limit)")
		stats      = flag.Bool("stats", false, "print execution statistics to stderr")
		quiet      = flag.Bool("quiet", false, "suppress pair output (useful with -stats)")
		explain    = flag.Bool("explain", false, "print the execution plan and its cost estimates instead of running the join")
		fixedPlan  = flag.Bool("fixed-plan", false, "disable adaptive planning; run the method's static default plan")
		watch      = flag.Bool("watch", false, "read mutations (bracket tree to add, -N to remove id N) from stdin and emit join deltas")
		store      = flag.String("store", "", "persistent corpus directory (created if absent); -input trees are durably added")
		compact    = flag.Bool("compact", false, "force a compaction cycle on -store and exit (no join)")
		scrub      = flag.Bool("scrub", false, "re-verify every checksum and content address of -store and exit (no join)")
		salvage    = flag.Bool("salvage", false, "open -store quarantining corrupt segments (*.quarantine), report the loss, and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	if err := startProfiles(*cpuprofile, *memprofile); err != nil {
		fail("%v", err)
	}
	defer stopProfiles()
	if *scrub {
		if *store == "" {
			fail("-scrub requires -store")
		}
		cp, err := treejoin.Open(*store)
		if err != nil {
			// A store the open path already refuses is the scrub's verdict
			// too — the decode error names the faulty file.
			fail("scrub: FAULT %v (re-open with -salvage to quarantine and keep the readable rest)", err)
		}
		rep, serr := cp.Scrub()
		fmt.Fprintf(os.Stderr, "scrub: %d segments, %d blocks, %d entries verified, %d fault(s)\n",
			rep.Segments, rep.Blocks, rep.Entries, len(rep.Faults))
		for _, f := range rep.Faults {
			name := f.Name
			if name == "" {
				name = "MANIFEST"
			}
			fmt.Fprintf(os.Stderr, "scrub: FAULT %s: %s\n", name, f.Err)
		}
		if err := cp.Close(); err != nil {
			fail("%v", err)
		}
		if serr != nil {
			fail("%v (re-open with -salvage to quarantine and keep the readable rest)", serr)
		}
		return
	}
	if *salvage {
		if *store == "" {
			fail("-salvage requires -store")
		}
		cp, err := treejoin.Open(*store, treejoin.WithSalvage())
		if err != nil {
			fail("%v", err)
		}
		for _, q := range cp.SalvageReport() {
			fmt.Fprintf(os.Stderr, "salvage: quarantined %s (%d entries, up to %d live trees lost, ids in (%d, %d)): %s\n",
				q.Name, q.Entries, q.Live, q.IDAfter, q.IDBefore, q.Err)
		}
		st, _ := cp.StoreStats()
		fmt.Fprintf(os.Stderr, "salvage: %d segment(s) quarantined, %d trees live\n",
			st.QuarantinedSegments, st.LiveTrees)
		if err := cp.Close(); err != nil {
			fail("%v", err)
		}
		return
	}
	if *compact {
		if *store == "" {
			fail("-compact requires -store")
		}
		if *watch {
			fail("-compact does not combine with -watch")
		}
		cp, err := treejoin.Open(*store)
		if err != nil {
			fail("%v", err)
		}
		if err := cp.Compact(); err != nil {
			fail("%v", err)
		}
		if *stats {
			printStoreStats(cp)
		}
		if err := cp.Close(); err != nil {
			fail("%v", err)
		}
		return
	}
	if *watch {
		if *explain {
			fail("-explain does not combine with -watch")
		}
		runWatch(*input, *format, *store, *tau, *topk, *other, *method, *prefilter, *shards, *workers, *timeout, *stats, *quiet)
		return
	}
	if *input == "" && *store == "" {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "treejoin: -input or -store is required")
		flag.Usage()
		os.Exit(2)
	}
	if *tau < 0 {
		fail("threshold must be non-negative, got %d", *tau)
	}
	var m treejoin.Method
	switch *method {
	case "PRT":
		m = treejoin.MethodPartSJ
	case "STR":
		m = treejoin.MethodSTR
	case "SET":
		m = treejoin.MethodSET
	case "BF":
		m = treejoin.MethodBruteForce
	case "HIST":
		m = treejoin.MethodHistogram
	case "EUL":
		m = treejoin.MethodEulerString
	case "PQG":
		m = treejoin.MethodPQGram
	default:
		fail("unknown method %q (want PRT, STR, SET, BF, HIST, EUL, or PQG)", *method)
	}

	// The corpus: a persistent store (ingesting -input when given) or a fresh
	// in-memory corpus over -input. Either way lt is the table queries and
	// -other must intern into.
	var corpus *treejoin.Corpus
	var lt *treejoin.LabelTable
	if *store != "" {
		cp, err := treejoin.Open(*store)
		if err != nil {
			fail("%v", err)
		}
		if *input != "" {
			// The store owns its label table, so ingest is text-only (the
			// binary format carries a table of its own).
			if f, _ := cli.DetectFormat(*input, *format); f == cli.FormatBinary {
				fail("-store ingests text formats only (the store owns the label table)")
			}
			ts, _, err := cli.Load(*input, *format, cp.Labels())
			if err != nil {
				fail("%v", err)
			}
			if _, err := cp.Add(ts...); err != nil {
				fail("%v", err)
			}
		}
		corpus, lt = cp, cp.Labels()
	} else {
		ts, table, err := cli.Load(*input, *format, nil)
		if err != nil {
			fail("%v", err)
		}
		lt = table
		corpus, err = treejoin.NewCorpus(ts)
		if err != nil {
			fail("%v", err)
		}
	}
	opts := []treejoin.Option{treejoin.WithMethod(m), treejoin.WithWorkers(*workers)}
	if *shards > 1 {
		opts = append(opts, treejoin.WithShards(*shards))
	}
	if *fixedPlan {
		opts = append(opts, treejoin.WithFixedPlan())
	}
	if *prefilter != "" {
		var fs []treejoin.Prefilter
		for _, name := range strings.Split(*prefilter, ",") {
			switch strings.TrimSpace(name) {
			case "HIST":
				fs = append(fs, treejoin.PrefilterHistogram)
			case "STR":
				fs = append(fs, treejoin.PrefilterSTR)
			case "SET":
				fs = append(fs, treejoin.PrefilterSET)
			case "EUL":
				fs = append(fs, treejoin.PrefilterEulerString)
			case "PQG":
				fs = append(fs, treejoin.PrefilterPQGram)
			default:
				fail("unknown prefilter %q (want HIST, STR, SET, EUL, or PQG)", name)
			}
		}
		opts = append(opts, treejoin.WithPrefilter(fs...))
	}

	// The run context: bounded by -timeout, cancelled by the first
	// interrupt (a second interrupt kills the process the usual way).
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()
	// Once the context is done (first interrupt or timeout), unregister the
	// handler so a second interrupt kills the process the usual way instead
	// of being swallowed while partial results print.
	context.AfterFunc(ctx, stop)

	if *explain {
		switch {
		case *topk > 0:
			fail("-explain does not combine with -topk")
		case *other != "":
			fail("-explain does not combine with -other (explanations cover self joins)")
		}
		ex, err := corpus.Explain(ctx, *tau, opts...)
		if err != nil {
			fail("%v", err)
		}
		fmt.Println(ex)
		if err := corpus.Close(); err != nil {
			fail("%v", err)
		}
		return
	}

	var pairs []treejoin.Pair
	var st treejoin.Stats
	var runErr error
	switch {
	case *other != "":
		if *topk > 0 {
			fail("-topk does not combine with -other")
		}
		// The two text files must intern into one label table; the binary
		// format carries its own table and cannot be aligned here.
		if f, _ := cli.DetectFormat(*other, *format); f == cli.FormatBinary {
			fail("-other requires a text format (shared label table)")
		}
		bs, _, err := cli.Load(*other, *format, lt)
		if err != nil {
			fail("%v", err)
		}
		otherCorpus, err := treejoin.NewCorpus(bs)
		if err != nil {
			fail("%v", err)
		}
		pairs, st, runErr = corpus.Join(ctx, otherCorpus, *tau, opts...)
	case *topk > 0:
		// TopK runs expanding-threshold PartSJ passes; reject flags it would
		// silently ignore rather than pretend they took effect.
		if *method != "PRT" {
			fail("-topk supports -method PRT only")
		}
		if *prefilter != "" {
			fail("-topk does not combine with -prefilter")
		}
		pairs, runErr = corpus.TopK(ctx, *topk, opts...)
	default:
		pairs, st, runErr = corpus.SelfJoin(ctx, *tau, opts...)
	}
	interrupted := runErr != nil && (errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded))
	if runErr != nil && !interrupted {
		fail("%v", runErr)
	}

	if !*quiet {
		w := bufio.NewWriter(os.Stdout)
		for _, p := range pairs {
			fmt.Fprintf(w, "%d\t%d\t%d\n", p.I, p.J, p.Dist)
		}
		if err := w.Flush(); err != nil {
			fail("%v", err)
		}
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "treejoin: %v — results are partial\n", runErr)
	}
	if (*stats || interrupted) && *topk == 0 {
		printStats(m, *tau, st)
	}
	if *stats || interrupted {
		printStoreStats(corpus)
	}
	if err := corpus.Close(); err != nil {
		fail("%v", err)
	}
	if interrupted {
		stopProfiles()
		os.Exit(1)
	}
}

// printStoreStats appends the segment-store line to the stats summary; a
// no-op for in-memory corpora, which have no store to report on.
func printStoreStats(cp *treejoin.Corpus) {
	ss, ok := cp.StoreStats()
	if !ok {
		return
	}
	fmt.Fprintf(os.Stderr, "store:       %d segments (%d opened), %d memtable trees, %d tombstoned, %d flushes, %d compactions\n",
		ss.Segments, ss.SegmentsOpened, ss.MemtableTrees, ss.TombstonedTrees, ss.FlushRuns, ss.CompactionRuns)
}

// printStats writes the execution summary — including per-stage filter
// attribution — to stderr. On an interrupted run the counters cover the
// work done up to the abort.
func printStats(m treejoin.Method, tau int, st treejoin.Stats) {
	fmt.Fprintf(os.Stderr, "trees:       %d\n", st.Trees)
	fmt.Fprintf(os.Stderr, "method:      %s, tau=%d\n", m, tau)
	if st.Source != "" {
		fmt.Fprintf(os.Stderr, "source:      %s\n", st.Source)
	}
	if st.Plan.Source != "" {
		fmt.Fprintf(os.Stderr, "plan:        source=%s chain=[%s] C=%d origin=%s\n",
			st.Plan.Source, strings.Join(st.Plan.Chain, " "), st.Plan.PrefixC, st.Plan.Origin)
	}
	fmt.Fprintf(os.Stderr, "candidates:  %d\n", st.Candidates)
	fmt.Fprintf(os.Stderr, "results:     %d\n", st.Results)
	// CPU sums each task's own clock and exceeds wall on multi-core runs;
	// wall is what the user waited for the candidate stage.
	fmt.Fprintf(os.Stderr, "candgen:     %v cpu, %v wall\n", st.CandTime+st.PartitionTime, st.CandWall)
	fmt.Fprintf(os.Stderr, "verify:      %v\n", st.VerifyTime)
	fmt.Fprintf(os.Stderr, "verifier:    %d DPs avoided, %d keyroots skipped, %d band aborts, strategy %dL/%dR\n",
		st.DPAvoided, st.KeyrootsSkipped, st.BandAborts, st.StrategyLeft, st.StrategyRight)
	fmt.Fprintf(os.Stderr, "total:       %v cpu\n", st.Total())
	for _, stage := range st.Stages {
		fmt.Fprintf(os.Stderr, "stage %-6s %d in, %d pruned, %d out\n",
			stage.Name+":", stage.In, stage.Pruned, stage.Out())
	}
	if st.IndexedSubgraphs > 0 {
		fmt.Fprintf(os.Stderr, "subgraphs:   %d indexed, %d probes, %d match tests (%d hits)\n",
			st.IndexedSubgraphs, st.SubgraphProbes, st.MatchTests, st.MatchHits)
	}
	if st.PostingsScanned > 0 || st.IndexBuildTime > 0 {
		fmt.Fprintf(os.Stderr, "tokenindex:  built in %v, %d postings scanned, %d partners skipped by count, %d tombstones crossed\n",
			st.IndexBuildTime, st.PostingsScanned, st.SkippedByCount, st.PostingsTombstoned)
	}
}

// runWatch drives -watch: a standing incremental self join fed one mutation
// per stdin line, emitting the result delta after each. Adds print
// "+\ti\tj\tdist" for every pair entering the result; removals print
// "-\ti\tj\tdist" for every standing pair they retract. Output is flushed
// per mutation, so a pipe consumer sees each delta as it happens.
func runWatch(input, format, store string, tau, topk int, other, method, prefilter string, shards, workers int, timeout time.Duration, stats, quiet bool) {
	if tau < 0 {
		fail("threshold must be non-negative, got %d", tau)
	}
	switch {
	case topk > 0:
		fail("-watch does not combine with -topk")
	case other != "":
		fail("-watch does not combine with -other")
	case prefilter != "":
		fail("-watch does not combine with -prefilter")
	case shards > 1:
		fail("-watch does not combine with -shards")
	case method != "PRT":
		fail("-watch supports -method PRT only (the incremental stream is PartSJ)")
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	inc := treejoin.NewIncremental(tau, treejoin.WithWorkers(workers))
	out := bufio.NewWriter(os.Stdout)
	// Every flush is checked: a full disk or a closed pipe must surface as a
	// non-zero exit, not an exit 0 with silently truncated deltas.
	flushOut := func() {
		if err := out.Flush(); err != nil {
			fail("watch: writing output: %v", err)
		}
	}
	defer flushOut()

	// With -store, every mutation journals through the store's write-ahead
	// log before its delta is emitted, and the ids in deltas and removal
	// lines are the store's stable tree ids (the incremental stream numbers
	// trees in add order, so the two id spaces diverge once a reopened store
	// has gaps — the maps below translate between them).
	var cp *treejoin.Corpus
	var incToStore []int // incremental id → store id
	storeToInc := map[int]int{}
	if store != "" {
		var err error
		cp, err = treejoin.Open(store)
		if err != nil {
			fail("%v", err)
		}
	}
	emit := func(sign byte, pairs []treejoin.Pair) {
		if quiet {
			return
		}
		for _, p := range pairs {
			i, j := p.I, p.J
			if cp != nil {
				i, j = incToStore[i], incToStore[j]
			}
			fmt.Fprintf(out, "%c\t%d\t%d\t%d\n", sign, i, j, p.Dist)
		}
	}
	// addTree is the single add path: durably journal first (when persistent),
	// then feed the incremental join and emit the entering pairs.
	addTree := func(t *treejoin.Tree) error {
		if cp != nil {
			ids, err := cp.Add(t)
			if err != nil {
				return err
			}
			storeToInc[ids[0]] = len(incToStore)
			incToStore = append(incToStore, ids[0])
		}
		emit('+', inc.Add(t))
		return nil
	}

	lt := treejoin.NewLabelTable()
	if cp != nil {
		// The store seeds the stream: its live trees enter the standing join
		// in position order, keeping their persistent ids.
		lt = cp.Labels()
		for i := 0; i < cp.Len(); i++ {
			storeToInc[cp.ID(i)] = len(incToStore)
			incToStore = append(incToStore, cp.ID(i))
			emit('+', inc.Add(cp.Tree(i)))
		}
		flushOut()
	}
	if input != "" {
		if cp != nil {
			if f, _ := cli.DetectFormat(input, format); f == cli.FormatBinary {
				fail("-store ingests text formats only (the store owns the label table)")
			}
		}
		ts, seedLT, err := cli.Load(input, format, lt)
		if err != nil {
			fail("%v", err)
		}
		lt = seedLT // binary datasets carry their own table; stdin interns into it
		for _, t := range ts {
			if err := addTree(t); err != nil {
				fail("%v", err)
			}
		}
		flushOut()
	}

	// Stdin is scanned on its own goroutine so the mutation loop can honor
	// -timeout and the first interrupt even while blocked between lines (a
	// pipe that goes idle would otherwise pin the process in read(2) past
	// the deadline). After cancellation the scanner goroutine may stay
	// parked in Scan; process exit reaps it.
	lines := make(chan string)
	scanErr := make(chan error, 1)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<26)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-ctx.Done():
				return
			}
		}
		scanErr <- sc.Err()
	}()
	interrupted := false
loop:
	for {
		var raw string
		var ok bool
		select {
		case <-ctx.Done():
			interrupted = true
			break loop
		case raw, ok = <-lines:
			if !ok {
				break loop
			}
		}
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Bad lines warn and continue: a watch is a long-running daemon
		// holding a standing result, and one producer typo must not
		// discard it (the unknown-id case below sets the precedent).
		if strings.HasPrefix(line, "-") {
			id, err := strconv.Atoi(strings.TrimSpace(line[1:]))
			if err != nil {
				fmt.Fprintf(os.Stderr, "treejoin: watch: bad removal %q (want -N)\n", line)
				continue
			}
			incID := id
			if cp != nil {
				// N is a store id; translate, journal the tombstone, then
				// retract. A crash after Remove returns loses nothing: replay
				// restores the removal, and the standing result is rebuilt
				// from the surviving trees on the next watch.
				mapped, ok := storeToInc[id]
				if !ok {
					fmt.Fprintf(os.Stderr, "treejoin: watch: no live tree with id %d\n", id)
					continue
				}
				if cp.Remove(id) != 1 {
					fmt.Fprintf(os.Stderr, "treejoin: watch: store lost id %d\n", id)
					continue
				}
				delete(storeToInc, id)
				incID = mapped
			}
			if inc.Remove(incID) {
				emit('-', inc.Retracted())
			} else if cp == nil {
				fmt.Fprintf(os.Stderr, "treejoin: watch: no live tree with id %d\n", id)
			}
		} else {
			t, err := treejoin.ParseBracket(line, lt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "treejoin: watch: skipping line: %v\n", err)
				continue
			}
			if err := addTree(t); err != nil {
				fmt.Fprintf(os.Stderr, "treejoin: watch: %v\n", err)
				continue
			}
		}
		flushOut()
	}
	// Cancellation may surface as the closed lines channel rather than the
	// ctx case (the select picks arbitrarily when both are ready), so the
	// interrupted outcome is decided by the context itself.
	if ctx.Err() != nil {
		interrupted = true
	}
	select {
	case err := <-scanErr:
		if err != nil {
			fail("watch: reading stdin: %v", err)
		}
	default:
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "treejoin: %v — deltas are partial\n", ctx.Err())
	}
	if stats || interrupted {
		st := inc.Stats()
		fmt.Fprintf(os.Stderr, "trees:       %d added, %d live\n", inc.Len(), inc.Live())
		fmt.Fprintf(os.Stderr, "standing:    %d pairs (%d retracted over the run)\n", st.Results-st.PairsRetracted, st.PairsRetracted)
		fmt.Fprintf(os.Stderr, "candidates:  %d\n", st.Candidates)
		fmt.Fprintf(os.Stderr, "candgen:     %v cpu\n", st.CandTime+st.PartitionTime)
		fmt.Fprintf(os.Stderr, "verify:      %v\n", st.VerifyTime)
		if cp != nil {
			printStoreStats(cp)
		}
	}
	if cp != nil {
		if err := cp.Close(); err != nil {
			fail("watch: %v", err)
		}
	}
	if interrupted {
		flushOut()
		stopProfiles()
		os.Exit(1)
	}
}

// stopProfiles finalises whatever -cpuprofile/-memprofile started. Explicit
// os.Exit sites (fail, the interrupted-run exits) bypass main's defers, so
// every one of them calls it directly; it is idempotent and a no-op when no
// profiling was requested.
var stopProfiles = func() {}

// startProfiles begins CPU profiling (when cpu is non-empty) and installs the
// finaliser into stopProfiles: stop and flush the CPU profile, then write the
// heap allocation profile (when mem is non-empty) after a final GC so the
// numbers reflect live retention, not collection timing.
func startProfiles(cpu, mem string) error {
	if cpu == "" && mem == "" {
		return nil
	}
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		cpuF = f
	}
	var once sync.Once
	stopProfiles = func() {
		once.Do(func() {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			if mem == "" {
				return
			}
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "treejoin: memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "treejoin: memprofile: %v\n", err)
			}
			f.Close()
		})
	}
	return nil
}

func fail(format string, args ...any) {
	stopProfiles()
	fmt.Fprintf(os.Stderr, "treejoin: "+format+"\n", args...)
	os.Exit(1)
}
