// Command treejoin runs a tree similarity join over a dataset file and
// prints the matching pairs.
//
// Usage:
//
//	treejoin -input trees.txt -tau 2 [-method PRT|STR|SET|BF|HIST|EUL|PQG]
//	         [-prefilter HIST,SET] [-workers 4] [-shards 4] [-timeout 30s]
//	         [-format bracket|newick|binary] [-stats] [-quiet]
//	treejoin -input a.txt -other b.txt -tau 2
//	treejoin -input trees.txt -topk 10
//
// The dataset holds one tree per line (bracket or Newick notation) or is a
// binary dataset written by datagen -format binary; -format auto-detects
// from the extension (.tjds → binary, .nwk/.newick/.tree → newick). Each
// output line is "i<TAB>j<TAB>dist" (0-based positions of the two trees).
// With -other B the join is the cross join of the two files (i indexes
// -input, j indexes -other; text formats only, so the files share a label
// table). With -prefilter, the named filter stages run in front of the
// method, and -stats attributes the pruning per stage. With -topk K the
// threshold is ignored and the K closest pairs are printed instead. With
// -stats, a summary of where the join spent its time follows on stderr.
//
// Joins are cancellable: -timeout bounds the run, and an interrupt (Ctrl-C)
// stops it early. Either way the pairs found so far are printed and the
// exit status is 1; threshold joins also print their partial per-stage
// statistics to stderr (-topk aggregates rounds and has none to report).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"treejoin"
	"treejoin/internal/cli"
)

func main() {
	var (
		input     = flag.String("input", "", "dataset file (required)")
		other     = flag.String("other", "", "second dataset file: cross join -input against -other")
		format    = flag.String("format", "auto", "input format: bracket, newick, binary, or auto")
		tau       = flag.Int("tau", 1, "TED threshold τ ≥ 0")
		topk      = flag.Int("topk", 0, "report the K closest pairs instead of a threshold join")
		method    = flag.String("method", "PRT", "join method: PRT, STR, SET, BF, HIST, EUL, or PQG")
		prefilter = flag.String("prefilter", "", "comma-separated filter stages to chain in front of the method (HIST, STR, SET, EUL, PQG)")
		workers   = flag.Int("workers", 0, "parallel candidate-generation and TED-verification workers")
		shards    = flag.Int("shards", 0, "decompose the PRT join into fragment-and-replicate shards")
		timeout   = flag.Duration("timeout", 0, "abort the join after this duration (0: no limit)")
		stats     = flag.Bool("stats", false, "print execution statistics to stderr")
		quiet     = flag.Bool("quiet", false, "suppress pair output (useful with -stats)")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "treejoin: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	if *tau < 0 {
		fail("threshold must be non-negative, got %d", *tau)
	}
	var m treejoin.Method
	switch *method {
	case "PRT":
		m = treejoin.MethodPartSJ
	case "STR":
		m = treejoin.MethodSTR
	case "SET":
		m = treejoin.MethodSET
	case "BF":
		m = treejoin.MethodBruteForce
	case "HIST":
		m = treejoin.MethodHistogram
	case "EUL":
		m = treejoin.MethodEulerString
	case "PQG":
		m = treejoin.MethodPQGram
	default:
		fail("unknown method %q (want PRT, STR, SET, BF, HIST, EUL, or PQG)", *method)
	}

	ts, lt, err := cli.Load(*input, *format, nil)
	if err != nil {
		fail("%v", err)
	}
	opts := []treejoin.Option{treejoin.WithMethod(m), treejoin.WithWorkers(*workers)}
	if *shards > 1 {
		opts = append(opts, treejoin.WithShards(*shards))
	}
	if *prefilter != "" {
		var fs []treejoin.Prefilter
		for _, name := range strings.Split(*prefilter, ",") {
			switch strings.TrimSpace(name) {
			case "HIST":
				fs = append(fs, treejoin.PrefilterHistogram)
			case "STR":
				fs = append(fs, treejoin.PrefilterSTR)
			case "SET":
				fs = append(fs, treejoin.PrefilterSET)
			case "EUL":
				fs = append(fs, treejoin.PrefilterEulerString)
			case "PQG":
				fs = append(fs, treejoin.PrefilterPQGram)
			default:
				fail("unknown prefilter %q (want HIST, STR, SET, EUL, or PQG)", name)
			}
		}
		opts = append(opts, treejoin.WithPrefilter(fs...))
	}

	// The run context: bounded by -timeout, cancelled by the first
	// interrupt (a second interrupt kills the process the usual way).
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()
	// Once the context is done (first interrupt or timeout), unregister the
	// handler so a second interrupt kills the process the usual way instead
	// of being swallowed while partial results print.
	context.AfterFunc(ctx, stop)

	corpus, err := treejoin.NewCorpus(ts)
	if err != nil {
		fail("%v", err)
	}

	var pairs []treejoin.Pair
	var st treejoin.Stats
	var runErr error
	switch {
	case *other != "":
		if *topk > 0 {
			fail("-topk does not combine with -other")
		}
		// The two text files must intern into one label table; the binary
		// format carries its own table and cannot be aligned here.
		if f, _ := cli.DetectFormat(*other, *format); f == cli.FormatBinary {
			fail("-other requires a text format (shared label table)")
		}
		bs, _, err := cli.Load(*other, *format, lt)
		if err != nil {
			fail("%v", err)
		}
		otherCorpus, err := treejoin.NewCorpus(bs)
		if err != nil {
			fail("%v", err)
		}
		pairs, st, runErr = corpus.Join(ctx, otherCorpus, *tau, opts...)
	case *topk > 0:
		// TopK runs expanding-threshold PartSJ passes; reject flags it would
		// silently ignore rather than pretend they took effect.
		if *method != "PRT" {
			fail("-topk supports -method PRT only")
		}
		if *prefilter != "" {
			fail("-topk does not combine with -prefilter")
		}
		pairs, runErr = corpus.TopK(ctx, *topk, opts...)
	default:
		pairs, st, runErr = corpus.SelfJoin(ctx, *tau, opts...)
	}
	interrupted := runErr != nil && (errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded))
	if runErr != nil && !interrupted {
		fail("%v", runErr)
	}

	if !*quiet {
		w := bufio.NewWriter(os.Stdout)
		for _, p := range pairs {
			fmt.Fprintf(w, "%d\t%d\t%d\n", p.I, p.J, p.Dist)
		}
		if err := w.Flush(); err != nil {
			fail("%v", err)
		}
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "treejoin: %v — results are partial\n", runErr)
	}
	if (*stats || interrupted) && *topk == 0 {
		printStats(m, *tau, st)
	}
	if interrupted {
		os.Exit(1)
	}
}

// printStats writes the execution summary — including per-stage filter
// attribution — to stderr. On an interrupted run the counters cover the
// work done up to the abort.
func printStats(m treejoin.Method, tau int, st treejoin.Stats) {
	fmt.Fprintf(os.Stderr, "trees:       %d\n", st.Trees)
	fmt.Fprintf(os.Stderr, "method:      %s, tau=%d\n", m, tau)
	if st.Source != "" {
		fmt.Fprintf(os.Stderr, "source:      %s\n", st.Source)
	}
	fmt.Fprintf(os.Stderr, "candidates:  %d\n", st.Candidates)
	fmt.Fprintf(os.Stderr, "results:     %d\n", st.Results)
	// CPU sums each task's own clock and exceeds wall on multi-core runs;
	// wall is what the user waited for the candidate stage.
	fmt.Fprintf(os.Stderr, "candgen:     %v cpu, %v wall\n", st.CandTime+st.PartitionTime, st.CandWall)
	fmt.Fprintf(os.Stderr, "verify:      %v\n", st.VerifyTime)
	fmt.Fprintf(os.Stderr, "verifier:    %d DPs avoided, %d keyroots skipped, %d band aborts\n",
		st.DPAvoided, st.KeyrootsSkipped, st.BandAborts)
	fmt.Fprintf(os.Stderr, "total:       %v cpu\n", st.Total())
	for _, stage := range st.Stages {
		fmt.Fprintf(os.Stderr, "stage %-6s %d in, %d pruned, %d out\n",
			stage.Name+":", stage.In, stage.Pruned, stage.Out())
	}
	if st.IndexedSubgraphs > 0 {
		fmt.Fprintf(os.Stderr, "subgraphs:   %d indexed, %d probes, %d match tests (%d hits)\n",
			st.IndexedSubgraphs, st.SubgraphProbes, st.MatchTests, st.MatchHits)
	}
	if st.PostingsScanned > 0 || st.IndexBuildTime > 0 {
		fmt.Fprintf(os.Stderr, "tokenindex:  built in %v, %d postings scanned, %d partners skipped by count\n",
			st.IndexBuildTime, st.PostingsScanned, st.SkippedByCount)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "treejoin: "+format+"\n", args...)
	os.Exit(1)
}
