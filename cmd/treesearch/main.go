// Command treesearch builds a similarity-search index over a dataset and
// answers query trees: each query prints the positions of all dataset trees
// within the TED threshold, or — with -k — its k nearest neighbours.
//
// Usage:
//
//	treesearch -input trees.txt -tau 2 -query '{a{b}{c}}'
//	treesearch -input trees.txt -tau 2 -queries queries.txt
//	treesearch -input trees.txt -k 5 -query '{a{b}{c}}'
//
// The dataset may be bracket text, Newick text, or a binary dataset
// (-format, auto-detected from the extension by default); queries use the
// dataset's text syntax (bracket for binary datasets). Output lines are
// "q<TAB>i<TAB>dist": query number, dataset position, distance. Threshold
// results come in ascending dataset order; -k results in ascending distance.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"treejoin"
	"treejoin/internal/cli"
)

func main() {
	var (
		input   = flag.String("input", "", "dataset file (required)")
		format  = flag.String("format", "auto", "input format: bracket, newick, binary, or auto")
		tau     = flag.Int("tau", 1, "TED threshold τ ≥ 0")
		k       = flag.Int("k", 0, "report the k nearest neighbours instead of a threshold search")
		query   = flag.String("query", "", "a single query tree")
		queries = flag.String("queries", "", "file of query trees, one per line")
	)
	flag.Parse()
	if *input == "" || (*query == "" && *queries == "") {
		fmt.Fprintln(os.Stderr, "treesearch: -input and one of -query/-queries are required")
		flag.Usage()
		os.Exit(2)
	}

	ts, lt, err := cli.Load(*input, *format, nil)
	if err != nil {
		fail("%v", err)
	}
	fmtName, err := cli.DetectFormat(*input, *format)
	if err != nil {
		fail("%v", err)
	}
	qFormat := fmtName
	if qFormat == cli.FormatBinary {
		qFormat = cli.FormatBracket
	}
	var qs []*treejoin.Tree
	if *query != "" {
		q, err := cli.ParseQuery(*query, qFormat, lt)
		if err != nil {
			fail("query: %v", err)
		}
		qs = append(qs, q)
	}
	if *queries != "" {
		f, err := os.Open(*queries)
		if err != nil {
			fail("%v", err)
		}
		var more []*treejoin.Tree
		if qFormat == cli.FormatNewick {
			more, err = treejoin.ReadNewickLines(f, lt)
		} else {
			more, err = treejoin.ReadBracketLines(f, lt)
		}
		f.Close()
		if err != nil {
			fail("%v", err)
		}
		qs = append(qs, more...)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *k > 0 {
		knn := treejoin.NewKNN(ts)
		for qi, q := range qs {
			for _, m := range knn.Nearest(q, *k) {
				fmt.Fprintf(w, "%d\t%d\t%d\n", qi, m.Pos, m.Dist)
			}
		}
		return
	}
	ix := treejoin.NewIndex(ts, *tau)
	for qi, q := range qs {
		for _, m := range ix.Search(q) {
			fmt.Fprintf(w, "%d\t%d\t%d\n", qi, m.Pos, m.Dist)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "treesearch: "+format+"\n", args...)
	os.Exit(1)
}
