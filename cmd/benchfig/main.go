// Command benchfig regenerates the paper's evaluation figures (runtime and
// candidate counts for Figures 10–14) and the partitioning/position-filter
// ablations, printing each as a text table.
//
// Usage:
//
//	benchfig -figure all -scale 0.01 -seed 1 [-workers 4] [-markdown] [-v]
//
// -figure selects one of: 10, 11, 12, 13, 14, ablation, position, verify,
// panorama, pipeline, all
// (Figures 10/11 share runs, as do 12/13, so asking for either member of a
// pair runs both and prints the requested one).
// -scale multiplies the paper's collection cardinalities (100K/50K/10K/10K).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"treejoin/internal/bench"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "10|11|12|13|14|ablation|position|verify|panorama|pipeline|all")
		scale    = flag.Float64("scale", 0.01, "fraction of the paper's dataset cardinalities")
		seed     = flag.Int64("seed", 1, "generator seed")
		workers  = flag.Int("workers", 0, "parallel TED verification workers (0 = sequential)")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		verbose  = flag.Bool("v", false, "print per-join progress to stderr")
	)
	flag.Parse()

	cfg := bench.Config{Scale: *scale, Seed: *seed, Workers: *workers}
	if *verbose {
		cfg.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	render := func(tabs ...*bench.Table) {
		for _, t := range tabs {
			if *markdown {
				t.RenderMarkdown(os.Stdout)
			} else {
				t.Render(os.Stdout)
			}
		}
	}

	start := time.Now()
	switch *figure {
	case "10":
		rt, _ := bench.Figure10And11(cfg)
		render(rt...)
	case "11":
		_, ct := bench.Figure10And11(cfg)
		render(ct...)
	case "12":
		rt, _ := bench.Figure12And13(cfg)
		render(rt...)
	case "13":
		_, ct := bench.Figure12And13(cfg)
		render(ct...)
	case "14":
		rt, ct := bench.Figure14(cfg)
		render(rt...)
		render(ct...)
	case "ablation":
		render(bench.AblationPartitioning(cfg))
	case "position":
		render(bench.AblationPosition(cfg))
	case "verify":
		render(bench.AblationVerification(cfg))
	case "panorama":
		render(bench.BaselinePanorama(cfg))
	case "pipeline":
		render(bench.FilterPipeline(cfg))
	case "all":
		rt10, ct11 := bench.Figure10And11(cfg)
		render(rt10...)
		render(ct11...)
		rt12, ct13 := bench.Figure12And13(cfg)
		render(rt12...)
		render(ct13...)
		rt14, ct14 := bench.Figure14(cfg)
		render(rt14...)
		render(ct14...)
		render(bench.AblationPartitioning(cfg))
		render(bench.AblationPosition(cfg))
		render(bench.AblationVerification(cfg))
		render(bench.BaselinePanorama(cfg))
		render(bench.FilterPipeline(cfg))
	default:
		fmt.Fprintf(os.Stderr, "benchfig: unknown figure %q\n", *figure)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchfig: done in %v (scale %.3g, seed %d)\n", time.Since(start).Round(time.Millisecond), *scale, *seed)
}
