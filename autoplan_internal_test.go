package treejoin

import (
	"context"
	"strings"
	"testing"
	"time"

	"treejoin/internal/sim"
	"treejoin/internal/synth"
)

// seedPlanner folds deterministic synthetic observations into cp's cost
// model: a cheap, lethal PQG stage and an expensive, weak HIST stage, an
// affordable token index, and a ruinously slow sorted loop — all observed,
// all at tau. Three folds push every bucket past the trust and
// run-backed thresholds.
func seedPlanner(cp *Corpus, n, tau int) {
	ts := cp.state.Load().ts
	stages := func() []sim.StageStats {
		return []sim.StageStats{
			{Name: "HIST", In: 10000, Pruned: 2000, SampledNs: 320000, Sampled: 160}, // 2000ns/pair, kill 0.2
			{Name: "PQG", In: 8000, Pruned: 7200, SampledNs: 16000, Sampled: 160},    // 100ns/pair, kill 0.9
		}
	}
	for i := 0; i < 3; i++ {
		cp.planner.Observe(&sim.Stats{
			Trees:          n,
			Source:         "token-index(euler-grams/q=3)",
			Candidates:     500,
			CandWall:       5 * time.Millisecond,
			IndexBuildTime: time.Millisecond,
			VerifyTime:     25 * time.Millisecond,
			Stages:         stages(),
		}, ts, -1, tau, 0)
		cp.planner.Observe(&sim.Stats{
			Trees:      n,
			Source:     "sorted-loop",
			Candidates: 500,
			CandWall:   500 * time.Millisecond,
			VerifyTime: 25 * time.Millisecond,
			Stages:     stages(),
		}, ts, -1, tau, 0)
	}
}

// TestPlannedStageOrderAttribution is the executed-order regression test:
// when the planner reorders the filter chain (here HIST→PQG becomes
// PQG→HIST, because the seeded model says PQG is cheap and lethal),
// Stats.Stages must report the stages in the order they actually ran — with
// consistent flow between them — and Stats.Plan must record the same chain.
// Results must match the fixed default plan exactly.
func TestPlannedStageOrderAttribution(t *testing.T) {
	ctx := context.Background()
	const n = 300
	ts := synth.Generate(synth.SyntheticParams(n, 3, 5, 20, 15, 11))
	cp, err := NewCorpus(ts)
	if err != nil {
		t.Fatal(err)
	}
	const tau = 2
	if wp := cp.planner.WindowPairs(ts, -1, tau, 0); wp < minPlanPairsForTest() {
		t.Fatalf("corpus too small to engage the planner: %d window pairs", wp)
	}
	seedPlanner(cp, n, tau)

	var st Stats
	got, _, err := cp.SelfJoin(ctx, tau,
		WithMethod(MethodPQGram), WithPrefilter(PrefilterHistogram), WithStats(&st))
	if err != nil {
		t.Fatal(err)
	}

	if len(st.Stages) != 2 || st.Stages[0].Name != "PQG" || st.Stages[1].Name != "HIST" {
		t.Fatalf("executed stage order not reported: %+v (plan %+v)", st.Stages, st.Plan)
	}
	if st.Stages[1].In != st.Stages[0].Out() {
		t.Fatalf("stage flow broken: PQG out %d, HIST in %d", st.Stages[0].Out(), st.Stages[1].In)
	}
	if len(st.Plan.Chain) != 2 || st.Plan.Chain[0] != "PQG" || st.Plan.Chain[1] != "HIST" {
		t.Fatalf("Stats.Plan.Chain = %v, want [PQG HIST]", st.Plan.Chain)
	}
	if st.Plan.Origin != "observed" {
		t.Fatalf("plan origin = %q, want observed", st.Plan.Origin)
	}
	if st.Plan.Source != "token-index" {
		t.Fatalf("plan source = %q, want token-index", st.Plan.Source)
	}
	if !strings.HasPrefix(st.Source, "token-index(") {
		t.Fatalf("effective source = %q, want token-index(...)", st.Source)
	}

	// The reordered plan must not change a single pair.
	var fixed Stats
	want, _, err := cp.SelfJoin(ctx, tau,
		WithMethod(MethodPQGram), WithPrefilter(PrefilterHistogram),
		WithFixedPlan(), WithStats(&fixed))
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Plan.Origin != "fixed" || len(fixed.Stages) != 2 || fixed.Stages[0].Name != "HIST" {
		t.Fatalf("fixed plan did not run the default chain: %+v (plan %+v)", fixed.Stages, fixed.Plan)
	}
	if len(got) != len(want) {
		t.Fatalf("planned join found %d pairs, fixed plan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestPlanRecordedOnEveryRun asserts satellite invariants of Stats.Plan: a
// fixed record on PartSJ and brute-force runs and on the legacy free
// functions, carrying the executed chain.
func TestPlanRecordedOnEveryRun(t *testing.T) {
	ctx := context.Background()
	ts := synth.Generate(synth.SyntheticParams(60, 3, 5, 20, 12, 5))
	cp, err := NewCorpus(ts)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if _, _, err := cp.SelfJoin(ctx, 1, WithPrefilter(PrefilterHistogram), WithStats(&st)); err != nil {
		t.Fatal(err)
	}
	if st.Plan.Source != "partsj" || len(st.Plan.Chain) != 1 || st.Plan.Chain[0] != "HIST" || st.Plan.Origin != "fixed" {
		t.Fatalf("PartSJ plan record = %+v", st.Plan)
	}
	if _, _, err := cp.SelfJoin(ctx, 1, WithMethod(MethodBruteForce), WithStats(&st)); err != nil {
		t.Fatal(err)
	}
	if st.Plan.Source != "sorted-loop" || len(st.Plan.Chain) != 0 || st.Plan.PrefixC != 0 {
		t.Fatalf("brute-force plan record = %+v", st.Plan)
	}
	_, st2 := SelfJoin(ts, 1, WithMethod(MethodPQGram))
	if st2.Plan.Source != "token-index" || st2.Plan.Origin != "fixed" || st2.Plan.PrefixC != 12 {
		t.Fatalf("legacy free-function plan record = %+v", st2.Plan)
	}
}

func minPlanPairsForTest() int64 { return 4096 }
