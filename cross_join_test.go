// Property tests for the engine-backed public API: every method — the six
// historical ones plus MethodPQGram — returns oracle-identical results for
// self and cross joins on randomized corpora, and the execution knobs
// (WithWorkers, WithShards, WithPrefilter) never change the result set.
package treejoin_test

import (
	"fmt"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

var allMethods = []treejoin.Method{
	treejoin.MethodPartSJ,
	treejoin.MethodSTR,
	treejoin.MethodSET,
	treejoin.MethodBruteForce,
	treejoin.MethodHistogram,
	treejoin.MethodEulerString,
	treejoin.MethodPQGram,
}

func samePairs(t *testing.T, label string, got, want []treejoin.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestCrossJoinMethodAgreement: Join(a, b) matches the BruteForce oracle for
// every method on randomized corpora of three shape profiles.
func TestCrossJoinMethodAgreement(t *testing.T) {
	corpora := []struct {
		name string
		gen  func(seed int64) []*treejoin.Tree
	}{
		{"synthetic", func(seed int64) []*treejoin.Tree { return synth.Synthetic(50, seed) }},
		{"treebank", func(seed int64) []*treejoin.Tree { return synth.Treebank(40, seed) }},
		{"sentiment", func(seed int64) []*treejoin.Tree { return synth.Sentiment(40, seed) }},
	}
	for _, corpus := range corpora {
		for seed := int64(1); seed <= 2; seed++ {
			ts := corpus.gen(seed)
			a, b := ts[:len(ts)/3], ts[len(ts)/3:]
			for _, tau := range []int{0, 2, 4} {
				want, _ := treejoin.Join(a, b, tau, treejoin.WithMethod(treejoin.MethodBruteForce))
				for _, m := range allMethods {
					if m == treejoin.MethodBruteForce {
						continue
					}
					got, st := treejoin.Join(a, b, tau, treejoin.WithMethod(m))
					samePairs(t, fmt.Sprintf("%s/seed=%d/τ=%d/%v", corpus.name, seed, tau, m), got, want)
					if st.Results != int64(len(want)) {
						t.Fatalf("%v stats.Results = %d, want %d", m, st.Results, len(want))
					}
				}
			}
		}
	}
}

// TestSelfJoinMethodAgreement: the same property for SelfJoin, which the
// historical per-method tests only covered method by method.
func TestSelfJoinMethodAgreement(t *testing.T) {
	ts := synth.Synthetic(60, 17)
	for _, tau := range []int{1, 3} {
		want, _ := treejoin.SelfJoin(ts, tau, treejoin.WithMethod(treejoin.MethodBruteForce))
		for _, m := range allMethods {
			got, _ := treejoin.SelfJoin(ts, tau, treejoin.WithMethod(m))
			samePairs(t, fmt.Sprintf("τ=%d/%v", tau, m), got, want)
		}
	}
}

// TestParallelismInvariance: WithWorkers and WithShards change the execution
// plan, never the result set — for every method, self and cross.
func TestParallelismInvariance(t *testing.T) {
	ts := synth.Treebank(50, 23)
	a, b := ts[:20], ts[20:]
	const tau = 2
	for _, m := range allMethods {
		self, _ := treejoin.SelfJoin(ts, tau, treejoin.WithMethod(m))
		cross, _ := treejoin.Join(a, b, tau, treejoin.WithMethod(m))
		for _, workers := range []int{2, 4} {
			got, _ := treejoin.SelfJoin(ts, tau, treejoin.WithMethod(m), treejoin.WithWorkers(workers))
			samePairs(t, fmt.Sprintf("self/%v/w=%d", m, workers), got, self)
			got, _ = treejoin.Join(a, b, tau, treejoin.WithMethod(m), treejoin.WithWorkers(workers))
			samePairs(t, fmt.Sprintf("cross/%v/w=%d", m, workers), got, cross)
		}
	}
	sharded, _ := treejoin.SelfJoin(ts, tau, treejoin.WithShards(4), treejoin.WithWorkers(4))
	want, _ := treejoin.SelfJoin(ts, tau)
	samePairs(t, "sharded", sharded, want)
}

// TestPrefilterInvariance: chaining any prefilter combination in front of
// any method leaves results untouched and attributes stage kills coherently.
func TestPrefilterInvariance(t *testing.T) {
	ts := synth.Synthetic(50, 29)
	a, b := ts[:20], ts[20:]
	const tau = 2
	chains := [][]treejoin.Prefilter{
		{treejoin.PrefilterHistogram},
		{treejoin.PrefilterSET, treejoin.PrefilterSTR},
		{treejoin.PrefilterHistogram, treejoin.PrefilterPQGram, treejoin.PrefilterEulerString},
	}
	for _, m := range allMethods {
		self, _ := treejoin.SelfJoin(ts, tau, treejoin.WithMethod(m))
		cross, _ := treejoin.Join(a, b, tau, treejoin.WithMethod(m))
		for ci, chain := range chains {
			got, st := treejoin.SelfJoin(ts, tau, treejoin.WithMethod(m), treejoin.WithPrefilter(chain...))
			samePairs(t, fmt.Sprintf("self/%v/chain=%d", m, ci), got, self)
			if len(st.Stages) < len(chain) {
				t.Fatalf("%v chain %d: %d stages reported, want ≥ %d", m, ci, len(st.Stages), len(chain))
			}
			for k := 1; k < len(chain); k++ {
				if st.Stages[k].In != st.Stages[k-1].Out() {
					t.Fatalf("%v chain %d: stage %d in %d ≠ stage %d out %d",
						m, ci, k, st.Stages[k].In, k-1, st.Stages[k-1].Out())
				}
			}
			got, _ = treejoin.Join(a, b, tau, treejoin.WithMethod(m), treejoin.WithPrefilter(chain...))
			samePairs(t, fmt.Sprintf("cross/%v/chain=%d", m, ci), got, cross)
		}
	}
	// Prefilter + workers + hybrid verification compose.
	got, _ := treejoin.SelfJoin(ts, tau,
		treejoin.WithPrefilter(treejoin.PrefilterHistogram),
		treejoin.WithWorkers(4), treejoin.WithHybridVerification())
	want, _ := treejoin.SelfJoin(ts, tau)
	samePairs(t, "composed", got, want)
}

// TestStageStatsExposed: the public Stats surface carries the per-stage
// attribution for a plain baseline method too (its own filter is a stage).
func TestStageStatsExposed(t *testing.T) {
	ts := synth.Synthetic(40, 31)
	_, st := treejoin.SelfJoin(ts, 1, treejoin.WithMethod(treejoin.MethodHistogram))
	if len(st.Stages) != 1 || st.Stages[0].Name != "HIST" {
		t.Fatalf("stages = %+v", st.Stages)
	}
	if st.Stages[0].Out() != st.Candidates {
		t.Fatalf("stage out %d ≠ candidates %d", st.Stages[0].Out(), st.Candidates)
	}
}
