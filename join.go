package treejoin

import (
	"fmt"

	"treejoin/internal/baseline"
	"treejoin/internal/core"
	"treejoin/internal/sim"
)

// Method selects the join algorithm. All methods return identical result
// sets; they differ in filtering strategy and therefore speed.
type Method int

const (
	// MethodPartSJ is the paper's partition-based join (PRT): the default
	// and fastest method.
	MethodPartSJ Method = iota
	// MethodSTR filters with preorder/postorder traversal-string edit
	// distance lower bounds (Guha et al.).
	MethodSTR
	// MethodSET filters with the binary branch distance (Yang et al.).
	MethodSET
	// MethodBruteForce verifies every pair within the size window. The
	// ground-truth oracle; use only on small collections.
	MethodBruteForce
	// MethodHistogram filters with statistic lower bounds — leaf count,
	// height, label and degree histograms (Kailing et al.).
	MethodHistogram
	// MethodEulerString filters with the Euler-tour string edit distance
	// lower bound, sed(E1,E2) ≤ 2·TED (Akutsu et al.).
	MethodEulerString
)

func (m Method) String() string {
	switch m {
	case MethodPartSJ:
		return "PRT"
	case MethodSTR:
		return "STR"
	case MethodSET:
		return "SET"
	case MethodBruteForce:
		return "BF"
	case MethodHistogram:
		return "HIST"
	case MethodEulerString:
		return "EUL"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

type config struct {
	method   Method
	workers  int
	shards   int
	position core.PositionFilter
	randPart bool
	hybrid   bool
	seed     int64
}

// Option customises a join call.
type Option func(*config)

// WithMethod selects the join algorithm (default MethodPartSJ).
func WithMethod(m Method) Option { return func(c *config) { c.method = m } }

// WithWorkers verifies candidate pairs on n parallel goroutines (default 1,
// sequential). Candidate generation itself is sequential in every method
// unless WithShards is also given.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithShards decomposes a PartSJ self-join into n intra-shard joins plus the
// necessary cross-shard joins (fragment-and-replicate over the size-sorted
// order) and runs the independent tasks on the WithWorkers pool — the
// paper's §6 parallel/distributed direction. Results are identical to the
// sequential join; total filtering work is higher (each task builds its own
// index), wall-clock time lower once verification no longer dominates.
// Applies to SelfJoin with MethodPartSJ only.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithPaperPositionRanges makes PartSJ use the paper's τ−⌊k/2⌋ postorder
// pruning ranges instead of the proven-sound ±τ default. Slightly fewer
// candidates, but completeness is not guaranteed in adversarial corner cases;
// see DESIGN.md.
func WithPaperPositionRanges() Option {
	return func(c *config) { c.position = core.PositionPaper }
}

// WithoutPositionFilter disables PartSJ's postorder pruning layer (label
// grouping only). Exposed for ablation experiments.
func WithoutPositionFilter() Option {
	return func(c *config) { c.position = core.PositionOff }
}

// WithRandomPartitions replaces PartSJ's balanced MaxMinSize partitioning by
// uniformly random bridging edges (seeded by seed). Exposed for the
// partitioning-scheme ablation; the join remains correct, only slower.
func WithRandomPartitions(seed int64) Option {
	return func(c *config) { c.randPart = true; c.seed = seed }
}

// WithHybridVerification screens PartSJ's candidate pairs with the τ-banded
// traversal-string lower bounds before computing the exact TED. Results are
// identical; verification is typically much faster when the collection
// contains many just-over-threshold near-duplicates. An extension beyond the
// paper (whose PRT verifies with RTED directly); applies to SelfJoin and
// Join with MethodPartSJ.
func WithHybridVerification() Option {
	return func(c *config) { c.hybrid = true }
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c config) coreOptions(tau int) core.Options {
	return core.Options{
		Tau:             tau,
		Position:        c.position,
		RandomPartition: c.randPart,
		HybridVerify:    c.hybrid,
		Seed:            c.seed,
		Workers:         c.workers,
	}
}

// SelfJoin reports every unordered pair of trees in ts whose tree edit
// distance is at most tau, in ascending (I, J) order. All trees must share
// one LabelTable.
func SelfJoin(ts []*Tree, tau int, opts ...Option) ([]Pair, Stats) {
	if tau < 0 {
		panic(fmt.Sprintf("treejoin: negative threshold %d", tau))
	}
	c := buildConfig(opts)
	var pairs []sim.Pair
	var st *sim.Stats
	switch c.method {
	case MethodSTR:
		pairs, st = baseline.STR(ts, baseline.Options{Tau: tau, Workers: c.workers})
	case MethodSET:
		pairs, st = baseline.SET(ts, baseline.Options{Tau: tau, Workers: c.workers})
	case MethodBruteForce:
		pairs, st = baseline.BruteForce(ts, baseline.Options{Tau: tau, Workers: c.workers})
	case MethodHistogram:
		pairs, st = baseline.HIST(ts, baseline.Options{Tau: tau, Workers: c.workers})
	case MethodEulerString:
		pairs, st = baseline.EUL(ts, baseline.Options{Tau: tau, Workers: c.workers})
	default:
		if c.shards > 1 {
			pairs, st = core.ShardedSelfJoin(ts, c.shards, c.coreOptions(tau))
		} else {
			pairs, st = core.SelfJoin(ts, c.coreOptions(tau))
		}
	}
	return pairs, *st
}

// Join reports every cross pair (a ∈ A, b ∈ B) within distance tau; Pair.I
// indexes into a and Pair.J into b. Only MethodPartSJ supports cross joins.
// Both collections must share one LabelTable.
func Join(a, b []*Tree, tau int, opts ...Option) ([]Pair, Stats) {
	if tau < 0 {
		panic(fmt.Sprintf("treejoin: negative threshold %d", tau))
	}
	c := buildConfig(opts)
	if c.method != MethodPartSJ {
		panic("treejoin: Join supports MethodPartSJ only")
	}
	pairs, st := core.Join(a, b, c.coreOptions(tau))
	return pairs, *st
}

// Incremental is a streaming similarity join: trees are added one at a time,
// in any order, and each Add returns the new tree's partners among all
// previously added trees. This serves the paper's closing motivation —
// "streaming workloads where tree objects are inserted and updated at a high
// rate" — with the same PartSJ index built incrementally.
type Incremental struct {
	inner *core.Incremental
}

// NewIncremental returns an empty streaming join with threshold tau.
func NewIncremental(tau int, opts ...Option) *Incremental {
	if tau < 0 {
		panic(fmt.Sprintf("treejoin: negative threshold %d", tau))
	}
	c := buildConfig(opts)
	return &Incremental{inner: core.NewIncremental(c.coreOptions(tau))}
}

// Add inserts t and returns all pairs (existing index, new index) within the
// threshold. The new tree's index is Len()-1 after the call.
func (inc *Incremental) Add(t *Tree) []Pair { return inc.inner.Add(t) }

// Remove deletes the i-th tree from the stream: it no longer appears in the
// results of later Add calls. Positions are stable. Removing an out-of-range
// or already-removed position reports false.
func (inc *Incremental) Remove(i int) bool { return inc.inner.Remove(i) }

// Update replaces the i-th tree with t (Remove followed by Add): it returns
// the replacement's new position and its join partners among the live trees.
func (inc *Incremental) Update(i int, t *Tree) (int, []Pair) { return inc.inner.Update(i, t) }

// Len returns the number of trees added so far, including removed ones.
func (inc *Incremental) Len() int { return inc.inner.Len() }

// Live returns the number of trees added and not yet removed.
func (inc *Incremental) Live() int { return inc.inner.Live() }

// Tree returns the i-th added tree, or nil if it has been removed.
func (inc *Incremental) Tree(i int) *Tree { return inc.inner.Tree(i) }

// Stats returns a snapshot of the accumulated execution statistics.
func (inc *Incremental) Stats() Stats { return inc.inner.Stats() }
