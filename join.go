package treejoin

import (
	"fmt"

	"treejoin/internal/baseline"
	"treejoin/internal/core"
	"treejoin/internal/engine"
	"treejoin/internal/engine/plan"
	"treejoin/internal/pqgram"
	"treejoin/internal/sim"
)

// Method selects the join algorithm. All methods return identical result
// sets; they differ in filtering strategy and therefore speed. Every method
// is a configuration of the same pipeline engine (a candidate source plus a
// chain of sound lower-bound filters; see DESIGN.md), so all of them support
// self joins, cross joins, parallel execution, and prefilter chaining alike.
type Method int

const (
	// MethodPartSJ is the paper's partition-based join (PRT): the default
	// and fastest method.
	MethodPartSJ Method = iota
	// MethodSTR filters with preorder/postorder traversal-string edit
	// distance lower bounds (Guha et al.).
	MethodSTR
	// MethodSET filters with the binary branch distance (Yang et al.).
	MethodSET
	// MethodBruteForce verifies every pair within the size window. The
	// ground-truth oracle; use only on small collections.
	MethodBruteForce
	// MethodHistogram filters with statistic lower bounds — leaf count,
	// height, label and degree histograms (Kailing et al.).
	MethodHistogram
	// MethodEulerString filters with the Euler-tour string edit distance
	// lower bound, sed(E1,E2) ≤ 2·TED (Akutsu et al.).
	MethodEulerString
	// MethodPQGram filters with the Euler-tour q-gram bag lower bound,
	// |G_q(T1) △ G_q(T2)| ≤ 4q·TED — the pq-gram machinery's exact-join
	// cousin. (The pq-gram distance itself approximates TED without bounding
	// it, so the approximate joins stay separate; see internal/pqgram.)
	MethodPQGram
)

func (m Method) String() string {
	switch m {
	case MethodPartSJ:
		return "PRT"
	case MethodSTR:
		return "STR"
	case MethodSET:
		return "SET"
	case MethodBruteForce:
		return "BF"
	case MethodHistogram:
		return "HIST"
	case MethodEulerString:
		return "EUL"
	case MethodPQGram:
		return "PQG"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Prefilter names a cheap pair-level filter stage that can be chained in
// front of any join method with WithPrefilter. Each stage is a sound TED
// lower bound, so chaining never changes the result set — only where the
// pruning work happens (Stats.Stages reports each stage's kill count).
type Prefilter int

const (
	// PrefilterHistogram is the statistics screen (MethodHistogram's
	// filter): the cheapest test per pair, the natural first link.
	PrefilterHistogram Prefilter = iota
	// PrefilterSTR is the traversal-string screen (MethodSTR's filter).
	PrefilterSTR
	// PrefilterSET is the binary branch screen (MethodSET's filter).
	PrefilterSET
	// PrefilterEulerString is the Euler-string screen (MethodEulerString's
	// filter).
	PrefilterEulerString
	// PrefilterPQGram is the Euler-gram bag screen (MethodPQGram's filter).
	PrefilterPQGram
)

func (p Prefilter) String() string {
	switch p {
	case PrefilterHistogram:
		return "HIST"
	case PrefilterSTR:
		return "STR"
	case PrefilterSET:
		return "SET"
	case PrefilterEulerString:
		return "EUL"
	case PrefilterPQGram:
		return "PQG"
	default:
		return fmt.Sprintf("Prefilter(%d)", int(p))
	}
}

func (p Prefilter) stage() engine.PairFilter {
	switch p {
	case PrefilterHistogram:
		return baseline.HISTFilter()
	case PrefilterSTR:
		return baseline.STRFilter()
	case PrefilterSET:
		return baseline.SETFilter()
	case PrefilterEulerString:
		return baseline.EULFilter()
	case PrefilterPQGram:
		return pqgram.Filter(0)
	default:
		panic(fmt.Sprintf("treejoin: unknown prefilter %d", int(p)))
	}
}

type config struct {
	method     Method
	workers    int
	shards     int
	position   core.PositionFilter
	randPart   bool
	hybrid     bool
	unbanded   bool
	sortedLoop bool
	fixedPlan  bool
	planSpecs  []PlanSpec
	seed       int64
	prefilters []Prefilter
	statsDst   *Stats
	indexCap   int

	// Persistent-store knobs (see Open, WithMemtableBudget, WithStoreNoSync,
	// WithSalvage).
	memBudget   int
	storeNoSync bool
	salvage     bool
}

// Option customises a join call.
type Option func(*config)

// WithMethod selects the join algorithm (default MethodPartSJ).
func WithMethod(m Method) Option { return func(c *config) { c.method = m } }

// WithWorkers runs the join on n parallel goroutines: TED verification for
// every method, plus candidate generation wherever the source decomposes —
// the sorted nested loop (WithSortedLoop, MethodBruteForce) shards its probe
// loop freely, and PartSJ parallelises its partitioning pre-pass (its index
// probing parallelises only under WithShards). The signature methods'
// default token-index source generates candidates in one sequential task
// (the inverted index is shared state); their parallelism is in the
// verification stage. Unset (or any n < 1) uses one worker per available
// core — runtime.GOMAXPROCS(0); pass 1 explicitly for a sequential run.
// Stats.CandTime sums the tasks' own clocks (CPU effort); Stats.CandWall
// reports the stage's wall time.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithShards decomposes a PartSJ self-join into n intra-shard joins plus the
// necessary cross-shard joins (fragment-and-replicate over the size-sorted
// order) and runs the independent tasks on the WithWorkers pool — the
// paper's §6 parallel/distributed direction. Results are identical to the
// sequential join; total filtering work is higher (each task builds its own
// index), wall-clock time lower once a single core no longer keeps up.
// Applies to SelfJoin with MethodPartSJ only.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithPrefilter chains the given filter stages, in order, in front of the
// selected method's own filtering. Every stage is a sound lower bound, so
// results are unchanged; per-stage Stats.Stages attribution shows how many
// candidates each stage killed. Chaining a cheap screen before an expensive
// method (e.g. PrefilterHistogram before MethodPartSJ's subgraph matching,
// or before MethodSTR's string joins) trades a linear precomputation for a
// reduction in the expensive per-pair work.
func WithPrefilter(fs ...Prefilter) Option {
	return func(c *config) { c.prefilters = append(c.prefilters, fs...) }
}

// WithPaperPositionRanges makes PartSJ use the paper's τ−⌊k/2⌋ postorder
// pruning ranges instead of the proven-sound ±τ default. Slightly fewer
// candidates, but completeness is not guaranteed in adversarial corner cases;
// see DESIGN.md.
func WithPaperPositionRanges() Option {
	return func(c *config) { c.position = core.PositionPaper }
}

// WithoutPositionFilter disables PartSJ's postorder pruning layer (label
// grouping only). Exposed for ablation experiments.
func WithoutPositionFilter() Option {
	return func(c *config) { c.position = core.PositionOff }
}

// WithRandomPartitions replaces PartSJ's balanced MaxMinSize partitioning by
// uniformly random bridging edges (seeded by seed). Exposed for the
// partitioning-scheme ablation; the join remains correct, only slower.
func WithRandomPartitions(seed int64) Option {
	return func(c *config) { c.randPart = true; c.seed = seed }
}

// WithHybridVerification screens PartSJ's candidate pairs with the τ-banded
// traversal-string lower bounds before computing the exact TED. Results are
// identical; verification is typically much faster when the collection
// contains many just-over-threshold near-duplicates. An extension beyond the
// paper (whose PRT verifies with RTED directly); applies to SelfJoin and
// Join with MethodPartSJ.
func WithHybridVerification() Option {
	return func(c *config) { c.hybrid = true }
}

// WithUnbandedVerification makes candidate verification run the classic
// full Zhang–Shasha DP on every pair that passes the size lower bound,
// instead of the default threshold-aware verifier (τ-banded DP with keyroot
// skipping and early termination; see DESIGN.md, "Threshold-aware
// verification"). Results are identical — this is the ablation/baseline
// knob behind the verify benchmarks, and the verifier counters in Stats
// (DPAvoided, KeyrootsSkipped, BandAborts) stay zero under it. It replaces
// the whole verification stage, so combining it with
// WithHybridVerification also disables the hybrid string screens.
func WithUnbandedVerification() Option {
	return func(c *config) { c.unbanded = true }
}

// WithSortedLoop forces candidate generation back to the O(n²) sorted
// nested loop for the signature methods (STR, SET, HIST, EUL, PQG), which by
// default generate candidates through the token inverted-index source —
// frequency-ordered prefix postings probed with count-threshold skipping, so
// only pairs whose shared-token count could satisfy the method's lower bound
// are ever screened (see DESIGN.md, "Index-accelerated candidate
// generation"). Results are identical either way; this is the ablation
// escape hatch, and the regime where the loop genuinely wins (tiny corpora,
// thresholds at the largest tree's size) already falls back automatically —
// Stats.Source reports which source ran. No effect on MethodPartSJ and
// MethodBruteForce, which never use the token index.
func WithSortedLoop() Option { return func(c *config) { c.sortedLoop = true } }

// WithStats asks the call to write its execution statistics into dst when it
// finishes. The slice-returning Corpus calls return Stats directly; this
// option exists for the streaming variants, whose iter.Seq shape leaves no
// room for a Stats return — dst is filled when the sequence is exhausted or
// abandoned (partial statistics on cancellation or early break).
func WithStats(dst *Stats) Option { return func(c *config) { c.statsDst = dst } }

// WithIndexCacheCap bounds the per-threshold search-index cache behind a
// Corpus's Search and KNN queries (and the standalone KNN searcher) at n
// indexes, evicting the least recently used; n < 1 selects the default
// (which covers a full KNN expanding sweep for trees up to ~4K nodes). Each
// cached entry is a full PartSJ index over the collection, so the cap
// trades rebuild time against memory — but a cap smaller than a query's
// sweep makes the sweep cycle the LRU, rebuilding every index per query.
func WithIndexCacheCap(n int) Option { return func(c *config) { c.indexCap = n } }

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// validate reports whether the configured method and prefilter chain name
// real algorithms. The Corpus API surfaces this as an error; the legacy free
// functions panic on it.
func (c config) validate() error {
	switch c.method {
	case MethodPartSJ, MethodSTR, MethodSET, MethodBruteForce, MethodHistogram, MethodEulerString, MethodPQGram:
	default:
		return fmt.Errorf("%w %d", ErrUnknownMethod, int(c.method))
	}
	for _, p := range c.prefilters {
		switch p {
		case PrefilterHistogram, PrefilterSTR, PrefilterSET, PrefilterEulerString, PrefilterPQGram:
		default:
			return fmt.Errorf("%w %d", ErrUnknownPrefilter, int(p))
		}
	}
	for _, s := range c.planSpecs {
		switch s.Source {
		case PlanSourceDefault, PlanSourceTokenIndex, PlanSourceSortedLoop:
		default:
			return fmt.Errorf("%w: unknown plan source %d", ErrOptionConflict, int(s.Source))
		}
		for _, p := range s.Chain {
			switch p {
			case PrefilterHistogram, PrefilterSTR, PrefilterSET, PrefilterEulerString, PrefilterPQGram:
			default:
				return fmt.Errorf("%w %d", ErrUnknownPrefilter, int(p))
			}
		}
		if s.PrefixC < 0 {
			return fmt.Errorf("%w: negative prefix multiplier %d", ErrOptionConflict, s.PrefixC)
		}
	}
	return nil
}

func (c config) coreOptions(tau int) core.Options {
	return core.Options{
		Tau:             tau,
		Position:        c.position,
		RandomPartition: c.randPart,
		HybridVerify:    c.hybrid,
		Seed:            c.seed,
		Workers:         c.workers,
	}
}

// jobChecked assembles the engine pipeline for the configured method; see
// pipelineChecked, which additionally exposes the planning seam.
func (c config) jobChecked(tau int) (engine.Job, error) {
	job, _, err := c.pipelineChecked(tau)
	return job, err
}

// pipelineChecked assembles the engine pipeline for the configured method:
// its candidate source, the prefilter chain followed by the method's own
// filter, and the execution knobs — with any WithFixedPlan spec applied and
// the resulting fixed plan record stamped into the job. This is the single
// dispatch point behind the Corpus queries and the legacy SelfJoin and Join;
// invalid input comes back as an error. The returned tokenizer is non-nil
// exactly when the method's candidate source is the token index family —
// the seam the corpus's adaptive planner hangs off (a nil tokenizer means
// the source is not the planner's to choose).
func (c config) pipelineChecked(tau int) (engine.Job, engine.Tokenizer, error) {
	if tau < 0 {
		return engine.Job{}, nil, fmt.Errorf("%w %d", ErrNegativeThreshold, tau)
	}
	if err := c.validate(); err != nil {
		return engine.Job{}, nil, err
	}
	spec, hasSpec := c.mergedPlanSpec()
	filters := make([]engine.PairFilter, 0, len(c.prefilters)+1)
	for _, p := range c.prefilters {
		filters = append(filters, p.stage())
	}
	// Signature methods default to the token inverted-index source over the
	// token bag their bound (or a sound sibling of it) is stated on: Euler
	// q-grams for the string/gram class, label-histogram entries for the
	// histogram/branch class. The source offers a subset of the sorted
	// loop's pairs and every offered pair still runs the same filter chain,
	// so results are identical; WithSortedLoop restores the loop for
	// ablation.
	var tz engine.Tokenizer
	switch c.method {
	case MethodPartSJ:
		if hasSpec {
			if spec.Source != PlanSourceDefault {
				return engine.Job{}, nil, fmt.Errorf("%w: %v generates candidates through the PartSJ index; its plan cannot pick a source", ErrOptionConflict, c.method)
			}
			if spec.PrefixC > 0 {
				return engine.Job{}, nil, fmt.Errorf("%w: %v takes no prefix multiplier", ErrOptionConflict, c.method)
			}
			if spec.Chain != nil {
				filters = chainStages(spec.Chain)
			}
		}
		return c.applyVerifier(c.coreOptions(tau).Job(c.shards, filters)), nil, nil
	case MethodSTR:
		filters = append(filters, baseline.STRFilter())
		tz = pqgram.Tokenizer(0)
	case MethodSET:
		filters = append(filters, baseline.SETFilter())
		tz = baseline.LabelTokenizer()
	case MethodHistogram:
		filters = append(filters, baseline.HISTFilter())
		tz = baseline.LabelTokenizer()
	case MethodEulerString:
		filters = append(filters, baseline.EULFilter())
		tz = pqgram.Tokenizer(0)
	case MethodPQGram:
		filters = append(filters, pqgram.Filter(0))
		tz = pqgram.Tokenizer(0)
	case MethodBruteForce:
		// Size window only — no lower bound to index on; always the loop.
	}
	useIndex := tz != nil && !c.sortedLoop
	prefixC := 0
	if hasSpec {
		if spec.Chain != nil {
			filters = chainStages(spec.Chain)
		}
		switch spec.Source {
		case PlanSourceTokenIndex:
			if tz == nil {
				return engine.Job{}, nil, fmt.Errorf("%w: %v has no token-index source", ErrOptionConflict, c.method)
			}
			if c.sortedLoop {
				return engine.Job{}, nil, fmt.Errorf("%w: WithSortedLoop pins the loop; the plan asks for the token index", ErrOptionConflict)
			}
		case PlanSourceSortedLoop:
			useIndex = false
		}
		if spec.PrefixC > 0 {
			if !useIndex {
				return engine.Job{}, nil, fmt.Errorf("%w: a prefix multiplier needs the token-index source", ErrOptionConflict)
			}
			prefixC = spec.PrefixC
		}
	}
	var src engine.CandidateSource
	if useIndex {
		src = engine.TokenIndex(tz)
	}
	job := engine.Job{
		Source:  src,
		Filters: filters,
		Tau:     tau,
		Workers: c.workers,
		PrefixC: prefixC,
	}
	job.Plan = fixedPlanRecord(job, tz)
	return c.applyVerifier(job), tz, nil
}

// chainStages maps a fixed-plan chain to engine filters, in order.
func chainStages(ps []Prefilter) []engine.PairFilter {
	fs := make([]engine.PairFilter, len(ps))
	for i, p := range ps {
		fs[i] = p.stage()
	}
	return fs
}

// fixedPlanRecord describes an assembled job's static plan for Stats.Plan.
// It records the plan, not the run: a token-index plan whose collection
// trips the index's own fallback still executes the loop, and Stats.Source
// reports that effective source.
func fixedPlanRecord(job engine.Job, tz engine.Tokenizer) sim.PlanRecord {
	rec := sim.PlanRecord{
		Source: plan.SourceSortedLoop,
		Chain:  make([]string, len(job.Filters)),
		Origin: plan.OriginFixed,
	}
	for i, f := range job.Filters {
		rec.Chain[i] = f.Name()
	}
	if job.Source != nil {
		rec.Source = plan.NormalizeSource(job.Source.Name())
	}
	if tz != nil && job.Source != nil {
		rec.PrefixC = tz.Slack()
		if job.PrefixC > rec.PrefixC {
			rec.PrefixC = job.PrefixC
		}
	}
	return rec
}

// applyVerifier applies the verification-stage options to an assembled job:
// WithUnbandedVerification swaps in the full-DP verifier, replacing any
// method-installed hook (including the hybrid screen).
func (c config) applyVerifier(job engine.Job) engine.Job {
	if c.unbanded {
		job.Verifier = nil
		job.VerifierFor = engine.FullTEDVerifier
	}
	return job
}

// job is jobChecked for the legacy free functions, which panic on invalid
// input.
func (c config) job(tau int) engine.Job {
	job, err := c.jobChecked(tau)
	if err != nil {
		panic(err.Error())
	}
	return job
}

// SelfJoin reports every unordered pair of trees in ts whose tree edit
// distance is at most tau, in ascending (I, J) order. All trees must share
// one LabelTable.
//
// Deprecated: construct a Corpus with NewCorpus and use Corpus.SelfJoin
// (cancellable, error-returning, and reusing per-tree signatures across
// calls) or Corpus.SelfJoinSeq (streaming). This wrapper remains for
// compatibility and keeps the legacy contract: it panics on a negative
// threshold or an unknown method/prefilter, and recomputes every signature
// per call.
func SelfJoin(ts []*Tree, tau int, opts ...Option) ([]Pair, Stats) {
	c := buildConfig(opts)
	pairs, st := c.job(tau).SelfJoin(ts)
	c.publishStats(st)
	return pairs, *st
}

// Join reports every cross pair (a ∈ A, b ∈ B) within distance tau; Pair.I
// indexes into a and Pair.J into b. Every method supports cross joins. Both
// collections must share one LabelTable.
//
// Deprecated: use Corpus.Join, which validates the shared label table,
// returns errors instead of panicking, and reuses cached signatures. This
// wrapper remains for compatibility and keeps the legacy panicking contract.
func Join(a, b []*Tree, tau int, opts ...Option) ([]Pair, Stats) {
	c := buildConfig(opts)
	pairs, st := c.job(tau).Join(a, b)
	c.publishStats(st)
	return pairs, *st
}

// publishStats copies st into the WithStats destination, if one was given.
func (c config) publishStats(st *Stats) {
	if c.statsDst != nil && st != nil {
		*c.statsDst = *st
	}
}

// Incremental is a streaming similarity join: trees are added one at a time,
// in any order, and each Add returns the new tree's partners among all
// previously added trees. This serves the paper's closing motivation —
// "streaming workloads where tree objects are inserted and updated at a high
// rate" — with the same PartSJ index built incrementally.
type Incremental struct {
	inner *core.Incremental
}

// NewIncremental returns an empty streaming join with threshold tau. It
// panics on a negative threshold; Corpus.Incremental is the error-returning
// form, which additionally shares the corpus's signature cache.
func NewIncremental(tau int, opts ...Option) *Incremental {
	if tau < 0 {
		panic(fmt.Sprintf("treejoin: negative threshold %d", tau))
	}
	c := buildConfig(opts)
	return &Incremental{inner: core.NewIncremental(c.coreOptions(tau))}
}

// Add inserts t and returns all pairs (existing index, new index) within the
// threshold. The new tree's index is Len()-1 after the call.
func (inc *Incremental) Add(t *Tree) []Pair { return inc.inner.Add(t) }

// Remove deletes the i-th tree from the stream: it no longer appears in the
// results of later Add calls. Positions are stable. Removing an out-of-range
// or already-removed position reports false.
func (inc *Incremental) Remove(i int) bool { return inc.inner.Remove(i) }

// Update replaces the i-th tree with t (Remove followed by Add): it returns
// the replacement's new position and its join partners among the live trees.
func (inc *Incremental) Update(i int, t *Tree) (int, []Pair) { return inc.inner.Update(i, t) }

// Pairs returns the standing result set: every pair some Add reported whose
// trees are both still live, in ascending (I, J) order — the self-join of
// the live trees at the stream's threshold, maintained across arbitrary
// Add/Remove/Update sequences without ever re-joining.
func (inc *Incremental) Pairs() []Pair { return inc.inner.Pairs() }

// Retracted drains the retraction delta: the standing pairs withdrawn by
// Remove (and Update) calls since the previous drain, in ascending (I, J)
// order. Together with Add's returned pairs it forms the full delta stream
// of the standing result — a consumer applying both mirrors Pairs() exactly;
// Stats().PairsRetracted counts the retractions cumulatively.
func (inc *Incremental) Retracted() []Pair { return inc.inner.Retracted() }

// Len returns the number of trees added so far, including removed ones.
func (inc *Incremental) Len() int { return inc.inner.Len() }

// Live returns the number of trees added and not yet removed.
func (inc *Incremental) Live() int { return inc.inner.Live() }

// Tree returns the i-th added tree, or nil if it has been removed.
func (inc *Incremental) Tree(i int) *Tree { return inc.inner.Tree(i) }

// Stats returns a snapshot of the accumulated execution statistics.
func (inc *Incremental) Stats() Stats { return inc.inner.Stats() }
