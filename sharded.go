package treejoin

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"
	"sync"
	"sync/atomic"

	"treejoin/internal/sim"
)

// ErrShardCount reports a shard count below 1 passed to NewSharded or
// OpenSharded.
var ErrShardCount = errors.New("treejoin: shard count must be at least 1")

// ShardedCorpus partitions one logical corpus across N independent Corpus
// shards — the paper's §6 trade of shared state for parallelism, packaged
// behind the exact Corpus query surface. Membership is hash-partitioned by
// stable global id (id mod N picks the home shard), and the partitioning is
// transparent: every query reports global positions/ids identical — pair
// for pair, match for match — to a single Corpus built over the same trees
// in the same order, because every method is exact and the fan-out merely
// decomposes the same result set.
//
// SelfJoin decomposes into N intra-shard self joins plus the
// fragment-and-replicate cross-shard rounds (one cross join per shard pair;
// within each round the engine's own task decomposition applies), run
// concurrently on a bounded pool. Join, Search, TopK, and KNN fan out per
// shard and merge; per-round execution statistics are rolled up into one
// Stats. Add and Remove route each tree to its home shard and publish a new
// sharded state snapshot, so queries are snapshot-isolated across all shards
// at once: View pins the epoch — every per-shard membership and the global
// id mapping — for as long as the caller holds it, exactly the seam a server
// uses to keep one request on one consistent multi-shard state while writers
// proceed.
//
// A ShardedCorpus built by OpenSharded is durable: a backing persistent
// Corpus (the segstore) is the source of truth — mutations write through it
// first — while the shards themselves stay in-memory views over the store's
// trees.
//
// A ShardedCorpus is safe for concurrent use; mutations serialise against
// each other and never block queries.
type ShardedCorpus struct {
	shards  []*Corpus
	backing *Corpus // durable source of truth (OpenSharded); nil in-memory

	writeMu sync.Mutex
	state   atomic.Pointer[shardedState]

	// globalByShard[s][localID] = global id of the tree shard s knows by
	// that shard-local id. Local ids are assigned densely by the shard's own
	// Add and never reused, so the slice is append-only; guarded by writeMu.
	globalByShard [][]int
}

// shardedState is one immutable epoch of the sharded corpus: the global
// membership (insertion order of the survivors — the order a single Corpus
// over the same history would hold), per-shard frozen snapshot views, and
// the local-position → global-position maps that translate every shard
// result back into the global space.
type shardedState struct {
	epoch  int64
	lt     *LabelTable
	trees  []*Tree
	ids    []int       // global id by global position
	pos    map[int]int // global id → global position
	nextID int

	views    []*Corpus // one frozen Snapshot per shard
	toGlobal [][]int   // toGlobal[s][localPos] = global position
}

// NewSharded validates ts (no nil trees, one shared LabelTable) and returns
// a corpus over it partitioned across n shards. Global ids are assigned
// 0..len(ts)-1 in order, exactly as NewCorpus would, and tree i lives on
// shard i mod n. Options are corpus-level and apply to every shard
// (currently WithIndexCacheCap).
func NewSharded(n int, ts []*Tree, opts ...Option) (*ShardedCorpus, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrShardCount, n)
	}
	var lt *LabelTable
	for i, t := range ts {
		if t == nil {
			return nil, fmt.Errorf("%w at index %d", ErrNilTree, i)
		}
		if lt == nil {
			lt = t.Labels
		} else if t.Labels != lt {
			return nil, fmt.Errorf("%w (tree %d)", ErrLabelTable, i)
		}
	}
	sc := &ShardedCorpus{
		shards:        make([]*Corpus, n),
		globalByShard: make([][]int, n),
	}
	for s := range sc.shards {
		cp, err := NewCorpus(nil, opts...)
		if err != nil {
			return nil, err
		}
		sc.shards[s] = cp
	}
	ids := make([]int, len(ts))
	for i := range ts {
		ids[i] = i
	}
	if err := sc.seed(ts, ids); err != nil {
		return nil, err
	}
	sc.publishLocked(&shardedState{epoch: -1}, ids, ts, len(ts), lt, nil)
	return sc, nil
}

// OpenSharded opens (or creates) the persistent corpus at dir — see Open —
// and serves it through n shards. The backing store remains the single
// source of truth: global ids are the store's stable tree ids, every Add
// reaches the store's WAL before it is queryable, and every Remove
// tombstones there first; the shards are in-memory partitions over the
// store's trees, rebuilt from it on every open. Close the returned corpus
// to release the store.
func OpenSharded(dir string, n int, opts ...Option) (*ShardedCorpus, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrShardCount, n)
	}
	backing, err := Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	sc := &ShardedCorpus{
		backing:       backing,
		shards:        make([]*Corpus, n),
		globalByShard: make([][]int, n),
	}
	for s := range sc.shards {
		cp, err := NewCorpus(nil, opts...)
		if err != nil {
			backing.Close()
			return nil, err
		}
		sc.shards[s] = cp
	}
	bst := backing.state.Load()
	if err := sc.seed(bst.ts, bst.ids); err != nil {
		backing.Close()
		return nil, err
	}
	sc.publishLocked(&shardedState{epoch: -1}, bst.ids, bst.ts, bst.nextID, bst.lt, nil)
	return sc, nil
}

// seed distributes trees with known global ids to their home shards,
// recording the local-id → global-id mapping. Caller owns writeMu (or the
// corpus is not yet published).
func (sc *ShardedCorpus) seed(ts []*Tree, ids []int) error {
	n := len(sc.shards)
	batches := make([][]*Tree, n)
	gids := make([][]int, n)
	for i, t := range ts {
		s := ids[i] % n
		batches[s] = append(batches[s], t)
		gids[s] = append(gids[s], ids[i])
	}
	for s := range sc.shards {
		if len(batches[s]) == 0 {
			continue
		}
		if _, err := sc.shards[s].Add(batches[s]...); err != nil {
			return err
		}
		sc.globalByShard[s] = append(sc.globalByShard[s], gids[s]...)
	}
	return nil
}

// publishLocked builds and swaps in the next sharded state: global order
// ids/trees, fresh snapshot views for the touched shards (nil touched means
// all), and the rebuilt position maps. Caller owns writeMu (or the corpus is
// not yet published).
func (sc *ShardedCorpus) publishLocked(prev *shardedState, ids []int, trees []*Tree, nextID int, lt *LabelTable, touched map[int]bool) {
	ns := &shardedState{
		epoch:    prev.epoch + 1,
		lt:       lt,
		trees:    trees,
		ids:      ids,
		pos:      make(map[int]int, len(ids)),
		nextID:   nextID,
		views:    make([]*Corpus, len(sc.shards)),
		toGlobal: make([][]int, len(sc.shards)),
	}
	for p, id := range ids {
		ns.pos[id] = p
	}
	for s := range sc.shards {
		if touched == nil || touched[s] || prev.views == nil {
			ns.views[s] = sc.shards[s].Snapshot()
		} else {
			ns.views[s] = prev.views[s]
		}
		v := ns.views[s]
		vst := v.state.Load()
		tg := make([]int, len(vst.ids))
		for p, lid := range vst.ids {
			tg[p] = ns.pos[sc.globalByShard[s][lid]]
		}
		ns.toGlobal[s] = tg
	}
	sc.state.Store(ns)
}

// NumShards returns the shard count.
func (sc *ShardedCorpus) NumShards() int { return len(sc.shards) }

// Len returns the number of live trees across all shards.
func (sc *ShardedCorpus) Len() int { return len(sc.state.Load().trees) }

// Epoch returns the sharded corpus's mutation epoch: 0 at construction,
// bumped by every Add and Remove batch.
func (sc *ShardedCorpus) Epoch() int64 { return sc.state.Load().epoch }

// Labels returns the shared label table every tree added to the corpus must
// be built against (nil while an in-memory sharded corpus is still empty).
func (sc *ShardedCorpus) Labels() *LabelTable { return sc.state.Load().lt }

// Tree, ID, and PosOf address the current state's global membership exactly
// as their Corpus counterparts do.
func (sc *ShardedCorpus) Tree(i int) *Tree { return sc.state.Load().trees[i] }
func (sc *ShardedCorpus) ID(i int) int     { return sc.state.Load().ids[i] }
func (sc *ShardedCorpus) PosOf(id int) (int, bool) {
	p, ok := sc.state.Load().pos[id]
	return p, ok
}

// CacheStats sums the signature-cache counters across the shards.
func (sc *ShardedCorpus) CacheStats() CacheStats {
	var total CacheStats
	for _, cp := range sc.shards {
		st := cp.CacheStats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Entries += st.Entries
	}
	return total
}

// StoreStats reports the backing store's statistics; ok is false for an
// in-memory sharded corpus.
func (sc *ShardedCorpus) StoreStats() (StoreStats, bool) {
	if sc.backing == nil {
		return StoreStats{}, false
	}
	return sc.backing.StoreStats()
}

// Close releases the backing store of a durable sharded corpus; a no-op for
// an in-memory one. Queries over already-loaded state keep working.
func (sc *ShardedCorpus) Close() error {
	if sc.backing == nil {
		return nil
	}
	return sc.backing.Close()
}

// Add appends ts to the corpus and returns their stable global ids, with
// Corpus.Add's contract: full batch validation first (so the mutation is
// atomic — no shard is touched unless every tree is acceptable), write-through
// to the backing store when durable (an ErrDegraded store rejects the batch
// before any shard mutates), then one new sharded state visible to every
// later View at once.
func (sc *ShardedCorpus) Add(ts ...*Tree) ([]int, error) {
	if len(ts) == 0 {
		return nil, nil
	}
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	st := sc.state.Load()
	lt := st.lt
	for i, t := range ts {
		if t == nil {
			return nil, fmt.Errorf("%w (added tree %d)", ErrNilTree, i)
		}
		if lt == nil {
			lt = t.Labels
		} else if t.Labels != lt {
			return nil, fmt.Errorf("%w (added tree %d)", ErrLabelTable, i)
		}
	}
	var ids []int
	nextID := st.nextID
	if sc.backing != nil {
		var err error
		if ids, err = sc.backing.Add(ts...); err != nil {
			return nil, err
		}
		nextID = sc.backing.state.Load().nextID
	} else {
		ids = make([]int, len(ts))
		for i := range ts {
			ids[i] = st.nextID + i
		}
		nextID = st.nextID + len(ts)
	}
	touched := make(map[int]bool, len(sc.shards))
	n := len(sc.shards)
	batches := make([][]*Tree, n)
	gids := make([][]int, n)
	for i, t := range ts {
		s := ids[i] % n
		batches[s] = append(batches[s], t)
		gids[s] = append(gids[s], ids[i])
		touched[s] = true
	}
	for s := range sc.shards {
		if len(batches[s]) == 0 {
			continue
		}
		if _, err := sc.shards[s].Add(batches[s]...); err != nil {
			// Unreachable after the validation above (in-memory shards only
			// reject nil trees and table mismatches), but never publish a
			// state that does not reflect the shards.
			return nil, err
		}
		sc.globalByShard[s] = append(sc.globalByShard[s], gids[s]...)
	}
	nids := make([]int, 0, len(st.ids)+len(ids))
	nids = append(append(nids, st.ids...), ids...)
	ntrees := make([]*Tree, 0, len(st.trees)+len(ts))
	ntrees = append(append(ntrees, st.trees...), ts...)
	sc.publishLocked(st, nids, ntrees, nextID, lt, touched)
	return ids, nil
}

// Remove deletes the trees with the given global ids and returns how many
// were removed, with Corpus.Remove's contract: unknown ids are skipped,
// positions stay dense in insertion order, a degraded backing store aborts
// the whole mutation (0 removed), and in-flight Views keep their snapshot.
func (sc *ShardedCorpus) Remove(ids ...int) int {
	if len(ids) == 0 {
		return 0
	}
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	st := sc.state.Load()
	gone := make(map[int]bool, len(ids))
	for _, id := range ids {
		if _, ok := st.pos[id]; ok {
			gone[id] = true
		}
	}
	if len(gone) == 0 {
		return 0
	}
	live := make([]int, 0, len(gone))
	for id := range gone {
		live = append(live, id)
	}
	if sc.backing != nil {
		if n := sc.backing.Remove(live...); n == 0 {
			// The store is degraded: nothing was unpublished there, so
			// nothing is removed here either.
			return 0
		}
	}
	n := len(sc.shards)
	batches := make([][]int, n)
	touched := make(map[int]bool, n)
	for _, id := range live {
		batches[id%n] = append(batches[id%n], id)
		touched[id%n] = true
	}
	for s := range sc.shards {
		if len(batches[s]) == 0 {
			continue
		}
		// Shard-local ids equal global ids only by accident; translate
		// through the per-shard mapping.
		lids := make([]int, 0, len(batches[s]))
		for lid, gid := range sc.globalByShard[s] {
			if gone[gid] {
				lids = append(lids, lid)
			}
		}
		sc.shards[s].Remove(lids...)
	}
	nids := make([]int, 0, len(st.ids)-len(gone))
	ntrees := make([]*Tree, 0, len(st.trees)-len(gone))
	for p, id := range st.ids {
		if gone[id] {
			continue
		}
		nids = append(nids, id)
		ntrees = append(ntrees, st.trees[p])
	}
	sc.publishLocked(st, nids, ntrees, st.nextID, st.lt, touched)
	return len(gone)
}

// View pins the current epoch as a ShardedView: a consistent snapshot of
// every shard's membership and the global id mapping at once. Queries on the
// view run against exactly this state however the corpus mutates afterwards
// — the per-request isolation seam cmd/treejoind uses. Views are cheap (one
// atomic load) and need no release.
func (sc *ShardedCorpus) View() *ShardedView {
	return &ShardedView{st: sc.state.Load()}
}

// Query methods on the corpus itself pin a fresh view per call, exactly as
// Corpus queries pin their state.

// SelfJoin reports every unordered pair of corpus trees within TED tau, in
// ascending global (I, J) order, with the per-round execution statistics
// rolled up into one Stats; see ShardedView.SelfJoin.
func (sc *ShardedCorpus) SelfJoin(ctx context.Context, tau int, opts ...Option) ([]Pair, Stats, error) {
	return sc.View().SelfJoin(ctx, tau, opts...)
}

// SelfJoinSeq is the streaming SelfJoin, with Corpus.SelfJoinSeq's contract
// (unordered pairs, WithStats for the rolled-up statistics).
func (sc *ShardedCorpus) SelfJoinSeq(ctx context.Context, tau int, opts ...Option) (iter.Seq[Pair], error) {
	return sc.View().SelfJoinSeq(ctx, tau, opts...)
}

// Join reports every cross pair within tau against other, Pair.I in global
// positions, Pair.J in other's positions; see ShardedView.Join.
func (sc *ShardedCorpus) Join(ctx context.Context, other *Corpus, tau int, opts ...Option) ([]Pair, Stats, error) {
	return sc.View().Join(ctx, other, tau, opts...)
}

// Search reports every corpus tree within TED tau of q, ascending global
// position order; see ShardedView.Search.
func (sc *ShardedCorpus) Search(ctx context.Context, q *Tree, tau int, opts ...Option) ([]Match, error) {
	return sc.View().Search(ctx, q, tau, opts...)
}

// TopK returns the k closest pairs by TED, ordered by (Dist, I, J); see
// ShardedView.TopK.
func (sc *ShardedCorpus) TopK(ctx context.Context, k int, opts ...Option) ([]Pair, error) {
	return sc.View().TopK(ctx, k, opts...)
}

// KNN returns the k trees closest to q, ordered by (Dist, Pos); see
// ShardedView.KNN.
func (sc *ShardedCorpus) KNN(ctx context.Context, q *Tree, k int, opts ...Option) ([]Match, error) {
	return sc.View().KNN(ctx, q, k, opts...)
}

// ShardedView is a pinned epoch of a ShardedCorpus: all queries run against
// the exact multi-shard membership the View call observed, while writers
// proceed. The zero value is not valid; obtain views from
// ShardedCorpus.View.
type ShardedView struct {
	st *shardedState
}

// Len, Epoch, Tree, ID, and PosOf read the pinned state.
func (v *ShardedView) Len() int      { return len(v.st.trees) }
func (v *ShardedView) Epoch() int64  { return v.st.epoch }
func (v *ShardedView) Tree(i int) *Tree { return v.st.trees[i] }
func (v *ShardedView) ID(i int) int  { return v.st.ids[i] }
func (v *ShardedView) PosOf(id int) (int, bool) {
	p, ok := v.st.pos[id]
	return p, ok
}

// shardRound is one unit of the self-join decomposition: an intra-shard self
// join (b == -1) or a cross-shard fragment-and-replicate round (a < b).
type shardRound struct{ a, b int }

// streamSelf fans the self join out over the pinned shards — every
// intra-shard self join plus one cross join per shard pair — streaming each
// verified pair, remapped to global positions, through a serialised sink.
// Per-round statistics are rolled up into the returned Stats. The sink may
// stop the stream by returning false; that is not an error.
func (v *ShardedView) streamSelf(ctx context.Context, tau int, c config, sink sim.EmitFunc) (*sim.Stats, error) {
	if _, _, err := c.pipelineChecked(tau); err != nil {
		return nil, err
	}
	st := v.st
	var rounds []shardRound
	for s := range st.views {
		if st.views[s].Len() >= 2 {
			rounds = append(rounds, shardRound{s, -1})
		}
	}
	for a := range st.views {
		if st.views[a].Len() == 0 {
			continue
		}
		for b := a + 1; b < len(st.views); b++ {
			if st.views[b].Len() > 0 {
				rounds = append(rounds, shardRound{a, b})
			}
		}
	}
	rollup := &sim.Stats{Trees: len(st.trees)}
	if len(rounds) == 0 {
		return rollup, ctx.Err()
	}
	// The round pool carries the caller's worker budget: the rounds
	// themselves run concurrently, and whatever budget exceeds the round
	// count parallelises inside the rounds.
	pool := sim.NormalizeWorkers(c.workers)
	if pool > len(rounds) {
		c.workers = pool / len(rounds)
		pool = len(rounds)
	} else {
		c.workers = 1
	}
	c.statsDst = nil // one rollup is published, never per-round racing writes

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex // serialises the sink and guards stopped/firstErr/parts
	var stopped bool
	var firstErr error
	parts := make([]*sim.Stats, len(rounds))
	emit := func(p Pair) bool {
		mu.Lock()
		defer mu.Unlock()
		if stopped {
			return false
		}
		if !sink(p) {
			stopped = true
			cancel()
			return false
		}
		return true
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(rounds) {
					return
				}
				r := rounds[i]
				var stats *sim.Stats
				var err error
				if r.b < 0 {
					tg := st.toGlobal[r.a]
					stats, err = st.views[r.a].streamSelfWith(rctx, tau, c, func(p Pair) bool {
						return emit(globalPair(tg[p.I], tg[p.J], p.Dist))
					})
				} else {
					tga, tgb := st.toGlobal[r.a], st.toGlobal[r.b]
					stats, err = st.views[r.a].streamJoinWith(rctx, st.views[r.b], tau, c, func(p Pair) bool {
						return emit(globalPair(tga[p.I], tgb[p.J], p.Dist))
					})
				}
				mu.Lock()
				parts[i] = stats
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, p := range parts {
		foldStats(rollup, p)
	}
	// An early sink stop cancels the round context by design; only the
	// caller's own cancellation (or a genuine round failure) is an error.
	switch {
	case ctx.Err() != nil:
		return rollup, ctx.Err()
	case stopped:
		return rollup, nil
	default:
		return rollup, firstErr
	}
}

// globalPair normalises a remapped pair into canonical I < J order (shard
// positions preserve no global ordering).
func globalPair(i, j, dist int) Pair {
	if i > j {
		i, j = j, i
	}
	return Pair{I: i, J: j, Dist: dist}
}

// foldStats rolls one round's statistics into the total: counters and times
// sum (CPU effort, as the engine's own sharded plan reports), stages merge
// by name in first-seen order, and the effective source is kept when every
// round agrees ("mixed" otherwise — shards can plan independently).
func foldStats(total, st *sim.Stats) {
	if st == nil {
		return
	}
	total.Candidates += st.Candidates
	total.Results += st.Results
	total.CandTime += st.CandTime
	total.VerifyTime += st.VerifyTime
	total.CandWall += st.CandWall
	total.PartitionTime += st.PartitionTime
	total.IndexedSubgraphs += st.IndexedSubgraphs
	total.SubgraphProbes += st.SubgraphProbes
	total.MatchTests += st.MatchTests
	total.MatchHits += st.MatchHits
	total.SmallTreeFallback += st.SmallTreeFallback
	total.IndexBuildTime += st.IndexBuildTime
	total.PostingsScanned += st.PostingsScanned
	total.SkippedByCount += st.SkippedByCount
	total.PostingsTombstoned += st.PostingsTombstoned
	total.PairsRetracted += st.PairsRetracted
	total.DPAvoided += st.DPAvoided
	total.KeyrootsSkipped += st.KeyrootsSkipped
	total.BandAborts += st.BandAborts
	total.StrategyLeft += st.StrategyLeft
	total.StrategyRight += st.StrategyRight
	switch {
	case st.Source == "":
	case total.Source == "":
		total.Source = st.Source
	case total.Source != st.Source:
		total.Source = "mixed"
	}
	for _, sg := range st.Stages {
		merged := false
		for i := range total.Stages {
			if total.Stages[i].Name == sg.Name {
				total.Stages[i].In += sg.In
				total.Stages[i].Pruned += sg.Pruned
				total.Stages[i].SampledNs += sg.SampledNs
				total.Stages[i].Sampled += sg.Sampled
				merged = true
				break
			}
		}
		if !merged {
			total.Stages = append(total.Stages, sg)
		}
	}
}

// SelfJoin reports every unordered pair of view trees within TED tau, in
// ascending global (I, J) order — bit-identical to a single Corpus over the
// same membership — together with the rolled-up Stats of every round. On
// cancellation it returns the pairs found so far, the partial rollup, and
// ctx's error.
func (v *ShardedView) SelfJoin(ctx context.Context, tau int, opts ...Option) ([]Pair, Stats, error) {
	c := buildConfig(opts)
	var pairs []Pair
	stats, err := v.streamSelf(ctx, tau, c, func(p Pair) bool {
		pairs = append(pairs, p)
		return true
	})
	if stats == nil {
		return nil, Stats{}, err
	}
	sim.SortPairs(pairs)
	c.publishStats(stats)
	return pairs, *stats, err
}

// SelfJoinSeq is the streaming SelfJoin: pairs arrive as rounds verify them,
// in no particular order; use WithStats for the rollup after the sequence
// ends. Validation happens eagerly, before the sequence is returned.
func (v *ShardedView) SelfJoinSeq(ctx context.Context, tau int, opts ...Option) (iter.Seq[Pair], error) {
	c := buildConfig(opts)
	if _, _, err := c.pipelineChecked(tau); err != nil {
		return nil, err
	}
	return func(yield func(Pair) bool) {
		stats, _ := v.streamSelf(ctx, tau, c, sim.EmitFunc(yield))
		c.publishStats(stats)
	}, nil
}

// Join reports every cross pair (a ∈ this view, b ∈ other) within tau;
// Pair.I is a global position of the view, Pair.J a position of other. The
// other corpus is pinned once (one snapshot serves every per-shard round),
// so the result is one consistent cross join even while other mutates.
func (v *ShardedView) Join(ctx context.Context, other *Corpus, tau int, opts ...Option) ([]Pair, Stats, error) {
	c := buildConfig(opts)
	if other == nil {
		return nil, Stats{}, ErrNilCorpus
	}
	if _, _, err := c.pipelineChecked(tau); err != nil {
		return nil, Stats{}, err
	}
	st := v.st
	oview := other.Snapshot()
	if st.lt != nil && oview.state.Load().lt != nil && st.lt != oview.state.Load().lt {
		return nil, Stats{}, fmt.Errorf("%w (cross join)", ErrLabelTable)
	}
	c.statsDst = nil
	cLocal := c
	rollup := &sim.Stats{Trees: len(st.trees) + oview.Len()}
	var pairs []Pair
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	pool := sim.NormalizeWorkers(cLocal.workers)
	active := 0
	for s := range st.views {
		if st.views[s].Len() > 0 {
			active++
		}
	}
	if active > 0 {
		if pool > active {
			cLocal.workers = pool / active
		} else {
			cLocal.workers = 1
		}
	}
	for s := range st.views {
		if st.views[s].Len() == 0 {
			continue
		}
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			tg := st.toGlobal[s]
			stats, err := st.views[s].streamJoinWith(ctx, oview, tau, cLocal, func(p Pair) bool {
				mu.Lock()
				pairs = append(pairs, Pair{I: tg[p.I], J: p.J, Dist: p.Dist})
				mu.Unlock()
				return true
			})
			mu.Lock()
			foldStats(rollup, stats)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	sim.SortPairs(pairs)
	buildConfig(opts).publishStats(rollup)
	return pairs, *rollup, firstErr
}

// Search reports every view tree within TED tau of q, ascending global
// position order — identical to a single Corpus's Search. Shards are probed
// concurrently, each through its own per-threshold index.
func (v *ShardedView) Search(ctx context.Context, q *Tree, tau int, opts ...Option) ([]Match, error) {
	st := v.st
	if q != nil && st.lt != nil && q.Labels != st.lt {
		return nil, fmt.Errorf("%w (query)", ErrLabelTable)
	}
	type result struct {
		ms  []Match
		err error
	}
	results := make([]result, len(st.views))
	var wg sync.WaitGroup
	for s := range st.views {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			ms, err := st.views[s].Search(ctx, q, tau, opts...)
			for i := range ms {
				ms[i].Pos = st.toGlobal[s][ms[i].Pos]
			}
			results[s] = result{ms, err}
		}()
	}
	wg.Wait()
	var out []Match
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.ms...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// TopK returns the k closest pairs of the view by TED, ordered by
// (Dist, I, J) — identical to a single Corpus's TopK. It mirrors the
// expanding-threshold search: sharded self joins at geometrically growing τ
// until k pairs are in reach.
func (v *ShardedView) TopK(ctx context.Context, k int, opts ...Option) ([]Pair, error) {
	c := buildConfig(opts)
	if err := c.requirePartSJ("TopK", true); err != nil {
		return nil, err
	}
	st := v.st
	if k <= 0 || len(st.trees) < 2 {
		return nil, ctx.Err()
	}
	if all := len(st.trees) * (len(st.trees) - 1) / 2; k > all {
		k = all
	}
	var max1, max2 int
	for _, t := range st.trees {
		switch s := t.Size(); {
		case s > max1:
			max1, max2 = s, max1
		case s > max2:
			max2 = s
		}
	}
	tauCap := max1 + max2
	tau := 1
	for {
		var pairs []Pair
		_, err := v.streamSelf(ctx, tau, c, func(p Pair) bool {
			pairs = append(pairs, p)
			return true
		})
		if err != nil || len(pairs) >= k || tau >= tauCap {
			sortByDist(pairs)
			if len(pairs) > k {
				pairs = pairs[:k]
			}
			return pairs, err
		}
		tau *= 2
		if tau > tauCap {
			tau = tauCap
		}
	}
}

// sortByDist orders pairs by (Dist, I, J) — the TopK result order.
func sortByDist(ps []Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].Dist != ps[b].Dist {
			return ps[a].Dist < ps[b].Dist
		}
		if ps[a].I != ps[b].I {
			return ps[a].I < ps[b].I
		}
		return ps[a].J < ps[b].J
	})
}

// KNN returns the k view trees closest to q by TED, ordered by (Dist, Pos)
// with global positions — identical to a single Corpus's KNN. The expanding
// search runs globally: every shard answers a Search at the same growing τ,
// and the loop stops as soon as k matches exist across the union. Keeping the
// τ progression global matters: a per-shard k-nearest fan-out would force
// shards that hold no close neighbour of q to expand all the way to the size
// cap, paying an index build per threshold for matches the merge then
// discards.
func (v *ShardedView) KNN(ctx context.Context, q *Tree, k int, opts ...Option) ([]Match, error) {
	c := buildConfig(opts)
	if q == nil {
		return nil, fmt.Errorf("%w (query)", ErrNilTree)
	}
	st := v.st
	if st.lt != nil && q.Labels != st.lt {
		return nil, fmt.Errorf("%w (query)", ErrLabelTable)
	}
	if err := c.requirePartSJ("KNN", false); err != nil {
		return nil, err
	}
	if k <= 0 || len(st.trees) == 0 {
		return nil, ctx.Err()
	}
	if k > len(st.trees) {
		k = len(st.trees)
	}
	max1 := 0
	for _, t := range st.trees {
		if s := t.Size(); s > max1 {
			max1 = s
		}
	}
	tauCap := max1 + q.Size()
	tau := 1
	for {
		// Check before each round: the per-shard index builds are
		// uncancellable, so don't start a round the caller no longer wants.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ms, err := v.Search(ctx, q, tau, opts...)
		if err != nil {
			return nil, err
		}
		if len(ms) >= k || tau >= tauCap {
			sort.Slice(ms, func(a, b int) bool {
				if ms[a].Dist != ms[b].Dist {
					return ms[a].Dist < ms[b].Dist
				}
				return ms[a].Pos < ms[b].Pos
			})
			if len(ms) > k {
				ms = ms[:k]
			}
			return ms, nil
		}
		tau *= 2
		if tau > tauCap {
			tau = tauCap
		}
	}
}
