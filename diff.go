package treejoin

import (
	"fmt"
	"strings"

	"treejoin/internal/ted"
)

// MapPair records that node N1 of the first tree corresponds to node N2 of
// the second tree in an optimal edit mapping.
type MapPair = ted.MapPair

// EditOp is one operation of an optimal edit script.
type EditOp = ted.EditOp

// OpKind classifies an EditOp.
type OpKind = ted.OpKind

// Edit operation kinds.
const (
	OpDelete = ted.OpDelete
	OpInsert = ted.OpInsert
	OpRename = ted.OpRename
)

// Mapping returns TED(a, b) together with an optimal edit mapping: a
// one-to-one, order- and ancestor-preserving correspondence between nodes of
// a and nodes of b whose cost equals the distance. Unmapped nodes of a are
// deleted, unmapped nodes of b inserted, mapped pairs with differing labels
// renamed.
func Mapping(a, b *Tree) (int, []MapPair) { return ted.Mapping(a, b) }

// EditScript returns TED(a, b) and an optimal edit script (deletes bottom-up,
// then renames, then inserts); its length equals the distance. Use
// FormatEditScript for a readable rendering.
func EditScript(a, b *Tree) (int, []EditOp) { return ted.EditScript(a, b) }

// Transform plays an optimal edit script back as trees: it returns
// Distance(a, b)+1 trees morphing a into b, each one node edit operation
// (delete, rename, or insert) away from the previous — the step-by-step
// view of the structural diff.
func Transform(a, b *Tree) ([]*Tree, error) { return ted.Transform(a, b) }

// FormatEditScript renders an edit script with node labels, one operation
// per line — a structural diff of the two trees.
func FormatEditScript(a, b *Tree, script []EditOp) string {
	var sb strings.Builder
	for _, op := range script {
		switch op.Kind {
		case ted.OpDelete:
			fmt.Fprintf(&sb, "delete %q\n", a.Label(op.Node1))
		case ted.OpInsert:
			fmt.Fprintf(&sb, "insert %q\n", b.Label(op.Node2))
		case ted.OpRename:
			fmt.Fprintf(&sb, "rename %q -> %q\n", a.Label(op.Node1), b.Label(op.Node2))
		}
	}
	return sb.String()
}
