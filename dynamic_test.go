// Tests for the dynamic Corpus: Add/Remove semantics (stable ids, dense
// positions, epochs), snapshot isolation of views and in-flight sequences,
// search-index invalidation on mutation, the maintained token index, and the
// incremental stream's standing result view with retraction deltas.
package treejoin_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

// survivors materialises the corpus's current live trees in position order.
func survivors(cp *treejoin.Corpus) []*treejoin.Tree { return cp.Trees() }

func TestCorpusAddRemove(t *testing.T) {
	ctx := context.Background()
	lt := treejoin.NewLabelTable()
	parse := func(s string) *treejoin.Tree { return treejoin.MustParseBracket(s, lt) }
	ts := []*treejoin.Tree{
		parse("{a{b}{c}}"), parse("{a{b}{d}}"), parse("{x{y}}"),
		parse("{x{z}}"), parse("{a{b}{c{d}}}"),
	}
	cp := mustCorpus(t, ts)
	if cp.Epoch() != 0 {
		t.Fatalf("fresh corpus epoch = %d, want 0", cp.Epoch())
	}

	ids, err := cp.Add(parse("{a{b}}"), parse("{q}"))
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if len(ids) != 2 || ids[0] != 5 || ids[1] != 6 {
		t.Fatalf("Add ids = %v, want [5 6]", ids)
	}
	if cp.Len() != 7 || cp.Epoch() != 1 {
		t.Fatalf("after Add: len=%d epoch=%d, want 7, 1", cp.Len(), cp.Epoch())
	}

	if n := cp.Remove(2, 5, 99, 5); n != 2 {
		t.Fatalf("Remove removed %d, want 2 (one unknown, one duplicate)", n)
	}
	if cp.Len() != 5 || cp.Epoch() != 2 {
		t.Fatalf("after Remove: len=%d epoch=%d, want 5, 2", cp.Len(), cp.Epoch())
	}
	// Positions are dense over the survivors, in insertion order; ids are
	// stable.
	wantIDs := []int{0, 1, 3, 4, 6}
	for p, id := range wantIDs {
		if got := cp.ID(p); got != id {
			t.Fatalf("ID(%d) = %d, want %d", p, got, id)
		}
		if pos, ok := cp.PosOf(id); !ok || pos != p {
			t.Fatalf("PosOf(%d) = %d, %v, want %d, true", id, pos, ok, p)
		}
	}
	if _, ok := cp.PosOf(2); ok {
		t.Fatal("PosOf of a removed id reported true")
	}

	// A mutated corpus joins bit-identically to a fresh corpus over the
	// survivors.
	fresh := mustCorpus(t, survivors(cp))
	for _, tau := range []int{0, 1, 2} {
		got, _, err := cp.SelfJoin(ctx, tau)
		if err != nil {
			t.Fatalf("SelfJoin: %v", err)
		}
		want, _, err := fresh.SelfJoin(ctx, tau)
		if err != nil {
			t.Fatalf("fresh SelfJoin: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("τ=%d: %d pairs, fresh corpus %d", tau, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("τ=%d pair %d: %+v != %+v", tau, i, got[i], want[i])
			}
		}
	}

	// Validation: nil trees and foreign label tables are rejected atomically
	// (the corpus is unchanged).
	if _, err := cp.Add(parse("{ok}"), nil); !errors.Is(err, treejoin.ErrNilTree) {
		t.Fatalf("Add nil: err = %v, want ErrNilTree", err)
	}
	foreign := treejoin.MustParseBracket("{a}", treejoin.NewLabelTable())
	if _, err := cp.Add(foreign); !errors.Is(err, treejoin.ErrLabelTable) {
		t.Fatalf("Add foreign table: err = %v, want ErrLabelTable", err)
	}
	if cp.Len() != 5 || cp.Epoch() != 2 {
		t.Fatalf("failed Add mutated the corpus: len=%d epoch=%d", cp.Len(), cp.Epoch())
	}

	// An emptied corpus still answers, and an empty corpus adopts the first
	// added tree's table.
	cp.Remove(wantIDs...)
	if cp.Len() != 0 {
		t.Fatalf("emptied corpus len = %d", cp.Len())
	}
	if pairs, _, err := cp.SelfJoin(ctx, 1); err != nil || len(pairs) != 0 {
		t.Fatalf("empty corpus join: pairs=%v err=%v", pairs, err)
	}
	empty, err := treejoin.NewCorpus(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Add(foreign); err != nil {
		t.Fatalf("empty corpus Add: %v", err)
	}
	if _, err := empty.Add(parse("{a}")); !errors.Is(err, treejoin.ErrLabelTable) {
		t.Fatalf("adopted table not enforced: err = %v", err)
	}
}

func TestCorpusSnapshotIsolation(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(30, 5)
	cp := mustCorpus(t, ts)
	want, _, err := cp.SelfJoin(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}

	view := cp.Snapshot()
	if _, err := cp.Add(ts[0]); err != nil { // aliasing the same tree is allowed
		t.Fatalf("Add: %v", err)
	}
	cp.Remove(3, 4)

	if view.Len() != 30 {
		t.Fatalf("snapshot len = %d, want 30 (parent mutated to %d)", view.Len(), cp.Len())
	}
	got, _, err := view.SelfJoin(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot join: %d pairs, pre-mutation corpus had %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("snapshot pair %d: %+v != %+v", i, got[i], want[i])
		}
	}
	if _, err := view.Add(ts[0]); !errors.Is(err, treejoin.ErrImmutableSnapshot) {
		t.Fatalf("snapshot Add: err = %v, want ErrImmutableSnapshot", err)
	}
	if n := view.Remove(0); n != 0 {
		t.Fatalf("snapshot Remove removed %d", n)
	}

	// The parent reflects its mutations.
	if cp.Len() != 29 {
		t.Fatalf("parent len = %d, want 29", cp.Len())
	}
}

// TestCorpusSeqPinnedToEpoch: a sequence obtained before a mutation runs
// against the membership it was created over, even when iterated only after
// the mutation landed.
func TestCorpusSeqPinnedToEpoch(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(30, 8)
	cp := mustCorpus(t, ts)
	want, _, err := cp.SelfJoin(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}

	seq, err := cp.SelfJoinSeq(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	cp.Remove(0, 1, 2, 3, 4, 5)

	var got []treejoin.Pair
	for p := range seq {
		got = append(got, p)
	}
	sortPairs(got)
	if len(got) != len(want) {
		t.Fatalf("pinned seq: %d pairs, pre-mutation join had %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pinned seq pair %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestCorpusSearchInvalidation: the per-threshold search-index LRU must not
// survive a mutation — after Remove, a repeated Search at the same threshold
// (the LRU's sweet spot) must agree with a fresh corpus over the survivors;
// after Add, new trees must be found.
func TestCorpusSearchInvalidation(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(40, 21)
	cp := mustCorpus(t, ts)
	q := ts[7]

	before, err := cp.Search(ctx, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range before {
		if m.Pos == 7 && m.Dist == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("query tree not found in its own corpus")
	}

	cp.Remove(7) // the id of ts[7]
	after, err := cp.Search(ctx, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	freshCp := mustCorpus(t, survivors(cp))
	want, err := freshCp.Search(ctx, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(want) {
		t.Fatalf("post-Remove search: %d matches, fresh corpus %d", len(after), len(want))
	}
	for i := range after {
		if after[i] != want[i] {
			t.Fatalf("post-Remove match %d: %+v != %+v (stale index?)", i, after[i], want[i])
		}
	}
	for _, m := range after {
		if cp.Tree(m.Pos) == q {
			t.Fatal("post-Remove search returned the removed tree")
		}
	}

	// Re-adding the tree makes it findable again, at the new position.
	ids, err := cp.Add(q)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cp.Search(ctx, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	pos, _ := cp.PosOf(ids[0])
	found = false
	for _, m := range again {
		if m.Pos == pos && m.Dist == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("re-added tree not found: matches=%v, want pos %d", again, pos)
	}
}

// TestCorpusDynamicTokenIndex: a corpus that has mutated probes its
// maintained token index (Stats.Source says so) and keeps results identical
// to a fresh corpus; before any mutation the per-run source runs, exactly as
// for a static corpus.
func TestCorpusDynamicTokenIndex(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(60, 17)
	cp := mustCorpus(t, ts)

	var st treejoin.Stats
	if _, _, err := cp.SelfJoin(ctx, 2, treejoin.WithMethod(treejoin.MethodSTR), treejoin.WithStats(&st)); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(st.Source, "dyn-") {
		t.Fatalf("static corpus probed a dynamic index: source = %q", st.Source)
	}

	cp.Remove(0, 13)
	if _, err := cp.Add(ts[0]); err != nil {
		t.Fatal(err)
	}

	for _, m := range []treejoin.Method{treejoin.MethodSTR, treejoin.MethodSET, treejoin.MethodPQGram} {
		got, gst, err := cp.SelfJoin(ctx, 2, treejoin.WithMethod(m), treejoin.WithStats(&st))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(gst.Source, "dyn-token-index(") {
			t.Fatalf("%v: mutated corpus source = %q, want dyn-token-index", m, gst.Source)
		}
		fresh := mustCorpus(t, survivors(cp))
		want, _, err := fresh.SelfJoin(ctx, 2, treejoin.WithMethod(m))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d pairs, fresh corpus %d", m, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v pair %d: %+v != %+v", m, i, got[i], want[i])
			}
		}
	}

	// The maintained index is reused across joins: a second join at a new
	// threshold recomputes no per-tree signature (the warm-corpus contract
	// extends to dynamic corpora).
	base := cp.CacheStats()
	if _, _, err := cp.SelfJoin(ctx, 3, treejoin.WithMethod(treejoin.MethodSTR)); err != nil {
		t.Fatal(err)
	}
	if now := cp.CacheStats(); now.Misses != base.Misses {
		t.Fatalf("warm dynamic join recomputed %d signatures", now.Misses-base.Misses)
	}

	// Degenerate thresholds (τ at the largest tree's size) keep the
	// sorted-loop fallback even on a mutated corpus — no maintained index
	// is materialised or probed in a regime where it cannot help.
	maxSize := 0
	for i := 0; i < cp.Len(); i++ {
		if s := cp.Tree(i).Size(); s > maxSize {
			maxSize = s
		}
	}
	if _, _, err := cp.SelfJoin(ctx, maxSize, treejoin.WithMethod(treejoin.MethodSTR), treejoin.WithStats(&st)); err != nil {
		t.Fatal(err)
	}
	if st.Source != "sorted-loop" {
		t.Fatalf("degenerate τ source = %q, want sorted-loop", st.Source)
	}
}

// TestCorpusEvictionNotUndone: a snapshot re-running queries after the
// parent removed trees must not repopulate the shared cache with the dead
// trees' artifacts — they land in the view's overflow, so Remove's eviction
// holds and shared-cache memory tracks the live collection.
func TestCorpusEvictionNotUndone(t *testing.T) {
	ctx := context.Background()
	ts := synth.Synthetic(30, 43)
	cp := mustCorpus(t, ts)
	want, _, err := cp.SelfJoin(ctx, 1) // warm every live artifact
	if err != nil {
		t.Fatal(err)
	}

	view := cp.Snapshot()
	cp.Remove(0, 1, 2)
	evicted := cp.CacheStats().Entries

	got, _, err := view.SelfJoin(ctx, 1) // recomputes the dead trees' artifacts
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot join after parent Remove: %d pairs, want %d", len(got), len(want))
	}
	if after := cp.CacheStats().Entries; after != evicted {
		t.Fatalf("snapshot query undid eviction: shared cache grew %d -> %d entries", evicted, after)
	}
}

// TestIncrementalRetraction: the standing result view tracks Add/Remove
// exactly — Pairs is always the self-join of the live trees, Retracted
// drains precisely the withdrawn pairs, and a mirror applying both deltas
// matches Pairs.
func TestIncrementalRetraction(t *testing.T) {
	lt := treejoin.NewLabelTable()
	parse := func(s string) *treejoin.Tree { return treejoin.MustParseBracket(s, lt) }
	inc := treejoin.NewIncremental(1)

	mirror := map[[2]int]int{}
	apply := func(added []treejoin.Pair) {
		for _, p := range added {
			mirror[[2]int{p.I, p.J}] = p.Dist
		}
		for _, p := range inc.Retracted() {
			delete(mirror, [2]int{p.I, p.J})
		}
		standing := inc.Pairs()
		if len(standing) != len(mirror) {
			t.Fatalf("mirror has %d pairs, standing view %d", len(mirror), len(standing))
		}
		for _, p := range standing {
			if d, ok := mirror[[2]int{p.I, p.J}]; !ok || d != p.Dist {
				t.Fatalf("standing pair %+v missing from mirror (dist %d)", p, d)
			}
		}
	}

	apply(inc.Add(parse("{a{b}{c}}")))      // 0
	apply(inc.Add(parse("{a{b}{d}}")))      // 1: pairs with 0
	apply(inc.Add(parse("{a{b}{c}{d}}")))   // 2: pairs with 0 and 1
	apply(inc.Add(parse("{z}")))            // 3: no partners
	if got := len(inc.Pairs()); got != 3 {
		t.Fatalf("standing pairs = %d, want 3", got)
	}

	if !inc.Remove(0) {
		t.Fatal("Remove(0) failed")
	}
	retracted := inc.Retracted()
	if len(retracted) != 2 {
		t.Fatalf("retracted %d pairs, want 2 (both involving tree 0): %v", len(retracted), retracted)
	}
	for _, p := range retracted {
		if p.I != 0 {
			t.Fatalf("retracted pair %+v does not involve tree 0", p)
		}
		delete(mirror, [2]int{p.I, p.J})
	}
	if got := inc.Pairs(); len(got) != 1 || got[0].I != 1 || got[0].J != 2 {
		t.Fatalf("standing pairs after retraction = %v, want [{1 2 ...}]", got)
	}
	if st := inc.Stats(); st.PairsRetracted != 2 {
		t.Fatalf("Stats.PairsRetracted = %d, want 2", st.PairsRetracted)
	}

	// Update = Remove + Add: the replacement's pairs enter the standing
	// view, the replaced tree's pairs leave it.
	_, pairs := inc.Update(1, parse("{a{b}{c}}"))
	apply(pairs)
}
