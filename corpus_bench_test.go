// BenchmarkCorpusReuse quantifies the tentpole of the Corpus API: per-tree
// signature reuse. "cold" pays the legacy cost profile — a fresh corpus per
// join, every signature recomputed; "warm" joins the same corpus again at a
// different threshold, so signatures come from the cache and only the
// τ-dependent work runs. The gap between the two is the precomputation share
// of each method, the quantity BENCH_corpus.json records.
package treejoin_test

import (
	"context"
	"fmt"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

func BenchmarkCorpusReuse(b *testing.B) {
	ctx := context.Background()
	// Bigger trees, moderate cardinality: the serving profile where per-tree
	// signature extraction is a real share of a join (small τ keeps the
	// surviving pair work bounded, as a warmed production corpus would see).
	ts := synth.Generate(synth.SyntheticParams(120, 4, 8, 30, 250, 1))
	methods := []treejoin.Method{
		treejoin.MethodPartSJ,
		treejoin.MethodSTR,
		treejoin.MethodSET,
		treejoin.MethodPQGram,
	}
	for _, m := range methods {
		b.Run(fmt.Sprintf("cold/%s", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cp, err := treejoin.NewCorpus(ts)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := cp.SelfJoin(ctx, 2, treejoin.WithMethod(m)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("warm/%s", m), func(b *testing.B) {
			cp, err := treejoin.NewCorpus(ts)
			if err != nil {
				b.Fatal(err)
			}
			// Warm the cache at a different threshold: the measured joins
			// reuse signatures computed here, never recomputing them.
			if _, _, err := cp.SelfJoin(ctx, 1, treejoin.WithMethod(m)); err != nil {
				b.Fatal(err)
			}
			base := cp.CacheStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := cp.SelfJoin(ctx, 2, treejoin.WithMethod(m)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := cp.CacheStats()
			b.ReportMetric(float64(st.Hits-base.Hits)/float64(b.N), "cachehits/op")
			if m != treejoin.MethodPartSJ && st.Misses != base.Misses {
				b.Fatalf("warm run recomputed %d signatures", st.Misses-base.Misses)
			}
		})
	}
}
