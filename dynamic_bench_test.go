// BenchmarkDynamicUpdate quantifies the tentpole of the dynamic Corpus:
// maintaining state under mutation instead of recomputing it. "incremental"
// is one Update (Remove + Add + delta) against a standing 2000-tree
// incremental join — the maintained-result path; "corpus-churn" is one
// Remove + Add on a 2000-tree corpus with materialised token indexes — the
// maintained-index path (posting-list append + tombstone, cache eviction,
// epoch swap). "rebuild" is the alternative both replace: build a fresh
// corpus over the same 2000 trees and re-run the self join from scratch.
// BENCH_dynamic.json records the gap; the acceptance bar is per-update cost
// at least 10× below rebuild.
package treejoin_test

import (
	"context"
	"testing"

	"treejoin"
)

func BenchmarkDynamicUpdate(b *testing.B) {
	ctx := context.Background()
	ts := engineBenchCorpus() // the shared 2000-tree synthetic corpus

	b.Run("incremental", func(b *testing.B) {
		inc := treejoin.NewIncremental(2)
		for _, t := range ts {
			inc.Add(t)
		}
		live := make([]int, len(ts))
		for i := range live {
			live[i] = i
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := (i * 13) % len(live)
			t := inc.Tree(live[k])
			np, _ := inc.Update(live[k], t)
			inc.Retracted()
			live[k] = np
		}
	})

	b.Run("corpus-churn", func(b *testing.B) {
		cp, err := treejoin.NewCorpus(ts)
		if err != nil {
			b.Fatal(err)
		}
		// Materialise the maintained token indexes (one per tokenizer
		// class) so every churn iteration pays their posting updates.
		ids, err := cp.Add(ts[0])
		if err != nil {
			b.Fatal(err)
		}
		cp.Remove(ids[0])
		for _, m := range []treejoin.Method{treejoin.MethodSTR, treejoin.MethodSET} {
			if _, _, err := cp.SelfJoin(ctx, 1, treejoin.WithMethod(m)); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := (i * 13) % cp.Len()
			id, t := cp.ID(p), cp.Tree(p)
			cp.Remove(id)
			if _, err := cp.Add(t); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cp, err := treejoin.NewCorpus(ts)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := cp.SelfJoin(ctx, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}
