package treejoin

import (
	"testing"
	"time"

	"treejoin/internal/sim"
)

// TestFoldStats: the sharded rollup sums every counter and duration, merges
// stages by name in first-seen order, and reports a single source only when
// every round agrees.
func TestFoldStats(t *testing.T) {
	total := &sim.Stats{Trees: 10}
	foldStats(total, &sim.Stats{
		Candidates: 5, Results: 2,
		CandTime: time.Millisecond, VerifyTime: 2 * time.Millisecond,
		Source: "token-index",
		Stages: []sim.StageStats{
			{Name: "HIST", In: 100, Pruned: 60, SampledNs: 10, Sampled: 4},
		},
		PostingsScanned: 7, SkippedByCount: 3, DPAvoided: 2,
	})
	foldStats(total, &sim.Stats{
		Candidates: 3, Results: 1,
		CandTime: time.Millisecond, VerifyTime: time.Millisecond,
		Source: "token-index",
		Stages: []sim.StageStats{
			{Name: "HIST", In: 40, Pruned: 10, SampledNs: 5, Sampled: 2},
			{Name: "STR", In: 30, Pruned: 5},
		},
		PostingsScanned: 1, SkippedByCount: 2, DPAvoided: 1,
	})
	foldStats(total, nil) // a skipped round folds as a no-op

	if total.Candidates != 8 || total.Results != 3 {
		t.Fatalf("counters: Candidates=%d Results=%d", total.Candidates, total.Results)
	}
	if total.CandTime != 2*time.Millisecond || total.VerifyTime != 3*time.Millisecond {
		t.Fatalf("durations: Cand=%v Verify=%v", total.CandTime, total.VerifyTime)
	}
	if total.PostingsScanned != 8 || total.SkippedByCount != 5 || total.DPAvoided != 3 {
		t.Fatalf("index/verifier counters wrong: %+v", total)
	}
	if total.Source != "token-index" {
		t.Fatalf("source = %q, want token-index", total.Source)
	}
	if len(total.Stages) != 2 || total.Stages[0].Name != "HIST" || total.Stages[1].Name != "STR" {
		t.Fatalf("stages = %+v", total.Stages)
	}
	if total.Stages[0].In != 140 || total.Stages[0].Pruned != 70 ||
		total.Stages[0].SampledNs != 15 || total.Stages[0].Sampled != 6 {
		t.Fatalf("HIST merge = %+v", total.Stages[0])
	}

	foldStats(total, &sim.Stats{Source: "sorted-loop"})
	if total.Source != "mixed" {
		t.Fatalf("disagreeing sources: %q, want mixed", total.Source)
	}
}

// TestShardedRollupMatchesRounds: the rollup a sharded self join publishes is
// exactly the field-wise sum of its rounds — checked by comparing against the
// sum of each round run individually on the same pinned shard views.
func TestShardedRollupMatchesRounds(t *testing.T) {
	ts := chainForest(24)
	sc, err := NewSharded(3, ts)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := sc.SelfJoin(t.Context(), 2, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trees != len(ts) {
		t.Fatalf("rollup Trees = %d, want %d", stats.Trees, len(ts))
	}

	// Re-run every round by hand on the same pinned state and sum.
	st := sc.state.Load()
	want := &sim.Stats{Trees: len(ts)}
	c := buildConfig([]Option{WithWorkers(1)})
	sum := func(part *sim.Stats, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		foldStats(want, part)
	}
	for s := range st.views {
		if st.views[s].Len() >= 2 {
			sum(st.views[s].streamSelfWith(t.Context(), 2, c, func(Pair) bool { return true }))
		}
	}
	for a := range st.views {
		for b := a + 1; b < len(st.views); b++ {
			if st.views[a].Len() > 0 && st.views[b].Len() > 0 {
				sum(st.views[a].streamJoinWith(t.Context(), st.views[b], 2, c, func(Pair) bool { return true }))
			}
		}
	}
	if stats.Candidates != want.Candidates || stats.Results != want.Results {
		t.Fatalf("rollup Candidates/Results = %d/%d, want %d/%d",
			stats.Candidates, stats.Results, want.Candidates, want.Results)
	}
	if stats.PostingsScanned != want.PostingsScanned || stats.DPAvoided != want.DPAvoided {
		t.Fatalf("rollup counters = %d/%d, want %d/%d",
			stats.PostingsScanned, stats.DPAvoided, want.PostingsScanned, want.DPAvoided)
	}
}

// chainForest builds n chain trees of staggered depths over one table.
func chainForest(n int) []*Tree {
	lt := NewLabelTable()
	ts := make([]*Tree, n)
	for i := range ts {
		s := "{a"
		for d := 0; d < 2+i%5; d++ {
			s += "{a"
		}
		for d := 0; d < 2+i%5; d++ {
			s += "}"
		}
		s += "}"
		ts[i] = MustParseBracket(s, lt)
	}
	return ts
}
