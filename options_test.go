package treejoin_test

import (
	"strings"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

func TestNegativeTauPanics(t *testing.T) {
	cases := []func(){
		func() { treejoin.SelfJoin(nil, -1) },
		func() { treejoin.Join(nil, nil, -2) },
		func() { treejoin.NewIncremental(-1) },
		func() { treejoin.NewIndex(nil, -3) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic on negative tau", i)
				}
			}()
			f()
		}()
	}
}

func TestJoinSupportsEveryMethod(t *testing.T) {
	// Historically Join panicked for every method but PartSJ; the engine
	// refactor made cross joins universal. See cross_join_test.go for the
	// oracle agreement property test.
	lt := treejoin.NewLabelTable()
	a := []*treejoin.Tree{treejoin.MustParseBracket("{a{b}{c}}", lt)}
	b := []*treejoin.Tree{
		treejoin.MustParseBracket("{a{b}{d}}", lt),
		treejoin.MustParseBracket("{x{y{z{w}}}}", lt),
	}
	for _, m := range []treejoin.Method{
		treejoin.MethodPartSJ, treejoin.MethodSTR, treejoin.MethodSET,
		treejoin.MethodBruteForce, treejoin.MethodHistogram,
		treejoin.MethodEulerString, treejoin.MethodPQGram,
	} {
		pairs, _ := treejoin.Join(a, b, 1, treejoin.WithMethod(m))
		if len(pairs) != 1 || pairs[0].I != 0 || pairs[0].J != 0 || pairs[0].Dist != 1 {
			t.Fatalf("%v: Join = %+v, want one (0,0,1) pair", m, pairs)
		}
	}
}

func TestUnknownMethodString(t *testing.T) {
	if s := treejoin.Method(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("Method(99) = %q", s)
	}
}

func TestHybridAndWorkersComposable(t *testing.T) {
	ts := synth.Synthetic(60, 51)
	ref, _ := treejoin.SelfJoin(ts, 2)
	got, _ := treejoin.SelfJoin(ts, 2,
		treejoin.WithHybridVerification(), treejoin.WithWorkers(4))
	if len(got) != len(ref) {
		t.Fatalf("composed options changed results: %d vs %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestIncrementalHybrid(t *testing.T) {
	ts := synth.Synthetic(50, 53)
	plain := treejoin.NewIncremental(2)
	hybrid := treejoin.NewIncremental(2, treejoin.WithHybridVerification())
	var nPlain, nHybrid int
	for _, tr := range ts {
		nPlain += len(plain.Add(tr))
		nHybrid += len(hybrid.Add(tr))
	}
	if nPlain != nHybrid {
		t.Fatalf("hybrid incremental differs: %d vs %d", nPlain, nHybrid)
	}
	if plain.Tree(0) != ts[0] {
		t.Fatal("Tree accessor wrong")
	}
}

func TestMeasureExported(t *testing.T) {
	ts := synth.Synthetic(30, 3)
	s := treejoin.Measure(ts)
	if s.Trees != 30 || s.AvgSize <= 0 {
		t.Fatalf("Measure = %+v", s)
	}
}

func TestWriteBracketLinesError(t *testing.T) {
	lt := treejoin.NewLabelTable()
	ts := []*treejoin.Tree{treejoin.MustParseBracket("{a{b}}", lt)}
	if err := treejoin.WriteBracketLines(failingWriter{}, ts); err == nil {
		t.Fatal("write error not propagated")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }
