// The mutation oracle: a dynamic corpus subjected to a random Add/Remove
// sequence must remain observationally identical to a corpus freshly built
// over the surviving trees — bit-identical SelfJoin results (pairs and
// distances) for every method at every threshold, and bit-identical cross
// joins. This is the soundness harness for everything mutation maintains:
// the copy-on-write state, the cache evictions, the tombstoned token-index
// posting lists, and their compaction.
package treejoin_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

var oracleMethods = []treejoin.Method{
	treejoin.MethodPartSJ,
	treejoin.MethodSTR,
	treejoin.MethodSET,
	treejoin.MethodHistogram,
	treejoin.MethodEulerString,
	treejoin.MethodPQGram,
	treejoin.MethodBruteForce,
}

var oracleTaus = []int{0, 1, 2, 4}

// checkSelfOracle asserts cp's SelfJoin equals a fresh corpus over the
// survivors, for every method × τ.
func checkSelfOracle(t *testing.T, step string, cp *treejoin.Corpus) {
	t.Helper()
	ctx := context.Background()
	fresh := mustCorpus(t, survivors(cp))
	for _, m := range oracleMethods {
		for _, tau := range oracleTaus {
			got, _, err := cp.SelfJoin(ctx, tau, treejoin.WithMethod(m))
			if err != nil {
				t.Fatalf("%s %v τ=%d: %v", step, m, tau, err)
			}
			want, _, err := fresh.SelfJoin(ctx, tau, treejoin.WithMethod(m))
			if err != nil {
				t.Fatalf("%s %v τ=%d (fresh): %v", step, m, tau, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s %v τ=%d: %d pairs, fresh corpus %d", step, m, tau, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s %v τ=%d pair %d: %+v != %+v", step, m, tau, i, got[i], want[i])
				}
			}
		}
	}
}

// checkCrossOracle asserts cp's cross join against other equals a fresh
// corpus's, for every method × τ.
func checkCrossOracle(t *testing.T, step string, cp, other *treejoin.Corpus) {
	t.Helper()
	ctx := context.Background()
	fresh := mustCorpus(t, survivors(cp))
	for _, m := range oracleMethods {
		for _, tau := range oracleTaus {
			got, _, err := cp.Join(ctx, other, tau, treejoin.WithMethod(m))
			if err != nil {
				t.Fatalf("%s cross %v τ=%d: %v", step, m, tau, err)
			}
			want, _, err := fresh.Join(ctx, other, tau, treejoin.WithMethod(m))
			if err != nil {
				t.Fatalf("%s cross %v τ=%d (fresh): %v", step, m, tau, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s cross %v τ=%d: %d pairs, fresh corpus %d", step, m, tau, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s cross %v τ=%d pair %d: %+v != %+v", step, m, tau, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMutationOracle(t *testing.T) {
	ctx := context.Background()
	// One generator call: every tree shares a label table. The first 60
	// seed the corpus (enough to engage the token-index machinery), the
	// rest feed the Add stream.
	pool := synth.Generate(synth.SyntheticParams(110, 3, 5, 20, 60, 37))
	cp := mustCorpus(t, pool[:60])
	other := mustCorpus(t, pool[95:])
	rng := rand.New(rand.NewSource(41))

	liveIDs := make([]int, 60)
	for i := range liveIDs {
		liveIDs[i] = i
	}
	next := 60 // next pool tree to add

	for step := 0; step < 6; step++ {
		if rng.Intn(2) == 0 && next < 95 {
			n := 1 + rng.Intn(3)
			if next+n > 95 {
				n = 95 - next
			}
			ids, err := cp.Add(pool[next : next+n]...)
			if err != nil {
				t.Fatalf("step %d Add: %v", step, err)
			}
			liveIDs = append(liveIDs, ids...)
			next += n
		} else {
			n := 1 + rng.Intn(4)
			for k := 0; k < n && len(liveIDs) > 50; k++ {
				i := rng.Intn(len(liveIDs))
				cp.Remove(liveIDs[i])
				liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
			}
		}
		checkSelfOracle(t, "step "+string(rune('0'+step)), cp)
	}
	checkCrossOracle(t, "final", cp, other)

	// The sweep must have exercised the maintained index, not fallen back:
	// mutation happened, the corpus is large enough, so signature joins
	// probe the dynamic snapshot.
	var st treejoin.Stats
	if _, _, err := cp.SelfJoin(ctx, 2, treejoin.WithMethod(treejoin.MethodPQGram), treejoin.WithStats(&st)); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(st.Source, "dyn-token-index(") {
		t.Fatalf("oracle never probed the dynamic index: source = %q", st.Source)
	}
}

// TestMutationOracleChurn drives removals deep enough to force token-index
// compaction and re-adds on top of it, then re-checks the oracle: compaction
// must never drop a live posting (a dropped posting would lose result
// pairs).
func TestMutationOracleChurn(t *testing.T) {
	pool := synth.Generate(synth.SyntheticParams(140, 3, 5, 20, 50, 53))
	cp := mustCorpus(t, pool[:100])

	// Materialise the maintained indexes, then churn hard.
	cp.Remove(0)
	checkSelfOracle(t, "churn warmup", cp)

	ids := make([]int, 0, 60)
	for id := 1; id <= 60; id++ {
		ids = append(ids, id)
	}
	cp.Remove(ids...) // 61/100 gone: past the compaction ratio
	if _, err := cp.Add(pool[100:]...); err != nil {
		t.Fatal(err)
	}
	checkSelfOracle(t, "churn", cp)
}
