// Package synth generates synthetic tree collections. It plays two roles:
//
//  1. It reimplements the paper's synthetic workload: the Zaki-style random
//     tree generator parameterised by maximum fanout, maximum depth, label
//     alphabet and average tree size, combined with the decay factor Dz of
//     Yang et al. [27], under which generated trees are perturbed by random
//     node edit operations.
//  2. It provides shape-matched stand-ins for the paper's three real
//     datasets (Swissprot, Treebank, Sentiment), whose XML dumps are not
//     available offline. Each profile reproduces the published collection
//     statistics — average size, label count, average and maximum depth — so
//     the join methods face the same filter selectivities.
//
// Perturbed copies ("clusters") give the similarity join a non-trivial
// result set, mirroring the near-duplicates present in the real collections.
package synth

import (
	"fmt"
	"math/rand"

	"treejoin/internal/tree"
)

// Params controls the generator. The zero value is not usable; start from
// Defaults or a profile.
type Params struct {
	N          int     // number of trees to generate
	AvgSize    int     // mean target tree size (nodes)
	SizeJitter float64 // relative spread of the target size (uniform ±)
	MaxFanout  int     // maximum children per node
	MaxDepth   int     // maximum node depth (root = 0)
	Labels     int     // alphabet size; labels are "l0".."l{Labels-1}"
	LabelSkew  float64 // 0 = uniform; > 1 = Zipf exponent over the alphabet.
	// Real markup vocabularies are heavily skewed (a handful of tags
	// dominate), which is what makes bag-based filters like SET's binary
	// branches weakly selective on the paper's datasets.
	DepthBias float64 // in [-1, 1]: negative grows flat trees, positive deep
	Cluster   int     // trees per seed tree (1 = all independent)
	Decay     float64 // per-node probability of a random edit in a variant
	Moves     float64 // fraction of perturbations that relocate a whole subtree
	// instead of editing one node. Moves model the block reorderings common
	// between near-duplicate XML documents: cheap for bag-based filters to
	// miss, expensive in TED.
	Seed int64 // RNG seed; equal Params give equal collections
}

// Defaults returns the paper's synthetic dataset parameters (§4: fanout 3,
// maximum depth 5, 20 labels, tree size 80, Dz = 0.05, 10K trees).
func Defaults() Params {
	return Params{
		N:          10000,
		AvgSize:    80,
		SizeJitter: 0.3,
		MaxFanout:  3,
		MaxDepth:   5,
		Labels:     20,
		DepthBias:  0,
		Cluster:    4,
		Decay:      0.05,
		Seed:       1,
	}
}

// Generate produces p.N trees sharing one label table (reachable through any
// tree's Labels field).
func Generate(p Params) []*tree.Tree {
	if p.N < 0 {
		panic("synth: negative N")
	}
	g := newGen(p)
	out := make([]*tree.Tree, 0, p.N)
	for len(out) < p.N {
		seed := g.grow()
		out = append(out, seed)
		for v := 1; v < p.Cluster && len(out) < p.N; v++ {
			out = append(out, g.perturb(seed))
		}
	}
	return out
}

type gen struct {
	p      Params
	rng    *rand.Rand
	labels *tree.LabelTable
	ids    []int32    // interned label ids
	zipf   *rand.Zipf // nil for uniform labels
	// grow scratch
	depth []int32
	kids  []int32
	open  []int32
}

func newGen(p Params) *gen {
	if p.AvgSize < 1 || p.MaxFanout < 1 || p.MaxDepth < 0 || p.Labels < 1 {
		panic(fmt.Sprintf("synth: invalid params %+v", p))
	}
	g := &gen{p: p, rng: rand.New(rand.NewSource(p.Seed)), labels: tree.NewLabelTable()}
	g.ids = make([]int32, p.Labels)
	for i := range g.ids {
		g.ids[i] = g.labels.Intern(fmt.Sprintf("l%d", i))
	}
	if p.LabelSkew > 1 {
		g.zipf = rand.NewZipf(g.rng, p.LabelSkew, 1, uint64(p.Labels-1))
	}
	return g
}

func (g *gen) randLabel() int32 {
	if g.zipf != nil {
		return g.ids[g.zipf.Uint64()]
	}
	return g.ids[g.rng.Intn(len(g.ids))]
}

// grow builds one random tree of roughly AvgSize nodes. Nodes are attached to
// a random open node; DepthBias skews the choice between a shallower and a
// deeper candidate, shaping flat (Swissprot-like) versus deep
// (Sentiment-like) collections.
func (g *gen) grow() *tree.Tree {
	target := g.p.AvgSize
	if g.p.SizeJitter > 0 {
		span := float64(g.p.AvgSize) * g.p.SizeJitter
		target = g.p.AvgSize + int((g.rng.Float64()*2-1)*span)
	}
	if target < 1 {
		target = 1
	}
	b := tree.NewBuilder(g.labels)
	b.RootID(g.randLabel())
	g.depth = append(g.depth[:0], 0)
	g.kids = append(g.kids[:0], 0)
	g.open = g.open[:0]
	if g.p.MaxDepth > 0 {
		g.open = append(g.open, 0)
	}
	size := 1
	for size < target && len(g.open) > 0 {
		parent, ok := g.pickOpen()
		if !ok {
			break
		}
		id := b.ChildID(parent, g.randLabel())
		size++
		g.depth = append(g.depth, g.depth[parent]+1)
		g.kids = append(g.kids, 0)
		g.kids[parent]++
		if int(g.depth[id]) < g.p.MaxDepth {
			g.open = append(g.open, id)
		}
	}
	return b.MustBuild()
}

// pickOpen selects an attachment point. With probability |DepthBias| it
// attaches to the newest eligible node (bias > 0, which grows chains and
// hence deep trees) or to the oldest eligible node (bias < 0, which fills
// the shallow levels first and grows flat trees); otherwise it attaches to a
// uniformly random open node.
func (g *gen) pickOpen() (int32, bool) {
	bias := g.p.DepthBias
	if bias > 0 && g.rng.Float64() < bias {
		if n, ok := g.scanEligible(true); ok {
			return n, true
		}
	} else if bias < 0 && g.rng.Float64() < -bias {
		if n, ok := g.scanEligible(false); ok {
			return n, true
		}
	}
	return g.popSaturated()
}

func (g *gen) eligible(n int32) bool {
	return int(g.kids[n]) < g.p.MaxFanout && int(g.depth[n]) < g.p.MaxDepth
}

// scanEligible returns the newest (fromEnd) or oldest eligible open node.
func (g *gen) scanEligible(fromEnd bool) (int32, bool) {
	if fromEnd {
		for i := len(g.open) - 1; i >= 0; i-- {
			if g.eligible(g.open[i]) {
				return g.open[i], true
			}
		}
	} else {
		for i := 0; i < len(g.open); i++ {
			if g.eligible(g.open[i]) {
				return g.open[i], true
			}
		}
	}
	return 0, false
}

// popSaturated returns a random open node with spare capacity, evicting
// saturated entries it stumbles on.
func (g *gen) popSaturated() (int32, bool) {
	for len(g.open) > 0 {
		i := g.rng.Intn(len(g.open))
		n := g.open[i]
		if g.eligible(n) {
			return n, true
		}
		g.open[i] = g.open[len(g.open)-1]
		g.open = g.open[:len(g.open)-1]
	}
	return 0, false
}

// perturb applies the decay model: each node of t independently triggers a
// random edit with probability Decay, and the chosen edits (rename, delete,
// insert with equal probability, as in [27]) are applied sequentially.
func (g *gen) perturb(t *tree.Tree) *tree.Tree {
	edits := 0
	for i := 0; i < t.Size(); i++ {
		if g.rng.Float64() < g.p.Decay {
			edits++
		}
	}
	out := t
	for e := 0; e < edits; e++ {
		if g.p.Moves > 0 && g.rng.Float64() < g.p.Moves {
			out = g.randomMove(out)
		} else {
			out = g.randomEdit(out)
		}
	}
	return out
}

// randomMove relocates a random subtree to a random position elsewhere in
// the tree; on degenerate shapes it falls back to a node edit.
func (g *gen) randomMove(t *tree.Tree) *tree.Tree {
	if t.Size() < 3 {
		return g.randomEdit(t)
	}
	for attempt := 0; attempt < 4; attempt++ {
		x := int32(1 + g.rng.Intn(t.Size()-1)) // not a guaranteed non-root id...
		if t.Nodes[x].Parent == tree.None {
			continue
		}
		target := int32(g.rng.Intn(t.Size()))
		nc := 0
		for c := t.Nodes[target].FirstChild; c != tree.None; c = t.Nodes[c].NextSibling {
			if c != x {
				nc++
			}
		}
		out, err := tree.MoveSubtree(t, x, target, g.rng.Intn(nc+1))
		if err == nil {
			return out
		}
	}
	return g.randomEdit(t)
}

// randomEdit applies one random node edit operation to t, returning a new
// tree. If the sampled operation is inapplicable (e.g. deleting the root of a
// multi-child tree) it falls back to a rename, so the edit count is
// preserved.
func (g *gen) randomEdit(t *tree.Tree) *tree.Tree {
	n := int32(g.rng.Intn(t.Size()))
	switch g.rng.Intn(3) {
	case 0: // rename
		return tree.Rename(t, n, g.labels.Name(g.randLabel()))
	case 1: // delete
		if t.Size() == 1 {
			return tree.Rename(t, n, g.labels.Name(g.randLabel()))
		}
		if t.Nodes[n].Parent == tree.None {
			if t.Nodes[n].FirstChild != tree.None && t.Nodes[t.Nodes[n].FirstChild].NextSibling == tree.None {
				out, err := tree.Delete(t, n)
				if err == nil {
					return out
				}
			}
			return tree.Rename(t, n, g.labels.Name(g.randLabel()))
		}
		out, err := tree.Delete(t, n)
		if err != nil {
			return tree.Rename(t, n, g.labels.Name(g.randLabel()))
		}
		return out
	default: // insert under the sampled node, adopting a random child run
		nc := len(t.Children(n))
		at := 0
		count := 0
		if nc > 0 {
			at = g.rng.Intn(nc + 1)
			maxAdopt := nc - at
			if maxAdopt > 0 {
				count = g.rng.Intn(maxAdopt + 1)
			}
		}
		out, err := tree.Insert(t, n, at, count, g.labels.Name(g.randLabel()))
		if err != nil {
			return tree.Rename(t, n, g.labels.Name(g.randLabel()))
		}
		return out
	}
}
