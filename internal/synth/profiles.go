package synth

import "treejoin/internal/tree"

// Shape-matched stand-ins for the paper's real datasets (§4). Target
// statistics, from the paper:
//
//	Swissprot: 100K trees, avg size 62.37, 84 labels, avg depth 2.65, max 4
//	Treebank:   50K trees, avg size 45.12, 218 labels, avg depth 6.93, max 35
//	Sentiment:  10K trees, avg size 37.31, 5 labels, avg depth 10.84, max 30
//
// The DepthBias / MaxFanout settings below are tuned so generated collections
// land near those statistics (asserted by the profile tests). Cluster/Decay
// plant near-duplicates standing in for the natural redundancy of the real
// collections.

// SwissprotParams returns the generator settings of the Swissprot profile:
// flat, wide, medium-sized trees over a moderate alphabet.
func SwissprotParams(n int, seed int64) Params {
	return Params{
		N: n, AvgSize: 62, SizeJitter: 0.25,
		MaxFanout: 12, MaxDepth: 4, Labels: 84, LabelSkew: 1.4,
		DepthBias: -0.2, Cluster: 4, Decay: 0.055, Moves: 0.35, Seed: seed,
	}
}

// Swissprot generates n trees with the Swissprot profile.
func Swissprot(n int, seed int64) []*tree.Tree { return Generate(SwissprotParams(n, seed)) }

// TreebankParams returns the generator settings of the Treebank profile:
// small, deep parse trees over a large alphabet.
func TreebankParams(n int, seed int64) Params {
	return Params{
		N: n, AvgSize: 45, SizeJitter: 0.35,
		MaxFanout: 4, MaxDepth: 35, Labels: 218, LabelSkew: 1.3,
		DepthBias: 0.55, Cluster: 4, Decay: 0.055, Moves: 0.3, Seed: seed,
	}
}

// Treebank generates n trees with the Treebank profile.
func Treebank(n int, seed int64) []*tree.Tree { return Generate(TreebankParams(n, seed)) }

// SentimentParams returns the generator settings of the Sentiment profile:
// small, very deep, near-binary trees over a 5-label alphabet.
func SentimentParams(n int, seed int64) Params {
	return Params{
		N: n, AvgSize: 37, SizeJitter: 0.3,
		MaxFanout: 2, MaxDepth: 30, Labels: 5,
		DepthBias: 0.82, Cluster: 4, Decay: 0.06, Moves: 0.3, Seed: seed,
	}
}

// Sentiment generates n trees with the Sentiment profile.
func Sentiment(n int, seed int64) []*tree.Tree { return Generate(SentimentParams(n, seed)) }

// SyntheticParams returns the paper's synthetic dataset settings with the
// Table 1 parameters exposed: maximum fanout f, maximum depth d, label count
// l and average tree size t (defaults 3, 5, 20, 80).
func SyntheticParams(n, fanout, depth, labels, size int, seed int64) Params {
	return Params{
		N: n, AvgSize: size, SizeJitter: 0.3,
		MaxFanout: fanout, MaxDepth: depth, Labels: labels,
		DepthBias: 0, Cluster: 4, Decay: 0.05, Seed: seed,
	}
}

// Synthetic generates n trees with the default synthetic profile.
func Synthetic(n int, seed int64) []*tree.Tree {
	return Generate(SyntheticParams(n, 3, 5, 20, 80, seed))
}
