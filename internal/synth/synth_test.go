package synth_test

import (
	"testing"

	"treejoin/internal/synth"
	"treejoin/internal/tree"
)

func TestGenerateBasics(t *testing.T) {
	p := synth.Defaults()
	p.N = 200
	ts := synth.Generate(p)
	if len(ts) != 200 {
		t.Fatalf("generated %d trees", len(ts))
	}
	lt := ts[0].Labels
	for i, tr := range ts {
		if tr.Labels != lt {
			t.Fatalf("tree %d uses a different label table", i)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("tree %d invalid: %v", i, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := synth.SyntheticParams(60, 3, 5, 20, 80, 42)
	a := synth.Generate(p)
	b := synth.Generate(p)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if !tree.Equal(a[i], b[i]) {
			t.Fatalf("tree %d differs between runs with the same seed", i)
		}
	}
	p2 := p
	p2.Seed = 43
	c := synth.Generate(p2)
	same := 0
	for i := range a {
		if tree.Equal(a[i], c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical collections")
	}
}

func TestGenerateRespectsConstraints(t *testing.T) {
	p := synth.Params{
		N: 150, AvgSize: 50, SizeJitter: 0.3, MaxFanout: 3, MaxDepth: 5,
		Labels: 7, DepthBias: 0, Cluster: 1, Decay: 0, Seed: 3,
	}
	ts := synth.Generate(p)
	s := tree.Measure(ts)
	if s.MaxDepth > p.MaxDepth {
		t.Errorf("max depth %d exceeds %d", s.MaxDepth, p.MaxDepth)
	}
	if s.MaxFanout > p.MaxFanout {
		t.Errorf("max fanout %d exceeds %d", s.MaxFanout, p.MaxFanout)
	}
	if s.Labels > p.Labels {
		t.Errorf("labels %d exceed %d", s.Labels, p.Labels)
	}
	if s.AvgSize < float64(p.AvgSize)*0.7 || s.AvgSize > float64(p.AvgSize)*1.3 {
		t.Errorf("avg size %.1f far from target %d", s.AvgSize, p.AvgSize)
	}
}

// TestGenerateConstraintsSurviveDecay: perturbed variants may drift slightly
// (insertions can deepen a path), but structural validity must hold and the
// perturbation must actually perturb.
func TestGenerateConstraintsSurviveDecay(t *testing.T) {
	p := synth.Defaults()
	p.N = 120
	ts := synth.Generate(p)
	distinct := make(map[string]bool)
	for _, tr := range ts {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		distinct[tree.FormatBracket(tr)] = true
	}
	if len(distinct) < len(ts)/3 {
		t.Errorf("only %d distinct trees of %d: decay too weak", len(distinct), len(ts))
	}
	if len(distinct) == len(ts) {
		t.Log("no exact duplicates generated (acceptable but unusual at Dz=0.05)")
	}
}

// TestProfileStats: the dataset stand-ins land near the published statistics
// of the collections they imitate (generous tolerances; the point is shape,
// not decimals).
func TestProfileStats(t *testing.T) {
	type target struct {
		name                   string
		ts                     []*tree.Tree
		avgSize                float64
		maxDepth               int
		avgDepthLo, avgDepthHi float64
	}
	n := 300
	cases := []target{
		{"swissprot", synth.Swissprot(n, 1), 62.37, 4, 1.8, 3.6},
		{"treebank", synth.Treebank(n, 1), 45.12, 35, 4.9, 9.5},
		{"sentiment", synth.Sentiment(n, 1), 37.31, 30, 7.5, 14.5},
		{"synthetic", synth.Synthetic(n, 1), 80, 5, 2.5, 5.0},
	}
	for _, c := range cases {
		s := tree.Measure(c.ts)
		t.Logf("%s: avgSize=%.1f labels=%d avgDepth=%.2f maxDepth=%d maxFanout=%d",
			c.name, s.AvgSize, s.Labels, s.AvgDepth, s.MaxDepth, s.MaxFanout)
		if s.AvgSize < c.avgSize*0.72 || s.AvgSize > c.avgSize*1.28 {
			t.Errorf("%s: avg size %.1f, target %.1f", c.name, s.AvgSize, c.avgSize)
		}
		if s.MaxDepth > c.maxDepth+5 { // decay edits and moves may deepen a little
			t.Errorf("%s: max depth %d, target ≤ %d", c.name, s.MaxDepth, c.maxDepth)
		}
		if s.AvgDepth < c.avgDepthLo || s.AvgDepth > c.avgDepthHi {
			t.Errorf("%s: avg depth %.2f outside [%.1f, %.1f]", c.name, s.AvgDepth, c.avgDepthLo, c.avgDepthHi)
		}
	}
}

func TestGenerateSmallN(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		p := synth.Defaults()
		p.N = n
		ts := synth.Generate(p)
		if len(ts) != n {
			t.Fatalf("N=%d produced %d trees", n, len(ts))
		}
	}
}
