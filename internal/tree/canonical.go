package tree

import "sort"

// Canonicalize returns a copy of t with every sibling group sorted into a
// canonical order. The order is computed with the AHU tree-canonisation
// scheme: nodes are processed by increasing subtree height, each node's
// signature is its label plus the sorted codes of its children, and the
// distinct signatures at each height are ranked to produce dense codes.
// Codes therefore depend only on the (unordered) subtree structure, so the
// canonical form is invariant under any permutation of siblings — two trees
// are equal as *unordered* trees exactly when their canonical forms are
// equal as ordered trees. Canonicalising first lets the ordered-tree
// machinery — joins, search, TED — operate on data where sibling order
// carries no meaning (attribute lists, data-centric XML, sets of records).
//
// Note the semantics for distances: TED between canonical forms is a
// practical approximation of the unordered edit distance, not the distance
// itself (exact unordered TED is MAX SNP-hard). It is exact at distance 0;
// for small perturbations of unordered data it is the standard
// near-duplicate detection choice.
func Canonicalize(t *Tree) *Tree {
	// Rank the labels appearing in t by their string, so the canonical order
	// is independent of label-table interning order (siblings with distinct
	// labels sort alphabetically).
	used := make(map[int32]struct{})
	for i := range t.Nodes {
		used[t.Nodes[i].Label] = struct{}{}
	}
	ids := make([]int32, 0, len(used))
	for id := range used {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return t.Labels.Name(ids[a]) < t.Labels.Name(ids[b]) })
	labelRank := make(map[int32]int64, len(ids))
	for r, id := range ids {
		labelRank[id] = int64(r)
	}

	heights := make([]int32, t.Size())
	post := Postorder(t)
	maxH := int32(0)
	for _, n := range post {
		var h int32
		for c := t.Nodes[n].FirstChild; c != None; c = t.Nodes[c].NextSibling {
			if heights[c]+1 > h {
				h = heights[c] + 1
			}
		}
		heights[n] = h
		if h > maxH {
			maxH = h
		}
	}
	byHeight := make([][]int32, maxH+1)
	for _, n := range post {
		byHeight[heights[n]] = append(byHeight[heights[n]], n)
	}

	// code[n] orders the subtree rooted at n among all subtrees: primary key
	// height, secondary the rank of its signature within that height.
	code := make([]int64, t.Size())
	ordered := make([][]int32, t.Size()) // children in canonical order
	type sig struct {
		node int32
		key  []int64 // label then sorted child codes
	}
	less := func(a, b []int64) bool {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return len(a) < len(b)
	}
	equal := func(a, b []int64) bool { return !less(a, b) && !less(b, a) }
	for h := int32(0); h <= maxH; h++ {
		sigs := make([]sig, 0, len(byHeight[h]))
		for _, n := range byHeight[h] {
			var cs []int32
			for c := t.Nodes[n].FirstChild; c != None; c = t.Nodes[c].NextSibling {
				cs = append(cs, c)
			}
			sort.SliceStable(cs, func(a, b int) bool { return code[cs[a]] < code[cs[b]] })
			ordered[n] = cs
			key := make([]int64, 0, len(cs)+1)
			key = append(key, labelRank[t.Nodes[n].Label])
			for _, c := range cs {
				key = append(key, code[c])
			}
			sigs = append(sigs, sig{node: n, key: key})
		}
		sort.Slice(sigs, func(a, b int) bool { return less(sigs[a].key, sigs[b].key) })
		rank := int64(0)
		for i, s := range sigs {
			if i > 0 && !equal(sigs[i-1].key, s.key) {
				rank++
			}
			code[s.node] = int64(h)<<32 | rank
		}
	}

	// Rebuild in canonical order.
	b := NewBuilder(t.Labels)
	root := b.RootID(t.Nodes[t.Root()].Label)
	type frame struct{ src, dst int32 }
	stack := []frame{{t.Root(), root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range ordered[f.src] {
			id := b.ChildID(f.dst, t.Nodes[c].Label)
			stack = append(stack, frame{c, id})
		}
	}
	return b.MustBuild()
}

// EqualUnordered reports whether a and b are equal as unordered trees: the
// same label and the same multiset of child subtrees (recursively) at every
// node. The trees must share a label table.
func EqualUnordered(a, b *Tree) bool {
	if a.Size() != b.Size() {
		return false
	}
	return Equal(Canonicalize(a), Canonicalize(b))
}
