package tree

// Preorder returns the node ids of t in preorder (node before its children,
// children left to right).
func Preorder(t *Tree) []int32 {
	order := make([]int32, 0, t.Size())
	stack := make([]int32, 0, 16)
	stack = append(stack, t.Root())
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		// Push children right-to-left so the leftmost is popped first.
		cs := t.Children(v)
		for i := len(cs) - 1; i >= 0; i-- {
			stack = append(stack, cs[i])
		}
	}
	return order
}

// Postorder returns the node ids of t in postorder (children left to right,
// then the node).
func Postorder(t *Tree) []int32 {
	order := make([]int32, 0, t.Size())
	type frame struct {
		node  int32
		child int32 // next child to visit
	}
	stack := make([]frame, 0, 16)
	stack = append(stack, frame{t.Root(), t.Nodes[t.Root()].FirstChild})
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.child == None {
			order = append(order, top.node)
			stack = stack[:len(stack)-1]
			continue
		}
		c := top.child
		top.child = t.Nodes[c].NextSibling
		stack = append(stack, frame{c, t.Nodes[c].FirstChild})
	}
	return order
}

// LabelSeq maps a node order to the sequence of label ids along it. It is the
// building block of the STR baseline's pre/postorder traversal strings.
func LabelSeq(t *Tree, order []int32) []int32 {
	seq := make([]int32, len(order))
	for i, n := range order {
		seq[i] = t.Nodes[n].Label
	}
	return seq
}

// EulerString returns the Euler tour string of t as interned symbols: label
// id L maps to 2L on descent and 2L+1 on ascent, so open and close symbols
// of equal labels stay distinct. Both the EUL baseline's string-edit bound
// and the Euler-gram bag bound (internal/pqgram) are stated over this one
// encoding; see DESIGN.md.
func EulerString(t *Tree) []int32 {
	out := make([]int32, 0, 2*t.Size())
	type frame struct {
		node  int32
		child int32 // next child to visit, or None when ascending
	}
	stack := make([]frame, 0, 16)
	root := t.Root()
	out = append(out, 2*t.Nodes[root].Label)
	stack = append(stack, frame{root, t.Nodes[root].FirstChild})
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.child == None {
			out = append(out, 2*t.Nodes[top.node].Label+1)
			stack = stack[:len(stack)-1]
			continue
		}
		c := top.child
		top.child = t.Nodes[c].NextSibling
		out = append(out, 2*t.Nodes[c].Label)
		stack = append(stack, frame{c, t.Nodes[c].FirstChild})
	}
	return out
}

// Depths returns the depth of every node (root depth is 0), indexed by node
// id.
func Depths(t *Tree) []int32 {
	d := make([]int32, t.Size())
	for _, n := range Preorder(t) {
		if p := t.Nodes[n].Parent; p != None {
			d[n] = d[p] + 1
		}
	}
	return d
}

// SubtreeAt extracts the subtree of t rooted at n as a standalone tree
// sharing t's label table. Builder ids are assigned in preorder of the
// subtree, so child order is preserved.
func SubtreeAt(t *Tree, n int32) *Tree {
	b := NewBuilder(t.Labels)
	root := b.RootID(t.Nodes[n].Label)
	type frame struct{ src, dst int32 }
	stack := []frame{{n, root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := t.Nodes[f.src].FirstChild; c != None; c = t.Nodes[c].NextSibling {
			id := b.ChildID(f.dst, t.Nodes[c].Label)
			stack = append(stack, frame{c, id})
		}
	}
	return b.MustBuild()
}

// SubtreeSizes returns, for every node id, the number of nodes in the subtree
// rooted there (including the node itself).
func SubtreeSizes(t *Tree) []int32 {
	sz := make([]int32, t.Size())
	for _, n := range Postorder(t) {
		sz[n] = 1
		for c := t.Nodes[n].FirstChild; c != None; c = t.Nodes[c].NextSibling {
			sz[n] += sz[c]
		}
	}
	return sz
}
