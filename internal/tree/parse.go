package tree

import (
	"fmt"
	"strings"
)

// ParseBracket parses the bracket notation used throughout the tree edit
// distance literature:
//
//	tree  := '{' label tree* '}'
//	label := any characters except '{' and '}'; both (and '\') may be
//	         escaped with a backslash
//
// For example "{a{b{d}}{c}}" is the tree with root a, children b and c, and
// grandchild d under b. Whitespace between a closing brace and the next
// opening brace is ignored so inputs may be pretty-printed; whitespace inside
// a label is preserved.
func ParseBracket(s string, labels *LabelTable) (*Tree, error) {
	if labels == nil {
		labels = NewLabelTable()
	}
	p := &bracketParser{src: s, labels: labels}
	t, err := p.parse()
	if err != nil {
		return nil, err
	}
	return t, nil
}

// MustParseBracket is ParseBracket but panics on error. Intended for tests
// and examples with literal inputs.
func MustParseBracket(s string, labels *LabelTable) *Tree {
	t, err := ParseBracket(s, labels)
	if err != nil {
		panic(err)
	}
	return t
}

type bracketParser struct {
	src    string
	pos    int
	labels *LabelTable
	b      *Builder
}

func (p *bracketParser) parse() (*Tree, error) {
	p.b = NewBuilder(p.labels)
	p.skipSpace()
	if err := p.node(None); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("tree: trailing input at byte %d: %q", p.pos, p.src[p.pos:])
	}
	return p.b.Build()
}

func (p *bracketParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *bracketParser) node(parent int32) error {
	if p.pos >= len(p.src) || p.src[p.pos] != '{' {
		return fmt.Errorf("tree: expected '{' at byte %d", p.pos)
	}
	p.pos++
	label, err := p.label()
	if err != nil {
		return err
	}
	var id int32
	if parent == None {
		id = p.b.Root(label)
	} else {
		id = p.b.Child(parent, label)
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return fmt.Errorf("tree: unexpected end of input, unclosed node %q", label)
		}
		switch p.src[p.pos] {
		case '{':
			if err := p.node(id); err != nil {
				return err
			}
		case '}':
			p.pos++
			return nil
		default:
			return fmt.Errorf("tree: unexpected byte %q at %d", p.src[p.pos], p.pos)
		}
	}
}

func (p *bracketParser) label() (string, error) {
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case '{', '}':
			return sb.String(), nil
		case '\\':
			if p.pos+1 >= len(p.src) {
				return "", fmt.Errorf("tree: dangling escape at byte %d", p.pos)
			}
			sb.WriteByte(p.src[p.pos+1])
			p.pos += 2
		default:
			sb.WriteByte(c)
			p.pos++
		}
	}
	return "", fmt.Errorf("tree: unexpected end of input in label")
}

// FormatBracket renders t in bracket notation. The output round-trips through
// ParseBracket and is canonical: two trees are Equal iff their bracket forms
// are identical strings.
func FormatBracket(t *Tree) string {
	var sb strings.Builder
	formatBracketNode(t, t.Root(), &sb)
	return sb.String()
}

func formatBracketNode(t *Tree, n int32, sb *strings.Builder) {
	sb.WriteByte('{')
	escapeLabel(t.Label(n), sb)
	for c := t.Nodes[n].FirstChild; c != None; c = t.Nodes[c].NextSibling {
		formatBracketNode(t, c, sb)
	}
	sb.WriteByte('}')
}

func escapeLabel(s string, sb *strings.Builder) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{', '}', '\\':
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
}
