package tree_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/tree"
)

// shuffleSiblings returns a copy of t with every sibling group independently
// permuted at random — unordered-equal to t by construction.
func shuffleSiblings(rng *rand.Rand, t *tree.Tree) *tree.Tree {
	b := tree.NewBuilder(t.Labels)
	root := b.RootID(t.Nodes[t.Root()].Label)
	type frame struct{ src, dst int32 }
	stack := []frame{{t.Root(), root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cs := t.Children(f.src)
		rng.Shuffle(len(cs), func(i, j int) { cs[i], cs[j] = cs[j], cs[i] })
		for _, c := range cs {
			id := b.ChildID(f.dst, t.Nodes[c].Label)
			stack = append(stack, frame{c, id})
		}
	}
	return b.MustBuild()
}

func TestCanonicalizeHandCases(t *testing.T) {
	lt := tree.NewLabelTable()
	cases := []struct{ in, want string }{
		{"{a}", "{a}"},
		{"{a{c}{b}}", "{a{b}{c}}"},
		{"{a{b}{b}}", "{a{b}{b}}"},
		// Same label, different subtrees: the smaller structure sorts first.
		{"{a{b{z}}{b}}", "{a{b}{b{z}}}"},
		// Deep reorder: children sorted at every level.
		{"{r{y{d}{c}}{x{b}{a}}}", "{r{x{a}{b}}{y{c}{d}}}"},
	}
	for _, c := range cases {
		got := tree.FormatBracket(tree.Canonicalize(tree.MustParseBracket(c.in, lt)))
		if got != c.want {
			t.Errorf("Canonicalize(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

// TestCanonicalizePermutationInvariant: shuffling siblings never changes the
// canonical form — the defining property.
func TestCanonicalizePermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	lt := tree.NewLabelTable()
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(40)
		b := tree.NewBuilder(lt)
		b.Root(string(rune('a' + rng.Intn(3))))
		for i := 1; i < n; i++ {
			b.Child(int32(rng.Intn(i)), string(rune('a'+rng.Intn(3))))
		}
		orig := b.MustBuild()
		want := tree.Canonicalize(orig)
		if err := want.Validate(); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 4; p++ {
			perm := shuffleSiblings(rng, orig)
			got := tree.Canonicalize(perm)
			if !tree.Equal(got, want) {
				t.Fatalf("trial %d: canonical forms differ:\n%s\n%s\n(from %s and %s)",
					trial, tree.FormatBracket(want), tree.FormatBracket(got),
					tree.FormatBracket(orig), tree.FormatBracket(perm))
			}
			if !tree.EqualUnordered(orig, perm) {
				t.Fatalf("trial %d: EqualUnordered rejected a sibling permutation", trial)
			}
		}
	}
}

// TestCanonicalizeIdempotent: canonical forms are fixed points.
func TestCanonicalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	lt := tree.NewLabelTable()
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(30)
		b := tree.NewBuilder(lt)
		b.Root("r")
		for i := 1; i < n; i++ {
			b.Child(int32(rng.Intn(i)), string(rune('a'+rng.Intn(4))))
		}
		c1 := tree.Canonicalize(b.MustBuild())
		c2 := tree.Canonicalize(c1)
		if !tree.Equal(c1, c2) {
			t.Fatalf("not idempotent: %s vs %s", tree.FormatBracket(c1), tree.FormatBracket(c2))
		}
	}
}

// TestEqualUnorderedNegative: structurally different trees are rejected even
// when label multisets agree.
func TestEqualUnorderedNegative(t *testing.T) {
	lt := tree.NewLabelTable()
	cases := [][2]string{
		{"{a{b}{c}}", "{a{b{c}}}"},       // same labels, different shape
		{"{a{b}{b}}", "{a{b}{c}}"},       // different child multiset
		{"{a{b}}", "{b{a}}"},             // swapped parent/child
		{"{a{x{b}{c}}}", "{a{x{b}{b}}}"}, // deep multiset difference
	}
	for _, c := range cases {
		x := tree.MustParseBracket(c[0], lt)
		y := tree.MustParseBracket(c[1], lt)
		if tree.EqualUnordered(x, y) {
			t.Errorf("EqualUnordered(%s, %s) = true", c[0], c[1])
		}
	}
	// And the ordered difference that unordered equality must accept.
	x := tree.MustParseBracket("{a{c}{b}}", lt)
	y := tree.MustParseBracket("{a{b}{c}}", lt)
	if tree.Equal(x, y) {
		t.Fatal("ordered Equal accepted a reorder")
	}
	if !tree.EqualUnordered(x, y) {
		t.Fatal("EqualUnordered rejected a reorder")
	}
}
