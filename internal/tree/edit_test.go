package tree_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/tree"
)

func TestRename(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{a{b}{c}}", lt)
	r := tree.Rename(a, 1, "x")
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tree.FormatBracket(r); got != "{a{x}{c}}" {
		t.Fatalf("rename = %s", got)
	}
	if tree.FormatBracket(a) != "{a{b}{c}}" {
		t.Fatal("rename mutated the input")
	}
}

func TestDeleteMidNode(t *testing.T) {
	lt := tree.NewLabelTable()
	// Paper Figure 2: deleting N4 from T1 yields T2. T1 = l1(l2(l3(l4(l5,l6))), l7)
	// with N4 = the l4 node; children l5, l6 splice under l3.
	t1 := tree.MustParseBracket("{l1{l2{l3{l4{l5}{l6}}}}{l7}}", lt)
	n4 := int32(-1)
	for id := range t1.Nodes {
		if t1.Label(int32(id)) == "l4" {
			n4 = int32(id)
		}
	}
	t2, err := tree.Delete(t1, n4)
	if err != nil {
		t.Fatal(err)
	}
	if err := t2.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := tree.FormatBracket(t2), "{l1{l2{l3{l5}{l6}}}{l7}}"; got != want {
		t.Fatalf("delete = %s, want %s", got, want)
	}
}

func TestDeleteSplicePreservesSiblingOrder(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{r{x}{m{p}{q}}{y}}", lt)
	var m int32
	for id := range a.Nodes {
		if a.Label(int32(id)) == "m" {
			m = int32(id)
		}
	}
	out, err := tree.Delete(a, m)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tree.FormatBracket(out), "{r{x}{p}{q}{y}}"; got != want {
		t.Fatalf("delete = %s, want %s", got, want)
	}
}

func TestDeleteRoot(t *testing.T) {
	lt := tree.NewLabelTable()
	ok := tree.MustParseBracket("{a{b{c}{d}}}", lt)
	out, err := tree.Delete(ok, 0)
	if err != nil {
		t.Fatalf("single-child root delete: %v", err)
	}
	if got := tree.FormatBracket(out); got != "{b{c}{d}}" {
		t.Fatalf("root delete = %s", got)
	}
	multi := tree.MustParseBracket("{a{b}{c}}", lt)
	if _, err := tree.Delete(multi, 0); err == nil {
		t.Fatal("deleting multi-child root should fail")
	}
	leaf := tree.MustParseBracket("{a}", lt)
	if _, err := tree.Delete(leaf, 0); err == nil {
		t.Fatal("deleting the only node should fail")
	}
}

func TestInsertCases(t *testing.T) {
	lt := tree.NewLabelTable()
	base := tree.MustParseBracket("{r{a}{b}{c}}", lt)
	cases := []struct {
		at, count int
		want      string
	}{
		{0, 0, "{r{x}{a}{b}{c}}"},
		{3, 0, "{r{a}{b}{c}{x}}"},
		{0, 3, "{r{x{a}{b}{c}}}"},
		{1, 1, "{r{a}{x{b}}{c}}"},
		{1, 2, "{r{a}{x{b}{c}}}"},
		{2, 1, "{r{a}{b}{x{c}}}"},
	}
	for _, c := range cases {
		out, err := tree.Insert(base, 0, c.at, c.count, "x")
		if err != nil {
			t.Fatalf("Insert(%d,%d): %v", c.at, c.count, err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("Insert(%d,%d) invalid: %v", c.at, c.count, err)
		}
		if got := tree.FormatBracket(out); got != c.want {
			t.Errorf("Insert(%d,%d) = %s, want %s", c.at, c.count, got, c.want)
		}
	}
}

func TestInsertIntoLeaf(t *testing.T) {
	lt := tree.NewLabelTable()
	base := tree.MustParseBracket("{r{a}}", lt)
	out, err := tree.Insert(base, 1, 0, 0, "x")
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.FormatBracket(out); got != "{r{a{x}}}" {
		t.Fatalf("leaf insert = %s", got)
	}
}

func TestInsertErrors(t *testing.T) {
	lt := tree.NewLabelTable()
	base := tree.MustParseBracket("{r{a}{b}}", lt)
	for _, c := range []struct{ at, count int }{{-1, 0}, {0, 3}, {3, 0}, {2, 1}} {
		if _, err := tree.Insert(base, 0, c.at, c.count, "x"); err == nil {
			t.Errorf("Insert(%d,%d) should fail", c.at, c.count)
		}
	}
}

func TestInsertDeleteInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	lt := tree.NewLabelTable()
	for i := 0; i < 200; i++ {
		orig := randomTree(rng, 40, 4, lt)
		parent := int32(rng.Intn(orig.Size()))
		nc := len(orig.Children(parent))
		at := rng.Intn(nc + 1)
		count := 0
		if nc-at > 0 {
			count = rng.Intn(nc - at + 1)
		}
		ins, err := tree.Insert(orig, parent, at, count, "INSERTED")
		if err != nil {
			t.Fatal(err)
		}
		if ins.Size() != orig.Size()+1 {
			t.Fatalf("insert did not grow the tree by one")
		}
		// Find the inserted node and delete it again.
		var newNode int32 = tree.None
		for id := range ins.Nodes {
			if ins.Label(int32(id)) == "INSERTED" {
				newNode = int32(id)
			}
		}
		back, err := tree.Delete(ins, newNode)
		if err != nil {
			t.Fatal(err)
		}
		if !tree.Equal(orig, back) {
			t.Fatalf("insert+delete != identity:\norig %s\nins  %s\nback %s",
				tree.FormatBracket(orig), tree.FormatBracket(ins), tree.FormatBracket(back))
		}
	}
}

func TestWrapRoot(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{a{b}{c}}", lt)
	w := tree.WrapRoot(a, "top")
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tree.FormatBracket(w); got != "{top{a{b}{c}}}" {
		t.Fatalf("wrap = %s", got)
	}
	back, err := tree.Delete(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Equal(a, back) {
		t.Fatal("wrap+delete root != identity")
	}
}

func TestEditSizeDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	lt := tree.NewLabelTable()
	for i := 0; i < 100; i++ {
		tr := randomTree(rng, 30, 3, lt)
		n := int32(rng.Intn(tr.Size()))
		if got := tree.Rename(tr, n, "zz"); got.Size() != tr.Size() {
			t.Fatal("rename changed size")
		}
		if tr.Nodes[n].Parent != tree.None {
			del, err := tree.Delete(tr, n)
			if err != nil {
				t.Fatal(err)
			}
			if del.Size() != tr.Size()-1 {
				t.Fatal("delete size delta != -1")
			}
			if err := del.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
