package tree_test

import (
	"strings"
	"testing"

	"treejoin/internal/tree"
)

// The HTML fragment of the paper's Figure 1.
const figure1HTML = `<html>
<title>Test page</title>
<body>
<p>This is a <dfn>dfn</dfn> tag example.</p>
</body>
</html>`

func TestParseXMLFigure1(t *testing.T) {
	lt := tree.NewLabelTable()
	tr, err := tree.ParseXMLString(figure1HTML, lt, tree.XMLOptions{IncludeText: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 1's tree: html(title("Test page"), body(p("This is a",
	// dfn("dfn"), "tag example."))) — 9 nodes.
	want := "{html{title{Test page}}{body{p{This is a}{dfn{dfn}}{tag example.}}}}"
	if got := tree.FormatBracket(tr); got != want {
		t.Fatalf("tree = %s\nwant  %s", got, want)
	}
	if tr.Label(tr.Root()) != "html" {
		t.Fatalf("root = %q", tr.Label(tr.Root()))
	}
	cs := tr.Children(tr.Root())
	if len(cs) != 2 || tr.Label(cs[0]) != "title" || tr.Label(cs[1]) != "body" {
		t.Fatalf("root children wrong: %s", tree.FormatBracket(tr))
	}
}

func TestParseXMLElementsOnly(t *testing.T) {
	lt := tree.NewLabelTable()
	tr, err := tree.ParseXMLString(figure1HTML, lt, tree.XMLOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 5 { // html, title, body, p, dfn
		t.Fatalf("size = %d, want 5", tr.Size())
	}
}

func TestParseXMLAttributes(t *testing.T) {
	lt := tree.NewLabelTable()
	tr, err := tree.ParseXMLString(`<a x="1" y="2"><b z="3"/></a>`, lt, tree.XMLOptions{IncludeAttrs: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.FormatBracket(tr); got != "{a{x=1}{y=2}{b{z=3}}}" {
		t.Fatalf("attrs tree = %s", got)
	}
}

func TestParseXMLErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"<a><b></a></b>", // mismatched nesting
		"<a>",            // truncated
		"<a/><b/>",       // two roots
		"just text",
	} {
		if _, err := tree.ParseXMLString(s, nil, tree.XMLOptions{}); err == nil {
			t.Errorf("ParseXMLString(%q) succeeded, want error", s)
		}
	}
}

func TestParseXMLMaxNodes(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 100; i++ {
		sb.WriteString("<c/>")
	}
	sb.WriteString("</r>")
	if _, err := tree.ParseXMLString(sb.String(), nil, tree.XMLOptions{MaxNodes: 10}); err == nil {
		t.Fatal("MaxNodes limit not enforced")
	}
	if tr, err := tree.ParseXMLString(sb.String(), nil, tree.XMLOptions{MaxNodes: 200}); err != nil || tr.Size() != 101 {
		t.Fatalf("within limit: %v, size %d", err, tr.Size())
	}
}

func TestMeasureStats(t *testing.T) {
	lt := tree.NewLabelTable()
	ts := []*tree.Tree{
		tree.MustParseBracket("{a{b}{c}}", lt),
		tree.MustParseBracket("{a{b{c{d}}}}", lt),
	}
	s := tree.Measure(ts)
	if s.Trees != 2 || s.Nodes != 7 {
		t.Fatalf("trees=%d nodes=%d", s.Trees, s.Nodes)
	}
	if s.MinSize != 3 || s.MaxSize != 4 {
		t.Fatalf("min=%d max=%d", s.MinSize, s.MaxSize)
	}
	if s.Labels != 4 {
		t.Fatalf("labels=%d", s.Labels)
	}
	if s.MaxDepth != 3 {
		t.Fatalf("maxdepth=%d", s.MaxDepth)
	}
	if s.MaxFanout != 2 {
		t.Fatalf("maxfanout=%d", s.MaxFanout)
	}
	if s.AvgSize != 3.5 {
		t.Fatalf("avgsize=%f", s.AvgSize)
	}
	empty := tree.Measure(nil)
	if empty.Trees != 0 || empty.Nodes != 0 {
		t.Fatal("Measure(nil) not zero")
	}
}
