package tree_test

import (
	"strings"
	"testing"

	"treejoin/internal/tree"
)

// FuzzParseBracket: arbitrary input must never panic; accepted input must
// round-trip through FormatBracket, and the result must be structurally
// valid.
func FuzzParseBracket(f *testing.F) {
	for _, seed := range []string{
		"{a{b}{c{d}}}",
		"{a}",
		"{}",
		"{a{b}",
		`{a\{b\}}`,
		"{a {b} {c}}",
		"{" + strings.Repeat("{x", 50) + strings.Repeat("}", 51),
		"not a tree",
		"{\\",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		lt := tree.NewLabelTable()
		tr, err := tree.ParseBracket(s, lt)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid tree from %q: %v", s, err)
		}
		out := tree.FormatBracket(tr)
		back, err := tree.ParseBracket(out, lt)
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", out, err)
		}
		if !tree.Equal(tr, back) {
			t.Fatalf("round trip changed tree: %q -> %q", s, out)
		}
	})
}

// FuzzParseXML: arbitrary input must never panic; accepted documents must be
// valid trees within the node budget.
func FuzzParseXML(f *testing.F) {
	for _, seed := range []string{
		"<a><b/><c>text</c></a>",
		"<a>",
		"<a x='1'><a><a/></a></a>",
		"plain",
		"<a><b></a></b>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := tree.ParseXMLString(s, nil, tree.XMLOptions{IncludeText: true, IncludeAttrs: true, MaxNodes: 1000})
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid tree from %q: %v", s, err)
		}
		if tr.Size() > 1000 {
			t.Fatalf("MaxNodes exceeded: %d", tr.Size())
		}
	})
}
