package tree_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/tree"
)

// Figure 4(a) of the paper: the 10-node general tree used to illustrate the
// Knuth transformation.
func figure4Tree(lt *tree.LabelTable) *tree.Tree {
	// l1 has children l2, l6, l7; l2 has children l3, l4, l5;
	// l7 has child l8; l8 has children l9, l10.
	return tree.MustParseBracket("{l1{l2{l3}{l4}{l5}}{l6}{l7{l8{l9}{l10}}}}", lt)
}

func labelsOf(t *tree.Tree, order []int32) []string {
	out := make([]string, len(order))
	for i, n := range order {
		out[i] = t.Label(n)
	}
	return out
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPreorderPostorder(t *testing.T) {
	lt := tree.NewLabelTable()
	tr := figure4Tree(lt)
	pre := labelsOf(tr, tree.Preorder(tr))
	wantPre := []string{"l1", "l2", "l3", "l4", "l5", "l6", "l7", "l8", "l9", "l10"}
	if !eqStrings(pre, wantPre) {
		t.Errorf("preorder = %v", pre)
	}
	post := labelsOf(tr, tree.Postorder(tr))
	wantPost := []string{"l3", "l4", "l5", "l2", "l6", "l9", "l10", "l8", "l7", "l1"}
	if !eqStrings(post, wantPost) {
		t.Errorf("postorder = %v", post)
	}
}

func TestTraversalPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 100; i++ {
		tr := randomTree(rng, 60, 4, nil)
		for _, order := range [][]int32{tree.Preorder(tr), tree.Postorder(tr)} {
			if len(order) != tr.Size() {
				t.Fatalf("order length %d != size %d", len(order), tr.Size())
			}
			seen := make(map[int32]bool)
			for _, n := range order {
				if seen[n] {
					t.Fatalf("node %d visited twice", n)
				}
				seen[n] = true
			}
		}
	}
}

func TestPostorderParentAfterChildren(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 50; i++ {
		tr := randomTree(rng, 60, 4, nil)
		pos := make([]int, tr.Size())
		for i, n := range tree.Postorder(tr) {
			pos[n] = i
		}
		for id := range tr.Nodes {
			if p := tr.Nodes[id].Parent; p != tree.None && pos[id] >= pos[p] {
				t.Fatalf("postorder: child %d after parent %d", id, p)
			}
		}
	}
}

func TestPreorderParentBeforeChildren(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50; i++ {
		tr := randomTree(rng, 60, 4, nil)
		pos := make([]int, tr.Size())
		for i, n := range tree.Preorder(tr) {
			pos[n] = i
		}
		for id := range tr.Nodes {
			if p := tr.Nodes[id].Parent; p != tree.None && pos[id] <= pos[p] {
				t.Fatalf("preorder: child %d before parent %d", id, p)
			}
		}
	}
}

func TestLabelSeq(t *testing.T) {
	lt := tree.NewLabelTable()
	tr := tree.MustParseBracket("{a{b}{a{c}}}", lt)
	seq := tree.LabelSeq(tr, tree.Preorder(tr))
	want := []string{"a", "b", "a", "c"}
	for i, id := range seq {
		if lt.Name(id) != want[i] {
			t.Fatalf("seq[%d] = %q, want %q", i, lt.Name(id), want[i])
		}
	}
}

func TestDepthsAndSubtreeSizes(t *testing.T) {
	lt := tree.NewLabelTable()
	tr := figure4Tree(lt)
	d := tree.Depths(tr)
	if d[0] != 0 {
		t.Errorf("root depth = %d", d[0])
	}
	maxd := int32(0)
	for _, v := range d {
		if v > maxd {
			maxd = v
		}
	}
	if maxd != 3 { // l9/l10 sit at depth 3
		t.Errorf("max depth = %d, want 3", maxd)
	}
	sz := tree.SubtreeSizes(tr)
	if sz[0] != int32(tr.Size()) {
		t.Errorf("root subtree size = %d", sz[0])
	}
	// Sum of (subtree size − 1) over all nodes equals total edge-weighted
	// depth: Σ depth(v).
	var lhs, rhs int64
	for id := range tr.Nodes {
		lhs += int64(sz[id] - 1)
		rhs += int64(d[id])
	}
	if lhs != rhs {
		t.Errorf("Σ(size-1) = %d, Σdepth = %d", lhs, rhs)
	}
}

func TestSubtreeSizesRandomInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 50; i++ {
		tr := randomTree(rng, 80, 3, nil)
		sz := tree.SubtreeSizes(tr)
		d := tree.Depths(tr)
		var lhs, rhs int64
		for id := range tr.Nodes {
			lhs += int64(sz[id] - 1)
			rhs += int64(d[id])
			var kids int32 = 1
			for c := tr.Nodes[id].FirstChild; c != tree.None; c = tr.Nodes[c].NextSibling {
				kids += sz[c]
			}
			if kids != sz[id] {
				t.Fatalf("subtree size mismatch at node %d", id)
			}
		}
		if lhs != rhs {
			t.Fatalf("Σ(size-1)=%d != Σdepth=%d", lhs, rhs)
		}
	}
}
