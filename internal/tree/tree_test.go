package tree_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/tree"
)

// randomTree builds a uniformly random tree with up to maxN nodes and labels
// drawn from an alphabet of the given size. Helper shared by the tests in
// this package.
func randomTree(rng *rand.Rand, maxN, alphabet int, labels *tree.LabelTable) *tree.Tree {
	if labels == nil {
		labels = tree.NewLabelTable()
	}
	n := 1 + rng.Intn(maxN)
	b := tree.NewBuilder(labels)
	lab := func() string { return string(rune('a' + rng.Intn(alphabet))) }
	b.Root(lab())
	for i := 1; i < n; i++ {
		parent := int32(rng.Intn(i))
		b.Child(parent, lab())
	}
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	b := tree.NewBuilder(nil)
	r := b.Root("a")
	c1 := b.Child(r, "b")
	c2 := b.Child(r, "c")
	g := b.Child(c1, "d")
	tr := b.MustBuild()
	if tr.Size() != 4 {
		t.Fatalf("size = %d, want 4", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := tr.Label(r); got != "a" {
		t.Errorf("root label = %q", got)
	}
	if cs := tr.Children(r); len(cs) != 2 || cs[0] != c1 || cs[1] != c2 {
		t.Errorf("children(root) = %v", cs)
	}
	if cs := tr.Children(c1); len(cs) != 1 || cs[0] != g {
		t.Errorf("children(b) = %v", cs)
	}
	if tr.Nodes[g].Parent != c1 {
		t.Errorf("parent(d) = %d", tr.Nodes[g].Parent)
	}
}

func TestBuilderChildOrder(t *testing.T) {
	b := tree.NewBuilder(nil)
	r := b.Root("r")
	want := []string{"c0", "c1", "c2", "c3", "c4"}
	for _, l := range want {
		b.Child(r, l)
	}
	tr := b.MustBuild()
	var got []string
	for _, c := range tr.Children(r) {
		got = append(got, tr.Label(c))
	}
	if len(got) != len(want) {
		t.Fatalf("children = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("child %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestBuilderBuildBeforeRoot(t *testing.T) {
	b := tree.NewBuilder(nil)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build before Root should fail")
	}
}

func TestLabelTable(t *testing.T) {
	lt := tree.NewLabelTable()
	a := lt.Intern("alpha")
	b := lt.Intern("beta")
	if a == b {
		t.Fatal("distinct labels share an id")
	}
	if lt.Intern("alpha") != a {
		t.Fatal("re-interning changed the id")
	}
	if lt.Name(a) != "alpha" || lt.Name(b) != "beta" {
		t.Fatal("Name mismatch")
	}
	if lt.Len() != 2 {
		t.Fatalf("Len = %d", lt.Len())
	}
	if id, ok := lt.Lookup("beta"); !ok || id != b {
		t.Fatal("Lookup(beta) failed")
	}
	if _, ok := lt.Lookup("gamma"); ok {
		t.Fatal("Lookup(gamma) should miss")
	}
}

func TestEqual(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{a{b}{c{d}}}", lt)
	b := tree.MustParseBracket("{a{b}{c{d}}}", lt)
	if !tree.Equal(a, b) {
		t.Fatal("identical trees not Equal")
	}
	cases := []string{
		"{a{b}{c{e}}}", // label differs
		"{a{c{d}}{b}}", // order differs
		"{a{b}{c}}",    // size differs
		"{a{b{c{d}}}}", // shape differs
	}
	for _, s := range cases {
		o := tree.MustParseBracket(s, lt)
		if tree.Equal(a, o) {
			t.Errorf("Equal(%s, %s) = true", tree.FormatBracket(a), s)
		}
	}
	// Different label tables, same content.
	c := tree.MustParseBracket("{a{b}{c{d}}}", tree.NewLabelTable())
	if !tree.Equal(a, c) {
		t.Fatal("Equal across label tables failed")
	}
}

func TestClone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		orig := randomTree(rng, 40, 5, nil)
		cl := orig.Clone()
		if !tree.Equal(orig, cl) {
			t.Fatal("clone differs")
		}
		cl.Nodes[0].Label = cl.Labels.Intern("zz-mutated")
		if tree.Equal(orig, cl) && orig.Label(0) != "zz-mutated" {
			t.Fatal("mutation of clone leaked into original")
		}
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	lt := tree.NewLabelTable()
	base := tree.MustParseBracket("{a{b{c}}{d}}", lt)
	if err := base.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}

	cyc := base.Clone()
	cyc.Nodes[2].FirstChild = 0 // child edge back to the root
	if err := cyc.Validate(); err == nil {
		t.Error("cycle not detected")
	}

	badParent := base.Clone()
	badParent.Nodes[1].Parent = 3
	if err := badParent.Validate(); err == nil {
		t.Error("inconsistent parent not detected")
	}

	empty := &tree.Tree{Labels: lt}
	if err := empty.Validate(); err == nil {
		t.Error("empty tree not detected")
	}
}

func TestRandomTreesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		tr := randomTree(rng, 60, 4, nil)
		if err := tr.Validate(); err != nil {
			t.Fatalf("random tree invalid: %v\n%s", err, tree.FormatBracket(tr))
		}
	}
}
