package tree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// XMLOptions controls how an XML document is mapped onto a tree.
type XMLOptions struct {
	// IncludeText adds a leaf node per non-whitespace character-data run,
	// labeled with the trimmed text. The paper's HTML example (Figure 1)
	// treats text exactly this way.
	IncludeText bool
	// IncludeAttrs adds one leaf node per attribute, labeled "name=value",
	// before the element's other children.
	IncludeAttrs bool
	// MaxNodes aborts parsing once the tree exceeds this many nodes
	// (0 = unlimited); a guard for untrusted inputs.
	MaxNodes int
}

// ParseXML reads one XML document from r and returns its tree representation:
// elements become nodes labeled by tag name, optionally with text and
// attribute leaves.
func ParseXML(r io.Reader, labels *LabelTable, opts XMLOptions) (*Tree, error) {
	if labels == nil {
		labels = NewLabelTable()
	}
	dec := xml.NewDecoder(r)
	b := NewBuilder(labels)
	var stack []int32
	addNode := func(label string) (int32, error) {
		if opts.MaxNodes > 0 && len(b.nodes) >= opts.MaxNodes {
			return None, fmt.Errorf("tree: XML document exceeds %d nodes", opts.MaxNodes)
		}
		if len(stack) == 0 {
			if len(b.nodes) > 0 {
				return None, fmt.Errorf("tree: XML document has multiple roots")
			}
			return b.Root(label), nil
		}
		return b.Child(stack[len(stack)-1], label), nil
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tree: XML parse: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			id, err := addNode(el.Name.Local)
			if err != nil {
				return nil, err
			}
			if opts.IncludeAttrs {
				for _, a := range el.Attr {
					if opts.MaxNodes > 0 && len(b.nodes) >= opts.MaxNodes {
						return nil, fmt.Errorf("tree: XML document exceeds %d nodes", opts.MaxNodes)
					}
					b.Child(id, a.Name.Local+"="+a.Value)
				}
			}
			stack = append(stack, id)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("tree: unbalanced XML end element %s", el.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if !opts.IncludeText || len(stack) == 0 {
				continue
			}
			text := strings.TrimSpace(string(el))
			if text == "" {
				continue
			}
			if _, err := addNode(text); err != nil {
				return nil, err
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("tree: XML document truncated inside element")
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("tree: XML document contains no elements")
	}
	return b.Build()
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(s string, labels *LabelTable, opts XMLOptions) (*Tree, error) {
	return ParseXML(strings.NewReader(s), labels, opts)
}
