// Package tree implements rooted, ordered, labeled trees: the data model of
// the tree similarity join. Nodes carry interned string labels and are stored
// in a flat slice using first-child/next-sibling links, which doubles as the
// left-child/right-sibling (LC-RS) binary representation used by the join
// (see package lcrs).
package tree

import "fmt"

// None marks the absence of a node reference (no parent, child, or sibling).
const None int32 = -1

// LabelTable interns node labels so that trees store compact int32 label ids
// and label equality is an integer comparison. A table is typically shared by
// every tree of a collection. It is not safe for concurrent mutation; joins
// only read it.
type LabelTable struct {
	ids   map[string]int32
	names []string
}

// NewLabelTable returns an empty label table.
func NewLabelTable() *LabelTable {
	return &LabelTable{ids: make(map[string]int32)}
}

// Intern returns the id of name, assigning a fresh id on first use.
func (lt *LabelTable) Intern(name string) int32 {
	if id, ok := lt.ids[name]; ok {
		return id
	}
	id := int32(len(lt.names))
	lt.names = append(lt.names, name)
	lt.ids[name] = id
	return id
}

// Lookup reports the id of name, if it has been interned.
func (lt *LabelTable) Lookup(name string) (int32, bool) {
	id, ok := lt.ids[name]
	return id, ok
}

// Name returns the label string for id. It panics on an id that was never
// issued by this table.
func (lt *LabelTable) Name(id int32) string { return lt.names[id] }

// Len returns the number of distinct labels interned so far.
func (lt *LabelTable) Len() int { return len(lt.names) }

// Node is a single tree node. Children are reached through FirstChild and
// then NextSibling chains; the same two links, read as left/right pointers,
// form the LC-RS binary representation of the tree.
type Node struct {
	Label       int32 // id in the tree's LabelTable
	Parent      int32 // None for the root
	FirstChild  int32 // leftmost child, or None
	NextSibling int32 // sibling immediately to the right, or None
}

// Tree is a rooted ordered labeled tree. The root is always node 0. A Tree is
// immutable after construction by convention: all algorithms in this module
// treat trees as read-only, so one tree may be shared freely across
// goroutines.
type Tree struct {
	Labels *LabelTable
	Nodes  []Node
}

// Size returns the number of nodes.
func (t *Tree) Size() int { return len(t.Nodes) }

// Root returns the root node id (always 0 for a valid tree).
func (t *Tree) Root() int32 { return 0 }

// Label returns the label string of node n.
func (t *Tree) Label(n int32) string { return t.Labels.Name(t.Nodes[n].Label) }

// Children returns the child ids of n in left-to-right order. It allocates;
// hot paths should walk FirstChild/NextSibling directly.
func (t *Tree) Children(n int32) []int32 {
	var cs []int32
	for c := t.Nodes[n].FirstChild; c != None; c = t.Nodes[c].NextSibling {
		cs = append(cs, c)
	}
	return cs
}

// Validate checks the structural invariants of the tree: node 0 is the root,
// parent/child/sibling links are mutually consistent, every node is reachable
// from the root exactly once, and label ids are valid. It returns nil for a
// well-formed tree.
func (t *Tree) Validate() error {
	n := len(t.Nodes)
	if n == 0 {
		return fmt.Errorf("tree: empty tree")
	}
	if t.Nodes[0].Parent != None {
		return fmt.Errorf("tree: root has parent %d", t.Nodes[0].Parent)
	}
	seen := make([]bool, n)
	var count int
	stack := []int32{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v < 0 || int(v) >= n {
			return fmt.Errorf("tree: node id %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("tree: node %d reached twice", v)
		}
		seen[v] = true
		count++
		nd := t.Nodes[v]
		if nd.Label < 0 || int(nd.Label) >= t.Labels.Len() {
			return fmt.Errorf("tree: node %d has invalid label id %d", v, nd.Label)
		}
		prev := None
		for c := nd.FirstChild; c != None; c = t.Nodes[c].NextSibling {
			if c < 0 || int(c) >= n {
				return fmt.Errorf("tree: child id %d of node %d out of range", c, v)
			}
			if t.Nodes[c].Parent != v {
				return fmt.Errorf("tree: node %d lists child %d whose parent is %d", v, c, t.Nodes[c].Parent)
			}
			stack = append(stack, c)
			prev = c
			_ = prev
		}
	}
	if count != n {
		return fmt.Errorf("tree: %d of %d nodes unreachable from root", n-count, n)
	}
	return nil
}

// Equal reports whether a and b are identical trees: same shape and the same
// label strings at corresponding nodes. The trees may use different label
// tables.
func Equal(a, b *Tree) bool {
	if a.Size() != b.Size() {
		return false
	}
	sameTable := a.Labels == b.Labels
	type pair struct{ x, y int32 }
	stack := []pair{{0, 0}}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		na, nb := a.Nodes[p.x], b.Nodes[p.y]
		if sameTable {
			if na.Label != nb.Label {
				return false
			}
		} else if a.Labels.Name(na.Label) != b.Labels.Name(nb.Label) {
			return false
		}
		ca, cb := na.FirstChild, nb.FirstChild
		for ca != None && cb != None {
			stack = append(stack, pair{ca, cb})
			ca = a.Nodes[ca].NextSibling
			cb = b.Nodes[cb].NextSibling
		}
		if ca != cb { // one has more children than the other
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t sharing the same label table.
func (t *Tree) Clone() *Tree {
	nodes := make([]Node, len(t.Nodes))
	copy(nodes, t.Nodes)
	return &Tree{Labels: t.Labels, Nodes: nodes}
}

// Builder constructs trees incrementally. Nodes are appended with Child, so a
// builder that adds nodes parent-before-child produces nodes in preorder, but
// no algorithm in this module relies on that: only root == node 0 is
// guaranteed.
type Builder struct {
	labels *LabelTable
	nodes  []Node
	last   []int32 // last child appended to each node, or None
}

// NewBuilder returns a builder that interns labels into labels. If labels is
// nil a fresh table is created.
func NewBuilder(labels *LabelTable) *Builder {
	if labels == nil {
		labels = NewLabelTable()
	}
	return &Builder{labels: labels}
}

// Labels returns the builder's label table.
func (b *Builder) Labels() *LabelTable { return b.labels }

// Root creates the root node. It must be called exactly once, before any
// Child call.
func (b *Builder) Root(label string) int32 {
	return b.RootID(b.labels.Intern(label))
}

// RootID is Root with a pre-interned label id.
func (b *Builder) RootID(label int32) int32 {
	if len(b.nodes) != 0 {
		panic("tree: Builder.Root called twice")
	}
	b.nodes = append(b.nodes, Node{Label: label, Parent: None, FirstChild: None, NextSibling: None})
	b.last = append(b.last, None)
	return 0
}

// Child appends a new rightmost child of parent and returns its id.
func (b *Builder) Child(parent int32, label string) int32 {
	return b.ChildID(parent, b.labels.Intern(label))
}

// ChildID is Child with a pre-interned label id.
func (b *Builder) ChildID(parent int32, label int32) int32 {
	if parent < 0 || int(parent) >= len(b.nodes) {
		panic(fmt.Sprintf("tree: Builder.Child: invalid parent %d", parent))
	}
	id := int32(len(b.nodes))
	b.nodes = append(b.nodes, Node{Label: label, Parent: parent, FirstChild: None, NextSibling: None})
	b.last = append(b.last, None)
	if b.last[parent] == None {
		b.nodes[parent].FirstChild = id
	} else {
		b.nodes[b.last[parent]].NextSibling = id
	}
	b.last[parent] = id
	return id
}

// Build finalises and returns the tree. The builder must not be reused.
func (b *Builder) Build() (*Tree, error) {
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("tree: Builder.Build called before Root")
	}
	t := &Tree{Labels: b.labels, Nodes: b.nodes}
	b.nodes = nil
	b.last = nil
	return t, nil
}

// MustBuild is Build but panics on error. Intended for tests and examples.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
