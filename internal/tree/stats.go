package tree

// Stats summarises the shape of a single tree or a collection; the fields
// mirror the dataset statistics reported in the paper's Section 4 (average
// tree size, number of distinct labels, average depth, maximum depth).
type Stats struct {
	Trees     int     // number of trees
	Nodes     int     // total node count
	AvgSize   float64 // mean nodes per tree
	MinSize   int
	MaxSize   int
	Labels    int     // distinct labels appearing in the collection
	AvgDepth  float64 // mean node depth (root = 0)
	MaxDepth  int
	AvgFanout float64 // mean children per internal node
	MaxFanout int
}

// Measure computes collection statistics over ts.
func Measure(ts []*Tree) Stats {
	var s Stats
	s.Trees = len(ts)
	if len(ts) == 0 {
		return s
	}
	s.MinSize = ts[0].Size()
	labelSet := make(map[string]struct{})
	var depthSum float64
	var fanoutSum float64
	var internal int
	for _, t := range ts {
		n := t.Size()
		s.Nodes += n
		if n < s.MinSize {
			s.MinSize = n
		}
		if n > s.MaxSize {
			s.MaxSize = n
		}
		depths := Depths(t)
		for id := range t.Nodes {
			labelSet[t.Label(int32(id))] = struct{}{}
			d := int(depths[id])
			depthSum += float64(d)
			if d > s.MaxDepth {
				s.MaxDepth = d
			}
			fan := 0
			for c := t.Nodes[id].FirstChild; c != None; c = t.Nodes[c].NextSibling {
				fan++
			}
			if fan > 0 {
				internal++
				fanoutSum += float64(fan)
				if fan > s.MaxFanout {
					s.MaxFanout = fan
				}
			}
		}
	}
	s.AvgSize = float64(s.Nodes) / float64(s.Trees)
	s.Labels = len(labelSet)
	s.AvgDepth = depthSum / float64(s.Nodes)
	if internal > 0 {
		s.AvgFanout = fanoutSum / float64(internal)
	}
	return s
}
