package tree_test

import (
	"testing"

	"treejoin/internal/tree"
)

// FuzzParseNewick: arbitrary input must never panic; accepted input must
// produce a valid tree whose canonical rendering reparses to an equal tree.
func FuzzParseNewick(f *testing.F) {
	for _, seed := range []string{
		"A;",
		"(A,B)C;",
		"(A,B,(C,D)E)F;",
		"(A:0.1,B:0.2):0.3;",
		"('quo''ted',B)r;",
		"[c](A)[c]B[c];",
		"((((((deep))))));",
		"(A,B",
		"'unterminated",
		";",
		"(,,,);",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		lt := tree.NewLabelTable()
		tr, err := tree.ParseNewick(s, lt)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid tree from %q: %v", s, err)
		}
		out := tree.FormatNewick(tr)
		back, err := tree.ParseNewick(out, lt)
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", out, err)
		}
		if !tree.Equal(tr, back) {
			t.Fatalf("round trip changed tree: %q -> %q", s, out)
		}
	})
}

// FuzzParseDotBracket: arbitrary structure/sequence input must never panic;
// accepted structures must produce valid trees with one node per base pair,
// one per unpaired position, plus the root.
func FuzzParseDotBracket(f *testing.F) {
	f.Add("(((...)))", "GGGAAACCC")
	f.Add("", "")
	f.Add("()", "GC")
	f.Add("((", "GG")
	f.Add("...", "")
	f.Fuzz(func(t *testing.T, structure, seq string) {
		lt := tree.NewLabelTable()
		tr, err := tree.ParseDotBracket(structure, seq, lt)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid tree from %q: %v", structure, err)
		}
		pairs, dots := 0, 0
		for i := 0; i < len(structure); i++ {
			switch structure[i] {
			case '(':
				pairs++
			case '.':
				dots++
			}
		}
		if tr.Size() != 1+pairs+dots {
			t.Fatalf("size %d, want %d (pairs=%d dots=%d)", tr.Size(), 1+pairs+dots, pairs, dots)
		}
	})
}
