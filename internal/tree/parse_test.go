package tree_test

import (
	"math/rand"
	"strings"
	"testing"

	"treejoin/internal/tree"
)

func TestParseBracketBasics(t *testing.T) {
	lt := tree.NewLabelTable()
	tr := tree.MustParseBracket("{a{b{d}}{c}}", lt)
	if tr.Size() != 4 {
		t.Fatalf("size = %d", tr.Size())
	}
	if tr.Label(tr.Root()) != "a" {
		t.Fatalf("root = %q", tr.Label(tr.Root()))
	}
	cs := tr.Children(tr.Root())
	if len(cs) != 2 || tr.Label(cs[0]) != "b" || tr.Label(cs[1]) != "c" {
		t.Fatalf("children labels wrong")
	}
	if gs := tr.Children(cs[0]); len(gs) != 1 || tr.Label(gs[0]) != "d" {
		t.Fatalf("grandchild wrong")
	}
}

func TestParseBracketWhitespaceBetweenNodes(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{a {b} {c{d}} }", lt)
	b := tree.MustParseBracket("{a{b}{c{d}}}", lt)
	// The label "a " keeps its trailing space only if no child follows
	// immediately; here whitespace sits between tokens and is skipped before
	// '{' but retained in the label text itself. Verify via round trip
	// equality of shapes and that parsing succeeded.
	if a.Size() != b.Size() {
		t.Fatalf("sizes differ: %d vs %d", a.Size(), b.Size())
	}
}

func TestParseBracketEscapes(t *testing.T) {
	lt := tree.NewLabelTable()
	tr := tree.MustParseBracket(`{a\{x\}{b\\}}`, lt)
	if got := tr.Label(0); got != "a{x}" {
		t.Fatalf("root label = %q, want %q", got, "a{x}")
	}
	if got := tr.Label(1); got != `b\` {
		t.Fatalf("child label = %q, want %q", got, `b\`)
	}
	// Round trip.
	s := tree.FormatBracket(tr)
	tr2, err := tree.ParseBracket(s, lt)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	if !tree.Equal(tr, tr2) {
		t.Fatalf("escape round trip failed: %q", s)
	}
}

func TestParseBracketErrors(t *testing.T) {
	bad := []string{
		"",            // empty
		"a",           // no braces
		"{a",          // unclosed
		"{a}}",        // trailing
		"{a}{b}",      // two roots
		"{a{b}",       // unclosed inner
		"{a{b}} xx",   // trailing garbage
		`{a\`,         // dangling escape
		"   ",         // only whitespace
		"{a}extra{b}", // garbage between trees
	}
	for _, s := range bad {
		if _, err := tree.ParseBracket(s, nil); err == nil {
			t.Errorf("ParseBracket(%q) succeeded, want error", s)
		}
	}
}

func TestFormatParseRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lt := tree.NewLabelTable()
	for i := 0; i < 300; i++ {
		orig := randomTree(rng, 50, 6, lt)
		s := tree.FormatBracket(orig)
		back, err := tree.ParseBracket(s, lt)
		if err != nil {
			t.Fatalf("round trip parse failed: %v on %q", err, s)
		}
		if !tree.Equal(orig, back) {
			t.Fatalf("round trip changed the tree: %q", s)
		}
	}
}

func TestFormatBracketCanonical(t *testing.T) {
	lt := tree.NewLabelTable()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		a := randomTree(rng, 30, 3, lt)
		b := randomTree(rng, 30, 3, lt)
		sa, sb := tree.FormatBracket(a), tree.FormatBracket(b)
		if tree.Equal(a, b) != (sa == sb) {
			t.Fatalf("canonical property violated:\n%s\n%s", sa, sb)
		}
	}
}

func TestParseBracketSingleNodeAndEmptyLabel(t *testing.T) {
	lt := tree.NewLabelTable()
	one := tree.MustParseBracket("{x}", lt)
	if one.Size() != 1 || one.Label(0) != "x" {
		t.Fatalf("single node parse wrong")
	}
	anon := tree.MustParseBracket("{{a}{b}}", lt)
	if anon.Size() != 3 || anon.Label(0) != "" {
		t.Fatalf("empty root label parse wrong: size=%d root=%q", anon.Size(), anon.Label(0))
	}
	if s := tree.FormatBracket(anon); s != "{{a}{b}}" {
		t.Fatalf("format of empty label = %q", s)
	}
}

func TestParseDeepTree(t *testing.T) {
	var sb strings.Builder
	const depth = 20000
	for i := 0; i < depth; i++ {
		sb.WriteString("{a")
	}
	sb.WriteString(strings.Repeat("}", depth))
	// Recursive-descent parsing recurses per level; this guards against
	// unreasonable stack use for long chains.
	tr, err := tree.ParseBracket(sb.String(), nil)
	if err != nil {
		t.Fatalf("deep parse: %v", err)
	}
	if tr.Size() != depth {
		t.Fatalf("size = %d", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("deep tree invalid: %v", err)
	}
}
