package tree

import "fmt"

// This file implements the three node edit operations of the tree edit
// distance model (Section 2 of the paper) as pure functions producing new
// trees. They are used by the synthetic data generator (to plant similar
// pairs) and by the property tests that check the join filter never prunes a
// pair within distance τ.

// Rename returns a copy of t with node n relabeled.
func Rename(t *Tree, n int32, label string) *Tree {
	out := t.Clone()
	out.Nodes[n].Label = t.Labels.Intern(label)
	return out
}

// Delete returns a copy of t with node n removed; n's children take its place
// among its siblings, preserving order. Deleting the root is allowed only
// when the root has exactly one child (the child becomes the new root);
// otherwise the result would not be a tree.
func Delete(t *Tree, n int32) (*Tree, error) {
	nd := t.Nodes[n]
	if nd.Parent == None {
		if nd.FirstChild == None || t.Nodes[nd.FirstChild].NextSibling != None {
			return nil, fmt.Errorf("tree: cannot delete root with %d children", len(t.Children(n)))
		}
	}
	b := NewBuilder(t.Labels)
	// copyChildren copies the children of src under dst, splicing the
	// children of n into n's position.
	var copyChildren func(src, dst int32)
	copyChildren = func(src, dst int32) {
		for c := t.Nodes[src].FirstChild; c != None; c = t.Nodes[c].NextSibling {
			if c == n {
				copyChildren(c, dst)
				continue
			}
			id := b.ChildID(dst, t.Nodes[c].Label)
			copyChildren(c, id)
		}
	}
	if nd.Parent == None {
		newRoot := nd.FirstChild
		root := b.RootID(t.Nodes[newRoot].Label)
		copyChildren(newRoot, root)
	} else {
		root := b.RootID(t.Nodes[t.Root()].Label)
		copyChildren(t.Root(), root)
	}
	return b.Build()
}

// Insert returns a copy of t with a new node labeled label inserted under
// parent at child position at (0-based), adopting the next count consecutive
// children of parent (those previously at positions at..at+count-1). This is
// exactly the paper's insertion: the new node is placed between parent and a
// consecutive run of its children.
func Insert(t *Tree, parent int32, at, count int, label string) (*Tree, error) {
	nchild := len(t.Children(parent))
	if at < 0 || count < 0 || at+count > nchild {
		return nil, fmt.Errorf("tree: Insert at=%d count=%d out of range (node has %d children)", at, count, nchild)
	}
	lab := t.Labels.Intern(label)
	b := NewBuilder(t.Labels)
	var copyChildren func(src, dst int32)
	copyChildren = func(src, dst int32) {
		if src != parent {
			for c := t.Nodes[src].FirstChild; c != None; c = t.Nodes[c].NextSibling {
				id := b.ChildID(dst, t.Nodes[c].Label)
				copyChildren(c, id)
			}
			return
		}
		idx := 0
		wrapper := None
		for c := t.Nodes[src].FirstChild; c != None; c = t.Nodes[c].NextSibling {
			if idx == at {
				wrapper = b.ChildID(dst, lab)
			}
			target := dst
			if idx >= at && idx < at+count {
				target = wrapper
			}
			id := b.ChildID(target, t.Nodes[c].Label)
			copyChildren(c, id)
			idx++
		}
		if idx == at { // insertion point after the last child (count == 0)
			b.ChildID(dst, lab)
		}
	}
	root := b.RootID(t.Nodes[t.Root()].Label)
	copyChildren(t.Root(), root)
	return b.Build()
}

// MoveSubtree returns a copy of t with the subtree rooted at x detached and
// re-attached under target at child position at (0-based, counted after the
// detach). target must lie outside x's subtree and x must not be the root.
// A move is not a primitive edit operation — its TED cost is up to twice the
// subtree size — but it models the block relocations that are common between
// near-duplicate XML documents and that distinguish the filters' behaviour
// (bag-based filters barely notice a move; positional filters do).
func MoveSubtree(t *Tree, x, target int32, at int) (*Tree, error) {
	if t.Nodes[x].Parent == None {
		return nil, fmt.Errorf("tree: cannot move the root")
	}
	inSubtree := make([]bool, t.Size())
	stack := []int32{x}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		inSubtree[v] = true
		for c := t.Nodes[v].FirstChild; c != None; c = t.Nodes[c].NextSibling {
			stack = append(stack, c)
		}
	}
	if inSubtree[target] {
		return nil, fmt.Errorf("tree: move target %d lies inside the moved subtree", target)
	}
	// Count target's children after the detach to validate at.
	nchild := 0
	for c := t.Nodes[target].FirstChild; c != None; c = t.Nodes[c].NextSibling {
		if c != x {
			nchild++
		}
	}
	if at < 0 || at > nchild {
		return nil, fmt.Errorf("tree: move position %d out of range (target has %d children)", at, nchild)
	}
	b := NewBuilder(t.Labels)
	var emitChildren func(src, dst int32)
	emitChildren = func(src, dst int32) {
		idx := 0
		emitMoved := func() {
			if src == target && idx == at {
				id := b.ChildID(dst, t.Nodes[x].Label)
				emitChildren(x, id)
				idx++
			}
		}
		emitMoved()
		for c := t.Nodes[src].FirstChild; c != None; c = t.Nodes[c].NextSibling {
			if c == x {
				continue
			}
			id := b.ChildID(dst, t.Nodes[c].Label)
			emitChildren(c, id)
			idx++
			emitMoved()
		}
	}
	root := b.RootID(t.Nodes[t.Root()].Label)
	emitChildren(t.Root(), root)
	return b.Build()
}

// WrapRoot returns a copy of t with a new root labeled label whose only child
// is the old root. Together with single-child root deletion this covers the
// edit scripts the mapping-based TED definition permits at the root.
func WrapRoot(t *Tree, label string) *Tree {
	lab := t.Labels.Intern(label)
	b := NewBuilder(t.Labels)
	root := b.RootID(lab)
	var copySub func(src, dst int32)
	copySub = func(src, dst int32) {
		id := b.ChildID(dst, t.Nodes[src].Label)
		for c := t.Nodes[src].FirstChild; c != None; c = t.Nodes[c].NextSibling {
			copySub(c, id)
		}
	}
	copySub(t.Root(), root)
	return b.MustBuild()
}
