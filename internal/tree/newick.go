package tree

import (
	"fmt"
	"strings"
)

// Newick format support. Newick is the standard interchange format for
// phylogenetic trees — "(A,B,(C,D)E)F;" — and a convenient bridge to the
// biology workloads of the paper's introduction (RNA secondary structures,
// species trees). The subset implemented here covers what the similarity
// join needs:
//
//   - node names, quoted ('it''s') or unquoted, on leaves and internal nodes
//     (internal names follow the closing parenthesis); missing names become
//     the empty label;
//   - branch lengths (":0.31") are parsed and discarded — TED is defined on
//     labels and shape, not on branch lengths;
//   - bracketed comments ("[...]") are skipped anywhere whitespace may occur.
//
// Child order is preserved: Newick trees are read as rooted *ordered* trees,
// which is what the TED of this module is defined over.

// newickNode is the parser's intermediate form; the Builder wants parents
// before children, but a Newick internal node's name arrives after its
// children.
type newickNode struct {
	name     string
	children []*newickNode
}

type newickParser struct {
	s   string
	pos int
}

// ParseNewick parses a single Newick tree, e.g. "(A,B,(C,D)E)F;". The
// terminating semicolon is required; trailing whitespace is allowed.
func ParseNewick(s string, lt *LabelTable) (*Tree, error) {
	if lt == nil {
		lt = NewLabelTable()
	}
	p := &newickParser{s: s}
	p.skipSpace()
	root, err := p.subtree()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eat(';') {
		return nil, p.errf("expected ';'")
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, p.errf("trailing input after ';'")
	}
	b := NewBuilder(lt)
	b.Root(root.name)
	var build func(parent int32, n *newickNode)
	build = func(parent int32, n *newickNode) {
		for _, c := range n.children {
			id := b.Child(parent, c.name)
			build(id, c)
		}
	}
	build(0, root)
	return b.Build()
}

// MustParseNewick is ParseNewick but panics on error. Intended for tests and
// examples.
func MustParseNewick(s string, lt *LabelTable) *Tree {
	t, err := ParseNewick(s, lt)
	if err != nil {
		panic(err)
	}
	return t
}

func (p *newickParser) errf(format string, args ...any) error {
	return fmt.Errorf("newick: %s at offset %d", fmt.Sprintf(format, args...), p.pos)
}

func (p *newickParser) eat(c byte) bool {
	if p.pos < len(p.s) && p.s[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// skipSpace consumes whitespace and [comments].
func (p *newickParser) skipSpace() {
	for p.pos < len(p.s) {
		switch p.s[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		case '[':
			end := strings.IndexByte(p.s[p.pos:], ']')
			if end < 0 {
				p.pos = len(p.s) // unterminated comment: let the caller fail
				return
			}
			p.pos += end + 1
		default:
			return
		}
	}
}

func (p *newickParser) subtree() (*newickNode, error) {
	p.skipSpace()
	n := &newickNode{}
	if p.eat('(') {
		for {
			child, err := p.subtree()
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, child)
			p.skipSpace()
			if p.eat(',') {
				continue
			}
			break
		}
		if !p.eat(')') {
			return nil, p.errf("expected ')' or ','")
		}
	}
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	n.name = name
	p.skipSpace()
	if p.eat(':') { // branch length: parsed and discarded
		p.skipSpace()
		start := p.pos
		for p.pos < len(p.s) && (isNewickDigit(p.s[p.pos])) {
			p.pos++
		}
		if p.pos == start {
			return nil, p.errf("expected branch length after ':'")
		}
	}
	return n, nil
}

func isNewickDigit(c byte) bool {
	return c >= '0' && c <= '9' || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E'
}

func (p *newickParser) name() (string, error) {
	p.skipSpace()
	if p.eat('\'') { // quoted: '' escapes a quote
		var sb strings.Builder
		for {
			if p.pos >= len(p.s) {
				return "", p.errf("unterminated quoted name")
			}
			c := p.s[p.pos]
			p.pos++
			if c == '\'' {
				if p.pos < len(p.s) && p.s[p.pos] == '\'' {
					sb.WriteByte('\'')
					p.pos++
					continue
				}
				return sb.String(), nil
			}
			sb.WriteByte(c)
		}
	}
	start := p.pos
	for p.pos < len(p.s) && !isNewickSpecial(p.s[p.pos]) {
		p.pos++
	}
	return p.s[start:p.pos], nil
}

func isNewickSpecial(c byte) bool {
	switch c {
	case '(', ')', ',', ':', ';', '[', ']', '\'', ' ', '\t', '\n', '\r':
		return true
	}
	return false
}

// FormatNewick renders t in Newick notation with a terminating semicolon.
// Names that contain Newick metacharacters are quoted, so the output
// round-trips through ParseNewick.
func FormatNewick(t *Tree) string {
	var sb strings.Builder
	var walk func(n int32)
	walk = func(n int32) {
		if c := t.Nodes[n].FirstChild; c != None {
			sb.WriteByte('(')
			for ; c != None; c = t.Nodes[c].NextSibling {
				if c != t.Nodes[n].FirstChild {
					sb.WriteByte(',')
				}
				walk(c)
			}
			sb.WriteByte(')')
		}
		writeNewickName(&sb, t.Label(n))
	}
	walk(t.Root())
	sb.WriteByte(';')
	return sb.String()
}

func writeNewickName(sb *strings.Builder, name string) {
	needQuote := false
	for i := 0; i < len(name); i++ {
		if isNewickSpecial(name[i]) {
			needQuote = true
			break
		}
	}
	if !needQuote {
		sb.WriteString(name)
		return
	}
	sb.WriteByte('\'')
	sb.WriteString(strings.ReplaceAll(name, "'", "''"))
	sb.WriteByte('\'')
}

// ParseDotBracket converts an RNA secondary structure in Vienna dot-bracket
// notation into its standard rooted ordered tree encoding: every base pair
// (matching parentheses) becomes an internal node labeled "P", every
// unpaired position (dot) a leaf labeled with its base from seq (or "N" when
// seq is empty), all under a virtual "root" node. seq, when non-empty, must
// have the structure's length.
func ParseDotBracket(structure, seq string, lt *LabelTable) (*Tree, error) {
	if lt == nil {
		lt = NewLabelTable()
	}
	if seq != "" && len(seq) != len(structure) {
		return nil, fmt.Errorf("dotbracket: sequence length %d != structure length %d", len(seq), len(structure))
	}
	b := NewBuilder(lt)
	stack := []int32{b.Root("root")}
	for i := 0; i < len(structure); i++ {
		top := stack[len(stack)-1]
		switch structure[i] {
		case '(':
			stack = append(stack, b.Child(top, "P"))
		case ')':
			if len(stack) == 1 {
				return nil, fmt.Errorf("dotbracket: unbalanced ')' at %d", i)
			}
			stack = stack[:len(stack)-1]
		case '.':
			base := "N"
			if seq != "" {
				base = string(seq[i])
			}
			b.Child(top, base)
		default:
			return nil, fmt.Errorf("dotbracket: unexpected %q at %d", structure[i], i)
		}
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("dotbracket: %d unmatched '('", len(stack)-1)
	}
	return b.Build()
}
