package tree_test

import (
	"math/rand"
	"strings"
	"testing"

	"treejoin/internal/tree"
)

func TestParseNewickHandCases(t *testing.T) {
	lt := tree.NewLabelTable()
	cases := []struct {
		in   string
		size int
		root string
	}{
		{"A;", 1, "A"},
		{"(A,B)C;", 3, "C"},
		{"(A,B,(C,D)E)F;", 6, "F"},
		{"(,);", 3, ""}, // unnamed leaves and root
		{"(A:0.1,B:0.2)C:0.3;", 3, "C"},
		{"('it''s',B)'r o o t';", 3, "r o o t"},
		{"[comment](A,B)C;[after] ", 3, "C"},
		{"((((deep))));", 5, ""},
	}
	for _, c := range cases {
		tr, err := tree.ParseNewick(c.in, lt)
		if err != nil {
			t.Errorf("ParseNewick(%q): %v", c.in, err)
			continue
		}
		if tr.Size() != c.size {
			t.Errorf("ParseNewick(%q): size %d, want %d", c.in, tr.Size(), c.size)
		}
		if got := tr.Label(tr.Root()); got != c.root {
			t.Errorf("ParseNewick(%q): root %q, want %q", c.in, got, c.root)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("ParseNewick(%q): invalid tree: %v", c.in, err)
		}
	}
}

func TestParseNewickPreservesChildOrder(t *testing.T) {
	lt := tree.NewLabelTable()
	tr := tree.MustParseNewick("(B,A,C)r;", lt)
	var got []string
	for c := tr.Nodes[tr.Root()].FirstChild; c != tree.None; c = tr.Nodes[c].NextSibling {
		got = append(got, tr.Label(c))
	}
	if strings.Join(got, "") != "BAC" {
		t.Fatalf("child order %v", got)
	}
}

func TestParseNewickErrors(t *testing.T) {
	lt := tree.NewLabelTable()
	for _, in := range []string{
		"",            // no tree
		"A",           // missing ';'
		"(A,B;",       // missing ')'
		"(A,B)C; x",   // trailing input
		"(A,B)C:;",    // ':' without length
		"'unclosed;",  // unterminated quote
		"(A,B))C;",    // extra ')'
		"[unclosed A", // unterminated comment swallows everything
	} {
		if _, err := tree.ParseNewick(in, lt); err == nil {
			t.Errorf("ParseNewick(%q): expected error", in)
		}
	}
}

func TestFormatNewickRoundTrip(t *testing.T) {
	lt := tree.NewLabelTable()
	for _, in := range []string{
		"A;",
		"(A,B)C;",
		"(A,B,(C,D)E)F;",
		"(,);",
	} {
		tr := tree.MustParseNewick(in, lt)
		if got := tree.FormatNewick(tr); got != in {
			t.Errorf("FormatNewick(Parse(%q)) = %q", in, got)
		}
	}
}

// TestNewickRoundTripRandom: Format then Parse reproduces random trees,
// including labels full of Newick metacharacters.
func TestNewickRoundTripRandom(t *testing.T) {
	labels := []string{"a", "b", "node name", "it's", "(paren)", "semi;colon", "co,mma", "", "co:lon", "[br]"}
	rng := rand.New(rand.NewSource(601))
	lt := tree.NewLabelTable()
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(25)
		b := tree.NewBuilder(lt)
		b.Root(labels[rng.Intn(len(labels))])
		for j := 1; j < n; j++ {
			b.Child(int32(rng.Intn(j)), labels[rng.Intn(len(labels))])
		}
		tr := b.MustBuild()
		out := tree.FormatNewick(tr)
		back, err := tree.ParseNewick(out, lt)
		if err != nil {
			t.Fatalf("round-trip parse of %q: %v", out, err)
		}
		if !tree.Equal(tr, back) {
			t.Fatalf("round trip changed tree: %q", out)
		}
	}
}

func TestParseDotBracket(t *testing.T) {
	lt := tree.NewLabelTable()
	// (((...))): three nested pairs around a three-base loop.
	tr, err := tree.ParseDotBracket("(((...)))", "GGGAAACCC", lt)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 7 { // root + 3 P + 3 bases
		t.Fatalf("size = %d, want 7", tr.Size())
	}
	if tr.Label(tr.Root()) != "root" {
		t.Fatalf("root label %q", tr.Label(tr.Root()))
	}
	// Walk to the innermost pair: root -> P -> P -> P -> {A, A, A}.
	n := tr.Nodes[tr.Root()].FirstChild
	for depth := 0; depth < 3; depth++ {
		if tr.Label(n) != "P" {
			t.Fatalf("depth %d label %q", depth, tr.Label(n))
		}
		n = tr.Nodes[n].FirstChild
	}
	var bases []string
	for ; n != tree.None; n = tr.Nodes[n].NextSibling {
		bases = append(bases, tr.Label(n))
	}
	if strings.Join(bases, "") != "AAA" {
		t.Fatalf("loop bases %v", bases)
	}
	// Without a sequence, unpaired positions become "N".
	tr2, err := tree.ParseDotBracket("(.)", "", lt)
	if err != nil {
		t.Fatal(err)
	}
	inner := tr2.Nodes[tr2.Nodes[tr2.Root()].FirstChild].FirstChild
	if tr2.Label(inner) != "N" {
		t.Fatalf("unpaired label %q", tr2.Label(inner))
	}
}

func TestParseDotBracketErrors(t *testing.T) {
	lt := tree.NewLabelTable()
	for _, c := range []struct{ db, seq string }{
		{"((.)", ""},      // unmatched (
		{"(.))", ""},      // extra )
		{"(x)", ""},       // bad character
		{"(...)", "GGAA"}, // length mismatch
	} {
		if _, err := tree.ParseDotBracket(c.db, c.seq, lt); err == nil {
			t.Errorf("ParseDotBracket(%q, %q): expected error", c.db, c.seq)
		}
	}
}

// TestDotBracketEmpty: the empty structure is a lone root.
func TestDotBracketEmpty(t *testing.T) {
	lt := tree.NewLabelTable()
	tr, err := tree.ParseDotBracket("", "", lt)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 1 {
		t.Fatalf("size = %d", tr.Size())
	}
}
