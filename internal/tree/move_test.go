package tree_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"treejoin/internal/tree"
)

func TestMoveSubtreeBasics(t *testing.T) {
	lt := tree.NewLabelTable()
	base := tree.MustParseBracket("{r{a{x}{y}}{b}{c}}", lt)
	var a, b int32
	for id := range base.Nodes {
		switch base.Label(int32(id)) {
		case "a":
			a = int32(id)
		case "b":
			b = int32(id)
		}
	}
	// Move subtree a under b.
	out, err := tree.MoveSubtree(base, a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.FormatBracket(out); got != "{r{b{a{x}{y}}}{c}}" {
		t.Fatalf("move = %s", got)
	}
	// Move b to be the last child of the root.
	out2, err := tree.MoveSubtree(base, b, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.FormatBracket(out2); got != "{r{a{x}{y}}{c}{b}}" {
		t.Fatalf("move = %s", got)
	}
	// Reposition within the same parent.
	out3, err := tree.MoveSubtree(base, a, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.FormatBracket(out3); got != "{r{b}{c}{a{x}{y}}}" {
		t.Fatalf("move = %s", got)
	}
}

func TestMoveSubtreeErrors(t *testing.T) {
	lt := tree.NewLabelTable()
	base := tree.MustParseBracket("{r{a{x}}{b}}", lt)
	var a, x int32
	for id := range base.Nodes {
		switch base.Label(int32(id)) {
		case "a":
			a = int32(id)
		case "x":
			x = int32(id)
		}
	}
	if _, err := tree.MoveSubtree(base, 0, a, 0); err == nil {
		t.Error("moving the root should fail")
	}
	if _, err := tree.MoveSubtree(base, a, x, 0); err == nil {
		t.Error("moving into own subtree should fail")
	}
	if _, err := tree.MoveSubtree(base, a, 0, 5); err == nil {
		t.Error("out-of-range position should fail")
	}
}

// TestMoveSubtreeInvariants: moves preserve size and the label multiset, and
// always produce valid trees.
func TestMoveSubtreeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	lt := tree.NewLabelTable()
	labelBag := func(tr *tree.Tree) string {
		var ls []string
		for id := range tr.Nodes {
			ls = append(ls, tr.Label(int32(id)))
		}
		sort.Strings(ls)
		return strings.Join(ls, ",")
	}
	moves := 0
	for i := 0; i < 400; i++ {
		base := randomTree(rng, 30, 4, lt)
		if base.Size() < 3 {
			continue
		}
		x := int32(1 + rng.Intn(base.Size()-1))
		if base.Nodes[x].Parent == tree.None {
			continue
		}
		target := int32(rng.Intn(base.Size()))
		nc := 0
		for c := base.Nodes[target].FirstChild; c != tree.None; c = base.Nodes[c].NextSibling {
			if c != x {
				nc++
			}
		}
		out, err := tree.MoveSubtree(base, x, target, rng.Intn(nc+1))
		if err != nil {
			continue // target inside subtree — rejected correctly
		}
		moves++
		if err := out.Validate(); err != nil {
			t.Fatalf("invalid after move: %v", err)
		}
		if out.Size() != base.Size() {
			t.Fatalf("size changed by move")
		}
		if labelBag(out) != labelBag(base) {
			t.Fatalf("label multiset changed by move")
		}
	}
	if moves < 100 {
		t.Fatalf("only %d successful moves exercised", moves)
	}
}

// TestBracketQuickRoundTrip drives the parser with testing/quick over
// generated trees (structure from a seed, labels from raw bytes including
// braces and backslashes, exercising the escaping).
func TestBracketQuickRoundTrip(t *testing.T) {
	lt := tree.NewLabelTable()
	f := func(seed int64, rawLabels [][]byte) bool {
		rng := rand.New(rand.NewSource(seed))
		b := tree.NewBuilder(lt)
		lab := func(i int) string {
			if len(rawLabels) == 0 {
				return "x"
			}
			return string(rawLabels[i%len(rawLabels)])
		}
		b.Root(lab(0))
		n := 1 + rng.Intn(20)
		for i := 1; i < n; i++ {
			b.Child(int32(rng.Intn(i)), lab(i))
		}
		orig := b.MustBuild()
		back, err := tree.ParseBracket(tree.FormatBracket(orig), lt)
		if err != nil {
			return false
		}
		return tree.Equal(orig, back)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(87))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestEqualQuickSymmetry: Equal is symmetric and implied by canonical-form
// equality, under testing/quick generation.
func TestEqualQuickSymmetry(t *testing.T) {
	lt := tree.NewLabelTable()
	gen := func(seed int64) *tree.Tree {
		rng := rand.New(rand.NewSource(seed))
		return randomTree(rng, 15, 2, lt)
	}
	f := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		if tree.Equal(a, b) != tree.Equal(b, a) {
			return false
		}
		return tree.Equal(a, b) == (tree.FormatBracket(a) == tree.FormatBracket(b))
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(91))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
