// Package cli holds the input/output plumbing shared by this module's
// command-line tools: dataset format detection and loading for the three
// supported encodings (bracket text, Newick text, binary dataset).
package cli

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"treejoin"
)

// Formats supported by Load.
const (
	FormatBracket = "bracket"
	FormatNewick  = "newick"
	FormatBinary  = "binary"
	FormatAuto    = "auto"
)

// DetectFormat resolves an explicit format flag (or "auto"/"") against the
// file extension: .tjds → binary, .nwk/.newick/.tree → newick, anything else
// → bracket.
func DetectFormat(path, explicit string) (string, error) {
	switch explicit {
	case FormatBracket, FormatNewick, FormatBinary:
		return explicit, nil
	case FormatAuto, "":
	default:
		return "", fmt.Errorf("unknown format %q (want %s, %s, %s, or %s)",
			explicit, FormatBracket, FormatNewick, FormatBinary, FormatAuto)
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".tjds":
		return FormatBinary, nil
	case ".nwk", ".newick", ".tree":
		return FormatNewick, nil
	default:
		return FormatBracket, nil
	}
}

// Load reads the tree collection at path in the given format (one of the
// Format constants; FormatAuto detects from the extension). Text formats
// intern into lt (a fresh table when nil); the binary format carries its own
// table, so lt must be nil for it. The table actually used is returned so
// callers can parse queries against it.
func Load(path, format string, lt *treejoin.LabelTable) ([]*treejoin.Tree, *treejoin.LabelTable, error) {
	format, err := DetectFormat(path, format)
	if err != nil {
		return nil, nil, err
	}
	switch format {
	case FormatBinary:
		if lt != nil {
			return nil, nil, fmt.Errorf("binary datasets carry their own label table")
		}
		table, ts, err := treejoin.ReadDatasetFile(path)
		if err != nil {
			return nil, nil, err
		}
		return ts, table, nil
	case FormatNewick:
		if lt == nil {
			lt = treejoin.NewLabelTable()
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		ts, err := treejoin.ReadNewickLines(f, lt)
		if err != nil {
			return nil, nil, err
		}
		return ts, lt, nil
	default:
		if lt == nil {
			lt = treejoin.NewLabelTable()
		}
		ts, err := treejoin.ReadBracketFile(path, lt)
		if err != nil {
			return nil, nil, err
		}
		return ts, lt, nil
	}
}

// ParseQuery parses one query tree in the text syntax matching format:
// Newick for FormatNewick, bracket notation otherwise.
func ParseQuery(s, format string, lt *treejoin.LabelTable) (*treejoin.Tree, error) {
	if format == FormatNewick {
		return treejoin.ParseNewick(s, lt)
	}
	return treejoin.ParseBracket(s, lt)
}
