package cli_test

import (
	"os"
	"path/filepath"
	"testing"

	"treejoin"
	"treejoin/internal/cli"
)

func TestDetectFormat(t *testing.T) {
	cases := []struct {
		path, explicit, want string
		wantErr              bool
	}{
		{"trees.txt", "auto", cli.FormatBracket, false},
		{"trees.tjds", "auto", cli.FormatBinary, false},
		{"TREES.TJDS", "", cli.FormatBinary, false},
		{"species.nwk", "auto", cli.FormatNewick, false},
		{"species.newick", "", cli.FormatNewick, false},
		{"species.tree", "", cli.FormatNewick, false},
		{"anything.tjds", "bracket", cli.FormatBracket, false}, // explicit wins
		{"x.txt", "binary", cli.FormatBinary, false},
		{"x.txt", "nonsense", "", true},
	}
	for _, c := range cases {
		got, err := cli.DetectFormat(c.path, c.explicit)
		if c.wantErr {
			if err == nil {
				t.Errorf("DetectFormat(%q, %q): expected error", c.path, c.explicit)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("DetectFormat(%q, %q) = %q, %v; want %q", c.path, c.explicit, got, err, c.want)
		}
	}
}

func TestLoadAllFormats(t *testing.T) {
	dir := t.TempDir()
	lt := treejoin.NewLabelTable()
	ts := []*treejoin.Tree{
		treejoin.MustParseBracket("{a{b}{c}}", lt),
		treejoin.MustParseBracket("{a{b}}", lt),
	}

	bracketPath := filepath.Join(dir, "trees.txt")
	if err := os.WriteFile(bracketPath, []byte("{a{b}{c}}\n{a{b}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	newickPath := filepath.Join(dir, "trees.nwk")
	if err := os.WriteFile(newickPath, []byte("(b,c)a;\n(b)a;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "trees.tjds")
	if err := treejoin.WriteDatasetFile(binPath, lt, ts); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{bracketPath, newickPath, binPath} {
		got, table, err := cli.Load(path, "auto", nil)
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		if len(got) != 2 {
			t.Fatalf("Load(%s): %d trees", path, len(got))
		}
		if table == nil {
			t.Fatalf("Load(%s): nil table", path)
		}
		if got[0].Size() != 3 || got[1].Size() != 2 {
			t.Fatalf("Load(%s): sizes %d, %d", path, got[0].Size(), got[1].Size())
		}
	}

	// Binary datasets refuse an externally supplied table.
	if _, _, err := cli.Load(binPath, "auto", treejoin.NewLabelTable()); err == nil {
		t.Fatal("binary load with external table accepted")
	}
	// Missing files and malformed content error out.
	if _, _, err := cli.Load(filepath.Join(dir, "missing.txt"), "auto", nil); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, _, err := cli.Load(bracketPath, "binary", nil); err == nil {
		t.Fatal("text file as binary accepted")
	}
}

func TestParseQuery(t *testing.T) {
	lt := treejoin.NewLabelTable()
	q, err := cli.ParseQuery("{a{b}}", cli.FormatBracket, lt)
	if err != nil || q.Size() != 2 {
		t.Fatalf("bracket query: %v, size %d", err, q.Size())
	}
	q, err = cli.ParseQuery("(b)a;", cli.FormatNewick, lt)
	if err != nil || q.Size() != 2 {
		t.Fatalf("newick query: %v", err)
	}
	if _, err := cli.ParseQuery("(b)a;", cli.FormatBracket, lt); err == nil {
		t.Fatal("newick text accepted as bracket")
	}
}
