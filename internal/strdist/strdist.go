// Package strdist implements string edit distance over interned label
// sequences. It is the substrate of the STR similarity-join baseline (Guha et
// al.), which lower-bounds the tree edit distance of two trees by the string
// edit distance of their preorder (and postorder) label sequences.
package strdist

// Levenshtein returns the unit-cost edit distance (insert, delete,
// substitute) between the two sequences. It runs in O(|a|·|b|) time and
// O(min(|a|,|b|)) space.
func Levenshtein(a, b []int32) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	// b is the shorter sequence; one rolling row of len(b)+1.
	if len(b) == 0 {
		return len(a)
	}
	row := make([]int, len(b)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0] // row[i-1][j-1]
		row[0] = i
		for j := 1; j <= len(b); j++ {
			cur := row[j]
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev + cost
			if d := row[j] + 1; d < best {
				best = d
			}
			if d := row[j-1] + 1; d < best {
				best = d
			}
			row[j] = best
			prev = cur
		}
	}
	return row[len(b)]
}

// Bounded returns the edit distance between a and b if it is at most tau, and
// otherwise any value greater than tau. It evaluates only the diagonal band
// of width 2·tau+1 (Ukkonen's cutoff), so it runs in O(tau·min(|a|,|b|))
// time — the reason the STR baseline can afford string joins at small τ.
func Bounded(a, b []int32, tau int) int {
	if tau < 0 {
		return tau + 1
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(a)-len(b) > tau {
		return tau + 1
	}
	if len(b) == 0 {
		return len(a)
	}
	const inf = int(^uint(0) >> 2)
	// row[j] = distance for prefix lengths (i, j); cells outside the band
	// hold inf.
	row := make([]int, len(b)+1)
	next := make([]int, len(b)+1)
	for j := range row {
		if j <= tau {
			row[j] = j
		} else {
			row[j] = inf
		}
	}
	for i := 1; i <= len(a); i++ {
		lo := i - tau
		if lo < 0 {
			lo = 0
		}
		hi := i + tau
		if hi > len(b) {
			hi = len(b)
		}
		for j := range next {
			next[j] = inf
		}
		if lo == 0 {
			next[0] = i
		}
		rowMin := inf
		start := lo
		if start == 0 {
			start = 1
			rowMin = next[0]
		}
		for j := start; j <= hi; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := inf
			if row[j-1] != inf && row[j-1]+cost < best {
				best = row[j-1] + cost
			}
			if row[j] != inf && row[j]+1 < best {
				best = row[j] + 1
			}
			if next[j-1] != inf && next[j-1]+1 < best {
				best = next[j-1] + 1
			}
			next[j] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if rowMin > tau {
			return tau + 1
		}
		row, next = next, row
	}
	if row[len(b)] > tau {
		return tau + 1
	}
	return row[len(b)]
}
