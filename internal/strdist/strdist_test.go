package strdist_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treejoin/internal/strdist"
)

func seq(s string) []int32 {
	out := make([]int32, len(s))
	for i, c := range []byte(s) {
		out[i] = int32(c)
	}
	return out
}

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "acb", 2},
		{"a", "b", 1},
		{"ab", "ba", 2},
	}
	for _, c := range cases {
		if got := strdist.Levenshtein(seq(c.a), seq(c.b)); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := strdist.Levenshtein(seq(c.b), seq(c.a)); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.b, c.a, got, c.want)
		}
	}
}

func TestBoundedMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		a := randSeq(rng, 20, 4)
		b := randSeq(rng, 20, 4)
		full := strdist.Levenshtein(a, b)
		for tau := 0; tau <= 8; tau++ {
			got := strdist.Bounded(a, b, tau)
			if full <= tau {
				if got != full {
					t.Fatalf("Bounded(τ=%d) = %d, want %d (a=%v b=%v)", tau, got, full, a, b)
				}
			} else if got <= tau {
				t.Fatalf("Bounded(τ=%d) = %d but full distance %d > τ", tau, got, full)
			}
		}
	}
}

func randSeq(rng *rand.Rand, maxLen, alphabet int) []int32 {
	n := rng.Intn(maxLen + 1)
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Intn(alphabet))
	}
	return out
}

func TestBoundedEdgeCases(t *testing.T) {
	if got := strdist.Bounded(seq("abc"), seq("abc"), 0); got != 0 {
		t.Errorf("identical τ=0: %d", got)
	}
	if got := strdist.Bounded(seq("abc"), seq("abd"), 0); got <= 0 {
		t.Errorf("different τ=0 should exceed: %d", got)
	}
	if got := strdist.Bounded(seq(""), seq("aaaa"), 2); got <= 2 {
		t.Errorf("length gap beyond τ: %d", got)
	}
	if got := strdist.Bounded(seq(""), seq(""), 3); got != 0 {
		t.Errorf("empty vs empty: %d", got)
	}
	if got := strdist.Bounded(seq("x"), seq("y"), -1); got > -1+1 && got != 0 {
		_ = got // negative τ returns >τ; just ensure no panic
	}
}

func TestLevenshteinMetricQuick(t *testing.T) {
	f := func(a, b, c []byte) bool {
		sa, sb, sc := bytesToSeq(a), bytesToSeq(b), bytesToSeq(c)
		dab := strdist.Levenshtein(sa, sb)
		if dab != strdist.Levenshtein(sb, sa) {
			return false
		}
		if strdist.Levenshtein(sa, sa) != 0 {
			return false
		}
		return strdist.Levenshtein(sa, sc) <= dab+strdist.Levenshtein(sb, sc)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func bytesToSeq(b []byte) []int32 {
	out := make([]int32, 0, len(b))
	for _, c := range b {
		out = append(out, int32(c%5)) // small alphabet provokes matches
	}
	if len(out) > 24 {
		out = out[:24]
	}
	return out
}
