package strdist_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treejoin/internal/strdist"
)

// slowLevenshtein is an independent reference: the full DP matrix, written
// the textbook way.
func slowLevenshtein(a, b []int32) int {
	m, n := len(a), len(b)
	d := make([][]int, m+1)
	for i := range d {
		d[i] = make([]int, n+1)
		d[i][0] = i
	}
	for j := 0; j <= n; j++ {
		d[0][j] = j
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := d[i-1][j-1] + cost
			if v := d[i-1][j] + 1; v < best {
				best = v
			}
			if v := d[i][j-1] + 1; v < best {
				best = v
			}
			d[i][j] = best
		}
	}
	return d[m][n]
}

// TestQuickLevenshteinMatchesReference: the rolling-row implementation
// agrees with the full-matrix reference on arbitrary sequences.
func TestQuickLevenshteinMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, 30, 4)
		b := randSeq(rng, 30, 4)
		return strdist.Levenshtein(a, b) == slowLevenshtein(a, b)
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(801))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBoundedAgreesBelowTau: whenever the true distance is ≤ τ, Bounded
// returns it exactly; when above, Bounded returns something above τ.
func TestQuickBoundedAgreesBelowTau(t *testing.T) {
	f := func(seed int64, tauRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, 25, 3)
		b := randSeq(rng, 25, 3)
		tau := int(tauRaw) % 12
		d := slowLevenshtein(a, b)
		got := strdist.Bounded(a, b, tau)
		if d <= tau {
			return got == d
		}
		return got > tau
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(809))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLevenshteinMetric: identity, symmetry, triangle inequality.
func TestQuickLevenshteinMetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randSeq(rng, 20, 3)
		b := randSeq(rng, 20, 3)
		c := randSeq(rng, 20, 3)
		ab := strdist.Levenshtein(a, b)
		ba := strdist.Levenshtein(b, a)
		if ab != ba {
			return false
		}
		if strdist.Levenshtein(a, a) != 0 {
			return false
		}
		bc := strdist.Levenshtein(b, c)
		ac := strdist.Levenshtein(a, c)
		return ac <= ab+bc
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(811))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedNegativeTau: a negative band reports "greater than tau" for
// every input — the documented contract.
func TestBoundedNegativeTau(t *testing.T) {
	if got := strdist.Bounded([]int32{1}, []int32{1}, -1); got >= 0 && got <= -1 {
		t.Fatalf("Bounded with negative tau returned %d", got)
	}
	if got := strdist.Bounded(nil, nil, 0); got != 0 {
		t.Fatalf("Bounded(nil, nil, 0) = %d", got)
	}
}
