package ted_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// TestUnitCostsMatchDistance: the generic DP under unit costs equals the
// specialised implementation on random pairs.
func TestUnitCostsMatchDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	lt := tree.NewLabelTable()
	for i := 0; i < 200; i++ {
		a := tinyRandomTree(rng, 25, 3, lt)
		b := tinyRandomTree(rng, 25, 3, lt)
		want := int64(ted.Distance(a, b))
		if got := ted.DistanceCosts(a, b, ted.UnitCosts{}); got != want {
			t.Fatalf("DistanceCosts(unit) = %d, Distance = %d\n%s\n%s",
				got, want, tree.FormatBracket(a), tree.FormatBracket(b))
		}
	}
}

// TestScaledCostsScaleDistance: multiplying all unit costs by a constant
// multiplies the distance by the same constant.
func TestScaledCostsScaleDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	lt := tree.NewLabelTable()
	scaled := ted.WeightedCosts{DeleteCost: 7, InsertCost: 7, RenameCost: 7}
	for i := 0; i < 100; i++ {
		a := tinyRandomTree(rng, 20, 3, lt)
		b := tinyRandomTree(rng, 20, 3, lt)
		unit := ted.DistanceCosts(a, b, ted.UnitCosts{})
		if got := ted.DistanceCosts(a, b, scaled); got != 7*unit {
			t.Fatalf("scaled distance %d != 7·%d", got, unit)
		}
	}
}

// TestExpensiveRenamePrefersDeleteInsert: when renaming costs more than
// delete+insert, the DP must route label changes through delete+insert.
func TestExpensiveRenamePrefersDeleteInsert(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{r{x}}", lt)
	b := tree.MustParseBracket("{r{y}}", lt)
	costly := ted.WeightedCosts{DeleteCost: 1, InsertCost: 1, RenameCost: 10}
	if got := ted.DistanceCosts(a, b, costly); got != 2 { // delete x, insert y
		t.Fatalf("distance = %d, want 2", got)
	}
	cheap := ted.WeightedCosts{DeleteCost: 10, InsertCost: 10, RenameCost: 1}
	if got := ted.DistanceCosts(a, b, cheap); got != 1 {
		t.Fatalf("distance = %d, want 1", got)
	}
}

// TestPerLabelCosts: a custom model charging by label id.
type perLabel struct{ lt *tree.LabelTable }

func (p perLabel) Delete(l int32) int32 { return 1 + l%3 }
func (p perLabel) Insert(l int32) int32 { return 1 + l%3 }
func (p perLabel) Rename(from, to int32) int32 {
	if from == to {
		return 0
	}
	return 2
}

func TestPerLabelCostsMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	lt := tree.NewLabelTable()
	costs := perLabel{lt}
	trees := make([]*tree.Tree, 8)
	for i := range trees {
		trees[i] = tinyRandomTree(rng, 15, 3, lt)
	}
	for _, a := range trees {
		if d := ted.DistanceCosts(a, a, costs); d != 0 {
			t.Fatalf("d(a,a) = %d", d)
		}
		for _, b := range trees {
			dab := ted.DistanceCosts(a, b, costs)
			if dab != ted.DistanceCosts(b, a, costs) {
				t.Fatal("asymmetric under symmetric costs")
			}
			for _, c := range trees {
				if ted.DistanceCosts(a, c, costs) > dab+ted.DistanceCosts(b, c, costs) {
					t.Fatal("triangle inequality violated")
				}
			}
		}
	}
}

// TestCostsIdentityAndEmptyTransforms: transforming into a single-node tree
// costs the deletions of everything else plus the final rename.
func TestCostsIdentityAndEmptyTransforms(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{a{b}{c}{d}}", lt)
	b := tree.MustParseBracket("{a}", lt)
	w := ted.WeightedCosts{DeleteCost: 3, InsertCost: 5, RenameCost: 2}
	if got := ted.DistanceCosts(a, b, w); got != 9 { // delete b, c, d
		t.Fatalf("distance = %d, want 9", got)
	}
	if got := ted.DistanceCosts(b, a, w); got != 15 { // insert b, c, d
		t.Fatalf("distance = %d, want 15", got)
	}
}
