package ted_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

func cParse(t *testing.T, lt *tree.LabelTable, s string) *tree.Tree {
	t.Helper()
	return tree.MustParseBracket(s, lt)
}

// TestConstrainedHandCases pins CTED on small trees where the value can be
// checked by hand.
func TestConstrainedHandCases(t *testing.T) {
	lt := tree.NewLabelTable()
	cases := []struct {
		a, b string
		want int
	}{
		{"{a}", "{a}", 0},
		{"{a}", "{b}", 1},
		{"{a{b}}", "{a}", 1},
		{"{a}", "{a{b}}", 1},
		{"{a{b}{c}}", "{a{b}{c}}", 0},
		{"{a{b}{c}}", "{a{c}{b}}", 2},     // two renames (order is fixed)
		{"{a{b}{c}}", "{a{b}{c}{d}}", 1},  // insert leaf
		{"{a{b{c}}}", "{a{c}}", 1},        // delete b; c splices up (constrained)
		{"{a{b}}", "{b{a}}", 2},           // two renames
		{"{a{b{c}{d}}}", "{a{c}{d}}", 1},  // delete b: children splice to a
		{"{a{x{b}{c}}}", "{a{b}{c}}", 1},  // same with different label
		{"{a{b}{c}}", "{a{x{b}{c}}}", 1},  // insert x above b,c
		{"{r{a}{b}{c}}", "{r{c}{a}}", -1}, // computed below against TED
	}
	for _, c := range cases {
		a := cParse(t, lt, c.a)
		b := cParse(t, lt, c.b)
		got := ted.ConstrainedDistance(a, b)
		if c.want >= 0 && got != c.want {
			t.Errorf("CTED(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
		if d := ted.Distance(a, b); got < d {
			t.Errorf("CTED(%s, %s) = %d below TED %d", c.a, c.b, got, d)
		}
	}
	// {a{b{c}}} -> {a{c}}: deleting b splices c up: 1 op. The constrained
	// mapping (a→a, c→c) preserves LCAs, so CTED = 1 as well.
	a := cParse(t, lt, "{a{b{c}}}")
	b := cParse(t, lt, "{a{c}}")
	if got := ted.ConstrainedDistance(a, b); got != 1 {
		t.Errorf("CTED chain delete = %d, want 1", got)
	}
}

// TestConstrainedIsUpperBoundOfTED: CTED ≥ TED on random pairs (constrained
// mappings are a subset of edit mappings).
func TestConstrainedIsUpperBoundOfTED(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	lt := tree.NewLabelTable()
	for i := 0; i < 400; i++ {
		a := randTree(rng, lt, 1+rng.Intn(18), 4)
		b := randTree(rng, lt, 1+rng.Intn(18), 4)
		cd := ted.ConstrainedDistance(a, b)
		d := ted.Distance(a, b)
		if cd < d {
			t.Fatalf("CTED %d < TED %d\n%s\n%s", cd, d, tree.FormatBracket(a), tree.FormatBracket(b))
		}
		if cd > a.Size()+b.Size() {
			t.Fatalf("CTED %d above trivial bound %d", cd, a.Size()+b.Size())
		}
	}
}

// TestConstrainedMetricProperties: identity, symmetry, triangle inequality
// under unit costs.
func TestConstrainedMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	lt := tree.NewLabelTable()
	for i := 0; i < 150; i++ {
		a := randTree(rng, lt, 1+rng.Intn(12), 3)
		b := randTree(rng, lt, 1+rng.Intn(12), 3)
		c := randTree(rng, lt, 1+rng.Intn(12), 3)
		if d := ted.ConstrainedDistance(a, a); d != 0 {
			t.Fatalf("CTED(a,a) = %d", d)
		}
		ab := ted.ConstrainedDistance(a, b)
		ba := ted.ConstrainedDistance(b, a)
		if ab != ba {
			t.Fatalf("CTED asymmetric: %d vs %d\n%s\n%s", ab, ba, tree.FormatBracket(a), tree.FormatBracket(b))
		}
		bc := ted.ConstrainedDistance(b, c)
		ac := ted.ConstrainedDistance(a, c)
		if ac > ab+bc {
			t.Fatalf("triangle violated: %d > %d + %d", ac, ab, bc)
		}
		if ab == 0 && !tree.Equal(a, b) {
			t.Fatalf("CTED = 0 on unequal trees")
		}
	}
}

// TestConstrainedEqualsTEDOnSameShape: for equal shapes, both distances are
// the label-mismatch count of the order-isomorphism — the identity mapping
// is optimal and constrained.
func TestConstrainedEqualsTEDOnSameShape(t *testing.T) {
	rng := rand.New(rand.NewSource(509))
	lt := tree.NewLabelTable()
	for i := 0; i < 100; i++ {
		a := randTree(rng, lt, 1+rng.Intn(15), 3)
		// Relabel a preserving its shape.
		bld := tree.NewBuilder(lt)
		bld.Root(randLabel(rng))
		var walk func(src, dst int32)
		walk = func(src, dst int32) {
			for c := a.Nodes[src].FirstChild; c != tree.None; c = a.Nodes[c].NextSibling {
				id := bld.Child(dst, randLabel(rng))
				walk(c, id)
			}
		}
		walk(a.Root(), 0)
		b := bld.MustBuild()
		cd := ted.ConstrainedDistance(a, b)
		d := ted.Distance(a, b)
		if cd < d {
			t.Fatalf("CTED %d < TED %d on same shape", cd, d)
		}
		// Count mismatches of the identity mapping: an upper bound for both.
		pa, pb := tree.Preorder(a), tree.Preorder(b)
		mismatch := 0
		for k := range pa {
			if a.Label(pa[k]) != b.Label(pb[k]) {
				mismatch++
			}
		}
		if cd > mismatch {
			t.Fatalf("CTED %d above identity-mapping cost %d", cd, mismatch)
		}
	}
}

// TestConstrainedWeightedCosts: with expensive renames the distance routes
// around them; DistanceCosts and ConstrainedDistanceCosts agree on the
// weighted chain case where the optimal mapping is constrained.
func TestConstrainedWeightedCosts(t *testing.T) {
	lt := tree.NewLabelTable()
	a := cParse(t, lt, "{a{b}}")
	b := cParse(t, lt, "{a{c}}")
	costs := ted.WeightedCosts{DeleteCost: 1, InsertCost: 1, RenameCost: 3}
	// rename b→c costs 3; delete b + insert c costs 2.
	if d := ted.ConstrainedDistanceCosts(a, b, costs); d != 2 {
		t.Errorf("weighted CTED = %d, want 2", d)
	}
	if d := ted.DistanceCosts(a, b, costs); d != 2 {
		t.Errorf("weighted TED = %d, want 2", d)
	}
	// Unit costs: ConstrainedDistanceCosts(UnitCosts) == ConstrainedDistance.
	rng := rand.New(rand.NewSource(521))
	for i := 0; i < 50; i++ {
		x := randTree(rng, lt, 1+rng.Intn(12), 3)
		y := randTree(rng, lt, 1+rng.Intn(12), 3)
		if int64(ted.ConstrainedDistance(x, y)) != ted.ConstrainedDistanceCosts(x, y, ted.UnitCosts{}) {
			t.Fatal("unit-cost paths disagree")
		}
	}
}

// TestConstrainedGapCase documents a pair where CTED strictly exceeds TED:
// distributing the children of one node over two requires a non-constrained
// mapping.
func TestConstrainedGapCase(t *testing.T) {
	lt := tree.NewLabelTable()
	// T1: root with one child x having children {a, b}; T2: root with two
	// children x1{a} and x2{b}. TED can delete x and insert x1, x2 around a
	// and b... the LCA of (a, b) is x in T1 but the root in T2, so any
	// mapping keeping a and b is not LCA-preserving.
	a := cParse(t, lt, "{r{x{a}{b}}}")
	b := cParse(t, lt, "{r{x{a}}{x{b}}}")
	d := ted.Distance(a, b)
	cd := ted.ConstrainedDistance(a, b)
	if cd < d {
		t.Fatalf("CTED %d < TED %d", cd, d)
	}
	if cd == d {
		t.Logf("note: CTED == TED == %d on the intended gap case", d)
	}
	if cd > d+2 {
		t.Fatalf("CTED %d unexpectedly far above TED %d", cd, d)
	}
}

func randLabel(rng *rand.Rand) string {
	return string(rune('a' + rng.Intn(5)))
}

func randTree(rng *rand.Rand, lt *tree.LabelTable, n, maxLab int) *tree.Tree {
	b := tree.NewBuilder(lt)
	b.Root(string(rune('a' + rng.Intn(maxLab))))
	for i := 1; i < n; i++ {
		b.Child(int32(rng.Intn(i)), string(rune('a'+rng.Intn(maxLab))))
	}
	return b.MustBuild()
}
