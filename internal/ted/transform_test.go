package ted_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// TestTransformHandCases walks the morph on pinned pairs.
func TestTransformHandCases(t *testing.T) {
	lt := tree.NewLabelTable()
	cases := []struct{ a, b string }{
		{"{a}", "{a}"},
		{"{a}", "{b}"},
		{"{a{b}}", "{a}"},
		{"{a}", "{a{b}}"},
		{"{a{b}{c}}", "{a{c}{b}}"},
		{"{a{b{c}{d}}}", "{a{c}{d}}"},
		{"{r{a}{b}}", "{s{a}{b}}"},
		{"{a{b}}", "{c{a{b}}}"},                  // new root inserted above
		{"{c{a{b}}}", "{a{b}}"},                  // root deleted
		{"{l1{l2}{l1{l3}}}", "{l1{l2{l1}{l3}}}"}, // the paper's Figure 3 pair
	}
	for _, c := range cases {
		a := tree.MustParseBracket(c.a, lt)
		b := tree.MustParseBracket(c.b, lt)
		steps, err := ted.Transform(a, b)
		if err != nil {
			t.Errorf("Transform(%s, %s): %v", c.a, c.b, err)
			continue
		}
		checkTransform(t, a, b, steps)
	}
}

// checkTransform asserts the morph contract: dist+1 trees, endpoints equal
// a and b, every consecutive pair at TED exactly 1.
func checkTransform(t *testing.T, a, b *tree.Tree, steps []*tree.Tree) {
	t.Helper()
	dist := ted.Distance(a, b)
	if len(steps) != dist+1 {
		t.Fatalf("%d steps for distance %d (%s -> %s)",
			len(steps)-1, dist, tree.FormatBracket(a), tree.FormatBracket(b))
	}
	if !tree.Equal(steps[0], a) {
		t.Fatalf("first step is not the source")
	}
	if !tree.Equal(steps[len(steps)-1], b) {
		t.Fatalf("last step %s is not the target %s",
			tree.FormatBracket(steps[len(steps)-1]), tree.FormatBracket(b))
	}
	for i := 1; i < len(steps); i++ {
		if err := steps[i].Validate(); err != nil {
			t.Fatalf("step %d invalid: %v", i, err)
		}
		if d := ted.Distance(steps[i-1], steps[i]); d != 1 {
			t.Fatalf("steps %d -> %d have distance %d, want 1:\n%s\n%s",
				i-1, i, d, tree.FormatBracket(steps[i-1]), tree.FormatBracket(steps[i]))
		}
	}
}

// TestTransformRandom: the morph contract holds on random pairs — the
// whole-chain oracle for Mapping/EditScript.
func TestTransformRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	lt := tree.NewLabelTable()
	for i := 0; i < 200; i++ {
		a := randTree(rng, lt, 1+rng.Intn(14), 4)
		b := randTree(rng, lt, 1+rng.Intn(14), 4)
		steps, err := ted.Transform(a, b)
		if err != nil {
			t.Fatalf("Transform: %v\n%s\n%s", err, tree.FormatBracket(a), tree.FormatBracket(b))
		}
		checkTransform(t, a, b, steps)
	}
}

// TestTransformNearPairs: pairs a few edits apart exercise the phases in
// isolation (pure renames, pure deletes, mixed).
func TestTransformNearPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	lt := tree.NewLabelTable()
	for i := 0; i < 100; i++ {
		a := randTree(rng, lt, 8+rng.Intn(12), 4)
		b := a
		for e := 0; e < rng.Intn(4); e++ {
			b = mutate(rng, b)
		}
		steps, err := ted.Transform(a, b)
		if err != nil {
			t.Fatalf("Transform: %v", err)
		}
		checkTransform(t, a, b, steps)
	}
}

// mutate applies one random node edit operation.
func mutate(rng *rand.Rand, t *tree.Tree) *tree.Tree {
	switch rng.Intn(3) {
	case 0:
		return tree.Rename(t, int32(rng.Intn(t.Size())), string(rune('a'+rng.Intn(5))))
	case 1:
		n := int32(rng.Intn(t.Size()))
		out, err := tree.Delete(t, n)
		if err != nil {
			return tree.Rename(t, n, "z")
		}
		return out
	default:
		p := int32(rng.Intn(t.Size()))
		nc := len(t.Children(p))
		at := 0
		if nc > 0 {
			at = rng.Intn(nc + 1)
		}
		count := 0
		if nc-at > 0 {
			count = rng.Intn(nc - at + 1)
		}
		out, err := tree.Insert(t, p, at, count, string(rune('a'+rng.Intn(5))))
		if err != nil {
			return t
		}
		return out
	}
}
