package ted_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// figure3Trees returns the paper's Figure 3 pair with TED(T1, T2) = 3.
func figure3Trees(lt *tree.LabelTable) (*tree.Tree, *tree.Tree) {
	t1 := tree.MustParseBracket("{l1{l2}{l1{l3}}}", lt)
	t2 := tree.MustParseBracket("{l1{l2{l1}{l3}}}", lt)
	return t1, t2
}

func TestFigure3Distance(t *testing.T) {
	lt := tree.NewLabelTable()
	t1, t2 := figure3Trees(lt)
	if d := ted.ZhangShasha(t1, t2); d != 3 {
		t.Errorf("ZhangShasha = %d, want 3", d)
	}
	if d := ted.ZhangShashaRight(t1, t2); d != 3 {
		t.Errorf("ZhangShashaRight = %d, want 3", d)
	}
	if d := ted.Distance(t1, t2); d != 3 {
		t.Errorf("Distance = %d, want 3", d)
	}
	if d := exhaustiveTED(t1, t2); d != 3 {
		t.Errorf("oracle = %d, want 3", d)
	}
}

func TestHandDistances(t *testing.T) {
	lt := tree.NewLabelTable()
	cases := []struct {
		a, b string
		want int
	}{
		{"{a}", "{a}", 0},
		{"{a}", "{b}", 1},
		{"{a{b}}", "{a}", 1},
		{"{a{b}}", "{b}", 1}, // mapping-based TED may leave the root unmapped
		{"{a{b}{c}}", "{a{c}}", 1},
		{"{a{b}{c}}", "{a{c}{b}}", 2}, // swap requires two ops (order preserved)
		{"{a{b{c}}}", "{a{c{b}}}", 2},
		{"{f{d{a}{c{b}}}{e}}", "{f{c{d{a}{b}}}{e}}", 2}, // Zhang–Shasha's classic example
		{"{a}", "{b{a}}", 1},                            // insert above root
		{"{a{b}{c}{d}}", "{a{x{b}{c}{d}}}", 1},          // insert adopting all children
		{"{a{b}{c}{d}}", "{a{b}{x{c}}{d}}", 1},
	}
	for _, c := range cases {
		a := tree.MustParseBracket(c.a, lt)
		b := tree.MustParseBracket(c.b, lt)
		if d := ted.Distance(a, b); d != c.want {
			t.Errorf("Distance(%s, %s) = %d, want %d", c.a, c.b, d, c.want)
		}
	}
}

func TestAgainstExhaustiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	lt := tree.NewLabelTable()
	for i := 0; i < 400; i++ {
		a := tinyRandomTree(rng, 6, 3, lt)
		b := tinyRandomTree(rng, 6, 3, lt)
		want := exhaustiveTED(a, b)
		if got := ted.ZhangShasha(a, b); got != want {
			t.Fatalf("ZhangShasha(%s, %s) = %d, oracle %d",
				tree.FormatBracket(a), tree.FormatBracket(b), got, want)
		}
		if got := ted.ZhangShashaRight(a, b); got != want {
			t.Fatalf("ZhangShashaRight(%s, %s) = %d, oracle %d",
				tree.FormatBracket(a), tree.FormatBracket(b), got, want)
		}
	}
}

func TestLeftRightAgreeOnLargerTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	lt := tree.NewLabelTable()
	for i := 0; i < 60; i++ {
		a := tinyRandomTree(rng, 60, 4, lt)
		b := tinyRandomTree(rng, 60, 4, lt)
		dl := ted.ZhangShasha(a, b)
		dr := ted.ZhangShashaRight(a, b)
		dh := ted.Distance(a, b)
		if dl != dr || dl != dh {
			t.Fatalf("strategies disagree: left=%d right=%d hybrid=%d\n%s\n%s",
				dl, dr, dh, tree.FormatBracket(a), tree.FormatBracket(b))
		}
	}
}

func TestMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	lt := tree.NewLabelTable()
	trees := make([]*tree.Tree, 12)
	for i := range trees {
		trees[i] = tinyRandomTree(rng, 20, 3, lt)
	}
	for _, a := range trees {
		if d := ted.Distance(a, a); d != 0 {
			t.Fatalf("Distance(a,a) = %d", d)
		}
		for _, b := range trees {
			dab := ted.Distance(a, b)
			dba := ted.Distance(b, a)
			if dab != dba {
				t.Fatalf("asymmetric: %d vs %d", dab, dba)
			}
			if dab == 0 && !tree.Equal(a, b) {
				t.Fatalf("zero distance for unequal trees")
			}
			for _, c := range trees {
				if ted.Distance(a, c) > dab+ted.Distance(b, c) {
					t.Fatalf("triangle inequality violated")
				}
			}
		}
	}
}

// TestEditScriptUpperBound: applying k random edit operations yields a tree
// within distance k (the core invariant the similarity join's property tests
// build on).
func TestEditScriptUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	lt := tree.NewLabelTable()
	for i := 0; i < 150; i++ {
		a := tinyRandomTree(rng, 25, 4, lt)
		b := a
		k := rng.Intn(5)
		for e := 0; e < k; e++ {
			b = randomEditOp(rng, b, lt)
		}
		if d := ted.Distance(a, b); d > k {
			t.Fatalf("distance %d after %d edits:\n%s\n%s",
				d, k, tree.FormatBracket(a), tree.FormatBracket(b))
		}
	}
}

// randomEditOp applies one random rename/delete/insert/wrap to t.
func randomEditOp(rng *rand.Rand, t *tree.Tree, lt *tree.LabelTable) *tree.Tree {
	n := int32(rng.Intn(t.Size()))
	label := string(rune('a' + rng.Intn(4)))
	switch rng.Intn(4) {
	case 0:
		return tree.Rename(t, n, label)
	case 1:
		if t.Nodes[n].Parent == tree.None {
			return tree.WrapRoot(t, label)
		}
		out, err := tree.Delete(t, n)
		if err != nil {
			return tree.Rename(t, n, label)
		}
		return out
	case 2:
		nc := len(t.Children(n))
		at := rng.Intn(nc + 1)
		count := 0
		if nc-at > 0 {
			count = rng.Intn(nc - at + 1)
		}
		out, err := tree.Insert(t, n, at, count, label)
		if err != nil {
			return tree.Rename(t, n, label)
		}
		return out
	default:
		return tree.WrapRoot(t, label)
	}
}

func TestLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	lt := tree.NewLabelTable()
	for i := 0; i < 200; i++ {
		a := tinyRandomTree(rng, 25, 3, lt)
		b := tinyRandomTree(rng, 25, 3, lt)
		d := ted.Distance(a, b)
		if lb := ted.SizeLowerBound(a, b); lb > d {
			t.Fatalf("size lower bound %d > TED %d", lb, d)
		}
		if lb := ted.LabelLowerBound(a, b); lb > d {
			t.Fatalf("label lower bound %d > TED %d\n%s\n%s",
				lb, d, tree.FormatBracket(a), tree.FormatBracket(b))
		}
	}
}

func TestDistanceBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	lt := tree.NewLabelTable()
	for i := 0; i < 200; i++ {
		a := tinyRandomTree(rng, 20, 3, lt)
		b := tinyRandomTree(rng, 20, 3, lt)
		d := ted.Distance(a, b)
		for tau := 0; tau <= 6; tau++ {
			got, ok := ted.DistanceBounded(a, b, tau)
			if ok != (d <= tau) {
				t.Fatalf("DistanceBounded(τ=%d): ok=%v, d=%d", tau, ok, d)
			}
			if ok && got != d {
				t.Fatalf("DistanceBounded(τ=%d) = %d, want %d", tau, got, d)
			}
			if !ok && got <= tau {
				t.Fatalf("DistanceBounded(τ=%d) reported %d with ok=false", tau, got)
			}
		}
	}
}

func TestMirror(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{a{b{d}{e}}{c}}", lt)
	m := ted.Mirror(a)
	if got := tree.FormatBracket(m); got != "{a{c}{b{e}{d}}}" {
		t.Fatalf("mirror = %s", got)
	}
	if !tree.Equal(ted.Mirror(m), a) {
		t.Fatal("mirror is not an involution")
	}
}

func TestDistanceChainsAndStars(t *testing.T) {
	lt := tree.NewLabelTable()
	chain := func(n int) *tree.Tree {
		b := tree.NewBuilder(lt)
		cur := b.Root("c")
		for i := 1; i < n; i++ {
			cur = b.Child(cur, "c")
		}
		return b.MustBuild()
	}
	star := func(n int) *tree.Tree {
		b := tree.NewBuilder(lt)
		r := b.Root("c")
		for i := 1; i < n; i++ {
			b.Child(r, "c")
		}
		return b.MustBuild()
	}
	if d := ted.Distance(chain(10), chain(7)); d != 3 {
		t.Errorf("chain10 vs chain7 = %d, want 3", d)
	}
	if d := ted.Distance(star(10), star(7)); d != 3 {
		t.Errorf("star10 vs star7 = %d, want 3", d)
	}
	// A chain and a star of equal size and labels: transform by deleting
	// inner chain nodes and re-inserting as leaves — 2·(n−2) is an upper
	// bound; check the oracle on a small instance.
	want := exhaustiveTED(chain(5), star(5))
	if d := ted.Distance(chain(5), star(5)); d != want {
		t.Errorf("chain5 vs star5 = %d, oracle %d", d, want)
	}
}
