// Threshold-aware (τ-banded) Zhang–Shasha. The similarity joins never need
// an unbounded distance: every candidate pair comes with the join threshold
// τ, and the verifier only has to decide TED ≤ τ — exactly when it is, the
// exact distance is wanted. This file implements that tri-state verifier as
// a banded variant of the DP in zs.go, in the spirit of Touzet's k-strip
// algorithms for similar trees:
//
//   - every forest DP touches only cells within τ of its diagonal (any cell
//     farther out has forest distance > τ by the size argument);
//   - keyroot pairs whose leftmost leaves sit more than τ postorder
//     positions apart are skipped outright (no ≤ τ mapping can use any
//     subtree-pair entry they would produce);
//   - a forest DP is abandoned as soon as an entire row of its band exceeds
//     τ (the frontier can never recover — see DESIGN.md, "Threshold-aware
//     verification" for the correctness argument);
//   - DP scratch memory (the subtree-distance matrix and forest-distance
//     rows) comes from a sync.Pool, so steady-state verification allocates
//     nothing per pair.
//
// The unbounded DP in zs.go remains the oracle; the property tests sweep τ
// and require verdict-and-distance agreement with it.
package ted

import (
	"sync"
	"sync/atomic"
)

// Counters instruments the τ-banded verifier. All updates are atomic, so one
// Counters value may be shared by every concurrent verify worker of a join;
// a nil *Counters disables counting. The engine folds these into
// sim.Stats after a run.
type Counters struct {
	// DPAvoided counts candidate pairs settled by the size/label lower
	// bounds alone — full DPs avoided entirely.
	DPAvoided atomic.Int64
	// KeyrootsSkipped counts keyroot-pair forest DPs pruned by the
	// positional (leftmost-leaf distance) skip.
	KeyrootsSkipped atomic.Int64
	// BandAborts counts forest DPs cut short because an entire row of the
	// band exceeded τ.
	BandAborts atomic.Int64
	// StrategyLeft and StrategyRight count candidate pairs whose DP ran
	// under the left-path or right-path (mirrored) decomposition — the
	// per-pair outcomes of the RTED-style strategy choice. Only pairs that
	// reach a DP are counted; pairs settled by the lower bounds never pick.
	StrategyLeft  atomic.Int64
	StrategyRight atomic.Int64
}

func (tc *Counters) addDPAvoided() {
	if tc != nil {
		tc.DPAvoided.Add(1)
	}
}

func (tc *Counters) addKeyrootsSkipped(n int64) {
	if tc != nil && n > 0 {
		tc.KeyrootsSkipped.Add(n)
	}
}

func (tc *Counters) addBandAborts(n int64) {
	if tc != nil && n > 0 {
		tc.BandAborts.Add(n)
	}
}

func (tc *Counters) addStrategy(dec Decomp) {
	if tc == nil {
		return
	}
	if dec == DecompLeft {
		tc.StrategyLeft.Add(1)
	} else {
		tc.StrategyRight.Add(1)
	}
}

// scratch is the reusable DP memory of one bounded verification: the
// subtree-distance matrix and the forest-distance matrix.
type scratch struct {
	td []int32
	fd []int32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func (s *scratch) ensure(n1, n2 int) {
	if need := n1 * n2; cap(s.td) < need {
		s.td = make([]int32, need)
	} else {
		s.td = s.td[:need]
	}
	if need := (n1 + 1) * (n2 + 1); cap(s.fd) < need {
		s.fd = make([]int32, need)
	} else {
		s.fd = s.fd[:need]
	}
}

// DistanceBoundedPrep reports whether TED(a, b) ≤ tau from precomputed
// preparations: the size and label lower bounds run first (no DP at all when
// either proves the pair distant), then the τ-banded Zhang–Shasha over the
// cheaper decomposition. The tri-state contract: on true the returned
// distance is exact; on false the distance is only known to exceed tau and
// the returned value is tau+1. tc, when non-nil, accumulates the verifier's
// pruning counters. Both trees must share one LabelTable.
func DistanceBoundedPrep(a, b *Prep, tau int, tc *Counters) (int, bool) {
	if a.t.Labels != b.t.Labels {
		panic("ted: trees must share a label table")
	}
	if tau < 0 {
		return tau + 1, false
	}
	if d := a.size - b.size; d > tau || -d > tau {
		tc.addDPAvoided()
		return tau + 1, false
	}
	if labelLowerBoundSorted(a.labels, b.labels) > tau {
		tc.addDPAvoided()
		return tau + 1, false
	}
	p1, p2 := pick(a, b)
	s := scratchPool.Get().(*scratch)
	d, ok := bandedZS(p1, p2, tau, s, tc)
	scratchPool.Put(s)
	return d, ok
}

// DistanceBoundedPrepFull is the pre-banding verifier over preparations: the
// size lower bound followed by the full (unbanded) Zhang–Shasha DP of the
// cheaper decomposition, compared to tau afterwards. It is the oracle the
// banded verifier is benchmarked and property-tested against, and the
// verifier behind the public WithUnbandedVerification ablation option.
func DistanceBoundedPrepFull(a, b *Prep, tau int) (int, bool) {
	if a.t.Labels != b.t.Labels {
		panic("ted: trees must share a label table")
	}
	if tau < 0 {
		return tau + 1, false
	}
	if d := a.size - b.size; d > tau || -d > tau {
		return tau + 1, false
	}
	p1, p2 := pick(a, b)
	d := zs(p1, p2)
	return d, d <= tau
}

// bandedZS decides TED ≤ tau over prepared trees. It returns the exact
// distance and true when TED ≤ tau, and (tau+1, false) otherwise.
//
// Correctness sketch (full argument in DESIGN.md): forest-distance values
// never drop below the forest size difference, and values along an optimal
// DP chain never exceed the chain's final value, so every chain realising a
// distance ≤ τ stays within the |di−dj| ≤ τ band and reads only
// subtree-distance entries whose own value is ≤ τ — which the band computes
// exactly, inner keyroots before outer. Everything the band never computes
// is held at the sentinel τ+1; a chain through a sentinel is > τ, so it can
// neither fake a result nor disturb an exact one.
func bandedZS(a, b *prep, tau int, s *scratch, tc *Counters) (int, bool) {
	n1, n2 := len(a.labels), len(b.labels)
	// All distances are ≤ n1+n2 (delete one tree, insert the other), so a
	// larger τ adds nothing — and keeping the sentinel at τ+1 small guards
	// the int32 arithmetic.
	bandTau := tau
	if bandTau > n1+n2 {
		bandTau = n1 + n2
	}
	s.ensure(n1, n2)
	td, fd := s.td, s.fd
	over := int32(bandTau) + 1
	for i := range td {
		td[i] = over
	}
	t32 := int32(bandTau)
	var skipped, aborts int64
	for _, i := range a.keyroots {
		li := a.lml[i]
		for _, j := range b.keyroots {
			// Positional skip: every subtree pair this DP would solve has
			// its leftmost leaves at postorder positions li and b.lml[j];
			// a ≤ τ mapping aligns those boundaries within τ positions, so
			// a farther pair can contribute nothing to a ≤ τ result.
			if d := li - b.lml[j]; d > t32 || -d > t32 {
				skipped++
				continue
			}
			if !bandedForestDP(a, b, i, j, bandTau, td, fd) {
				aborts++
			}
		}
	}
	tc.addKeyrootsSkipped(skipped)
	tc.addBandAborts(aborts)
	if d := td[(n1-1)*n2+(n2-1)]; d < over {
		return int(d), true
	}
	return tau + 1, false
}

// bandedForestDP is forestDP restricted to the band |di−dj| ≤ tau, writing
// exact values ≤ tau and capping everything else at the sentinel tau+1. It
// reports false when the row frontier exceeded tau and the DP was abandoned
// (all unwritten subtree entries are then provably > tau and keep their
// sentinel).
func bandedForestDP(a, b *prep, i, j int32, tau int, td, fd []int32) bool {
	n2 := len(b.labels)
	w := n2 + 1
	over := int32(tau) + 1
	li, lj := a.lml[i], b.lml[j]
	m, n := int(i-li)+1, int(j-lj)+1
	// Boundary row and column, only inside the band: fd(di,0) = di, fd(0,dj) = dj.
	fd[0] = 0
	bm := tau
	if bm > m {
		bm = m
	}
	for di := 1; di <= bm; di++ {
		fd[di*w] = int32(di)
	}
	bn := tau
	if bn > n {
		bn = n
	}
	for dj := 1; dj <= bn; dj++ {
		fd[dj] = int32(dj)
	}
	for di := 1; di <= m; di++ {
		ai := li + int32(di) - 1
		aLml := a.lml[ai]
		aTree := aLml == li
		aLabel := a.labels[ai]
		lo := di - tau
		rowMin := over
		if lo < 1 {
			lo = 1
			// Cell (di, 0) is in the band; it belongs to the frontier.
			rowMin = int32(di)
		}
		hi := di + tau
		if hi > n {
			hi = n
		}
		for dj := lo; dj <= hi; dj++ {
			bj := lj + int32(dj) - 1
			best := over
			if dj < di+tau { // deletion: (di−1, dj) lies in the band
				if v := fd[(di-1)*w+dj] + 1; v < best {
					best = v
				}
			}
			if dj > di-tau { // insertion: (di, dj−1) lies in the band
				if v := fd[di*w+dj-1] + 1; v < best {
					best = v
				}
			}
			treeCase := aTree && b.lml[bj] == lj
			if treeCase {
				// Both prefixes end in a full subtree whose leftmost leaf
				// starts the forest: tree-tree case on the diagonal (always
				// in the band).
				cost := int32(1)
				if aLabel == b.labels[bj] {
					cost = 0
				}
				if v := fd[(di-1)*w+dj-1] + cost; v < best {
					best = v
				}
			} else {
				x := int(aLml - li)
				y := int(b.lml[bj] - lj)
				if d := x - y; d <= tau && -d <= tau {
					if v := fd[x*w+y] + td[int(ai)*n2+int(bj)]; v < best {
						best = v
					}
				}
			}
			if best > over {
				best = over
			}
			fd[di*w+dj] = best
			if treeCase && best < over {
				td[int(ai)*n2+int(bj)] = best
			}
			if best < rowMin {
				rowMin = best
			}
		}
		if rowMin >= over {
			// The whole banded frontier exceeds τ: out-of-band cells are
			// > τ by the size argument, so every later row — and every
			// subtree entry it would write — is > τ too.
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Arena-native banded kernel. Same DP as bandedZS/bandedForestDP, same values
// cell for cell (the property tests insist on it), but over TreeView arrays
// with band-compacted storage:
//
//   - the subtree-distance matrix stores only the diagonal band it can ever
//     touch — |ai−bj| ≤ 2τ, from the keyroot window plus the cell band — in
//     a skewed layout of n1·(4τ+1) int16 cells, so the per-pair sentinel
//     init is O(n1·τ) instead of the O(n1·n2) that dominates small-τ runs;
//   - the forest band is skew-packed with shared sentinel pad cells between
//     adjacent rows, so out-of-band neighbour reads land on a pad instead of
//     being branched around — the inner loop has no band tests;
//   - each keyroot of one tree binary-searches the other tree's keyroots
//     (pre-sorted by leftmost leaf in the arena) for its τ-window instead of
//     scanning and skipping all of them;
//   - cells are int16 (distances are capped at τ+1 ≤ maxViewBand+1), halving
//     the scratch traffic of the int32 kernel.
// ---------------------------------------------------------------------------

// Decomp selects the decomposition the arena verifier runs: the per-pair
// strategy-driven default, or a forced direction for ablation benchmarks and
// the property tests.
type Decomp int

const (
	DecompAuto  Decomp = iota // pick per pair from the strategy costs
	DecompLeft                // force the left-path decomposition
	DecompRight               // force the right-path (mirrored) decomposition
)

// maxViewBand bounds the band half-width of the int16 arena kernel (cell
// values reach 2·(τ+1), which must fit in int16). A pair whose clamped band
// exceeds it — τ beyond 16000 on trees at least that large — falls back to
// the int32 pointer kernel; no paper-scale workload comes near this.
const maxViewBand = 16000

// VerifyScratch is the reusable DP memory of the arena verifier: the
// band-packed subtree-distance matrix and the skew-packed forest band with
// its sentinel pads. One scratch serves one verify worker across a whole
// batch of candidates; AcquireScratch/ReleaseScratch pool them so
// steady-state batched verification allocates nothing per pair.
type VerifyScratch struct {
	td []int16
	fd []int16
	// win gathers one outer keyroot's τ-window of inner keyroots (found in
	// lml order, re-sorted to postorder before the DPs run); path holds one
	// inner keyroot's decomposition path, the forest positions where
	// tree-tree cells occur.
	win  []int32
	path []int32
	// tpl is the common-prefix-skip row template [bt, …, 1, 0, 1, …, bt]:
	// row di of a skipped wedge holds |di−dj| across its band, which is this
	// sequence shifted to the diagonal, so the fill is a copy per row.
	tpl []int16
	// padBt and padLen record the band half-width baked into fd's sentinel
	// pads and how far the pads are written, so consecutive pairs at one τ
	// skip the refill.
	padBt  int
	padLen int
}

var verifyScratchPool = sync.Pool{New: func() any { return &VerifyScratch{padBt: -1} }}

// AcquireScratch takes a verify scratch from the pool.
func AcquireScratch() *VerifyScratch { return verifyScratchPool.Get().(*VerifyScratch) }

// ReleaseScratch returns a scratch obtained from AcquireScratch.
func ReleaseScratch(s *VerifyScratch) { verifyScratchPool.Put(s) }

// ensureView sizes the scratch for one pair and (re)writes fd's constant
// cells when the band width changed or the buffer grew:
//
//   - the pad cells — every multiple of the skewed stride 2·bt+2 holds the
//     sentinel — that out-of-band neighbour reads land on;
//   - the DP boundary row and column, fd(0,dj)=dj and fd(di,0)=di for
//     di,dj ≤ bt, which depend on bt alone.
//
// No DP ever overwrites any of these (in-band writes start at row 1, column 1,
// and stay strictly inside their row block), so a run of same-τ pairs pays for
// the fill once and every individual forest DP starts with zero setup.
func (s *VerifyScratch) ensureView(tdLen, fdLen, bt int, over int16) {
	if cap(s.td) < tdLen {
		s.td = make([]int16, tdLen)
	} else {
		s.td = s.td[:tdLen]
	}
	if cap(s.fd) < fdLen {
		s.fd = make([]int16, fdLen)
		s.padBt = -1
	} else {
		s.fd = s.fd[:fdLen]
	}
	if s.padBt == bt && s.padLen >= fdLen {
		return
	}
	stride := 2*bt + 2
	for k := 0; k < fdLen; k += stride {
		s.fd[k] = over
	}
	// Boundary row: cell (0, dj) sits at offset bt+1+dj of block 0 (always
	// inside the buffer — a block is 2bt+2 cells and dj ≤ bt).
	for dj := 0; dj <= bt; dj++ {
		s.fd[bt+1+dj] = int16(dj)
	}
	// Boundary column: cell (di, 0) sits at offset bt+1−di of block di, for
	// the blocks that exist (di can exceed the smaller tree's size).
	for di := 1; di <= bt && di*stride+bt+1-di < fdLen; di++ {
		s.fd[di*stride+bt+1-di] = int16(di)
	}
	if cap(s.tpl) < 2*bt+1 {
		s.tpl = make([]int16, 2*bt+1)
	} else {
		s.tpl = s.tpl[:2*bt+1]
	}
	for k := range s.tpl {
		v := k - bt
		if v < 0 {
			v = -v
		}
		s.tpl[k] = int16(v)
	}
	s.padBt, s.padLen = bt, fdLen
}

// DistanceBoundedView is DistanceBoundedPrep over arena views: size and label
// lower bounds first, then the strategy-chosen decomposition's band-compacted
// DP. The tri-state contract is identical — on true the distance is exact, on
// false it is only known to exceed tau and tau+1 is returned — and so are the
// values: the property tests require verdict-and-distance agreement with both
// the pointer-based banded kernel and the unbounded oracle. The caller owns
// the scratch (one per worker, from AcquireScratch), which is what makes a
// batched verify loop allocation-free.
func DistanceBoundedView(a, b *TreeView, tau int, s *VerifyScratch, tc *Counters) (int, bool) {
	return DistanceBoundedViewDecomp(a, b, tau, DecompAuto, s, tc)
}

// DistanceBoundedViewDecomp is DistanceBoundedView with the decomposition
// forced (DecompLeft/DecompRight) or strategy-driven (DecompAuto). Forced
// directions back the strategy-ablation benchmarks; results are identical in
// every mode.
func DistanceBoundedViewDecomp(a, b *TreeView, tau int, dec Decomp, s *VerifyScratch, tc *Counters) (int, bool) {
	if a.T.Labels != b.T.Labels {
		panic("ted: trees must share a label table")
	}
	if tau < 0 {
		return tau + 1, false
	}
	n1, n2 := len(a.Labels), len(b.Labels)
	if d := n1 - n2; d > tau || -d > tau {
		tc.addDPAvoided()
		return tau + 1, false
	}
	if labelBoundExceeds(a.SortedLabels, b.SortedLabels, tau) {
		tc.addDPAvoided()
		return tau + 1, false
	}
	// All distances are ≤ n1+n2, so the band never needs to be wider.
	bt := tau
	if bt > n1+n2 {
		bt = n1 + n2
	}
	if bt > maxViewBand {
		return DistanceBoundedPrep(NewPrep(a.T), NewPrep(b.T), tau, tc)
	}
	if dec == DecompAuto {
		dec = chooseDecomp(a.CostL, a.CostR, b.CostL, b.CostR)
	}
	tc.addStrategy(dec)
	if dec == DecompLeft {
		return bandedView(a.Labels, a.Lml, a.Keyroots, b.Labels, b.Lml, b.Parent, b.Keyroots, b.KrByLml, tau, bt, s, tc)
	}
	return bandedView(a.RLabels, a.Rml, a.RKeyroots, b.RLabels, b.Rml, b.RParent, b.RKeyroots, b.RKrByLml, tau, bt, s, tc)
}

// bandedView runs the band-compacted DP over one decomposition's arrays.
// Both keyroot loops walk ascending postorder, as the DP's data dependencies
// require: the sub-case of pair (i, j) reads subtree entries written under
// pairs (k1, k2) with k1 < i, or k1 = i and k2 < j (subtree intervals are
// laminar, so an inner keyroot precedes the outer one in postorder).
// Per outer keyroot, the τ-window of inner keyroots — the ones the pointer
// kernel's positional skip keeps — is located by binary search in bkrByLml
// (the same keyroots sorted by ascending leftmost leaf), gathered, and
// re-sorted to postorder, so the cost per outer keyroot is proportional to
// its window, not to the inner keyroot count.
func bandedView(al, alml, akr []int32, bl, blml, bpar, bkr, bkrByLml []int32, tau, bt int, s *VerifyScratch, tc *Counters) (int, bool) {
	n1, n2 := len(al), len(bl)
	over := int16(bt) + 1
	tdStride := 4*bt + 1
	tdLen := n1 * tdStride
	fdLen := (n1+1)*(2*bt+2) + 1
	s.ensureView(tdLen, fdLen, bt, over)
	td, fd := s.td, s.fd
	for i := range td {
		td[i] = over
	}
	t32 := int32(bt)
	nb := len(bkr)
	var skipped, aborts int64
	for _, i := range akr {
		li := alml[i]
		// τ-window gather: binary-search the first b-keyroot with lml ≥ li−τ
		// in lml order, walk forward while lml ≤ li+τ. The window holds every
		// inner keyroot the pointer kernel's positional skip would keep — on
		// filtered workloads that is a handful out of all of them — so the
		// skipped count is the complement in one subtraction, with no scan.
		wlo, whi := 0, nb
		for wlo < whi {
			mid := int(uint(wlo+whi) >> 1)
			if blml[bkrByLml[mid]] < li-t32 {
				wlo = mid + 1
			} else {
				whi = mid
			}
		}
		whi = wlo
		for whi < nb && blml[bkrByLml[whi]]-li <= t32 {
			whi++
		}
		w := whi - wlo
		skipped += int64(nb - w)
		if w == 0 {
			continue
		}
		if cap(s.win) < w {
			s.win = make([]int32, w+2*bt+1)
		}
		win := s.win[:w]
		copy(win, bkrByLml[wlo:whi])
		// The DPs must run in ascending postorder (the sub-case of (i, j)
		// reads entries written under earlier pairs); re-sort the lml-ordered
		// window. Windows are tiny — at most the keyroots of 2τ+1 positions —
		// so insertion sort beats anything with a dispatch cost.
		for x := 1; x < w; x++ {
			v := win[x]
			y := x - 1
			for y >= 0 && win[y] > v {
				win[y+1] = win[y]
				y--
			}
			win[y+1] = v
		}
		// Degenerate DPs — a leaf keyroot on either side — dominate the DP
		// count on real keyroot sets (every leaf is its own keyroot). Their
		// grids are a single row or column whose deletion, insertion, and
		// sub-case sources are boundary constants or subtree entries, so they
		// run as register chains with no forest scratch at all; only pairs
		// with two non-trivial subtrees reach the general banded DP.
		m := int(i-li) + 1
		for _, j := range win {
			lj := blml[j]
			var ok bool
			switch {
			case m == 1 && j == lj:
				// Leaf against leaf: the lone in-band cell is the relabel
				// cost (insertion and deletion chains cost 2 and never win).
				var v int16
				if al[i] != bl[j] {
					v = 1
				}
				if ok = v < over; ok {
					td[int(i)*4*bt+2*bt+int(j)] = v
				}
			case m == 1:
				ok = bandedViewRow(al, bl, blml, i, j, bt, over, td)
			case j == lj:
				ok = bandedViewCol(al, alml, bl, i, j, bt, over, td)
			default:
				ok = bandedViewDP(al, alml, bl, blml, bpar, i, j, bt, over, td, fd, s)
			}
			if !ok {
				aborts++
			}
		}
	}
	tc.addKeyrootsSkipped(skipped)
	tc.addBandAborts(aborts)
	if d := td[(n1-1)*tdStride+(n2-1)-(n1-1)+2*bt]; d < over {
		return int(d), true
	}
	return tau + 1, false
}

// bandedViewDP is one keyroot pair's forest DP over the packed layouts.
//
// Forest band: cell (di, dj) lives at di·(2bt+1) + dj + bt + 1 — row blocks
// of stride 2bt+2 whose boundary cells (the multiples of the stride) are
// sentinel pads shared between adjacent rows. The deletion read (di−1, dj)
// at idx−(2bt+1), the insertion read (di, dj−1) at idx−1, and the diagonal
// read at idx−(2bt+2) each land either on an in-band cell or exactly on a
// pad, so the inner loop needs no band tests: an out-of-band neighbour
// contributes the sentinel and loses the min.
//
// Subtree band: entry (ai, bj) lives at ai·(4bt+1) + (bj−ai) + 2bt; every
// read and write satisfies |ai−bj| ≤ 2bt (keyroot window plus cell band), so
// the rows pack without collision.
//
// Two row bodies. A tree row (x = 0: the row node sits on the outer
// keyroot's decomposition path) needs no sub-case gather at all — its source
// row is the constant boundary fd(0, y) = y, so the candidate is y plus the
// subtree entry, computed in registers; its y = 0 cells (forest positions on
// the inner keyroot's path — where blml equals the inner decomposition leaf)
// take the tree-tree candidate (diagonal + relabel cost) folded straight
// into the min, and store the subtree entry. Folding is exact: carrying the
// patched value onward in `left` is the insertion-chain propagation the
// two-pass form re-ran after the fact (min distributes over the chain), so
// cell values, rowMin, and the abort behaviour are unchanged. A sub-forest
// row (x > 0) keeps the gathered sub-case read and can skip the y test —
// the tree-tree candidate never applies there.
func bandedViewDP(al, alml []int32, bl, blml, bpar []int32, i, j int32, bt int, over int16, td, fd []int16, s *VerifyScratch) bool {
	stride := 2*bt + 2
	li, lj := alml[i], blml[j]
	m, n := int(i-li)+1, int(j-lj)+1
	clj := li - lj + int32(bt)
	t32 := int32(bt)
	// Global band. Any mapping of cost ≤ τ is a monotone alignment of the two
	// postorder sequences, so every boundary it induces — in every forest DP
	// of the keyroot hierarchy — has global offset |ai − bj| =
	// |(di−dj) + (li−lj)| ≤ (deletions so far) + (insertions so far) ≤ τ.
	// Intersecting that with the local size band |di−dj| ≤ τ narrows this
	// DP's rows from half-width bt to btL = bt−max(δ,0) on the left and
	// btR = bt+min(δ,0) on the right, where δ = li−lj is the keyroot pair's
	// leaf offset: width 2bt+1−|δ| instead of 2bt+1. Cells outside the
	// narrow band are never on a ≤ τ chain, so holding them at the sentinel
	// preserves every exact value the verifier reports; each row writes one
	// sentinel past its right edge so the next row's deletion read — and any
	// later sub-case read, which tests the narrow band — never sees a stale
	// cell of the wide band. Reads that land on persisted boundary cells or
	// prefix-skip wedge rows outside the narrow band are harmless the other
	// way: those hold exact (not stale) values.
	delta := int(li - lj)
	btL, btR := bt, bt
	dLo := 0
	if delta > 0 {
		btL -= delta
		dLo = delta
	} else {
		btR += delta
	}
	span := uint32(btL + btR)
	// Common-prefix skip. Let P be the length of the longest common prefix
	// of the two forests' local postorders (equal labels and equal local
	// leftmost-leaf offsets — the lml array determines forest shape). Then:
	//
	//   - an in-band cell fd(di, dj) with di ≤ P is the distance between two
	//     prefixes of identical forests, which is exactly |di−dj| (the size
	//     lower bound, achieved by deleting the postorder tail; the diagonal
	//     chain plus row/column steps realise it inside the band) — so rows
	//     1..P need no computation: each is a copy of the |·−bt| template.
	//     All of them are filled, not only row P, because any later row may
	//     read row x = lml(ai)−li ≤ P as its sub-case source;
	//   - a subtree entry (sa, sb) in local path positions with sa ≤ P−1
	//     compares a subtree inside the common prefix against a subtree on
	//     the other path; path subtrees are nested, so the distance is
	//     exactly |sa−sb| — all entries the skipped rows would have written
	//     (the in-window, in-band ones) are stored in O(1) each. Path
	//     positions ≤ P−1 coincide between the two forests, so one walk of
	//     the inner keyroot's path enumerates both sides.
	//
	// The skipped rows always carry fd(di, di) = 0 on their frontier, so
	// they can never trigger the row abort: abort behaviour, every later
	// cell, and every counter are bit-identical to the unskipped DP. On
	// near-duplicate candidate pairs — the ones a τ-join actually verifies —
	// identical subtree pairs run no rows at all.
	maxP := m
	if n < maxP {
		maxP = n
	}
	dl := li - lj
	P := 0
	for P < maxP && al[li+int32(P)] == bl[lj+int32(P)] && alml[li+int32(P)]-blml[lj+int32(P)] == dl {
		P++
	}
	if P > 0 {
		// The fast entry writes enumerate path positions up to P−1+bt (the
		// outer side stops at P−1, the inner at most bt beyond it), so the
		// decomposition path — the parent chain of lj — is only built that
		// far, and only when a prefix exists at all.
		path := s.path[:0]
		pcap := int32(P-1) + t32
		for p := lj; p >= 0 && p <= j && p-lj <= pcap; p = bpar[p] {
			path = append(path, p)
		}
		s.path = path
		np := len(path)
		tlo := 0
		for ta := 0; ta < np; ta++ {
			sa := path[ta] - lj
			if int(sa) > P-1 {
				break
			}
			for tlo < np && path[tlo]-lj < sa-t32 {
				tlo++
			}
			rowB := int(li+sa)*4*bt + 2*bt
			for tb := tlo; tb < np; tb++ {
				d := path[tb] - lj - sa
				if d > t32 {
					break
				}
				if d < 0 {
					d = -d
				}
				td[rowB+int(path[tb])] = int16(d)
			}
		}
		// Row di's in-band cells sit at fd[di·(2bt+1)+dj+bt+1] for
		// dj ∈ [di−bt, di+bt] — contiguous between the row's pads — and hold
		// |di−dj|: the template shifted so its zero lands on the diagonal,
		// clamped to the valid columns [0, n].
		for di := 1; di <= P; di++ {
			djlo := di - bt
			if djlo < 0 {
				djlo = 0
			}
			djhi := di + bt
			if djhi > n {
				djhi = n
			}
			dst := di*(stride-1) + djlo + bt + 1
			copy(fd[dst:dst+djhi-djlo+1], s.tpl[djlo-di+bt:])
		}
	}
	diStart := P + 1
	// Per-row window bounds and array bases advance incrementally: row di
	// covers columns [lo, hi] = [max(1, di−bt), min(n, di+bt)], its cells
	// start at fd offset di·(2bt+1)+lo−bt−1, its subtree-entry row at
	// td offset ai·4bt+2bt+(lj+lo−1) — all linear in di and lo.
	lo := diStart - btL
	if lo < 1 {
		lo = 1
	}
	rwBase := diStart*(stride-1) + lo - bt - 1
	bOff := int(lj) + lo - 1
	tdBase := int(li+int32(diStart)-1)*4*bt + 2*bt + bOff
	ljI, btI, overI := int(lj), bt, int(over)
	for di := diStart; di <= m; di++ {
		ai := li + int32(di) - 1
		aLml := alml[ai]
		rowMin := overI
		if di <= btL {
			// Cell (di, 0) is the boundary value di, in band: it belongs to
			// the row frontier.
			rowMin = di
		}
		hi := di + btR
		if hi > n {
			hi = n
		}
		if hi < lo {
			// The whole row is right of the band: the frontier is sentinel.
			return false
		}
		cnt := hi - lo + 1
		// rw spans the previous and the current row block plus one sentinel
		// slot: the diagonal neighbour of cell k is rw[k], the deletion
		// neighbour rw[k+1], the cell itself rw[stride+k]; the insertion
		// neighbour rides along in `left` (seeded from the boundary cell when
		// the window still touches column 1, sentinel once the narrow band has
		// moved past it).
		rw := fd[rwBase : rwBase+stride+cnt+1]
		browLml := blml[bOff : bOff+cnt]
		tdRow := td[tdBase : tdBase+cnt] // all row cells satisfy |ai−bj| ≤ 2bt
		left := overI
		if lo == 1 {
			left = int(rw[stride-1])
		}
		if aLml == li {
			// Tree row: the sub-case source is the constant boundary row
			// fd(0, y) = y (block 0, offset y+bt+1; its pad when y is out of
			// band), and the tree-tree candidate applies exactly at y = 0
			// cells — folded in branchlessly by adding a penalty that makes
			// it lose everywhere else, with the entry store steered to the
			// sink cell off-path. Every select below is a conditional move,
			// not a branch: the y pattern is data-dependent and would miss.
			aLabel := al[ai]
			for k := 0; k < cnt; k++ {
				v := left
				if d := int(rw[k+1]); d < v {
					v = d
				}
				v++
				if y := int(browLml[k]) - ljI; y == 0 {
					tv := int(rw[k])
					if bl[bOff+k] != aLabel {
						tv++
					}
					if tv < v {
						v = tv
					}
					if v > overI {
						v = overI
					}
					td[tdBase+k] = int16(v)
				} else {
					if y <= btI {
						if sv := y + int(tdRow[k]); sv < v {
							v = sv
						}
					}
					if v > overI {
						v = overI
					}
				}
				if v < rowMin {
					rowMin = v
				}
				rw[stride+k] = int16(v)
				left = v
			}
		} else {
			// Sub-forest row: gathered sub-case read from the fixed source
			// row x = aLml−li. With yb = y − (x−bt), the band guard is
			// 0 ≤ yb ≤ 2bt and cell (x, y) sits at offset yb+1 of block x;
			// an out-of-band cell reads the block's pad (offset 0) instead —
			// the sentinel, which loses.
			xrow := fd[int(aLml-li)*stride : int(aLml-li)*stride+stride]
			c := int(clj - aLml)
			for k := 0; k < cnt; k++ {
				v := left
				if d := int(rw[k+1]); d < v {
					v = d
				}
				v++
				idx := int(browLml[k]) + c + 1
				if uint32(idx-1-dLo) > span {
					idx = 0
				}
				if sv := int(xrow[idx]) + int(tdRow[k]); sv < v {
					v = sv
				}
				if v > overI {
					v = overI
				}
				if v < rowMin {
					rowMin = v
				}
				rw[stride+k] = int16(v)
				left = v
			}
		}
		// Seal the narrow band: the next row's deletion read at its right edge
		// lands one past this row's window, which the wide-band layout would
		// leave stale. (When the window is flush with the wide band this slot
		// is the row's pad and the write is a no-op.)
		rw[stride+cnt] = over
		if rowMin >= overI {
			return false
		}
		if di > btL {
			lo++
			bOff++
			rwBase += stride
			tdBase += 4*bt + 1
		} else {
			rwBase += stride - 1
			tdBase += 4 * bt
		}
	}
	return true
}

// bandedViewRow is the m == 1 degenerate of bandedViewDP: the outer keyroot
// is a leaf, so the grid is one tree row whose deletion source is the
// constant boundary row fd(0, dj) = dj and whose sub-case reads are subtree
// entries of the row itself. Nothing needs the forest scratch — the
// insertion chain rides in a register — and the td writes, the frontier
// minimum, and the abort verdict are exactly the general kernel's. (When the
// leaf labels match, the general kernel takes its prefix-skip branch
// instead; the plain row computes the same values — cell (1,1) is 0 and the
// insertion chain reproduces the exact path-pair distances dj−1 — so the
// outputs coincide.)
func bandedViewRow(al, bl, blml []int32, i, j int32, bt int, over int16, td []int16) bool {
	lj := blml[j]
	n := int(j-lj) + 1
	hi := 1 + bt
	if hi > n {
		hi = n
	}
	overI := int(over)
	rowMin := overI
	if bt >= 1 {
		rowMin = 1 // fd(1, 0) = 1 sits in band
	}
	left := overI
	if bt >= 1 {
		left = 1 // seeded boundary column fd(1, 0)
	}
	aLabel := al[i]
	ljI := int(lj)
	tdRow := td[int(i)*4*bt+2*bt+ljI:] // entry (i, lj+k) at tdRow[k]
	for k := 0; k < hi; k++ {
		v := left
		if k < bt { // deletion source fd(0, k+1) is in band iff k+1 ≤ bt
			if d := k + 1; d < v {
				v = d
			}
		}
		v++
		if y := int(blml[ljI+k]) - ljI; y == 0 {
			tv := k // diagonal fd(0, k) = k, always in band (k ≤ bt)
			if bl[ljI+k] != aLabel {
				tv++
			}
			if tv < v {
				v = tv
			}
			if v > overI {
				v = overI
			}
			tdRow[k] = int16(v)
		} else {
			if y <= bt {
				if sv := y + int(tdRow[k]); sv < v {
					v = sv
				}
			}
			if v > overI {
				v = overI
			}
		}
		if v < rowMin {
			rowMin = v
		}
		left = v
	}
	return rowMin < overI
}

// bandedViewCol is the n == 1 degenerate of bandedViewDP: the inner keyroot
// is a leaf, so every in-band cell sits in column 1 with the leaf as its
// b-node (trivially on the inner path). The insertion source is the boundary
// column fd(di, 0) = di, the deletion chain rides in a register, and a
// forest row's sub-case pairs the boundary constant fd(x, 0) = x with the
// subtree entry td(ai, j) — again no forest scratch. Rows past 1+bt fall
// outside the band; the general kernel aborts there with hi < lo, and this
// path returns the same verdict after storing the same entries.
func bandedViewCol(al, alml, bl []int32, i, j int32, bt int, over int16, td []int16) bool {
	li := alml[i]
	m := int(i-li) + 1
	rows := m
	if bt+1 < rows {
		rows = bt + 1
	}
	overI := int(over)
	up := overI
	if bt >= 1 {
		up = 1 // boundary row fd(0, 1)
	}
	bLabel := bl[j]
	jI := int(j)
	for di := 1; di <= rows; di++ {
		ai := li + int32(di) - 1
		v := up
		if di <= bt && di < v { // insertion source fd(di, 0)
			v = di
		}
		v++
		if x := int(alml[ai] - li); x == 0 {
			tv := di - 1 // diagonal fd(di−1, 0), in band (di−1 ≤ bt)
			if al[ai] != bLabel {
				tv++
			}
			if tv < v {
				v = tv
			}
			if v > overI {
				v = overI
			}
			td[int(ai)*4*bt+2*bt+jI] = int16(v)
		} else {
			if x <= bt {
				if sv := x + int(td[int(ai)*4*bt+2*bt+jI]); sv < v {
					v = sv
				}
			}
			if v > overI {
				v = overI
			}
		}
		// Rows at depth ≤ bt keep fd(di, 0) = di < over in band, so only the
		// final in-band row can trip the frontier abort.
		if di > bt && v >= overI {
			return false
		}
		up = v
	}
	return rows == m
}
