// Threshold-aware (τ-banded) Zhang–Shasha. The similarity joins never need
// an unbounded distance: every candidate pair comes with the join threshold
// τ, and the verifier only has to decide TED ≤ τ — exactly when it is, the
// exact distance is wanted. This file implements that tri-state verifier as
// a banded variant of the DP in zs.go, in the spirit of Touzet's k-strip
// algorithms for similar trees:
//
//   - every forest DP touches only cells within τ of its diagonal (any cell
//     farther out has forest distance > τ by the size argument);
//   - keyroot pairs whose leftmost leaves sit more than τ postorder
//     positions apart are skipped outright (no ≤ τ mapping can use any
//     subtree-pair entry they would produce);
//   - a forest DP is abandoned as soon as an entire row of its band exceeds
//     τ (the frontier can never recover — see DESIGN.md, "Threshold-aware
//     verification" for the correctness argument);
//   - DP scratch memory (the subtree-distance matrix and forest-distance
//     rows) comes from a sync.Pool, so steady-state verification allocates
//     nothing per pair.
//
// The unbounded DP in zs.go remains the oracle; the property tests sweep τ
// and require verdict-and-distance agreement with it.
package ted

import (
	"sync"
	"sync/atomic"
)

// Counters instruments the τ-banded verifier. All updates are atomic, so one
// Counters value may be shared by every concurrent verify worker of a join;
// a nil *Counters disables counting. The engine folds these into
// sim.Stats after a run.
type Counters struct {
	// DPAvoided counts candidate pairs settled by the size/label lower
	// bounds alone — full DPs avoided entirely.
	DPAvoided atomic.Int64
	// KeyrootsSkipped counts keyroot-pair forest DPs pruned by the
	// positional (leftmost-leaf distance) skip.
	KeyrootsSkipped atomic.Int64
	// BandAborts counts forest DPs cut short because an entire row of the
	// band exceeded τ.
	BandAborts atomic.Int64
}

func (tc *Counters) addDPAvoided() {
	if tc != nil {
		tc.DPAvoided.Add(1)
	}
}

func (tc *Counters) addKeyrootsSkipped(n int64) {
	if tc != nil && n > 0 {
		tc.KeyrootsSkipped.Add(n)
	}
}

func (tc *Counters) addBandAborts(n int64) {
	if tc != nil && n > 0 {
		tc.BandAborts.Add(n)
	}
}

// scratch is the reusable DP memory of one bounded verification: the
// subtree-distance matrix and the forest-distance matrix.
type scratch struct {
	td []int32
	fd []int32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func (s *scratch) ensure(n1, n2 int) {
	if need := n1 * n2; cap(s.td) < need {
		s.td = make([]int32, need)
	} else {
		s.td = s.td[:need]
	}
	if need := (n1 + 1) * (n2 + 1); cap(s.fd) < need {
		s.fd = make([]int32, need)
	} else {
		s.fd = s.fd[:need]
	}
}

// DistanceBoundedPrep reports whether TED(a, b) ≤ tau from precomputed
// preparations: the size and label lower bounds run first (no DP at all when
// either proves the pair distant), then the τ-banded Zhang–Shasha over the
// cheaper decomposition. The tri-state contract: on true the returned
// distance is exact; on false the distance is only known to exceed tau and
// the returned value is tau+1. tc, when non-nil, accumulates the verifier's
// pruning counters. Both trees must share one LabelTable.
func DistanceBoundedPrep(a, b *Prep, tau int, tc *Counters) (int, bool) {
	if a.t.Labels != b.t.Labels {
		panic("ted: trees must share a label table")
	}
	if tau < 0 {
		return tau + 1, false
	}
	if d := a.size - b.size; d > tau || -d > tau {
		tc.addDPAvoided()
		return tau + 1, false
	}
	if labelLowerBoundSorted(a.labels, b.labels) > tau {
		tc.addDPAvoided()
		return tau + 1, false
	}
	p1, p2 := pick(a, b)
	s := scratchPool.Get().(*scratch)
	d, ok := bandedZS(p1, p2, tau, s, tc)
	scratchPool.Put(s)
	return d, ok
}

// DistanceBoundedPrepFull is the pre-banding verifier over preparations: the
// size lower bound followed by the full (unbanded) Zhang–Shasha DP of the
// cheaper decomposition, compared to tau afterwards. It is the oracle the
// banded verifier is benchmarked and property-tested against, and the
// verifier behind the public WithUnbandedVerification ablation option.
func DistanceBoundedPrepFull(a, b *Prep, tau int) (int, bool) {
	if a.t.Labels != b.t.Labels {
		panic("ted: trees must share a label table")
	}
	if tau < 0 {
		return tau + 1, false
	}
	if d := a.size - b.size; d > tau || -d > tau {
		return tau + 1, false
	}
	p1, p2 := pick(a, b)
	d := zs(p1, p2)
	return d, d <= tau
}

// bandedZS decides TED ≤ tau over prepared trees. It returns the exact
// distance and true when TED ≤ tau, and (tau+1, false) otherwise.
//
// Correctness sketch (full argument in DESIGN.md): forest-distance values
// never drop below the forest size difference, and values along an optimal
// DP chain never exceed the chain's final value, so every chain realising a
// distance ≤ τ stays within the |di−dj| ≤ τ band and reads only
// subtree-distance entries whose own value is ≤ τ — which the band computes
// exactly, inner keyroots before outer. Everything the band never computes
// is held at the sentinel τ+1; a chain through a sentinel is > τ, so it can
// neither fake a result nor disturb an exact one.
func bandedZS(a, b *prep, tau int, s *scratch, tc *Counters) (int, bool) {
	n1, n2 := len(a.labels), len(b.labels)
	// All distances are ≤ n1+n2 (delete one tree, insert the other), so a
	// larger τ adds nothing — and keeping the sentinel at τ+1 small guards
	// the int32 arithmetic.
	bandTau := tau
	if bandTau > n1+n2 {
		bandTau = n1 + n2
	}
	s.ensure(n1, n2)
	td, fd := s.td, s.fd
	over := int32(bandTau) + 1
	for i := range td {
		td[i] = over
	}
	t32 := int32(bandTau)
	var skipped, aborts int64
	for _, i := range a.keyroots {
		li := a.lml[i]
		for _, j := range b.keyroots {
			// Positional skip: every subtree pair this DP would solve has
			// its leftmost leaves at postorder positions li and b.lml[j];
			// a ≤ τ mapping aligns those boundaries within τ positions, so
			// a farther pair can contribute nothing to a ≤ τ result.
			if d := li - b.lml[j]; d > t32 || -d > t32 {
				skipped++
				continue
			}
			if !bandedForestDP(a, b, i, j, bandTau, td, fd) {
				aborts++
			}
		}
	}
	tc.addKeyrootsSkipped(skipped)
	tc.addBandAborts(aborts)
	if d := td[(n1-1)*n2+(n2-1)]; d < over {
		return int(d), true
	}
	return tau + 1, false
}

// bandedForestDP is forestDP restricted to the band |di−dj| ≤ tau, writing
// exact values ≤ tau and capping everything else at the sentinel tau+1. It
// reports false when the row frontier exceeded tau and the DP was abandoned
// (all unwritten subtree entries are then provably > tau and keep their
// sentinel).
func bandedForestDP(a, b *prep, i, j int32, tau int, td, fd []int32) bool {
	n2 := len(b.labels)
	w := n2 + 1
	over := int32(tau) + 1
	li, lj := a.lml[i], b.lml[j]
	m, n := int(i-li)+1, int(j-lj)+1
	// Boundary row and column, only inside the band: fd(di,0) = di, fd(0,dj) = dj.
	fd[0] = 0
	bm := tau
	if bm > m {
		bm = m
	}
	for di := 1; di <= bm; di++ {
		fd[di*w] = int32(di)
	}
	bn := tau
	if bn > n {
		bn = n
	}
	for dj := 1; dj <= bn; dj++ {
		fd[dj] = int32(dj)
	}
	for di := 1; di <= m; di++ {
		ai := li + int32(di) - 1
		aLml := a.lml[ai]
		aTree := aLml == li
		aLabel := a.labels[ai]
		lo := di - tau
		rowMin := over
		if lo < 1 {
			lo = 1
			// Cell (di, 0) is in the band; it belongs to the frontier.
			rowMin = int32(di)
		}
		hi := di + tau
		if hi > n {
			hi = n
		}
		for dj := lo; dj <= hi; dj++ {
			bj := lj + int32(dj) - 1
			best := over
			if dj < di+tau { // deletion: (di−1, dj) lies in the band
				if v := fd[(di-1)*w+dj] + 1; v < best {
					best = v
				}
			}
			if dj > di-tau { // insertion: (di, dj−1) lies in the band
				if v := fd[di*w+dj-1] + 1; v < best {
					best = v
				}
			}
			treeCase := aTree && b.lml[bj] == lj
			if treeCase {
				// Both prefixes end in a full subtree whose leftmost leaf
				// starts the forest: tree-tree case on the diagonal (always
				// in the band).
				cost := int32(1)
				if aLabel == b.labels[bj] {
					cost = 0
				}
				if v := fd[(di-1)*w+dj-1] + cost; v < best {
					best = v
				}
			} else {
				x := int(aLml - li)
				y := int(b.lml[bj] - lj)
				if d := x - y; d <= tau && -d <= tau {
					if v := fd[x*w+y] + td[int(ai)*n2+int(bj)]; v < best {
						best = v
					}
				}
			}
			if best > over {
				best = over
			}
			fd[di*w+dj] = best
			if treeCase && best < over {
				td[int(ai)*n2+int(bj)] = best
			}
			if best < rowMin {
				rowMin = best
			}
		}
		if rowMin >= over {
			// The whole banded frontier exceeds τ: out-of-band cells are
			// > τ by the size argument, so every later row — and every
			// subtree entry it would write — is > τ too.
			return false
		}
	}
	return true
}
