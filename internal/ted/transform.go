package ted

import (
	"fmt"

	"treejoin/internal/tree"
)

// Transform materialises an optimal edit script as a sequence of trees: it
// returns TED(t1, t2)+1 trees starting at t1 and ending at t2, where each
// consecutive pair differs by exactly one node edit operation (one delete,
// rename, or insert). It is the "playback" of EditScript — useful for
// animating structural diffs, and doubling as a whole-chain correctness
// oracle: the sequence exists if and only if the mapping really is
// order- and ancestor-preserving with cost equal to the distance.
//
// Construction: from an optimal mapping, the unmapped t1 nodes are removed
// one at a time in postorder (children before parents, so the induced tree
// stays rooted), then mapped nodes are renamed one at a time, then the
// unmapped t2 nodes are added in reverse postorder (parents before
// children). Every intermediate is the subtree of t1 (resp. t2) induced by
// the surviving (resp. already-present) node set, so the intermediates are
// valid trees by construction; the rename phase pivots on the fact that the
// two induced subtrees are order-isomorphic, which Transform verifies.
func Transform(t1, t2 *tree.Tree) ([]*tree.Tree, error) {
	dist, pairs := Mapping(t1, t2)
	out := make([]*tree.Tree, 0, dist+1)
	out = append(out, t1)

	mapped1 := make([]bool, t1.Size())
	mapped2 := make([]bool, t2.Size())
	target := make(map[int32]int32, len(pairs)) // t1 node -> t2 label
	for _, p := range pairs {
		mapped1[p.N1] = true
		mapped2[p.N2] = true
		target[p.N1] = t2.Nodes[p.N2].Label
	}

	// Delete phase: drop unmapped t1 nodes bottom-up.
	kept := make([]bool, t1.Size())
	for i := range kept {
		kept[i] = true
	}
	for _, n := range tree.Postorder(t1) {
		if mapped1[n] {
			continue
		}
		kept[n] = false
		w, err := induced(t1, kept, nil)
		if err != nil {
			return nil, fmt.Errorf("ted: delete phase: %w", err)
		}
		out = append(out, w)
	}

	// Rename phase: relabel mapped nodes one at a time (postorder, for
	// determinism).
	overrides := make(map[int32]int32)
	for _, n := range tree.Postorder(t1) {
		if !mapped1[n] || target[n] == t1.Nodes[n].Label {
			continue
		}
		overrides[n] = target[n]
		w, err := induced(t1, kept, overrides)
		if err != nil {
			return nil, fmt.Errorf("ted: rename phase: %w", err)
		}
		out = append(out, w)
	}

	// Pivot check: the fully deleted and renamed t1 must coincide with t2
	// restricted to its mapped nodes.
	kept2 := make([]bool, t2.Size())
	for i := range kept2 {
		kept2[i] = mapped2[i]
	}
	pivot2, err := induced(t2, kept2, nil)
	if err != nil {
		return nil, fmt.Errorf("ted: pivot: %w", err)
	}
	if !tree.Equal(out[len(out)-1], pivot2) {
		return nil, fmt.Errorf("ted: mapping is not order-isomorphic on the mapped node sets")
	}

	// Insert phase: add unmapped t2 nodes top-down (reverse postorder).
	post2 := tree.Postorder(t2)
	for i := len(post2) - 1; i >= 0; i-- {
		n := post2[i]
		if mapped2[n] {
			continue
		}
		kept2[n] = true
		w, err := induced(t2, kept2, nil)
		if err != nil {
			return nil, fmt.Errorf("ted: insert phase: %w", err)
		}
		out = append(out, w)
	}

	if len(out) != dist+1 {
		return nil, fmt.Errorf("ted: script has %d steps for distance %d", len(out)-1, dist)
	}
	return out, nil
}

// induced builds the subtree of t induced by the kept nodes: each kept node
// attaches to its nearest kept proper ancestor, preserving document order;
// labels come from overrides when present. Exactly one kept node may lack a
// kept ancestor (the induced root).
func induced(t *tree.Tree, kept []bool, overrides map[int32]int32) (*tree.Tree, error) {
	label := func(n int32) int32 {
		if l, ok := overrides[n]; ok {
			return l
		}
		return t.Nodes[n].Label
	}
	b := tree.NewBuilder(t.Labels)
	var rootID int32 = tree.None
	// Iterative preorder; attach[n] is the builder id of the nearest kept
	// ancestor at the time n is visited.
	type frame struct {
		node   int32
		parent int32 // builder id of nearest kept ancestor, or None
	}
	var stack []frame
	push := func(n, parent int32) {
		// Children pushed right-to-left so the leftmost pops first.
		var cs []int32
		for c := t.Nodes[n].FirstChild; c != tree.None; c = t.Nodes[c].NextSibling {
			cs = append(cs, c)
		}
		for i := len(cs) - 1; i >= 0; i-- {
			stack = append(stack, frame{cs[i], parent})
		}
	}
	root := t.Root()
	if kept[root] {
		rootID = b.RootID(label(root))
		push(root, rootID)
	} else {
		push(root, tree.None)
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !kept[f.node] {
			push(f.node, f.parent)
			continue
		}
		if f.parent == tree.None {
			if rootID != tree.None {
				return nil, fmt.Errorf("induced subgraph is a forest (second root at node %d)", f.node)
			}
			rootID = b.RootID(label(f.node))
			push(f.node, rootID)
			continue
		}
		id := b.ChildID(f.parent, label(f.node))
		push(f.node, id)
	}
	if rootID == tree.None {
		return nil, fmt.Errorf("induced subgraph is empty")
	}
	return b.Build()
}
