package ted

import "treejoin/internal/tree"

// Edit mapping extraction: besides the distance value, recover an optimal
// edit mapping (Tai mapping) between two trees by backtracking through the
// Zhang–Shasha dynamic program, and derive the corresponding edit script.
// This turns the library into a structural diff tool for trees — the
// operational counterpart of the join's distance predicate.

// MapPair records that node N1 of the first tree corresponds to node N2 of
// the second tree in an optimal mapping (node ids, not postorder indices).
type MapPair struct {
	N1, N2 int32
}

// OpKind classifies one edit script operation.
type OpKind int

const (
	// OpDelete removes Node1 from the first tree.
	OpDelete OpKind = iota
	// OpInsert adds Node2 of the second tree.
	OpInsert
	// OpRename relabels Node1 (first tree) to Node2's label (second tree).
	OpRename
)

func (k OpKind) String() string {
	switch k {
	case OpDelete:
		return "delete"
	case OpInsert:
		return "insert"
	case OpRename:
		return "rename"
	default:
		return "op?"
	}
}

// EditOp is one operation of an optimal edit script. Node1 refers to a node
// of the first tree (OpDelete, OpRename), Node2 to a node of the second tree
// (OpInsert, OpRename); the unused field is tree.None.
type EditOp struct {
	Kind  OpKind
	Node1 int32
	Node2 int32
}

// Mapping returns TED(t1, t2) together with an optimal edit mapping: a
// one-to-one, order- and ancestor-preserving correspondence between a subset
// of t1's nodes and a subset of t2's nodes whose cost (unmapped t1 nodes +
// unmapped t2 nodes + mapped pairs with differing labels) is the distance.
// Pairs are reported in ascending postorder of the first tree.
func Mapping(t1, t2 *tree.Tree) (int, []MapPair) {
	a, b := prepare(t1), prepare(t2)
	n1, n2 := len(a.labels), len(b.labels)
	td := computeTreeDists(a, b)
	fd := make([]int32, (n1+1)*(n2+1))
	w := n2 + 1

	var pairs []MapPair
	type sub struct{ i, j int32 }
	stack := []sub{{int32(n1 - 1), int32(n2 - 1)}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		i, j := s.i, s.j
		li, lj := a.lml[i], b.lml[j]
		forestDP(a, b, i, j, td, fd, false)
		di, dj := int(i-li)+1, int(j-lj)+1
		for di > 0 || dj > 0 {
			cur := fd[di*w+dj]
			switch {
			case di > 0 && fd[(di-1)*w+dj]+1 == cur:
				di-- // delete a's node
			case dj > 0 && fd[di*w+dj-1]+1 == cur:
				dj-- // insert b's node
			default:
				ai := li + int32(di) - 1
				bj := lj + int32(dj) - 1
				if a.lml[ai] == li && b.lml[bj] == lj {
					// Tree-tree diagonal: ai corresponds to bj.
					pairs = append(pairs, MapPair{N1: a.nodes[ai], N2: b.nodes[bj]})
					di--
					dj--
				} else {
					// Subtree-pair jump: solve (ai, bj) separately and skip
					// both subtrees in this forest.
					stack = append(stack, sub{ai, bj})
					di = int(a.lml[ai] - li)
					dj = int(b.lml[bj] - lj)
				}
			}
		}
	}
	// Backtracking emits pairs right-to-left per forest; sort by t1
	// postorder for a stable, human-friendly order.
	sortPairsByPostorder(pairs, a)
	return int(td[(n1-1)*n2+(n2-1)]), pairs
}

func sortPairsByPostorder(pairs []MapPair, a *prep) {
	rank := make(map[int32]int32, len(a.nodes))
	for i, n := range a.nodes {
		rank[n] = int32(i)
	}
	// Insertion sort: mappings are small relative to DP cost, and mostly
	// ordered already.
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && rank[pairs[j].N1] < rank[pairs[j-1].N1]; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
}

// EditScript returns TED(t1, t2) and an optimal edit script derived from an
// optimal mapping: a delete per unmapped t1 node, an insert per unmapped t2
// node, and a rename per mapped pair with differing labels. The script
// length equals the distance. Operations are ordered deletes (descending t1
// postorder), then renames, then inserts (ascending t2 postorder) — an order
// in which they can be applied.
func EditScript(t1, t2 *tree.Tree) (int, []EditOp) {
	dist, pairs := Mapping(t1, t2)
	mapped1 := make([]bool, t1.Size())
	mapped2 := make([]bool, t2.Size())
	var renames []EditOp
	for _, p := range pairs {
		mapped1[p.N1] = true
		mapped2[p.N2] = true
		if t1.Nodes[p.N1].Label != t2.Nodes[p.N2].Label {
			renames = append(renames, EditOp{Kind: OpRename, Node1: p.N1, Node2: p.N2})
		}
	}
	var script []EditOp
	// Deletes bottom-up (descending postorder of t1) so each delete applies
	// to a present node.
	for _, n := range reversePostorder(t1) {
		if !mapped1[n] {
			script = append(script, EditOp{Kind: OpDelete, Node1: n, Node2: tree.None})
		}
	}
	script = append(script, renames...)
	for _, n := range tree.Postorder(t2) {
		if !mapped2[n] {
			script = append(script, EditOp{Kind: OpInsert, Node1: tree.None, Node2: n})
		}
	}
	return dist, script
}

func reversePostorder(t *tree.Tree) []int32 {
	post := tree.Postorder(t)
	out := make([]int32, len(post))
	for i, n := range post {
		out[len(post)-1-i] = n
	}
	return out
}
