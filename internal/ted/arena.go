// Struct-of-arrays tree arenas. The pointer-based verifier of banded.go
// walks heap-scattered prep structs; at paper scale the DP is memory-bound,
// so this file flattens every tree of a collection into postorder-indexed
// parallel slices carved out of one contiguous int32 block:
//
//   - labels and leftmost-leaf indices of the left-path decomposition,
//   - the same two arrays of the mirrored (right-path) decomposition, built
//     exactly as prepareMirrored builds them but materialised eagerly —
//     the strategy-driven kernel flips between the two array sets per pair,
//   - keyroots of both decompositions, each also sorted by leftmost leaf so
//     the banded kernel binary-searches its τ-window instead of scanning,
//   - depth, parent, and subtree size (postorder-indexed), and the sorted
//     label multiset behind the label lower bound,
//   - the left/right strategy costs the per-pair decomposition choice reads.
//
// BuildViews lays a whole collection out back-to-back, so a join's verify
// stage streams through one arena instead of chasing per-tree pointers; the
// engine caches the views per tree under "ted/arena", which keeps them warm
// across joins and lets the dynamic corpus evict exactly the removed trees.
package ted

import (
	"sort"

	"treejoin/internal/tree"
)

// TreeView is the arena image of one tree: every per-tree array the
// strategy-driven banded verifier reads, postorder-indexed, all backed by
// one contiguous block shared with the other trees of its build batch. A
// TreeView is immutable after construction and safe to share across
// goroutines.
type TreeView struct {
	// T is the tree this view flattens, kept for the rare fallback paths
	// (oversized bands) and for tests; the kernel itself never touches it.
	T *tree.Tree

	// Left-path (standard postorder) decomposition arrays, exactly the
	// arrays prepare(T) computes.
	Labels []int32 // label of the node at postorder index i
	Lml    []int32 // postorder index of the leftmost leaf of the subtree at i

	// Right-path decomposition arrays over the mirrored postorder, exactly
	// the arrays prepareMirrored(T) computes (≡ prepare(Mirror(T))).
	RLabels []int32
	Rml     []int32

	// Keyroots of each decomposition, ascending by postorder index, plus the
	// same sets reordered by ascending leftmost-leaf index: the banded kernel
	// binary-searches the lml-window |lml − li| ≤ τ in the latter.
	Keyroots  []int32
	KrByLml   []int32
	RKeyroots []int32
	RKrByLml  []int32

	// Structural arrays indexed by left postorder position: node depth
	// (root = 0), the postorder index of the parent (−1 for the root), and
	// the subtree size (i − Lml[i] + 1, stored so consumers — serialisation,
	// future filters — need no recomputation). RParent is the parent array
	// over mirrored postorder indices (the parent relation is mirror-
	// invariant; only the ranks change): the kernel walks it to enumerate a
	// keyroot's decomposition path under the right-path arrays.
	Depth       []int32
	Parent      []int32
	RParent     []int32
	SubtreeSize []int32

	// SortedLabels is the label multiset sorted ascending, for the merge-based
	// label lower bound.
	SortedLabels []int32

	// CostL and CostR are the RTED-style strategy costs of the left- and
	// right-path decompositions (identical to Prep's); the per-pair
	// decomposition choice multiplies them.
	CostL, CostR int64
}

// Size returns the tree's node count.
func (v *TreeView) Size() int { return len(v.Labels) }

// BuildViews flattens a collection into arena views backed by one contiguous
// int32 block: per tree, 8·n array cells plus 4·leaves keyroot cells, laid
// out back-to-back in collection order. Construction allocates (it is a
// build-time, per-collection cost the engine caches); verification over the
// views does not.
func BuildViews(ts []*tree.Tree) []*TreeView {
	total := 0
	for _, t := range ts {
		total += 9*t.Size() + 4*leafCount(t)
	}
	block := make([]int32, total)
	views := make([]*TreeView, len(ts))
	off := 0
	for i, t := range ts {
		views[i], off = buildView(t, block, off)
	}
	return views
}

// leafCount returns the number of leaves of t — also the keyroot count of
// either decomposition (each leaf is the decomposition leaf of itself, and
// every keyroot owns a distinct one).
func leafCount(t *tree.Tree) int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].FirstChild == tree.None {
			n++
		}
	}
	return n
}

// buildView fills one tree's view from block[off:], returning the new offset.
func buildView(t *tree.Tree, block []int32, off int) (*TreeView, int) {
	n := t.Size()
	leaves := leafCount(t)
	take := func(k int) []int32 {
		s := block[off : off+k : off+k]
		off += k
		return s
	}
	v := &TreeView{T: t}
	v.Labels, v.Lml = take(n), take(n)
	v.RLabels, v.Rml = take(n), take(n)
	v.Keyroots, v.KrByLml = take(leaves), take(leaves)
	v.RKeyroots, v.RKrByLml = take(leaves), take(leaves)
	v.Depth, v.Parent, v.RParent, v.SubtreeSize = take(n), take(n), take(n), take(n)
	v.SortedLabels = take(n)
	v.CostL, v.CostR = strategyCost(t)

	// Left decomposition: standard postorder, leftmost leaves memoised
	// bottom-up (children precede parents in postorder).
	post := tree.Postorder(t)
	rank := make([]int32, n)
	for i, u := range post {
		rank[u] = int32(i)
	}
	leafNode := make([]int32, n)
	for _, u := range post {
		if fc := t.Nodes[u].FirstChild; fc == tree.None {
			leafNode[u] = u
		} else {
			leafNode[u] = leafNode[fc]
		}
	}
	for i, u := range post {
		v.Labels[i] = t.Nodes[u].Label
		v.Lml[i] = rank[leafNode[u]]
		if p := t.Nodes[u].Parent; p == tree.None {
			v.Parent[i] = -1
		} else {
			v.Parent[i] = rank[p]
		}
		v.SubtreeSize[i] = int32(i) - v.Lml[i] + 1
	}
	// Reverse postorder visits parents before children, so depths fill in
	// one pass without recursion.
	depthNode := make([]int32, n)
	for i := n - 1; i >= 0; i-- {
		u := post[i]
		if p := t.Nodes[u].Parent; p != tree.None {
			depthNode[u] = depthNode[p] + 1
		}
	}
	for i, u := range post {
		v.Depth[i] = depthNode[u]
	}
	fillKeyroots(v.Lml, v.Keyroots, v.KrByLml)

	// Right decomposition: mirrored postorder, the same construction as
	// prepareMirrored — children walked right-to-left through inverted
	// sibling links, decomposition leaf = rightmost leaf.
	last := make([]int32, n)
	prev := make([]int32, n)
	for id := range t.Nodes {
		var p int32 = tree.None
		for c := t.Nodes[id].FirstChild; c != tree.None; c = t.Nodes[c].NextSibling {
			prev[c] = p
			p = c
		}
		last[id] = p
	}
	rpost := make([]int32, 0, n)
	type frame struct{ node, child int32 }
	stack := make([]frame, 0, 16)
	root := t.Root()
	stack = append(stack, frame{root, last[root]})
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.child == tree.None {
			rpost = append(rpost, top.node)
			stack = stack[:len(stack)-1]
			continue
		}
		c := top.child
		top.child = prev[c]
		stack = append(stack, frame{c, last[c]})
	}
	rrank, rleafNode := rank, leafNode // reuse the left-pass scratch
	for i, u := range rpost {
		rrank[u] = int32(i)
	}
	for _, u := range rpost {
		if lc := last[u]; lc == tree.None {
			rleafNode[u] = u
		} else {
			rleafNode[u] = rleafNode[lc]
		}
	}
	for i, u := range rpost {
		v.RLabels[i] = t.Nodes[u].Label
		v.Rml[i] = rrank[rleafNode[u]]
		if p := t.Nodes[u].Parent; p == tree.None {
			v.RParent[i] = -1
		} else {
			v.RParent[i] = rrank[p]
		}
	}
	fillKeyroots(v.Rml, v.RKeyroots, v.RKrByLml)

	copy(v.SortedLabels, v.Labels)
	sort.Slice(v.SortedLabels, func(a, b int) bool { return v.SortedLabels[a] < v.SortedLabels[b] })
	return v, off
}

// fillKeyroots writes the keyroots of a decomposition given its lml array —
// the nodes no later postorder node shares a decomposition leaf with — in
// ascending postorder into kr, and the same set sorted by ascending lml into
// krByLml. len(kr) must equal the tree's leaf count.
func fillKeyroots(lml, kr, krByLml []int32) {
	n := len(lml)
	seen := make([]bool, n)
	k := len(kr)
	for i := n - 1; i >= 0; i-- {
		if !seen[lml[i]] {
			seen[lml[i]] = true
			k--
			kr[k] = int32(i)
		}
	}
	if k != 0 {
		panic("ted: keyroot count does not match leaf count")
	}
	copy(krByLml, kr)
	sort.Slice(krByLml, func(a, b int) bool { return lml[krByLml[a]] < lml[krByLml[b]] })
}
