// Arena view (de)serialisation. A TreeView is a pure function of its tree —
// every array is recomputed deterministically by BuildViews — so a persistent
// corpus can store the flattened cells once and reload them instead of
// re-running the whole view construction (postorder passes, keyroot fills,
// label sorts) on every open. This file defines the canonical cell layout
// (the exact take() order of buildView) and the validated reassembly path a
// segment reader uses.
//
// Validation philosophy: ViewFromCells re-checks, in O(n), every structural
// invariant the banded kernel's index arithmetic leans on — lml values
// bounded by their own index, keyroot sets ascending and rooted, parent
// chains strictly increasing in postorder (so chain walks terminate), depths
// parent-consistent, subtree sizes definitional. It does not prove the cells
// equal BuildViews' output (that would cost the rebuild the serialisation
// exists to skip); callers that need end-to-end integrity pair these checks
// with a content hash over the cells, as internal/segstore does.
package ted

import (
	"errors"
	"fmt"

	"treejoin/internal/tree"
)

// ErrBadView reports arena cells that fail structural validation; errors.Is
// against it matches every rejection produced by ViewFromCells.
var ErrBadView = errors.New("ted: invalid arena cells")

func badViewf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadView, fmt.Sprintf(format, args...))
}

// Leaves returns the leaf count of t — the keyroot count of either
// decomposition, and the L of the 9n+4L arena cell layout.
func Leaves(t *tree.Tree) int { return leafCount(t) }

// ViewCellCount returns the arena cell count of a tree with n nodes and
// leaves leaves: nine n-sized arrays plus four keyroot arrays.
func ViewCellCount(n, leaves int) int { return 9*n + 4*leaves }

// AppendViewCells appends v's arena cells to dst in the canonical layout —
// the exact order buildView carves them out of the shared block: Labels, Lml,
// RLabels, Rml, Keyroots, KrByLml, RKeyroots, RKrByLml, Depth, Parent,
// RParent, SubtreeSize, SortedLabels. ViewFromCells inverts it.
func AppendViewCells(dst []int32, v *TreeView) []int32 {
	for _, s := range [][]int32{
		v.Labels, v.Lml, v.RLabels, v.Rml,
		v.Keyroots, v.KrByLml, v.RKeyroots, v.RKrByLml,
		v.Depth, v.Parent, v.RParent, v.SubtreeSize, v.SortedLabels,
	} {
		dst = append(dst, s...)
	}
	return dst
}

// ViewFromCells reassembles the arena view of t from cells laid out by
// AppendViewCells, taking ownership of the slice (it becomes the view's
// backing block). The cells are validated against the structural invariants
// the verification kernel relies on; corrupt input returns an error wrapping
// ErrBadView, never a panic in later kernel use.
func ViewFromCells(t *tree.Tree, cells []int32, costL, costR int64) (*TreeView, error) {
	n := t.Size()
	leaves := leafCount(t)
	if len(cells) != ViewCellCount(n, leaves) {
		return nil, badViewf("cell count %d, want %d for %d nodes / %d leaves",
			len(cells), ViewCellCount(n, leaves), n, leaves)
	}
	if costL < 0 || costR < 0 {
		return nil, badViewf("negative strategy cost %d/%d", costL, costR)
	}
	off := 0
	take := func(k int) []int32 {
		s := cells[off : off+k : off+k]
		off += k
		return s
	}
	v := &TreeView{T: t, CostL: costL, CostR: costR}
	v.Labels, v.Lml = take(n), take(n)
	v.RLabels, v.Rml = take(n), take(n)
	v.Keyroots, v.KrByLml = take(leaves), take(leaves)
	v.RKeyroots, v.RKrByLml = take(leaves), take(leaves)
	v.Depth, v.Parent, v.RParent, v.SubtreeSize = take(n), take(n), take(n), take(n)
	v.SortedLabels = take(n)

	limit := int32(t.Labels.Len())
	if err := checkDecomposition("left", v.Labels, v.Lml, v.Keyroots, v.KrByLml, v.Parent, limit); err != nil {
		return nil, err
	}
	if err := checkDecomposition("right", v.RLabels, v.Rml, v.RKeyroots, v.RKrByLml, v.RParent, limit); err != nil {
		return nil, err
	}
	// Depth is parent-consistent over the left postorder: the root (the last
	// postorder node, the one with parent −1) sits at depth 0, every other
	// node one below its parent. Parents follow children in postorder, so one
	// back-to-front pass sees every parent's depth before its children's.
	for i := n - 1; i >= 0; i-- {
		if p := v.Parent[i]; p == -1 {
			if v.Depth[i] != 0 {
				return nil, badViewf("root depth %d", v.Depth[i])
			}
		} else if v.Depth[i] != v.Depth[p]+1 {
			return nil, badViewf("depth[%d] = %d, parent depth %d", i, v.Depth[i], v.Depth[p])
		}
		if v.SubtreeSize[i] != int32(i)-v.Lml[i]+1 {
			return nil, badViewf("subtree size[%d] = %d, want %d", i, v.SubtreeSize[i], int32(i)-v.Lml[i]+1)
		}
	}
	for i := 1; i < n; i++ {
		if v.SortedLabels[i-1] > v.SortedLabels[i] {
			return nil, badViewf("sorted labels out of order at %d", i)
		}
	}
	if n > 0 && (v.SortedLabels[0] < 0 || v.SortedLabels[n-1] >= limit) {
		return nil, badViewf("sorted label out of range")
	}
	return v, nil
}

// checkDecomposition validates one decomposition's arrays: labels in range,
// lml values within [0, i] (a leftmost leaf never follows its subtree root in
// postorder), keyroots strictly ascending with the root (index n−1) last,
// krByLml the same length with strictly ascending lml values (keyroots own
// distinct decomposition leaves), and parents strictly increasing (−1 only at
// the root), which bounds every parent-chain walk the kernel performs.
func checkDecomposition(side string, labels, lml, kr, krByLml, parent []int32, limit int32) error {
	n := int32(len(labels))
	for i, l := range labels {
		if l < 0 || l >= limit {
			return badViewf("%s label[%d] = %d out of range [0,%d)", side, i, l, limit)
		}
		if lml[i] < 0 || lml[i] > int32(i) {
			return badViewf("%s lml[%d] = %d out of range [0,%d]", side, i, lml[i], i)
		}
		if p := parent[i]; int32(i) == n-1 {
			if p != -1 {
				return badViewf("%s root parent %d", side, p)
			}
		} else if p <= int32(i) || p >= n {
			return badViewf("%s parent[%d] = %d out of range (%d,%d)", side, i, p, i, n)
		}
	}
	if len(kr) == 0 || kr[len(kr)-1] != n-1 {
		return badViewf("%s keyroots do not end at the root", side)
	}
	for j, k := range kr {
		if k < 0 || k >= n {
			return badViewf("%s keyroot[%d] = %d out of range", side, j, k)
		}
		if j > 0 && kr[j-1] >= k {
			return badViewf("%s keyroots not ascending at %d", side, j)
		}
	}
	for j, k := range krByLml {
		if k < 0 || k >= n {
			return badViewf("%s krByLml[%d] = %d out of range", side, j, k)
		}
		if j > 0 && lml[krByLml[j-1]] >= lml[k] {
			return badViewf("%s krByLml not ascending by lml at %d", side, j)
		}
	}
	return nil
}
