package ted

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"treejoin/internal/tree"
)

// randTree builds a random tree of at most maxN nodes over a small alphabet.
func randTree(rng *rand.Rand, maxN, alphabet int, lt *tree.LabelTable) *tree.Tree {
	n := 1 + rng.Intn(maxN)
	b := tree.NewBuilder(lt)
	lab := func() string { return string(rune('a' + rng.Intn(alphabet))) }
	b.Root(lab())
	for i := 1; i < n; i++ {
		b.Child(int32(rng.Intn(i)), lab())
	}
	return b.MustBuild()
}

// mutate applies k random node insertions/relabelings to t, producing a tree
// at TED ≤ k — the banded verifier's sweet spot (near-duplicates).
func mutate(rng *rand.Rand, t *tree.Tree, k, alphabet int, lt *tree.LabelTable) *tree.Tree {
	b := tree.NewBuilder(lt)
	lab := func() string { return string(rune('a' + rng.Intn(alphabet))) }
	var cp func(src, dst int32)
	cp = func(src, dst int32) {
		for c := t.Nodes[src].FirstChild; c != tree.None; c = t.Nodes[c].NextSibling {
			id := b.ChildID(dst, t.Nodes[c].Label)
			cp(c, id)
		}
	}
	root := b.RootID(t.Nodes[t.Root()].Label)
	cp(t.Root(), root)
	out := b.MustBuild()
	for e := 0; e < k; e++ {
		nodes := out.Nodes
		v := int32(rng.Intn(len(nodes)))
		if rng.Intn(2) == 0 { // relabel
			out.Nodes[v].Label = lt.Intern(lab())
		} else { // append a leaf child
			nb := tree.NewBuilder(lt)
			var cp2 func(src, dst int32)
			cp2 = func(src, dst int32) {
				for c := out.Nodes[src].FirstChild; c != tree.None; c = out.Nodes[c].NextSibling {
					cp2(c, nb.ChildID(dst, out.Nodes[c].Label))
				}
				if src == v {
					nb.Child(dst, lab())
				}
			}
			r := nb.RootID(out.Nodes[out.Root()].Label)
			cp2(out.Root(), r)
			out = nb.MustBuild()
		}
	}
	return out
}

// TestPrepareMirroredMatchesMirror checks the direct mirrored preparation
// against the reference (prepare over the materialised mirror): identical
// postorder labels, leftmost-leaf indices, and keyroots.
func TestPrepareMirroredMatchesMirror(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		lt := tree.NewLabelTable()
		tr := randTree(rng, 24, 4, lt)
		got := prepareMirrored(tr)
		want := prepare(Mirror(tr))
		if len(got.labels) != len(want.labels) {
			t.Fatalf("size mismatch: %d vs %d", len(got.labels), len(want.labels))
		}
		for i := range want.labels {
			if got.labels[i] != want.labels[i] || got.lml[i] != want.lml[i] {
				t.Fatalf("iter %d: arrays differ at postorder %d: label %d/%d lml %d/%d",
					iter, i, got.labels[i], want.labels[i], got.lml[i], want.lml[i])
			}
		}
		if len(got.keyroots) != len(want.keyroots) {
			t.Fatalf("keyroot count mismatch: %v vs %v", got.keyroots, want.keyroots)
		}
		for i := range want.keyroots {
			if got.keyroots[i] != want.keyroots[i] {
				t.Fatalf("keyroots differ: %v vs %v", got.keyroots, want.keyroots)
			}
		}
	}
}

// tauSweep builds the τ values the property tests exercise for a pair with
// true distance d: 0, around d (exactly at, just below, just above), and at
// and beyond the trivial maximum n1+n2.
func tauSweep(d, max int) []int {
	taus := []int{0, 1, d - 1, d, d + 1, d + 3, max, max + 5}
	out := taus[:0]
	for _, tau := range taus {
		if tau >= 0 {
			out = append(out, tau)
		}
	}
	return out
}

// TestBandedAgreesWithOracleTauSweep is the τ-sweep property test: for
// random tree pairs, the banded verifier must agree with the unbounded
// Zhang–Shasha oracle on the ≤ τ verdict at every τ — including τ=0, τ
// exactly at the true distance, and τ ≥ the maximum possible distance — and
// report the exact distance whenever the verdict is positive. The unbanded
// prep path (DistanceBoundedPrepFull) is held to the same contract.
func TestBandedAgreesWithOracleTauSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(iter int, t1, t2 *tree.Tree) {
		t.Helper()
		want := ZhangShasha(t1, t2) // unbounded oracle
		a, b := NewPrep(t1), NewPrep(t2)
		for _, tau := range tauSweep(want, t1.Size()+t2.Size()) {
			var tc Counters
			got, ok := DistanceBoundedPrep(a, b, tau, &tc)
			if ok != (want <= tau) {
				t.Fatalf("iter %d τ=%d: banded verdict %v, oracle distance %d", iter, tau, ok, want)
			}
			if ok && got != want {
				t.Fatalf("iter %d τ=%d: banded distance %d, oracle %d", iter, tau, got, want)
			}
			if !ok && got <= tau {
				t.Fatalf("iter %d τ=%d: negative verdict with distance %d ≤ τ", iter, tau, got)
			}
			gotF, okF := DistanceBoundedPrepFull(a, b, tau)
			if okF != ok || (ok && gotF != want) {
				t.Fatalf("iter %d τ=%d: full path (%d,%v) disagrees with oracle (%d)", iter, tau, gotF, okF, want)
			}
		}
		// The convenience tree-level wrapper takes the same path.
		if d, ok := DistanceBounded(t1, t2, want); !ok || d != want {
			t.Fatalf("iter %d: DistanceBounded(τ=d) = (%d,%v), want (%d,true)", iter, d, ok, want)
		}
	}
	// Independent random pairs: mostly distant, exercising aborts and skips.
	for iter := 0; iter < 250; iter++ {
		lt := tree.NewLabelTable()
		check(iter, randTree(rng, 14, 3, lt), randTree(rng, 14, 3, lt))
	}
	// Near-duplicate pairs: small true distances on larger trees, exercising
	// the exact-within-band path.
	for iter := 0; iter < 120; iter++ {
		lt := tree.NewLabelTable()
		t1 := randTree(rng, 40, 4, lt)
		t2 := mutate(rng, t1, rng.Intn(4), 4, lt)
		check(1000+iter, t1, t2)
	}
}

// TestBandedCountersFire makes sure the instrumentation actually counts: a
// pair pruned by the lower bounds records DPAvoided, and a distant
// same-size pair records band aborts (and, with scattered leaves, keyroot
// skips).
func TestBandedCountersFire(t *testing.T) {
	lt := tree.NewLabelTable()
	small := tree.MustParseBracket("{a}", lt)
	big := tree.MustParseBracket("{a{b{c}}{d}{e}}", lt)
	var tc Counters
	if _, ok := DistanceBoundedPrep(NewPrep(small), NewPrep(big), 1, &tc); ok {
		t.Fatal("size-distant pair accepted")
	}
	if tc.DPAvoided.Load() != 1 {
		t.Fatalf("DPAvoided = %d, want 1", tc.DPAvoided.Load())
	}
	// Same shape, all labels differ → label LB may pass alphabet reuse, so
	// build trees whose every row is a mismatch: distance = size, τ = 1.
	rng := rand.New(rand.NewSource(3))
	t1 := randTree(rng, 30, 2, lt)
	t2 := mutate(rng, t1, 12, 2, lt)
	tc = Counters{}
	_, _ = DistanceBoundedPrep(NewPrep(t1), NewPrep(t2), 0, &tc)
	if tc.BandAborts.Load() == 0 && tc.KeyrootsSkipped.Load() == 0 && tc.DPAvoided.Load() == 0 {
		t.Fatal("no pruning counter fired on a distant pair at τ=0")
	}
}

// TestPooledScratchConcurrent hammers the pooled DP scratch from many
// goroutines sharing the same Preps and asserts bitwise-identical results to
// the serial run. Run under -race this is the detector test for the
// sync.Pool reuse and the lazy Prep materialisation.
func TestPooledScratchConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lt := tree.NewLabelTable()
	const nTrees = 14
	trees := make([]*tree.Tree, nTrees)
	preps := make([]*Prep, nTrees)
	for i := range trees {
		if i%2 == 1 {
			trees[i] = mutate(rng, trees[i-1], 1+rng.Intn(3), 3, lt)
		} else {
			trees[i] = randTree(rng, 22, 3, lt)
		}
		preps[i] = NewPrep(trees[i])
	}
	type key struct{ i, j, tau int }
	serial := make(map[key]string)
	taus := []int{0, 1, 2, 5}
	for i := 0; i < nTrees; i++ {
		for j := i + 1; j < nTrees; j++ {
			for _, tau := range taus {
				d, ok := DistanceBoundedPrep(NewPrep(trees[i]), NewPrep(trees[j]), tau, nil)
				serial[key{i, j, tau}] = fmt.Sprint(d, ok)
			}
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			var tc Counters
			for n := 0; n < 400; n++ {
				i, j := r.Intn(nTrees), r.Intn(nTrees)
				if i == j {
					continue
				}
				if i > j {
					i, j = j, i
				}
				tau := taus[r.Intn(len(taus))]
				d, ok := DistanceBoundedPrep(preps[i], preps[j], tau, &tc)
				if got := fmt.Sprint(d, ok); got != serial[key{i, j, tau}] {
					select {
					case errs <- fmt.Sprintf("pair (%d,%d) τ=%d: concurrent %s, serial %s", i, j, tau, got, serial[key{i, j, tau}]):
					default:
					}
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
