package ted

import (
	"math/rand"
	"sync"
	"testing"

	"treejoin/internal/tree"
)

// TestBuildViewsMatchesPrepare checks that arena views are bit-identical to
// the pointer-based preparations they replace: left arrays against prepare,
// mirrored arrays against prepareMirrored, keyroots of both directions, the
// lml-sorted keyroot orders, strategy costs, the sorted label multiset, and
// the structural arrays (depth, parent, subtree size) against naive
// recomputation from the tree.
func TestBuildViewsMatchesPrepare(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		lt := tree.NewLabelTable()
		tr := randTree(rng, 40, 4, lt)
		v := BuildViews([]*tree.Tree{tr})[0]
		n := tr.Size()
		if v.Size() != n {
			t.Fatalf("iter %d: view size %d, tree size %d", iter, v.Size(), n)
		}

		checkDir := func(dir string, p *prep, labels, lml, kr, krByLml []int32) {
			for i := range p.labels {
				if labels[i] != p.labels[i] || lml[i] != p.lml[i] {
					t.Fatalf("iter %d: %s arrays differ at %d: label %d/%d lml %d/%d",
						iter, dir, i, labels[i], p.labels[i], lml[i], p.lml[i])
				}
			}
			if len(kr) != len(p.keyroots) {
				t.Fatalf("iter %d: %s keyroot count %d, want %d", iter, dir, len(kr), len(p.keyroots))
			}
			for i := range kr {
				if kr[i] != p.keyroots[i] {
					t.Fatalf("iter %d: %s keyroots differ at %d: %d vs %d", iter, dir, i, kr[i], p.keyroots[i])
				}
			}
			// krByLml: the same set, sorted by ascending lml.
			seen := make(map[int32]bool, len(kr))
			for _, k := range kr {
				seen[k] = true
			}
			for i, k := range krByLml {
				if !seen[k] {
					t.Fatalf("iter %d: %s krByLml[%d]=%d is not a keyroot", iter, dir, i, k)
				}
				if i > 0 && lml[krByLml[i-1]] >= lml[k] {
					t.Fatalf("iter %d: %s krByLml not strictly ascending by lml at %d", iter, dir, i)
				}
			}
		}
		checkDir("left", prepare(tr), v.Labels, v.Lml, v.Keyroots, v.KrByLml)
		checkDir("right", prepareMirrored(tr), v.RLabels, v.Rml, v.RKeyroots, v.RKrByLml)

		wantL, wantR := strategyCost(tr)
		if v.CostL != wantL || v.CostR != wantR {
			t.Fatalf("iter %d: costs (%d,%d), want (%d,%d)", iter, v.CostL, v.CostR, wantL, wantR)
		}
		np := NewPrep(tr)
		for i := range np.labels {
			if v.SortedLabels[i] != np.labels[i] {
				t.Fatalf("iter %d: sorted labels differ at %d", iter, i)
			}
		}

		// Structural arrays against naive per-node recomputation.
		post := tree.Postorder(tr)
		rank := make(map[int32]int32, n)
		for i, u := range post {
			rank[u] = int32(i)
		}
		sizes := tree.SubtreeSizes(tr)
		for i, u := range post {
			depth := int32(0)
			for p := tr.Nodes[u].Parent; p != tree.None; p = tr.Nodes[p].Parent {
				depth++
			}
			if v.Depth[i] != depth {
				t.Fatalf("iter %d: depth[%d]=%d, want %d", iter, i, v.Depth[i], depth)
			}
			wantParent := int32(-1)
			if p := tr.Nodes[u].Parent; p != tree.None {
				wantParent = rank[p]
			}
			if v.Parent[i] != wantParent {
				t.Fatalf("iter %d: parent[%d]=%d, want %d", iter, i, v.Parent[i], wantParent)
			}
			if v.SubtreeSize[i] != sizes[u] {
				t.Fatalf("iter %d: subtreeSize[%d]=%d, want %d", iter, i, v.SubtreeSize[i], sizes[u])
			}
		}
	}
}

// TestArenaAgreesWithOracleTauSweep is the arena verifier's tri-equivalence
// property: for random pairs (including mutated near-duplicates, where bands
// matter) and every τ from 0 past the true distance, the arena DP, the
// pointer-based banded DP, and the unbounded Zhang–Shasha oracle agree on
// verdict AND distance — in strategy-driven mode and with each decomposition
// forced.
func TestArenaAgreesWithOracleTauSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := AcquireScratch()
	defer ReleaseScratch(s)
	for iter := 0; iter < 150; iter++ {
		lt := tree.NewLabelTable()
		t1 := randTree(rng, 28, 3, lt)
		var t2 *tree.Tree
		if iter%2 == 0 {
			t2 = mutate(rng, t1, 1+rng.Intn(4), 3, lt)
		} else {
			t2 = randTree(rng, 28, 3, lt)
		}
		exact := ZhangShasha(t1, t2)
		vs := BuildViews([]*tree.Tree{t1, t2})
		p1, p2 := NewPrep(t1), NewPrep(t2)
		for tau := 0; tau <= exact+2; tau++ {
			wd, wok := DistanceBoundedPrep(p1, p2, tau, nil)
			for _, dec := range []Decomp{DecompAuto, DecompLeft, DecompRight} {
				gd, gok := DistanceBoundedViewDecomp(vs[0], vs[1], tau, dec, s, nil)
				if gok != wok || gd != wd {
					t.Fatalf("iter %d τ=%d dec=%d: arena (%d,%v), banded (%d,%v), exact %d",
						iter, tau, dec, gd, gok, wd, wok, exact)
				}
				if gok != (exact <= tau) {
					t.Fatalf("iter %d τ=%d dec=%d: verdict %v, exact %d", iter, tau, dec, gok, exact)
				}
				if gok && gd != exact {
					t.Fatalf("iter %d τ=%d dec=%d: distance %d, exact %d", iter, tau, dec, gd, exact)
				}
			}
		}
	}
}

// TestArenaCountersMatchBanded: the arena verifier reports the same pruning
// counters as the pointer kernel — the keyroot window must skip exactly the
// pairs the positional skip did, and the band aborts must dominate the
// pointer kernel's (the global band aborts a superset of the DPs) — plus the
// strategy split, which must sum to the number of pairs that reached a DP.
func TestArenaCountersMatchBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := AcquireScratch()
	defer ReleaseScratch(s)
	lt := tree.NewLabelTable()
	var trees []*tree.Tree
	for i := 0; i < 12; i++ {
		trees = append(trees, randTree(rng, 30, 3, lt))
	}
	vs := BuildViews(trees)
	preps := make([]*Prep, len(trees))
	for i, tr := range trees {
		preps[i] = NewPrep(tr)
	}
	for _, tau := range []int{1, 3, 6} {
		var tcA, tcB Counters
		dps := int64(0)
		for i := range trees {
			for j := i + 1; j < len(trees); j++ {
				_, _ = DistanceBoundedView(vs[i], vs[j], tau, s, &tcA)
				_, _ = DistanceBoundedPrep(preps[i], preps[j], tau, &tcB)
				d := trees[i].Size() - trees[j].Size()
				if d < 0 {
					d = -d
				}
				if d <= tau && labelLowerBoundSorted(preps[i].labels, preps[j].labels) <= tau {
					dps++
				}
			}
		}
		if got, want := tcA.DPAvoided.Load(), tcB.DPAvoided.Load(); got != want {
			t.Fatalf("τ=%d: DPAvoided %d, banded %d", tau, got, want)
		}
		if got, want := tcA.KeyrootsSkipped.Load(), tcB.KeyrootsSkipped.Load(); got != want {
			t.Fatalf("τ=%d: KeyrootsSkipped %d, banded %d", tau, got, want)
		}
		// The arena kernel's globally-narrowed band holds every cell the
		// pointer kernel's local band holds or more at the sentinel, so its
		// row frontiers die at least as early: per keyroot pair it aborts
		// whenever the pointer kernel does, and possibly sooner. Equality
		// holds only for zero-offset pairs; assert the one-sided bound.
		if got, want := tcA.BandAborts.Load(), tcB.BandAborts.Load(); got < want {
			t.Fatalf("τ=%d: BandAborts %d, banded %d", tau, got, want)
		}
		if got := tcA.StrategyLeft.Load() + tcA.StrategyRight.Load(); got != dps {
			t.Fatalf("τ=%d: strategy counts sum to %d, want %d DPs", tau, got, dps)
		}
		if tcB.StrategyLeft.Load() != 0 || tcB.StrategyRight.Load() != 0 {
			t.Fatalf("τ=%d: pointer kernel recorded strategy counts", tau)
		}
	}
}

// TestArenaVerifyZeroAllocs is the per-pair allocation gate at its source:
// with views built and a scratch warmed, deciding a batch of candidates
// allocates nothing.
func TestArenaVerifyZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lt := tree.NewLabelTable()
	var trees []*tree.Tree
	for i := 0; i < 10; i++ {
		trees = append(trees, randTree(rng, 40, 4, lt))
	}
	vs := BuildViews(trees)
	s := AcquireScratch()
	defer ReleaseScratch(s)
	for i := range trees { // warm the scratch to steady-state capacity
		for j := i + 1; j < len(trees); j++ {
			DistanceBoundedView(vs[i], vs[j], 6, s, nil)
		}
	}
	var tc Counters
	allocs := testing.AllocsPerRun(20, func() {
		for i := range trees {
			for j := i + 1; j < len(trees); j++ {
				DistanceBoundedView(vs[i], vs[j], 6, s, &tc)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("arena verify allocated %.1f times per batch, want 0", allocs)
	}
}

// TestArenaScratchConcurrent hammers pooled scratches from many goroutines
// over a shared arena (the race detector patrols this in CI): every result
// must still match the sequential verdict.
func TestArenaScratchConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	lt := tree.NewLabelTable()
	var trees []*tree.Tree
	for i := 0; i < 16; i++ {
		trees = append(trees, randTree(rng, 24, 3, lt))
	}
	vs := BuildViews(trees)
	const tau = 4
	type cand struct{ i, j, want int }
	var cands []cand
	seq := AcquireScratch()
	for i := range trees {
		for j := i + 1; j < len(trees); j++ {
			d, _ := DistanceBoundedView(vs[i], vs[j], tau, seq, nil)
			cands = append(cands, cand{i, j, d})
		}
	}
	ReleaseScratch(seq)
	var wg sync.WaitGroup
	var tc Counters
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := AcquireScratch()
			defer ReleaseScratch(s)
			for _, c := range cands {
				if d, _ := DistanceBoundedView(vs[c.i], vs[c.j], tau, s, &tc); d != c.want {
					t.Errorf("pair (%d,%d): got %d, want %d", c.i, c.j, d, c.want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestArenaTinyAndEqualTrees pins the edge geometry: single-node trees,
// identical trees (distance 0 at τ=0, where the band is one diagonal), and
// maximally distant ones.
func TestArenaTinyAndEqualTrees(t *testing.T) {
	lt := tree.NewLabelTable()
	b := tree.NewBuilder(lt)
	b.Root("a")
	one := b.MustBuild()
	b2 := tree.NewBuilder(lt)
	b2.Root("b")
	oneB := b2.MustBuild()
	rng := rand.New(rand.NewSource(77))
	big := randTree(rng, 30, 3, lt)
	vs := BuildViews([]*tree.Tree{one, oneB, big, big})
	s := AcquireScratch()
	defer ReleaseScratch(s)
	if d, ok := DistanceBoundedView(vs[0], vs[0], 0, s, nil); !ok || d != 0 {
		t.Fatalf("self distance at τ=0: (%d,%v)", d, ok)
	}
	if d, ok := DistanceBoundedView(vs[0], vs[1], 0, s, nil); ok || d != 1 {
		t.Fatalf("relabel at τ=0: (%d,%v), want (1,false)", d, ok)
	}
	if d, ok := DistanceBoundedView(vs[0], vs[1], 1, s, nil); !ok || d != 1 {
		t.Fatalf("relabel at τ=1: (%d,%v), want (1,true)", d, ok)
	}
	if d, ok := DistanceBoundedView(vs[2], vs[3], 0, s, nil); !ok || d != 0 {
		t.Fatalf("identical trees at τ=0: (%d,%v)", d, ok)
	}
	want := ZhangShasha(one, big)
	if d, ok := DistanceBoundedView(vs[0], vs[2], want, s, nil); !ok || d != want {
		t.Fatalf("leaf vs big at τ=%d: (%d,%v)", want, d, ok)
	}
}
