package ted_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// mappingValid checks the Tai mapping conditions: one-to-one, postorder-
// preserving, ancestor-preserving.
func mappingValid(t *testing.T, t1, t2 *tree.Tree, pairs []ted.MapPair) {
	t.Helper()
	rank := func(tr *tree.Tree) map[int32]int {
		m := make(map[int32]int)
		for i, n := range tree.Postorder(tr) {
			m[n] = i
		}
		return m
	}
	r1, r2 := rank(t1), rank(t2)
	anc := func(tr *tree.Tree, a, b int32) bool { // a proper ancestor of b
		for p := tr.Nodes[b].Parent; p != tree.None; p = tr.Nodes[p].Parent {
			if p == a {
				return true
			}
		}
		return false
	}
	seen1 := map[int32]bool{}
	seen2 := map[int32]bool{}
	for _, p := range pairs {
		if seen1[p.N1] || seen2[p.N2] {
			t.Fatalf("mapping not one-to-one at %v", p)
		}
		seen1[p.N1] = true
		seen2[p.N2] = true
	}
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			a, b := pairs[i], pairs[j]
			if (r1[a.N1] < r1[b.N1]) != (r2[a.N2] < r2[b.N2]) {
				t.Fatalf("mapping violates postorder: %v %v", a, b)
			}
			if anc(t1, a.N1, b.N1) != anc(t2, a.N2, b.N2) {
				t.Fatalf("mapping violates ancestry: %v %v", a, b)
			}
			if anc(t1, b.N1, a.N1) != anc(t2, b.N2, a.N2) {
				t.Fatalf("mapping violates ancestry: %v %v", b, a)
			}
		}
	}
}

// mappingCost recomputes the cost of a mapping from first principles.
func mappingCost(t1, t2 *tree.Tree, pairs []ted.MapPair) int {
	renames := 0
	for _, p := range pairs {
		if t1.Nodes[p.N1].Label != t2.Nodes[p.N2].Label {
			renames++
		}
	}
	return (t1.Size() - len(pairs)) + (t2.Size() - len(pairs)) + renames
}

func TestMappingFigure3(t *testing.T) {
	lt := tree.NewLabelTable()
	t1 := tree.MustParseBracket("{l1{l2}{l1{l3}}}", lt)
	t2 := tree.MustParseBracket("{l1{l2{l1}{l3}}}", lt)
	dist, pairs := ted.Mapping(t1, t2)
	if dist != 3 {
		t.Fatalf("dist = %d", dist)
	}
	mappingValid(t, t1, t2, pairs)
	if got := mappingCost(t1, t2, pairs); got != dist {
		t.Fatalf("mapping cost %d != distance %d", got, dist)
	}
}

func TestMappingIdentity(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{a{b{c}{d}}{e}}", lt)
	dist, pairs := ted.Mapping(a, a)
	if dist != 0 {
		t.Fatalf("dist = %d", dist)
	}
	if len(pairs) != a.Size() {
		t.Fatalf("identity mapping has %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p.N1 != p.N2 {
			t.Fatalf("identity mapping pairs %v", p)
		}
	}
}

// TestMappingRandom: on random pairs the extracted mapping is valid, its
// recomputed cost equals the DP distance, and the distance matches
// ZhangShasha.
func TestMappingRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	lt := tree.NewLabelTable()
	iters := 300
	if testing.Short() {
		iters = 80
	}
	for i := 0; i < iters; i++ {
		a := tinyRandomTree(rng, 25, 3, lt)
		b := tinyRandomTree(rng, 25, 3, lt)
		want := ted.ZhangShasha(a, b)
		dist, pairs := ted.Mapping(a, b)
		if dist != want {
			t.Fatalf("Mapping dist %d != ZS %d", dist, want)
		}
		mappingValid(t, a, b, pairs)
		if got := mappingCost(a, b, pairs); got != dist {
			t.Fatalf("mapping cost %d != distance %d\n%s\n%s",
				got, dist, tree.FormatBracket(a), tree.FormatBracket(b))
		}
	}
}

// TestEditScriptLengthEqualsDistance: the derived script has exactly
// distance-many operations, with deletes ordered bottom-up.
func TestEditScriptLengthEqualsDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	lt := tree.NewLabelTable()
	for i := 0; i < 200; i++ {
		a := tinyRandomTree(rng, 20, 3, lt)
		b := tinyRandomTree(rng, 20, 3, lt)
		dist, script := ted.EditScript(a, b)
		if len(script) != dist {
			t.Fatalf("script length %d != distance %d", len(script), dist)
		}
		var dels, inss, rens int
		lastDelRank := 1 << 30
		rank := map[int32]int{}
		for idx, n := range tree.Postorder(a) {
			rank[n] = idx
		}
		for _, op := range script {
			switch op.Kind {
			case ted.OpDelete:
				dels++
				if rank[op.Node1] > lastDelRank {
					t.Fatal("deletes not bottom-up")
				}
				lastDelRank = rank[op.Node1]
				if op.Node2 != tree.None {
					t.Fatal("delete carries a t2 node")
				}
			case ted.OpInsert:
				inss++
				if op.Node1 != tree.None {
					t.Fatal("insert carries a t1 node")
				}
			case ted.OpRename:
				rens++
				if a.Nodes[op.Node1].Label == b.Nodes[op.Node2].Label {
					t.Fatal("rename with identical labels")
				}
			}
		}
		if a.Size()-dels+inss != b.Size() {
			t.Fatalf("size bookkeeping wrong: %d - %d + %d != %d", a.Size(), dels, inss, b.Size())
		}
	}
}

func TestEditScriptOnEditedTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	lt := tree.NewLabelTable()
	for i := 0; i < 100; i++ {
		a := tinyRandomTree(rng, 25, 4, lt)
		b := a
		k := rng.Intn(4)
		for e := 0; e < k; e++ {
			b = randomEditOp(rng, b, lt)
		}
		dist, script := ted.EditScript(a, b)
		if dist > k {
			t.Fatalf("script dist %d exceeds %d edits", dist, k)
		}
		if len(script) != dist {
			t.Fatalf("script length %d != dist %d", len(script), dist)
		}
	}
}

func TestOpKindString(t *testing.T) {
	if ted.OpDelete.String() != "delete" || ted.OpInsert.String() != "insert" || ted.OpRename.String() != "rename" {
		t.Fatal("OpKind strings wrong")
	}
}
