// Package ted computes the tree edit distance (TED) between rooted ordered
// labeled trees under the standard unit-cost model (insert, delete, rename).
//
// The package provides the Zhang–Shasha algorithm (the [29] component of
// RTED), its right-path variant obtained by mirroring both trees, and
// Distance, an RTED-style hybrid that picks the cheaper of the two
// decompositions from the trees' shapes. Distance is what the similarity-join
// verifiers use, mirroring the paper's use of RTED: all algorithms return the
// exact same distance value; the strategy choice only affects runtime.
package ted

import (
	"treejoin/internal/tree"
)

// prep holds the postorder-indexed arrays the Zhang–Shasha DP consumes.
type prep struct {
	labels   []int32 // label of the node at postorder index i (0-based)
	lml      []int32 // postorder index of the leftmost leaf of the subtree at i
	keyroots []int32 // ascending postorder indices of the LR-keyroots
	nodes    []int32 // node id at postorder index i (for mapping extraction)
}

// prepare computes the Zhang–Shasha arrays for t.
func prepare(t *tree.Tree) *prep {
	return finishPrep(t, tree.Postorder(t), func(u int32) int32 {
		for t.Nodes[u].FirstChild != tree.None {
			u = t.Nodes[u].FirstChild
		}
		return u
	})
}

// ZhangShasha returns TED(t1, t2) using the classic left-path decomposition:
// O(n²) space and O(n² · min(depth, leaves)²) time.
func ZhangShasha(t1, t2 *tree.Tree) int {
	return zs(prepare(t1), prepare(t2))
}

func zs(a, b *prep) int {
	td := computeTreeDists(a, b)
	n1, n2 := len(a.labels), len(b.labels)
	return int(td[(n1-1)*n2+(n2-1)])
}

// computeTreeDists fills the full subtree-distance matrix td[i*n2+j] =
// TED(subtree a_i, subtree b_j) by running the forest DP over every keyroot
// pair.
func computeTreeDists(a, b *prep) []int32 {
	n1, n2 := len(a.labels), len(b.labels)
	td := make([]int32, n1*n2)
	fd := make([]int32, (n1+1)*(n2+1))
	for _, i := range a.keyroots {
		for _, j := range b.keyroots {
			forestDP(a, b, i, j, td, fd, true)
		}
	}
	return td
}

// forestDP runs one forest-distance DP for the subtree pair rooted at
// postorder indices (i, j), reading subtree distances from td and optionally
// recording the tree-tree cells back into td. fd must have room for
// (n1+1)·(n2+1) cells; its row stride is len(b.labels)+1.
func forestDP(a, b *prep, i, j int32, td, fd []int32, writeTD bool) {
	n2 := len(b.labels)
	w := n2 + 1
	li, lj := a.lml[i], b.lml[j]
	m, n := int(i-li)+1, int(j-lj)+1
	fd[0] = 0
	for di := 1; di <= m; di++ {
		fd[di*w] = fd[(di-1)*w] + 1
	}
	for dj := 1; dj <= n; dj++ {
		fd[dj] = fd[dj-1] + 1
	}
	for di := 1; di <= m; di++ {
		ai := li + int32(di) - 1
		for dj := 1; dj <= n; dj++ {
			bj := lj + int32(dj) - 1
			del := fd[(di-1)*w+dj] + 1
			ins := fd[di*w+dj-1] + 1
			var sub int32
			treeCase := a.lml[ai] == li && b.lml[bj] == lj
			if treeCase {
				// Both prefixes end in a full subtree whose leftmost leaf
				// starts the forest: tree-tree case.
				cost := int32(1)
				if a.labels[ai] == b.labels[bj] {
					cost = 0
				}
				sub = fd[(di-1)*w+dj-1] + cost
			} else {
				sub = fd[int(a.lml[ai]-li)*w+int(b.lml[bj]-lj)] + td[int(ai)*n2+int(bj)]
			}
			best := del
			if ins < best {
				best = ins
			}
			if sub < best {
				best = sub
			}
			fd[di*w+dj] = best
			if treeCase && writeTD {
				td[int(ai)*n2+int(bj)] = best
			}
		}
	}
}

// Mirror returns the tree with every node's children reversed. TED is
// invariant under mirroring both inputs, which turns the left-path
// decomposition into a right-path one.
func Mirror(t *tree.Tree) *tree.Tree {
	b := tree.NewBuilder(t.Labels)
	var copyRev func(src, dst int32)
	copyRev = func(src, dst int32) {
		cs := t.Children(src)
		for i := len(cs) - 1; i >= 0; i-- {
			id := b.ChildID(dst, t.Nodes[cs[i]].Label)
			copyRev(cs[i], id)
		}
	}
	root := b.RootID(t.Nodes[t.Root()].Label)
	copyRev(t.Root(), root)
	return b.MustBuild()
}

// ZhangShashaRight returns TED(t1, t2) using the right-path decomposition
// (Zhang–Shasha on the mirrored trees). The value is identical to
// ZhangShasha; the work differs on left-deep versus right-deep shapes.
func ZhangShashaRight(t1, t2 *tree.Tree) int {
	return ZhangShasha(Mirror(t1), Mirror(t2))
}
