package ted

import (
	"treejoin/internal/tree"
)

// strategyCost estimates the number of DP cells Zhang–Shasha touches for one
// tree under the left- or right-path decomposition: the sum of subtree sizes
// over the decomposition's keyroots (the product of the two trees' sums
// bounds the total work, as in the RTED cost model).
func strategyCost(t *tree.Tree) (left, right int64) {
	sizes := tree.SubtreeSizes(t)
	left = int64(t.Size())
	right = int64(t.Size())
	for id := range t.Nodes {
		n := int32(id)
		// Has a left sibling ⇔ n is not its parent's first child.
		p := t.Nodes[n].Parent
		if p == tree.None {
			continue
		}
		if t.Nodes[p].FirstChild != n {
			left += int64(sizes[n])
		}
		if t.Nodes[n].NextSibling != tree.None {
			right += int64(sizes[n])
		}
	}
	return left, right
}

// Distance returns TED(t1, t2). It follows RTED's idea at whole-tree
// granularity: estimate the cost of the left-path and right-path
// decompositions from the tree shapes and run the cheaper one. The returned
// distance is exact either way. Both trees must share one LabelTable (label
// equality is id equality).
func Distance(t1, t2 *tree.Tree) int {
	if t1.Labels != t2.Labels {
		panic("ted: trees must share a label table")
	}
	l1, r1 := strategyCost(t1)
	l2, r2 := strategyCost(t2)
	if l1*l2 <= r1*r2 {
		return ZhangShasha(t1, t2)
	}
	return ZhangShashaRight(t1, t2)
}

// SizeLowerBound returns |size(t1) − size(t2)|, a TED lower bound: every edit
// operation changes the size of a tree by at most one.
func SizeLowerBound(t1, t2 *tree.Tree) int {
	d := t1.Size() - t2.Size()
	if d < 0 {
		d = -d
	}
	return d
}

// LabelLowerBound returns max(|t1|, |t2|) minus the size of the label-bag
// intersection, a TED lower bound: an edit operation fixes at most one label
// mismatch. The trees must share a label table.
func LabelLowerBound(t1, t2 *tree.Tree) int {
	if t1.Labels != t2.Labels {
		panic("ted: LabelLowerBound requires a shared label table")
	}
	counts := make(map[int32]int, len(t1.Nodes))
	for i := range t1.Nodes {
		counts[t1.Nodes[i].Label]++
	}
	common := 0
	for i := range t2.Nodes {
		if counts[t2.Nodes[i].Label] > 0 {
			counts[t2.Nodes[i].Label]--
			common++
		}
	}
	m := t1.Size()
	if t2.Size() > m {
		m = t2.Size()
	}
	return m - common
}

// DistanceBounded reports whether TED(t1, t2) ≤ tau, returning the exact
// distance when it is and tau+1 otherwise. The size and label lower bounds
// are applied before any DP, and the DP itself is the τ-banded Zhang–Shasha
// of banded.go — worst-case cost shrinks from cubic to O(n·τ) per keyroot
// pair, and hopeless pairs abort as soon as a band row proves them > τ. This
// is the verifier behind every join method in this module; engine-driven
// joins call DistanceBoundedPrep directly with cached preparations.
func DistanceBounded(t1, t2 *tree.Tree, tau int) (int, bool) {
	return DistanceBoundedPrep(NewPrep(t1), NewPrep(t2), tau, nil)
}
