package ted

import "treejoin/internal/tree"

// Generalized cost model: the paper (and the join) use unit costs, but
// downstream users of a TED library routinely need weighted operations —
// e.g. renames cheaper than structural edits when labels are noisy, or
// per-label weights. DistanceCosts runs the same Zhang–Shasha decomposition
// with an arbitrary cost model. The similarity join's filtering lemmas are
// proved for unit costs only, so weighted distances are exposed through the
// TED API, not through the join.

// Costs defines the non-negative costs of the three edit operations. Labels
// are interned ids from the trees' shared LabelTable. For the distance to be
// a metric, Rename should be symmetric, satisfy the triangle inequality, be
// zero exactly on equal labels, and Insert/Delete should be symmetric
// per-label.
type Costs interface {
	// Delete returns the cost of deleting a node labeled label.
	Delete(label int32) int32
	// Insert returns the cost of inserting a node labeled label.
	Insert(label int32) int32
	// Rename returns the cost of relabeling from -> to. It must be 0 when
	// from == to.
	Rename(from, to int32) int32
}

// UnitCosts is the standard model: every operation costs 1 (renames between
// equal labels cost 0). DistanceCosts with UnitCosts equals Distance.
type UnitCosts struct{}

// Delete implements Costs.
func (UnitCosts) Delete(int32) int32 { return 1 }

// Insert implements Costs.
func (UnitCosts) Insert(int32) int32 { return 1 }

// Rename implements Costs.
func (UnitCosts) Rename(from, to int32) int32 {
	if from == to {
		return 0
	}
	return 1
}

// WeightedCosts is a convenient concrete model with constant operation
// weights.
type WeightedCosts struct {
	DeleteCost int32
	InsertCost int32
	RenameCost int32
}

// Delete implements Costs.
func (w WeightedCosts) Delete(int32) int32 { return w.DeleteCost }

// Insert implements Costs.
func (w WeightedCosts) Insert(int32) int32 { return w.InsertCost }

// Rename implements Costs.
func (w WeightedCosts) Rename(from, to int32) int32 {
	if from == to {
		return 0
	}
	return w.RenameCost
}

// DistanceCosts returns the minimum total cost of an edit script
// transforming t1 into t2 under the given cost model, using the Zhang–Shasha
// decomposition. Both trees must share one LabelTable.
func DistanceCosts(t1, t2 *tree.Tree, costs Costs) int64 {
	if t1.Labels != t2.Labels {
		panic("ted: trees must share a label table")
	}
	a, b := prepare(t1), prepare(t2)
	n1, n2 := len(a.labels), len(b.labels)
	td := make([]int64, n1*n2)
	fd := make([]int64, (n1+1)*(n2+1))
	w := n2 + 1
	for _, i := range a.keyroots {
		for _, j := range b.keyroots {
			li, lj := a.lml[i], b.lml[j]
			m, n := int(i-li)+1, int(j-lj)+1
			fd[0] = 0
			for di := 1; di <= m; di++ {
				fd[di*w] = fd[(di-1)*w] + int64(costs.Delete(a.labels[li+int32(di)-1]))
			}
			for dj := 1; dj <= n; dj++ {
				fd[dj] = fd[dj-1] + int64(costs.Insert(b.labels[lj+int32(dj)-1]))
			}
			for di := 1; di <= m; di++ {
				ai := li + int32(di) - 1
				for dj := 1; dj <= n; dj++ {
					bj := lj + int32(dj) - 1
					del := fd[(di-1)*w+dj] + int64(costs.Delete(a.labels[ai]))
					ins := fd[di*w+dj-1] + int64(costs.Insert(b.labels[bj]))
					var sub int64
					treeCase := a.lml[ai] == li && b.lml[bj] == lj
					if treeCase {
						sub = fd[(di-1)*w+dj-1] + int64(costs.Rename(a.labels[ai], b.labels[bj]))
					} else {
						sub = fd[int(a.lml[ai]-li)*w+int(b.lml[bj]-lj)] + td[int(ai)*n2+int(bj)]
					}
					best := del
					if ins < best {
						best = ins
					}
					if sub < best {
						best = sub
					}
					fd[di*w+dj] = best
					if treeCase {
						td[int(ai)*n2+int(bj)] = best
					}
				}
			}
		}
	}
	return td[(n1-1)*n2+(n2-1)]
}
