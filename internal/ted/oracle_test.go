package ted_test

import (
	"math/rand"

	"treejoin/internal/tree"
)

// This file implements an exhaustive tree-edit-distance oracle used to
// validate the DP algorithms on tiny trees: it enumerates every valid edit
// mapping (one-to-one, postorder-preserving, ancestor-preserving — Tai's
// definition) and returns the cheapest. Exponential, so callers keep trees at
// ≤ ~7 nodes.

type oracleTree struct {
	labels []int32
	lml    []int // postorder index of leftmost leaf of the subtree at i
}

func oraclePrep(t *tree.Tree) *oracleTree {
	post := tree.Postorder(t)
	rank := make([]int32, t.Size())
	for i, v := range post {
		rank[v] = int32(i)
	}
	o := &oracleTree{labels: make([]int32, len(post)), lml: make([]int, len(post))}
	for i, v := range post {
		o.labels[i] = t.Nodes[v].Label
		u := v
		for t.Nodes[u].FirstChild != tree.None {
			u = t.Nodes[u].FirstChild
		}
		o.lml[i] = int(rank[u])
	}
	return o
}

// isAncestor reports whether postorder index a is a (proper) ancestor of b:
// in postorder, exactly when lml(a) ≤ b < a.
func (o *oracleTree) isAncestor(a, b int) bool {
	return o.lml[a] <= b && b < a
}

// exhaustiveTED enumerates mappings by deciding, for each node of t1 in
// postorder, whether it is deleted or mapped to a (valid) node of t2.
func exhaustiveTED(t1, t2 *tree.Tree) int {
	o1, o2 := oraclePrep(t1), oraclePrep(t2)
	n1, n2 := len(o1.labels), len(o2.labels)
	used := make([]bool, n2)
	var m1, m2 []int // mapped pairs so far
	best := n1 + n2  // delete everything, insert everything

	var rec func(i, mapped, renames int)
	rec = func(i, mapped, renames int) {
		// Lower bound on final cost from here: deletions of unmapped t1
		// nodes so far + renames; even mapping everything remaining can't
		// beat best if this already exceeds it.
		costSoFar := (i - mapped) + renames
		if costSoFar >= best {
			return
		}
		if i == n1 {
			total := (n1 - mapped) + (n2 - mapped) + renames
			if total < best {
				best = total
			}
			return
		}
		// Option 1: delete node i.
		rec(i+1, mapped, renames)
		// Option 2: map node i to each valid j.
		for j := 0; j < n2; j++ {
			if used[j] {
				continue
			}
			ok := true
			for k := range m1 {
				// m1[k] < i in postorder; require m2[k] < j and matching
				// ancestor relations.
				if m2[k] >= j {
					ok = false
					break
				}
				if o1.isAncestor(i, m1[k]) != o2.isAncestor(j, m2[k]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			r := renames
			if o1.labels[i] != o2.labels[j] {
				r++
			}
			used[j] = true
			m1 = append(m1, i)
			m2 = append(m2, j)
			rec(i+1, mapped+1, r)
			m1 = m1[:len(m1)-1]
			m2 = m2[:len(m2)-1]
			used[j] = false
		}
	}
	rec(0, 0, 0)
	return best
}

// tinyRandomTree returns a random tree of at most maxN nodes over a small
// alphabet (shared table required for TED).
func tinyRandomTree(rng *rand.Rand, maxN, alphabet int, lt *tree.LabelTable) *tree.Tree {
	n := 1 + rng.Intn(maxN)
	b := tree.NewBuilder(lt)
	lab := func() string { return string(rune('a' + rng.Intn(alphabet))) }
	b.Root(lab())
	for i := 1; i < n; i++ {
		b.Child(int32(rng.Intn(i)), lab())
	}
	return b.MustBuild()
}
