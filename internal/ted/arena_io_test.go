package ted

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"treejoin/internal/tree"
)

// TestViewCellsRoundTrip: AppendViewCells → ViewFromCells reproduces every
// array and cost of the original view, for random trees down to a single
// node, and ViewCellCount predicts the flattened length exactly.
func TestViewCellsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	lt := tree.NewLabelTable()
	var trees []*tree.Tree
	b := tree.NewBuilder(lt)
	b.Root("a")
	trees = append(trees, b.MustBuild())
	for i := 0; i < 60; i++ {
		trees = append(trees, randTree(rng, 40, 4, lt))
	}
	vs := BuildViews(trees)
	for i, v := range vs {
		cells := AppendViewCells(nil, v)
		if len(cells) != ViewCellCount(trees[i].Size(), Leaves(trees[i])) {
			t.Fatalf("tree %d: %d cells, ViewCellCount says %d",
				i, len(cells), ViewCellCount(trees[i].Size(), Leaves(trees[i])))
		}
		got, err := ViewFromCells(trees[i], cells, v.CostL, v.CostR)
		if err != nil {
			t.Fatalf("tree %d: round-trip rejected: %v", i, err)
		}
		checkViewsEqual(t, i, got, v)
	}
}

func checkViewsEqual(t *testing.T, i int, got, want *TreeView) {
	t.Helper()
	for _, pair := range []struct {
		name      string
		got, want []int32
	}{
		{"Labels", got.Labels, want.Labels}, {"Lml", got.Lml, want.Lml},
		{"RLabels", got.RLabels, want.RLabels}, {"Rml", got.Rml, want.Rml},
		{"Keyroots", got.Keyroots, want.Keyroots}, {"KrByLml", got.KrByLml, want.KrByLml},
		{"RKeyroots", got.RKeyroots, want.RKeyroots}, {"RKrByLml", got.RKrByLml, want.RKrByLml},
		{"Depth", got.Depth, want.Depth}, {"Parent", got.Parent, want.Parent},
		{"RParent", got.RParent, want.RParent}, {"SubtreeSize", got.SubtreeSize, want.SubtreeSize},
		{"SortedLabels", got.SortedLabels, want.SortedLabels},
	} {
		if !reflect.DeepEqual(pair.got, pair.want) {
			t.Fatalf("tree %d: %s differs: %v vs %v", i, pair.name, pair.got, pair.want)
		}
	}
	if got.CostL != want.CostL || got.CostR != want.CostR {
		t.Fatalf("tree %d: costs (%d,%d), want (%d,%d)", i, got.CostL, got.CostR, want.CostL, want.CostR)
	}
	if got.T != want.T {
		t.Fatalf("tree %d: view tree pointer differs", i)
	}
}

// TestViewFromCellsRejects pins targeted corruptions: every mutation below
// breaks an invariant the kernel relies on and must be rejected with
// ErrBadView — never accepted, never a panic.
func TestViewFromCellsRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	lt := tree.NewLabelTable()
	tr := randTree(rng, 30, 3, lt)
	v := BuildViews([]*tree.Tree{tr})[0]
	good := AppendViewCells(nil, v)
	n := tr.Size()
	leaves := Leaves(tr)

	// Offsets of the arrays within the flattened layout.
	const (
		labelsOff = 0
	)
	lmlOff := n
	krOff := 4 * n
	depthOff := 4*n + 4*leaves
	parentOff := depthOff + n
	sizeOff := depthOff + 3*n
	sortedOff := depthOff + 4*n

	cases := []struct {
		name   string
		mutate func(c []int32) []int32
	}{
		{"truncated", func(c []int32) []int32 { return c[:len(c)-1] }},
		{"extended", func(c []int32) []int32 { return append(c, 0) }},
		{"label out of range", func(c []int32) []int32 { c[labelsOff] = int32(lt.Len()); return c }},
		{"label negative", func(c []int32) []int32 { c[labelsOff] = -1; return c }},
		{"lml above index", func(c []int32) []int32 { c[lmlOff] = 1; return c }}, // lml[0] must be 0
		{"keyroot not root-terminated", func(c []int32) []int32 { c[krOff+leaves-1] = int32(n - 2); return c }},
		{"keyroots descending", func(c []int32) []int32 {
			if leaves < 2 {
				t.Skip("needs ≥2 leaves")
			}
			c[krOff], c[krOff+1] = c[krOff+1], c[krOff]
			return c
		}},
		{"root depth nonzero", func(c []int32) []int32 { c[depthOff+n-1] = 1; return c }},
		{"depth inconsistent", func(c []int32) []int32 { c[depthOff] += 5; return c }},
		{"parent not increasing", func(c []int32) []int32 { c[parentOff] = 0; return c }},
		{"root parent set", func(c []int32) []int32 { c[parentOff+n-1] = 0; return c }},
		{"subtree size wrong", func(c []int32) []int32 { c[sizeOff]++; return c }},
		{"sorted labels unsorted", func(c []int32) []int32 {
			c[sortedOff] = c[sortedOff+n-1] + 1
			return c
		}},
	}
	for _, tc := range cases {
		cells := append([]int32(nil), good...)
		cells = tc.mutate(cells)
		if _, err := ViewFromCells(tr, cells, v.CostL, v.CostR); !errors.Is(err, ErrBadView) {
			t.Fatalf("%s: err = %v, want ErrBadView", tc.name, err)
		}
	}
	if _, err := ViewFromCells(tr, append([]int32(nil), good...), -1, v.CostR); !errors.Is(err, ErrBadView) {
		t.Fatalf("negative cost accepted")
	}
}

// TestViewFromCellsFuzzKernelSafe is the validation's real contract: randomly
// perturbed cells either get rejected, or — when the perturbation happens to
// keep every invariant — produce a view the banded kernel can run without
// panicking or over-reading. (The verdict may differ from the true distance;
// end-to-end integrity is the segment store's content hash, not this layer.)
func TestViewFromCellsFuzzKernelSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	lt := tree.NewLabelTable()
	s := AcquireScratch()
	defer ReleaseScratch(s)
	for iter := 0; iter < 400; iter++ {
		tr := randTree(rng, 24, 3, lt)
		other := randTree(rng, 24, 3, lt)
		ov := BuildViews([]*tree.Tree{other})[0]
		v := BuildViews([]*tree.Tree{tr})[0]
		cells := AppendViewCells(nil, v)
		for k := 1 + rng.Intn(3); k > 0; k-- {
			cells[rng.Intn(len(cells))] = int32(rng.Intn(80) - 10)
		}
		got, err := ViewFromCells(tr, cells, v.CostL, v.CostR)
		if err != nil {
			if !errors.Is(err, ErrBadView) {
				t.Fatalf("iter %d: non-ErrBadView rejection: %v", iter, err)
			}
			continue
		}
		for _, tau := range []int{0, 2, 5} {
			DistanceBoundedView(got, ov, tau, s, nil)
			DistanceBoundedView(ov, got, tau, s, nil)
		}
	}
}
