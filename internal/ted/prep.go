package ted

import (
	"sort"
	"sync"

	"treejoin/internal/tree"
)

// Prep bundles every per-tree precomputation the bounded verifier consumes:
// the Zhang–Shasha arrays of the left- and right-path decompositions (built
// lazily — a tree that always falls on the cheap side of the RTED-style
// strategy choice never pays for the other variant), the strategy costs that
// drive that choice, and the sorted label multiset behind the label lower
// bound. A Prep is safe for concurrent use once constructed (the lazy fields
// materialise under sync.Once), so one Prep per tree can be shared by every
// verify worker of every join; the engine caches them in the corpus artifact
// cache under the "ted/prep" key so warm joins never re-run prepare.
type Prep struct {
	t      *tree.Tree
	size   int
	costL  int64   // strategy cost of the left-path decomposition
	costR  int64   // strategy cost of the right-path decomposition
	labels []int32 // node labels sorted ascending, for the label lower bound

	leftOnce  sync.Once
	left      *prep
	rightOnce sync.Once
	right     *prep
}

// NewPrep computes the verifier preparation of t: strategy costs and the
// sorted label multiset eagerly, the two decomposition array sets lazily.
func NewPrep(t *tree.Tree) *Prep {
	l, r := strategyCost(t)
	p := &Prep{t: t, size: t.Size(), costL: l, costR: r}
	p.labels = make([]int32, len(t.Nodes))
	for i := range t.Nodes {
		p.labels[i] = t.Nodes[i].Label
	}
	sort.Slice(p.labels, func(a, b int) bool { return p.labels[a] < p.labels[b] })
	return p
}

// Tree returns the tree this preparation describes.
func (p *Prep) Tree() *tree.Tree { return p.t }

// Size returns the tree's node count.
func (p *Prep) Size() int { return p.size }

func (p *Prep) leftPrep() *prep {
	p.leftOnce.Do(func() { p.left = prepare(p.t) })
	return p.left
}

func (p *Prep) rightPrep() *prep {
	p.rightOnce.Do(func() { p.right = prepareMirrored(p.t) })
	return p.right
}

// chooseDecomp is the RTED-style per-pair strategy rule shared by pick and
// the arena verifier: run the left-path decomposition iff the product of the
// trees' left costs does not exceed the product of their right costs (the
// product bounds the total DP work of the pair under each decomposition).
func chooseDecomp(aCostL, aCostR, bCostL, bCostR int64) Decomp {
	if aCostL*bCostL <= aCostR*bCostR {
		return DecompLeft
	}
	return DecompRight
}

// pick returns the Zhang–Shasha array pair of the cheaper decomposition for
// the pair (a, b), mirroring Distance's RTED-style whole-tree strategy
// choice.
func pick(a, b *Prep) (*prep, *prep) {
	if chooseDecomp(a.costL, a.costR, b.costL, b.costR) == DecompLeft {
		return a.leftPrep(), b.leftPrep()
	}
	return a.rightPrep(), b.rightPrep()
}

// labelLowerBoundSorted is LabelLowerBound over pre-sorted label multisets:
// max(|a|, |b|) minus the size of their multiset intersection, computed by a
// linear merge with no allocation.
func labelLowerBoundSorted(a, b []int32) int {
	common, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			common++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	return m - common
}

// labelBoundExceeds reports labelLowerBoundSorted(a, b) > tau without always
// finishing the merge: the verdict is returned as soon as the matched count
// reaches max(|a|,|b|)−tau (the bound can no longer exceed tau) or the
// remaining elements cannot reach it (the bound certainly does). Both
// verifier kernels use it in place of the full merge, so their pruning
// decisions stay identical.
func labelBoundExceeds(a, b []int32, tau int) bool {
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	need := m - tau // matches required for the bound to stay ≤ tau
	if need <= 0 {
		return false
	}
	i, j := 0, 0
	for {
		ra, rb := len(a)-i, len(b)-j
		if rb < ra {
			ra = rb
		}
		if ra < need {
			return true
		}
		// need ≥ 1 and min(remaining) ≥ need, so both sides are non-empty.
		switch {
		case a[i] == b[j]:
			i++
			j++
			need--
			if need == 0 {
				return false
			}
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
}

// prepareMirrored computes the Zhang–Shasha arrays of Mirror(t) without
// materialising the mirrored tree: postorder visits children right-to-left,
// and the mirrored leftmost leaf is the original rightmost leaf (the last
// child chain). Labels, lml, and keyroots are identical to
// prepare(Mirror(t)); only the node-id column refers to t's own ids.
func prepareMirrored(t *tree.Tree) *prep {
	n := t.Size()
	// Invert the FirstChild/NextSibling links so the traversal can walk
	// children right-to-left without per-node allocation.
	last := make([]int32, n)
	prev := make([]int32, n)
	for id := range t.Nodes {
		var p int32 = tree.None
		for c := t.Nodes[id].FirstChild; c != tree.None; c = t.Nodes[c].NextSibling {
			prev[c] = p
			p = c
		}
		last[id] = p
	}
	post := make([]int32, 0, n)
	type frame struct{ node, child int32 }
	stack := make([]frame, 0, 16)
	root := t.Root()
	stack = append(stack, frame{root, last[root]})
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.child == tree.None {
			post = append(post, top.node)
			stack = stack[:len(stack)-1]
			continue
		}
		c := top.child
		top.child = prev[c]
		stack = append(stack, frame{c, last[c]})
	}
	return finishPrep(t, post, func(u int32) int32 {
		for last[u] != tree.None {
			u = last[u]
		}
		return u
	})
}

// finishPrep fills a prep from a postorder sequence and the decomposition's
// leaf function (leftmost leaf for the left-path arrays, rightmost for the
// mirrored ones).
func finishPrep(t *tree.Tree, post []int32, leaf func(int32) int32) *prep {
	n := len(post)
	rank := make([]int32, n)
	for i, v := range post {
		rank[v] = int32(i)
	}
	p := &prep{labels: make([]int32, n), lml: make([]int32, n), nodes: post}
	for i, v := range post {
		p.labels[i] = t.Nodes[v].Label
		p.lml[i] = rank[leaf(v)]
	}
	// A node is a keyroot iff no node with a larger postorder index shares
	// its leftmost leaf (i.e. it has a left sibling, or it is the root).
	seen := make([]bool, n)
	for i := n - 1; i >= 0; i-- {
		if !seen[p.lml[i]] {
			seen[p.lml[i]] = true
			p.keyroots = append(p.keyroots, int32(i))
		}
	}
	// Collected in descending order above; reverse to ascending.
	for l, r := 0, len(p.keyroots)-1; l < r; l, r = l+1, r-1 {
		p.keyroots[l], p.keyroots[r] = p.keyroots[r], p.keyroots[l]
	}
	return p
}
