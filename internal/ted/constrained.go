package ted

import "treejoin/internal/tree"

// Constrained tree edit distance (Zhang, Pattern Recognition 28(3), 1995) —
// the "alignment-like" restriction of TED the paper's related work refers to
// with [15, 24]: edit mappings must map disjoint subtrees to disjoint
// subtrees (equivalently, the mapping preserves least common ancestors).
// Under this restriction the distance is computable in O(|T1|·|T2|) time
// instead of cubic, at the price of sometimes overestimating the
// unconstrained TED. It is still a metric, and CTED(T1,T2) ≥ TED(T1,T2)
// always, so it is useful both as a fast conservative distance in its own
// right and as a cheap upper bound: a pair with CTED ≤ τ is certainly a join
// result.
//
// The recurrences, with D for subtree pairs, F for child-forest pairs, and
// A(i,j) the edit distance over the two child sequences where matching
// children r, s costs D(r, s):
//
//	D(i, j) = min( insTree(j) + min_s [D(i, s) − insTree(s)],
//	               delTree(i) + min_r [D(r, j) − delTree(r)],
//	               F(i, j) + rename(i, j) )
//	F(i, j) = min( insForest(j) + min_s [F(i, s) − insForest(s)],
//	               delForest(i) + min_r [F(r, j) − delForest(r)],
//	               A(i, j) )
//
// where r ranges over the children of i and s over the children of j, and
// the first (second) option is skipped when j (i) is a leaf. The sequence
// alignments A sum to O(|T1|·|T2|) cells over all node pairs, because
// Σ deg(i)·deg(j) = (Σ deg)·(Σ deg).

// ConstrainedDistance returns the constrained (LCA-preserving) edit distance
// between t1 and t2 under unit costs. Both trees must share one LabelTable.
func ConstrainedDistance(t1, t2 *tree.Tree) int {
	return int(ConstrainedDistanceCosts(t1, t2, UnitCosts{}))
}

// ConstrainedDistanceCosts is ConstrainedDistance under an arbitrary cost
// model.
func ConstrainedDistanceCosts(t1, t2 *tree.Tree, costs Costs) int64 {
	if t1.Labels != t2.Labels {
		panic("ted: trees must share a label table")
	}
	n1, n2 := t1.Size(), t2.Size()
	post1, post2 := tree.Postorder(t1), tree.Postorder(t2)

	// Whole-subtree delete/insert costs, and the same minus the root (the
	// cost of erasing/creating a node's child forest).
	delTree := make([]int64, n1)
	delForest := make([]int64, n1)
	for _, i := range post1 {
		var f int64
		for c := t1.Nodes[i].FirstChild; c != tree.None; c = t1.Nodes[c].NextSibling {
			f += delTree[c]
		}
		delForest[i] = f
		delTree[i] = f + int64(costs.Delete(t1.Nodes[i].Label))
	}
	insTree := make([]int64, n2)
	insForest := make([]int64, n2)
	for _, j := range post2 {
		var f int64
		for c := t2.Nodes[j].FirstChild; c != tree.None; c = t2.Nodes[c].NextSibling {
			f += insTree[c]
		}
		insForest[j] = f
		insTree[j] = f + int64(costs.Insert(t2.Nodes[j].Label))
	}

	dt := make([]int64, n1*n2) // D(i, j), indexed i*n2+j
	df := make([]int64, n1*n2) // F(i, j)
	// Scratch rows for the child-sequence alignment; grown on demand.
	var prev, cur []int64
	for _, i := range post1 {
		ci := t1.Children(i)
		for _, j := range post2 {
			cj := t2.Children(j)

			// A(i, j): align the child sequences.
			if len(cur) < len(cj)+1 {
				cur = make([]int64, len(cj)+1)
				prev = make([]int64, len(cj)+1)
			}
			prev[0] = 0
			for q, s := range cj {
				prev[q+1] = prev[q] + insTree[s]
			}
			for _, r := range ci {
				cur[0] = prev[0] + delTree[r]
				for q, s := range cj {
					best := prev[q] + dt[int(r)*n2+int(s)]
					if d := prev[q+1] + delTree[r]; d < best {
						best = d
					}
					if d := cur[q] + insTree[s]; d < best {
						best = d
					}
					cur[q+1] = best
				}
				prev, cur = cur, prev
			}
			f := prev[len(cj)]

			// F options (a)/(b): bury one forest inside a child of the other.
			for _, s := range cj {
				if d := insForest[j] - insForest[s] + df[int(i)*n2+int(s)]; d < f {
					f = d
				}
			}
			for _, r := range ci {
				if d := delForest[i] - delForest[r] + df[int(r)*n2+int(j)]; d < f {
					f = d
				}
			}
			df[int(i)*n2+int(j)] = f

			// D options.
			d := f + int64(costs.Rename(t1.Nodes[i].Label, t2.Nodes[j].Label))
			for _, s := range cj {
				if v := insTree[j] - insTree[s] + dt[int(i)*n2+int(s)]; v < d {
					d = v
				}
			}
			for _, r := range ci {
				if v := delTree[i] - delTree[r] + dt[int(r)*n2+int(j)]; v < d {
					d = v
				}
			}
			dt[int(i)*n2+int(j)] = d
		}
	}
	return dt[int(t1.Root())*n2+int(t2.Root())]
}
