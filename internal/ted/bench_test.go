package ted_test

import (
	"fmt"
	"testing"

	"treejoin/internal/synth"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// Micro-benchmarks of the TED substrate: the cubic verifier dominates every
// join method's verification phase, so its constants matter for all of
// Figures 10–14.

func benchPair(profile string, size int) (*tree.Tree, *tree.Tree) {
	var ts []*tree.Tree
	switch profile {
	case "flat":
		ts = synth.Generate(synth.Params{
			N: 2, AvgSize: size, MaxFanout: 12, MaxDepth: 4, Labels: 40,
			DepthBias: -0.3, Cluster: 1, Seed: 7})
	case "deep":
		ts = synth.Generate(synth.Params{
			N: 2, AvgSize: size, MaxFanout: 2, MaxDepth: 60, Labels: 5,
			DepthBias: 0.8, Cluster: 1, Seed: 7})
	default:
		ts = synth.Generate(synth.Params{
			N: 2, AvgSize: size, MaxFanout: 3, MaxDepth: 8, Labels: 20,
			DepthBias: 0, Cluster: 1, Seed: 7})
	}
	return ts[0], ts[1]
}

func BenchmarkZhangShasha(b *testing.B) {
	for _, profile := range []string{"flat", "deep", "mixed"} {
		for _, size := range []int{32, 64, 128} {
			t1, t2 := benchPair(profile, size)
			b.Run(fmt.Sprintf("%s/n=%d", profile, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ted.ZhangShasha(t1, t2)
				}
			})
		}
	}
}

func BenchmarkHybridStrategyChoice(b *testing.B) {
	// The hybrid should never be much slower than the better of the two
	// fixed strategies; compare on a left-deep shape where they diverge.
	t1, t2 := benchPair("deep", 96)
	b.Run("left", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ted.ZhangShasha(t1, t2)
		}
	})
	b.Run("right", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ted.ZhangShashaRight(t1, t2)
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ted.Distance(t1, t2)
		}
	})
}

func BenchmarkDistanceBounded(b *testing.B) {
	t1, t2 := benchPair("mixed", 80)
	for _, tau := range []int{1, 5} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ted.DistanceBounded(t1, t2, tau)
			}
		})
	}
}
