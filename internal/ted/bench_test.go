package ted_test

import (
	"fmt"
	"testing"

	"treejoin/internal/synth"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// Micro-benchmarks of the TED substrate: the cubic verifier dominates every
// join method's verification phase, so its constants matter for all of
// Figures 10–14.

func benchPair(profile string, size int) (*tree.Tree, *tree.Tree) {
	var ts []*tree.Tree
	switch profile {
	case "flat":
		ts = synth.Generate(synth.Params{
			N: 2, AvgSize: size, MaxFanout: 12, MaxDepth: 4, Labels: 40,
			DepthBias: -0.3, Cluster: 1, Seed: 7})
	case "deep":
		ts = synth.Generate(synth.Params{
			N: 2, AvgSize: size, MaxFanout: 2, MaxDepth: 60, Labels: 5,
			DepthBias: 0.8, Cluster: 1, Seed: 7})
	default:
		ts = synth.Generate(synth.Params{
			N: 2, AvgSize: size, MaxFanout: 3, MaxDepth: 8, Labels: 20,
			DepthBias: 0, Cluster: 1, Seed: 7})
	}
	return ts[0], ts[1]
}

func BenchmarkZhangShasha(b *testing.B) {
	for _, profile := range []string{"flat", "deep", "mixed"} {
		for _, size := range []int{32, 64, 128} {
			t1, t2 := benchPair(profile, size)
			b.Run(fmt.Sprintf("%s/n=%d", profile, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ted.ZhangShasha(t1, t2)
				}
			})
		}
	}
}

func BenchmarkHybridStrategyChoice(b *testing.B) {
	// The hybrid should never be much slower than the better of the two
	// fixed strategies; compare on a left-deep shape where they diverge.
	t1, t2 := benchPair("deep", 96)
	b.Run("left", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ted.ZhangShasha(t1, t2)
		}
	})
	b.Run("right", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ted.ZhangShashaRight(t1, t2)
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ted.Distance(t1, t2)
		}
	})
}

func BenchmarkDistanceBounded(b *testing.B) {
	t1, t2 := benchPair("mixed", 80)
	for _, tau := range []int{1, 5} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ted.DistanceBounded(t1, t2, tau)
			}
		})
	}
}

// verifyWorkload builds the verification benchmark's candidate stream: a
// clustered collection (near-duplicates plus cross-cluster pairs — the mix a
// subgraph or signature filter hands the verifier) with preparations built
// once, as a warm corpus join would have them, and every unordered pair as a
// candidate.
func verifyWorkload() ([]*ted.Prep, [][2]int) {
	ts := synth.Generate(synth.Params{
		N: 24, AvgSize: 56, MaxFanout: 4, MaxDepth: 10, Labels: 16,
		DepthBias: 0.1, Cluster: 4, Decay: 0.04, Seed: 17,
	})
	preps := make([]*ted.Prep, len(ts))
	for i, t := range ts {
		preps[i] = ted.NewPrep(t)
	}
	var pairs [][2]int
	for i := range ts {
		for j := i + 1; j < len(ts); j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	return preps, pairs
}

// BenchmarkVerifyFull is the pre-banding verifier (size lower bound + full
// Zhang–Shasha DP) over the candidate stream: the baseline the τ-banded
// verifier is measured against in BENCH_verify.json.
func BenchmarkVerifyFull(b *testing.B) {
	preps, pairs := verifyWorkload()
	for _, tau := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					ted.DistanceBoundedPrepFull(preps[p[0]], preps[p[1]], tau)
				}
			}
		})
	}
}

// BenchmarkVerifyBanded is the threshold-aware verifier (lower bounds,
// keyroot skipping, τ-banded DP with early termination, pooled scratch) over
// the same candidate stream. Allocations per op should stay near zero.
func BenchmarkVerifyBanded(b *testing.B) {
	preps, pairs := verifyWorkload()
	for _, tau := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			b.ReportAllocs()
			var tc ted.Counters
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					ted.DistanceBoundedPrep(preps[p[0]], preps[p[1]], tau, &tc)
				}
			}
		})
	}
}

// arenaWorkload is verifyWorkload flattened into arena views: the same trees
// and candidate pairs, prepared the way a warm engine join holds them.
func arenaWorkload() ([]*ted.TreeView, [][2]int) {
	preps, pairs := verifyWorkload()
	ts := make([]*tree.Tree, len(preps))
	for i, p := range preps {
		ts[i] = p.Tree()
	}
	return ted.BuildViews(ts), pairs
}

// BenchmarkVerifyArena is the strategy-driven arena verifier (struct-of-arrays
// views, band-compacted int16 DP, per-batch scratch) over the identical
// candidate stream as BenchmarkVerifyFull/Banded — the ≥3× acceptance gate of
// BENCH_verify.json compares it to BenchmarkVerifyBanded at each τ.
func BenchmarkVerifyArena(b *testing.B) {
	views, pairs := arenaWorkload()
	for _, tau := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			b.ReportAllocs()
			var tc ted.Counters
			s := ted.AcquireScratch()
			defer ted.ReleaseScratch(s)
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					ted.DistanceBoundedView(views[p[0]], views[p[1]], tau, s, &tc)
				}
			}
		})
	}
}

// BenchmarkVerifyArenaStrategy ablates the per-pair decomposition choice at a
// fixed τ: forced-left, forced-right, and the strategy-driven pick. The pick
// should track the better forced direction within noise.
func BenchmarkVerifyArenaStrategy(b *testing.B) {
	views, pairs := arenaWorkload()
	const tau = 4
	for _, mode := range []struct {
		name string
		dec  ted.Decomp
	}{{"left", ted.DecompLeft}, {"right", ted.DecompRight}, {"auto", ted.DecompAuto}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			s := ted.AcquireScratch()
			defer ted.ReleaseScratch(s)
			for i := 0; i < b.N; i++ {
				for _, p := range pairs {
					ted.DistanceBoundedViewDecomp(views[p[0]], views[p[1]], tau, mode.dec, s, nil)
				}
			}
		})
	}
}
