// Package lcrs provides the left-child right-sibling (Knuth) binary view of a
// general rooted ordered labeled tree, together with the binary postorder
// numbering that the PartSJ index keys on.
//
// A tree.Tree already stores FirstChild/NextSibling links, so the binary view
// needs no structural transformation: the binary left child of a node is its
// first child and the binary right child is its next sibling. What this
// package adds is the binary-tree traversal order (which differs from the
// general tree's orders) and convenience accessors phrased in binary terms.
package lcrs

import "treejoin/internal/tree"

// None re-exports tree.None for readability at call sites.
const None = tree.None

// Bin is the binary (LC-RS) view of a general tree. It is immutable after
// Build and safe for concurrent use.
type Bin struct {
	Tree *tree.Tree
	// Order lists node ids in binary postorder (left subtree, right
	// subtree, node).
	Order []int32
	// Rank is the inverse of Order: Rank[n] is node n's 0-based binary
	// postorder rank. The paper's 1-based postorder identifier of n is
	// Rank[n]+1.
	Rank []int32
	// GenRank[n] is node n's 0-based rank in the *general* tree's postorder.
	// Unlike the binary postorder, the general postorder of surviving nodes
	// is stable under node edit operations, which makes it the only safe
	// basis for the join's positional index keys (see internal/core).
	GenRank []int32
}

// Build computes the binary view of t.
func Build(t *tree.Tree) *Bin {
	n := t.Size()
	b := &Bin{
		Tree:    t,
		Order:   make([]int32, 0, n),
		Rank:    make([]int32, n),
		GenRank: make([]int32, n),
	}
	for i, v := range tree.Postorder(t) {
		b.GenRank[v] = int32(i)
	}
	// Iterative binary postorder; trees can be deep chains, so no recursion.
	type frame struct {
		node  int32
		stage int8 // 0 = visit left, 1 = visit right, 2 = emit
	}
	stack := make([]frame, 0, 32)
	stack = append(stack, frame{t.Root(), 0})
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		switch top.stage {
		case 0:
			top.stage = 1
			if l := b.Left(top.node); l != None {
				stack = append(stack, frame{l, 0})
			}
		case 1:
			top.stage = 2
			if r := b.Right(top.node); r != None {
				stack = append(stack, frame{r, 0})
			}
		default:
			b.Rank[top.node] = int32(len(b.Order))
			b.Order = append(b.Order, top.node)
			stack = stack[:len(stack)-1]
		}
	}
	return b
}

// Size returns the number of nodes.
func (b *Bin) Size() int { return len(b.Order) }

// Left returns the binary left child of n (the general tree's first child).
func (b *Bin) Left(n int32) int32 { return b.Tree.Nodes[n].FirstChild }

// Right returns the binary right child of n (the general tree's next
// sibling).
func (b *Bin) Right(n int32) int32 { return b.Tree.Nodes[n].NextSibling }

// Label returns the interned label id of n.
func (b *Bin) Label(n int32) int32 { return b.Tree.Nodes[n].Label }

// Parent returns the binary parent of n: the node whose left or right pointer
// targets n. In LC-RS terms that is the general-tree parent when n is a first
// child, and the previous sibling otherwise.
func (b *Bin) Parent(n int32) int32 {
	nd := b.Tree.Nodes[n]
	if nd.Parent == None {
		return None
	}
	if b.Tree.Nodes[nd.Parent].FirstChild == n {
		return nd.Parent
	}
	// Walk the sibling chain to find the predecessor.
	for c := b.Tree.Nodes[nd.Parent].FirstChild; c != None; c = b.Tree.Nodes[c].NextSibling {
		if b.Tree.Nodes[c].NextSibling == n {
			return c
		}
	}
	return None
}

// SubtreeSizes returns the size of the binary subtree rooted at each node,
// indexed by node id. Binary subtree sizes differ from general subtree sizes:
// a node's binary subtree also contains its right siblings and their
// descendants.
func (b *Bin) SubtreeSizes() []int32 {
	sz := make([]int32, b.Size())
	for _, n := range b.Order { // children precede parents in binary postorder
		sz[n] = 1
		if l := b.Left(n); l != None {
			sz[n] += sz[l]
		}
		if r := b.Right(n); r != None {
			sz[n] += sz[r]
		}
	}
	return sz
}
