package lcrs_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/lcrs"
	"treejoin/internal/tree"
)

func randomTree(rng *rand.Rand, maxN int, labels *tree.LabelTable) *tree.Tree {
	if labels == nil {
		labels = tree.NewLabelTable()
	}
	n := 1 + rng.Intn(maxN)
	b := tree.NewBuilder(labels)
	b.Root("r")
	for i := 1; i < n; i++ {
		b.Child(int32(rng.Intn(i)), string(rune('a'+rng.Intn(4))))
	}
	return b.MustBuild()
}

// TestFigure4 checks the Knuth transformation against the paper's Figure 4:
// the general tree l1(l2(l3,l4,l5), l6, l7(l8(l9,l10))) maps to the binary
// tree where l2's left child is l3, l3's right child is l4, etc.
func TestFigure4(t *testing.T) {
	lt := tree.NewLabelTable()
	g := tree.MustParseBracket("{l1{l2{l3}{l4}{l5}}{l6}{l7{l8{l9}{l10}}}}", lt)
	b := lcrs.Build(g)
	byLabel := func(name string) int32 {
		for id := range g.Nodes {
			if g.Label(int32(id)) == name {
				return int32(id)
			}
		}
		t.Fatalf("label %s missing", name)
		return -1
	}
	lbl := func(n int32) string {
		if n == lcrs.None {
			return "ε"
		}
		return g.Label(n)
	}
	// Expected binary structure from Figure 4(b).
	wantLeft := map[string]string{
		"l1": "l2", "l2": "l3", "l3": "ε", "l4": "ε", "l5": "ε",
		"l6": "ε", "l7": "l8", "l8": "l9", "l9": "ε", "l10": "ε",
	}
	wantRight := map[string]string{
		"l1": "ε", "l2": "l6", "l3": "l4", "l4": "l5", "l5": "ε",
		"l6": "l7", "l7": "ε", "l8": "ε", "l9": "l10", "l10": "ε",
	}
	for name, wl := range wantLeft {
		if got := lbl(b.Left(byLabel(name))); got != wl {
			t.Errorf("Left(%s) = %s, want %s", name, got, wl)
		}
	}
	for name, wr := range wantRight {
		if got := lbl(b.Right(byLabel(name))); got != wr {
			t.Errorf("Right(%s) = %s, want %s", name, got, wr)
		}
	}
}

func TestBinaryPostorderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		g := randomTree(rng, 80, nil)
		b := lcrs.Build(g)
		if b.Size() != g.Size() {
			t.Fatalf("size mismatch")
		}
		// Order and Rank are inverse permutations.
		for r, n := range b.Order {
			if b.Rank[n] != int32(r) {
				t.Fatalf("Rank/Order inconsistent at %d", r)
			}
		}
		// The root is last in binary postorder.
		if b.Order[len(b.Order)-1] != g.Root() {
			t.Fatalf("root not last in binary postorder")
		}
		// Binary children precede their binary parent.
		for id := range g.Nodes {
			n := int32(id)
			if l := b.Left(n); l != lcrs.None && b.Rank[l] >= b.Rank[n] {
				t.Fatalf("left child ranked after parent")
			}
			if r := b.Right(n); r != lcrs.None && b.Rank[r] >= b.Rank[n] {
				t.Fatalf("right child ranked after parent")
			}
		}
	}
}

func TestBinaryParent(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 100; i++ {
		g := randomTree(rng, 60, nil)
		b := lcrs.Build(g)
		for id := range g.Nodes {
			n := int32(id)
			if l := b.Left(n); l != lcrs.None && b.Parent(l) != n {
				t.Fatalf("Parent(Left(%d)) = %d", n, b.Parent(l))
			}
			if r := b.Right(n); r != lcrs.None && b.Parent(r) != n {
				t.Fatalf("Parent(Right(%d)) = %d", n, b.Parent(r))
			}
		}
		if b.Parent(g.Root()) != lcrs.None {
			t.Fatal("root has a binary parent")
		}
	}
}

func TestBinarySubtreeSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 100; i++ {
		g := randomTree(rng, 60, nil)
		b := lcrs.Build(g)
		sz := b.SubtreeSizes()
		if sz[g.Root()] != int32(g.Size()) {
			t.Fatalf("root binary subtree = %d, want %d", sz[g.Root()], g.Size())
		}
		for id := range g.Nodes {
			n := int32(id)
			want := int32(1)
			if l := b.Left(n); l != lcrs.None {
				want += sz[l]
			}
			if r := b.Right(n); r != lcrs.None {
				want += sz[r]
			}
			if sz[n] != want {
				t.Fatalf("size[%d] = %d, want %d", n, sz[n], want)
			}
		}
	}
}

func TestDeepChainNoOverflow(t *testing.T) {
	// A 100k-deep chain exercises the iterative traversal.
	b := tree.NewBuilder(nil)
	cur := b.Root("a")
	for i := 0; i < 100000; i++ {
		cur = b.Child(cur, "a")
	}
	g := b.MustBuild()
	bin := lcrs.Build(g)
	if bin.Size() != g.Size() {
		t.Fatal("size mismatch")
	}
}
