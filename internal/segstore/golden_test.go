package segstore

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"treejoin/internal/engine"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenFixture builds a small deterministic store image: three distinct
// trees (one added twice, exercising dedup), a token-bag kind, and one
// tombstone in the manifest. Any byte-level change to the segment or manifest
// encodings is a format break and must bump the version byte.
func goldenFixture(t *testing.T) (lt *tree.LabelTable, blocks []*block, entries []segEntry, bags map[string][][]engine.BagEntry, m *manifest) {
	t.Helper()
	lt = tree.NewLabelTable()
	mk := func(build func(b *tree.Builder)) *tree.Tree {
		b := tree.NewBuilder(lt)
		build(b)
		return b.MustBuild()
	}
	t1 := mk(func(b *tree.Builder) {
		r := b.Root("article")
		a := b.Child(r, "author")
		b.Child(a, "name")
		b.Child(r, "title")
	})
	t2 := mk(func(b *tree.Builder) {
		r := b.Root("article")
		b.Child(r, "title")
	})
	t3 := mk(func(b *tree.Builder) {
		b.Root("note")
	})
	views := ted.BuildViews([]*tree.Tree{t1, t2, t3})
	b1, b2, b3 := newBlock(t1, views[0]), newBlock(t2, views[1]), newBlock(t3, views[2])
	blocks = []*block{b1, b2, b3}
	// Entry 2 reuses block 0: the duplicate-content case.
	entries = []segEntry{{id: 3, blk: 0}, {id: 5, blk: 1}, {id: 8, blk: 0}, {id: 12, blk: 2}}
	bags = map[string][][]engine.BagEntry{
		"tokidx/test": {
			{{Key: 1, Count: 2}, {Key: 7, Count: 1}},
			{{Key: 1, Count: 1}},
			{{Key: 42, Count: 3}},
		},
	}
	m = &manifest{
		nextID: 13,
		lt:     lt,
		segs: []manifestSeg{
			{name: "seg-000001.tjsg", nEntries: 4, tombs: []int32{1}},
		},
	}
	return lt, blocks, entries, bags, m
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: encoding drifted from golden bytes (len %d, want %d); "+
			"a deliberate format change must bump the version byte and regenerate with -update",
			name, len(got), len(want))
	}
}

func TestSegmentGolden(t *testing.T) {
	lt, blocks, entries, bags, _ := goldenFixture(t)
	var buf bytes.Buffer
	if err := encodeSegment(&buf, lt, blocks, entries, bags); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_segment.tjsg", buf.Bytes())

	// The pinned bytes must round-trip through the real decoder.
	lt2 := tree.NewLabelTable()
	for i := 0; i < lt.Len(); i++ {
		lt2.Intern(lt.Name(int32(i)))
	}
	blocks2, entries2, err := decodeSegment(buf.Bytes(), lt2)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks2) != len(blocks) || len(entries2) != len(entries) {
		t.Fatalf("round trip: %d blocks / %d entries, want %d / %d",
			len(blocks2), len(entries2), len(blocks), len(entries))
	}
	for i, e := range entries2 {
		if e.id != entries[i].id || e.blk != entries[i].blk {
			t.Fatalf("entry %d: got %+v want %+v", i, e, entries[i])
		}
	}
	for i, b := range blocks2 {
		if !tree.Equal(b.t, blocks[i].t) {
			t.Fatalf("block %d: tree mismatch after round trip", i)
		}
		if b.hash != blocks[i].hash {
			t.Fatalf("block %d: hash mismatch after round trip", i)
		}
		got := b.bags["tokidx/test"]
		want := bags["tokidx/test"][i]
		if len(got) != len(want) {
			t.Fatalf("block %d: bag length %d want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("block %d bag entry %d: got %+v want %+v", i, j, got[j], want[j])
			}
		}
	}
}

func TestManifestGolden(t *testing.T) {
	_, _, _, _, m := goldenFixture(t)
	tmp := filepath.Join(t.TempDir(), manifestName)
	if err := writeManifestTo(osFS{}, tmp, m, true); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_manifest.tjmf", got)

	m2, err := readManifest(osFS{}, tmp)
	if err != nil {
		t.Fatal(err)
	}
	if m2.nextID != m.nextID || m2.lt.Len() != m.lt.Len() || len(m2.segs) != len(m.segs) {
		t.Fatalf("round trip: %+v", m2)
	}
	s, s2 := m.segs[0], m2.segs[0]
	if s2.name != s.name || s2.nEntries != s.nEntries || len(s2.tombs) != 1 || s2.tombs[0] != 1 {
		t.Fatalf("round trip segment: %+v want %+v", s2, s)
	}
}
