package segstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"treejoin/internal/tree"
)

// The crash-recovery property: interrupt a random mutation history at any
// point — including a torn WAL tail — and a reopened store equals the fresh
// in-memory model after some prefix of the operations. Nothing is ever lost
// past a committed boundary, nothing doubles, nothing is resurrected.

// modelState is the oracle's live set after a prefix of operations.
type modelState struct {
	ids   []int64
	trees []*tree.Tree
}

func (m modelState) clone() modelState {
	return modelState{
		ids:   append([]int64(nil), m.ids...),
		trees: append([]*tree.Tree(nil), m.trees...),
	}
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		data, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// matchesSomePrefix reports whether the reopened live set equals one of the
// recorded prefix states.
func matchesSomePrefix(live []LiveTree, states []modelState) bool {
outer:
	for _, st := range states {
		if len(st.ids) != len(live) {
			continue
		}
		for i, lv := range live {
			if lv.ID != st.ids[i] || !tree.Equal(lv.Tree, st.trees[i]) {
				continue outer
			}
		}
		return true
	}
	return false
}

func TestCrashRecoveryProperty(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		dir := t.TempDir()
		s, err := Create(dir, nil, Options{
			MemtableBudget: 3, CompactMinDead: 2, NoBackground: true, NoSync: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		model := modelState{}
		states := []modelState{model.clone()} // the empty prefix
		for op := 0; op < 40; op++ {
			if len(model.ids) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(model.ids))
				if err := s.Remove(model.ids[k]); err != nil {
					t.Fatalf("trial %d op %d: %v", trial, op, err)
				}
				model.ids = append(model.ids[:k], model.ids[k+1:]...)
				model.trees = append(model.trees[:k], model.trees[k+1:]...)
			} else {
				tr := randTestTree(rng, s.Labels(), 10)
				id := s.NextID()
				if err := s.Add(id, tr); err != nil {
					t.Fatalf("trial %d op %d: %v", trial, op, err)
				}
				model.ids = append(model.ids, id)
				model.trees = append(model.trees, tr)
			}
			states = append(states, model.clone())
		}
		// Abandon without Close — the store dies here. Crash images: the
		// directory as-is, and with the WAL torn at arbitrary byte offsets.
		walPath := filepath.Join(dir, walName)
		walData, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		cuts := []int{len(walData)} // uncut first
		for i := 0; i < 8; i++ {
			cuts = append(cuts, rng.Intn(len(walData)+1))
		}
		for _, cut := range cuts {
			crashDir := copyDir(t, dir)
			if err := os.Truncate(filepath.Join(crashDir, walName), int64(cut)); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(crashDir, testOpts())
			if err != nil {
				t.Fatalf("trial %d cut %d/%d: reopen: %v", trial, cut, len(walData), err)
			}
			live := s2.Live()
			if !matchesSomePrefix(live, states) {
				t.Fatalf("trial %d cut %d/%d: reopened state (%d live) matches no prefix",
					trial, cut, len(walData), len(live))
			}
			if cut == len(walData) && len(live) != len(model.ids) {
				t.Fatalf("trial %d: untorn reopen lost operations: %d live, want %d",
					trial, len(live), len(model.ids))
			}
			s2.Close()
		}
	}
}

// TestPowerCutMultiFileCommit cuts power at every filesystem operation of one
// memtable flush — a commit spanning three files (segment write, manifest
// tmp+rename, WAL rewrite tmp+rename) plus the directory fsyncs between them.
// Unlike the WAL-tail cuts above, these crash images can hold any interleaving
// of the commit's files: segment without manifest, new manifest with stale
// WAL, torn halves of each. Every image must reopen to either the pre-flush
// or the post-flush state; once the triggering Add was acknowledged, sync-on
// durability demands exactly the post state.
func TestPowerCutMultiFileCommit(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for cut := 0; ; cut++ {
		fs := newErrFS()
		s, err := Create("store", nil, Options{MemtableBudget: 3, NoBackground: true, FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		// Two acknowledged trees below budget; the third add flushes.
		setup := rand.New(rand.NewSource(77))
		model := modelState{}
		for i := 0; i < 2; i++ {
			tr := randTestTree(setup, s.Labels(), 8)
			id := s.NextID()
			if err := s.Add(id, tr); err != nil {
				t.Fatal(err)
			}
			model.ids = append(model.ids, id)
			model.trees = append(model.trees, tr)
		}
		pre := model.clone()
		fs.arm(fPowerCut, cut)
		tr := randTestTree(rng, s.Labels(), 8)
		id := s.NextID()
		err = s.Add(id, tr)
		post := model.clone()
		post.ids = append(post.ids, id)
		post.trees = append(post.trees, tr)
		allowed := []modelState{pre, post}
		if err == nil && fs.cutHit() {
			// Acknowledged before the cut landed in the flush: the add is
			// durable, only the post state is acceptable.
			allowed = []modelState{post}
		}
		for _, frac := range []float64{0, 0.5, 1} {
			img := fs.crashImage(frac)
			s2, err := Open("store", Options{MemtableBudget: 3, NoBackground: true, FS: img})
			if err != nil {
				t.Fatalf("cut@%d frac %v: reopen: %v", cut, frac, err)
			}
			if !matchesSomePrefix(s2.Live(), allowed) {
				t.Fatalf("cut@%d frac %v: crash image (%d live) is neither pre- nor post-flush",
					cut, frac, len(s2.Live()))
			}
			if err := s2.Close(); err != nil {
				t.Fatalf("cut@%d frac %v: close: %v", cut, frac, err)
			}
		}
		if !fs.cutHit() {
			// The cut index ran past the whole commit: every operation of the
			// multi-file window has been swept.
			if cut < 10 {
				t.Fatalf("flush commit spanned only %d operations", cut)
			}
			break
		}
	}
}

// TestStaleWALWindow pins the commit protocol's crash window directly: the
// manifest renamed, the WAL not yet rewritten. Replay must skip every record
// the manifest already reflects and lose nothing.
func TestStaleWALWindow(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(55))
	s, err := Create(dir, nil, Options{MemtableBudget: 100, NoBackground: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	var trees []*tree.Tree
	for i := 0; i < 5; i++ {
		tr := randTestTree(rng, s.Labels(), 8)
		id := s.NextID()
		if err := s.Add(id, tr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		trees = append(trees, tr)
	}
	if err := s.Remove(ids[1]); err != nil {
		t.Fatal(err)
	}
	ids = append(ids[:1], ids[2:]...)
	trees = append(trees[:1], trees[2:]...)

	walPath := filepath.Join(dir, walName)
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // manifest now ahead of the stale WAL
		t.Fatal(err)
	}
	// Crash in the window: restore the pre-flush WAL over the rewritten one.
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkLive(t, s2, ids, trees)
	if st := s2.Stats(); st.MemtableTrees != 0 {
		t.Fatalf("stale 'A' records doubled into the memtable: %+v", st)
	}
}
