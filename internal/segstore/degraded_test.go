package segstore

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDegradedENOSPC walks the whole degraded-mode contract on a disk that
// fills up: the failed commit leaves committed state untouched, mutations
// return ErrDegraded while reads keep serving, and the store resumes
// seamlessly once space frees.
func TestDegradedENOSPC(t *testing.T) {
	fs := newErrFS()
	s, err := Create(sweepDir, nil, Options{MemtableBudget: 100, NoBackground: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	// Committed baseline: two trees flushed into a segment.
	var ids []int64
	for i := 0; i < 2; i++ {
		id := s.NextID()
		if err := s.Add(id, chainTree(s.Labels(), 3+i)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// One more tree in the memtable, then the disk fills.
	id3 := s.NextID()
	if err := s.Add(id3, chainTree(s.Labels(), 9)); err != nil {
		t.Fatal(err)
	}
	fs.setSticky(true)
	if err := s.Flush(); err == nil {
		t.Fatal("flush on a full disk reported success")
	}
	st := s.Stats()
	if !st.Degraded {
		t.Fatal("failed flush did not degrade the store")
	}
	if !strings.Contains(st.DegradedReason, "no space") {
		t.Fatalf("degraded reason %q does not name the cause", st.DegradedReason)
	}
	// Mutations are rejected with ErrDegraded; reads still serve everything
	// acknowledged, memtable included.
	if err := s.Add(s.NextID(), chainTree(s.Labels(), 4)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Add while degraded: %v, want ErrDegraded", err)
	}
	if err := s.Remove(ids[0]); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Remove while degraded: %v, want ErrDegraded", err)
	}
	if live := s.Live(); len(live) != 3 {
		t.Fatalf("reads while degraded: %d live, want 3", len(live))
	}
	// Retrying while the disk is still full stays degraded.
	if err := s.Flush(); err == nil {
		t.Fatal("recovery succeeded while the disk is still full")
	}
	if st := s.Stats(); st.RecoveryAttempts == 0 {
		t.Fatal("recovery attempts not counted")
	}
	// Space frees: recovery commits, the store resumes, everything survives
	// a reopen.
	fs.setSticky(false)
	if err := s.Flush(); err != nil {
		t.Fatalf("recovery after space freed: %v", err)
	}
	if st := s.Stats(); st.Degraded {
		t.Fatal("store still degraded after successful recovery")
	}
	id4 := s.NextID()
	if err := s.Add(id4, chainTree(s.Labels(), 5)); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(sweepDir, Options{NoBackground: true, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if live := s2.Live(); len(live) != 4 {
		t.Fatalf("reopen after recovery: %d live, want 4", len(live))
	}
}

// TestDegradedBackgroundRetry exercises the background half: a degraded store
// with the retry loop enabled recovers on its own once the fault clears, with
// no explicit Flush from the caller.
func TestDegradedBackgroundRetry(t *testing.T) {
	fs := newErrFS()
	s, err := Create(sweepDir, nil, Options{
		MemtableBudget: 100, FS: fs,
		retryBase: time.Millisecond, retryMax: 8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Add(s.NextID(), chainTree(s.Labels(), 4)); err != nil {
		t.Fatal(err)
	}
	fs.setSticky(true)
	if err := s.Flush(); err == nil {
		t.Fatal("flush on a full disk reported success")
	}
	if !s.Stats().Degraded {
		t.Fatal("failed flush did not degrade the store")
	}
	// Let a few doomed retries happen, then free space and wait for the
	// backoff loop to notice.
	time.Sleep(5 * time.Millisecond)
	fs.setSticky(false)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Degraded {
		if time.Now().After(deadline) {
			t.Fatal("background retry never recovered the store")
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.RecoveryAttempts == 0 {
		t.Fatal("recovery attempts not counted")
	}
	if err := s.Add(s.NextID(), chainTree(s.Labels(), 5)); err != nil {
		t.Fatalf("write after background recovery: %v", err)
	}
}

// TestDegradedRetryJitterPinned: the retry loop's jitter source is injected
// through Options, so a fault sweep can pin it and observe a fully
// deterministic backoff schedule — each delay is exactly backoff/2 with the
// jitter pinned to zero, and backoff doubles from retryBase up to retryMax.
func TestDegradedRetryJitterPinned(t *testing.T) {
	fs := newErrFS()
	var mu sync.Mutex
	var draws []time.Duration
	s, err := Create(sweepDir, nil, Options{
		MemtableBudget: 100, FS: fs,
		retryBase: time.Millisecond, retryMax: 8 * time.Millisecond,
		retryJitter: func(max time.Duration) time.Duration {
			mu.Lock()
			draws = append(draws, max)
			mu.Unlock()
			return 0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Add(s.NextID(), chainTree(s.Labels(), 4)); err != nil {
		t.Fatal(err)
	}
	fs.setSticky(true)
	if err := s.Flush(); err == nil {
		t.Fatal("flush on a full disk reported success")
	}
	// Wait until at least five doomed retries have drawn jitter, then let
	// the next one succeed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(draws)
		mu.Unlock()
		if n >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retry loop never drew jitter")
		}
		time.Sleep(time.Millisecond)
	}
	fs.setSticky(false)
	for s.Stats().Degraded {
		if time.Now().After(deadline) {
			t.Fatal("background retry never recovered the store")
		}
		time.Sleep(time.Millisecond)
	}
	// The draws record each delay's max = backoff/2, and with the pinned
	// source the schedule is exactly the doubling sequence, no randomness.
	mu.Lock()
	defer mu.Unlock()
	backoff := time.Millisecond
	for i, got := range draws[:5] {
		if want := backoff / 2; got != want {
			t.Fatalf("draw %d: max %v, want %v (deterministic schedule)", i, got, want)
		}
		if backoff < 8*time.Millisecond {
			backoff *= 2
			if backoff > 8*time.Millisecond {
				backoff = 8 * time.Millisecond
			}
		}
	}
}
