package segstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"treejoin/internal/engine"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// Segment file (TJSG, version 1). All integers unsigned varints unless
// noted; everything after the magic feeds the trailing CRC:
//
//	magic    "TJSG" (4 bytes), version byte
//	labelLimit — the label-table length at write time; block labels are < it
//	blockCount, then per block:
//	    nodeCount, preorder (labelID, childCount) per node,
//	    costL, costR — the strategy costs of the arena view,
//	    cellCount (must equal 9n + 4·leaves), cells as int32 LE,
//	    sha256 content address (32 bytes) over the canonical block form
//	entryCount, then per entry: id (delta, first absolute; strictly
//	    ascending), blockIdx
//	kindCount, then per kind in ascending name order:
//	    name, tokenCount, then per token in ascending key order:
//	        key (delta, first absolute), postingCount, then per posting in
//	        ascending block order: blockIdx (delta, first absolute), count
//	crc32 IEEE LE (4 bytes)
//
// Blocks are the distinct tree contents; entries map corpus ids onto them
// (several entries may share a block — that is the dedup). The token section
// is the inverted form of the per-block bags: reading it back in ascending
// key order reconstructs every block's bag already sorted. A kind appears
// only when it covers every block of the segment, so presence means a
// reopened corpus re-tokenises nothing for it.
//
// The per-block sha256 is the content address: computed at write time over
// the canonical form (preorder stream, costs, cells), it is what makes dedup
// sound — equal addresses mean equal content, short of a sha256 collision.
// Integrity on the read path comes from the file-wide CRC trailer (verified
// in one bulk pass before parsing), which covers the stored addresses too,
// so the decoder trusts them instead of re-hashing every block; the cells
// additionally pass ted.ViewFromCells' structural validation before any
// kernel touches them. (TestSegmentGolden re-derives the addresses, pinning
// the hash function itself.)

var segMagic = [4]byte{'T', 'J', 'S', 'G'}

const segVersion = 1

// block is one distinct tree content: the decoded tree, its arena view, its
// content address, and the per-kind token bags persisted with it. Blocks are
// shared — across entries of a segment, across segments (the store keeps one
// canonical block per hash), and with the corpus cache.
type block struct {
	hash [32]byte
	t    *tree.Tree
	view *ted.TreeView
	bags map[string][]engine.BagEntry // kind → sorted entries; presence = persisted
}

// segEntry maps one corpus id onto a block of its segment.
type segEntry struct {
	id  int64
	blk int32
}

// hashBlock computes a tree's content address: sha256 over the canonical
// form — the preorder (label, childCount) stream, the strategy costs, and
// the arena cells. BuildViews is deterministic, so the address is a pure
// function of the tree content (equal trees collide, unequal trees do not,
// short of a sha256 collision), and covering the cells makes the address
// double as the block's integrity check.
func hashBlock(t *tree.Tree, v *ted.TreeView, cells []int32) [32]byte {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	wu := func(x uint64) {
		n := binary.PutUvarint(buf[:], x)
		h.Write(buf[:n])
	}
	wu(uint64(t.Size()))
	for _, n := range tree.Preorder(t) {
		wu(uint64(t.Nodes[n].Label))
		var fan uint64
		for c := t.Nodes[n].FirstChild; c != tree.None; c = t.Nodes[c].NextSibling {
			fan++
		}
		wu(fan)
	}
	wu(uint64(v.CostL))
	wu(uint64(v.CostR))
	wu(uint64(len(cells)))
	var cb [4]byte
	for _, c := range cells {
		binary.LittleEndian.PutUint32(cb[:], uint32(c))
		h.Write(cb[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// newBlock builds the block of one tree: view, flattened cells, address.
func newBlock(t *tree.Tree, v *ted.TreeView) *block {
	cells := ted.AppendViewCells(make([]int32, 0, ted.ViewCellCount(t.Size(), ted.Leaves(t))), v)
	return &block{hash: hashBlock(t, v, cells), t: t, view: v}
}

// writeTreeStream encodes t's preorder (label, childCount) stream — the
// canonical tree encoding shared by segments, the WAL, and the content hash.
func writeTreeStream(c *cw, t *tree.Tree) {
	c.u(uint64(t.Size()))
	for _, n := range tree.Preorder(t) {
		c.u(uint64(t.Nodes[n].Label))
		var fan uint64
		for ch := t.Nodes[n].FirstChild; ch != tree.None; ch = t.Nodes[ch].NextSibling {
			fan++
		}
		c.u(fan)
	}
}

// readTreeStream reconstructs one tree from its preorder stream, exactly the
// dataset package's stack pass: labels must be interned below labelLimit.
func readTreeStream(d *sd, lt *tree.LabelTable, labelLimit uint64) *tree.Tree {
	n := d.u(maxTreeNodes, "tree size")
	if d.err != nil {
		return nil
	}
	if n == 0 {
		d.bad("empty tree")
		return nil
	}
	b := tree.NewBuilder(lt)
	type frame struct {
		id      int32
		pending uint64
	}
	var stack []frame
	for i := uint64(0); i < n; i++ {
		label := d.u(labelLimit, "label id")
		fan := d.u(n, "child count")
		if d.err != nil {
			return nil
		}
		if label >= labelLimit {
			d.bad("node %d: label id %d out of range", i, label)
			return nil
		}
		var id int32
		if len(stack) == 0 {
			if i != 0 {
				d.bad("node %d after the root completed", i)
				return nil
			}
			id = b.RootID(int32(label))
		} else {
			top := &stack[len(stack)-1]
			id = b.ChildID(top.id, int32(label))
			top.pending--
		}
		if fan > 0 {
			stack = append(stack, frame{id: id, pending: fan})
		}
		for len(stack) > 0 && stack[len(stack)-1].pending == 0 {
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		d.bad("%d nodes missing", len(stack))
		return nil
	}
	t, err := b.Build()
	if err != nil {
		d.bad("invalid tree: %v", err)
		return nil
	}
	return t
}

// encodeSegment writes the segment of (blocks, entries) to w. bags maps each
// persisted kind to one bag per block (index-aligned with blocks); only
// kinds covering every block belong here. Deterministic: byte-identical
// output for identical logical content, which is what pins content
// addresses and makes the golden test meaningful.
func encodeSegment(w *bytes.Buffer, lt *tree.LabelTable, blocks []*block, entries []segEntry, bags map[string][][]engine.BagEntry) error {
	c := newCW(w, segMagic, segVersion)
	c.u(uint64(lt.Len()))
	c.u(uint64(len(blocks)))
	var cellBuf []int32
	var cb [4]byte
	for _, b := range blocks {
		writeTreeStream(c, b.t)
		c.u(uint64(b.view.CostL))
		c.u(uint64(b.view.CostR))
		cellBuf = ted.AppendViewCells(cellBuf[:0], b.view)
		c.u(uint64(len(cellBuf)))
		for _, cell := range cellBuf {
			binary.LittleEndian.PutUint32(cb[:], uint32(cell))
			c.raw(cb[:])
		}
		c.raw(b.hash[:])
	}
	c.u(uint64(len(entries)))
	prev := int64(0)
	for i, e := range entries {
		if i == 0 {
			c.u(uint64(e.id))
		} else {
			c.u(uint64(e.id - prev))
		}
		prev = e.id
		c.u(uint64(e.blk))
	}
	kinds := make([]string, 0, len(bags))
	for k := range bags {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	c.u(uint64(len(kinds)))
	for _, kind := range kinds {
		c.str(kind)
		// Invert the per-block bags into token postings, ascending by key.
		type post struct {
			blk   int32
			count int32
		}
		idx := make(map[uint64][]post)
		keys := make([]uint64, 0, 64)
		for bi, bag := range bags[kind] {
			for _, e := range bag {
				if _, ok := idx[e.Key]; !ok {
					keys = append(keys, e.Key)
				}
				idx[e.Key] = append(idx[e.Key], post{blk: int32(bi), count: e.Count})
			}
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		c.u(uint64(len(keys)))
		prevKey := uint64(0)
		for i, key := range keys {
			if i == 0 {
				c.u(key)
			} else {
				c.u(key - prevKey)
			}
			prevKey = key
			ps := idx[key]
			c.u(uint64(len(ps)))
			prevBlk := int32(0)
			for j, p := range ps {
				if j == 0 {
					c.u(uint64(p.blk))
				} else {
					c.u(uint64(p.blk - prevBlk))
				}
				prevBlk = p.blk
				c.u(uint64(p.count))
			}
		}
	}
	return c.finish()
}

// writeSegmentFile encodes to path and (unless noSync) fsyncs. The file
// becomes live only when a manifest referencing it commits; a crash before
// that leaves an orphan the next open removes.
func writeSegmentFile(fsys FS, path string, lt *tree.LabelTable, blocks []*block, entries []segEntry, bags map[string][][]engine.BagEntry, noSync bool) error {
	var buf bytes.Buffer
	if err := encodeSegment(&buf, lt, blocks, entries, bags); err != nil {
		return err
	}
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		_ = f.Close()
		return err
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
	}
	return f.Close()
}

// decodeSegment parses a segment from data. Labels must already be interned
// in lt (the manifest's table is decoded first); the bulk CRC is verified
// before parsing and every block's cells pass structural validation, so a
// returned block is safe for the verification kernel. Stored content
// addresses are trusted under the CRC (see the format comment); Scrub is the
// path that re-derives them.
func decodeSegment(data []byte, lt *tree.LabelTable) (blocks []*block, entries []segEntry, err error) {
	d := newSD(data, segMagic, segVersion, "segment")
	labelLimit := d.u(maxLabels, "label limit")
	if d.err == nil && labelLimit > uint64(lt.Len()) {
		d.bad("label limit %d exceeds table %d", labelLimit, lt.Len())
	}
	nBlocks := d.u(maxBlocks, "block count")
	if d.err != nil {
		return nil, nil, d.err
	}
	blocks = make([]*block, 0, min64(nBlocks, 1<<14))
	var hash [32]byte
	for bi := uint64(0); bi < nBlocks; bi++ {
		t := readTreeStream(d, lt, labelLimit)
		costL := d.u(maxCost, "left cost")
		costR := d.u(maxCost, "right cost")
		nCells := d.u(maxTreeNodes*13, "cell count")
		if d.err != nil {
			return nil, nil, d.err
		}
		if want := ted.ViewCellCount(t.Size(), ted.Leaves(t)); nCells != uint64(want) {
			return nil, nil, corruptf("block %d: %d cells, want %d", bi, nCells, want)
		}
		raw := d.take(int(nCells)*4, "cells")
		copy(hash[:], d.take(32, "block hash"))
		if d.err != nil {
			return nil, nil, d.err
		}
		cells := make([]int32, nCells)
		for i := range cells {
			cells[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
		}
		v, verr := ted.ViewFromCells(t, cells, int64(costL), int64(costR))
		if verr != nil {
			return nil, nil, corruptf("block %d: %v", bi, verr)
		}
		blocks = append(blocks, &block{hash: hash, t: t, view: v})
	}
	nEntries := d.u(maxEntries, "entry count")
	if d.err != nil {
		return nil, nil, d.err
	}
	entries = make([]segEntry, 0, min64(nEntries, 1<<16))
	prev := int64(-1)
	for i := uint64(0); i < nEntries; i++ {
		var id int64
		if i == 0 {
			id = int64(d.u(maxID, "entry id"))
		} else {
			id = prev + int64(d.u(maxID, "entry id delta"))
		}
		blk := d.u(nBlocks, "entry block")
		if d.err != nil {
			return nil, nil, d.err
		}
		if id <= prev {
			return nil, nil, corruptf("entry %d: id %d not ascending", i, id)
		}
		if blk >= nBlocks {
			return nil, nil, corruptf("entry %d: block %d out of range", i, blk)
		}
		prev = id
		entries = append(entries, segEntry{id: id, blk: int32(blk)})
	}
	nKinds := d.u(maxKinds, "kind count")
	if d.err != nil {
		return nil, nil, d.err
	}
	prevKind := ""
	for ki := uint64(0); ki < nKinds; ki++ {
		kind := d.str(maxKindLen, "kind name")
		if d.err != nil {
			return nil, nil, d.err
		}
		if ki > 0 && kind <= prevKind {
			return nil, nil, corruptf("kind %q not ascending", kind)
		}
		prevKind = kind
		perBlock := make([][]engine.BagEntry, len(blocks))
		nTokens := d.u(maxTokens, "token count")
		if d.err != nil {
			return nil, nil, d.err
		}
		prevKey := uint64(0)
		for ti := uint64(0); ti < nTokens; ti++ {
			var key uint64
			if ti == 0 {
				key = d.u(^uint64(0), "token key")
			} else {
				delta := d.u(^uint64(0), "token key delta")
				if d.err == nil && delta == 0 {
					return nil, nil, corruptf("kind %q: token keys not ascending", kind)
				}
				key = prevKey + delta
				if key < prevKey {
					return nil, nil, corruptf("kind %q: token key overflow", kind)
				}
			}
			prevKey = key
			nPost := d.u(nBlocks, "posting count")
			if d.err != nil {
				return nil, nil, d.err
			}
			prevBlk := int64(-1)
			for pi := uint64(0); pi < nPost; pi++ {
				var blk int64
				if pi == 0 {
					blk = int64(d.u(nBlocks, "posting block"))
				} else {
					blk = prevBlk + int64(d.u(nBlocks, "posting block delta"))
				}
				count := d.u(1<<31, "posting token count")
				if d.err != nil {
					return nil, nil, d.err
				}
				if blk <= prevBlk || blk >= int64(len(blocks)) {
					return nil, nil, corruptf("kind %q: posting block %d invalid", kind, blk)
				}
				if count == 0 {
					return nil, nil, corruptf("kind %q: zero posting count", kind)
				}
				prevBlk = blk
				perBlock[blk] = append(perBlock[blk], engine.BagEntry{Key: key, Count: int32(count)})
			}
		}
		// Tokens iterate in ascending key order, so every reconstructed bag
		// is already sorted — the BagEntry invariant a seeded cache trusts.
		for bi, b := range blocks {
			if b.bags == nil {
				b.bags = make(map[string][]engine.BagEntry, int(nKinds))
			}
			b.bags[kind] = perBlock[bi]
		}
	}
	if err := d.finish(); err != nil {
		return nil, nil, err
	}
	return blocks, entries, nil
}

// readSegmentFile maps path (mmap on linux) and decodes it.
func readSegmentFile(fsys FS, path string, lt *tree.LabelTable) ([]*block, []segEntry, error) {
	data, done, err := fsys.MapFile(path)
	if err != nil {
		return nil, nil, err
	}
	defer done()
	return decodeSegment(data, lt)
}

func min64(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}
