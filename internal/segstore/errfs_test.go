package segstore

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
)

// errFS is the fault-injecting in-memory FS behind the sweep, degraded-mode,
// and power-cut tests. Every FS method and file Write/Sync/Close counts as
// one operation; a fault plan picks exactly the Nth operation and makes it
// fail with EIO, ENOSPC, a short write, or a power cut (after which every
// operation fails until a crash image is taken). Durability follows the FS
// contract precisely: File.Sync pins a file's durable prefix, SyncDir pins
// the directory's name→inode mapping, and crashImage reconstructs what a
// reboot would see — the last synced mapping, each file cut to its synced
// prefix plus a chosen fraction of its unsynced suffix (0 = strict, between
// = torn writes, 1 = a lucky crash that lost nothing unsynced).
//
// Deliberate simplifications, both on the adversarial side: the mapping is
// snapshotted whole (journalled filesystems order same-directory metadata, so
// one directory fsync publishing several entries at once matches ext4-like
// behaviour), and Truncate cuts the durable prefix immediately (the store
// only truncates to claw back unacknowledged WAL bytes; modelling their
// resurrection would re-test what the torn-write fraction already covers).

type faultKind int

const (
	fNone faultKind = iota
	fEIO
	fENOSPC
	fShort
	fPowerCut
)

var errPowerCut = errors.New("errfs: power cut")

// memFile is one inode: its bytes and the durable (fsync'd) prefix length.
type memFile struct {
	data   []byte
	synced int
}

type errFS struct {
	mu     sync.Mutex
	files  map[string]*memFile // live name → inode mapping
	synced map[string]*memFile // the mapping as of the last SyncDir
	ops    int
	kind   faultKind
	at     int  // the op index (since arm) the fault fires on
	cut    bool // power cut happened; everything fails
	sticky bool // persistent ENOSPC: every allocating op fails until cleared
}

func newErrFS() *errFS {
	return &errFS{files: map[string]*memFile{}, synced: map[string]*memFile{}}
}

// step counts one operation and decides its fate. writeSide marks operations
// that allocate space (and so fail under sticky ENOSPC); the single-shot
// fault plan hits whatever operation holds its index, read or write.
func (e *errFS) step(op string, writeSide bool) (short bool, err error) {
	if e.cut {
		return false, fmt.Errorf("errfs: %s: %w", op, errPowerCut)
	}
	n := e.ops
	e.ops++
	if e.sticky && writeSide {
		return false, fmt.Errorf("errfs: %s: %w", op, syscall.ENOSPC)
	}
	if e.kind != fNone && n == e.at {
		switch e.kind {
		case fEIO:
			return false, fmt.Errorf("errfs: injected %s: %w", op, syscall.EIO)
		case fENOSPC:
			return false, fmt.Errorf("errfs: injected %s: %w", op, syscall.ENOSPC)
		case fShort:
			if op == "write" {
				return true, nil
			}
			return false, fmt.Errorf("errfs: injected %s: %w", op, io.ErrShortWrite)
		case fPowerCut:
			e.cut = true
			return false, fmt.Errorf("errfs: %s: %w", op, errPowerCut)
		}
	}
	return false, nil
}

func (e *errFS) arm(kind faultKind, at int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.kind, e.at, e.ops, e.cut = kind, at, 0, false
}

func (e *errFS) reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.kind, e.ops, e.cut, e.sticky = fNone, 0, false, false
}

func (e *errFS) setSticky(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sticky = on
}

func (e *errFS) opCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ops
}

func (e *errFS) cutHit() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cut
}

// crashImage clones the filesystem as a reboot would find it. frac is the
// fraction of each file's unsynced suffix that happened to reach the platter
// — 0 drops everything unsynced, fractions in between tear writes mid-record.
// The image itself is a fresh, fault-free errFS ready to Open against.
func (e *errFS) crashImage(frac float64) *errFS {
	e.mu.Lock()
	defer e.mu.Unlock()
	img := newErrFS()
	for name, mf := range e.synced {
		keep := mf.synced + int(frac*float64(len(mf.data)-mf.synced))
		data := append([]byte(nil), mf.data[:keep]...)
		img.files[name] = &memFile{data: data, synced: len(data)}
	}
	return img
}

func (e *errFS) MkdirAll(dir string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err := e.step("mkdir", true)
	return err
}

func (e *errFS) Stat(path string) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.step("stat", false); err != nil {
		return 0, err
	}
	mf, ok := e.files[path]
	if !ok {
		return 0, fmt.Errorf("errfs: stat %s: %w", path, fs.ErrNotExist)
	}
	return int64(len(mf.data)), nil
}

func (e *errFS) Create(path string) (File, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.step("create", true); err != nil {
		return nil, err
	}
	mf := &memFile{}
	e.files[path] = mf
	return &errFile{fs: e, mf: mf}, nil
}

func (e *errFS) OpenAppend(path string) (File, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.step("open", false); err != nil {
		return nil, err
	}
	mf, ok := e.files[path]
	if !ok {
		return nil, fmt.Errorf("errfs: open %s: %w", path, fs.ErrNotExist)
	}
	return &errFile{fs: e, mf: mf}, nil
}

func (e *errFS) ReadFile(path string) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.step("read", false); err != nil {
		return nil, err
	}
	mf, ok := e.files[path]
	if !ok {
		return nil, fmt.Errorf("errfs: read %s: %w", path, fs.ErrNotExist)
	}
	return append([]byte(nil), mf.data...), nil
}

func (e *errFS) MapFile(path string) ([]byte, func(), error) {
	data, err := e.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}

func (e *errFS) Rename(oldPath, newPath string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.step("rename", true); err != nil {
		return err
	}
	mf, ok := e.files[oldPath]
	if !ok {
		return fmt.Errorf("errfs: rename %s: %w", oldPath, fs.ErrNotExist)
	}
	e.files[newPath] = mf
	delete(e.files, oldPath)
	return nil
}

func (e *errFS) Remove(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.step("remove", false); err != nil {
		return err
	}
	if _, ok := e.files[path]; !ok {
		return fmt.Errorf("errfs: remove %s: %w", path, fs.ErrNotExist)
	}
	delete(e.files, path)
	return nil
}

func (e *errFS) ReadDir(dir string) ([]string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.step("readdir", false); err != nil {
		return nil, err
	}
	var names []string
	for path := range e.files {
		if filepath.Dir(path) == dir {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (e *errFS) Truncate(path string, size int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.step("truncate", false); err != nil {
		return err
	}
	mf, ok := e.files[path]
	if !ok {
		return fmt.Errorf("errfs: truncate %s: %w", path, fs.ErrNotExist)
	}
	if size < 0 || size > int64(len(mf.data)) {
		return fmt.Errorf("errfs: truncate %s to %d of %d", path, size, len(mf.data))
	}
	mf.data = mf.data[:size]
	if mf.synced > int(size) {
		mf.synced = int(size)
	}
	return nil
}

func (e *errFS) SyncDir(dir string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.step("syncdir", false); err != nil {
		return err
	}
	e.synced = make(map[string]*memFile, len(e.files))
	for name, mf := range e.files {
		e.synced[name] = mf
	}
	return nil
}

// errFile is one open handle; writes append (Create starts empty, OpenAppend
// positions at the end, and the store never seeks).
type errFile struct {
	fs *errFS
	mf *memFile
}

func (f *errFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	short, err := f.fs.step("write", true)
	if err != nil {
		return 0, err
	}
	if short {
		n := len(p) / 2
		f.mf.data = append(f.mf.data, p[:n]...)
		return n, io.ErrShortWrite
	}
	f.mf.data = append(f.mf.data, p...)
	return len(p), nil
}

func (f *errFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if _, err := f.fs.step("fsync", true); err != nil {
		return err
	}
	f.mf.synced = len(f.mf.data)
	return nil
}

func (f *errFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	_, err := f.fs.step("close", false)
	return err
}
