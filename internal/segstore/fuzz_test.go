package segstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"treejoin/internal/tree"
)

// The decoders face whatever bytes a crash, a bit flip, or a hostile file
// leaves on disk. The contract under fuzzing: arbitrary input either decodes
// or returns an error wrapping ErrCorrupt — never a panic, never an
// out-of-range read, never an unbounded allocation (the caps in format.go).

func fuzzSeeds(f *testing.F, name string) {
	if data, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
		f.Add(data)
		// Corrupted variants: truncations and single-byte flips at a spread
		// of offsets, so the corpus starts with near-valid inputs.
		for _, cut := range []int{0, 4, 5, len(data) / 2, len(data) - 1} {
			if cut <= len(data) {
				f.Add(data[:cut])
			}
		}
		for off := 0; off < len(data); off += 1 + len(data)/16 {
			mut := append([]byte(nil), data...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("TJXX"))
}

// fuzzLabelTable returns a label table with enough entries that tree streams
// referencing moderate label ids are in range, exercising deeper decode paths.
func fuzzLabelTable() *tree.LabelTable {
	lt := tree.NewLabelTable()
	for i := 0; i < 1024; i++ {
		lt.Intern(fmt.Sprintf("L%d", i))
	}
	return lt
}

func FuzzSegmentDecode(f *testing.F) {
	fuzzSeeds(f, "golden_segment.tjsg")
	lt := fuzzLabelTable()
	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, entries, err := decodeSegment(data, lt)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-corruption error: %v", err)
			}
			return
		}
		// Accepted input must satisfy the segment invariants the store
		// relies on: in-range block references and ascending entry ids.
		prev := int64(-1)
		for _, e := range entries {
			if e.blk < 0 || int(e.blk) >= len(blocks) {
				t.Fatalf("entry references block %d of %d", e.blk, len(blocks))
			}
			if e.id <= prev {
				t.Fatalf("entry ids not ascending: %d after %d", e.id, prev)
			}
			prev = e.id
		}
		for i, b := range blocks {
			if b.t == nil || b.view == nil {
				t.Fatalf("block %d accepted with nil tree or view", i)
			}
		}
	})
}

func FuzzManifestDecode(f *testing.F) {
	fuzzSeeds(f, "golden_manifest.tjmf")
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-corruption error: %v", err)
			}
			return
		}
		for _, s := range m.segs {
			if _, ok := segNameSeq(s.name); !ok {
				t.Fatalf("accepted malformed segment name %q", s.name)
			}
			for i, p := range s.tombs {
				if p < 0 || int(p) >= s.nEntries || (i > 0 && p <= s.tombs[i-1]) {
					t.Fatalf("accepted invalid tombstones %v (nEntries %d)", s.tombs, s.nEntries)
				}
			}
		}
	})
}

// FuzzWALReplay drives the full replay path, including the truncate-torn-tail
// repair, against arbitrary WAL images.
func FuzzWALReplay(f *testing.F) {
	// Seed with a real WAL: two adds and a remove.
	lt := tree.NewLabelTable()
	b := tree.NewBuilder(lt)
	r := b.Root("x")
	b.Child(r, "y")
	tr := b.MustBuild()
	var img bytes.Buffer
	img.Write(walMagic[:])
	img.WriteByte(walVersion)
	for _, rec := range [][]byte{
		encodeAdd(1, lt, 0, tr),
		encodeAdd(2, lt, lt.Len(), tr),
		encodeRemove(1),
	} {
		img.Write(rec)
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(rec))
		img.Write(sum[:])
	}
	f.Add(img.Bytes())
	f.Add(img.Bytes()[:img.Len()-3])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, walName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ops, err := replayWAL(osFS{}, path, tree.NewLabelTable(), true)
		if err != nil {
			t.Fatalf("replayWAL must repair, not fail: %v", err)
		}
		for _, op := range ops {
			if !op.remove && op.t == nil {
				t.Fatal("add op with nil tree")
			}
		}
	})
}
