package segstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

func TestScrubClean(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, nil, Options{MemtableBudget: 2, NoBackground: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Add(s.NextID(), chainTree(s.Labels(), 2+i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatalf("scrub of a healthy store: %v", err)
	}
	if rep.Segments < 2 || rep.Blocks < 4 || rep.Entries < 4 || len(rep.Faults) != 0 {
		t.Fatalf("implausible clean report: %+v", rep)
	}
}

// resealSegment recomputes a segment file's CRC trailer after a deliberate
// payload edit, so the corruption survives the decoder's bulk CRC and only a
// deeper check can find it.
func resealSegment(t *testing.T, path string, edit func(data []byte)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edit(data)
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[4:len(data)-4]))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScrubCatchesBitRot flips one byte inside a stored content address and
// re-seals the file CRC — corruption the open path cannot see, because the
// decoder trusts addresses under the CRC. Scrub re-derives every address and
// must catch it.
func TestScrubCatchesBitRot(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, nil, Options{MemtableBudget: 1, NoBackground: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := chainTree(s.Labels(), 5)
	if err := s.Add(s.NextID(), tr); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The block's content address appears verbatim in the file; find and
	// flip it, then re-seal the CRC trailer over the edit.
	want := newBlock(tr, ted.BuildViews([]*tree.Tree{tr})[0]).hash
	segPath := filepath.Join(dir, "seg-000000.tjsg")
	resealSegment(t, segPath, func(data []byte) {
		i := bytes.Index(data, want[:])
		if i < 0 {
			t.Fatal("stored content address not found in segment file")
		}
		data[i] ^= 0xff
	})
	s2, err := Open(dir, Options{NoBackground: true, NoSync: true})
	if err != nil {
		t.Fatalf("open does not re-hash, so it must still succeed: %v", err)
	}
	defer s2.Close()
	rep, err := s2.Scrub()
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scrub missed the flipped content address: %v", err)
	}
	if len(rep.Faults) != 1 || rep.Faults[0].Name != "seg-000000.tjsg" ||
		!strings.Contains(rep.Faults[0].Err, "content address mismatch") {
		t.Fatalf("wrong fault: %+v", rep.Faults)
	}
}

// TestScrubCatchesRotUnderOpenStore covers the CRC layer and Scrub's reason
// for existing: a file that rots on disk *after* the store decoded it. The
// open store keeps serving from memory; Scrub re-reads the disk and reports
// the rot before the next reopen would trip over it.
func TestScrubCatchesRotUnderOpenStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, nil, Options{MemtableBudget: 1, NoBackground: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Add(s.NextID(), chainTree(s.Labels(), 4)); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, "seg-000000.tjsg")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if live := s.Live(); len(live) != 1 {
		t.Fatalf("in-memory reads must not notice disk rot: %d live", len(live))
	}
	rep, err := s.Scrub()
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scrub missed the broken CRC: %v", err)
	}
	if len(rep.Faults) != 1 || rep.Faults[0].Name != "seg-000000.tjsg" {
		t.Fatalf("wrong fault: %+v", rep.Faults)
	}
}

// TestSalvage is the quarantine path end to end: a store with one rotten
// segment refuses a plain open, opens under Salvage with the segment set
// aside (preserved under *.quarantine), keeps every readable tree including
// the WAL-held memtable, reports the loss with id bounds, and commits a
// manifest that makes the next plain open clean.
func TestSalvage(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, nil, Options{MemtableBudget: 2, NoBackground: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	var trees []*tree.Tree
	for i := 0; i < 5; i++ {
		tr := chainTree(s.Labels(), 2+i)
		id := s.NextID()
		if err := s.Add(id, tr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		trees = append(trees, tr)
	}
	// Two segments of two trees each; the fifth lives only in the WAL. The
	// store is abandoned un-Closed (the crash that let the rot go unnoticed).
	segPath := filepath.Join(dir, "seg-000000.tjsg")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{NoBackground: true, NoSync: true}); err == nil {
		t.Fatal("plain open accepted a corrupt segment")
	}
	s2, err := Open(dir, Options{NoBackground: true, NoSync: true, Salvage: true})
	if err != nil {
		t.Fatalf("salvage open: %v", err)
	}
	rep := s2.SalvageReport()
	if len(rep) != 1 {
		t.Fatalf("salvage report: %+v", rep)
	}
	q := rep[0]
	if q.Name != "seg-000000.tjsg" || q.Entries != 2 || q.Live != 2 {
		t.Fatalf("wrong quarantine record: %+v", q)
	}
	if q.IDAfter != -1 || q.IDBefore != ids[2] {
		t.Fatalf("lost-id bounds (%d, %d), want (-1, %d)", q.IDAfter, q.IDBefore, ids[2])
	}
	if st := s2.Stats(); st.QuarantinedSegments != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Quarantine never drops a readable live tree: the second segment and
	// the WAL-held fifth tree all survive.
	checkLive(t, s2, ids[2:], trees[2:])
	if _, err := os.Stat(segPath + quarantineSuffix); err != nil {
		t.Fatalf("quarantined file not preserved: %v", err)
	}
	if _, err := os.Stat(segPath); err == nil {
		t.Fatal("corrupt segment still present under its original name")
	}
	// The salvaged store is writable, and its committed manifest makes the
	// next plain open clean.
	id6 := s2.NextID()
	tr6 := chainTree(s2.Labels(), 9)
	if err := s2.Add(id6, tr6); err != nil {
		t.Fatalf("write after salvage: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{NoBackground: true, NoSync: true})
	if err != nil {
		t.Fatalf("plain reopen after salvage: %v", err)
	}
	defer s3.Close()
	checkLive(t, s3, append(append([]int64(nil), ids[2:]...), id6), append(append([]*tree.Tree(nil), trees[2:]...), tr6))
	if rep := s3.SalvageReport(); len(rep) != 0 {
		t.Fatalf("clean open carries a stale salvage report: %+v", rep)
	}
}
