package segstore

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// FS abstracts every syscall the store performs against its directory, so
// tests can inject faults (EIO, ENOSPC, short writes, power cuts) at any
// individual operation and the production path stays a thin veneer over the
// os package. All paths are as the store builds them (filepath.Join of the
// store directory and a file name); implementations need no working-directory
// or symlink semantics beyond what os provides.
//
// Durability contract: File.Sync makes a file's written bytes durable;
// SyncDir makes the directory's name→file mapping (creates, renames,
// removes) durable. A crash may drop anything not covered by one of the two,
// including suffixes of individual writes — exactly the model errfs (the
// test implementation) enforces.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Stat returns the size of path; a missing file reports an error
	// satisfying errors.Is(err, fs.ErrNotExist).
	Stat(path string) (int64, error)
	// Create truncates-or-creates path for writing.
	Create(path string) (File, error)
	// OpenAppend opens an existing path for appending.
	OpenAppend(path string) (File, error)
	// ReadFile returns the whole contents of path.
	ReadFile(path string) ([]byte, error)
	// MapFile returns the file image (zero-copy where the platform allows)
	// and a release function; the bytes are invalid after release.
	MapFile(path string) (data []byte, release func(), err error)
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove unlinks path.
	Remove(path string) error
	// ReadDir lists the file names in dir.
	ReadDir(dir string) ([]string, error)
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
	// SyncDir fsyncs dir so renames and creates within it are durable.
	SyncDir(dir string) error
}

// File is one open store file handle.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// osFS is the production FS: the os package plus the platform mmap reader.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Stat(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) Create(path string) (File, error)     { return os.Create(path) }
func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) MapFile(path string) ([]byte, func(), error) { return readFileBytes(path) }

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(des))
	for i, de := range des {
		names[i] = de.Name()
	}
	return names, nil
}

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// SyncDir fsyncs the directory. Filesystems that cannot sync directories
// (EINVAL/ENOTSUP from some network and FUSE mounts) are tolerated — there is
// nothing stronger the store could do there — but real I/O errors propagate:
// when sync is enabled, a failed directory fsync is a failed commit.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		if errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP) {
			return nil
		}
		return serr
	}
	return cerr
}

// fsOrDefault resolves an Options.FS, nil meaning the real filesystem.
func fsOrDefault(f FS) FS {
	if f == nil {
		return osFS{}
	}
	return f
}

// notExist reports whether err is a missing-file error from any FS.
func notExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
