package segstore

import (
	"fmt"
	"path/filepath"
)

// Integrity tooling. Scrub re-verifies the store's on-disk invariants end to
// end — well past what the read path checks on every open — and Salvage (an
// Open option, see Options.Salvage) turns a refusal-to-open into a bounded
// loss: whole corrupt segments are set aside and everything readable stays.

// SegmentFault is one integrity failure Scrub found.
type SegmentFault struct {
	Name string // segment file name ("" for the manifest)
	Err  string
}

// ScrubReport summarises one Scrub pass.
type ScrubReport struct {
	Segments int // segment files verified
	Blocks   int // blocks re-hashed
	Entries  int // segment entries checked
	Faults   []SegmentFault
}

// Scrub re-reads every committed file and re-verifies it bottom up: the
// manifest decodes; each segment file decodes (bulk CRC, structural and
// arena-view validation), its blocks re-hash to their stored content
// addresses, and its entry list matches the manifest's count. Mutations are
// blocked for the duration; reads of the already-decoded corpus are not
// affected. The error (wrapping ErrCorrupt) is non-nil iff any fault was
// found — the report carries the detail either way.
func (s *Store) Scrub() (ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep ScrubReport
	if s.closed {
		return rep, fmt.Errorf("segstore: store is closed")
	}
	fault := func(name, format string, args ...any) {
		rep.Faults = append(rep.Faults, SegmentFault{Name: name, Err: fmt.Sprintf(format, args...)})
	}
	if _, err := readManifest(s.fs, filepath.Join(s.dir, manifestName)); err != nil {
		fault("", "manifest: %v", err)
	}
	for _, seg := range s.segs {
		rep.Segments++
		blocks, entries, err := readSegmentFile(s.fs, filepath.Join(s.dir, seg.name), s.lt)
		if err != nil {
			fault(seg.name, "%v", err)
			continue
		}
		if len(entries) != len(seg.entries) {
			fault(seg.name, "%d entries on disk, %d in memory", len(entries), len(seg.entries))
			continue
		}
		rep.Entries += len(entries)
		for bi, b := range blocks {
			rep.Blocks++
			// The decoder trusts the stored address under the bulk CRC; the
			// scrub re-derives it from the decoded content, catching any
			// corruption a colliding CRC let through — and pinning that the
			// dedup map was built from honest addresses.
			if got := newBlock(b.t, b.view).hash; got != b.hash {
				fault(seg.name, "block %d: content address mismatch (stored %x, computed %x)", bi, b.hash[:8], got[:8])
			}
		}
	}
	if len(rep.Faults) > 0 {
		return rep, fmt.Errorf("segstore: scrub found %d fault(s) in %s: %w", len(rep.Faults), s.dir, ErrCorrupt)
	}
	return rep, nil
}

// QuarantinedSegment describes one segment Open(Salvage) set aside. The id
// bounds bracket the loss: every tree the segment held had an id in
// (IDAfter, IDBefore) — exclusive bounds from the neighbouring surviving
// segments, -1 when the quarantined segment was first (no lower bound) and
// -1 for IDBefore when nothing followed it. Live and Entries come from the
// manifest (the segment itself being unreadable).
type QuarantinedSegment struct {
	Name     string // original file name; on disk it now carries ".quarantine"
	Entries  int    // entries the manifest recorded, dead included
	Live     int    // of those, not tombstoned — the upper bound on lost trees
	IDAfter  int64  // largest id of any preceding surviving segment, -1 if none
	IDBefore int64  // smallest id of any following surviving segment, -1 if none
	Err      string // why it failed verification
}

// quarantineSegment renames a corrupt segment out of the store's namespace
// (name → name.quarantine, preserving the evidence for offline forensics)
// and records the loss. Quarantine never drops a readable live tree: only a
// segment that failed verification wholesale lands here, and the rename is
// the sole mutation — every byte of the file survives under the new name. A
// failed rename is recorded but does not stop the salvage; the rewritten
// manifest no longer references the file either way, so a leftover original
// is deleted as an orphan by the next non-salvage open.
func (s *Store) quarantineSegment(ms manifestSeg, prevID int64, cause error) *QuarantinedSegment {
	q := QuarantinedSegment{
		Name:     ms.name,
		Entries:  ms.nEntries,
		Live:     ms.nEntries - len(ms.tombs),
		IDAfter:  prevID,
		IDBefore: -1,
		Err:      cause.Error(),
	}
	old := filepath.Join(s.dir, ms.name)
	if err := s.fs.Rename(old, old+quarantineSuffix); err != nil {
		q.Err = fmt.Sprintf("%v (quarantine rename failed: %v)", cause, err)
	}
	s.quarantined = append(s.quarantined, q)
	return &s.quarantined[len(s.quarantined)-1]
}

// SalvageReport returns what Open(Salvage) quarantined, empty when the open
// was clean (or Salvage was off).
func (s *Store) SalvageReport() []QuarantinedSegment {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QuarantinedSegment, len(s.quarantined))
	copy(out, s.quarantined)
	return out
}
