package segstore

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Degraded mode. A failed flush, manifest commit, WAL rewrite, or compaction
// cannot corrupt committed state — every one of those paths writes new files
// and publishes them atomically — but it does leave the in-memory state ahead
// of the durable one. Rather than guess, the store fails to the safe side:
// it flips read-only, answers every mutation with ErrDegraded, and keeps the
// already-committed corpus fully readable. Recovery is one commit retry
// (flush if the memtable is over budget, otherwise manifest+WAL commit);
// when it succeeds — say the disk that returned ENOSPC gained space — the
// store silently resumes. With background goroutines enabled the retry runs
// on its own loop under capped exponential backoff with jitter; under
// NoBackground, Flush and Compact double as the synchronous recovery hooks.

// ErrDegraded is wrapped by every mutation rejected because the store is in
// degraded mode; errors.Is(err, ErrDegraded) detects it. Reads (Live, Stats,
// Scrub) keep working throughout.
var ErrDegraded = errors.New("segstore: store is degraded (read-only pending recovery)")

// enterDegradedLocked records the failure and flips the store read-only,
// waking the background retry loop if there is one. Re-entering while
// already degraded keeps the original cause (the first failure is the one
// that explains the state).
func (s *Store) enterDegradedLocked(cause error) {
	if !s.degraded {
		s.degraded = true
		s.degradedErr = cause
	}
	if !s.opt.NoBackground {
		select {
		case s.recoverCh <- struct{}{}:
		default:
		}
	}
}

// degradedErrLocked is the error mutations return while degraded.
func (s *Store) degradedErrLocked() error {
	return fmt.Errorf("%w: %v", ErrDegraded, s.degradedErr)
}

// recoverLocked retries the commit the failure interrupted. The in-memory
// state is a correct superset of the committed one (mutations were WAL-acked
// or rolled back before degrading), so recovery is exactly one of the normal
// commit paths run again: a flush when the memtable is at budget, otherwise
// a manifest+WAL commit that persists whatever tombstones and memtable the
// store holds. Success clears degraded mode.
func (s *Store) recoverLocked() error {
	s.recoveries++
	var err error
	if len(s.mem) >= s.opt.MemtableBudget {
		err = s.flushLocked()
	} else {
		err = s.commitLocked()
	}
	if err != nil {
		if !s.degraded { // a nested failure may have re-entered already
			s.degraded = true
			s.degradedErr = err
		}
		return err
	}
	s.degraded = false
	s.degradedErr = nil
	return nil
}

// defaultRetryJitter draws the random half of a retry delay from the
// process-wide locked RNG. The top-level rand functions serialise internally,
// so any number of stores' recovery loops may draw concurrently; a
// goroutine-local rand.New(rand.NewSource(...)) would work too (each loop is
// one goroutine and the value never escapes it) but is pinned behind the
// Options hook instead so fault-sweep tests can make the schedule
// deterministic.
func defaultRetryJitter(max time.Duration) time.Duration {
	return time.Duration(rand.Int63n(int64(max) + 1))
}

// recoveryLoop is the background half of degraded mode: woken by
// enterDegradedLocked, it retries recoverLocked under exponential backoff
// (retryBase doubling up to retryMax) with ±half jitter, so a fleet of
// stores degraded by the same full disk does not thunder back in lockstep.
// It never starts under NoBackground (Flush and Compact are the synchronous
// recovery hooks there), so NoBackground tests see no jitter at all.
func (s *Store) recoveryLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.recoverCh:
		}
		backoff := s.opt.retryBase
		for {
			s.mu.Lock()
			if s.closed || !s.degraded {
				s.mu.Unlock()
				break
			}
			err := s.recoverLocked()
			s.mu.Unlock()
			if err == nil {
				break
			}
			d := backoff/2 + s.opt.retryJitter(backoff/2)
			select {
			case <-s.stopCh:
				return
			case <-time.After(d):
			}
			if backoff < s.opt.retryMax {
				backoff *= 2
				if backoff > s.opt.retryMax {
					backoff = s.opt.retryMax
				}
			}
		}
	}
}
