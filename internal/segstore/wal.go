package segstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"

	"treejoin/internal/tree"
)

// Write-ahead log (TJWL, version 1). Every mutation appends one record and
// syncs before the in-memory state changes, so the memtable survives a
// crash. Records are individually CRC'd (there is no trailer — the file
// grows); a torn tail truncates back to the last whole record:
//
//	magic   "TJWL" (4 bytes), version byte
//	records, each: kind byte, payload, crc32 IEEE LE over kind+payload
//	'A' payload: id, prevLabels, newLabelCount, per label: byteLen, bytes,
//	    then the tree's preorder (label, childCount) stream
//	'R' payload: id
//
// The label table grows as trees arrive; an 'A' record carries exactly the
// labels appended since the previous record (prevLabels = table length
// before them), so replay reconstructs the table incrementally — and when
// the record is stale (already reflected in a newer manifest, whose table
// contains those labels), the splice validates instead of appending.
//
// Replay is idempotent by construction (see replayWAL): the WAL is rewritten
// at every manifest commit to hold exactly the surviving memtable, but the
// rewrite happens *after* the manifest rename, so a crash in between leaves
// a stale WAL whose records are all either already in the manifest (skipped)
// or still memtable-bound (applied) — nothing is lost and nothing doubles.

var walMagic = [4]byte{'T', 'J', 'W', 'L'}

const walVersion = 1

// errWALClosed reports an append on a writer that failed closed (a partial
// append it could not claw back) or was released; the store surfaces it as
// degraded mode.
var errWALClosed = errors.New("segstore: WAL writer is closed")

// walWriter appends records to the open WAL file. It tracks the last good
// record boundary: a partial append (short write, or a write or sync error
// after bytes may have landed) truncates the file back to that boundary so a
// later append can never splice garbage after a torn record. If the
// truncate itself fails, the writer fails closed.
type walWriter struct {
	fs     FS
	path   string
	f      File
	off    int64 // offset just past the last fully appended+synced record
	noSync bool
}

func createWAL(fsys FS, path string, noSync bool) (*walWriter, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(append(walMagic[:], walVersion)); err != nil {
		_ = f.Close()
		return nil, err
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, err
		}
		// The header is durable only once the file's directory entry is; a
		// WAL that vanishes with a crash would silently drop every record
		// appended to it.
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	return &walWriter{fs: fsys, path: path, f: f, off: 5, noSync: noSync}, nil
}

func openWALForAppend(fsys FS, path string, noSync bool) (*walWriter, error) {
	size, err := fsys.Stat(path)
	if err != nil {
		return nil, err
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &walWriter{fs: fsys, path: path, f: f, off: size, noSync: noSync}, nil
}

// append writes one record (payload + CRC) and syncs it. On any failure the
// file is truncated back to the previous record boundary before returning,
// so an error here means the record is not (and will never be) in the log;
// if even that claw-back fails, the writer fails closed and every later
// append returns errWALClosed.
func (w *walWriter) append(rec []byte) error {
	if w.f == nil {
		return errWALClosed
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(rec))
	buf := append(rec, sum[:]...)
	n, err := w.f.Write(buf)
	if err == nil && n < len(buf) {
		err = fmt.Errorf("segstore: WAL short write (%d of %d bytes)", n, len(buf))
	}
	if err == nil && !w.noSync {
		// A failed sync also claws back: the bytes are in the file but not
		// durable, and an unacknowledged mutation must not resurface on the
		// next replay.
		err = w.f.Sync()
	}
	if err != nil {
		if terr := w.fs.Truncate(w.path, w.off); terr != nil {
			_ = w.f.Close()
			w.f = nil
			return fmt.Errorf("%w (and truncating back failed: %v)", err, terr)
		}
		return err
	}
	w.off += int64(len(buf))
	return nil
}

// failed reports whether the writer failed closed (append can never succeed
// again until the WAL is rewritten).
func (w *walWriter) failed() bool { return w == nil || w.f == nil }

func (w *walWriter) close() error {
	if w == nil || w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// encodeAdd builds an 'A' record: the id, the label-table splice (labels
// [prevLabels, lt.Len()) are the ones this mutation introduced), and the
// tree stream.
func encodeAdd(id int64, lt *tree.LabelTable, prevLabels int, t *tree.Tree) []byte {
	var buf bytes.Buffer
	buf.WriteByte('A')
	c := &cw{bw: nil, out: &buf}
	c.u(uint64(id))
	c.u(uint64(prevLabels))
	c.u(uint64(lt.Len() - prevLabels))
	for i := prevLabels; i < lt.Len(); i++ {
		c.str(lt.Name(int32(i)))
	}
	writeTreeStream(c, t)
	return buf.Bytes()
}

func encodeRemove(id int64) []byte {
	var buf bytes.Buffer
	buf.WriteByte('R')
	c := &cw{bw: nil, out: &buf}
	c.u(uint64(id))
	return buf.Bytes()
}

// walOp is one replayed operation.
type walOp struct {
	remove bool
	id     int64
	t      *tree.Tree // nil for removes
}

// replayWAL parses the WAL at path, splicing label deltas into lt and
// returning the operations of every whole, checksummed record. A torn or
// corrupt tail — a record that does not parse, fails its CRC, or splices
// labels inconsistently — truncates the file back to the last good record:
// everything before it was synced and applies, everything after never fully
// committed. The caller applies the ops idempotently against the manifest
// state (see Store replay rules).
func replayWAL(fsys FS, path string, lt *tree.LabelTable, noSync bool) ([]walOp, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 5 || !bytes.Equal(data[:4], walMagic[:]) || data[4] != walVersion {
		// An unrecognisable WAL is rebuilt empty: nothing can be recovered
		// from it, and the manifest alone is a consistent (if older) state.
		return nil, rewriteWALFile(fsys, path, nil, nil, 0, noSync)
	}
	var ops []walOp
	pos := 5
	good := 5 // offset just past the last whole record
	for pos < len(data) {
		op, next, ok := parseRecord(data, pos, lt)
		if !ok {
			break
		}
		ops = append(ops, op)
		pos = next
		good = next
	}
	if good < len(data) {
		if err := fsys.Truncate(path, int64(good)); err != nil {
			return nil, err
		}
	}
	return ops, nil
}

// parseRecord decodes one record at data[pos:], returning the op and the
// offset past its CRC. ok is false for any truncation, corruption, CRC
// mismatch, or label-splice conflict. The CRC is verified before the record
// takes any effect, so a bad record never pollutes the label table.
func parseRecord(data []byte, pos int, lt *tree.LabelTable) (op walOp, next int, ok bool) {
	end, ok := recordEnd(data, pos)
	if !ok || end+4 > len(data) {
		return op, 0, false
	}
	want := binary.LittleEndian.Uint32(data[end : end+4])
	if crc32.ChecksumIEEE(data[pos:end]) != want {
		return op, 0, false
	}
	r := &sliceReader{data: data[:end], pos: pos}
	switch r.byteVal() {
	case 'A':
		op.id = int64(r.u(maxID))
		prevLabels := r.u(maxLabels)
		nNew := r.u(maxLabels)
		if r.err || prevLabels > uint64(lt.Len()) {
			return op, 0, false
		}
		// Splice: labels the table already holds (a stale record whose
		// mutation a newer manifest committed) must match byte for byte;
		// genuinely new ones intern at exactly the recorded positions.
		for i := uint64(0); i < nNew; i++ {
			name := r.str(maxLabelLen)
			if r.err {
				return op, 0, false
			}
			idx := int32(prevLabels + i)
			if idx < int32(lt.Len()) {
				if lt.Name(idx) != name {
					return op, 0, false
				}
			} else if lt.Intern(name) != idx {
				return op, 0, false
			}
		}
		op.t = r.tree(lt)
	default: // recordEnd admitted only 'A' and 'R'
		op.remove = true
		op.id = int64(r.u(maxID))
	}
	if r.err || r.pos != end {
		return op, 0, false
	}
	return op, end + 4, true
}

// recordEnd finds the byte offset just past a record's payload (where its
// CRC trailer starts) by structurally skipping it, with no side effects.
func recordEnd(data []byte, pos int) (int, bool) {
	r := &sliceReader{data: data, pos: pos}
	switch r.byteVal() {
	case 'A':
		r.u(maxID)
		r.u(maxLabels)
		nNew := r.u(maxLabels)
		for i := uint64(0); i < nNew && !r.err; i++ {
			r.str(maxLabelLen)
		}
		n := r.u(maxTreeNodes)
		for i := uint64(0); i < 2*n && !r.err; i++ {
			r.u(^uint64(0))
		}
	case 'R':
		r.u(maxID)
	default:
		return 0, false
	}
	if r.err {
		return 0, false
	}
	return r.pos, true
}

// rewriteWALFile atomically replaces the WAL with one holding exactly the
// given memtable as 'A' records (ids[i] ↔ ts[i]); labelsLen stamps every
// record's prevLabels (their labels are already in the manifest's table, so
// the splice is empty). Called after a manifest commit — never before.
func rewriteWALFile(fsys FS, path string, ids []int64, ts []*tree.Tree, labelsLen int, noSync bool) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.Write(walMagic[:])
	buf.WriteByte(walVersion)
	for i, id := range ids {
		rec := encodeAddStable(id, labelsLen, ts[i])
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(rec))
		buf.Write(rec)
		buf.Write(sum[:])
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		_ = f.Close()
		return err
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	if !noSync {
		return fsys.SyncDir(filepath.Dir(path))
	}
	return nil
}

// encodeAddStable is encodeAdd with no new labels: the rewrite form.
func encodeAddStable(id int64, labelsLen int, t *tree.Tree) []byte {
	var buf bytes.Buffer
	buf.WriteByte('A')
	c := &cw{out: &buf}
	c.u(uint64(id))
	c.u(uint64(labelsLen))
	c.u(0)
	writeTreeStream(c, t)
	return buf.Bytes()
}

// sliceReader parses varint records from a byte slice with bounds checks;
// the WAL's in-memory record parser.
type sliceReader struct {
	data []byte
	pos  int
	err  bool
}

func (r *sliceReader) byteVal() byte {
	if r.err || r.pos >= len(r.data) {
		r.err = true
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *sliceReader) u(cap uint64) uint64 {
	if r.err {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 || v > cap {
		r.err = true
		return 0
	}
	r.pos += n
	return v
}

func (r *sliceReader) str(cap uint64) string {
	n := r.u(cap)
	if r.err || r.pos+int(n) > len(r.data) {
		r.err = true
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// tree decodes a preorder stream, the slice-reader twin of readTreeStream.
func (r *sliceReader) tree(lt *tree.LabelTable) *tree.Tree {
	n := r.u(maxTreeNodes)
	if r.err || n == 0 {
		r.err = true
		return nil
	}
	b := tree.NewBuilder(lt)
	type frame struct {
		id      int32
		pending uint64
	}
	var stack []frame
	for i := uint64(0); i < n; i++ {
		label := r.u(uint64(lt.Len()))
		fan := r.u(n)
		if r.err || label >= uint64(lt.Len()) {
			r.err = true
			return nil
		}
		var id int32
		if len(stack) == 0 {
			if i != 0 {
				r.err = true
				return nil
			}
			id = b.RootID(int32(label))
		} else {
			top := &stack[len(stack)-1]
			id = b.ChildID(top.id, int32(label))
			top.pending--
		}
		if fan > 0 {
			stack = append(stack, frame{id: id, pending: fan})
		}
		for len(stack) > 0 && stack[len(stack)-1].pending == 0 {
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		r.err = true
		return nil
	}
	t, err := b.Build()
	if err != nil {
		r.err = true
		return nil
	}
	return t
}
