//go:build linux

package segstore

import (
	"os"
	"syscall"
)

// readFileBytes maps path read-only and returns its bytes plus a release
// function. Segments are immutable once the manifest references them, so a
// shared mapping is safe; decode streams over the mapping and releases it,
// never copying the file through a read buffer first.
func readFileBytes(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	// Read-only fd; the mapping outlives it and a close error is meaningless.
	defer func() { _ = f.Close() }()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	return mapValidated(f, path, size)
}

// mapValidated maps f expecting exactly size bytes. Touching pages of a
// mapping that extends past the file's real end is a SIGBUS, not an error, so
// an external truncation racing the open would crash the process mid-decode;
// re-checking the length against the live fd after the map closes that
// window — on any mismatch (or a failed re-stat) the mapping is released and
// the heap-read path takes over, whose short read surfaces as an ordinary
// CRC/decode error upstream.
func mapValidated(f *os.File, path string, size int64) ([]byte, func(), error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support fall back to a plain read.
		return heapRead(path)
	}
	fi, err := f.Stat()
	if err != nil || fi.Size() != size {
		if merr := syscall.Munmap(data); merr != nil {
			return nil, nil, merr
		}
		return heapRead(path)
	}
	return data, func() {
		_ = syscall.Munmap(data)
	}, nil
}

func heapRead(path string) ([]byte, func(), error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return b, func() {}, nil
}
