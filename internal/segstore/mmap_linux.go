//go:build linux

package segstore

import (
	"os"
	"syscall"
)

// readFileBytes maps path read-only and returns its bytes plus a release
// function. Segments are immutable once the manifest references them, so a
// shared mapping is safe; decode streams over the mapping and releases it,
// never copying the file through a read buffer first.
func readFileBytes(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support fall back to a plain read.
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		return b, func() {}, nil
	}
	return data, func() { syscall.Munmap(data) }, nil
}
