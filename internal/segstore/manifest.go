package segstore

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"treejoin/internal/tree"
)

// Manifest file (TJMF, version 1) — the store's commit point. It records the
// epoch's membership: the next id to assign, the full interned label table,
// and per segment its file name, entry count, and tombstoned entry
// positions. The manifest is rewritten whole (tmp + fsync + rename, then a
// directory fsync), so a crash leaves either the old or the new epoch, never
// a mix; segment files and WAL contents not reachable from the surviving
// manifest are orphans the next open deletes or replays idempotently.
//
//	magic   "TJMF" (4 bytes), version byte
//	nextID
//	labelCount, then per label: byteLen, bytes
//	segmentCount, then per segment:
//	    nameLen, name
//	    entryCount
//	    tombstoneCount, then per tombstone: entry position
//	        (delta, first absolute; strictly ascending, < entryCount)
//	crc32 IEEE LE (4 bytes)

var manifestMagic = [4]byte{'T', 'J', 'M', 'F'}

const manifestVersion = 1

const (
	manifestName     = "MANIFEST"
	walName          = "WAL"
	segPattern       = "seg-%06d.tjsg"
	quarantineSuffix = ".quarantine"
)

// manifest is the decoded commit record.
type manifest struct {
	nextID int64
	lt     *tree.LabelTable
	segs   []manifestSeg
}

type manifestSeg struct {
	name     string
	nEntries int
	tombs    []int32 // dead entry positions, ascending
}

// writeManifestTo commits a manifest: tmp file, fsync, rename, directory
// fsync. Every step's error propagates — with sync enabled, a failed
// directory fsync is a failed commit (the rename may not survive a crash),
// and the caller must treat the previous manifest as still current.
func writeManifestTo(fsys FS, path string, m *manifest, noSync bool) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	c := newCW(f, manifestMagic, manifestVersion)
	c.u(uint64(m.nextID))
	c.u(uint64(m.lt.Len()))
	for id := 0; id < m.lt.Len(); id++ {
		c.str(m.lt.Name(int32(id)))
	}
	c.u(uint64(len(m.segs)))
	for _, s := range m.segs {
		c.str(s.name)
		c.u(uint64(s.nEntries))
		c.u(uint64(len(s.tombs)))
		prev := int32(0)
		for i, p := range s.tombs {
			if i == 0 {
				c.u(uint64(p))
			} else {
				c.u(uint64(p - prev))
			}
			prev = p
		}
	}
	if err := c.finish(); err != nil {
		_ = f.Close()
		return err
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	if !noSync {
		return fsys.SyncDir(filepath.Dir(path))
	}
	return nil
}

func readManifest(fsys FS, path string) (*manifest, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeManifest(bytes.NewReader(data))
}

func decodeManifest(r io.Reader) (*manifest, error) {
	d := newRD(r, manifestMagic, manifestVersion, "manifest")
	m := &manifest{nextID: int64(d.u(maxID, "next id")), lt: tree.NewLabelTable()}
	nLabels := d.u(maxLabels, "label count")
	for i := uint64(0); i < nLabels && d.err == nil; i++ {
		name := d.str(maxLabelLen, "label")
		if d.err != nil {
			break
		}
		if id := m.lt.Intern(name); id != int32(i) {
			d.bad("duplicate label %q", name)
		}
	}
	nSegs := d.u(maxSegments, "segment count")
	if d.err != nil {
		return nil, d.err
	}
	seen := make(map[string]bool, int(nSegs))
	for si := uint64(0); si < nSegs; si++ {
		var s manifestSeg
		s.name = d.str(maxNameLen, "segment name")
		nEntries := d.u(maxEntries, "segment entry count")
		nTombs := d.u(nEntries, "tombstone count")
		if d.err != nil {
			return nil, d.err
		}
		if _, ok := segNameSeq(s.name); !ok {
			return nil, corruptf("segment name %q not of the form %s", s.name, segPattern)
		}
		if seen[s.name] {
			return nil, corruptf("segment %q listed twice", s.name)
		}
		seen[s.name] = true
		s.nEntries = int(nEntries)
		prev := int64(-1)
		for ti := uint64(0); ti < nTombs; ti++ {
			var p int64
			if ti == 0 {
				p = int64(d.u(nEntries, "tombstone position"))
			} else {
				p = prev + int64(d.u(nEntries, "tombstone delta"))
			}
			if d.err != nil {
				return nil, d.err
			}
			if p <= prev || p >= int64(nEntries) {
				return nil, corruptf("segment %q: tombstone %d invalid", s.name, p)
			}
			prev = p
			s.tombs = append(s.tombs, int32(p))
		}
		m.segs = append(m.segs, s)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// segNameSeq extracts the sequence number of a segment file name.
func segNameSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".tjsg") {
		return 0, false
	}
	var seq int
	if _, err := fmt.Sscanf(name, segPattern, &seq); err != nil || seq < 0 {
		return 0, false
	}
	if fmt.Sprintf(segPattern, seq) != name {
		return 0, false
	}
	return seq, true
}

// cleanOrphans deletes segment-shaped files in dir that the manifest does not
// reference (a crash between segment write and manifest commit leaves them)
// and stray tmp files, returning the highest sequence number seen anywhere so
// new segments never reuse a name. Quarantined files (see Salvage) do not
// match the segment pattern and are left alone.
func cleanOrphans(fsys FS, dir string, m *manifest) (maxSeq int, err error) {
	live := make(map[string]bool, len(m.segs))
	for _, s := range m.segs {
		if seq, ok := segNameSeq(s.name); ok && seq > maxSeq {
			maxSeq = seq
		}
		live[s.name] = true
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return maxSeq, err
	}
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			// Best-effort: a stray tmp file is inert either way.
			_ = fsys.Remove(filepath.Join(dir, name))
			continue
		}
		seq, ok := segNameSeq(name)
		if !ok {
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		if !live[name] {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return maxSeq, err
			}
		}
	}
	return maxSeq, nil
}

// sortedTombs returns a segment's dead positions ascending, for the manifest.
func sortedTombs(dead []bool) []int32 {
	var out []int32
	for i, dd := range dead {
		if dd {
			out = append(out, int32(i))
		}
	}
	return out
}
