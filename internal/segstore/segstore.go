package segstore

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"treejoin/internal/engine"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// Options tunes a store. The zero value means defaults.
type Options struct {
	// MemtableBudget is the tree count at which the memtable flushes into a
	// new segment (default 512).
	MemtableBudget int
	// CompactMinDead is the tombstone floor of the compaction trigger
	// (default 64): a merge runs only when at least this many entries are
	// dead AND the dead outnumber the live — the token index's compaction
	// rule lifted to segments.
	CompactMinDead int
	// NoBackground runs every triggered compaction synchronously inside the
	// mutating call instead of on the compactor goroutine, and disables the
	// degraded-mode retry goroutine — Flush and Compact then double as the
	// synchronous recovery hooks (tests).
	NoBackground bool
	// NoSync skips fsyncs. Throughput for tests that never crash; never set
	// it when durability matters.
	NoSync bool
	// FS overrides the filesystem the store talks to; nil means the real
	// one. Tests inject fault-raising filesystems here.
	FS FS
	// Salvage makes Open quarantine segment files that fail their integrity
	// checks (renamed to *.quarantine, dropped from the manifest) and open
	// the surviving corpus instead of refusing entirely. The quarantined
	// set is reported by SalvageReport. Only whole corrupt segments are set
	// aside; every readable live tree is kept.
	Salvage bool

	// retryBase/retryMax bound the degraded-mode retry backoff (exponential
	// with jitter); zero means the defaults (50ms / 5s). In-package tests
	// shrink them.
	retryBase time.Duration
	retryMax  time.Duration
	// retryJitter draws the random half of a degraded-mode retry delay: a
	// value in [0, max]. Nil means the default source, the process-wide
	// locked RNG (safe however many stores retry concurrently). In-package
	// fault-sweep tests pin it to make backoff schedules deterministic;
	// under NoBackground the retry loop never runs, so jitter never fires.
	retryJitter func(max time.Duration) time.Duration
}

func (o Options) withDefaults() Options {
	if o.MemtableBudget <= 0 {
		o.MemtableBudget = 512
	}
	if o.CompactMinDead <= 0 {
		o.CompactMinDead = 64
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	if o.retryBase <= 0 {
		o.retryBase = 50 * time.Millisecond
	}
	if o.retryMax <= 0 {
		o.retryMax = 5 * time.Second
	}
	if o.retryJitter == nil {
		o.retryJitter = defaultRetryJitter
	}
	return o
}

// Stats is a snapshot of a store's lifecycle counters.
type Stats struct {
	Segments        int   // segment files currently live
	SegmentsOpened  int64 // segment files decoded since Open/Create
	MemtableTrees   int   // trees in the WAL-backed memtable
	TombstonedTrees int   // dead entries awaiting compaction
	CompactionRuns  int64 // merges performed
	FlushRuns       int64 // memtable → segment flushes
	LiveTrees       int   // live entries (segments + memtable)
	Blocks          int   // distinct tree contents across live segments
	Entries         int   // total segment entries, dead included

	Degraded            bool   // store is read-only pending recovery
	DegradedReason      string // the I/O failure that degraded it ("" when healthy)
	RecoveryAttempts    int64  // degraded-mode recovery attempts (successful or not)
	QuarantinedSegments int    // segments Open(Salvage) set aside
}

// Artifacts supplies per-tree artifacts from the owning corpus's cache, so
// views and token bags are computed once and shared between joins and
// segment writes. Views must return one arena view per tree; Bags reports
// ok=false when a kind cannot be produced for every tree (such kinds are
// simply not persisted).
type Artifacts interface {
	Views(ts []*tree.Tree) []*ted.TreeView
	BagKinds() []string
	Bags(kind string, ts []*tree.Tree) ([][]engine.BagEntry, bool)
}

// LiveTree is one live corpus entry as the store surfaces it: duplicates
// share the Tree, View, and Bags of their canonical block.
type LiveTree struct {
	ID   int64
	Tree *tree.Tree
	View *ted.TreeView
	Bags map[string][]engine.BagEntry
}

// memEntry is one memtable tree.
type memEntry struct {
	id  int64
	blk *block
}

// liveSeg is one open segment: its decoded blocks (canonicalised against the
// store's dedup map), entries, and tombstone state.
type liveSeg struct {
	name    string
	blocks  []*block
	entries []segEntry
	dead    []bool
	nDead   int
}

// loc addresses one live id: a segment entry (seg ≥ 0) or a memtable slot
// (seg == -1).
type loc struct {
	seg int
	pos int
}

// Store is a persistent corpus directory. All methods are safe for
// concurrent use; mutations serialise on one mutex (the corpus layer
// additionally serialises its own writers).
type Store struct {
	dir string
	opt Options
	fs  FS

	mu        sync.Mutex
	lt        *tree.LabelTable
	arts      Artifacts
	segs      []*liveSeg
	mem       []memEntry
	byID      map[int64]loc
	segIDs    map[int64]bool // every segment entry id, dead included (replay skips)
	byHash    map[[32]byte]*block
	nextID    int64
	wal       *walWriter
	walLabels int // lt.Len() after the last WAL record / rewrite
	segSeq    int
	closed    bool
	dirty     bool // manifest on disk lags in-memory tombstones

	// Degraded mode: a failed flush, commit, or compaction leaves the
	// committed on-disk state untouched and flips the store read-only until
	// a recovery commit succeeds (see degraded.go).
	degraded    bool
	degradedErr error
	recoveries  int64
	quarantined []QuarantinedSegment

	segsOpened int64
	compacts   int64
	flushes    int64

	compactCh chan struct{}
	recoverCh chan struct{}
	stopCh    chan struct{}
	wg        sync.WaitGroup
}

// Create initialises an empty store in dir (created if missing; must not
// already hold a store). lt becomes the store's label table — the corpus
// and the store share it; nil starts an empty one.
func Create(dir string, lt *tree.LabelTable, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	fsys := opt.FS
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	if _, err := fsys.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("segstore: %s already holds a store", dir)
	}
	if lt == nil {
		lt = tree.NewLabelTable()
	}
	s := &Store{
		dir:    dir,
		opt:    opt,
		fs:     fsys,
		lt:     lt,
		byID:   make(map[int64]loc),
		segIDs: make(map[int64]bool),
		byHash: make(map[[32]byte]*block),
	}
	if err := s.writeManifestLocked(); err != nil {
		return nil, err
	}
	wal, err := createWAL(fsys, filepath.Join(dir, walName), s.opt.NoSync)
	if err != nil {
		return nil, err
	}
	s.wal = wal
	s.walLabels = lt.Len()
	s.startBackground()
	return s, nil
}

// Open loads the store in dir: manifest, segments (mmap-decoded, content
// addresses verified), WAL replay, orphan cleanup. With Options.Salvage,
// segments that fail integrity checks are quarantined instead of failing the
// open (see Options.Salvage and SalvageReport).
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	fsys := opt.FS
	m, err := readManifest(fsys, filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:    dir,
		opt:    opt,
		fs:     fsys,
		lt:     m.lt,
		byID:   make(map[int64]loc),
		segIDs: make(map[int64]bool),
		byHash: make(map[[32]byte]*block),
		nextID: m.nextID,
	}
	maxSeq, err := cleanOrphans(fsys, dir, m)
	if err != nil {
		return nil, err
	}
	s.segSeq = maxSeq + 1
	prevID := int64(-1)
	var pending []*QuarantinedSegment // quarantined, awaiting an id upper bound
	for _, ms := range m.segs {
		seg, err := s.loadSegment(ms, prevID)
		if err != nil {
			if !opt.Salvage {
				return nil, fmt.Errorf("%s: %w", ms.name, err)
			}
			q := s.quarantineSegment(ms, prevID, err)
			pending = append(pending, q)
			continue
		}
		// Canonicalise blocks against the cross-segment dedup map: equal
		// content addresses collapse to one in-memory block, merging any
		// bag kinds the duplicates carry.
		for i, b := range seg.blocks {
			if canon, ok := s.byHash[b.hash]; ok {
				for kind, bag := range b.bags {
					if _, have := canon.bags[kind]; !have {
						if canon.bags == nil {
							canon.bags = make(map[string][]engine.BagEntry, len(b.bags))
						}
						canon.bags[kind] = bag
					}
				}
				seg.blocks[i] = canon
			} else {
				s.byHash[b.hash] = b
			}
		}
		if len(seg.entries) > 0 {
			for _, q := range pending {
				q.IDBefore = seg.entries[0].id
			}
			pending = nil
		}
		for pos, e := range seg.entries {
			prevID = e.id
			s.segIDs[e.id] = true
			if !seg.dead[pos] {
				s.byID[e.id] = loc{seg: len(s.segs), pos: pos}
			}
			if e.id >= s.nextID {
				s.nextID = e.id + 1
			}
		}
		s.segs = append(s.segs, seg)
		s.segsOpened++
	}
	if err := s.replayLocked(); err != nil {
		return nil, err
	}
	if len(s.quarantined) > 0 {
		// Commit the salvage: a manifest without the quarantined segments,
		// so the next open does not trip over them again.
		if err := s.writeManifestLocked(); err != nil {
			return nil, fmt.Errorf("segstore: committing salvage: %w", err)
		}
	}
	s.walLabels = s.lt.Len()
	wal, err := openWALForAppend(fsys, filepath.Join(dir, walName), s.opt.NoSync)
	if err != nil {
		return nil, err
	}
	s.wal = wal
	s.startBackground()
	return s, nil
}

// loadSegment reads and validates one manifest-listed segment without
// touching store state: the decode (bulk CRC, structural checks, arena-view
// validation), the manifest's entry count, and id ascension past prevID.
func (s *Store) loadSegment(ms manifestSeg, prevID int64) (*liveSeg, error) {
	blocks, entries, err := readSegmentFile(s.fs, filepath.Join(s.dir, ms.name), s.lt)
	if err != nil {
		return nil, err
	}
	if len(entries) != ms.nEntries {
		return nil, corruptf("%d entries, manifest says %d", len(entries), ms.nEntries)
	}
	p := prevID
	for _, e := range entries {
		if e.id <= p {
			return nil, corruptf("entry id %d not ascending across segments", e.id)
		}
		p = e.id
	}
	seg := &liveSeg{name: ms.name, blocks: blocks, entries: entries, dead: make([]bool, len(entries))}
	for _, tp := range ms.tombs {
		seg.dead[tp] = true
		seg.nDead++
	}
	return seg, nil
}

// replayLocked applies the WAL onto the manifest state. Rules, each keyed to
// a crash window of the commit protocol (manifest rename before WAL
// rewrite):
//
//   - 'A' whose id any segment knows (live or dead) is skipped — the add was
//     flushed and the stale WAL not yet rewritten; if the id is dead, a
//     later 'R' in this same WAL (or the manifest itself) tombstoned it.
//   - 'A' with an unknown id joins the memtable. Applied ids must be
//     strictly ascending and above every segment id — they were assigned
//     monotonically after every flushed tree.
//   - 'R' drops a memtable entry, tombstones a live segment entry, and is
//     skipped for unknown or already-dead ids (the remove — or the
//     compaction that erased the tree entirely — already committed).
//
// Any record violating these is indistinguishable from corruption and
// truncates the WAL from that point, like a torn tail.
func (s *Store) replayLocked() error {
	path := filepath.Join(s.dir, walName)
	if _, err := s.fs.Stat(path); notExist(err) {
		return rewriteWALFile(s.fs, path, nil, nil, s.lt.Len(), s.opt.NoSync)
	}
	ops, err := replayWAL(s.fs, path, s.lt, s.opt.NoSync)
	if err != nil {
		return err
	}
	maxSegID := int64(-1)
	for id := range s.segIDs {
		if id > maxSegID {
			maxSegID = id
		}
	}
	for _, op := range ops {
		if op.remove {
			l, ok := s.byID[op.id]
			if !ok {
				continue
			}
			s.removeLocLocked(op.id, l)
			continue
		}
		if s.segIDs[op.id] {
			continue
		}
		if _, ok := s.byID[op.id]; ok {
			continue
		}
		if op.id <= maxSegID || (len(s.mem) > 0 && op.id <= s.mem[len(s.mem)-1].id) {
			// Unreachable by any crash of the commit protocol: corruption.
			break
		}
		s.addMemLocked(op.id, op.t)
	}
	return nil
}

// addMemLocked inserts a tree into the memtable under id, deduping its
// content against every known block.
func (s *Store) addMemLocked(id int64, t *tree.Tree) {
	nb := s.blockFor(t)
	s.mem = append(s.mem, memEntry{id: id, blk: nb})
	s.byID[id] = loc{seg: -1, pos: len(s.mem) - 1}
	if id >= s.nextID {
		s.nextID = id + 1
	}
}

// blockFor returns the canonical block of t's content, building view + hash
// on first sight.
func (s *Store) blockFor(t *tree.Tree) *block {
	var v *ted.TreeView
	if s.arts != nil {
		v = s.arts.Views([]*tree.Tree{t})[0]
	} else {
		v = ted.BuildViews([]*tree.Tree{t})[0]
	}
	nb := newBlock(t, v)
	if canon, ok := s.byHash[nb.hash]; ok {
		return canon
	}
	s.byHash[nb.hash] = nb
	return nb
}

// removeLocLocked erases one live id: memtable splice or tombstone.
func (s *Store) removeLocLocked(id int64, l loc) {
	delete(s.byID, id)
	if l.seg >= 0 {
		seg := s.segs[l.seg]
		seg.dead[l.pos] = true
		seg.nDead++
		s.dirty = true
		return
	}
	s.mem = append(s.mem[:l.pos], s.mem[l.pos+1:]...)
	for i := l.pos; i < len(s.mem); i++ {
		s.byID[s.mem[i].id] = loc{seg: -1, pos: i}
	}
}

// SetArtifacts wires the corpus cache in; views and bags flow through it
// from now on.
func (s *Store) SetArtifacts(a Artifacts) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.arts = a
}

// Labels returns the store's label table (shared with the owning corpus).
func (s *Store) Labels() *tree.LabelTable { return s.lt }

// NextID returns the next id the corpus should assign.
func (s *Store) NextID() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextID
}

// Live returns every live entry in position order — segments in manifest
// order, then the memtable; ids ascend throughout.
func (s *Store) Live() []LiveTree {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]LiveTree, 0, len(s.byID))
	for _, seg := range s.segs {
		for pos, e := range seg.entries {
			if seg.dead[pos] {
				continue
			}
			b := seg.blocks[e.blk]
			out = append(out, LiveTree{ID: e.id, Tree: b.t, View: b.view, Bags: b.bags})
		}
	}
	for _, me := range s.mem {
		out = append(out, LiveTree{ID: me.id, Tree: me.blk.t, View: me.blk.view, Bags: me.blk.bags})
	}
	return out
}

// Add appends (id, t) through the WAL into the memtable, flushing into a new
// segment when the budget fills. id must be at least NextID() and t must use
// the store's label table. An error means the add did not happen (and will
// not resurface after a reopen); a nil return means it is durable — if the
// flush it triggered then fails, the store degrades (see ErrDegraded) but
// the add itself is already safe in the WAL.
func (s *Store) Add(id int64, t *tree.Tree) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("segstore: store is closed")
	}
	if s.degraded {
		return s.degradedErrLocked()
	}
	if t.Labels != s.lt {
		return fmt.Errorf("segstore: tree does not use the store's label table")
	}
	if id < s.nextID {
		return fmt.Errorf("segstore: id %d below next id %d", id, s.nextID)
	}
	if err := s.wal.append(encodeAdd(id, s.lt, s.walLabels, t)); err != nil {
		if s.wal.failed() {
			s.enterDegradedLocked(err)
		}
		return err
	}
	s.walLabels = s.lt.Len()
	s.addMemLocked(id, t)
	if len(s.mem) >= s.opt.MemtableBudget {
		if err := s.flushLocked(); err != nil {
			s.enterDegradedLocked(err)
		}
	}
	return nil
}

// Remove tombstones id: WAL record first, then a memtable drop or a segment
// tombstone; enough tombstones trigger compaction. The same error contract
// as Add: an error means the remove did not happen; a failed compaction
// behind a successful remove degrades the store instead of failing the call.
func (s *Store) Remove(id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("segstore: store is closed")
	}
	if s.degraded {
		return s.degradedErrLocked()
	}
	l, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("segstore: id %d is not live", id)
	}
	if err := s.wal.append(encodeRemove(id)); err != nil {
		if s.wal.failed() {
			s.enterDegradedLocked(err)
		}
		return err
	}
	s.removeLocLocked(id, l)
	s.maybeCompactLocked()
	return nil
}

// Bulk populates a fresh, empty store with a whole corpus in one segment —
// the SaveTo path. ids must ascend; nextID must exceed them all.
func (s *Store) Bulk(ids []int64, ts []*tree.Tree, nextID int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("segstore: store is closed")
	}
	if s.degraded {
		return s.degradedErrLocked()
	}
	if len(s.segs) != 0 || len(s.mem) != 0 {
		return fmt.Errorf("segstore: Bulk needs an empty store")
	}
	prev := int64(-1)
	for i, id := range ids {
		if id <= prev {
			return fmt.Errorf("segstore: Bulk ids not ascending at %d", i)
		}
		prev = id
		if ts[i].Labels != s.lt {
			return fmt.Errorf("segstore: tree %d does not use the store's label table", i)
		}
	}
	for i, id := range ids {
		s.addMemLocked(id, ts[i])
	}
	if nextID > s.nextID {
		s.nextID = nextID
	}
	var err error
	if len(s.mem) == 0 {
		err = s.writeManifestLocked()
	} else {
		err = s.flushLocked()
	}
	if err != nil {
		// Bulk bypasses the WAL (durability is the flush itself), so unlike
		// Add the failure surfaces to the caller — and the store degrades,
		// since the in-memory state now leads the committed one.
		s.enterDegradedLocked(err)
		return err
	}
	return nil
}

// Flush forces the memtable into a segment (no-op when empty, beyond
// persisting pending tombstones). On a degraded store, Flush is the
// synchronous recovery hook: it retries the failed commit and clears
// degraded mode on success.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("segstore: store is closed")
	}
	if s.degraded {
		return s.recoverLocked()
	}
	var err error
	switch {
	case len(s.mem) > 0:
		err = s.flushLocked()
	case s.dirty:
		err = s.commitLocked()
	default:
		return nil
	}
	if err != nil {
		s.enterDegradedLocked(err)
	}
	return err
}

// flushLocked writes the memtable as a new segment, then commits: manifest
// rename first (the commit point), WAL rewrite second. The segment file is
// fully written before any in-memory state changes, so a failure before the
// commit leaves the store exactly as it was (minus an orphan file the next
// open removes).
func (s *Store) flushLocked() error {
	blocks, entries := s.collectMem()
	bags := s.collectBags(blocks)
	name := fmt.Sprintf(segPattern, s.segSeq)
	if err := writeSegmentFile(s.fs, filepath.Join(s.dir, name), s.lt, blocks, entries, bags, s.opt.NoSync); err != nil {
		return err
	}
	s.segSeq++
	seg := &liveSeg{name: name, blocks: blocks, entries: entries, dead: make([]bool, len(entries))}
	s.segs = append(s.segs, seg)
	for pos, e := range entries {
		s.byID[e.id] = loc{seg: len(s.segs) - 1, pos: pos}
		s.segIDs[e.id] = true
	}
	s.mem = nil
	s.flushes++
	if err := s.commitLocked(); err != nil {
		return err
	}
	s.maybeCompactLocked()
	return nil
}

// collectMem lays the memtable out as (blocks, entries): distinct blocks in
// first-use order, entries referencing them by index.
func (s *Store) collectMem() ([]*block, []segEntry) {
	idx := make(map[*block]int32)
	var blocks []*block
	entries := make([]segEntry, 0, len(s.mem))
	for _, me := range s.mem {
		bi, ok := idx[me.blk]
		if !ok {
			bi = int32(len(blocks))
			idx[me.blk] = bi
			blocks = append(blocks, me.blk)
		}
		entries = append(entries, segEntry{id: me.id, blk: bi})
	}
	return blocks, entries
}

// collectBags gathers, per persistable kind, one bag per block. A kind is
// persisted when every block has one — from an earlier segment load or built
// through the corpus artifacts; partial coverage drops the kind (the cache
// rebuilds those bags lazily after a reopen).
func (s *Store) collectBags(blocks []*block) map[string][][]engine.BagEntry {
	kinds := make(map[string]bool)
	for _, b := range blocks {
		for k := range b.bags {
			kinds[k] = true
		}
	}
	if s.arts != nil {
		for _, k := range s.arts.BagKinds() {
			kinds[k] = true
		}
	}
	if len(kinds) == 0 || len(blocks) == 0 {
		return nil
	}
	ts := make([]*tree.Tree, len(blocks))
	for i, b := range blocks {
		ts[i] = b.t
	}
	out := make(map[string][][]engine.BagEntry, len(kinds))
kind:
	for kind := range kinds {
		perBlock := make([][]engine.BagEntry, len(blocks))
		var missing []int
		for i, b := range blocks {
			if bag, ok := b.bags[kind]; ok {
				perBlock[i] = bag
			} else {
				missing = append(missing, i)
			}
		}
		if len(missing) > 0 {
			if s.arts == nil {
				continue
			}
			missTs := make([]*tree.Tree, len(missing))
			for j, i := range missing {
				missTs[j] = ts[i]
			}
			built, ok := s.arts.Bags(kind, missTs)
			if !ok {
				continue kind
			}
			for j, i := range missing {
				perBlock[i] = built[j]
				if blocks[i].bags == nil {
					blocks[i].bags = make(map[string][]engine.BagEntry, len(kinds))
				}
				blocks[i].bags[kind] = built[j]
			}
		}
		out[kind] = perBlock
	}
	return out
}

// commitLocked is the two-file commit: manifest tmp+rename (after which the
// new epoch is the truth), then a WAL rewrite holding exactly the current
// memtable. A crash between the two leaves the stale-WAL window replayLocked
// is built for.
func (s *Store) commitLocked() error {
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	return s.rewriteWALLocked()
}

func (s *Store) writeManifestLocked() error {
	m := &manifest{nextID: s.nextID, lt: s.lt}
	for _, seg := range s.segs {
		m.segs = append(m.segs, manifestSeg{name: seg.name, nEntries: len(seg.entries), tombs: sortedTombs(seg.dead)})
	}
	if err := writeManifestTo(s.fs, filepath.Join(s.dir, manifestName), m, s.opt.NoSync); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

func (s *Store) rewriteWALLocked() error {
	ids := make([]int64, len(s.mem))
	ts := make([]*tree.Tree, len(s.mem))
	for i, me := range s.mem {
		ids[i] = me.id
		ts[i] = me.blk.t
	}
	// The old writer is done either way; a close error does not matter (the
	// rewrite below replaces the file wholesale) and a failed rewrite leaves
	// s.wal closed, which append reports as errWALClosed until recovery.
	_ = s.wal.close()
	if err := rewriteWALFile(s.fs, filepath.Join(s.dir, walName), ids, ts, s.lt.Len(), s.opt.NoSync); err != nil {
		return err
	}
	wal, err := openWALForAppend(s.fs, filepath.Join(s.dir, walName), s.opt.NoSync)
	if err != nil {
		return err
	}
	s.wal = wal
	s.walLabels = s.lt.Len()
	return nil
}

// maybeCompactLocked applies the compaction trigger — at least CompactMinDead
// tombstones and more dead than live — synchronously under NoBackground,
// otherwise by waking the compactor. A synchronous compaction failure
// degrades the store (the mutation that triggered it has already committed).
func (s *Store) maybeCompactLocked() {
	dead, live := 0, 0
	for _, seg := range s.segs {
		dead += seg.nDead
		live += len(seg.entries) - seg.nDead
	}
	if dead < s.opt.CompactMinDead || dead <= live {
		return
	}
	if s.opt.NoBackground {
		if err := s.compactLocked(); err != nil {
			s.enterDegradedLocked(err)
		}
		return
	}
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

// Compact forces a full merge of all segments into one, dropping every
// tombstoned entry and deduplicating blocks across segments on disk. On a
// degraded store it first retries recovery, then compacts.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("segstore: store is closed")
	}
	if s.degraded {
		if err := s.recoverLocked(); err != nil {
			return err
		}
	}
	if err := s.compactLocked(); err != nil {
		s.enterDegradedLocked(err)
		return err
	}
	return nil
}

// compactLocked merges every segment into one. Soundness mirrors the token
// index's generation swap: the merged segment is built from the live entries
// of the current epoch while holding the mutation lock, so no live entry can
// be dropped; the manifest rename publishes it atomically, and only then are
// the old files unlinked.
func (s *Store) compactLocked() error {
	if len(s.segs) == 0 {
		if s.dirty {
			return s.commitLocked()
		}
		return nil
	}
	totalDead := 0
	for _, seg := range s.segs {
		totalDead += seg.nDead
	}
	if len(s.segs) == 1 && totalDead == 0 {
		return nil // already fully merged
	}
	idx := make(map[*block]int32)
	var blocks []*block
	var entries []segEntry
	for _, seg := range s.segs {
		for pos, e := range seg.entries {
			if seg.dead[pos] {
				continue
			}
			b := seg.blocks[e.blk]
			bi, ok := idx[b]
			if !ok {
				bi = int32(len(blocks))
				idx[b] = bi
				blocks = append(blocks, b)
			}
			entries = append(entries, segEntry{id: e.id, blk: bi})
		}
	}
	bags := s.collectBags(blocks)
	name := fmt.Sprintf(segPattern, s.segSeq)
	if err := writeSegmentFile(s.fs, filepath.Join(s.dir, name), s.lt, blocks, entries, bags, s.opt.NoSync); err != nil {
		return err
	}
	s.segSeq++
	old := s.segs
	seg := &liveSeg{name: name, blocks: blocks, entries: entries, dead: make([]bool, len(entries))}
	s.segs = []*liveSeg{seg}
	s.segIDs = make(map[int64]bool, len(entries))
	for pos, e := range entries {
		s.byID[e.id] = loc{seg: 0, pos: pos}
		s.segIDs[e.id] = true
	}
	// Blocks referenced by no live entry leave the dedup map with their
	// segments — a re-added duplicate simply recomputes its block.
	s.byHash = make(map[[32]byte]*block, len(blocks))
	for _, b := range blocks {
		s.byHash[b.hash] = b
	}
	for _, me := range s.mem {
		s.byHash[me.blk.hash] = me.blk
	}
	s.compacts++
	if err := s.commitLocked(); err != nil {
		return err
	}
	for _, o := range old {
		// Best-effort: a file that cannot be unlinked is an orphan the next
		// open removes (the committed manifest no longer references it).
		_ = s.fs.Remove(filepath.Join(s.dir, o.name))
	}
	return nil
}

// startBackground launches the compactor and the degraded-mode recovery
// loop. Under NoBackground neither runs: compaction happens inline and
// Flush/Compact double as the recovery hooks.
func (s *Store) startBackground() {
	s.compactCh = make(chan struct{}, 1)
	s.recoverCh = make(chan struct{}, 1)
	s.stopCh = make(chan struct{})
	if s.opt.NoBackground {
		return
	}
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		for range s.compactCh {
			s.mu.Lock()
			if !s.closed && !s.degraded {
				if err := s.compactLocked(); err != nil {
					s.enterDegradedLocked(err)
				}
			}
			s.mu.Unlock()
		}
	}()
	go s.recoveryLoop()
}

// Close flushes the memtable into a segment, persists pending tombstones,
// stops the background goroutines, and releases the WAL. The directory then
// reopens purely from segments. Closing a degraded store attempts one final
// recovery and reports its error; the on-disk state stays consistent either
// way (that is the degraded-mode invariant).
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	var err error
	switch {
	case s.degraded:
		err = s.recoverLocked()
		if err == nil && len(s.mem) > 0 {
			err = s.flushLocked()
		}
	case len(s.mem) > 0:
		err = s.flushLocked()
	case s.dirty:
		err = s.commitLocked()
	}
	s.closed = true
	s.mu.Unlock()
	close(s.compactCh)
	close(s.stopCh)
	s.wg.Wait()
	if cerr := s.wal.close(); err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the lifecycle counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Segments:            len(s.segs),
		SegmentsOpened:      s.segsOpened,
		MemtableTrees:       len(s.mem),
		CompactionRuns:      s.compacts,
		FlushRuns:           s.flushes,
		LiveTrees:           len(s.byID),
		Degraded:            s.degraded,
		RecoveryAttempts:    s.recoveries,
		QuarantinedSegments: len(s.quarantined),
	}
	if s.degradedErr != nil {
		st.DegradedReason = s.degradedErr.Error()
	}
	seen := make(map[*block]bool)
	for _, seg := range s.segs {
		st.TombstonedTrees += seg.nDead
		st.Entries += len(seg.entries)
		for _, b := range seg.blocks {
			if !seen[b] {
				seen[b] = true
				st.Blocks++
			}
		}
	}
	return st
}
