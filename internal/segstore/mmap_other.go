//go:build !linux

package segstore

import "os"

// readFileBytes reads path whole; the non-linux fallback for the mmap-backed
// segment reader.
func readFileBytes(path string) ([]byte, func(), error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return b, func() {}, nil
}
