package segstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"treejoin/internal/engine"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// testOpts: synchronous compaction, no fsync — the unit tests exercise
// logic, not the disks.
func testOpts() Options {
	return Options{MemtableBudget: 4, CompactMinDead: 3, NoBackground: true, NoSync: true}
}

var testLabels = []string{"a", "b", "c", "d", "e"}

func randTestTree(rng *rand.Rand, lt *tree.LabelTable, maxExtra int) *tree.Tree {
	b := tree.NewBuilder(lt)
	ids := []int32{b.Root(testLabels[rng.Intn(len(testLabels))])}
	for k := rng.Intn(maxExtra + 1); k > 0; k-- {
		p := ids[rng.Intn(len(ids))]
		ids = append(ids, b.Child(p, testLabels[rng.Intn(len(testLabels))]))
	}
	return b.MustBuild()
}

// chainTree builds the deterministic tree a(b(c(...))) of depth n over lt.
func chainTree(lt *tree.LabelTable, n int) *tree.Tree {
	b := tree.NewBuilder(lt)
	id := b.Root(testLabels[0])
	for i := 1; i < n; i++ {
		id = b.Child(id, testLabels[i%len(testLabels)])
	}
	return b.MustBuild()
}

// checkLive asserts the store's live view matches (ids, trees) exactly, in
// order, with ascending ids throughout.
func checkLive(t *testing.T, s *Store, ids []int64, trees []*tree.Tree) {
	t.Helper()
	live := s.Live()
	if len(live) != len(ids) {
		t.Fatalf("%d live trees, want %d", len(live), len(ids))
	}
	prev := int64(-1)
	for i, lv := range live {
		if lv.ID != ids[i] {
			t.Fatalf("live[%d].ID = %d, want %d", i, lv.ID, ids[i])
		}
		if lv.ID <= prev {
			t.Fatalf("live ids not ascending at %d", i)
		}
		prev = lv.ID
		if !tree.Equal(lv.Tree, trees[i]) {
			t.Fatalf("live[%d] tree content differs", i)
		}
		if lv.View == nil || lv.View.T != lv.Tree {
			t.Fatalf("live[%d] view missing or detached", i)
		}
	}
}

// TestLifecycleReopen: adds, removes, close, reopen — the live set survives
// bit-identically, pending tombstones included.
func TestLifecycleReopen(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	s, err := Create(dir, nil, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	var trees []*tree.Tree
	for i := 0; i < 13; i++ {
		tr := randTestTree(rng, s.Labels(), 12)
		id := s.NextID()
		if err := s.Add(id, tr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		trees = append(trees, tr)
	}
	// Remove two: one already flushed (budget 4 → early ids in segments),
	// one still in the memtable.
	for _, drop := range []int{1, len(ids) - 2} {
		if err := s.Remove(ids[drop]); err != nil {
			t.Fatal(err)
		}
		ids = append(ids[:drop], ids[drop+1:]...)
		trees = append(trees[:drop], trees[drop+1:]...)
	}
	checkLive(t, s, ids, trees)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(99, trees[0]); err == nil {
		t.Fatal("Add after Close succeeded")
	}

	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkLive(t, s2, ids, trees)
	if st := s2.Stats(); st.MemtableTrees != 0 {
		t.Fatalf("reopened store has %d memtable trees, want 0 (Close flushed)", st.MemtableTrees)
	}
	if s2.NextID() < ids[len(ids)-1]+1 {
		t.Fatalf("next id %d not above max live id", s2.NextID())
	}
}

// TestDedup: identical trees collapse to one block per segment and one
// canonical in-memory block, while every entry stays live.
func TestDedup(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, nil, Options{MemtableBudget: 100, NoBackground: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := chainTree(s.Labels(), 6)
	for i := 0; i < 10; i++ {
		// Distinct *tree.Tree instances with identical content.
		cp := chainTree(s.Labels(), 6)
		if i == 0 {
			cp = tr
		}
		if err := s.Add(s.NextID(), cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Blocks != 1 || st.Entries != 10 || st.LiveTrees != 10 {
		t.Fatalf("stats = %+v, want 1 block / 10 entries / 10 live", st)
	}
	s.Close()

	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	live := s2.Live()
	if len(live) != 10 {
		t.Fatalf("%d live after reopen, want 10", len(live))
	}
	for _, lv := range live[1:] {
		if lv.Tree != live[0].Tree {
			t.Fatal("duplicate entries do not share the canonical block")
		}
	}
}

// TestMemtableBudget: the budget forces flushes; the live set is unaffected.
func TestMemtableBudget(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	s, err := Create(dir, nil, testOpts()) // budget 4
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ids []int64
	var trees []*tree.Tree
	for i := 0; i < 11; i++ {
		tr := randTestTree(rng, s.Labels(), 8)
		id := s.NextID()
		if err := s.Add(id, tr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		trees = append(trees, tr)
	}
	st := s.Stats()
	if st.FlushRuns < 2 || st.Segments < 2 {
		t.Fatalf("budget 4 after 11 adds: %+v, want ≥2 flushes/segments", st)
	}
	if st.MemtableTrees >= 4 {
		t.Fatalf("memtable holds %d ≥ budget", st.MemtableTrees)
	}
	checkLive(t, s, ids, trees)
}

// TestCompaction: tombstones past the trigger merge everything into one
// segment with no dead entries and no stale files on disk.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	s, err := Create(dir, nil, testOpts()) // CompactMinDead 3, synchronous
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ids []int64
	var trees []*tree.Tree
	for i := 0; i < 12; i++ {
		tr := randTestTree(rng, s.Labels(), 8)
		id := s.NextID()
		if err := s.Add(id, tr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		trees = append(trees, tr)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Remove flushed trees until dead > live forces the merge.
	for len(ids) > 4 {
		if err := s.Remove(ids[0]); err != nil {
			t.Fatal(err)
		}
		ids, trees = ids[1:], trees[1:]
	}
	st := s.Stats()
	if st.CompactionRuns == 0 {
		t.Fatalf("no compaction ran: %+v", st)
	}
	// Straggler tombstones below the trigger merge away under a forced pass.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st = s.Stats(); st.Segments != 1 || st.TombstonedTrees != 0 {
		t.Fatalf("post-compaction stats %+v, want 1 clean segment", st)
	}
	checkLive(t, s, ids, trees)
	des, _ := os.ReadDir(dir)
	segFiles := 0
	for _, de := range des {
		if _, ok := segNameSeq(de.Name()); ok {
			segFiles++
		}
	}
	if segFiles != 1 {
		t.Fatalf("%d segment files on disk, want 1", segFiles)
	}
}

// TestAbandonReopen: a store never closed (crash) recovers its memtable from
// the WAL, torn tails and trailing garbage included.
func TestAbandonReopen(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	s, err := Create(dir, nil, Options{MemtableBudget: 100, NoBackground: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	var trees []*tree.Tree
	for i := 0; i < 6; i++ {
		tr := randTestTree(rng, s.Labels(), 10)
		id := s.NextID()
		if err := s.Add(id, tr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		trees = append(trees, tr)
	}
	if err := s.Remove(ids[2]); err != nil {
		t.Fatal(err)
	}
	ids = append(ids[:2], ids[3:]...)
	trees = append(trees[:2], trees[3:]...)
	// Abandon without Close; everything lives only in the WAL.

	walPath := filepath.Join(dir, walName)
	pristine, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkLive(t, s2, ids, trees)
	s2.Close()

	// Trailing garbage after the last record: replay keeps every whole
	// record and truncates the tail.
	if err := os.WriteFile(walPath, append(append([]byte{}, pristine...), 0xde, 0xad, 0xbe), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkLive(t, s3, ids, trees)
	s3.Close()
}

// TestOrphanCleanup: segment files the manifest does not reference (a crash
// between segment write and manifest commit) are deleted at open, and their
// names are never reused.
func TestOrphanCleanup(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, nil, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(s.NextID(), chainTree(s.Labels(), 3)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	orphan := filepath.Join(dir, "seg-000777.tjsg")
	if err := os.WriteFile(orphan, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "MANIFEST.tmp")
	if err := os.WriteFile(tmp, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan segment survived open")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stray tmp file survived open")
	}
	if s2.segSeq <= 777 {
		t.Fatalf("segment sequence %d reuses the orphan's range", s2.segSeq)
	}
}

// TestBulk: the SaveTo path — one segment holding a whole corpus, dedup
// included, reopening bit-identically.
func TestBulk(t *testing.T) {
	dir := t.TempDir()
	lt := tree.NewLabelTable()
	trees := []*tree.Tree{chainTree(lt, 3), chainTree(lt, 5), chainTree(lt, 3)}
	ids := []int64{2, 5, 9}
	s, err := Create(dir, lt, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bulk(ids, trees, 12); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Blocks != 2 || st.Entries != 3 {
		t.Fatalf("stats %+v, want 2 blocks / 3 entries", st)
	}
	s.Close()
	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	checkLive(t, s2, ids, trees)
	if got := s2.NextID(); got != 12 {
		t.Fatalf("next id %d, want 12", got)
	}
}

// TestBagsPersist: bags supplied at flush come back from the segment on
// reopen, per entry, sorted, with duplicates sharing them.
func TestBagsPersist(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, nil, Options{MemtableBudget: 100, NoBackground: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s.SetArtifacts(labelBagArtifacts{})
	rng := rand.New(rand.NewSource(11))
	var trees []*tree.Tree
	for i := 0; i < 5; i++ {
		tr := randTestTree(rng, s.Labels(), 6)
		trees = append(trees, tr)
		if err := s.Add(s.NextID(), tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, lv := range s2.Live() {
		bag, ok := lv.Bags["tokidx/test-labels"]
		if !ok {
			t.Fatalf("live[%d] lost its bag", i)
		}
		want := labelBag(trees[i])
		if len(bag) != len(want) {
			t.Fatalf("live[%d] bag %v, want %v", i, bag, want)
		}
		for j := range bag {
			if bag[j] != want[j] {
				t.Fatalf("live[%d] bag %v, want %v", i, bag, want)
			}
		}
	}
}

// labelBag is the stub tokenisation: sorted (label, multiplicity) entries.
func labelBag(t *tree.Tree) []engine.BagEntry {
	counts := map[uint64]int32{}
	for i := range t.Nodes {
		counts[uint64(t.Nodes[i].Label)]++
	}
	keys := make([]uint64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; tiny
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	out := make([]engine.BagEntry, len(keys))
	for i, k := range keys {
		out[i] = engine.BagEntry{Key: k, Count: counts[k]}
	}
	return out
}

// labelBagArtifacts is a deterministic Artifacts stub over labelBag.
type labelBagArtifacts struct{}

func (labelBagArtifacts) Views(ts []*tree.Tree) []*ted.TreeView { return ted.BuildViews(ts) }
func (labelBagArtifacts) BagKinds() []string                    { return []string{"tokidx/test-labels"} }
func (labelBagArtifacts) Bags(kind string, ts []*tree.Tree) ([][]engine.BagEntry, bool) {
	if kind != "tokidx/test-labels" {
		return nil, false
	}
	out := make([][]engine.BagEntry, len(ts))
	for i, t := range ts {
		out[i] = labelBag(t)
	}
	return out, true
}
