package segstore

import (
	"errors"
	"math/rand"
	"testing"
)

// The fault-sweep property: take a mutation history, replay it injecting a
// fault at every single filesystem operation index, and hold the store to
// its acknowledgment contract at each one —
//
//   - a mutation that returns an error is unacknowledged: it never appears
//     after a reopen;
//   - a mutation that returns nil is acknowledged: with sync on it survives
//     anything, including a power cut at the very next operation;
//   - after a transient fault the store is either still usable or degraded
//     with a recovery path that works once the fault clears;
//   - nothing panics, and every reopen yields a store that accepts writes.
//
// Transient faults (EIO, ENOSPC, short write) run the history to completion,
// recovering on the spot whenever the store degrades, and the survivors must
// equal the acknowledged model exactly. The power-cut arm stops at the first
// error and reopens three crash images — all unsynced bytes lost, half lost
// (torn writes), none lost — and each must recover to the acknowledged model,
// give or take only the single in-flight operation the cut interrupted.

const sweepDir = "store"

func sweepOptions(fs FS) Options {
	return Options{MemtableBudget: 3, CompactMinDead: 2, NoBackground: true, FS: fs}
}

// sweepOp applies scripted operation i of history hist to s, returning the
// op's model effect and the store's verdict. The op kind and tree content
// depend only on (hist, i) and the model size, so every sweep run attempts
// the same logical history.
func sweepOp(s *Store, hist int64, i int, model *modelState) (effect modelState, err error) {
	rng := rand.New(rand.NewSource(hist*1000 + int64(i)))
	if len(model.ids) > 0 && rng.Intn(3) == 0 {
		k := rng.Intn(len(model.ids))
		effect = model.clone()
		effect.ids = append(effect.ids[:k], effect.ids[k+1:]...)
		effect.trees = append(effect.trees[:k], effect.trees[k+1:]...)
		err = s.Remove(model.ids[k])
		return effect, err
	}
	tr := randTestTree(rng, s.Labels(), 8)
	id := s.NextID()
	effect = model.clone()
	effect.ids = append(effect.ids, id)
	effect.trees = append(effect.trees, tr)
	err = s.Add(id, tr)
	return effect, err
}

const sweepHistoryLen = 24

// runTransientSweep replays history hist with a single-shot fault of the
// given kind at filesystem op index `at` (fNone, any: the fault-free
// baseline), recovering in place whenever the store degrades, and checks the
// reopened store against the acknowledged model. Returns the op count of the
// run for the caller to size the sweep.
func runTransientSweep(t *testing.T, hist int64, kind faultKind, at int) int {
	t.Helper()
	fs := newErrFS()
	s, err := Create(sweepDir, nil, sweepOptions(fs))
	if err != nil {
		t.Fatalf("hist %d: create: %v", hist, err)
	}
	fs.arm(kind, at)
	model := modelState{}
	for i := 0; i < sweepHistoryLen; i++ {
		effect, err := sweepOp(s, hist, i, &model)
		if err == nil {
			model = effect
			continue
		}
		// The mutation is unacknowledged. If it degraded the store, the
		// fault is spent, so recovery must succeed right away and the rest
		// of the history must proceed normally.
		if s.Stats().Degraded {
			if rerr := s.Flush(); rerr != nil {
				t.Fatalf("hist %d %v@%d op %d: recovery after %v failed: %v", hist, kind, at, i, err, rerr)
			}
			if s.Stats().Degraded {
				t.Fatalf("hist %d %v@%d op %d: still degraded after successful recovery", hist, kind, at, i)
			}
		}
	}
	// A fault on the final op's triggered flush degrades the store after its
	// last acknowledgment, with no later op to trip the in-loop recovery.
	if s.Stats().Degraded {
		if rerr := s.Flush(); rerr != nil {
			t.Fatalf("hist %d %v@%d: end-of-history recovery failed: %v", hist, kind, at, rerr)
		}
	}
	if st := s.Stats(); st.Degraded {
		t.Fatalf("hist %d %v@%d: degraded at end of history: %s", hist, kind, at, st.DegradedReason)
	}
	// Close may land on the fault index; its failure modes are the same
	// commit failures the reopen below must absorb.
	_ = s.Close()
	ops := fs.opCount()
	fs.reset()
	s2, err := Open(sweepDir, sweepOptions(fs))
	if err != nil {
		t.Fatalf("hist %d %v@%d: reopen: %v", hist, kind, at, err)
	}
	defer s2.Close()
	live := s2.Live()
	if !matchesSomePrefix(live, []modelState{model}) {
		t.Fatalf("hist %d %v@%d: reopened store (%d live) does not equal the %d acknowledged ops",
			hist, kind, at, len(live), len(model.ids))
	}
	return ops
}

// runPowerCutSweep cuts power at filesystem op index `at`, then reopens three
// crash images per cut: all unsynced bytes dropped, half kept (torn writes),
// all kept. Each must open to the acknowledged model — with, at most, the one
// in-flight mutation the cut interrupted — and accept new writes.
func runPowerCutSweep(t *testing.T, hist int64, at int) {
	t.Helper()
	fs := newErrFS()
	s, err := Create(sweepDir, nil, sweepOptions(fs))
	if err != nil {
		t.Fatalf("hist %d: create: %v", hist, err)
	}
	fs.arm(fPowerCut, at)
	model := modelState{}
	allowed := []modelState{model}
	for i := 0; i < sweepHistoryLen; i++ {
		effect, err := sweepOp(s, hist, i, &model)
		if err == nil {
			model = effect
			allowed = []modelState{model}
			continue
		}
		// The interrupted op is the only possible divergence: a rejected op
		// (ErrDegraded) never touched the WAL, an interrupted one may or may
		// not have made its record durable.
		if !errors.Is(err, ErrDegraded) {
			allowed = append(allowed, effect)
		}
		break // power stays out; the store is abandoned un-Closed
	}
	for _, frac := range []float64{0, 0.5, 1} {
		img := fs.crashImage(frac)
		s2, err := Open(sweepDir, sweepOptions(img))
		if err != nil {
			t.Fatalf("hist %d cut@%d frac %v: reopen: %v", hist, at, frac, err)
		}
		if !matchesSomePrefix(s2.Live(), allowed) {
			t.Fatalf("hist %d cut@%d frac %v: crash image (%d live) matches neither the %d acknowledged ops nor +1 in flight",
				hist, at, frac, len(s2.Live()), len(model.ids))
		}
		// The reopened store must be fully usable, not just readable.
		if err := s2.Add(s2.NextID(), chainTree(s2.Labels(), 3)); err != nil {
			t.Fatalf("hist %d cut@%d frac %v: post-recovery add: %v", hist, at, frac, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("hist %d cut@%d frac %v: close: %v", hist, at, frac, err)
		}
	}
}

func TestFaultSweepProperty(t *testing.T) {
	for _, hist := range []int64{1, 2} {
		opCount := runTransientSweep(t, hist, fNone, -1)
		if opCount < sweepHistoryLen {
			t.Fatalf("hist %d: implausible baseline op count %d", hist, opCount)
		}
		for _, kind := range []faultKind{fEIO, fENOSPC, fShort} {
			for at := 0; at < opCount; at++ {
				runTransientSweep(t, hist, kind, at)
			}
		}
		for at := 0; at < opCount; at++ {
			runPowerCutSweep(t, hist, at)
		}
	}
}

// TestSweepBaselineSanity pins that the scripted histories actually exercise
// the interesting machinery: flushes, compactions, removes, and enough
// filesystem traffic for the sweep to mean something.
func TestSweepBaselineSanity(t *testing.T) {
	fs := newErrFS()
	s, err := Create(sweepDir, nil, sweepOptions(fs))
	if err != nil {
		t.Fatal(err)
	}
	model := modelState{}
	for i := 0; i < sweepHistoryLen; i++ {
		effect, err := sweepOp(s, 1, i, &model)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		model = effect
	}
	st := s.Stats()
	if st.FlushRuns == 0 {
		t.Fatal("history triggered no flush")
	}
	if len(model.ids) >= sweepHistoryLen {
		t.Fatalf("history had no removes: %d live of %d ops", len(model.ids), sweepHistoryLen)
	}
	if fs.opCount() < 50 {
		t.Fatalf("history drove only %d filesystem ops", fs.opCount())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
