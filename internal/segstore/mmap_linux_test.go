//go:build linux

package segstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestMapValidatedExternalTruncation pins the anti-SIGBUS seam: a file
// truncated between the size stat and the page touches must come back via the
// heap-read fallback (whose short content the decoder rejects as ordinary
// corruption), never as a mapping past EOF that would crash the process.
func TestMapValidatedExternalTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	content := bytes.Repeat([]byte{0xAB}, 8192)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// The external truncation races in after the caller stat'd 8192 bytes.
	if err := os.Truncate(path, 4096); err != nil {
		t.Fatal(err)
	}
	data, release, err := mapValidated(f, path, 8192)
	if err != nil {
		t.Fatalf("fallback path errored: %v", err)
	}
	defer release()
	if len(data) != 4096 || !bytes.Equal(data, content[:4096]) {
		t.Fatalf("fallback returned %d bytes, want the 4096 on disk", len(data))
	}
	// Touch every byte: were this a stale mapping, pages past EOF would
	// SIGBUS right here.
	sum := 0
	for _, b := range data {
		sum += int(b)
	}
	if sum != 4096*0xAB {
		t.Fatalf("content damaged: checksum %d", sum)
	}
}

func TestReadFileBytesRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	content := []byte("treejoin segment bytes")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	data, release, err := readFileBytes(path)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if !bytes.Equal(data, content) {
		t.Fatalf("got %q", data)
	}
}
