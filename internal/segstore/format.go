// Package segstore implements the persistent corpus: an on-disk directory of
// immutable segment files (canonical tree encodings, serialised arena views,
// token-bag posting lists), a manifest tracking segment membership and
// tombstones, and a write-ahead log making the memtable durable — an
// LSM-flavoured lifecycle where Add appends to a WAL-backed memtable, Remove
// tombstones in the manifest, and compaction merges segments once tombstones
// outnumber live entries (generalising the engine's token-index compaction
// rule). Trees are content-addressed by a hash of their canonical form, so
// duplicates across segments dedup to one arena block in memory and one block
// per segment on disk.
//
// Crash safety: the manifest rename is the commit point. Every manifest
// rewrite is accompanied by a WAL rewrite holding exactly the surviving
// memtable, in that order — WAL data is never discarded before the state it
// fed is committed — and replay is idempotent against operations the manifest
// already reflects, so a crash in the window between the two rewrites loses
// nothing. See DESIGN.md, "Persistent segments".
package segstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// Sanity caps mirroring internal/dataset: a corrupt or hostile header must
// not drive allocations. All far above anything the module generates.
const (
	maxLabels    = 1 << 26
	maxLabelLen  = 1 << 20
	maxTreeNodes = 1 << 28
	maxBlocks    = 1 << 24
	maxEntries   = 1 << 28
	maxKinds     = 1 << 12
	maxKindLen   = 1 << 10
	maxTokens    = 1 << 30
	maxSegments  = 1 << 20
	maxNameLen   = 1 << 10
	maxID        = 1 << 56
	maxCost      = 1 << 56
)

// ErrCorrupt reports a malformed or truncated store file; errors.Is against
// it matches every decode failure produced by this package.
var ErrCorrupt = errors.New("segstore: corrupt store")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// cw is the common file encoder: buffered, CRC-accumulating (everything after
// the magic feeds the trailing checksum), sticky-error. finish appends the
// CRC trailer and flushes.
type cw struct {
	bw  *bufio.Writer
	out io.Writer // tees into the CRC
	crc hash.Hash32
	buf [binary.MaxVarintLen64]byte
	err error
}

func newCW(w io.Writer, magic [4]byte, version byte) *cw {
	c := &cw{bw: bufio.NewWriter(w), crc: crc32.NewIEEE()}
	c.out = io.MultiWriter(c.bw, c.crc)
	if _, err := c.bw.Write(magic[:]); err != nil {
		c.err = err
	}
	c.raw([]byte{version})
	return c
}

func (c *cw) raw(p []byte) {
	if c.err == nil {
		_, c.err = c.out.Write(p)
	}
}

func (c *cw) u(v uint64) {
	if c.err == nil {
		n := binary.PutUvarint(c.buf[:], v)
		_, c.err = c.out.Write(c.buf[:n])
	}
}

func (c *cw) str(s string) {
	c.u(uint64(len(s)))
	if c.err == nil {
		_, c.err = io.WriteString(c.out, s)
	}
}

func (c *cw) finish() error {
	if c.err != nil {
		return c.err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], c.crc.Sum32())
	if _, err := c.bw.Write(sum[:]); err != nil {
		return err
	}
	return c.bw.Flush()
}

// rd is the matching decoder: CRC-accumulating, sticky-error (the first
// corruption poisons every later read, so decode loops need no per-call
// checks), capped uvarints. finish verifies the CRC trailer and demands EOF.
type rd struct {
	br  *bufio.Reader
	crc hash.Hash32
	err error
}

func newRD(r io.Reader, magic [4]byte, version byte, what string) *rd {
	d := &rd{br: bufio.NewReader(r), crc: crc32.NewIEEE()}
	var m [4]byte
	if _, err := io.ReadFull(d.br, m[:]); err != nil {
		d.err = corruptf("%s: reading magic: %v", what, err)
		return d
	}
	if m != magic {
		d.err = corruptf("%s: bad magic %q", what, m[:])
		return d
	}
	ver, err := d.ReadByte()
	if err != nil {
		d.err = corruptf("%s: reading version: %v", what, err)
		return d
	}
	if ver != version {
		d.err = corruptf("%s: unsupported version %d", what, ver)
	}
	return d
}

// ReadByte feeds the CRC; it exists for binary.ReadUvarint.
func (d *rd) ReadByte() (byte, error) {
	b, err := d.br.ReadByte()
	if err == nil {
		d.crc.Write([]byte{b})
	}
	return b, err
}

func (d *rd) bad(format string, args ...any) {
	if d.err == nil {
		d.err = corruptf(format, args...)
	}
}

func (d *rd) u(cap uint64, what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d)
	if err != nil {
		d.bad("reading %s: %v", what, err)
		return 0
	}
	if v > cap {
		d.bad("%s %d exceeds limit %d", what, v, cap)
		return 0
	}
	return v
}

func (d *rd) bytes(p []byte, what string) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.br, p); err != nil {
		d.bad("reading %s: %v", what, err)
		return
	}
	d.crc.Write(p)
}

func (d *rd) str(cap uint64, what string) string {
	n := d.u(cap, what+" length")
	if d.err != nil || n == 0 {
		return ""
	}
	p := make([]byte, n)
	d.bytes(p, what)
	if d.err != nil {
		return ""
	}
	return string(p)
}

func (d *rd) finish() error {
	if d.err != nil {
		return d.err
	}
	got := d.crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(d.br, sum[:]); err != nil {
		return corruptf("reading checksum: %v", err)
	}
	if want := binary.LittleEndian.Uint32(sum[:]); got != want {
		return corruptf("checksum mismatch: %08x != %08x", got, want)
	}
	if _, err := d.br.ReadByte(); err != io.EOF {
		return corruptf("trailing bytes after checksum")
	}
	return nil
}

// sd decodes a whole in-memory file image — the segment read path, where the
// bytes are already mapped. The CRC trailer is verified in one bulk pass up
// front (SIMD-speed, versus rd's per-byte accumulation), then parsing runs
// straight off the slice. Same sticky-error contract as rd.
type sd struct {
	data []byte // image minus the CRC trailer
	pos  int
	err  error
}

func newSD(data []byte, magic [4]byte, version byte, what string) *sd {
	d := &sd{}
	if len(data) < 9 {
		d.err = corruptf("%s: truncated (%d bytes)", what, len(data))
		return d
	}
	if !bytes.Equal(data[:4], magic[:]) {
		d.err = corruptf("%s: bad magic %q", what, data[:4])
		return d
	}
	got := crc32.ChecksumIEEE(data[4 : len(data)-4])
	if want := binary.LittleEndian.Uint32(data[len(data)-4:]); got != want {
		d.err = corruptf("%s: checksum mismatch: %08x != %08x", what, got, want)
		return d
	}
	if data[4] != version {
		d.err = corruptf("%s: unsupported version %d", what, data[4])
		return d
	}
	d.data = data[: len(data)-4 : len(data)-4]
	d.pos = 5
	return d
}

func (d *sd) bad(format string, args ...any) {
	if d.err == nil {
		d.err = corruptf(format, args...)
	}
}

func (d *sd) u(cap uint64, what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.bad("reading %s: truncated varint", what)
		return 0
	}
	if v > cap {
		d.bad("%s %d exceeds limit %d", what, v, cap)
		return 0
	}
	d.pos += n
	return v
}

// take returns the next n bytes of the image without copying; the slice
// aliases the (possibly mmap'd) file and must not be retained.
func (d *sd) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if d.pos+n > len(d.data) {
		d.bad("reading %s: truncated", what)
		return nil
	}
	p := d.data[d.pos : d.pos+n]
	d.pos += n
	return p
}

func (d *sd) str(cap uint64, what string) string {
	n := d.u(cap, what+" length")
	if d.err != nil || n == 0 {
		return ""
	}
	return string(d.take(int(n), what))
}

func (d *sd) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.pos != len(d.data) {
		return corruptf("%d trailing bytes before checksum", len(d.data)-d.pos)
	}
	return nil
}
