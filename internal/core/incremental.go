package core

import (
	"time"

	"treejoin/internal/engine"
	"treejoin/internal/lcrs"
	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// Incremental is the streaming form of PartSJ, motivated by the paper's
// closing remark on workloads "where tree objects are inserted and updated at
// a high rate". Trees arrive in any order; Add returns the new tree's join
// partners among all previously added trees.
//
// Algorithm 1 processes trees in ascending size order so a probe only needs
// inverted lists I_n with n ≤ |T_i|. Arrival order is arbitrary here, so Add
// probes the symmetric window n ∈ [|T|−τ, |T|+τ]. Lemma 2 is direction-
// agnostic — for any pair it is the earlier (already partitioned) tree whose
// subgraph must appear in the later one — so correctness is unaffected.
//
// Incremental is not safe for concurrent use; wrap it in a mutex if multiple
// goroutines add trees.
type Incremental struct {
	opts    Options
	delta   int
	cache   *engine.Cache
	ts      []*tree.Tree
	bins    []*lcrs.Bin
	parts   []*Partition
	ix      *invIndex
	smalls  []int
	checked []int32
	gen     int32
	sc      matchScratch
	seqs    *seqCache
	stats   sim.Stats

	removed   []bool
	nRemoved  int
	compactAt int // rebuild the index when nRemoved reaches this

	// The standing result view: every pair reported by an Add and not yet
	// retracted by a Remove, keyed by packed (I, J). Removals move the dead
	// tree's pairs to the retraction delta, which Retracted drains — so a
	// consumer holding a materialised result set can apply deltas instead
	// of re-joining (the maintenance model of dynamic similarity-join
	// enumeration).
	standing map[uint64]int32
	retract  []sim.Pair
}

// standingKey packs a result pair (i < j) into one map key.
func standingKey(i, j int) uint64 { return uint64(uint32(i))<<32 | uint64(uint32(j)) }

// NewIncremental returns an empty streaming join with the given options.
// RandomPartition is not supported and is ignored. It panics on invalid
// options — the legacy contract; corpus-backed callers use
// NewIncrementalCached.
func NewIncremental(opts Options) *Incremental {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	return NewIncrementalCached(opts, nil)
}

// NewIncrementalCached is NewIncremental drawing per-tree artifacts (binary
// views, δ-partitions) from cache: a stream fed trees a corpus has already
// joined — or re-adding a tree it removed — skips their recomputation. A nil
// cache computes everything locally. Options must be valid.
func NewIncrementalCached(opts Options, cache *engine.Cache) *Incremental {
	inc := &Incremental{
		opts:      opts,
		delta:     opts.delta(),
		cache:     cache,
		ix:        newInvIndex(opts.Tau, opts.Position),
		compactAt: 16,
		standing:  make(map[uint64]int32),
	}
	if opts.HybridVerify && opts.Verifier == nil {
		inc.seqs = newSeqCache(nil, cache, nil)
		inc.opts.Verifier = inc.seqs.verifier()
	} else if opts.Verifier == nil {
		// τ-banded bounded TED drawing preparations from the stream's cache
		// (a corpus-backed stream reuses preps its joins already computed; a
		// nil cache computes them per pair, as before).
		inc.opts.Verifier = engine.NewTEDVerifier(cache, nil)
	}
	return inc
}

// Len returns the number of trees added so far, including removed ones
// (positions are stable).
func (inc *Incremental) Len() int { return len(inc.ts) }

// Live returns the number of trees added and not yet removed.
func (inc *Incremental) Live() int { return len(inc.ts) - inc.nRemoved }

// Tree returns the i-th added tree, or nil if it has been removed.
func (inc *Incremental) Tree(i int) *tree.Tree { return inc.ts[i] }

// Stats returns a snapshot of the accumulated execution statistics.
func (inc *Incremental) Stats() sim.Stats {
	s := inc.stats
	s.Trees = len(inc.ts)
	return s
}

// Add inserts t and returns all pairs (existing index, new index) whose TED
// is at most τ, sorted by existing index. The new tree's index is Len()-1
// after the call.
func (inc *Incremental) Add(t *tree.Tree) []sim.Pair {
	start := time.Now()
	ti := len(inc.ts)
	inc.ts = append(inc.ts, t)
	if inc.seqs != nil {
		inc.seqs.add(t)
	}
	b := cachedBin(inc.cache, t)
	inc.bins = append(inc.bins, b)
	inc.parts = append(inc.parts, nil)
	inc.checked = append(inc.checked, -1)
	inc.removed = append(inc.removed, false)
	sz := t.Size()
	gen := inc.gen
	inc.gen++

	var cands []sim.Candidate
	for _, other := range inc.smalls {
		if inc.removed[other] {
			continue
		}
		d := inc.ts[other].Size() - sz
		if d < 0 {
			d = -d
		}
		if d <= inc.opts.Tau && inc.checked[other] != gen {
			inc.checked[other] = gen
			cands = append(cands, sim.Candidate{I: other, J: ti})
			inc.stats.SmallTreeFallback++
		}
	}
	minSize := sz - inc.opts.Tau
	if minSize < 1 {
		minSize = 1
	}
	for _, n := range b.Order {
		inc.stats.SubgraphProbes += inc.ix.probe(b, n, minSize, sz+inc.opts.Tau, func(e entry) {
			if inc.removed[e.tree] || inc.checked[e.tree] == gen {
				return
			}
			inc.stats.MatchTests++
			if matches(inc.parts[e.tree], e.comp, b, n, &inc.sc) {
				inc.stats.MatchHits++
				inc.checked[e.tree] = gen
				cands = append(cands, sim.Candidate{I: int(e.tree), J: ti})
			}
		})
	}
	inc.stats.CandTime += time.Since(start)

	pairs := sim.VerifyAll(inc.ts, cands, inc.opts.Tau, inc.opts.Verifier, sim.NormalizeWorkers(inc.opts.Workers), &inc.stats)

	pStart := time.Now()
	if sz >= inc.delta {
		p := cachedPartition(inc.cache, t, b, partitionCacheKey(inc.delta), inc.delta)
		inc.parts[ti] = p
		inc.stats.IndexedSubgraphs += int64(inc.delta)
		inc.ix.insert(ti, p)
	} else {
		inc.smalls = append(inc.smalls, ti)
	}
	inc.stats.PartitionTime += time.Since(pStart)

	sim.SortPairs(pairs)
	inc.stats.Results += int64(len(pairs))
	for _, p := range pairs {
		inc.standing[standingKey(p.I, p.J)] = int32(p.Dist)
	}
	return pairs
}

// Pairs returns the standing result set — every pair some Add reported whose
// trees are both still live — in canonical ascending (I, J) order. It is the
// self-join of the live trees at the stream's threshold, maintained across
// arbitrary Add/Remove sequences.
func (inc *Incremental) Pairs() []sim.Pair {
	out := make([]sim.Pair, 0, len(inc.standing))
	for k, d := range inc.standing {
		out = append(out, sim.Pair{I: int(k >> 32), J: int(uint32(k)), Dist: int(d)})
	}
	sim.SortPairs(out)
	return out
}

// Retracted drains the retraction delta: every standing pair withdrawn by
// Remove calls since the previous drain, in canonical order. A consumer
// mirroring the result set applies Add's returned pairs as insertions and
// this delta as deletions; after both, its mirror equals Pairs().
func (inc *Incremental) Retracted() []sim.Pair {
	out := inc.retract
	inc.retract = nil
	sim.SortPairs(out)
	return out
}

// Remove deletes the i-th tree from the stream: it no longer appears in the
// results of later Add calls. Positions are stable — later trees keep their
// indices. Removal is a tombstone (probes skip dead entries); once half the
// stream is dead the index is rebuilt from the survivors. Removing an
// out-of-range or already-removed position reports false.
func (inc *Incremental) Remove(i int) bool {
	if i < 0 || i >= len(inc.ts) || inc.removed[i] {
		return false
	}
	inc.removed[i] = true
	inc.nRemoved++
	// Retract the standing pairs the dead tree participated in. The scan is
	// O(|standing result|) — bounded by the result set, not the stream — and
	// feeds the Retracted delta.
	for k, d := range inc.standing {
		if int(k>>32) == i || int(uint32(k)) == i {
			delete(inc.standing, k)
			inc.retract = append(inc.retract, sim.Pair{I: int(k >> 32), J: int(uint32(k)), Dist: int(d)})
			inc.stats.PairsRetracted++
		}
	}
	// Release the payload; only the tombstone remains.
	inc.ts[i] = nil
	inc.bins[i] = nil
	inc.parts[i] = nil
	if inc.nRemoved >= inc.compactAt && inc.nRemoved*2 >= len(inc.ts) {
		inc.compact()
	}
	return true
}

// Update replaces the i-th tree: Remove(i) followed by Add(t). It returns
// the new tree's position (Len()-1 after the call) and its join partners
// among the live trees, serving the paper's "inserted and updated at a high
// rate" workload directly.
func (inc *Incremental) Update(i int, t *tree.Tree) (int, []sim.Pair) {
	inc.Remove(i)
	pairs := inc.Add(t)
	return len(inc.ts) - 1, pairs
}

// compact rebuilds the subgraph index and small-tree list from the live
// trees, dropping tombstoned postings. Positions are preserved. The next
// compaction fires only after as many further removals again, keeping the
// amortised rebuild cost linear.
func (inc *Incremental) compact() {
	start := time.Now()
	inc.ix = newInvIndex(inc.opts.Tau, inc.opts.Position)
	inc.smalls = inc.smalls[:0]
	for ti := range inc.ts {
		if inc.removed[ti] {
			continue
		}
		if inc.parts[ti] != nil {
			inc.ix.insert(ti, inc.parts[ti])
		} else {
			inc.smalls = append(inc.smalls, ti)
		}
	}
	inc.compactAt = inc.nRemoved + inc.nRemoved/2 + 16
	inc.stats.PartitionTime += time.Since(start)
}
