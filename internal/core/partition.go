// Package core implements PartSJ, the paper's partition-based tree similarity
// join: threshold-sensitive δ-partitioning of LC-RS binary trees (§3.3), the
// subgraph containment filter (§3.1), the two-layer subgraph index (§3.4) and
// the join drivers (§3.2), including an order-insensitive incremental variant
// for streaming collections.
package core

import (
	"fmt"
	"math/rand"

	"treejoin/internal/lcrs"
)

// Partition is a δ-partitioning of a binary (LC-RS) tree: δ−1 bridging edges
// whose removal splits the tree into δ components, each a binary tree.
// Components are numbered 0..δ−1 in the order their roots appear in binary
// postorder; component δ−1 always contains the tree root (the paper's
// s_1..s_δ with k = Comp+1).
type Partition struct {
	Bin   *lcrs.Bin
	Delta int
	Gamma int     // the size floor used to cut (0 for random partitions)
	Comp  []int32 // node id -> component number
	Roots []int32 // component number -> root node id
	Sizes []int32 // component number -> node count
}

// maxMinSizeLowerBound is the closed-form feasible γ from Algorithm 3 line 3:
// any binary tree of size n is (δ, γ)-partitionable for γ ≤ (n+δ−1)/(2δ−1).
func maxMinSizeLowerBound(n, delta int) int {
	return (n + delta - 1) / (2*delta - 1)
}

// partitionState carries the per-node size/detached counters of Algorithm 2.
// Buffers are reused across calls via Partitioner scratch space.
type partitionState struct {
	size     []int32
	detached []int32
}

// partitionable runs Algorithm 2: it greedily cuts γ-subtrees in binary
// postorder and reports whether at least delta components of size ≥ gamma
// exist. When cuts is non-nil, the roots of the first delta−1 γ-subtrees are
// appended to it (the recorded cuts realise a δ-partitioning whenever the
// test succeeds, cf. Lemma 3).
func partitionable(b *lcrs.Bin, delta, gamma int, st *partitionState, cuts *[]int32) bool {
	n := b.Size()
	if gamma*delta > n {
		return false
	}
	if cap(st.size) < n {
		st.size = make([]int32, n)
		st.detached = make([]int32, n)
	}
	size := st.size[:n]
	detached := st.detached[:n]
	found := 0
	// b.Order is binary postorder: both binary children of a node precede it.
	for _, v := range b.Order {
		sz, det := int32(1), int32(0)
		if l := b.Left(v); l != lcrs.None {
			sz += size[l]
			det += detached[l]
		}
		if r := b.Right(v); r != lcrs.None {
			sz += size[r]
			det += detached[r]
		}
		if int(sz-det) >= gamma {
			// γ-subtree identified: detach it (virtually).
			found++
			if cuts != nil && found < delta {
				*cuts = append(*cuts, v)
			}
			det = sz
			if found >= delta {
				return true
			}
		}
		size[v] = sz
		detached[v] = det
	}
	return false
}

// MaxMinSize is Algorithm 3: the largest γ such that b is (δ, γ)-partitionable,
// found by binary search between the closed-form lower bound and ⌊n/δ⌋.
// It requires delta ≤ size(b); O(n·log(n/δ)) time.
func MaxMinSize(b *lcrs.Bin, delta int) int {
	n := b.Size()
	if delta > n {
		panic(fmt.Sprintf("core: MaxMinSize: delta %d exceeds tree size %d", delta, n))
	}
	if delta == n {
		return 1
	}
	st := &partitionState{}
	gammaMax := n / delta
	gammaMin := maxMinSizeLowerBound(n, delta)
	c := gammaMax - gammaMin + 1
	for c > 1 {
		gammaMid := gammaMin + c/2
		if partitionable(b, delta, gammaMid, st, nil) {
			gammaMin = gammaMid
			c -= c / 2
		} else {
			c = c / 2
		}
	}
	return gammaMin
}

// Compute runs the paper's partitioning scheme: γ = MaxMinSize(b, δ), then a
// δ-partitioning realised by the first δ−1 greedy γ-subtree cuts, with the
// root component absorbing everything else. It requires delta ≤ size(b).
func Compute(b *lcrs.Bin, delta int) *Partition {
	gamma := MaxMinSize(b, delta)
	st := &partitionState{}
	cuts := make([]int32, 0, delta-1)
	if !partitionable(b, delta, gamma, st, &cuts) {
		// Unreachable: MaxMinSize returned a feasible γ.
		panic("core: Compute: MaxMinSize produced an infeasible gamma")
	}
	p := assemble(b, delta, cuts)
	p.Gamma = gamma
	return p
}

// ComputeRandom realises a δ-partitioning from delta−1 distinct random edges;
// the baseline for the partitioning-scheme ablation (the paper reports the
// balanced scheme wins by 50–300%).
func ComputeRandom(b *lcrs.Bin, delta int, rng *rand.Rand) *Partition {
	n := b.Size()
	if delta > n {
		panic(fmt.Sprintf("core: ComputeRandom: delta %d exceeds tree size %d", delta, n))
	}
	// Each non-root node identifies the edge to its binary parent. Choose
	// delta−1 of the n−1 edges without replacement.
	nonRoot := make([]int32, 0, n-1)
	root := b.Tree.Root()
	for id := range b.Tree.Nodes {
		if int32(id) != root {
			nonRoot = append(nonRoot, int32(id))
		}
	}
	rng.Shuffle(len(nonRoot), func(i, j int) { nonRoot[i], nonRoot[j] = nonRoot[j], nonRoot[i] })
	cuts := nonRoot[:delta-1]
	// assemble expects cut roots ordered by binary postorder rank (component
	// numbering follows root rank).
	sortByRank(cuts, b.Rank)
	return assemble(b, delta, cuts)
}

func sortByRank(cuts []int32, rank []int32) {
	// Insertion sort: δ is tiny (2τ+1).
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && rank[cuts[j]] < rank[cuts[j-1]]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
}

// assemble labels every node with its component: each cut root claims the
// not-yet-claimed nodes of its binary subtree (cut roots are processed in
// postorder, so inner cuts claim before outer ones), and the tree root's
// component takes the rest.
func assemble(b *lcrs.Bin, delta int, cuts []int32) *Partition {
	n := b.Size()
	p := &Partition{
		Bin:   b,
		Delta: delta,
		Comp:  make([]int32, n),
		Roots: make([]int32, delta),
		Sizes: make([]int32, delta),
	}
	for i := range p.Comp {
		p.Comp[i] = -1
	}
	stack := make([]int32, 0, 32)
	for ci, cr := range cuts {
		c := int32(ci)
		p.Roots[c] = cr
		stack = append(stack[:0], cr)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			p.Comp[v] = c
			p.Sizes[c]++
			if l := b.Left(v); l != lcrs.None && p.Comp[l] == -1 {
				stack = append(stack, l)
			}
			if r := b.Right(v); r != lcrs.None && p.Comp[r] == -1 {
				stack = append(stack, r)
			}
		}
	}
	rootComp := int32(delta - 1)
	p.Roots[rootComp] = b.Tree.Root()
	for id := range p.Comp {
		if p.Comp[id] == -1 {
			p.Comp[id] = rootComp
			p.Sizes[rootComp]++
		}
	}
	return p
}

// Validate checks the structural invariants of a partition: components are
// non-empty, connected through binary edges, rooted at Roots, numbered by
// ascending root postorder rank, and component Delta−1 holds the tree root.
// Used by tests and safe to call on any partition.
func (p *Partition) Validate() error {
	b := p.Bin
	if len(p.Roots) != p.Delta {
		return fmt.Errorf("core: partition has %d roots, want %d", len(p.Roots), p.Delta)
	}
	for c := 0; c < p.Delta; c++ {
		if p.Sizes[c] <= 0 {
			return fmt.Errorf("core: component %d is empty", c)
		}
		if p.Comp[p.Roots[c]] != int32(c) {
			return fmt.Errorf("core: root of component %d labeled %d", c, p.Comp[p.Roots[c]])
		}
		if c > 0 && b.Rank[p.Roots[c-1]] >= b.Rank[p.Roots[c]] {
			return fmt.Errorf("core: component roots out of postorder: %d then %d", c-1, c)
		}
	}
	if p.Roots[p.Delta-1] != b.Tree.Root() {
		return fmt.Errorf("core: last component root %d is not the tree root", p.Roots[p.Delta-1])
	}
	// Every non-component-root node must connect to its binary parent within
	// the same component; this implies connectivity.
	rootSet := make(map[int32]bool, p.Delta)
	for _, r := range p.Roots {
		rootSet[r] = true
	}
	var total int32
	for id := range p.Comp {
		n := int32(id)
		total++
		if rootSet[n] {
			continue
		}
		par := b.Parent(n)
		if par == lcrs.None {
			return fmt.Errorf("core: node %d has no binary parent but is not a component root", n)
		}
		if p.Comp[par] != p.Comp[n] {
			return fmt.Errorf("core: node %d (comp %d) detached from parent %d (comp %d)", n, p.Comp[n], par, p.Comp[par])
		}
	}
	if int(total) != b.Size() {
		return fmt.Errorf("core: labeled %d of %d nodes", total, b.Size())
	}
	return nil
}

// MinSize returns the size of the smallest component.
func (p *Partition) MinSize() int {
	m := p.Sizes[0]
	for _, s := range p.Sizes[1:] {
		if s < m {
			m = s
		}
	}
	return int(m)
}
