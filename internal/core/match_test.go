package core

import (
	"math/rand"
	"testing"

	"treejoin/internal/lcrs"
	"treejoin/internal/tree"
)

// TestSelfMatch: every component of a partition occurs in its own tree at its
// own root.
func TestSelfMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	lt := tree.NewLabelTable()
	for i := 0; i < 200; i++ {
		g := randomGeneralTree(rng, 60, lt)
		b := lcrs.Build(g)
		for delta := 1; delta <= b.Size() && delta <= 9; delta += 2 {
			p := Compute(b, delta)
			for c := 0; c < delta; c++ {
				if !matchesAt(p, int32(c), b, p.Roots[c]) {
					t.Fatalf("component %d does not match itself in %s", c, tree.FormatBracket(g))
				}
			}
		}
	}
}

func matchesAt(p *Partition, c int32, probe *lcrs.Bin, n int32) bool {
	var sc matchScratch
	return matches(p, c, probe, n, &sc)
}

func TestMatchRequiresEmptySlots(t *testing.T) {
	lt := tree.NewLabelTable()
	// Pattern tree {a{b}} partitioned as one component: b has no children and
	// no right sibling, so it must match a childless, sibling-less b.
	pat := tree.MustParseBracket("{a{b}}", lt)
	p := Compute(lcrs.Build(pat), 1)
	yes := lcrs.Build(tree.MustParseBracket("{a{b}}", lt))
	if !matchesAt(p, 0, yes, yes.Tree.Root()) {
		t.Fatal("identical tree should match")
	}
	for _, s := range []string{
		"{a{b{c}}}", // b gained a child (left slot no longer empty)
		"{a{b}{c}}", // b gained a right sibling
		"{a{c}}",    // label mismatch
		"{c{b}}",    // root label mismatch
		"{a}",       // b missing
	} {
		probe := lcrs.Build(tree.MustParseBracket(s, lt))
		if matchesAt(p, 0, probe, probe.Tree.Root()) {
			t.Errorf("pattern {a{b}} should not match %s at root", s)
		}
	}
	// But it may match deeper inside a larger tree.
	deep := lcrs.Build(tree.MustParseBracket("{x{a{b}}}", lt))
	found := false
	for n := range deep.Tree.Nodes {
		if matchesAt(p, 0, deep, int32(n)) {
			found = true
		}
	}
	if !found {
		t.Error("pattern {a{b}} should match inside {x{a{b}}}")
	}
}

func TestMatchBridgeSlotsAreWildcards(t *testing.T) {
	lt := tree.NewLabelTable()
	// Partition {a{b{x}{y}}{c}} with δ=3, which must cut somewhere; find a
	// component with a bridging edge and check the bridge tolerates any
	// subtree in the probe.
	pat := tree.MustParseBracket("{a{b{p}{q}}{c{r}{s}}}", lt)
	bp := lcrs.Build(pat)
	p := Compute(bp, 3)
	// The root component has at least one bridging edge by construction.
	rootComp := int32(p.Delta - 1)
	// Matching the unmodified tree at the root must succeed.
	if !matchesAt(p, rootComp, bp, bp.Tree.Root()) {
		t.Fatal("root component must match its own tree")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLemma2FilterProperty is the heart of the correctness argument: for any
// tree T1, any δ-partitioning of T1 with δ = 2τ+1 (balanced or random), and
// any tree T2 obtained from T1 by at most τ node edit operations, at least
// one component of T1 occurs in T2.
func TestLemma2FilterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	lt := tree.NewLabelTable()
	iters := 600
	if testing.Short() {
		iters = 150
	}
	for i := 0; i < iters; i++ {
		tau := 1 + rng.Intn(4)
		delta := 2*tau + 1
		// Ensure the base tree is large enough to δ-partition.
		size := delta + rng.Intn(50)
		t1 := randomSizedTree(rng, size, lt)
		b1 := lcrs.Build(t1)
		var p *Partition
		if rng.Intn(2) == 0 {
			p = Compute(b1, delta)
		} else {
			p = ComputeRandom(b1, delta, rng)
		}
		t2 := t1
		k := rng.Intn(tau + 1)
		for e := 0; e < k; e++ {
			t2 = randomEditOp(rng, t2, lt)
		}
		b2 := lcrs.Build(t2)
		ok := false
		for c := 0; c < delta; c++ {
			if MatchesAnywhere(p, int32(c), b2) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("no component survived %d ≤ τ=%d edits:\nT1 = %s\nT2 = %s",
				k, tau, tree.FormatBracket(t1), tree.FormatBracket(t2))
		}
	}
}

func randomSizedTree(rng *rand.Rand, n int, lt *tree.LabelTable) *tree.Tree {
	b := tree.NewBuilder(lt)
	b.Root(string(rune('a' + rng.Intn(5))))
	for i := 1; i < n; i++ {
		b.Child(int32(rng.Intn(i)), string(rune('a'+rng.Intn(5))))
	}
	return b.MustBuild()
}

// randomEditOp applies one random node edit operation (the full model:
// rename, delete incl. single-child root, insert incl. wrapping the root).
func randomEditOp(rng *rand.Rand, t *tree.Tree, lt *tree.LabelTable) *tree.Tree {
	n := int32(rng.Intn(t.Size()))
	label := string(rune('a' + rng.Intn(5)))
	switch rng.Intn(4) {
	case 0:
		return tree.Rename(t, n, label)
	case 1:
		if t.Nodes[n].Parent == tree.None {
			return tree.WrapRoot(t, label)
		}
		out, err := tree.Delete(t, n)
		if err != nil {
			return tree.Rename(t, n, label)
		}
		return out
	case 2:
		nc := len(t.Children(n))
		at := rng.Intn(nc + 1)
		count := 0
		if nc-at > 0 {
			count = rng.Intn(nc - at + 1)
		}
		out, err := tree.Insert(t, n, at, count, label)
		if err != nil {
			return tree.Rename(t, n, label)
		}
		return out
	default:
		return tree.WrapRoot(t, label)
	}
}

// TestIndexProbeFindsMatches: any component that matches at a node is
// returned by the two-layer index probe at that node under PositionOff and
// PositionFull (the sound settings with per-node completeness; PositionSafe's
// guarantee is join-level, not per-node, and is exercised by the join oracle
// tests).
func TestIndexProbeFindsMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	lt := tree.NewLabelTable()
	for i := 0; i < 150; i++ {
		tau := 1 + rng.Intn(3)
		delta := 2*tau + 1
		t1 := randomSizedTree(rng, delta+rng.Intn(30), lt)
		b1 := lcrs.Build(t1)
		p := Compute(b1, delta)
		t2 := t1
		for e := rng.Intn(tau + 1); e > 0; e-- {
			t2 = randomEditOp(rng, t2, lt)
		}
		b2 := lcrs.Build(t2)
		ix := newInvIndex(tau, PositionOff)
		ix.insert(0, p)
		parts := []*Partition{p}
		var sc matchScratch
		// For every (node, component) with a structural match, the PositionOff
		// probe at that node must visit the component.
		for n := range b2.Tree.Nodes {
			node := int32(n)
			for c := 0; c < delta; c++ {
				if !matches(p, int32(c), b2, node, &sc) {
					continue
				}
				seen := false
				ix.probe(b2, node, b1.Size(), b1.Size(), func(e entry) {
					if e.comp == int32(c) && matches(parts[e.tree], e.comp, b2, node, &sc) {
						seen = true
					}
				})
				if !seen {
					t.Fatalf("PositionOff probe missed a structural match (comp %d)", c)
				}
			}
		}
	}
}
