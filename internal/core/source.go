package core

import (
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"treejoin/internal/engine"
	"treejoin/internal/lcrs"
	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// PartSJ as an engine candidate source. The probe/insert loop of Algorithm 1
// (lines 3–16) runs here; the engine supplies the filter pipeline, the
// verification stage, and the worker pool. Prefilters chained in front of
// this source run before the subgraph-match tests: the first time a probe
// encounters an indexed tree, the pair goes through the filter chain, and a
// pruned pair is stamped so none of its subgraph entries are ever
// match-tested — a cheap statistics screen (HIST) thus saves both match and
// verification work.
//
// Decomposition (the paper's §6 future work: "the adaption of our techniques
// to parallel and distributed settings"): with shards > 1, a self join is cut
// into S contiguous shards of the size-sorted order; every result pair is
// either internal to one shard or crosses exactly one shard pair, so the
// join decomposes into S intra-shard tasks plus at most S·(S−1)/2 cross
// tasks — the classic fragment-and-replicate plan, with tasks whose size
// ranges are further than τ apart skipped entirely. Each task builds its own
// index (the price of shared-nothing tasks, exactly what a distributed
// deployment would pay); the engine runs them on the worker pool. With
// shards ≤ 1 the source is a single sequential task, with the partitioning
// pre-pass parallelised across the pool.

// NewSource returns the PartSJ inverted-subgraph-index candidate source
// configured by opts (Tau and the verification fields are ignored here; the
// engine owns them).
func NewSource(opts Options) engine.CandidateSource { return partSJSource{opts: opts} }

type partSJSource struct{ opts Options }

func (s partSJSource) Name() string { return "partsj" }

func (s partSJSource) Tasks(c *engine.Collection, shards int) []engine.Task {
	if len(c.Order) == 0 {
		return nil
	}
	if c.Cross() {
		// Collection cross join: one task over the union order, one index
		// per side. (Sharding a cross join would follow the same plan as the
		// self join; no caller needs it yet.)
		return []engine.Task{func(px *engine.Pipeline) {
			j := newJoiner(c, s.opts)
			j.prepartition(px.Stats(), c.Workers)
			j.runLoop(px, c.Order, func(k int) int {
				if c.Order[k] < c.Split {
					return 0
				}
				return 1
			}, 2)
		}}
	}
	if shards > len(c.Order) {
		shards = len(c.Order)
	}
	if shards <= 1 {
		return []engine.Task{func(px *engine.Pipeline) {
			j := newJoiner(c, s.opts)
			j.prepartition(px.Stats(), c.Workers)
			j.runLoop(px, c.Order, nil, 1)
		}}
	}
	return s.shardTasks(c, shards)
}

// shardTasks builds the fragment-and-replicate plan over the size-sorted
// order.
func (s partSJSource) shardTasks(c *engine.Collection, shards int) []engine.Task {
	n := len(c.Order)
	bounds := make([]int, shards+1)
	for k := 0; k <= shards; k++ {
		bounds[k] = k * n / shards
	}
	seg := func(k int) []int { return c.Order[bounds[k]:bounds[k+1]] }
	loSize := make([]int, shards)
	hiSize := make([]int, shards)
	for k := 0; k < shards; k++ {
		ids := seg(k)
		loSize[k] = c.Trees[ids[0]].Size()
		hiSize[k] = c.Trees[ids[len(ids)-1]].Size()
	}
	var tasks []engine.Task
	for a := 0; a < shards; a++ {
		ids := seg(a)
		tasks = append(tasks, func(px *engine.Pipeline) {
			j := newJoiner(c, s.opts)
			j.runLoop(px, ids, nil, 1)
		})
		for b := a + 1; b < shards; b++ {
			if loSize[b]-hiSize[a] > c.Tau { // size windows cannot overlap
				continue
			}
			// Shard a wholly precedes shard b in the sorted order, so their
			// concatenation is still size-ordered; side = which shard.
			la, lb := seg(a), seg(b)
			merged := make([]int, 0, len(la)+len(lb))
			merged = append(merged, la...)
			merged = append(merged, lb...)
			na := len(la)
			tasks = append(tasks, func(px *engine.Pipeline) {
				j := newJoiner(c, s.opts)
				j.runLoop(px, merged, func(k int) int {
					if k < na {
						return 0
					}
					return 1
				}, 2)
			})
		}
	}
	return tasks
}

// Per-probe pair states packed into the state stamps: a stamp is
// gen<<2 | code, so one zeroed array serves all probes (gen starts at 1) and
// each pair is screened at most once and emitted at most once per probe.
const (
	stPassed  = 1 // filter chain consulted, pair survived; match tests pending
	stKilled  = 2 // filter chain pruned the pair; skip its remaining entries
	stEmitted = 3 // pair emitted as a candidate; skip its remaining entries
)

// joiner holds one task's mutable PartSJ state: per-tree caches of the
// binary view and partition, and the per-probe pair-state stamps. All are
// indexed by the tree's collection id — sharded tasks touch only their
// shards' slots, trading O(collection) zeroed allocations per task for
// O(1) lookups with no remapping.
//
// Binary views and partitions also go through the run's artifact cache:
// views are τ-independent ("lcrs") and partitions are keyed by δ, so a
// corpus-backed join reuses both across runs (and sharded tasks share them
// within one run) while a changed threshold recomputes only the partitions.
// The random-partition ablation bypasses the partition cache — its output
// depends on the RNG stream, not just (tree, δ).
type joiner struct {
	c       *engine.Collection
	opts    Options
	delta   int
	partKey string
	bins    []*lcrs.Bin
	parts   []*Partition
	state   []int64
	gen     int64
	sc      matchScratch
	rng     *rand.Rand
}

func newJoiner(c *engine.Collection, opts Options) *joiner {
	n := len(c.Trees)
	j := &joiner{
		c:       c,
		opts:    opts,
		delta:   opts.delta(),
		partKey: partitionCacheKey(opts.delta()),
		bins:    make([]*lcrs.Bin, n),
		parts:   make([]*Partition, n),
		state:   make([]int64, n),
		gen:     1,
	}
	if opts.RandomPartition {
		j.rng = rand.New(rand.NewSource(opts.Seed))
	}
	return j
}

// partitionCacheKey names the artifact-cache entry of a δ-partition.
func partitionCacheKey(delta int) string {
	return "partsj/delta=" + strconv.Itoa(delta)
}

// cachedBin returns t's left-child/right-sibling view from the artifact
// cache, building and storing it on a miss. The single lookup-or-build path
// for every PartSJ consumer (join source, search index, incremental
// stream); a nil cache degrades to a plain build.
func cachedBin(cache *engine.Cache, t *tree.Tree) *lcrs.Bin {
	if v, ok := cache.Lookup("lcrs", t); ok {
		return v.(*lcrs.Bin)
	}
	b := lcrs.Build(t)
	cache.Store("lcrs", t, b)
	return b
}

// cachedPartition returns t's δ-partition (the tree must have ≥ δ nodes)
// from the artifact cache, computing it on a miss — from b when the caller
// already has the binary view in hand, otherwise from the cached one.
// partKey must be partitionCacheKey(delta).
func cachedPartition(cache *engine.Cache, t *tree.Tree, b *lcrs.Bin, partKey string, delta int) *Partition {
	if v, ok := cache.Lookup(partKey, t); ok {
		return v.(*Partition)
	}
	if b == nil {
		b = cachedBin(cache, t)
	}
	p := Compute(b, delta)
	cache.Store(partKey, t, p)
	return p
}

// bin returns tree ti's binary view, from the task-local slot or the shared
// artifact cache.
func (j *joiner) bin(ti int) *lcrs.Bin {
	if b := j.bins[ti]; b != nil {
		return b
	}
	b := cachedBin(j.c.Cache(), j.c.Trees[ti])
	j.bins[ti] = b
	return b
}

// partition returns tree ti's δ-partition (the tree must have ≥ δ nodes),
// cached like bin. Random partitions are rebuilt every time — their output
// depends on the RNG stream, not just (tree, δ).
func (j *joiner) partition(ti int) *Partition {
	if p := j.parts[ti]; p != nil {
		return p
	}
	var p *Partition
	if j.rng != nil {
		p = ComputeRandom(j.bin(ti), j.delta, j.rng)
	} else {
		p = cachedPartition(j.c.Cache(), j.c.Trees[ti], j.bins[ti], j.partKey, j.delta)
		j.bins[ti] = p.Bin
	}
	j.parts[ti] = p
	return p
}

// prepartition builds the binary views and balanced partitions of every tree
// on a worker pool before the sequential probe/insert loop — the loop's only
// embarrassingly parallel phase (the multi-core direction of the paper's
// future work). A no-op unless workers > 1; the random-partition ablation
// stays sequential to keep its RNG stream deterministic. Sharded plans skip
// it: their tasks already saturate the pool.
func (j *joiner) prepartition(stats *sim.Stats, workers int) {
	ts := j.c.Trees
	if workers <= 1 || j.rng != nil || len(ts) == 0 {
		return
	}
	start := time.Now()
	if workers > len(ts) {
		workers = len(ts)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ts) {
					return
				}
				if j.c.Cancelled() {
					return
				}
				j.bin(i)
				if ts[i].Size() >= j.delta {
					j.partition(i)
				}
			}
		}()
	}
	wg.Wait()
	stats.PartitionTime += time.Since(start)
}

// runLoop is the probe/insert loop over the given tree indices (ascending
// size order). sideAt maps an iteration position to its side (nil: all side
// 0); a tree probes the opposite side's index and is inserted into its own,
// so with one side every preceding pair is offered and with two sides only
// cross pairs are.
func (j *joiner) runLoop(px *engine.Pipeline, positions []int, sideAt func(k int) int, nSides int) {
	ixes := make([]*invIndex, nSides)
	smalls := make([][]int, nSides)
	for i := range ixes {
		ixes[i] = newInvIndex(j.opts.Tau, j.opts.Position)
	}
	for k, ti := range positions {
		if px.Cancelled() {
			return
		}
		s := 0
		if sideAt != nil {
			s = sideAt(k)
		}
		probe := (nSides - 1) - s*(nSides-1) // 0 for self joins, 1-s for cross
		j.probeAndCollect(px, ti, ixes[probe], smalls[probe])
		j.insert(px, ti, ixes[s], &smalls[s])
	}
}

// probeAndCollect gathers the candidate partners of tree ti among the trees
// already inserted into ix and smalls (Algorithm 1 lines 5–10). Pairs pass
// the filter chain before any subgraph-match test.
func (j *joiner) probeAndCollect(px *engine.Pipeline, ti int, ix *invIndex, smalls []int) {
	if len(ix.bySize) == 0 && len(smalls) == 0 {
		return // nothing indexed yet (e.g. the smaller side of a cross task)
	}
	stats := px.Stats()
	start := time.Now()
	ts := j.c.Trees
	t := ts[ti]
	b := j.bin(ti)
	sz := t.Size()
	gen := j.gen
	j.gen++
	// Small-tree fallback: trees below δ nodes were never indexed.
	for _, other := range smalls {
		if ts[other].Size() >= sz-j.opts.Tau && j.state[other]>>2 != gen {
			j.state[other] = gen<<2 | stEmitted
			if px.Screen(ti, other) {
				stats.SmallTreeFallback++
				px.Emit(ti, other)
			}
		}
	}
	minSize := sz - j.opts.Tau
	if minSize < 1 {
		minSize = 1
	}
	for _, n := range b.Order {
		stats.SubgraphProbes += ix.probe(b, n, minSize, sz, func(e entry) {
			switch st := j.state[e.tree]; {
			case st>>2 != gen:
				if !px.Screen(ti, int(e.tree)) {
					j.state[e.tree] = gen<<2 | stKilled
					return
				}
				j.state[e.tree] = gen<<2 | stPassed
			case st&3 != stPassed: // already emitted or killed this probe
				return
			}
			stats.MatchTests++
			if matches(j.parts[e.tree], e.comp, b, n, &j.sc) {
				stats.MatchHits++
				j.state[e.tree] = gen<<2 | stEmitted
				px.Emit(ti, int(e.tree))
			}
		})
	}
	stats.CandTime += time.Since(start)
}

// insert partitions tree ti and adds its subgraphs to ix (Algorithm 1 lines
// 13–16), or records it as a small tree.
func (j *joiner) insert(px *engine.Pipeline, ti int, ix *invIndex, smalls *[]int) {
	stats := px.Stats()
	start := time.Now()
	ts := j.c.Trees
	if ts[ti].Size() >= j.delta {
		stats.IndexedSubgraphs += int64(j.delta)
		ix.insert(ti, j.partition(ti))
	} else {
		*smalls = append(*smalls, ti)
	}
	stats.PartitionTime += time.Since(start)
}
