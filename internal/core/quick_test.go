package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treejoin/internal/lcrs"
	"treejoin/internal/tree"
)

// testing/quick property tests over the core data structures; each property
// is quantified over generator seeds so quick drives shrinking-style
// exploration while tree construction stays valid by construction.

// TestQuickPartitionInvariants: for arbitrary trees and admissible δ, the
// balanced partition has δ components whose sizes sum to the tree size, each
// at least MaxMinSize's γ, and γ+1 is infeasible.
func TestQuickPartitionInvariants(t *testing.T) {
	lt := tree.NewLabelTable()
	st := &partitionState{}
	f := func(seed int64, deltaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGeneralTree(rng, 70, lt)
		b := lcrs.Build(g)
		delta := 1 + int(deltaRaw)%11
		if delta > b.Size() {
			delta = b.Size()
		}
		p := Compute(b, delta)
		if p.Validate() != nil {
			return false
		}
		var total int32
		for _, s := range p.Sizes {
			if int(s) < p.Gamma {
				return false
			}
			total += s
		}
		if int(total) != b.Size() {
			return false
		}
		return !partitionable(b, delta, p.Gamma+1, st, nil)
	}
	cfg := &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(401))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLemma2: the filtering principle as a quick property — after at
// most τ random edits, some component of any δ-partitioning still occurs.
func TestQuickLemma2(t *testing.T) {
	lt := tree.NewLabelTable()
	f := func(seed int64, tauRaw, edits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tau := 1 + int(tauRaw)%4
		delta := 2*tau + 1
		t1 := randomSizedTree(rng, delta+rng.Intn(40), lt)
		p := Compute(lcrs.Build(t1), delta)
		t2 := t1
		for e := 0; e < int(edits)%(tau+1); e++ {
			t2 = randomEditOp(rng, t2, lt)
		}
		b2 := lcrs.Build(t2)
		for c := 0; c < delta; c++ {
			if MatchesAnywhere(p, int32(c), b2) {
				return true
			}
		}
		return false
	}
	cfg := &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(409))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBinaryPostorderPermutation: lcrs.Build's orders are inverse
// permutations with children before parents, for arbitrary trees.
func TestQuickBinaryPostorderPermutation(t *testing.T) {
	lt := tree.NewLabelTable()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGeneralTree(rng, 60, lt)
		b := lcrs.Build(g)
		for r, n := range b.Order {
			if b.Rank[n] != int32(r) {
				return false
			}
		}
		for id := range g.Nodes {
			n := int32(id)
			if l := b.Left(n); l != lcrs.None && b.Rank[l] >= b.Rank[n] {
				return false
			}
			if r := b.Right(n); r != lcrs.None && b.Rank[r] >= b.Rank[n] {
				return false
			}
			// General postorder: parent after every child.
			for c := g.Nodes[n].FirstChild; c != tree.None; c = g.Nodes[c].NextSibling {
				if b.GenRank[c] >= b.GenRank[n] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(419))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
