package core

import (
	"sort"
	"sync"

	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// Threshold-free queries (an extension beyond the paper): the similarity
// join and search take a TED threshold τ, but two common workloads do not
// know one up front — "find the k most similar pairs in the collection" and
// "find the k nearest neighbours of this query". Both reduce to the
// thresholded forms by an expanding-threshold search: a run at threshold τ
// is complete for distances ≤ τ, so as soon as it produces k hits the k
// best of them are the global answer (anything unseen is farther than τ,
// hence farther than the k-th hit). Thresholds grow geometrically, so the
// total work is dominated by the last round — the round a clairvoyant
// caller with the right τ would have paid for anyway.

// TopK returns the k closest pairs of the collection by TED, ties broken by
// (Dist, I, J). It runs PartSJ self-joins at geometrically increasing
// thresholds, starting from opts.Tau (minimum 1), until k pairs are within
// reach or every pair has been reported. Fewer than k pairs are returned
// only when the collection has fewer than k pairs overall.
func TopK(ts []*tree.Tree, k int, opts Options) []sim.Pair {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	if k <= 0 || len(ts) < 2 {
		return nil
	}
	if all := len(ts) * (len(ts) - 1) / 2; k > all {
		k = all
	}
	// τ never needs to exceed maxSize + secondMaxSize: deleting one tree
	// entirely and inserting the other is an edit script for any pair.
	var max1, max2 int
	for _, t := range ts {
		switch s := t.Size(); {
		case s > max1:
			max1, max2 = s, max1
		case s > max2:
			max2 = s
		}
	}
	tauCap := max1 + max2
	tau := opts.Tau
	if tau < 1 {
		tau = 1
	}
	for {
		o := opts
		o.Tau = tau
		pairs, _ := SelfJoin(ts, o)
		if len(pairs) >= k || tau >= tauCap {
			sortByDist(pairs)
			if len(pairs) > k {
				pairs = pairs[:k]
			}
			return pairs
		}
		tau *= 2
		if tau > tauCap {
			tau = tauCap
		}
	}
}

// sortByDist orders pairs by (Dist, I, J).
func sortByDist(ps []sim.Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].Dist != ps[b].Dist {
			return ps[a].Dist < ps[b].Dist
		}
		if ps[a].I != ps[b].I {
			return ps[a].I < ps[b].I
		}
		return ps[a].J < ps[b].J
	})
}

// KNN answers k-nearest-neighbour queries over a fixed collection. Each
// distinct threshold the expanding search visits builds one Index; indexes
// are cached, so a query workload settles into reusing a handful of them.
// Nearest is safe for concurrent use.
type KNN struct {
	ts     []*tree.Tree
	opts   Options
	tauCap int

	mu    sync.Mutex
	cache map[int]*Index
}

// NewKNN prepares a k-NN searcher over ts. opts.Tau sets the first threshold
// tried (minimum 1); the remaining options configure the underlying indexes
// and verifier as in NewIndex.
func NewKNN(ts []*tree.Tree, opts Options) *KNN {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	var max1 int
	for _, t := range ts {
		if s := t.Size(); s > max1 {
			max1 = s
		}
	}
	return &KNN{ts: ts, opts: opts, tauCap: max1, cache: make(map[int]*Index)}
}

// Len returns the collection size.
func (x *KNN) Len() int { return len(x.ts) }

// Tree returns the i-th collection tree.
func (x *KNN) Tree(i int) *tree.Tree { return x.ts[i] }

func (x *KNN) index(tau int) *Index {
	x.mu.Lock()
	defer x.mu.Unlock()
	ix := x.cache[tau]
	if ix == nil {
		o := x.opts
		o.Tau = tau
		ix = NewIndex(x.ts, o)
		x.cache[tau] = ix
	}
	return ix
}

// Nearest returns the k collection trees closest to q by TED, ordered by
// (Dist, Pos). Fewer than k matches are returned only when the collection
// holds fewer than k trees.
func (x *KNN) Nearest(q *tree.Tree, k int) []Match {
	if k <= 0 || len(x.ts) == 0 {
		return nil
	}
	if k > len(x.ts) {
		k = len(x.ts)
	}
	tauCap := x.tauCap + q.Size()
	tau := x.opts.Tau
	if tau < 1 {
		tau = 1
	}
	for {
		ms := x.index(tau).Search(q)
		if len(ms) >= k || tau >= tauCap {
			sort.Slice(ms, func(a, b int) bool {
				if ms[a].Dist != ms[b].Dist {
					return ms[a].Dist < ms[b].Dist
				}
				return ms[a].Pos < ms[b].Pos
			})
			if len(ms) > k {
				ms = ms[:k]
			}
			return ms
		}
		tau *= 2
		if tau > tauCap {
			tau = tauCap
		}
	}
}
