package core

import (
	"context"
	"sort"
	"sync"

	"treejoin/internal/engine"
	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// Threshold-free queries (an extension beyond the paper): the similarity
// join and search take a TED threshold τ, but two common workloads do not
// know one up front — "find the k most similar pairs in the collection" and
// "find the k nearest neighbours of this query". Both reduce to the
// thresholded forms by an expanding-threshold search: a run at threshold τ
// is complete for distances ≤ τ, so as soon as it produces k hits the k
// best of them are the global answer (anything unseen is farther than τ,
// hence farther than the k-th hit). Thresholds grow geometrically, so the
// total work is dominated by the last round — the round a clairvoyant
// caller with the right τ would have paid for anyway.

// TopK returns the k closest pairs of the collection by TED, ties broken by
// (Dist, I, J). It runs PartSJ self-joins at geometrically increasing
// thresholds, starting from opts.Tau (minimum 1), until k pairs are within
// reach or every pair has been reported. Fewer than k pairs are returned
// only when the collection has fewer than k pairs overall. It panics on
// invalid options — the legacy contract; corpus-backed callers use TopKCtx.
func TopK(ts []*tree.Tree, k int, opts Options) []sim.Pair {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	pairs, err := TopKCtx(context.Background(), ts, k, opts, 0, nil)
	if err != nil {
		panic(err)
	}
	return pairs
}

// TopKCtx is TopK under a context and an artifact cache: each expanding
// round runs the cancellable engine join (sharded when shards > 1), drawing
// per-tree signatures from cache. On cancellation it returns ctx's error
// together with the pairs the aborted round had found — honest partial
// output, not necessarily the global top k. Options must be valid.
func TopKCtx(ctx context.Context, ts []*tree.Tree, k int, opts Options, shards int, cache *engine.Cache) ([]sim.Pair, error) {
	if k <= 0 || len(ts) < 2 {
		return nil, ctx.Err()
	}
	if all := len(ts) * (len(ts) - 1) / 2; k > all {
		k = all
	}
	// τ never needs to exceed maxSize + secondMaxSize: deleting one tree
	// entirely and inserting the other is an edit script for any pair.
	var max1, max2 int
	for _, t := range ts {
		switch s := t.Size(); {
		case s > max1:
			max1, max2 = s, max1
		case s > max2:
			max2 = s
		}
	}
	tauCap := max1 + max2
	tau := opts.Tau
	if tau < 1 {
		tau = 1
	}
	for {
		o := opts
		o.Tau = tau
		job := o.Job(shards, nil)
		job.Cache = cache
		var pairs []sim.Pair
		_, err := job.StreamSelf(ctx, ts, func(p sim.Pair) bool {
			pairs = append(pairs, p)
			return true
		})
		if err != nil {
			sortByDist(pairs)
			if len(pairs) > k {
				pairs = pairs[:k]
			}
			return pairs, err
		}
		if len(pairs) >= k || tau >= tauCap {
			sortByDist(pairs)
			if len(pairs) > k {
				pairs = pairs[:k]
			}
			return pairs, nil
		}
		tau *= 2
		if tau > tauCap {
			tau = tauCap
		}
	}
}

// sortByDist orders pairs by (Dist, I, J).
func sortByDist(ps []sim.Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].Dist != ps[b].Dist {
			return ps[a].Dist < ps[b].Dist
		}
		if ps[a].I != ps[b].I {
			return ps[a].I < ps[b].I
		}
		return ps[a].J < ps[b].J
	})
}

// DefaultIndexCacheCap is the default bound on the per-threshold index cache
// behind KNN (and a corpus's Search): one full PartSJ index is retained per
// cached threshold, so the cap trades rebuild time against memory. The
// expanding-threshold search visits geometrically spaced thresholds — at
// most ⌊log₂(tauCap)⌋+2 of them per query, where tauCap = max tree size +
// query size — so the default covers a full worst-case sweep for
// tree-plus-query sizes up to ~16K nodes. A smaller cap makes a sweep
// longer than the cap cycle the LRU (each query rebuilding every index),
// which is the caveat to weigh when lowering it via WithIndexCacheCap.
const DefaultIndexCacheCap = 16

// indexLRU is a small least-recently-used cache of per-threshold search
// indexes. Capacities are tiny (single digits), so recency is tracked with a
// plain slice — the O(cap) bookkeeping is noise next to an index build.
type indexLRU struct {
	mu        sync.Mutex
	cap       int
	order     []int // thresholds, most recently used first
	m         map[int]*Index
	evictions int64
}

func newIndexLRU(capacity int) *indexLRU {
	if capacity < 1 {
		capacity = 1
	}
	return &indexLRU{cap: capacity, m: make(map[int]*Index)}
}

// get returns the cached index for tau, or nil; a hit refreshes recency.
func (l *indexLRU) get(tau int) *Index {
	l.mu.Lock()
	defer l.mu.Unlock()
	ix := l.m[tau]
	if ix != nil {
		l.touch(tau)
	}
	return ix
}

// put inserts the index for tau, evicting the least recently used entry when
// the cache is full.
func (l *indexLRU) put(tau int, ix *Index) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.m[tau]; ok {
		l.m[tau] = ix
		l.touch(tau)
		return
	}
	if len(l.order) >= l.cap {
		last := l.order[len(l.order)-1]
		l.order = l.order[:len(l.order)-1]
		delete(l.m, last)
		l.evictions++
	}
	l.m[tau] = ix
	l.order = append([]int{tau}, l.order...)
}

// touch moves tau to the front of the recency order (must hold l.mu).
func (l *indexLRU) touch(tau int) {
	for i, v := range l.order {
		if v == tau {
			copy(l.order[1:i+1], l.order[:i])
			l.order[0] = tau
			return
		}
	}
}

// KNN answers k-nearest-neighbour queries over a fixed collection. Each
// distinct threshold the expanding search visits builds one Index; a small
// LRU keeps the most recently used of them (an unbounded cache would retain
// one full PartSJ index per threshold ever visited), so a query workload
// settles into reusing a handful. Nearest is safe for concurrent use.
type KNN struct {
	ts        []*tree.Tree
	opts      Options
	tauCap    int
	cache     *indexLRU
	artifacts *engine.Cache
}

// NewKNN prepares a k-NN searcher over ts. opts.Tau sets the first threshold
// tried (minimum 1); the remaining options configure the underlying indexes
// and verifier as in NewIndex. It panics on invalid options — the legacy
// contract; corpus-backed callers use NewKNNCached.
func NewKNN(ts []*tree.Tree, opts Options) *KNN {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	return NewKNNCached(ts, opts, nil, DefaultIndexCacheCap)
}

// NewKNNCached is NewKNN drawing per-tree artifacts from cache (nil: compute
// locally) and bounding the per-threshold index cache at capacity (≥ 1;
// values below 1 are raised to 1). Options must be valid.
func NewKNNCached(ts []*tree.Tree, opts Options, cache *engine.Cache, capacity int) *KNN {
	var max1 int
	for _, t := range ts {
		if s := t.Size(); s > max1 {
			max1 = s
		}
	}
	return &KNN{ts: ts, opts: opts, tauCap: max1, cache: newIndexLRU(capacity), artifacts: cache}
}

// Len returns the collection size.
func (x *KNN) Len() int { return len(x.ts) }

// Tree returns the i-th collection tree.
func (x *KNN) Tree(i int) *tree.Tree { return x.ts[i] }

// CachedIndexes returns the number of per-threshold indexes currently
// retained (≤ the configured capacity).
func (x *KNN) CachedIndexes() int {
	x.cache.mu.Lock()
	defer x.cache.mu.Unlock()
	return len(x.cache.m)
}

// Evictions returns how many cached indexes the LRU bound has discarded.
func (x *KNN) Evictions() int64 {
	x.cache.mu.Lock()
	defer x.cache.mu.Unlock()
	return x.cache.evictions
}

// IndexAt returns the search index for threshold tau, building and caching
// it on first use. Two concurrent callers may both build the same index; one
// build wins the cache slot and the other is garbage — acceptable for an
// operation whose callers are already paying an index build.
func (x *KNN) IndexAt(tau int) *Index {
	if ix := x.cache.get(tau); ix != nil {
		return ix
	}
	o := x.opts
	o.Tau = tau
	ix := NewIndexCached(x.ts, o, x.artifacts)
	x.cache.put(tau, ix)
	return ix
}

// Nearest returns the k collection trees closest to q by TED, ordered by
// (Dist, Pos). Fewer than k matches are returned only when the collection
// holds fewer than k trees.
func (x *KNN) Nearest(q *tree.Tree, k int) []Match {
	ms, _ := x.NearestCtx(context.Background(), q, k)
	return ms
}

// NearestCtx is Nearest under a context: cancellation aborts the expanding
// search promptly and returns ctx's error with nil matches.
func (x *KNN) NearestCtx(ctx context.Context, q *tree.Tree, k int) ([]Match, error) {
	if k <= 0 || len(x.ts) == 0 {
		return nil, ctx.Err()
	}
	if k > len(x.ts) {
		k = len(x.ts)
	}
	tauCap := x.tauCap + q.Size()
	tau := x.opts.Tau
	if tau < 1 {
		tau = 1
	}
	for {
		// Check before each round: IndexAt may pay a full (uncancellable)
		// index build, so don't start one the caller no longer wants.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ms, err := x.IndexAt(tau).SearchCtx(ctx, q)
		if err != nil {
			return nil, err
		}
		if len(ms) >= k || tau >= tauCap {
			sort.Slice(ms, func(a, b int) bool {
				if ms[a].Dist != ms[b].Dist {
					return ms[a].Dist < ms[b].Dist
				}
				return ms[a].Pos < ms[b].Pos
			})
			if len(ms) > k {
				ms = ms[:k]
			}
			return ms, nil
		}
		tau *= 2
		if tau > tauCap {
			tau = tauCap
		}
	}
}
