package core

import (
	"math/rand"
	"testing"

	"treejoin/internal/lcrs"
	"treejoin/internal/tree"
)

// figure9Tree returns the general tree whose LC-RS binary representation is
// the 11-node binary tree of the paper's Figure 9 (postorder N5 N6 N4 N3 N10
// N9 N11 N8 N7 N2 N1).
func figure9Tree(lt *tree.LabelTable) *tree.Tree {
	return tree.MustParseBracket("{l1{l2{l3{l4{l5}}{l6}}}{l7{l8{l9{l10}}}{l11}}}", lt)
}

func nodeByLabel(t *tree.Tree, name string) int32 {
	for id := range t.Nodes {
		if t.Label(int32(id)) == name {
			return int32(id)
		}
	}
	panic("label not found: " + name)
}

func TestFigure9Partitionable(t *testing.T) {
	lt := tree.NewLabelTable()
	g := figure9Tree(lt)
	b := lcrs.Build(g)
	if b.Size() != 11 {
		t.Fatalf("size = %d", b.Size())
	}
	st := &partitionState{}
	if !partitionable(b, 3, 3, st, nil) {
		t.Fatal("Figure 9 tree should be (3,3)-partitionable")
	}
	if partitionable(b, 3, 4, st, nil) {
		t.Fatal("Figure 9 tree should not be (3,4)-partitionable")
	}
	if got := MaxMinSize(b, 3); got != 3 {
		t.Fatalf("MaxMinSize = %d, want 3", got)
	}
}

func TestFigure9Partition(t *testing.T) {
	lt := tree.NewLabelTable()
	g := figure9Tree(lt)
	b := lcrs.Build(g)
	p := Compute(b, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Gamma != 3 {
		t.Fatalf("gamma = %d", p.Gamma)
	}
	// Expected cuts (paper's trace): s1 = {l4,l5,l6}, s2 = {l8,l9,l10,l11},
	// root component = {l1,l2,l3,l7}.
	wantComp := map[string]int32{
		"l4": 0, "l5": 0, "l6": 0,
		"l8": 1, "l9": 1, "l10": 1, "l11": 1,
		"l1": 2, "l2": 2, "l3": 2, "l7": 2,
	}
	for name, want := range wantComp {
		if got := p.Comp[nodeByLabel(g, name)]; got != want {
			t.Errorf("comp(%s) = %d, want %d", name, got, want)
		}
	}
	if p.Sizes[0] != 3 || p.Sizes[1] != 4 || p.Sizes[2] != 4 {
		t.Errorf("sizes = %v", p.Sizes)
	}
	if p.Roots[0] != nodeByLabel(g, "l4") || p.Roots[1] != nodeByLabel(g, "l8") {
		t.Errorf("cut roots = %v", p.Roots)
	}
}

func randomGeneralTree(rng *rand.Rand, maxN int, lt *tree.LabelTable) *tree.Tree {
	n := 1 + rng.Intn(maxN)
	b := tree.NewBuilder(lt)
	b.Root(string(rune('a' + rng.Intn(5))))
	for i := 1; i < n; i++ {
		b.Child(int32(rng.Intn(i)), string(rune('a'+rng.Intn(5))))
	}
	return b.MustBuild()
}

// bruteforcePartitionable enumerates all (δ−1)-subsets of edges and reports
// whether some subset yields δ components all of size ≥ γ. Exponential; keep
// trees small.
func bruteforcePartitionable(b *lcrs.Bin, delta, gamma int) bool {
	var nonRoot []int32
	for id := range b.Tree.Nodes {
		if int32(id) != b.Tree.Root() {
			nonRoot = append(nonRoot, int32(id))
		}
	}
	cut := make(map[int32]bool)
	var rec func(start, left int) bool
	rec = func(start, left int) bool {
		if left == 0 {
			return allComponentsAtLeast(b, cut, gamma)
		}
		for i := start; i <= len(nonRoot)-left; i++ {
			cut[nonRoot[i]] = true
			if rec(i+1, left-1) {
				cut[nonRoot[i]] = false
				return true
			}
			cut[nonRoot[i]] = false
		}
		return false
	}
	return rec(0, delta-1)
}

func allComponentsAtLeast(b *lcrs.Bin, cut map[int32]bool, gamma int) bool {
	// residual[v] = nodes below v within v's component.
	residual := make([]int32, b.Size())
	ok := true
	for _, v := range b.Order {
		r := int32(1)
		if l := b.Left(v); l != lcrs.None && !cut[l] {
			r += residual[l]
		}
		if rr := b.Right(v); rr != lcrs.None && !cut[rr] {
			r += residual[rr]
		}
		residual[v] = r
		if cut[v] || v == b.Tree.Root() {
			if int(r) < gamma {
				ok = false
			}
		}
	}
	return ok
}

// TestPartitionableMatchesBruteForce: the greedy linear-time test (Algorithm
// 2) decides exactly the same instances as exhaustive search.
func TestPartitionableMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	lt := tree.NewLabelTable()
	st := &partitionState{}
	for i := 0; i < 300; i++ {
		g := randomGeneralTree(rng, 12, lt)
		b := lcrs.Build(g)
		n := b.Size()
		for delta := 1; delta <= n && delta <= 4; delta++ {
			for gamma := 1; gamma <= n; gamma++ {
				got := partitionable(b, delta, gamma, st, nil)
				want := gamma*delta <= n && bruteforcePartitionable(b, delta, gamma)
				if got != want {
					t.Fatalf("partitionable(δ=%d, γ=%d) = %v, brute force %v\n%s",
						delta, gamma, got, want, tree.FormatBracket(g))
				}
			}
		}
	}
}

// TestMaxMinSizeMaximality: MaxMinSize returns a feasible γ whose successor
// is infeasible (Lemma 4 monotonicity makes this the maximum).
func TestMaxMinSizeMaximality(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	lt := tree.NewLabelTable()
	st := &partitionState{}
	for i := 0; i < 300; i++ {
		g := randomGeneralTree(rng, 60, lt)
		b := lcrs.Build(g)
		n := b.Size()
		for delta := 1; delta <= n && delta <= 9; delta += 2 {
			gamma := MaxMinSize(b, delta)
			if gamma < 1 {
				t.Fatalf("MaxMinSize = %d", gamma)
			}
			if !partitionable(b, delta, gamma, st, nil) {
				t.Fatalf("MaxMinSize γ=%d infeasible (δ=%d, n=%d)", gamma, delta, n)
			}
			if partitionable(b, delta, gamma+1, st, nil) {
				t.Fatalf("MaxMinSize γ=%d not maximal (δ=%d, n=%d)", gamma, delta, n)
			}
		}
	}
}

// TestComputeInvariants: the realised partition has δ connected components,
// every component at least γ nodes, component roots in postorder, and the
// recorded component sizes correct.
func TestComputeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	lt := tree.NewLabelTable()
	for i := 0; i < 300; i++ {
		g := randomGeneralTree(rng, 80, lt)
		b := lcrs.Build(g)
		n := b.Size()
		for delta := 1; delta <= n && delta <= 9; delta += 2 {
			p := Compute(b, delta)
			if err := p.Validate(); err != nil {
				t.Fatalf("δ=%d: %v\n%s", delta, err, tree.FormatBracket(g))
			}
			if p.MinSize() < p.Gamma {
				t.Fatalf("component smaller than γ: min=%d γ=%d", p.MinSize(), p.Gamma)
			}
			var total int32
			for _, s := range p.Sizes {
				total += s
			}
			if int(total) != n {
				t.Fatalf("component sizes sum to %d, want %d", total, n)
			}
		}
	}
}

func TestComputeRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	lt := tree.NewLabelTable()
	for i := 0; i < 200; i++ {
		g := randomGeneralTree(rng, 60, lt)
		b := lcrs.Build(g)
		n := b.Size()
		for delta := 1; delta <= n && delta <= 7; delta += 2 {
			p := ComputeRandom(b, delta, rng)
			if err := p.Validate(); err != nil {
				t.Fatalf("δ=%d: %v\n%s", delta, err, tree.FormatBracket(g))
			}
		}
	}
}

func TestPartitionEdgeShapes(t *testing.T) {
	lt := tree.NewLabelTable()
	shapes := []string{
		"{a}",
		"{a{b}}",
		"{a{b{c{d{e{f{g}}}}}}}",       // deep chain
		"{a{b}{c}{d}{e}{f}{g}}",       // star
		"{a{b{c}{d}}{e{f}{g}}}",       // balanced
		"{a{b{c{d}}{e}}{f}{g{h{i}}}}", // mixed
	}
	for _, s := range shapes {
		g := tree.MustParseBracket(s, lt)
		b := lcrs.Build(g)
		for delta := 1; delta <= b.Size(); delta++ {
			p := Compute(b, delta)
			if err := p.Validate(); err != nil {
				t.Fatalf("%s δ=%d: %v", s, delta, err)
			}
			if delta == b.Size() && p.MinSize() != 1 {
				t.Fatalf("δ=n should give singletons")
			}
		}
	}
}

// TestPaperLowerBoundFormula: the closed-form γ of Algorithm 3 line 3 is
// always feasible (the property the binary search's initial invariant needs).
func TestPaperLowerBoundFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	lt := tree.NewLabelTable()
	st := &partitionState{}
	for i := 0; i < 200; i++ {
		g := randomGeneralTree(rng, 50, lt)
		b := lcrs.Build(g)
		n := b.Size()
		for delta := 1; delta <= n && delta <= 7; delta++ {
			gmin := maxMinSizeLowerBound(n, delta)
			if gmin < 1 {
				t.Fatalf("lower bound %d < 1", gmin)
			}
			if !partitionable(b, delta, gmin, st, nil) {
				t.Fatalf("closed-form bound infeasible: n=%d δ=%d γ=%d", n, delta, gmin)
			}
		}
	}
}
