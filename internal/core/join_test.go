package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"treejoin/internal/baseline"
	"treejoin/internal/core"
	"treejoin/internal/sim"
	"treejoin/internal/synth"
	"treejoin/internal/tree"
)

// testCollection is one dataset for the oracle-equality suite.
type testCollection struct {
	name string
	ts   []*tree.Tree
}

// testCollections builds a spread of shapes: the paper's dataset profiles at
// small scale plus adversarial collections (duplicates, chains, stars, tiny
// trees) that exercise the join's edge paths.
func testCollections(short bool) []testCollection {
	n := 48
	if short {
		n = 24
	}
	flat := synth.Generate(synth.Params{
		N: n, AvgSize: 24, SizeJitter: 0.3, MaxFanout: 8, MaxDepth: 4,
		Labels: 12, DepthBias: -0.3, Cluster: 4, Decay: 0.04, Seed: 7})
	deep := synth.Generate(synth.Params{
		N: n, AvgSize: 22, SizeJitter: 0.3, MaxFanout: 3, MaxDepth: 20,
		Labels: 30, DepthBias: 0.5, Cluster: 4, Decay: 0.05, Seed: 8})
	binary := synth.Generate(synth.Params{
		N: n, AvgSize: 20, SizeJitter: 0.3, MaxFanout: 2, MaxDepth: 18,
		Labels: 4, DepthBias: 0.4, Cluster: 3, Decay: 0.06, Seed: 9})
	sparse := synth.Generate(synth.Params{
		N: n, AvgSize: 26, SizeJitter: 0.4, MaxFanout: 3, MaxDepth: 5,
		Labels: 20, DepthBias: 0, Cluster: 1, Decay: 0, Seed: 10})

	lt := tree.NewLabelTable()
	var weird []*tree.Tree
	// Duplicates.
	for i := 0; i < 6; i++ {
		weird = append(weird, tree.MustParseBracket("{a{b{c}}{d}}", lt))
	}
	// Chains of several lengths, tiny trees, stars.
	for n := 1; n <= 12; n++ {
		b := tree.NewBuilder(lt)
		cur := b.Root("c")
		for i := 1; i < n; i++ {
			cur = b.Child(cur, "c")
		}
		weird = append(weird, b.MustBuild())
	}
	for n := 2; n <= 12; n += 2 {
		b := tree.NewBuilder(lt)
		r := b.Root("s")
		for i := 1; i < n; i++ {
			b.Child(r, "s")
		}
		weird = append(weird, b.MustBuild())
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 16; i++ {
		sz := 1 + rng.Intn(8)
		b := tree.NewBuilder(lt)
		b.Root(string(rune('a' + rng.Intn(3))))
		for j := 1; j < sz; j++ {
			b.Child(int32(rng.Intn(j)), string(rune('a'+rng.Intn(3))))
		}
		weird = append(weird, b.MustBuild())
	}

	return []testCollection{
		{"flat", flat},
		{"deep", deep},
		{"binary", binary},
		{"sparse", sparse},
		{"adversarial", weird},
	}
}

func pairsEqual(a, b []sim.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].I != b[i].I || a[i].J != b[i].J || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

func pairSet(ps []sim.Pair) map[[2]int]int {
	m := make(map[[2]int]int, len(ps))
	for _, p := range ps {
		m[[2]int{p.I, p.J}] = p.Dist
	}
	return m
}

// TestJoinMethodsAgreeWithOracle is the module's central invariant: PartSJ in
// every sound configuration, STR, and SET return exactly the brute-force
// result set on every collection shape and threshold.
func TestJoinMethodsAgreeWithOracle(t *testing.T) {
	cols := testCollections(testing.Short())
	maxTau := 4
	if testing.Short() {
		maxTau = 3
	}
	for _, col := range cols {
		for tau := 0; tau <= maxTau; tau++ {
			want, _ := baseline.BruteForce(col.ts, baseline.Options{Tau: tau})
			check := func(name string, got []sim.Pair) {
				t.Helper()
				if !pairsEqual(want, got) {
					t.Errorf("%s/%s τ=%d: %d pairs, oracle %d\n got: %v\nwant: %v",
						col.name, name, tau, len(got), len(want), got, want)
				}
			}
			prt, _ := core.SelfJoin(col.ts, core.Options{Tau: tau})
			check("PRT-safe", prt)
			off, _ := core.SelfJoin(col.ts, core.Options{Tau: tau, Position: core.PositionOff})
			check("PRT-off", off)
			rnd, _ := core.SelfJoin(col.ts, core.Options{Tau: tau, RandomPartition: true, Seed: 99})
			check("PRT-random", rnd)
			hyb, _ := core.SelfJoin(col.ts, core.Options{Tau: tau, HybridVerify: true})
			check("PRT-hybrid", hyb)
			str, _ := baseline.STR(col.ts, baseline.Options{Tau: tau})
			check("STR", str)
			set, _ := baseline.SET(col.ts, baseline.Options{Tau: tau})
			check("SET", set)
			// The paper's position ranges: every reported pair must be a true
			// result (no false positives ever); completeness can fail only in
			// adversarial corner cases, which we surface as a log, not a
			// failure (see DESIGN.md reproduction notes).
			paper, _ := core.SelfJoin(col.ts, core.Options{Tau: tau, Position: core.PositionPaper})
			wantSet := pairSet(want)
			for _, p := range paper {
				if _, ok := wantSet[[2]int{p.I, p.J}]; !ok {
					t.Errorf("%s/PRT-paper τ=%d: spurious pair %v", col.name, tau, p)
				}
			}
			if len(paper) != len(want) {
				t.Logf("%s/PRT-paper τ=%d: %d of %d results (paper-formula position ranges miss %d pairs)",
					col.name, tau, len(paper), len(want), len(want)-len(paper))
			}
		}
	}
}

// TestJoinStatsSanity: candidates bound results, PartSJ candidates never
// exceed the size-filter pair count, and counters are coherent.
func TestJoinStatsSanity(t *testing.T) {
	cols := testCollections(true)
	for _, col := range cols {
		for tau := 1; tau <= 3; tau++ {
			_, bfStats := baseline.BruteForce(col.ts, baseline.Options{Tau: tau})
			pairs, st := core.SelfJoin(col.ts, core.Options{Tau: tau})
			if st.Results != int64(len(pairs)) {
				t.Fatalf("Results stat %d != %d", st.Results, len(pairs))
			}
			if st.Candidates < st.Results {
				t.Fatalf("candidates %d < results %d", st.Candidates, st.Results)
			}
			if st.Candidates > bfStats.Candidates {
				t.Fatalf("%s τ=%d: PartSJ candidates %d exceed size-filter pairs %d",
					col.name, tau, st.Candidates, bfStats.Candidates)
			}
			if st.MatchHits > st.MatchTests {
				t.Fatalf("hits %d > tests %d", st.MatchHits, st.MatchTests)
			}
		}
	}
}

// TestSelfJoinParallelVerification: worker pools do not change results.
func TestSelfJoinParallelVerification(t *testing.T) {
	cols := testCollections(true)
	for _, col := range cols {
		seq, _ := core.SelfJoin(col.ts, core.Options{Tau: 2})
		par, _ := core.SelfJoin(col.ts, core.Options{Tau: 2, Workers: 4})
		if !pairsEqual(seq, par) {
			t.Fatalf("%s: parallel verification changed results", col.name)
		}
	}
}

func TestSelfJoinEdgeCases(t *testing.T) {
	lt := tree.NewLabelTable()
	if pairs, st := core.SelfJoin(nil, core.Options{Tau: 2}); len(pairs) != 0 || st.Results != 0 {
		t.Fatal("empty collection should produce no pairs")
	}
	one := []*tree.Tree{tree.MustParseBracket("{a}", lt)}
	if pairs, _ := core.SelfJoin(one, core.Options{Tau: 3}); len(pairs) != 0 {
		t.Fatal("single tree should produce no pairs")
	}
	// τ = 0: exactly the duplicate pairs.
	dups := []*tree.Tree{
		tree.MustParseBracket("{a{b}}", lt),
		tree.MustParseBracket("{a{b}}", lt),
		tree.MustParseBracket("{a{c}}", lt),
		tree.MustParseBracket("{a{b}}", lt),
	}
	pairs, _ := core.SelfJoin(dups, core.Options{Tau: 0})
	want := []sim.Pair{{I: 0, J: 1}, {I: 0, J: 3}, {I: 1, J: 3}}
	if len(pairs) != len(want) {
		t.Fatalf("τ=0 pairs = %v", pairs)
	}
	for i := range want {
		if pairs[i].I != want[i].I || pairs[i].J != want[i].J || pairs[i].Dist != 0 {
			t.Fatalf("τ=0 pairs = %v", pairs)
		}
	}
	// All trees smaller than δ: everything flows through the small-tree path.
	tiny := []*tree.Tree{
		tree.MustParseBracket("{a}", lt),
		tree.MustParseBracket("{b}", lt),
		tree.MustParseBracket("{a{b}}", lt),
		tree.MustParseBracket("{a{c}}", lt),
	}
	got, st := core.SelfJoin(tiny, core.Options{Tau: 2})
	oracle, _ := baseline.BruteForce(tiny, baseline.Options{Tau: 2})
	if !pairsEqual(got, oracle) {
		t.Fatalf("tiny join = %v, oracle %v", got, oracle)
	}
	if st.SmallTreeFallback == 0 {
		t.Fatal("small-tree path not exercised")
	}
}

func TestSelfJoinPanicsOnNegativeTau(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on τ < 0")
		}
	}()
	core.SelfJoin(nil, core.Options{Tau: -1})
}

// TestIncrementalMatchesBatch: streaming insertion in random order yields the
// same pair set as the batch join.
func TestIncrementalMatchesBatch(t *testing.T) {
	cols := testCollections(true)
	rng := rand.New(rand.NewSource(31))
	for _, col := range cols {
		for tau := 0; tau <= 3; tau++ {
			want, _ := baseline.BruteForce(col.ts, baseline.Options{Tau: tau})
			// Shuffle arrival order.
			arrival := rng.Perm(len(col.ts))
			inc := core.NewIncremental(core.Options{Tau: tau})
			var got []sim.Pair
			for _, orig := range arrival {
				for _, p := range inc.Add(col.ts[orig]) {
					// Map stream indices back to original collection indices.
					oi, oj := arrival[p.I], arrival[p.J]
					if oi > oj {
						oi, oj = oj, oi
					}
					got = append(got, sim.Pair{I: oi, J: oj, Dist: p.Dist})
				}
			}
			sim.SortPairs(got)
			if !pairsEqual(want, got) {
				t.Fatalf("%s τ=%d: incremental %d pairs, oracle %d", col.name, tau, len(got), len(want))
			}
			if inc.Len() != len(col.ts) {
				t.Fatalf("Len = %d", inc.Len())
			}
		}
	}
}

// TestCrossJoin: Join(A, B) equals the cross pairs of the brute-force join
// over the union.
func TestCrossJoin(t *testing.T) {
	cols := testCollections(true)
	for _, col := range cols {
		if len(col.ts) < 6 {
			continue
		}
		mid := len(col.ts) / 2
		a, b := col.ts[:mid], col.ts[mid:]
		for tau := 0; tau <= 3; tau++ {
			got, _ := core.Join(a, b, core.Options{Tau: tau})
			all, _ := baseline.BruteForce(col.ts, baseline.Options{Tau: tau})
			var want []sim.Pair
			for _, p := range all {
				if p.I < mid && p.J >= mid {
					want = append(want, sim.Pair{I: p.I, J: p.J - mid, Dist: p.Dist})
				}
			}
			sim.SortPairs(want)
			if !pairsEqual(want, got) {
				t.Fatalf("%s τ=%d: cross join %v, want %v", col.name, tau, got, want)
			}
		}
	}
}

// TestCustomVerifierInjection: the injected verifier is used for every
// candidate and only candidates.
func TestCustomVerifierInjection(t *testing.T) {
	ts := synth.Generate(synth.Params{
		N: 30, AvgSize: 18, SizeJitter: 0.3, MaxFanout: 4, MaxDepth: 6,
		Labels: 8, DepthBias: 0, Cluster: 3, Decay: 0.05, Seed: 21})
	calls := 0
	v := func(t1, t2 *tree.Tree, tau int) (int, bool) {
		calls++
		return sim.DefaultVerifier(t1, t2, tau)
	}
	pairs, st := core.SelfJoin(ts, core.Options{Tau: 2, Verifier: v})
	if int64(calls) != st.Candidates {
		t.Fatalf("verifier calls %d != candidates %d", calls, st.Candidates)
	}
	oracle, _ := baseline.BruteForce(ts, baseline.Options{Tau: 2})
	if !pairsEqual(pairs, oracle) {
		t.Fatal("custom verifier changed results")
	}
}

// TestPositionModesCandidateOrdering: the position layer can only reduce
// candidates relative to no position filtering. (PositionSafe's
// size-difference-aware window and PositionPaper's rank-based ranges are
// incomparable with each other: either may admit a candidate the other
// prunes.)
func TestPositionModesCandidateOrdering(t *testing.T) {
	ts := synth.Synthetic(120, 5)
	for tau := 1; tau <= 3; tau++ {
		_, safe := core.SelfJoin(ts, core.Options{Tau: tau, Position: core.PositionSafe})
		_, off := core.SelfJoin(ts, core.Options{Tau: tau, Position: core.PositionOff})
		_, paper := core.SelfJoin(ts, core.Options{Tau: tau, Position: core.PositionPaper})
		if safe.Candidates > off.Candidates {
			t.Errorf("τ=%d: safe candidates %d > off %d", tau, safe.Candidates, off.Candidates)
		}
		if paper.Candidates > off.Candidates {
			t.Errorf("τ=%d: paper candidates %d > off %d", tau, paper.Candidates, off.Candidates)
		}
	}
}

// TestLargerSyntheticAgainstOracle runs the full invariant on the paper-shaped
// synthetic workload (slower; trimmed under -short).
func TestLargerSyntheticAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, seed := range []int64{1, 2} {
		ts := synth.Generate(synth.Params{
			N: 90, AvgSize: 40, SizeJitter: 0.3, MaxFanout: 3, MaxDepth: 5,
			Labels: 20, DepthBias: 0, Cluster: 4, Decay: 0.05, Seed: seed})
		for tau := 1; tau <= 4; tau++ {
			want, _ := baseline.BruteForce(ts, baseline.Options{Tau: tau})
			got, _ := core.SelfJoin(ts, core.Options{Tau: tau})
			if !pairsEqual(want, got) {
				t.Fatalf("seed %d τ=%d: %d pairs, oracle %d", seed, tau, len(got), len(want))
			}
		}
	}
}

func ExampleSelfJoin() {
	lt := tree.NewLabelTable()
	ts := []*tree.Tree{
		tree.MustParseBracket("{article{title{Go}}{year{2015}}}", lt),
		tree.MustParseBracket("{article{title{Go!}}{year{2015}}}", lt),
		tree.MustParseBracket("{book{title{SQL}}{year{1999}}}", lt),
	}
	pairs, _ := core.SelfJoin(ts, core.Options{Tau: 1})
	for _, p := range pairs {
		fmt.Printf("trees %d and %d are within distance %d\n", p.I, p.J, p.Dist)
	}
	// Output:
	// trees 0 and 1 are within distance 1
}
