package core_test

import (
	"testing"

	"treejoin/internal/core"
	"treejoin/internal/engine"
	"treejoin/internal/synth"
)

// TestKNNIndexCacheEviction: the per-threshold index cache is bounded — it
// never holds more than its capacity, evicts least-recently-used entries,
// and eviction never changes query results.
func TestKNNIndexCacheEviction(t *testing.T) {
	ts := synth.Synthetic(30, 19)
	knn := core.NewKNNCached(ts, core.Options{Tau: 1}, engine.NewCache(), 2)

	for _, tau := range []int{1, 2, 4, 8} {
		knn.IndexAt(tau)
	}
	if n := knn.CachedIndexes(); n > 2 {
		t.Fatalf("cache holds %d indexes, cap 2", n)
	}
	if ev := knn.Evictions(); ev < 2 {
		t.Fatalf("evictions = %d, want ≥ 2 after 4 distinct thresholds", ev)
	}

	// LRU order: touching 4 then inserting 16 must evict 8, not 4.
	knn.IndexAt(4)
	ix4 := knn.IndexAt(4) // cached: same pointer both times
	if knn.IndexAt(4) != ix4 {
		t.Fatal("repeated IndexAt(4) rebuilt a cached index")
	}
	ev := knn.Evictions()
	knn.IndexAt(16)
	if knn.Evictions() != ev+1 {
		t.Fatalf("inserting past cap evicted %d entries, want 1", knn.Evictions()-ev)
	}
	if knn.IndexAt(4) != ix4 {
		t.Fatal("most-recently-used index 4 was evicted instead of 8")
	}

	// Results are identical with and without eviction pressure.
	unbounded := core.NewKNNCached(ts, core.Options{Tau: 1}, nil, 64)
	for _, q := range ts[:5] {
		got := knn.Nearest(q, 3)
		want := unbounded.Nearest(q, 3)
		if len(got) != len(want) {
			t.Fatalf("nearest: %d matches, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("nearest[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
}
