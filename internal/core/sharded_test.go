package core_test

import (
	"testing"

	"treejoin/internal/core"
	"treejoin/internal/synth"
	"treejoin/internal/tree"
)

// TestShardedMatchesSelfJoin: the fragment-and-replicate decomposition
// returns exactly the sequential join's pairs, for every shard count and
// worker count.
func TestShardedMatchesSelfJoin(t *testing.T) {
	ts := synth.Synthetic(120, 43)
	for _, tau := range []int{1, 3} {
		want, _ := core.SelfJoin(ts, core.Options{Tau: tau})
		for _, shards := range []int{1, 2, 3, 7, 16} {
			for _, workers := range []int{0, 1, 4} {
				got, stats, err := core.ShardedSelfJoin(ts, shards, core.Options{Tau: tau, Workers: workers})
				if err != nil {
					t.Fatalf("τ=%d shards=%d workers=%d: %v", tau, shards, workers, err)
				}
				if len(got) != len(want) {
					t.Fatalf("τ=%d shards=%d workers=%d: %d pairs, want %d",
						tau, shards, workers, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("τ=%d shards=%d: pair %d = %v, want %v",
							tau, shards, i, got[i], want[i])
					}
				}
				if stats.Results != int64(len(want)) {
					t.Fatalf("stats results %d", stats.Results)
				}
			}
		}
	}
}

// TestShardedSizeSkip: shards whose size ranges are further than τ apart
// generate no cross tasks, so the candidate total stays below the all-pairs
// task count's worst case. Verified indirectly: a collection of two widely
// separated size clusters joins with zero cross-cluster candidates.
func TestShardedSizeSkip(t *testing.T) {
	lt := tree.NewLabelTable()
	var ts []*tree.Tree
	// Cluster A: chains of 3; cluster B: chains of 30.
	for i := 0; i < 10; i++ {
		b := tree.NewBuilder(lt)
		n := b.Root("a")
		for j := 0; j < 2; j++ {
			n = b.Child(n, "a")
		}
		ts = append(ts, b.MustBuild())
	}
	for i := 0; i < 10; i++ {
		b := tree.NewBuilder(lt)
		n := b.Root("b")
		for j := 0; j < 29; j++ {
			n = b.Child(n, "b")
		}
		ts = append(ts, b.MustBuild())
	}
	got, _, err := core.ShardedSelfJoin(ts, 2, core.Options{Tau: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := core.SelfJoin(ts, core.Options{Tau: 2})
	if len(got) != len(want) {
		t.Fatalf("%d pairs, want %d", len(got), len(want))
	}
	for _, p := range got {
		if (p.I < 10) != (p.J < 10) {
			t.Fatalf("cross-cluster pair %v", p)
		}
	}
}

// TestShardedEdgeCases: tiny collections, more shards than trees, empty
// input.
func TestShardedEdgeCases(t *testing.T) {
	lt := tree.NewLabelTable()
	if got, _, err := core.ShardedSelfJoin(nil, 4, core.Options{Tau: 1}); err != nil || len(got) != 0 {
		t.Fatalf("empty collection: %v", got)
	}
	a := tree.MustParseBracket("{a{b}}", lt)
	b := tree.MustParseBracket("{a{c}}", lt)
	got, _, err := core.ShardedSelfJoin([]*tree.Tree{a, b}, 8, core.Options{Tau: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].I != 0 || got[0].J != 1 {
		t.Fatalf("two trees: %v", got)
	}
}

// TestShardedDuplicateTrees: repeated identical trees across shard
// boundaries still produce each pair exactly once.
func TestShardedDuplicateTrees(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{a{b}{c}}", lt)
	ts := []*tree.Tree{a, a.Clone(), a.Clone(), a.Clone(), a.Clone()}
	got, _, err := core.ShardedSelfJoin(ts, 3, core.Options{Tau: 0, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := 5 * 4 / 2; len(got) != want {
		t.Fatalf("%d pairs, want %d", len(got), want)
	}
	seen := map[[2]int]bool{}
	for _, p := range got {
		k := [2]int{p.I, p.J}
		if seen[k] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[k] = true
	}
}

// TestShardedInvalidOptions: malformed options must come back as an error —
// never a panic — since this decomposition sits behind network-facing
// callers (a bad request must not crash a server).
func TestShardedInvalidOptions(t *testing.T) {
	ts := synth.Synthetic(10, 7)
	pairs, stats, err := core.ShardedSelfJoin(ts, 2, core.Options{Tau: -3})
	if err == nil {
		t.Fatal("negative threshold: want error, got nil")
	}
	if pairs != nil || stats != nil {
		t.Fatalf("invalid options returned results: %v %v", pairs, stats)
	}
}
