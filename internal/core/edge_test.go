package core_test

import (
	"testing"

	"treejoin/internal/baseline"
	"treejoin/internal/core"
	"treejoin/internal/synth"
	"treejoin/internal/tree"
)

// TestAliasedTrees: the same *Tree object appearing at several collection
// positions must behave like equal trees (the hybrid verifier keys its
// sequence cache by pointer, so aliasing is the adversarial case).
func TestAliasedTrees(t *testing.T) {
	lt := tree.NewLabelTable()
	shared := tree.MustParseBracket("{a{b{c}{d}}{e{f}}}", lt)
	other := tree.MustParseBracket("{a{b{c}{d}}{e{g}}}", lt)
	ts := []*tree.Tree{shared, other, shared, shared}
	for _, opts := range []core.Options{
		{Tau: 0},
		{Tau: 1},
		{Tau: 1, HybridVerify: true},
		{Tau: 1, Workers: 3},
	} {
		got, _ := core.SelfJoin(ts, opts)
		want, _ := baseline.BruteForce(ts, baseline.Options{Tau: opts.Tau})
		if len(got) != len(want) {
			t.Fatalf("τ=%d: %v, oracle %v", opts.Tau, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("τ=%d: %v, oracle %v", opts.Tau, got, want)
			}
		}
	}
}

// TestLargeTauSmallTrees: thresholds larger than every tree force the whole
// collection through the small-tree path; results must still match.
func TestLargeTauSmallTrees(t *testing.T) {
	ts := synth.Generate(synth.Params{
		N: 25, AvgSize: 6, SizeJitter: 0.5, MaxFanout: 3, MaxDepth: 4,
		Labels: 3, DepthBias: 0, Cluster: 1, Decay: 0, Seed: 31})
	for _, tau := range []int{6, 10, 25} {
		got, st := core.SelfJoin(ts, core.Options{Tau: tau})
		want, _ := baseline.BruteForce(ts, baseline.Options{Tau: tau})
		if len(got) != len(want) {
			t.Fatalf("τ=%d: %d pairs, oracle %d", tau, len(got), len(want))
		}
		if st.IndexedSubgraphs != 0 && tau >= 25 {
			// With δ = 51 > every tree size nothing should be indexed.
			t.Fatalf("indexed %d subgraphs with δ > max size", st.IndexedSubgraphs)
		}
	}
}

// TestSingleLabelCollection: one label everywhere removes all label-layer
// selectivity; the join must still be correct (position layer and matching
// carry the filtering).
func TestSingleLabelCollection(t *testing.T) {
	ts := synth.Generate(synth.Params{
		N: 40, AvgSize: 18, SizeJitter: 0.4, MaxFanout: 4, MaxDepth: 8,
		Labels: 1, DepthBias: 0, Cluster: 2, Decay: 0.08, Seed: 37})
	for tau := 0; tau <= 3; tau++ {
		got, _ := core.SelfJoin(ts, core.Options{Tau: tau})
		want, _ := baseline.BruteForce(ts, baseline.Options{Tau: tau})
		if len(got) != len(want) {
			t.Fatalf("τ=%d: %d pairs, oracle %d", tau, len(got), len(want))
		}
	}
}

// TestIdenticalForest: many copies of one tree — quadratic result set, every
// pair at distance zero, exercising dedup under extreme fan-in.
func TestIdenticalForest(t *testing.T) {
	lt := tree.NewLabelTable()
	base := tree.MustParseBracket("{a{b{c}}{d{e}{f}}}", lt)
	ts := make([]*tree.Tree, 24)
	for i := range ts {
		ts[i] = base.Clone()
	}
	pairs, _ := core.SelfJoin(ts, core.Options{Tau: 2})
	want := len(ts) * (len(ts) - 1) / 2
	if len(pairs) != want {
		t.Fatalf("%d pairs, want %d", len(pairs), want)
	}
	for _, p := range pairs {
		if p.Dist != 0 {
			t.Fatalf("nonzero distance between identical trees: %v", p)
		}
	}
}

// TestVerifierFailureInjection: a verifier that rejects everything yields no
// results but full candidate accounting; one that accepts everything yields
// exactly the candidate set (join plumbing does not second-guess the
// verifier).
func TestVerifierFailureInjection(t *testing.T) {
	ts := synth.Synthetic(40, 41)
	rejectAll := func(a, b *tree.Tree, tau int) (int, bool) { return tau + 1, false }
	pairs, st := core.SelfJoin(ts, core.Options{Tau: 2, Verifier: rejectAll})
	if len(pairs) != 0 {
		t.Fatalf("reject-all verifier produced %d pairs", len(pairs))
	}
	if st.Candidates == 0 {
		t.Fatal("no candidates reached the verifier")
	}
	acceptAll := func(a, b *tree.Tree, tau int) (int, bool) { return 0, true }
	pairs, st = core.SelfJoin(ts, core.Options{Tau: 2, Verifier: acceptAll})
	if int64(len(pairs)) != st.Candidates {
		t.Fatalf("accept-all: %d pairs vs %d candidates", len(pairs), st.Candidates)
	}
}
