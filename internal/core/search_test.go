package core_test

import (
	"math/rand"
	"sync"
	"testing"

	"treejoin/internal/core"
	"treejoin/internal/synth"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// TestSearchMatchesBruteForce: Search(q) equals a linear scan with exact TED,
// for queries both from inside and outside the collection, across thresholds.
func TestSearchMatchesBruteForce(t *testing.T) {
	ts := synth.Generate(synth.Params{
		N: 80, AvgSize: 24, SizeJitter: 0.4, MaxFanout: 4, MaxDepth: 8,
		Labels: 10, DepthBias: 0, Cluster: 4, Decay: 0.06, Seed: 17})
	queries := synth.Generate(synth.Params{
		N: 15, AvgSize: 24, SizeJitter: 0.4, MaxFanout: 4, MaxDepth: 8,
		Labels: 10, DepthBias: 0, Cluster: 1, Decay: 0, Seed: 18})
	// Queries must share the collection's label table; rebuild them there.
	lt := ts[0].Labels
	rebuilt := make([]*tree.Tree, 0, len(queries)+5)
	for _, q := range queries {
		rebuilt = append(rebuilt, tree.MustParseBracket(tree.FormatBracket(q), lt))
	}
	rebuilt = append(rebuilt, ts[3], ts[40]) // members of the collection
	rebuilt = append(rebuilt, tree.MustParseBracket("{l0}", lt))

	for tau := 0; tau <= 3; tau++ {
		ix := core.NewIndex(ts, core.Options{Tau: tau})
		for qi, q := range rebuilt {
			got := ix.Search(q)
			var want []core.Match
			for i, c := range ts {
				if d := ted.Distance(c, q); d <= tau {
					want = append(want, core.Match{Pos: i, Dist: d})
				}
			}
			if len(got) != len(want) {
				t.Fatalf("τ=%d q%d: %d matches, want %d (%v vs %v)", tau, qi, len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("τ=%d q%d: match %d = %v, want %v", tau, qi, i, got[i], want[i])
				}
			}
		}
	}
}

// TestHybridSearchMatchesBruteForce: an index built with HybridVerify
// returns the same matches as the exact scan for queries from outside (and
// inside) the collection. Regression test: the hybrid screen used to look
// the query's traversal sequences up in a collection-only map, treat the
// miss as empty sequences, and prune every candidate.
func TestHybridSearchMatchesBruteForce(t *testing.T) {
	ts := synth.Generate(synth.Params{
		N: 50, AvgSize: 20, SizeJitter: 0.4, MaxFanout: 4, MaxDepth: 8,
		Labels: 8, DepthBias: 0, Cluster: 4, Decay: 0.08, Seed: 23})
	lt := ts[0].Labels
	queries := []*tree.Tree{
		tree.MustParseBracket(tree.FormatBracket(ts[7]), lt), // near-member, distinct pointer
		ts[12], // a member itself
		tree.MustParseBracket("{l0{l1}{l2}}", lt),
	}
	for tau := 0; tau <= 2; tau++ {
		ix := core.NewIndex(ts, core.Options{Tau: tau, HybridVerify: true})
		plain := core.NewIndex(ts, core.Options{Tau: tau})
		for qi, q := range queries {
			got, want := ix.Search(q), plain.Search(q)
			if len(got) != len(want) {
				t.Fatalf("τ=%d q%d: hybrid %d matches, plain %d (%v vs %v)", tau, qi, len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("τ=%d q%d: hybrid match %d = %v, want %v", tau, qi, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSearchConcurrent(t *testing.T) {
	ts := synth.Synthetic(60, 19)
	ix := core.NewIndex(ts, core.Options{Tau: 2})
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20; i++ {
				q := ts[rng.Intn(len(ts))]
				ms := ix.Search(q)
				found := false
				for _, m := range ms {
					if ts[m.Pos] == q && m.Dist == 0 {
						found = true
					}
				}
				if !found {
					errs <- "query tree did not match itself"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestSearchTinyTreesAndEmpty(t *testing.T) {
	lt := tree.NewLabelTable()
	ix := core.NewIndex(nil, core.Options{Tau: 2})
	if got := ix.Search(tree.MustParseBracket("{a}", lt)); len(got) != 0 {
		t.Fatalf("empty index returned %v", got)
	}
	ts := []*tree.Tree{
		tree.MustParseBracket("{a}", lt),
		tree.MustParseBracket("{a{b}}", lt),
		tree.MustParseBracket("{x{y{z{w{v{u}}}}}}", lt),
	}
	ix = core.NewIndex(ts, core.Options{Tau: 1})
	got := ix.Search(tree.MustParseBracket("{a{c}}", lt))
	if len(got) != 2 || got[0].Pos != 0 || got[1].Pos != 1 {
		t.Fatalf("search = %v", got)
	}
	if ix.Len() != 3 || ix.Tree(2) != ts[2] {
		t.Fatal("accessors wrong")
	}
}

func TestSearchHybridVerify(t *testing.T) {
	ts := synth.Synthetic(60, 23)
	plain := core.NewIndex(ts, core.Options{Tau: 2})
	hybrid := core.NewIndex(ts, core.Options{Tau: 2, HybridVerify: true})
	for _, q := range ts[:10] {
		a := plain.Search(q)
		b := hybrid.Search(q)
		if len(a) != len(b) {
			t.Fatalf("hybrid search differs: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("hybrid search differs at %d", i)
			}
		}
	}
}
