package core

import (
	"fmt"
	"sort"

	"treejoin/internal/lcrs"
)

// The two-layer subgraph index (§3.4). Subgraphs are first grouped by tree
// size (the inverted lists I_n of Algorithm 1), within a size by a postorder
// position key, and within a position group by the label twig at the
// subgraph root. Probing a node of the current tree touches only the groups
// whose subgraphs could both match at that node and be position-compatible.
//
// # Position keys — corrections to the paper
//
// The paper keys subgraph s_k by its root's postorder identifier p_k and
// argues the identifier shifts by at most ∆ positions under ∆ edit
// operations. Property-testing against the brute-force oracle forced two
// corrections (see DESIGN.md, "Reproduction notes"):
//
//  1. The postorder must be the *general* tree's, not the binary tree's. A
//     single general-tree deletion splices a sibling chain, which rewires
//     binary ancestry and can move whole regions across the binary
//     postorder — the binary position of an untouched subgraph may shift
//     arbitrarily. The general postorder of surviving nodes, by contrast, is
//     preserved verbatim by every node edit operation (delete removes one
//     element of the sequence, insert adds one, rename changes none), so
//     positions shift by at most one per operation. The paper's Figure 7
//     position numbers are general-postorder numbers.
//
//  2. The position must be measured from the *end* of the postorder,
//     r = |T| − p: an edit before an untouched subgraph changes p but not
//     r, and the two trees of a candidate pair may differ in size. Measuring
//     from the end is also what the paper's own |N_k| argument bounds.
//
// With both corrections the sound default (PositionSafe) stores each
// subgraph once, at its exact reverse position r_k, and the probe enumerates
// the window r_k could have moved to. Let the candidate pair's sizes differ
// by d = |probe| − |pattern| and let the mapping use I inserts and D
// deletes; then I − D = d and I + D ≤ τ, so I ≤ ⌊(τ+d)/2⌋ and
// D ≤ ⌊(τ−d)/2⌋. An untouched subgraph whose root maps to probe node N
// satisfies r(N) − r_k ∈ [−D, +I], hence
//
//	r_k ∈ [r(N) − ⌊(τ+d)/2⌋, r(N) + ⌊(τ−d)/2⌋],
//
// a window of τ+1 positions (versus 2τ+1 for the naive ±τ), valid for any
// δ-partitioning.
//
// The paper instead tightens per subgraph rank k, using ∆′(k) = τ − ⌊k/2⌋.
// Its argument assumes an edit operation cannot both invalidate an earlier
// subgraph's match and shift a later subgraph's position, which fails for
// boundary-straddling operations (e.g. deleting a node whose spliced
// children sit in an earlier component). PositionPaper implements the
// formula for benchmarking fidelity; the oracle tests accept its output only
// as a subset of the true result.
type PositionFilter int

const (
	// PositionSafe keys every subgraph by its exact reverse general
	// postorder and probes the size-difference-aware window above: the
	// proven-sound default.
	PositionSafe PositionFilter = iota
	// PositionPaper uses the paper's τ − ⌊k/2⌋ ranges (subgraphs ranked by
	// root postorder). Retained for benchmarking fidelity; can miss results
	// in adversarial corner cases.
	PositionPaper
	// PositionOff disables the position layer entirely (label layer only).
	PositionOff
)

func (m PositionFilter) String() string {
	switch m {
	case PositionSafe:
		return "safe"
	case PositionPaper:
		return "paper"
	case PositionOff:
		return "off"
	default:
		return fmt.Sprintf("PositionFilter(%d)", int(m))
	}
}

// Label twig keys (§3.4, "Label indexing"). The key of a subgraph is the
// label of its root plus one marker per slot: the child's label when the
// child is in-component, slotBridge when the slot is a bridging edge, and
// slotEmpty when the slot is empty. (The paper folds bridge and empty into
// one ε marker; distinguishing them is a strict refinement — an empty slot
// can only match an empty slot — that preserves the probe-key count.)
const (
	slotBridge int32 = -1
	slotEmpty  int32 = -2
)

type twig struct{ root, left, right int32 }

// entry identifies one indexed subgraph: the owning tree (collection index)
// and the component number within that tree's partition.
type entry struct {
	tree int32
	comp int32
}

// group is the second index layer: twig key -> subgraphs.
type group map[twig][]entry

// sizeIndex is one inverted list I_n: reverse-postorder position -> label
// groups. Positions are bounded by the tree size, so a slice replaces the
// map on the hot path.
type sizeIndex struct {
	byPos []group
}

func (si *sizeIndex) atOrCreate(pos int32) group {
	for int(pos) >= len(si.byPos) {
		si.byPos = append(si.byPos, nil)
	}
	if si.byPos[pos] == nil {
		si.byPos[pos] = make(group)
	}
	return si.byPos[pos]
}

// invIndex is the full on-the-fly index of Algorithm 1, one inverted list per
// tree size.
type invIndex struct {
	tau    int
	mode   PositionFilter
	bySize map[int]*sizeIndex
}

func newInvIndex(tau int, mode PositionFilter) *invIndex {
	return &invIndex{tau: tau, mode: mode, bySize: make(map[int]*sizeIndex)}
}

// subgraphTwig computes the label twig of component c's root.
func subgraphTwig(p *Partition, c int32) twig {
	b := p.Bin
	root := p.Roots[c]
	tw := twig{root: b.Label(root)}
	tw.left = slotKey(p, c, b.Left(root))
	tw.right = slotKey(p, c, b.Right(root))
	return tw
}

func slotKey(p *Partition, c int32, child int32) int32 {
	switch {
	case child == lcrs.None:
		return slotEmpty
	case p.Comp[child] != c:
		return slotBridge
	default:
		return p.Bin.Label(child)
	}
}

// postorderRanks returns, for each component, its 1-based rank k when the
// components are ordered by the general postorder of their roots (the
// s_1..s_δ numbering the paper's ∆′ formula refers to).
func postorderRanks(p *Partition) []int {
	order := make([]int, p.Delta)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return p.Bin.GenRank[p.Roots[order[a]]] < p.Bin.GenRank[p.Roots[order[b]]]
	})
	ranks := make([]int, p.Delta)
	for k, c := range order {
		ranks[c] = k + 1
	}
	return ranks
}

// insert adds every subgraph of p (a partition of tree treeIdx) to the index.
// It returns the number of (position group × subgraph) entries created, for
// statistics.
func (ix *invIndex) insert(treeIdx int, p *Partition) int64 {
	size := p.Bin.Size()
	si := ix.bySize[size]
	if si == nil {
		si = &sizeIndex{}
		ix.bySize[size] = si
	}
	var ranks []int
	if ix.mode == PositionPaper {
		ranks = postorderRanks(p)
	}
	var added int64
	for c := 0; c < p.Delta; c++ {
		e := entry{tree: int32(treeIdx), comp: int32(c)}
		tw := subgraphTwig(p, int32(c))
		switch ix.mode {
		case PositionOff:
			g := si.atOrCreate(0)
			g[tw] = append(g[tw], e)
			added++
		case PositionPaper:
			// The paper stores ranges around r_k and probes a point.
			rk := int32(size) - 1 - p.Bin.GenRank[p.Roots[c]]
			slack := int32(ix.tau - ranks[c]/2)
			lo := rk - slack
			if lo < 0 {
				lo = 0
			}
			for v := lo; v <= rk+slack; v++ {
				g := si.atOrCreate(v)
				g[tw] = append(g[tw], e)
				added++
			}
		default: // PositionSafe: store the exact position, probe a window.
			rk := int32(size) - 1 - p.Bin.GenRank[p.Roots[c]]
			g := si.atOrCreate(rk)
			g[tw] = append(g[tw], e)
			added++
		}
	}
	return added
}

// probeKeys materialises the ≤4 twig keys compatible with probe node n: each
// present child may match either a same-label in-component child or a
// bridging slot; an absent child matches only an empty slot.
func probeKeys(b *lcrs.Bin, n int32, keys *[4]twig) int {
	var lopts, ropts [2]int32
	nl, nr := 1, 1
	if l := b.Left(n); l != lcrs.None {
		lopts[0], lopts[1] = b.Label(l), slotBridge
		nl = 2
	} else {
		lopts[0] = slotEmpty
	}
	if r := b.Right(n); r != lcrs.None {
		ropts[0], ropts[1] = b.Label(r), slotBridge
		nr = 2
	} else {
		ropts[0] = slotEmpty
	}
	lab := b.Label(n)
	k := 0
	for i := 0; i < nl; i++ {
		for j := 0; j < nr; j++ {
			keys[k] = twig{root: lab, left: lopts[i], right: ropts[j]}
			k++
		}
	}
	return k
}

// probe visits the index entries that are position- and twig-compatible with
// node n of probe tree b, for every indexed tree size in [minSize, maxSize].
// It reports the number of entries visited.
func (ix *invIndex) probe(b *lcrs.Bin, n int32, minSize, maxSize int, visit func(entry)) int64 {
	var keys [4]twig
	nk := probeKeys(b, n, &keys)
	r := int32(b.Size()) - 1 - b.GenRank[n]
	var visited int64
	for size := minSize; size <= maxSize; size++ {
		si := ix.bySize[size]
		if si == nil {
			continue
		}
		var lo, hi int32
		switch ix.mode {
		case PositionOff:
			lo, hi = 0, 0
		case PositionPaper:
			lo, hi = r, r // ranges live on the store side
		default: // PositionSafe: size-difference-aware window around r.
			d := b.Size() - size // probe minus pattern size
			lo = r - int32((ix.tau+d)/2)
			hi = r + int32((ix.tau-d)/2)
		}
		if lo < 0 {
			lo = 0
		}
		if m := int32(len(si.byPos)) - 1; hi > m {
			hi = m
		}
		for pos := lo; pos <= hi; pos++ {
			g := si.byPos[pos]
			if g == nil {
				continue
			}
			for k := 0; k < nk; k++ {
				for _, e := range g[keys[k]] {
					visited++
					visit(e)
				}
			}
		}
	}
	return visited
}
