package core

import (
	"treejoin/internal/lcrs"
)

// Subgraph matching (§3.2): a component (subgraph) s of a partitioned binary
// tree matches at node N of a probe binary tree iff the component's node
// structure appears at the top of the binary subtree rooted at N:
//
//   - labels agree node by node;
//   - a slot (left/right pointer) holding an in-component child must hold a
//     child with the same recursive structure in the probe;
//   - a slot holding a bridging edge (child in another component) must hold
//     some child in the probe — the structure below it is irrelevant;
//   - an empty slot must be empty in the probe.
//
// Matching deliberately ignores the category of the component root's incoming
// edge. The paper's worked example compares it, but doing so lets a single
// deletion touch three subgraphs (the deleted node's component, the component
// of the promoted child whose incoming category changes, and the component of
// the node whose slot is rewired), which breaks the ≤2-subgraphs accounting
// behind Lemma 1 and hence the δ = 2τ+1 guarantee of Lemma 2. With
// slot-occupancy matching every edit operation invalidates at most two
// components' matches, so the filter is safe; see DESIGN.md.

// matchFrame pairs a pattern node with a probe node during the parallel walk.
type matchFrame struct{ pat, prb int32 }

// matchScratch holds reusable state for Matches, avoiding per-call
// allocation. The zero value is ready to use.
type matchScratch struct {
	stack []matchFrame
}

// matches reports whether component comp of partition p occurs at node
// probeNode of probe (in the sense above).
func matches(p *Partition, comp int32, probe *lcrs.Bin, probeNode int32, sc *matchScratch) bool {
	pat := p.Bin
	stack := sc.stack[:0]
	stack = append(stack, matchFrame{p.Roots[comp], probeNode})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if pat.Label(f.pat) != probe.Label(f.prb) {
			sc.stack = stack
			return false
		}
		pl, ql := pat.Left(f.pat), probe.Left(f.prb)
		if !slotOK(p, comp, pl, ql, &stack) {
			sc.stack = stack
			return false
		}
		pr, qr := pat.Right(f.pat), probe.Right(f.prb)
		if !slotOK(p, comp, pr, qr, &stack) {
			sc.stack = stack
			return false
		}
	}
	sc.stack = stack
	return true
}

// slotOK applies the slot rules for one (pattern child, probe child) pair and
// schedules the recursive comparison for in-component children.
func slotOK(p *Partition, comp int32, pc, qc int32, stack *[]matchFrame) bool {
	switch {
	case pc == lcrs.None: // empty slot: probe must be empty too
		return qc == lcrs.None
	case p.Comp[pc] != comp: // bridging edge: probe must have some child
		return qc != lcrs.None
	default: // in-component child: recurse
		if qc == lcrs.None {
			return false
		}
		*stack = append(*stack, matchFrame{pc, qc})
		return true
	}
}

// Matches is the exported form of the subgraph containment test, used by
// tests and by downstream tooling; join loops use the scratch-buffer variant.
func Matches(p *Partition, comp int32, probe *lcrs.Bin, probeNode int32) bool {
	var sc matchScratch
	return matches(p, comp, probe, probeNode, &sc)
}

// MatchesAnywhere reports whether component comp of p occurs at any node of
// probe. This is the containment test of Lemma 2 in its brute-force form; the
// two-layer index exists to avoid calling it for every (subgraph, node) pair.
func MatchesAnywhere(p *Partition, comp int32, probe *lcrs.Bin) bool {
	var sc matchScratch
	for n := range probe.Tree.Nodes {
		if matches(p, comp, probe, int32(n), &sc) {
			return true
		}
	}
	return false
}
