package core_test

import (
	"math/rand"
	"sync"
	"testing"

	"treejoin/internal/core"
	"treejoin/internal/sim"
	"treejoin/internal/synth"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// topkOracle computes the true k closest pairs by exhaustive TED.
func topkOracle(ts []*tree.Tree, k int) []sim.Pair {
	var all []sim.Pair
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			all = append(all, sim.Pair{I: i, J: j, Dist: ted.Distance(ts[i], ts[j])})
		}
	}
	// Selection sort by (Dist, I, J) — plenty for test sizes.
	for i := 0; i < len(all) && i < k; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			a, b := all[j], all[best]
			if a.Dist != b.Dist {
				if a.Dist < b.Dist {
					best = j
				}
				continue
			}
			if a.I != b.I {
				if a.I < b.I {
					best = j
				}
				continue
			}
			if a.J < b.J {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestTopKMatchesOracle(t *testing.T) {
	ts := synth.Synthetic(40, 23)
	for _, k := range []int{1, 3, 10, 25} {
		got := core.TopK(ts, k, core.Options{})
		want := topkOracle(ts, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d pairs, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d: pair %d = %v, want %v", k, i, got[i], want[i])
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	ts := synth.Synthetic(12, 29)
	if got := core.TopK(ts, 0, core.Options{}); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got := core.TopK(ts[:1], 5, core.Options{}); got != nil {
		t.Fatalf("single tree returned %v", got)
	}
	if got := core.TopK(nil, 5, core.Options{}); got != nil {
		t.Fatalf("empty collection returned %v", got)
	}
	// k above the pair count returns every pair, sorted by distance.
	all := len(ts) * (len(ts) - 1) / 2
	got := core.TopK(ts, all+100, core.Options{})
	if len(got) != all {
		t.Fatalf("k beyond pair count: %d pairs, want %d", len(got), all)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatalf("unsorted distances at %d", i)
		}
	}
}

// TestTopKIdenticalTrees: duplicates give zero-distance pairs that must rank
// first.
func TestTopKIdenticalTrees(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{a{b}{c{d}}}", lt)
	ts := []*tree.Tree{a, a.Clone(), tree.MustParseBracket("{x{y}}", lt), a.Clone()}
	got := core.TopK(ts, 3, core.Options{})
	if len(got) != 3 {
		t.Fatalf("got %d pairs", len(got))
	}
	for _, p := range got {
		if p.Dist != 0 {
			t.Fatalf("expected the three duplicate pairs first, got %v", got)
		}
	}
}

func TestKNNMatchesOracle(t *testing.T) {
	ts := synth.Synthetic(40, 31)
	knn := core.NewKNN(ts, core.Options{})
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 5; trial++ {
		q := ts[rng.Intn(len(ts))]
		for _, k := range []int{1, 4, 12} {
			got := knn.Nearest(q, k)
			// Oracle: all distances, selection of k smallest by (Dist, Pos).
			type cand struct{ pos, dist int }
			var all []cand
			for i, t2 := range ts {
				all = append(all, cand{i, ted.Distance(q, t2)})
			}
			for i := 0; i < k; i++ {
				best := i
				for j := i + 1; j < len(all); j++ {
					if all[j].dist < all[best].dist ||
						(all[j].dist == all[best].dist && all[j].pos < all[best].pos) {
						best = j
					}
				}
				all[i], all[best] = all[best], all[i]
			}
			if len(got) != k {
				t.Fatalf("k=%d: got %d matches", k, len(got))
			}
			for i := 0; i < k; i++ {
				if got[i].Pos != all[i].pos || got[i].Dist != all[i].dist {
					t.Fatalf("k=%d: match %d = %+v, want pos=%d dist=%d",
						k, i, got[i], all[i].pos, all[i].dist)
				}
			}
		}
	}
}

func TestKNNForeignQuery(t *testing.T) {
	lt := tree.NewLabelTable()
	ts := []*tree.Tree{
		tree.MustParseBracket("{a{b}{c}}", lt),
		tree.MustParseBracket("{a{b}{c}{d}}", lt),
		tree.MustParseBracket("{x{y{z{w}}}}", lt),
	}
	knn := core.NewKNN(ts, core.Options{})
	q := tree.MustParseBracket("{a{b}{c}{d}{e}}", lt)
	got := knn.Nearest(q, 2)
	if len(got) != 2 {
		t.Fatalf("got %d matches", len(got))
	}
	if got[0].Pos != 1 || got[0].Dist != 1 {
		t.Fatalf("nearest = %+v, want pos=1 dist=1", got[0])
	}
	if got[1].Pos != 0 || got[1].Dist != 2 {
		t.Fatalf("second = %+v, want pos=0 dist=2", got[1])
	}
}

func TestKNNConcurrent(t *testing.T) {
	ts := synth.Synthetic(30, 41)
	knn := core.NewKNN(ts, core.Options{})
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := ts[w%len(ts)]
			ms := knn.Nearest(q, 3)
			if len(ms) != 3 {
				errs <- "short result"
				return
			}
			if ms[0].Dist != 0 {
				errs <- "self not nearest"
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestKNNEdgeCases(t *testing.T) {
	lt := tree.NewLabelTable()
	q := tree.MustParseBracket("{a}", lt)
	empty := core.NewKNN(nil, core.Options{})
	if got := empty.Nearest(q, 3); got != nil {
		t.Fatalf("empty collection returned %v", got)
	}
	one := core.NewKNN([]*tree.Tree{tree.MustParseBracket("{b{c}}", lt)}, core.Options{})
	got := one.Nearest(q, 5)
	if len(got) != 1 || got[0].Pos != 0 {
		t.Fatalf("singleton collection returned %v", got)
	}
	if got[0].Dist != 2 {
		t.Fatalf("dist = %d, want 2", got[0].Dist)
	}
	if got := one.Nearest(q, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}
