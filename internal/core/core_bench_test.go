package core

import (
	"fmt"
	"testing"

	"treejoin/internal/lcrs"
	"treejoin/internal/synth"
)

// Micro-benchmarks of PartSJ's building blocks: the O(n log(n/δ)) MaxMinSize
// search, partition extraction, and the subgraph containment test.

func benchBin(size int) *lcrs.Bin {
	ts := synth.Generate(synth.Params{
		N: 1, AvgSize: size, MaxFanout: 3, MaxDepth: 8, Labels: 20,
		DepthBias: 0, Cluster: 1, Seed: 11})
	return lcrs.Build(ts[0])
}

func BenchmarkMaxMinSize(b *testing.B) {
	for _, size := range []int{64, 256, 1024} {
		bin := benchBin(size)
		for _, tau := range []int{1, 5} {
			b.Run(fmt.Sprintf("n=%d/tau=%d", size, tau), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					MaxMinSize(bin, 2*tau+1)
				}
			})
		}
	}
}

func BenchmarkComputePartition(b *testing.B) {
	for _, size := range []int{64, 256, 1024} {
		bin := benchBin(size)
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Compute(bin, 7)
			}
		})
	}
}

func BenchmarkSubgraphMatch(b *testing.B) {
	bin := benchBin(256)
	p := Compute(bin, 7)
	var sc matchScratch
	b.Run("self-hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for c := 0; c < p.Delta; c++ {
				matches(p, int32(c), bin, p.Roots[c], &sc)
			}
		}
	})
	other := benchBin(240)
	b.Run("cross", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for c := 0; c < p.Delta; c++ {
				MatchesAnywhere(p, int32(c), other)
			}
		}
	})
}

func BenchmarkIncrementalAdd(b *testing.B) {
	ts := synth.Synthetic(512, 3)
	b.ResetTimer()
	inc := NewIncremental(Options{Tau: 2})
	for i := 0; i < b.N; i++ {
		inc.Add(ts[i%len(ts)])
	}
}
