package core

import (
	"sync"

	"treejoin/internal/engine"
	"treejoin/internal/sim"
	"treejoin/internal/strdist"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// Hybrid verification (an extension beyond the paper): before running the
// bounded TED on a candidate pair, screen it with the τ-banded string edit
// distance of the trees' preorder and postorder label sequences — both TED
// lower bounds (the STR baseline's filter), each costing only O(τ·n). The
// subgraph filter's surviving false positives are typically pairs just past
// the threshold (near-duplicates with a few extra edits), exactly the pairs
// a tight cheap lower bound rejects. Results are unchanged; only
// verification time drops. Enable with Options.HybridVerify.

// seqKey names the artifact-cache entry holding a tree's traversal label
// sequences for the hybrid screen.
const seqKey = "hybrid/traversals"

// travSeqs is the per-tree hybrid signature: both traversal label sequences.
type travSeqs struct {
	pre, post []int32
}

// seqCache holds the traversal sequences for a fixed tree collection, drawn
// from (and stored back into) an artifact cache when one is supplied. It is
// immutable after newSeqCache and safe for concurrent verifiers. Trees
// outside the collection (search queries) get their sequences and TED
// preparations computed per call and never stored, so query traffic cannot
// pin corpus cache memory.
type seqCache struct {
	cache *engine.Cache
	seqs  map[*tree.Tree]travSeqs
	tc    *ted.Counters
}

func newSeqCache(ts []*tree.Tree, cache *engine.Cache, tc *ted.Counters) *seqCache {
	c := &seqCache{cache: cache, seqs: make(map[*tree.Tree]travSeqs, len(ts)), tc: tc}
	for _, t := range ts {
		c.add(t)
	}
	return c
}

// add caches the traversal sequences of t. Not safe concurrently with
// verifier calls; the joins only add between verification batches.
func (c *seqCache) add(t *tree.Tree) {
	if _, ok := c.seqs[t]; ok {
		return
	}
	if v, ok := c.cache.Lookup(seqKey, t); ok {
		c.seqs[t] = v.(travSeqs)
		return
	}
	s := computeSeqs(t)
	c.cache.Store(seqKey, t, s)
	c.seqs[t] = s
}

func computeSeqs(t *tree.Tree) travSeqs {
	return travSeqs{
		pre:  tree.LabelSeq(t, tree.Preorder(t)),
		post: tree.LabelSeq(t, tree.Postorder(t)),
	}
}

// seqsOf returns t's sequences: collection trees from the prebuilt map,
// anything else computed on the fly.
func (c *seqCache) seqsOf(t *tree.Tree) travSeqs {
	if s, ok := c.seqs[t]; ok {
		return s
	}
	return computeSeqs(t)
}

// prepOf returns t's TED preparation: collection trees through the artifact
// cache, anything else computed locally.
func (c *seqCache) prepOf(t *tree.Tree) *ted.Prep {
	if _, ok := c.seqs[t]; ok {
		return engine.PrepFor(c.cache, t)
	}
	return ted.NewPrep(t)
}

// verifier returns a sim.Verifier that applies the string lower bounds and
// falls back to the τ-banded bounded TED over cached preparations.
func (c *seqCache) verifier() sim.Verifier {
	return func(t1, t2 *tree.Tree, tau int) (int, bool) {
		s1, s2 := c.seqsOf(t1), c.seqsOf(t2)
		if strdist.Bounded(s1.pre, s2.pre, tau) > tau {
			return tau + 1, false
		}
		if strdist.Bounded(s1.post, s2.post, tau) > tau {
			return tau + 1, false
		}
		return ted.DistanceBoundedPrep(c.prepOf(t1), c.prepOf(t2), tau, c.tc)
	}
}

// searchVerifier is verifier pre-bound to one query tree: the query's
// sequences and TED preparation are computed once per call instead of once
// per candidate (the query is never in the collection maps), and still never
// stored, so query traffic cannot pin corpus memory.
func (c *seqCache) searchVerifier(q *tree.Tree) sim.Verifier {
	qs := c.seqsOf(q)
	var qpOnce sync.Once
	var qp *ted.Prep
	inner := c.verifier()
	return func(t1, t2 *tree.Tree, tau int) (int, bool) {
		if t1 != q && t2 != q {
			return inner(t1, t2, tau)
		}
		if t2 == q {
			// Canonical orientation: collection tree second.
			t1, t2 = t2, t1
		}
		s2 := c.seqsOf(t2)
		if strdist.Bounded(qs.pre, s2.pre, tau) > tau {
			return tau + 1, false
		}
		if strdist.Bounded(qs.post, s2.post, tau) > tau {
			return tau + 1, false
		}
		qpOnce.Do(func() { qp = ted.NewPrep(q) })
		return ted.DistanceBoundedPrep(qp, c.prepOf(t2), tau, c.tc)
	}
}
