package core

import (
	"treejoin/internal/sim"
	"treejoin/internal/strdist"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// Hybrid verification (an extension beyond the paper): before running the
// cubic TED on a candidate pair, screen it with the τ-banded string edit
// distance of the trees' preorder and postorder label sequences — both TED
// lower bounds (the STR baseline's filter), each costing only O(τ·n). The
// subgraph filter's surviving false positives are typically pairs just past
// the threshold (near-duplicates with a few extra edits), exactly the pairs
// a tight cheap lower bound rejects. Results are unchanged; only verification
// time drops. Enable with Options.HybridVerify.

// seqCache holds the traversal sequences for a fixed tree collection. It is
// immutable after newSeqCache and safe for concurrent verifiers.
type seqCache struct {
	pre  map[*tree.Tree][]int32
	post map[*tree.Tree][]int32
}

func newSeqCache(ts []*tree.Tree) *seqCache {
	c := &seqCache{
		pre:  make(map[*tree.Tree][]int32, len(ts)),
		post: make(map[*tree.Tree][]int32, len(ts)),
	}
	for _, t := range ts {
		c.add(t)
	}
	return c
}

// add caches the traversal sequences of t. Not safe concurrently with
// verifier calls; the joins only add between verification batches.
func (c *seqCache) add(t *tree.Tree) {
	if _, ok := c.pre[t]; ok {
		return
	}
	c.pre[t] = tree.LabelSeq(t, tree.Preorder(t))
	c.post[t] = tree.LabelSeq(t, tree.Postorder(t))
}

// verifier returns a sim.Verifier that applies the string lower bounds and
// falls back to the exact bounded TED.
func (c *seqCache) verifier() sim.Verifier {
	return func(t1, t2 *tree.Tree, tau int) (int, bool) {
		if strdist.Bounded(c.pre[t1], c.pre[t2], tau) > tau {
			return tau + 1, false
		}
		if strdist.Bounded(c.post[t1], c.post[t2], tau) > tau {
			return tau + 1, false
		}
		return ted.DistanceBounded(t1, t2, tau)
	}
}
