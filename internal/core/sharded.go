package core

import (
	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// ShardedSelfJoin reports every pair of trees in ts with TED ≤ opts.Tau,
// exactly like SelfJoin, by asking the engine to decompose the join into the
// fragment-and-replicate shard plan (see the partSJSource documentation in
// source.go) executed on opts.Workers goroutines. shards ≤ 1 falls back to
// the sequential SelfJoin. The result set is identical; the cost is that
// each cross task rebuilds its own index, so the total filtering work
// exceeds the sequential join's — the trade the paper's §6 future work
// anticipates (parallelism versus shared state).
func ShardedSelfJoin(ts []*tree.Tree, shards int, opts Options) ([]sim.Pair, *sim.Stats) {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	if shards > len(ts) {
		shards = len(ts)
	}
	if shards <= 1 {
		return SelfJoin(ts, opts)
	}
	return opts.Job(shards, nil).SelfJoin(ts)
}
