package core

import (
	"context"

	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// ShardedSelfJoin reports every pair of trees in ts with TED ≤ opts.Tau,
// exactly like SelfJoin, by asking the engine to decompose the join into the
// fragment-and-replicate shard plan (see the partSJSource documentation in
// source.go) executed on opts.Workers goroutines. shards ≤ 1 falls back to
// the sequential SelfJoin. The result set is identical; the cost is that
// each cross task rebuilds its own index, so the total filtering work
// exceeds the sequential join's — the trade the paper's §6 future work
// anticipates (parallelism versus shared state).
//
// Invalid options come back as an error (never a panic): this is the
// decomposition network-facing callers build on, so a malformed request must
// degrade to a rejected query, not a crashed process.
func ShardedSelfJoin(ts []*tree.Tree, shards int, opts Options) ([]sim.Pair, *sim.Stats, error) {
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if shards > len(ts) {
		shards = len(ts)
	}
	if shards <= 1 {
		pairs, stats := SelfJoin(ts, opts)
		return pairs, stats, nil
	}
	var pairs []sim.Pair
	stats, err := opts.Job(shards, nil).StreamSelf(context.Background(), ts, func(p sim.Pair) bool {
		pairs = append(pairs, p)
		return true
	})
	if err != nil {
		return pairs, stats, err
	}
	sim.SortPairs(pairs)
	return pairs, stats, nil
}
