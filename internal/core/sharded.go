package core

import (
	"sync"

	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// Sharded execution (the paper's §6 future work: "the adaption of our
// techniques to parallel and distributed settings (e.g., multi-core
// architectures, MapReduce)"). The collection is cut into S contiguous
// shards of the size-sorted order; every result pair is either internal to
// one shard or crosses exactly one shard pair, so the self-join decomposes
// into S independent intra-shard self-joins plus S·(S−1)/2 independent
// cross joins — the classic fragment-and-replicate plan. Each task runs the
// ordinary PartSJ driver and the tasks share nothing, which is exactly the
// property a distributed deployment needs: a MapReduce round would ship one
// task per reducer. Here the tasks run on a local worker pool.
//
// Sharding the *sorted* order keeps the size filter effective: a cross join
// of two shards whose size ranges are further than τ apart is skipped
// entirely (its size windows cannot overlap), so for large collections most
// of the S² tasks vanish.
//
// The result set is identical to SelfJoin's; the cost is that each cross
// task rebuilds its own index, so the total filtering work exceeds the
// sequential join's — the trade the paper's future work anticipates
// (parallelism versus shared state).

// ShardedSelfJoin reports every pair of trees in ts with TED ≤ opts.Tau,
// exactly like SelfJoin, by decomposing the join into shard tasks executed
// on opts.Workers goroutines (minimum 1). shards ≤ 1 falls back to SelfJoin.
func ShardedSelfJoin(ts []*tree.Tree, shards int, opts Options) ([]sim.Pair, *sim.Stats) {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	if shards > len(ts) {
		shards = len(ts)
	}
	if shards <= 1 {
		return SelfJoin(ts, opts)
	}
	// Cut the size-sorted order into contiguous shards; remember each tree's
	// position so results can be mapped back to collection indices.
	order := sim.SizeOrder(ts)
	bounds := make([]int, shards+1)
	for s := 0; s <= shards; s++ {
		bounds[s] = s * len(ts) / shards
	}
	shard := func(s int) []int { return order[bounds[s]:bounds[s+1]] }
	// Size range of each shard, for the inter-shard size filter.
	loSize := make([]int, shards)
	hiSize := make([]int, shards)
	for s := 0; s < shards; s++ {
		ids := shard(s)
		loSize[s] = ts[ids[0]].Size()
		hiSize[s] = ts[ids[len(ids)-1]].Size()
	}

	type task struct{ a, b int } // b == a: intra-shard
	var tasks []task
	for a := 0; a < shards; a++ {
		tasks = append(tasks, task{a, a})
		for b := a + 1; b < shards; b++ {
			if loSize[b]-hiSize[a] <= opts.Tau { // windows can overlap
				tasks = append(tasks, task{a, b})
			}
		}
	}

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	// Each task runs single-threaded; the parallelism is across tasks.
	taskOpts := opts
	taskOpts.Workers = 0

	results := make([][]sim.Pair, len(tasks))
	stats := make([]*sim.Stats, len(tasks))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(tasks) {
					return
				}
				tk := tasks[i]
				if tk.a == tk.b {
					ids := shard(tk.a)
					sub := make([]*tree.Tree, len(ids))
					for k, id := range ids {
						sub[k] = ts[id]
					}
					pairs, st := SelfJoin(sub, taskOpts)
					for k := range pairs {
						pairs[k].I = ids[pairs[k].I]
						pairs[k].J = ids[pairs[k].J]
						if pairs[k].I > pairs[k].J {
							pairs[k].I, pairs[k].J = pairs[k].J, pairs[k].I
						}
					}
					results[i], stats[i] = pairs, st
				} else {
					aIDs, bIDs := shard(tk.a), shard(tk.b)
					as := make([]*tree.Tree, len(aIDs))
					for k, id := range aIDs {
						as[k] = ts[id]
					}
					bs := make([]*tree.Tree, len(bIDs))
					for k, id := range bIDs {
						bs[k] = ts[id]
					}
					pairs, st := Join(as, bs, taskOpts)
					for k := range pairs {
						pairs[k].I = aIDs[pairs[k].I]
						pairs[k].J = bIDs[pairs[k].J]
						if pairs[k].I > pairs[k].J {
							pairs[k].I, pairs[k].J = pairs[k].J, pairs[k].I
						}
					}
					results[i], stats[i] = pairs, st
				}
			}
		}()
	}
	wg.Wait()

	var out []sim.Pair
	total := &sim.Stats{Trees: len(ts)}
	for i := range results {
		out = append(out, results[i]...)
		st := stats[i]
		total.Candidates += st.Candidates
		total.CandTime += st.CandTime
		total.VerifyTime += st.VerifyTime
		total.PartitionTime += st.PartitionTime
		total.IndexedSubgraphs += st.IndexedSubgraphs
		total.SubgraphProbes += st.SubgraphProbes
		total.MatchTests += st.MatchTests
		total.MatchHits += st.MatchHits
		total.SmallTreeFallback += st.SmallTreeFallback
	}
	sim.SortPairs(out)
	// Equal-size trees may straddle a shard boundary; contiguous cuts of the
	// sorted order still cover every pair exactly once, but defend against
	// duplicates anyway in case a caller passes aliased trees.
	out = dedupPairs(out)
	total.Results = int64(len(out))
	return out, total
}

// dedupPairs removes adjacent duplicates from a sorted pair list.
func dedupPairs(ps []sim.Pair) []sim.Pair {
	if len(ps) < 2 {
		return ps
	}
	keep := ps[:1]
	for _, p := range ps[1:] {
		last := keep[len(keep)-1]
		if p.I == last.I && p.J == last.J {
			continue
		}
		keep = append(keep, p)
	}
	return keep
}
