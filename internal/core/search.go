package core

import (
	"treejoin/internal/lcrs"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// Index is a static similarity-search index over a fixed collection: build
// once, then Search reports every collection tree within TED τ of a query.
// It is the similarity-search counterpart of the join ([13, 16, 27] study
// this query; PartSJ's subgraph index answers it directly): every collection
// tree is δ-partitioned at build time, and a query is probed against the
// two-layer index exactly like the current tree in Algorithm 1 — Lemma 2
// applies with the collection tree as the partitioned side, so no size
// relationship between query and data is required.
//
// Search is safe for concurrent use: probing state is per-call, and the
// index is immutable after NewIndex.
type Index struct {
	opts   Options
	ts     []*tree.Tree
	parts  []*Partition
	ix     *invIndex
	smalls []int
}

// Match is one search hit: collection position and exact distance.
type Match struct {
	Pos  int
	Dist int
}

// NewIndex partitions and indexes every tree of ts for searches with
// threshold opts.Tau. RandomPartition and Workers are ignored; the verifier
// is used by Search.
func NewIndex(ts []*tree.Tree, opts Options) *Index {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	if opts.HybridVerify && opts.Verifier == nil {
		opts.Verifier = newSeqCache(ts).verifier()
	}
	ix := &Index{
		opts:  opts,
		ts:    ts,
		parts: make([]*Partition, len(ts)),
		ix:    newInvIndex(opts.Tau, opts.Position),
	}
	delta := opts.delta()
	for i, t := range ts {
		if t.Size() >= delta {
			p := Compute(lcrs.Build(t), delta)
			ix.parts[i] = p
			ix.ix.insert(i, p)
		} else {
			ix.smalls = append(ix.smalls, i)
		}
	}
	return ix
}

// Len returns the collection size.
func (x *Index) Len() int { return len(x.ts) }

// Tree returns the i-th collection tree.
func (x *Index) Tree(i int) *tree.Tree { return x.ts[i] }

// Search returns the collection trees within TED τ of q, in ascending
// collection order.
func (x *Index) Search(q *tree.Tree) []Match {
	verify := x.opts.Verifier
	if verify == nil {
		verify = func(t1, t2 *tree.Tree, tau int) (int, bool) {
			return ted.DistanceBounded(t1, t2, tau)
		}
	}
	b := lcrs.Build(q)
	sz := q.Size()
	tau := x.opts.Tau
	seen := make(map[int32]bool)
	var cands []int
	for _, i := range x.smalls {
		d := x.ts[i].Size() - sz
		if d < 0 {
			d = -d
		}
		if d <= tau {
			cands = append(cands, i)
			seen[int32(i)] = true
		}
	}
	minSize := sz - tau
	if minSize < 1 {
		minSize = 1
	}
	var sc matchScratch
	for _, n := range b.Order {
		x.ix.probe(b, n, minSize, sz+tau, func(e entry) {
			if seen[e.tree] {
				return
			}
			if matches(x.parts[e.tree], e.comp, b, n, &sc) {
				seen[e.tree] = true
				cands = append(cands, int(e.tree))
			}
		})
	}
	var out []Match
	for _, i := range cands {
		if d, ok := verify(x.ts[i], q, tau); ok {
			out = append(out, Match{Pos: i, Dist: d})
		}
	}
	sortMatches(out)
	return out
}

func sortMatches(ms []Match) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Pos < ms[j-1].Pos; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}
