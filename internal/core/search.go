package core

import (
	"context"

	"treejoin/internal/engine"
	"treejoin/internal/lcrs"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// Index is a static similarity-search index over a fixed collection: build
// once, then Search reports every collection tree within TED τ of a query.
// It is the similarity-search counterpart of the join ([13, 16, 27] study
// this query; PartSJ's subgraph index answers it directly): every collection
// tree is δ-partitioned at build time, and a query is probed against the
// two-layer index exactly like the current tree in Algorithm 1 — Lemma 2
// applies with the collection tree as the partitioned side, so no size
// relationship between query and data is required.
//
// Search is safe for concurrent use: probing state is per-call, and the
// index is immutable after NewIndex.
type Index struct {
	opts   Options
	ts     []*tree.Tree
	cache  *engine.Cache
	seqs   *seqCache // non-nil when the index owns the hybrid verifier
	parts  []*Partition
	ix     *invIndex
	smalls []int
}

// Match is one search hit: collection position and exact distance.
type Match struct {
	Pos  int
	Dist int
}

// NewIndex partitions and indexes every tree of ts for searches with
// threshold opts.Tau. RandomPartition and Workers are ignored; the verifier
// is used by Search. It panics on invalid options — the legacy contract;
// corpus-backed callers validate first and use NewIndexCached.
func NewIndex(ts []*tree.Tree, opts Options) *Index {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	return NewIndexCached(ts, opts, nil)
}

// NewIndexCached is NewIndex drawing per-tree artifacts (binary views and
// δ-partitions) from cache, so an index built over a corpus's trees reuses
// the signatures its joins already computed — and later indexes at other
// thresholds reuse at least the views. A nil cache computes everything
// locally. Options must be valid.
func NewIndexCached(ts []*tree.Tree, opts Options, cache *engine.Cache) *Index {
	ix := &Index{
		opts:  opts,
		ts:    ts,
		cache: cache,
		parts: make([]*Partition, len(ts)),
		ix:    newInvIndex(opts.Tau, opts.Position),
	}
	if opts.HybridVerify && opts.Verifier == nil {
		// Kept on the index (not just as an opts.Verifier closure) so
		// SearchCtx can pre-bind each query instead of re-deriving its
		// sequences and preparation per candidate.
		ix.seqs = newSeqCache(ts, cache, nil)
		ix.opts.Verifier = ix.seqs.verifier()
	}
	delta := opts.delta()
	partKey := partitionCacheKey(delta)
	for i, t := range ts {
		if t.Size() < delta {
			ix.smalls = append(ix.smalls, i)
			continue
		}
		p := cachedPartition(cache, t, nil, partKey, delta)
		ix.parts[i] = p
		ix.ix.insert(i, p)
	}
	return ix
}

// Len returns the collection size.
func (x *Index) Len() int { return len(x.ts) }

// Tree returns the i-th collection tree.
func (x *Index) Tree(i int) *tree.Tree { return x.ts[i] }

// Tau returns the threshold the index was built for.
func (x *Index) Tau() int { return x.opts.Tau }

// Search returns the collection trees within TED τ of q, in ascending
// collection order.
func (x *Index) Search(q *tree.Tree) []Match {
	ms, _ := x.SearchCtx(context.Background(), q)
	return ms
}

// searchCtxStride bounds how many probe nodes (or verifications) run between
// context checks.
const searchCtxStride = 64

// SearchCtx is Search under a context: cancellation aborts the probe and
// verification loops promptly and returns ctx's error with nil matches.
func (x *Index) SearchCtx(ctx context.Context, q *tree.Tree) ([]Match, error) {
	verify := x.opts.Verifier
	switch {
	case x.seqs != nil:
		// Hybrid screen with the query's sequences and preparation bound
		// once per call.
		verify = x.seqs.searchVerifier(q)
	case verify == nil:
		// τ-banded bounded TED: collection preparations come from the
		// index's artifact cache; the query's preparation is computed once
		// per call and never stored, so query traffic cannot pin the cache.
		qp := ted.NewPrep(q)
		verify = func(t1, t2 *tree.Tree, tau int) (int, bool) {
			p1, p2 := qp, qp
			if t1 != q {
				p1 = engine.PrepFor(x.cache, t1)
			}
			if t2 != q {
				p2 = engine.PrepFor(x.cache, t2)
			}
			return ted.DistanceBoundedPrep(p1, p2, tau, nil)
		}
	}
	b := lcrs.Build(q)
	sz := q.Size()
	tau := x.opts.Tau
	seen := make(map[int32]bool)
	var cands []int
	for _, i := range x.smalls {
		d := x.ts[i].Size() - sz
		if d < 0 {
			d = -d
		}
		if d <= tau {
			cands = append(cands, i)
			seen[int32(i)] = true
		}
	}
	minSize := sz - tau
	if minSize < 1 {
		minSize = 1
	}
	var sc matchScratch
	for k, n := range b.Order {
		if k%searchCtxStride == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		x.ix.probe(b, n, minSize, sz+tau, func(e entry) {
			if seen[e.tree] {
				return
			}
			if matches(x.parts[e.tree], e.comp, b, n, &sc) {
				seen[e.tree] = true
				cands = append(cands, int(e.tree))
			}
		})
	}
	var out []Match
	for _, i := range cands {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if d, ok := verify(x.ts[i], q, tau); ok {
			out = append(out, Match{Pos: i, Dist: d})
		}
	}
	sortMatches(out)
	return out, nil
}

func sortMatches(ms []Match) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Pos < ms[j-1].Pos; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}
