package core_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/core"
	"treejoin/internal/sim"
	"treejoin/internal/synth"
	"treejoin/internal/tree"
)

// TestIncrementalRemove: after removals, each Add reports exactly the
// partners among the *live* trees — checked against a brute-force join over
// the live set at every step.
func TestIncrementalRemove(t *testing.T) {
	ts := synth.Synthetic(60, 47)
	const tau = 2
	rng := rand.New(rand.NewSource(53))
	inc := core.NewIncremental(core.Options{Tau: tau})
	live := map[int]*tree.Tree{} // stream position -> tree
	for _, tr := range ts {
		// Occasionally remove a random live tree first.
		if len(live) > 4 && rng.Intn(3) == 0 {
			for pos := range live {
				if !inc.Remove(pos) {
					t.Fatalf("Remove(%d) failed", pos)
				}
				delete(live, pos)
				break
			}
		}
		got := inc.Add(tr)
		pos := inc.Len() - 1
		// Oracle: distances against every live tree.
		var want []sim.Pair
		for opos, other := range live {
			if d, ok := sim.DefaultVerifier(other, tr, tau); ok {
				want = append(want, sim.Pair{I: opos, J: pos, Dist: d})
			}
		}
		sim.SortPairs(want)
		if len(got) != len(want) {
			t.Fatalf("pos %d: %d pairs, want %d", pos, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("pos %d: pair %d = %v, want %v", pos, i, got[i], want[i])
			}
		}
		live[pos] = tr
	}
	if inc.Live() != len(live) {
		t.Fatalf("Live() = %d, want %d", inc.Live(), len(live))
	}
}

// TestIncrementalRemoveEdgeCases: invalid and repeated removals are
// rejected; removed positions stay stable and report nil trees.
func TestIncrementalRemoveEdgeCases(t *testing.T) {
	lt := tree.NewLabelTable()
	inc := core.NewIncremental(core.Options{Tau: 1})
	inc.Add(tree.MustParseBracket("{a{b}}", lt))
	inc.Add(tree.MustParseBracket("{a{c}}", lt))
	if inc.Remove(-1) || inc.Remove(2) {
		t.Fatal("out-of-range removal accepted")
	}
	if !inc.Remove(0) {
		t.Fatal("first removal rejected")
	}
	if inc.Remove(0) {
		t.Fatal("double removal accepted")
	}
	if inc.Tree(0) != nil {
		t.Fatal("removed tree still accessible")
	}
	if inc.Len() != 2 || inc.Live() != 1 {
		t.Fatalf("Len=%d Live=%d", inc.Len(), inc.Live())
	}
	// The removed tree no longer matches.
	pairs := inc.Add(tree.MustParseBracket("{a{b}}", lt))
	for _, p := range pairs {
		if p.I == 0 {
			t.Fatalf("removed tree appeared in results: %v", p)
		}
	}
}

// TestIncrementalUpdate: Update is Remove+Add with a fresh stable position.
func TestIncrementalUpdate(t *testing.T) {
	lt := tree.NewLabelTable()
	inc := core.NewIncremental(core.Options{Tau: 1})
	inc.Add(tree.MustParseBracket("{a{b}{c}}", lt))
	inc.Add(tree.MustParseBracket("{x{y{z}}}", lt))
	pos, pairs := inc.Update(0, tree.MustParseBracket("{a{b}{d}}", lt))
	if pos != 2 {
		t.Fatalf("new position %d", pos)
	}
	if len(pairs) != 0 {
		// Old tree 0 is gone; tree 1 is far away.
		t.Fatalf("unexpected pairs %v", pairs)
	}
	got := inc.Add(tree.MustParseBracket("{a{b}{d}}", lt))
	if len(got) != 1 || got[0].I != 2 || got[0].Dist != 0 {
		t.Fatalf("got %v, want the updated tree at distance 0", got)
	}
}

// TestIncrementalCompaction: heavy removal churn triggers index rebuilds and
// results stay correct throughout (including small trees).
func TestIncrementalCompaction(t *testing.T) {
	lt := tree.NewLabelTable()
	const tau = 1
	inc := core.NewIncremental(core.Options{Tau: tau})
	rng := rand.New(rand.NewSource(59))
	var liveTrees []*tree.Tree
	var livePos []int
	for round := 0; round < 120; round++ {
		// Small and large trees mixed, so both index paths see churn.
		n := 2 + rng.Intn(10)
		b := tree.NewBuilder(lt)
		b.Root("r")
		for j := 1; j < n; j++ {
			b.Child(int32(rng.Intn(j)), string(rune('a'+rng.Intn(3))))
		}
		tr := b.MustBuild()
		got := inc.Add(tr)
		var want int
		for _, other := range liveTrees {
			if _, ok := sim.DefaultVerifier(other, tr, tau); ok {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("round %d: %d pairs, want %d", round, len(got), want)
		}
		liveTrees = append(liveTrees, tr)
		livePos = append(livePos, inc.Len()-1)
		// Remove about two thirds of the stream as it grows.
		for len(liveTrees) > 3 && rng.Intn(3) > 0 {
			k := rng.Intn(len(liveTrees))
			inc.Remove(livePos[k])
			liveTrees = append(liveTrees[:k], liveTrees[k+1:]...)
			livePos = append(livePos[:k], livePos[k+1:]...)
		}
	}
	if inc.Live() != len(liveTrees) {
		t.Fatalf("Live() = %d, want %d", inc.Live(), len(liveTrees))
	}
}
