package core

import (
	"fmt"

	"treejoin/internal/engine"
	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// Options configures a PartSJ join.
type Options struct {
	// Tau is the TED threshold τ ≥ 0. Each tree is split into δ = 2τ+1
	// subgraphs.
	Tau int
	// Position selects the postorder-pruning variant (default PositionSafe).
	Position PositionFilter
	// RandomPartition replaces the balanced MaxMinSize partitioning with
	// δ−1 random bridging edges; used by the partitioning-scheme ablation.
	RandomPartition bool
	// Seed seeds the random partitioner (ignored unless RandomPartition).
	Seed int64
	// Verifier decides candidate pairs; nil means ted.DistanceBounded.
	Verifier sim.Verifier
	// HybridVerify screens candidates with the τ-banded traversal-string
	// lower bounds before the cubic TED (see verify.go). Ignored when
	// Verifier is set; not supported by Incremental.
	HybridVerify bool
	// Workers parallelises TED verification, the partitioning pre-pass, and
	// (through ShardedSelfJoin's fragment-and-replicate decomposition) the
	// candidate generation tasks. 1 runs sequentially; values below 1
	// ("unset") are normalized to runtime.GOMAXPROCS(0).
	Workers int
}

func (o Options) delta() int { return 2*o.Tau + 1 }

func (o Options) validate() error {
	if o.Tau < 0 {
		return fmt.Errorf("core: negative threshold %d", o.Tau)
	}
	return nil
}

// Job assembles the engine job for a PartSJ execution: the inverted subgraph
// index as the candidate source, prefilters (if any) ahead of it, and the
// hybrid string-bound verifier when configured.
func (o Options) Job(shards int, filters []engine.PairFilter) engine.Job {
	job := engine.Job{
		Source:   NewSource(o),
		Filters:  filters,
		Tau:      o.Tau,
		Verifier: o.Verifier,
		Workers:  o.Workers,
		Shards:   shards,
	}
	if o.HybridVerify && o.Verifier == nil {
		job.VerifierFor = HybridVerifier
	}
	// PartSJ's candidate source is its own subgraph index — never a planner
	// choice — so every PartSJ run carries this fixed plan record.
	job.Plan = sim.PlanRecord{Source: "partsj", Chain: make([]string, len(filters)), Origin: "fixed"}
	for i, f := range filters {
		job.Plan.Chain[i] = f.Name()
	}
	return job
}

// SelfJoin implements Algorithm 1 (PartSJ): it reports every pair of trees in
// ts with TED ≤ opts.Tau, in canonical (I, J) order, together with execution
// statistics. Trees must share a label table. The index over subgraphs is
// built during the join; no preprocessing is required.
//
// Trees smaller than δ = 2τ+1 nodes cannot be δ-partitioned (a δ-partitioning
// needs 2τ distinct edges); the paper does not discuss them. They are kept in
// a side list and paired by direct verification, which is cheap precisely
// because such trees are tiny.
func SelfJoin(ts []*tree.Tree, opts Options) ([]sim.Pair, *sim.Stats) {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	return opts.Job(0, nil).SelfJoin(ts)
}

// Join reports every cross pair (a ∈ A, b ∈ B) with TED ≤ opts.Tau. Pair.I
// indexes into A and Pair.J into B. Both collections must share one label
// table. The engine processes the union of the collections in ascending
// size order, maintaining one subgraph index per side and probing the
// opposite side's index, so the Lemma 2 filter applies to every cross pair
// exactly as in the self join.
func Join(a, b []*tree.Tree, opts Options) ([]sim.Pair, *sim.Stats) {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	return opts.Job(0, nil).Join(a, b)
}

// HybridVerifier returns the hybrid verification stage over a run's
// collection: candidates are screened with the τ-banded traversal-string
// lower bounds before the τ-banded bounded TED (see verify.go), with both
// the sequences and the TED preparations drawn from the run's artifact
// cache. It is the engine Job.VerifierFor hook behind Options.HybridVerify.
func HybridVerifier(c *engine.Collection) sim.Verifier {
	return newSeqCache(c.Trees, c.Cache(), c.VerifyCounters()).verifier()
}
