package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"treejoin/internal/lcrs"
	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// Options configures a PartSJ join.
type Options struct {
	// Tau is the TED threshold τ ≥ 0. Each tree is split into δ = 2τ+1
	// subgraphs.
	Tau int
	// Position selects the postorder-pruning variant (default PositionSafe).
	Position PositionFilter
	// RandomPartition replaces the balanced MaxMinSize partitioning with
	// δ−1 random bridging edges; used by the partitioning-scheme ablation.
	RandomPartition bool
	// Seed seeds the random partitioner (ignored unless RandomPartition).
	Seed int64
	// Verifier decides candidate pairs; nil means ted.DistanceBounded.
	Verifier sim.Verifier
	// HybridVerify screens candidates with the τ-banded traversal-string
	// lower bounds before the cubic TED (see verify.go). Ignored when
	// Verifier is set; not supported by Incremental.
	HybridVerify bool
	// Workers parallelises TED verification; ≤ 1 verifies inline. Candidate
	// generation is inherently sequential (the index is built on the fly).
	Workers int
}

func (o Options) delta() int { return 2*o.Tau + 1 }

func (o Options) validate() error {
	if o.Tau < 0 {
		return fmt.Errorf("core: negative threshold %d", o.Tau)
	}
	return nil
}

// SelfJoin implements Algorithm 1 (PartSJ): it reports every pair of trees in
// ts with TED ≤ opts.Tau, in canonical (I, J) order, together with execution
// statistics. Trees must share a label table. The index over subgraphs is
// built during the join; no preprocessing is required.
//
// Trees smaller than δ = 2τ+1 nodes cannot be δ-partitioned (a δ-partitioning
// needs 2τ distinct edges); the paper does not discuss them. They are kept in
// a side list and paired by direct verification, which is cheap precisely
// because such trees are tiny.
func SelfJoin(ts []*tree.Tree, opts Options) ([]sim.Pair, *sim.Stats) {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	if opts.HybridVerify && opts.Verifier == nil {
		opts.Verifier = newSeqCache(ts).verifier()
	}
	j := newJoiner(len(ts), opts)
	j.prepartition(ts)
	order := sim.SizeOrder(ts)
	for _, ti := range order {
		j.probeAndCollect(ts, ti, j.ix, j.smalls)
		j.verify(ts)
		j.insert(ts, ti, j.ix, &j.smalls)
	}
	j.flushDeferred(ts)
	sim.SortPairs(j.results)
	j.stats.Results = int64(len(j.results))
	j.stats.Trees = len(ts)
	return j.results, j.stats
}

// Join reports every cross pair (a ∈ A, b ∈ B) with TED ≤ opts.Tau. Pair.I
// indexes into A and Pair.J into B. Both collections must share one label
// table. The algorithm processes the union of the collections in ascending
// size order, maintaining one subgraph index per side and probing the
// opposite side's index, so the Lemma 2 filter applies to every cross pair
// exactly as in the self join.
func Join(a, b []*tree.Tree, opts Options) ([]sim.Pair, *sim.Stats) {
	if err := opts.validate(); err != nil {
		panic(err)
	}
	ts := make([]*tree.Tree, 0, len(a)+len(b))
	ts = append(ts, a...)
	ts = append(ts, b...)
	if opts.HybridVerify && opts.Verifier == nil {
		opts.Verifier = newSeqCache(ts).verifier()
	}
	side := func(i int) int {
		if i < len(a) {
			return 0
		}
		return 1
	}
	j := newJoiner(len(ts), opts)
	j.prepartition(ts)
	ixes := [2]*invIndex{newInvIndex(opts.Tau, opts.Position), newInvIndex(opts.Tau, opts.Position)}
	var smalls [2][]int
	order := sim.SizeOrder(ts)
	for _, ti := range order {
		s := side(ti)
		j.probeAndCollect(ts, ti, ixes[1-s], smalls[1-s])
		j.verify(ts)
		j.insert(ts, ti, ixes[s], &smalls[s])
	}
	j.flushDeferred(ts)
	// Map combined indices back to per-collection positions. The combined
	// A index is always smaller, so Pair.I is the A element already.
	for i := range j.results {
		j.results[i].J -= len(a)
	}
	sim.SortPairs(j.results)
	j.stats.Results = int64(len(j.results))
	j.stats.Trees = len(ts)
	return j.results, j.stats
}

// joiner holds the mutable state shared by the join drivers.
type joiner struct {
	opts     Options
	delta    int
	ix       *invIndex
	bins     []*lcrs.Bin
	parts    []*Partition
	smalls   []int
	checked  []int32 // per-tree stamp; avoids re-checking a pair in one probe
	gen      int32
	sc       matchScratch
	cands    []sim.Candidate
	deferred []sim.Candidate
	results  []sim.Pair
	stats    *sim.Stats
	rng      *rand.Rand
	probeID  int // combined index of the tree currently probing
}

func newJoiner(n int, opts Options) *joiner {
	j := &joiner{
		opts:    opts,
		delta:   opts.delta(),
		ix:      newInvIndex(opts.Tau, opts.Position),
		bins:    make([]*lcrs.Bin, n),
		parts:   make([]*Partition, n),
		checked: make([]int32, n),
		stats:   &sim.Stats{},
	}
	for i := range j.checked {
		j.checked[i] = -1
	}
	if opts.RandomPartition {
		j.rng = rand.New(rand.NewSource(opts.Seed))
	}
	return j
}

// prepartition builds the binary views and balanced partitions of every tree
// on a worker pool before the sequential probe/insert loop — the join's only
// embarrassingly parallel phase besides verification (the multi-core
// direction of the paper's future work). A no-op unless Workers > 1; the
// random-partition ablation stays sequential to keep its RNG stream
// deterministic.
func (j *joiner) prepartition(ts []*tree.Tree) {
	if j.opts.Workers <= 1 || j.rng != nil || len(ts) == 0 {
		return
	}
	start := time.Now()
	workers := j.opts.Workers
	if workers > len(ts) {
		workers = len(ts)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ts) {
					return
				}
				b := lcrs.Build(ts[i])
				j.bins[i] = b
				if ts[i].Size() >= j.delta {
					j.parts[i] = Compute(b, j.delta)
				}
			}
		}()
	}
	wg.Wait()
	j.stats.PartitionTime += time.Since(start)
}

// probeAndCollect gathers the candidate partners of tree ti among the trees
// already inserted into ix and smalls (Algorithm 1 lines 5–10).
func (j *joiner) probeAndCollect(ts []*tree.Tree, ti int, ix *invIndex, smalls []int) {
	start := time.Now()
	t := ts[ti]
	b := j.bins[ti]
	if b == nil {
		b = lcrs.Build(t)
		j.bins[ti] = b
	}
	sz := t.Size()
	j.cands = j.cands[:0]
	j.probeID = ti
	gen := j.gen
	j.gen++
	// Small-tree fallback: trees below δ nodes were never indexed.
	for _, other := range smalls {
		if ts[other].Size() >= sz-j.opts.Tau && j.checked[other] != gen {
			j.checked[other] = gen
			j.cands = append(j.cands, sim.Candidate{I: ti, J: other})
			j.stats.SmallTreeFallback++
		}
	}
	minSize := sz - j.opts.Tau
	if minSize < 1 {
		minSize = 1
	}
	for _, n := range b.Order {
		j.stats.SubgraphProbes += ix.probe(b, n, minSize, sz, func(e entry) {
			if j.checked[e.tree] == gen {
				return
			}
			j.stats.MatchTests++
			if matches(j.parts[e.tree], e.comp, b, n, &j.sc) {
				j.stats.MatchHits++
				j.checked[e.tree] = gen
				j.cands = append(j.cands, sim.Candidate{I: ti, J: int(e.tree)})
			}
		})
	}
	j.stats.CandTime += time.Since(start)
}

// verify runs the TED verifier over the collected candidates. With a worker
// pool configured, per-tree candidate batches are far too small to engage it
// (tens of pairs against a pool spin-up), so verification is deferred: since
// Algorithm 1's verification step never feeds back into the index, batch
// joins can push every candidate into one fully parallel pass at the end
// (flushDeferred). Sequential joins keep the paper's per-tree interleaving.
func (j *joiner) verify(ts []*tree.Tree) {
	if j.opts.Workers > 1 {
		j.deferred = append(j.deferred, j.cands...)
		return
	}
	j.results = append(j.results,
		sim.VerifyAll(ts, j.cands, j.opts.Tau, j.opts.Verifier, j.opts.Workers, j.stats)...)
}

// flushDeferred verifies the candidates accumulated by verify in one parallel
// batch. A no-op for sequential joins.
func (j *joiner) flushDeferred(ts []*tree.Tree) {
	if len(j.deferred) == 0 {
		return
	}
	j.results = append(j.results,
		sim.VerifyAll(ts, j.deferred, j.opts.Tau, j.opts.Verifier, j.opts.Workers, j.stats)...)
	j.deferred = j.deferred[:0]
}

// insert partitions tree ti and adds its subgraphs to ix (Algorithm 1 lines
// 13–16), or records it as a small tree.
func (j *joiner) insert(ts []*tree.Tree, ti int, ix *invIndex, smalls *[]int) {
	start := time.Now()
	if ts[ti].Size() >= j.delta {
		p := j.parts[ti] // non-nil when prepartition ran
		if p == nil {
			if j.rng != nil {
				p = ComputeRandom(j.bins[ti], j.delta, j.rng)
			} else {
				p = Compute(j.bins[ti], j.delta)
			}
			j.parts[ti] = p
		}
		j.stats.IndexedSubgraphs += int64(j.delta)
		ix.insert(ti, p)
	} else {
		*smalls = append(*smalls, ti)
	}
	j.stats.PartitionTime += time.Since(start)
}
