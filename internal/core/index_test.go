package core

import (
	"testing"

	"treejoin/internal/lcrs"
	"treejoin/internal/tree"
)

func TestSubgraphTwig(t *testing.T) {
	lt := tree.NewLabelTable()
	g := figure9Tree(lt) // 11 nodes; Compute(δ=3) cuts at l4 and l8
	b := lcrs.Build(g)
	p := Compute(b, 3)

	// Component 0 root is l4: binary left = l5 (in component), right = l6
	// (in component).
	tw := subgraphTwig(p, 0)
	l4, l5, l6 := lt.Intern("l4"), lt.Intern("l5"), lt.Intern("l6")
	if tw != (twig{root: l4, left: l5, right: l6}) {
		t.Errorf("twig(comp0) = %+v", tw)
	}
	// Component 2 (root component) root is l1: left = l2 (in component),
	// right = empty (the root has no sibling).
	tw = subgraphTwig(p, 2)
	l1, l2 := lt.Intern("l1"), lt.Intern("l2")
	if tw != (twig{root: l1, left: l2, right: slotEmpty}) {
		t.Errorf("twig(comp2) = %+v", tw)
	}
	// Component 1 root is l8: left = l9 (in component), right = l11 (also in
	// component 1).
	tw = subgraphTwig(p, 1)
	l8, l9, l11 := lt.Intern("l8"), lt.Intern("l9"), lt.Intern("l11")
	if tw != (twig{root: l8, left: l9, right: l11}) {
		t.Errorf("twig(comp1) = %+v", tw)
	}
}

func TestSubgraphTwigBridge(t *testing.T) {
	lt := tree.NewLabelTable()
	// A chain partitioned into singletons: every slot pointing at a child is
	// a bridging edge.
	g := tree.MustParseBracket("{a{b{c}}}", lt)
	b := lcrs.Build(g)
	p := Compute(b, 3) // γ = 1, three singleton components
	if p.MinSize() != 1 {
		t.Fatalf("expected singleton components, sizes %v", p.Sizes)
	}
	// The root component {a} has a bridging left slot (to b) and empty right.
	rootComp := int32(p.Delta - 1)
	tw := subgraphTwig(p, rootComp)
	if tw != (twig{root: lt.Intern("a"), left: slotBridge, right: slotEmpty}) {
		t.Errorf("twig(root comp) = %+v", tw)
	}
}

func TestProbeKeysEnumeration(t *testing.T) {
	lt := tree.NewLabelTable()
	g := tree.MustParseBracket("{a{b{d}}{c}}", lt)
	b := lcrs.Build(g)
	var keys [4]twig
	la, lb, lc, ld := lt.Intern("a"), lt.Intern("b"), lt.Intern("c"), lt.Intern("d")

	// Root a: left child b, right none → 2 keys.
	n := probeKeys(b, g.Root(), &keys)
	if n != 2 {
		t.Fatalf("root keys = %d", n)
	}
	wantRoot := map[twig]bool{
		{root: la, left: lb, right: slotEmpty}:         true,
		{root: la, left: slotBridge, right: slotEmpty}: true,
	}
	for i := 0; i < n; i++ {
		if !wantRoot[keys[i]] {
			t.Errorf("unexpected root key %+v", keys[i])
		}
	}

	// Node b: left child d, right sibling c → 4 keys.
	nb := nodeByLabel(g, "b")
	n = probeKeys(b, nb, &keys)
	if n != 4 {
		t.Fatalf("b keys = %d", n)
	}
	want := map[twig]bool{
		{root: lb, left: ld, right: lc}:                 true,
		{root: lb, left: ld, right: slotBridge}:         true,
		{root: lb, left: slotBridge, right: lc}:         true,
		{root: lb, left: slotBridge, right: slotBridge}: true,
	}
	for i := 0; i < n; i++ {
		if !want[keys[i]] {
			t.Errorf("unexpected b key %+v", keys[i])
		}
	}

	// Leaf d with no sibling → 1 key.
	nd := nodeByLabel(g, "d")
	if n = probeKeys(b, nd, &keys); n != 1 {
		t.Fatalf("d keys = %d", n)
	}
	if keys[0] != (twig{root: ld, left: slotEmpty, right: slotEmpty}) {
		t.Errorf("d key = %+v", keys[0])
	}
}

func TestPostorderRanks(t *testing.T) {
	lt := tree.NewLabelTable()
	g := figure9Tree(lt)
	b := lcrs.Build(g)
	p := Compute(b, 3)
	ranks := postorderRanks(p)
	// General postorder of the roots: l4 before l8 before l1 (the paper's
	// s1, s2, s3 order).
	if ranks[0] != 1 || ranks[1] != 2 || ranks[2] != 3 {
		t.Fatalf("ranks = %v", ranks)
	}
}

// TestProbeWindowMath verifies the size-difference-aware window directly:
// with τ=2 the window for equal sizes is r±1, for the maximal size gap it is
// one-sided.
func TestProbeWindowMath(t *testing.T) {
	lt := tree.NewLabelTable()
	// Index a 7-node tree's partition.
	pat := tree.MustParseBracket("{a{b{c}{d}}{e{f}{g}}}", lt)
	bp := lcrs.Build(pat)
	tau := 2
	p := Compute(bp, 2*tau+1)
	ix := newInvIndex(tau, PositionSafe)
	ix.insert(0, p)

	// Probing with the identical tree must visit every component once per
	// matching (node, window) position; in particular each component's root
	// node probe must see its own entry.
	parts := []*Partition{p}
	var sc matchScratch
	hits := make(map[int32]bool)
	for _, n := range bp.Order {
		ix.probe(bp, n, pat.Size(), pat.Size(), func(e entry) {
			if matches(parts[e.tree], e.comp, bp, n, &sc) {
				hits[e.comp] = true
			}
		})
	}
	for c := 0; c < p.Delta; c++ {
		if !hits[int32(c)] {
			t.Fatalf("component %d not reachable via probe on identical tree", c)
		}
	}
}

// TestPositionOffSingleBucket: with the position layer off, everything lives
// in bucket zero and probes ignore positions entirely.
func TestPositionOffSingleBucket(t *testing.T) {
	lt := tree.NewLabelTable()
	pat := tree.MustParseBracket("{a{b}{c}{d}{e}}", lt)
	bp := lcrs.Build(pat)
	p := Compute(bp, 3)
	ix := newInvIndex(1, PositionOff)
	added := ix.insert(0, p)
	if added != int64(p.Delta) {
		t.Fatalf("PositionOff added %d entries, want %d", added, p.Delta)
	}
	si := ix.bySize[pat.Size()]
	if si == nil || len(si.byPos) != 1 {
		t.Fatalf("PositionOff should use exactly one position bucket")
	}
}

// TestPaperModeStoresRanges: PositionPaper materialises 2∆′+1 entries per
// subgraph.
func TestPaperModeStoresRanges(t *testing.T) {
	lt := tree.NewLabelTable()
	pat := tree.MustParseBracket("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", lt)
	bp := lcrs.Build(pat)
	tau := 2
	delta := 2*tau + 1
	p := Compute(bp, delta)
	ix := newInvIndex(tau, PositionPaper)
	added := ix.insert(0, p)
	// Σ_k (2·(τ−⌊k/2⌋)+1) for k=1..5, τ=2: 5+3+3+1+1 = 13, minus any range
	// clamped at position 0.
	if added > 13 || added < int64(delta) {
		t.Fatalf("PositionPaper added %d entries", added)
	}
}
