package subtree_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/subtree"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

func randTree(rng *rand.Rand, lt *tree.LabelTable, n, alphabet int) *tree.Tree {
	b := tree.NewBuilder(lt)
	b.Root(string(rune('a' + rng.Intn(alphabet))))
	for i := 1; i < n; i++ {
		b.Child(int32(rng.Intn(i)), string(rune('a'+rng.Intn(alphabet))))
	}
	return b.MustBuild()
}

// naive computes the oracle: the exact TED of every subtree against the
// query.
func naive(data, query *tree.Tree, tau int) []subtree.Match {
	var out []subtree.Match
	for id := range data.Nodes {
		n := int32(id)
		if d := ted.Distance(tree.SubtreeAt(data, n), query); d <= tau {
			out = append(out, subtree.Match{Root: n, Dist: d})
		}
	}
	return out
}

func TestSubtreeAt(t *testing.T) {
	lt := tree.NewLabelTable()
	d := tree.MustParseBracket("{a{b{c}{d}}{e{f}}}", lt)
	// Node ids are preorder from the bracket parser: a=0 b=1 c=2 d=3 e=4 f=5.
	sub := tree.SubtreeAt(d, 1)
	if got := tree.FormatBracket(sub); got != "{b{c}{d}}" {
		t.Fatalf("SubtreeAt = %s", got)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	whole := tree.SubtreeAt(d, 0)
	if !tree.Equal(whole, d) {
		t.Fatal("SubtreeAt(root) differs from the tree")
	}
	leaf := tree.SubtreeAt(d, 5)
	if leaf.Size() != 1 || leaf.Label(0) != "f" {
		t.Fatalf("leaf subtree %s", tree.FormatBracket(leaf))
	}
}

func TestSearchHandCase(t *testing.T) {
	lt := tree.NewLabelTable()
	data := tree.MustParseBracket("{doc{sec{p{x}}{p{y}}}{sec{p{x}}{q{y}}}}", lt)
	query := tree.MustParseBracket("{sec{p{x}}{p{y}}}", lt)
	got := subtree.Search(data, query, 1)
	// The first sec matches exactly; the second needs one rename (q -> p).
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if got[0].Dist != 0 || got[1].Dist != 1 {
		t.Fatalf("distances %v", got)
	}
	if got := subtree.Search(data, query, 0); len(got) != 1 {
		t.Fatalf("τ=0: %v", got)
	}
}

// TestSearchMatchesOracle: the pruned search returns exactly the naive
// all-subtrees scan on random data, across thresholds.
func TestSearchMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	lt := tree.NewLabelTable()
	for trial := 0; trial < 40; trial++ {
		data := randTree(rng, lt, 30+rng.Intn(40), 4)
		query := randTree(rng, lt, 2+rng.Intn(10), 4)
		for _, tau := range []int{0, 1, 3} {
			want := naive(data, query, tau)
			got := subtree.Search(data, query, tau)
			if len(got) != len(want) {
				t.Fatalf("trial %d τ=%d: %d matches, want %d", trial, tau, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d τ=%d: match %d = %v, want %v", trial, tau, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSearchSelfQuery: querying a data tree with one of its own subtrees
// always finds that subtree at distance 0.
func TestSearchSelfQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	lt := tree.NewLabelTable()
	for trial := 0; trial < 30; trial++ {
		data := randTree(rng, lt, 40, 3)
		n := int32(rng.Intn(data.Size()))
		query := tree.SubtreeAt(data, n)
		found := false
		for _, m := range subtree.Search(data, query, 0) {
			if m.Root == n && m.Dist == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("own subtree at node %d not found", n)
		}
	}
}

func TestSearchBest(t *testing.T) {
	lt := tree.NewLabelTable()
	data := tree.MustParseBracket("{doc{sec{p{x}}{p{y}}}{sec{p{x}}{q{y}}}{misc{z}}}", lt)
	query := tree.MustParseBracket("{sec{p{x}}{p{y}}}", lt)
	got := subtree.SearchBest(data, query, 2)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if got[0].Dist != 0 || got[1].Dist != 1 {
		t.Fatalf("top-2 distances %v", got)
	}
	// k beyond the node count returns every subtree, sorted by distance.
	all := subtree.SearchBest(data, query, 1000)
	if len(all) != data.Size() {
		t.Fatalf("k beyond nodes: %d matches for %d nodes", len(all), data.Size())
	}
	for i := 1; i < len(all); i++ {
		if all[i].Dist < all[i-1].Dist {
			t.Fatalf("unsorted distances at %d", i)
		}
	}
	if got := subtree.SearchBest(data, query, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

func TestSearchEdgeCases(t *testing.T) {
	lt := tree.NewLabelTable()
	data := tree.MustParseBracket("{a}", lt)
	query := tree.MustParseBracket("{a}", lt)
	got := subtree.Search(data, query, 0)
	if len(got) != 1 || got[0].Root != 0 {
		t.Fatalf("single-node case: %v", got)
	}
	if got := subtree.Search(data, query, -1); got != nil {
		t.Fatalf("negative τ returned %v", got)
	}
	big := tree.MustParseBracket("{q{r{s{t{u{v}}}}}}", lt)
	if got := subtree.Search(data, big, 2); len(got) != 0 {
		t.Fatalf("oversized query matched: %v", got)
	}
}
