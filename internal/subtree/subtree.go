// Package subtree implements similarity search *inside* one large tree: find
// the subtrees of a data tree within TED τ of a query tree (the problem of
// Cohen [7, 8] and of TASM [3] in the paper's related work — the paper
// distinguishes its collection-join setting from this one, so a library
// covering both rounds out the toolset).
//
// The search considers every node of the data tree as a candidate subtree
// root, prunes candidates with the size bound (a subtree whose node count
// differs from the query's by more than τ cannot match) and the τ-banded
// preorder/postorder string lower bounds, and verifies survivors with the
// bounded TED. Traversal sequences of every subtree are materialised in one
// pass over the data tree — the preorder (postorder) sequence of a subtree
// is a contiguous slice of the whole tree's preorder (postorder) sequence,
// so the screen costs no extra memory beyond the two whole-tree sequences.
package subtree

import (
	"sort"

	"treejoin/internal/strdist"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// Match is one hit: the data-tree node rooting the matching subtree and the
// exact TED between that subtree and the query.
type Match struct {
	Root int32
	Dist int
}

// Search returns every subtree of data within TED tau of query, in ascending
// root node id order. data and query must share one label table.
func Search(data, query *tree.Tree, tau int) []Match {
	if data.Labels != query.Labels {
		panic("subtree: trees must share a label table")
	}
	if tau < 0 {
		return nil
	}
	qSize := query.Size()
	qPre := tree.LabelSeq(query, tree.Preorder(query))
	qPost := tree.LabelSeq(query, tree.Postorder(query))

	// Whole-tree sequences; each subtree owns a contiguous slice of both.
	pre := tree.Preorder(data)
	post := tree.Postorder(data)
	preSeq := tree.LabelSeq(data, pre)
	postSeq := tree.LabelSeq(data, post)
	preRank := make([]int32, data.Size())
	for i, n := range pre {
		preRank[n] = int32(i)
	}
	postRank := make([]int32, data.Size())
	for i, n := range post {
		postRank[n] = int32(i)
	}
	sizes := tree.SubtreeSizes(data)

	var out []Match
	for id := range data.Nodes {
		n := int32(id)
		sz := int(sizes[n])
		if sz < qSize-tau || sz > qSize+tau {
			continue
		}
		// Subtree n occupies preorder [preRank, preRank+sz) and postorder
		// [postRank−sz+1, postRank+1].
		p := preSeq[preRank[n] : int(preRank[n])+sz]
		if strdist.Bounded(p, qPre, tau) > tau {
			continue
		}
		q := postSeq[int(postRank[n])-sz+1 : postRank[n]+1]
		if strdist.Bounded(q, qPost, tau) > tau {
			continue
		}
		if d, ok := ted.DistanceBounded(tree.SubtreeAt(data, n), query, tau); ok {
			out = append(out, Match{Root: n, Dist: d})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Root < out[b].Root })
	return out
}

// SearchBest returns the k subtrees of data closest to query by TED, ordered
// by (Dist, Root) — the top-k approximate subtree matching query of TASM
// [3]. It runs Search at geometrically increasing thresholds until k hits
// are in reach; fewer than k only when data has fewer than k nodes.
func SearchBest(data, query *tree.Tree, k int) []Match {
	if k <= 0 {
		return nil
	}
	if k > data.Size() {
		k = data.Size()
	}
	tauCap := data.Size() + query.Size()
	tau := 1
	for {
		ms := Search(data, query, tau)
		if len(ms) >= k || tau >= tauCap {
			sort.Slice(ms, func(a, b int) bool {
				if ms[a].Dist != ms[b].Dist {
					return ms[a].Dist < ms[b].Dist
				}
				return ms[a].Root < ms[b].Root
			})
			if len(ms) > k {
				ms = ms[:k]
			}
			return ms
		}
		tau *= 2
		if tau > tauCap {
			tau = tauCap
		}
	}
}
