package baseline

import (
	"sort"

	"treejoin/internal/tree"
)

// The HIST baseline follows Kailing et al. [16]: prune tree pairs using
// cheap lower bounds of the TED derived from simple per-tree statistics —
// node counts, leaf counts, tree height, and histograms of node labels and
// node degrees. The constants below are proved against this module's edit
// model (§2 of the paper); each proof enumerates the worst case of a single
// node edit operation, so d(hist) ≤ c·TED follows by induction over an
// optimal edit sequence.
//
//   - Size: an insert/delete changes |T| by exactly 1, a rename by 0, so
//     |‖T1‖−‖T2‖| ≤ TED.
//   - Leaves: a delete removes at most one leaf and creates at most one (the
//     parent of a deleted only-child leaf), an insert symmetrically, so the
//     leaf count changes by at most 1 per operation.
//   - Height: an insert pushes the subtrees below the new node down one
//     level; a delete lifts them one level; so the height changes by at most
//     1 per operation.
//   - Label histogram: a rename moves one unit of mass between two bins (L1
//     change 2), insert/delete add/remove one unit (L1 change 1), so
//     L1(labels) ≤ 2·TED.
//   - Degree histogram: deleting a node v with k children moves the parent's
//     count from bin m to bin m+k−1 (L1 change ≤ 2) and removes v's count
//     from bin k (L1 change 1); insert is symmetric; rename changes nothing;
//     so L1(degrees) ≤ 3·TED.
//
// Kailing et al. additionally propose a leaf-distance histogram with a
// specialised (shift-aware) histogram metric; a plain L1 on depth or height
// histograms is *not* within a constant factor of TED (one deletion can move
// every ancestor's height), so that filter is deliberately not reproduced
// here. The five bounds above are exactly the "distance to leaves, degrees,
// and labels" statistics the survey [18] attributes to [16], and the oracle
// property tests in extra_test.go confirm the combination never prunes a
// true result.

// histEntry is one bin of a sparse histogram: a key (label id or degree) and
// its count.
type histEntry struct {
	key   int32
	count int32
}

// HistProfile carries the per-tree statistics the HIST filter compares.
// Profiles are immutable after NewHistProfile and safe to share.
type HistProfile struct {
	size   int
	leaves int
	height int
	labels []histEntry // sorted by key
	degs   []histEntry // sorted by key
}

// NewHistProfile extracts the statistics of t in O(|t|) time.
func NewHistProfile(t *tree.Tree) *HistProfile {
	p := &HistProfile{size: t.Size()}
	labels := make(map[int32]int32)
	degs := make(map[int32]int32)
	depths := tree.Depths(t)
	for id := range t.Nodes {
		n := int32(id)
		labels[t.Nodes[n].Label]++
		if d := int(depths[n]); d > p.height {
			p.height = d
		}
		var fan int32
		for c := t.Nodes[n].FirstChild; c != tree.None; c = t.Nodes[c].NextSibling {
			fan++
		}
		degs[fan]++
		if fan == 0 {
			p.leaves++
		}
	}
	p.labels = sortedHist(labels)
	p.degs = sortedHist(degs)
	return p
}

func sortedHist(m map[int32]int32) []histEntry {
	out := make([]histEntry, 0, len(m))
	for k, c := range m {
		out = append(out, histEntry{key: k, count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// l1 returns the L1 distance between two sparse sorted histograms.
func l1(a, b []histEntry) int {
	var d int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].key == b[j].key:
			d += abs(int(a[i].count) - int(b[j].count))
			i++
			j++
		case a[i].key < b[j].key:
			d += int(a[i].count)
			i++
		default:
			d += int(b[j].count)
			j++
		}
	}
	for ; i < len(a); i++ {
		d += int(a[i].count)
	}
	for ; j < len(b); j++ {
		d += int(b[j].count)
	}
	return d
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// HistLowerBound returns the largest of the five statistic-based TED lower
// bounds for the two profiled trees.
func HistLowerBound(p1, p2 *HistProfile) int {
	lb := abs(p1.size - p2.size)
	if d := abs(p1.leaves - p2.leaves); d > lb {
		lb = d
	}
	if d := abs(p1.height - p2.height); d > lb {
		lb = d
	}
	if d := (l1(p1.labels, p2.labels) + 1) / 2; d > lb {
		lb = d
	}
	if d := (l1(p1.degs, p2.degs) + 2) / 3; d > lb {
		lb = d
	}
	return lb
}

