package baseline

import (
	"treejoin/internal/strdist"
	"treejoin/internal/tree"
)

// The EUL baseline follows Akutsu et al. [1]: the Euler string of a rooted
// ordered labeled tree is the label sequence of its depth-first (Euler) tour,
// with one "open" symbol appended when the tour descends into a node and a
// distinct "close" symbol when it leaves, giving a string of length 2·|T|.
//
// Each node edit operation changes the Euler string by at most two symbol
// edits: a node's open/close symbols bracket the contiguous Euler substring
// of its subtree, so deleting the node deletes exactly those two symbols
// (the children splice in place, preserving the rest of the tour verbatim),
// inserting a node inserts two symbols, and renaming substitutes two. Hence
//
//	sed(E(T1), E(T2)) ≤ 2·TED(T1, T2),
//
// i.e. ⌈sed/2⌉ is a TED lower bound, and a pair may be pruned when the
// 2τ-banded string edit distance of the Euler strings exceeds 2τ. The bound
// is tighter than the preorder/postorder traversal strings on shape changes
// (the close symbols encode where subtrees end) at twice the sequence
// length.

// EulerString returns the Euler tour string of t in the shared open/close
// symbol encoding (tree.EulerString), the string both this baseline's bound
// and the Euler-gram bag bound are stated over.
func EulerString(t *tree.Tree) []int32 { return tree.EulerString(t) }

// EulerLowerBound returns the Euler-string TED lower bound ⌈sed(e1,e2)/2⌉,
// computed with a band of 2τ; values above τ only certify "greater than τ".
func EulerLowerBound(e1, e2 []int32, tau int) int {
	return (strdist.Bounded(e1, e2, 2*tau) + 1) / 2
}
