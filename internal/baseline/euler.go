package baseline

import (
	"treejoin/internal/sim"
	"treejoin/internal/strdist"
	"treejoin/internal/tree"
)

// The EUL baseline follows Akutsu et al. [1]: the Euler string of a rooted
// ordered labeled tree is the label sequence of its depth-first (Euler) tour,
// with one "open" symbol appended when the tour descends into a node and a
// distinct "close" symbol when it leaves, giving a string of length 2·|T|.
//
// Each node edit operation changes the Euler string by at most two symbol
// edits: a node's open/close symbols bracket the contiguous Euler substring
// of its subtree, so deleting the node deletes exactly those two symbols
// (the children splice in place, preserving the rest of the tour verbatim),
// inserting a node inserts two symbols, and renaming substitutes two. Hence
//
//	sed(E(T1), E(T2)) ≤ 2·TED(T1, T2),
//
// i.e. ⌈sed/2⌉ is a TED lower bound, and a pair may be pruned when the
// 2τ-banded string edit distance of the Euler strings exceeds 2τ. The bound
// is tighter than the preorder/postorder traversal strings on shape changes
// (the close symbols encode where subtrees end) at twice the sequence
// length.

// EulerString returns the Euler tour string of t as interned symbols: label
// id L maps to 2L on descent and 2L+1 on ascent, so open and close symbols
// of equal labels stay distinct.
func EulerString(t *tree.Tree) []int32 {
	out := make([]int32, 0, 2*t.Size())
	type frame struct {
		node  int32
		child int32 // next child to visit, or tree.None when ascending
	}
	stack := make([]frame, 0, 16)
	root := t.Root()
	out = append(out, 2*t.Nodes[root].Label)
	stack = append(stack, frame{root, t.Nodes[root].FirstChild})
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.child == tree.None {
			out = append(out, 2*t.Nodes[top.node].Label+1)
			stack = stack[:len(stack)-1]
			continue
		}
		c := top.child
		top.child = t.Nodes[c].NextSibling
		out = append(out, 2*t.Nodes[c].Label)
		stack = append(stack, frame{c, t.Nodes[c].FirstChild})
	}
	return out
}

// EulerLowerBound returns the Euler-string TED lower bound ⌈sed(e1,e2)/2⌉,
// computed with a band of 2τ; values above τ only certify "greater than τ".
func EulerLowerBound(e1, e2 []int32, tau int) int {
	return (strdist.Bounded(e1, e2, 2*tau) + 1) / 2
}

// EUL joins ts using the Euler-string lower bound of Akutsu et al.: a pair is
// pruned when the banded string edit distance of the Euler strings exceeds
// 2τ. Like STR, candidate generation is a string join over all size-
// compatible pairs — at twice the string length and band width, so candidate
// generation costs roughly 4× STR's while pruning slightly more pairs.
func EUL(ts []*tree.Tree, opts Options) ([]sim.Pair, *sim.Stats) {
	return run(ts, opts, func(stats *sim.Stats) filterFunc {
		eulers := make([][]int32, len(ts))
		for i, t := range ts {
			eulers[i] = EulerString(t)
		}
		return func(i, j int) bool {
			return EulerLowerBound(eulers[i], eulers[j], opts.Tau) <= opts.Tau
		}
	})
}
