package baseline

import (
	"treejoin/internal/sim"
	"treejoin/internal/strdist"
	"treejoin/internal/tree"
)

// STR joins ts using the traversal-string lower bounds of Guha et al.: the
// unit-cost string edit distance between the preorder (resp. postorder) label
// sequences of two trees never exceeds their TED, so a pair whose preorder or
// postorder sequences differ by more than τ cannot be a result. Sequence
// distances are computed with the τ-banded algorithm, matching the original
// method's cost profile: candidate generation is a string join over all size-
// compatible pairs and dominates at small τ (cf. Figure 10).
func STR(ts []*tree.Tree, opts Options) ([]sim.Pair, *sim.Stats) {
	return run(ts, opts, func(stats *sim.Stats) filterFunc {
		pre := make([][]int32, len(ts))
		post := make([][]int32, len(ts))
		for i, t := range ts {
			pre[i] = tree.LabelSeq(t, tree.Preorder(t))
			post[i] = tree.LabelSeq(t, tree.Postorder(t))
		}
		return func(i, j int) bool {
			if strdist.Bounded(pre[i], pre[j], opts.Tau) > opts.Tau {
				return false
			}
			return strdist.Bounded(post[i], post[j], opts.Tau) <= opts.Tau
		}
	})
}
